#include "cache_sim.hh"

#include "support/logging.hh"

namespace sigil::cg {

namespace {

unsigned
log2Exact(std::uint64_t v, const char *what)
{
    if (v == 0 || (v & (v - 1)) != 0)
        fatal("cache %s must be a nonzero power of two (got %llu)", what,
              static_cast<unsigned long long>(v));
    unsigned s = 0;
    while ((v >> s) != 1)
        ++s;
    return s;
}

} // namespace

CacheLevel::CacheLevel(const CacheConfig &config)
    : lineBytes_(config.lineBytes),
      lineShift_(log2Exact(config.lineBytes, "line size")),
      assoc_(config.associativity)
{
    if (assoc_ == 0)
        fatal("cache associativity must be > 0");
    std::uint64_t lines = config.sizeBytes / config.lineBytes;
    if (lines == 0 || lines % assoc_ != 0)
        fatal("cache size must be a multiple of line size * associativity");
    numSets_ = lines / assoc_;
    setShift_ = log2Exact(numSets_, "set count");
    tags_.assign(lines, 0);
    valid_.assign(lines, 0);
    dirty_.assign(lines, 0);
    lru_.assign(lines, 0);
}

bool
CacheLevel::accessLine(std::uint64_t line_number, bool is_write)
{
    ++accesses_;
    wroteBack_ = false;
    std::uint64_t set = line_number & (numSets_ - 1);
    std::uint64_t tag = line_number >> setShift_;
    std::size_t base = static_cast<std::size_t>(set) * assoc_;

    // Search for a hit and track the LRU victim in one pass; an invalid
    // way is always the preferred victim.
    std::size_t victim = base;
    std::uint64_t oldest = ~0ull;
    for (std::size_t w = 0; w < assoc_; ++w) {
        std::size_t idx = base + w;
        if (valid_[idx] && tags_[idx] == tag) {
            lru_[idx] = ++stamp_;
            if (is_write)
                dirty_[idx] = 1;
            return true;
        }
        std::uint64_t rank = valid_[idx] ? lru_[idx] : 0;
        if (rank < oldest) {
            oldest = rank;
            victim = idx;
        }
    }
    ++misses_;
    if (valid_[victim] && dirty_[victim]) {
        ++writeBacks_;
        wroteBack_ = true;
        writeBackLine_ = (tags_[victim] << setShift_) | set;
    }
    tags_[victim] = tag;
    valid_[victim] = 1;
    dirty_[victim] = is_write ? 1 : 0;
    lru_[victim] = ++stamp_;
    return false;
}

CacheSim::CacheSim()
    : CacheSim(CacheConfig{32 * 1024, 8, 64},
               CacheConfig{8 * 1024 * 1024, 16, 64})
{}

CacheSim::CacheSim(const CacheConfig &d1, const CacheConfig &ll)
    : d1_(d1), ll_(ll),
      lineShift_(log2Exact(d1.lineBytes, "line size"))
{
    if (d1.lineBytes != ll.lineBytes)
        fatal("D1 and LL must share a line size");
}

CacheAccessResult
CacheSim::access(vg::Addr addr, unsigned size, bool is_write)
{
    CacheAccessResult res;
    if (size == 0)
        return res;
    std::uint64_t first = addr >> lineShift_;
    std::uint64_t last = (addr + size - 1) >> lineShift_;
    for (std::uint64_t line = first; line <= last; ++line) {
        // Last-line filter: a repeat of the immediately preceding
        // access is a guaranteed MRU hit. A write through the filter
        // requires the dirty bit to be set already; otherwise fall
        // through so accessLine records it.
        if (haveLastLine_ && line == lastLine_ &&
            (!is_write || lastLineDirty_)) {
            d1_.countFilteredHit();
            continue;
        }
        if (!d1_.accessLine(line, is_write)) {
            ++res.d1Misses;
            // A dirty line displaced from D1 is written back to LL.
            if (d1_.lastAccessWroteBack())
                ll_.accessLine(d1_.lastWriteBackLine(), true);
            if (!ll_.accessLine(line, is_write))
                ++res.llMisses;
        }
        haveLastLine_ = true;
        lastLine_ = line;
        lastLineDirty_ = is_write;
    }
    return res;
}

} // namespace sigil::cg
