/**
 * @file
 * Miss-ratio-curve tool.
 *
 * Attaches the exact reuse-distance tracker to the guest's data-access
 * stream at cache-line granularity. One profiling run yields the miss
 * ratio of *every* fully associative LRU cache size at once — the
 * quantitative form of the paper's cache/scratchpad sizing discussion
 * (Section IV-B), and the input to buffer-vs-bandwidth (BB) curves for
 * accelerator design. At power-of-two capacities the curve is exact.
 */

#ifndef SIGIL_CG_MRC_TOOL_HH
#define SIGIL_CG_MRC_TOOL_HH

#include "shadow/reuse_distance.hh"
#include "vg/tool.hh"

namespace sigil::cg {

/** Records LRU stack distances of every data access. */
class MrcTool : public vg::Tool
{
  public:
    /** @param line_shift log2 of the tracked line size (6 = 64B). */
    explicit MrcTool(unsigned line_shift = 6)
        : lineShift_(line_shift)
    {}

    void
    memRead(vg::Addr addr, unsigned size) override
    {
        touch(addr, size);
    }

    void
    memWrite(vg::Addr addr, unsigned size) override
    {
        touch(addr, size);
    }

    const shadow::ReuseDistanceTracker &tracker() const
    {
        return tracker_;
    }

    unsigned lineBytes() const { return 1u << lineShift_; }

    /** Miss ratio of a fully associative LRU cache of the given size. */
    double
    missRatioForBytes(std::uint64_t cache_bytes) const
    {
        std::uint64_t lines = cache_bytes >> lineShift_;
        return tracker_.missRatio(lines == 0 ? 1 : lines);
    }

  private:
    void
    touch(vg::Addr addr, unsigned size)
    {
        if (size == 0)
            return;
        std::uint64_t first = addr >> lineShift_;
        std::uint64_t last = (addr + size - 1) >> lineShift_;
        for (std::uint64_t line = first; line <= last; ++line)
            tracker_.access(line);
    }

    unsigned lineShift_;
    shadow::ReuseDistanceTracker tracker_;
};

} // namespace sigil::cg

#endif // SIGIL_CG_MRC_TOOL_HH
