/**
 * @file
 * Two-level data-cache simulator.
 *
 * Mirrors the on-the-fly cache simulation Callgrind performs while
 * profiling: a first-level data cache (D1) backed by a last-level cache
 * (LL), both set-associative with true-LRU replacement. The miss counts
 * feed the cycle-estimation formula of the cost model.
 */

#ifndef SIGIL_CG_CACHE_SIM_HH
#define SIGIL_CG_CACHE_SIM_HH

#include <cstdint>
#include <vector>

#include "vg/types.hh"

namespace sigil::cg {

/** Geometry of one cache level. */
struct CacheConfig
{
    std::uint64_t sizeBytes;
    unsigned associativity;
    unsigned lineBytes;
};

/** One set-associative LRU cache level with write-back accounting. */
class CacheLevel
{
  public:
    explicit CacheLevel(const CacheConfig &config);

    /**
     * Access one line; returns true on hit. Updates LRU state and the
     * line's dirty bit when is_write is set. On a miss that evicts a
     * dirty line, a write-back is counted and the victim's line number
     * is retrievable via lastWriteBackLine() until the next access.
     */
    bool accessLine(std::uint64_t line_number, bool is_write = false);

    /** Victim line of the most recent dirty eviction, or no value. */
    bool lastAccessWroteBack() const { return wroteBack_; }
    std::uint64_t lastWriteBackLine() const { return writeBackLine_; }

    /** Dirty lines written back on eviction so far. */
    std::uint64_t writeBacks() const { return writeBacks_; }

    /**
     * Account an access that the caller proved is a hit without
     * probing the set (the hierarchy's last-line filter). Counts like
     * accessLine() returning true but skips tag compare and LRU work.
     */
    void countFilteredHit() { ++accesses_; }

    unsigned lineBytes() const { return lineBytes_; }
    std::uint64_t numSets() const { return numSets_; }
    unsigned associativity() const { return assoc_; }

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }

  private:
    unsigned lineBytes_;
    unsigned lineShift_;
    unsigned assoc_;
    std::uint64_t numSets_;
    unsigned setShift_;
    /** tags_[set * assoc + way]; lru_ rank parallel to it. */
    std::vector<std::uint64_t> tags_;
    std::vector<std::uint8_t> valid_;
    std::vector<std::uint8_t> dirty_;
    std::vector<std::uint64_t> lru_;
    bool wroteBack_ = false;
    std::uint64_t writeBackLine_ = 0;
    std::uint64_t writeBacks_ = 0;
    std::uint64_t stamp_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
};

/** Result of one memory access through the hierarchy. */
struct CacheAccessResult
{
    unsigned d1Misses = 0;
    unsigned llMisses = 0;
};

/**
 * The D1 + LL hierarchy. Accesses spanning multiple lines touch each
 * line once, as cachegrind does.
 *
 * A one-entry last-line filter short-circuits the common case of
 * consecutive accesses to the same D1 line (the same hoisting the
 * shadow-memory span path applies to chunk resolution): the previous
 * access left that line most-recently-used in its set, so a repeat
 * access cannot miss, cannot evict, and cannot change the relative LRU
 * order — the full probe is skipped and only the access counter moves.
 * Hit/miss/write-back statistics are bit-identical to the unfiltered
 * simulation.
 */
class CacheSim
{
  public:
    /** Default geometry: 32KiB/8-way D1, 8MiB/16-way LL, 64B lines. */
    CacheSim();
    CacheSim(const CacheConfig &d1, const CacheConfig &ll);

    /** Simulate a data access; returns miss counts incurred. */
    CacheAccessResult access(vg::Addr addr, unsigned size,
                             bool is_write = false);

    const CacheLevel &d1() const { return d1_; }
    const CacheLevel &ll() const { return ll_; }

  private:
    CacheLevel d1_;
    CacheLevel ll_;
    unsigned lineShift_;

    /** @name Last-line filter */
    /// @{
    bool haveLastLine_ = false;
    /** The line of the immediately preceding D1 access. */
    std::uint64_t lastLine_ = 0;
    /** Whether that line is known dirty (write already recorded). */
    bool lastLineDirty_ = false;
    /// @}
};

} // namespace sigil::cg

#endif // SIGIL_CG_CACHE_SIM_HH
