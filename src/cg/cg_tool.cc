#include "cg_tool.hh"

#include <algorithm>

#include "support/logging.hh"

namespace sigil::cg {

const CgCounters CgTool::kZero{};

CgCounters &
CgTool::row(vg::ContextId ctx)
{
    std::size_t idx = static_cast<std::size_t>(ctx);
    if (idx >= rows_.size())
        rows_.resize(idx + 1);
    return rows_[idx];
}

void
CgTool::fetchCode(vg::ContextId ctx, std::uint64_t instr_bytes)
{
    std::size_t idx = static_cast<std::size_t>(ctx);
    if (idx >= fetchPos_.size())
        fetchPos_.resize(idx + 1, 0);
    vg::FunctionId fn = guest_->contexts().function(ctx);
    vg::Addr base = kCodeBase + static_cast<vg::Addr>(fn) * kFnCodeBytes;
    // Cap the walk at one wrap of the region: beyond that every line
    // has been touched already this call.
    std::uint64_t bytes =
        std::min<std::uint64_t>(instr_bytes, kFnCodeBytes);
    std::uint32_t pos = fetchPos_[idx];
    CgCounters &c = row(ctx);
    std::uint32_t line_bytes = i1_.lineBytes();
    for (std::uint64_t done = 0; done < bytes; done += line_bytes) {
        vg::Addr addr = base + (pos % kFnCodeBytes);
        if (!i1_.accessLine(addr / line_bytes) && collecting_)
            ++c.i1Misses;
        pos += line_bytes;
    }
    fetchPos_[idx] = pos % kFnCodeBytes;
}

void
CgTool::roi(bool active)
{
    if (roiOnly_)
        collecting_ = active;
}

void
CgTool::fnEnter(vg::ContextId ctx, vg::CallNum call)
{
    (void)call;
    if (collecting_)
        ++row(ctx).calls;
    // Entering a function fetches its entry line.
    fetchPos_.resize(
        std::max<std::size_t>(fetchPos_.size(),
                              static_cast<std::size_t>(ctx) + 1),
        0);
    fetchPos_[static_cast<std::size_t>(ctx)] = 0;
    fetchCode(ctx, 4);
}

void
CgTool::fnLeave(vg::ContextId ctx, vg::CallNum call)
{
    (void)ctx;
    (void)call;
}

void
CgTool::memRead(vg::Addr addr, unsigned size)
{
    readAt(addr, size,
           collecting_ ? guest_->currentContext() : vg::kInvalidContext);
}

void
CgTool::readAt(vg::Addr addr, unsigned size, vg::ContextId ctx)
{
    CacheAccessResult r = caches_.access(addr, size);
    if (!collecting_)
        return;
    CgCounters &c = row(ctx);
    ++c.instructions;
    ++c.reads;
    c.readBytes += size;
    c.d1Misses += r.d1Misses;
    c.llMisses += r.llMisses;
}

void
CgTool::memWrite(vg::Addr addr, unsigned size)
{
    writeAt(addr, size,
            collecting_ ? guest_->currentContext() : vg::kInvalidContext);
}

void
CgTool::writeAt(vg::Addr addr, unsigned size, vg::ContextId ctx)
{
    CacheAccessResult r = caches_.access(addr, size, true);
    if (!collecting_)
        return;
    CgCounters &c = row(ctx);
    ++c.instructions;
    ++c.writes;
    c.writeBytes += size;
    c.d1Misses += r.d1Misses;
    c.llMisses += r.llMisses;
}

void
CgTool::op(std::uint64_t iops, std::uint64_t flops)
{
    opAt(iops, flops, guest_->currentContext());
}

void
CgTool::opAt(std::uint64_t iops, std::uint64_t flops, vg::ContextId ctx)
{
    if (collecting_) {
        CgCounters &c = row(ctx);
        c.instructions += iops + flops;
        c.iops += iops;
        c.flops += flops;
    }
    // Four code bytes per retired operation.
    fetchCode(ctx, (iops + flops) * 4);
}

void
CgTool::branch(bool taken)
{
    branchAt(taken, guest_->currentContext());
}

void
CgTool::branchAt(bool taken, vg::ContextId ctx)
{
    bool mispredict = branches_.record(ctx, taken);
    if (!collecting_)
        return;
    CgCounters &c = row(ctx);
    ++c.instructions;
    ++c.branches;
    if (mispredict)
        ++c.branchMispredicts;
}

void
CgTool::processBatch(const vg::EventBuffer &batch)
{
    const vg::EventKind *kinds = batch.kinds();
    const std::uint64_t *as = batch.as();
    const std::uint64_t *bs = batch.bs();
    const vg::ContextId *ctxs = batch.ctxs();
    for (std::size_t i = 0, n = batch.size(); i < n; ++i) {
        switch (kinds[i]) {
          case vg::EventKind::kRead:
            readAt(as[i], static_cast<unsigned>(bs[i]), ctxs[i]);
            break;
          case vg::EventKind::kWrite:
            writeAt(as[i], static_cast<unsigned>(bs[i]), ctxs[i]);
            break;
          case vg::EventKind::kOp:
            opAt(as[i], bs[i], ctxs[i]);
            break;
          case vg::EventKind::kBranch:
            branchAt(as[i] != 0, ctxs[i]);
            break;
          case vg::EventKind::kEnter:
            fnEnter(ctxs[i], batch.call(i));
            break;
          case vg::EventKind::kLeave:
          case vg::EventKind::kThreadSwitch:
          case vg::EventKind::kBarrier:
            break;
          case vg::EventKind::kRoi:
            roi(as[i] != 0);
            break;
        }
    }
}

const CgCounters &
CgTool::counters(vg::ContextId ctx) const
{
#ifndef NDEBUG
    SIGIL_ASSERT(guest_ == nullptr || !guest_->eventsPendingDispatch(),
                 "tool state read with events pending — call "
                 "Guest::sync() first");
#endif
    std::size_t idx = static_cast<std::size_t>(ctx);
    return idx < rows_.size() ? rows_[idx] : kZero;
}

CgProfile
CgTool::takeProfile() const
{
    if (guest_ == nullptr)
        panic("CgTool::takeProfile before attach");
#ifndef NDEBUG
    SIGIL_ASSERT(!guest_->eventsPendingDispatch(),
                 "tool state read with events pending — call "
                 "Guest::sync() first");
#endif
    const vg::ContextTree &ctxs = guest_->contexts();
    const vg::FunctionRegistry &fns = guest_->functions();

    CgProfile profile;
    profile.program = guest_->programName();
    profile.rows.resize(ctxs.size());
    for (std::size_t i = 0; i < ctxs.size(); ++i) {
        vg::ContextId ctx = static_cast<vg::ContextId>(i);
        CgRow &out = profile.rows[i];
        out.ctx = ctx;
        out.parent = ctxs.parent(ctx);
        out.fn = ctxs.function(ctx);
        out.fnName = fns.name(out.fn);
        out.displayName = ctxs.displayName(ctx);
        out.path = ctxs.pathName(ctx);
        out.self = counters(ctx);
    }
    profile.accumulateInclusive();
    return profile;
}

} // namespace sigil::cg
