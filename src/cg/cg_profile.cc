#include "cg_profile.hh"

#include "support/logging.hh"

namespace sigil::cg {

std::uint64_t
CgProfile::totalCycles() const
{
    std::uint64_t total = 0;
    for (const CgRow &row : rows) {
        if (row.parent == vg::kInvalidContext)
            total += row.incl.cycleEstimate();
    }
    return total;
}

std::uint64_t
CgProfile::totalInstructions() const
{
    std::uint64_t total = 0;
    for (const CgRow &row : rows)
        total += row.self.instructions;
    return total;
}

void
CgProfile::accumulateInclusive()
{
    for (CgRow &row : rows)
        row.incl = row.self;
    // Contexts are created parent-before-child, so a reverse sweep folds
    // every subtree upward in one pass.
    for (std::size_t i = rows.size(); i-- > 0;) {
        const CgRow &row = rows[i];
        if (row.parent == vg::kInvalidContext)
            continue;
        if (static_cast<std::size_t>(row.parent) >= rows.size() ||
            row.parent >= row.ctx) {
            panic("CgProfile: context %d has out-of-order parent %d",
                  row.ctx, row.parent);
        }
        rows[static_cast<std::size_t>(row.parent)].incl.add(row.incl);
    }
}

} // namespace sigil::cg
