/**
 * @file
 * Branch-misprediction model.
 *
 * Callgrind attributes a branch-misprediction count to each function;
 * the cost model charges a fixed penalty per mispredict. Lacking real
 * branch-site addresses in the synthetic event stream, we predict with a
 * 2-bit saturating counter per calling context, which captures the
 * dominant-direction behaviour the cycle formula needs.
 */

#ifndef SIGIL_CG_BRANCH_SIM_HH
#define SIGIL_CG_BRANCH_SIM_HH

#include <cstdint>
#include <vector>

#include "vg/types.hh"

namespace sigil::cg {

/** Per-context 2-bit saturating-counter predictor. */
class BranchSim
{
  public:
    /**
     * Record a branch outcome for a context.
     * @return true if the branch was mispredicted.
     */
    bool
    record(vg::ContextId ctx, bool taken)
    {
        std::size_t idx = static_cast<std::size_t>(ctx);
        if (idx >= state_.size())
            state_.resize(idx + 1, 1); // weakly not-taken
        std::uint8_t &s = state_[idx];
        bool predict_taken = s >= 2;
        bool mispredict = predict_taken != taken;
        if (taken) {
            if (s < 3)
                ++s;
        } else {
            if (s > 0)
                --s;
        }
        return mispredict;
    }

  private:
    std::vector<std::uint8_t> state_;
};

} // namespace sigil::cg

#endif // SIGIL_CG_BRANCH_SIM_HH
