/**
 * @file
 * The Callgrind-like profiling tool.
 *
 * Attributes self costs (instructions, ops, memory traffic, simulated
 * cache misses, branch mispredictions, call counts) to calling contexts
 * while the guest runs, and snapshots a CgProfile on demand. This
 * supplies the "estimated software run time" the partitioning case study
 * needs.
 */

#ifndef SIGIL_CG_CG_TOOL_HH
#define SIGIL_CG_CG_TOOL_HH

#include <vector>

#include "cg/branch_sim.hh"
#include "cg/cache_sim.hh"
#include "cg/cg_profile.hh"
#include "vg/guest.hh"
#include "vg/tool.hh"

namespace sigil::cg {

/** Callgrind-style cost-attribution tool. */
class CgTool : public vg::Tool
{
  public:
    /** Synthetic code region of a function: 1 KiB per function id. */
    static constexpr vg::Addr kCodeBase = 0x0000000400000000ull;
    static constexpr unsigned kFnCodeBytes = 1024;

    CgTool() : CgTool(CacheConfig{32 * 1024, 8, 64},
                      CacheConfig{8 * 1024 * 1024, 16, 64})
    {}

    CgTool(const CacheConfig &d1, const CacheConfig &ll)
        : caches_(d1, ll), i1_(CacheConfig{32 * 1024, 8, 64})
    {}

    /**
     * Restrict cost attribution to the guest's region of interest
     * (cache and predictor state still warm up outside it). Call
     * before the run starts.
     */
    void
    setRoiOnly(bool roi_only)
    {
        roiOnly_ = roi_only;
        collecting_ = !roi_only;
    }

    void fnEnter(vg::ContextId ctx, vg::CallNum call) override;
    void fnLeave(vg::ContextId ctx, vg::CallNum call) override;
    void memRead(vg::Addr addr, unsigned size) override;
    void memWrite(vg::Addr addr, unsigned size) override;
    void op(std::uint64_t iops, std::uint64_t flops) override;
    void branch(bool taken) override;
    void roi(bool active) override;

    /**
     * Native batch consumer: drives the cache and branch simulators
     * straight from the buffer's lanes, using each record's ambient
     * context instead of querying the guest per event.
     */
    void processBatch(const vg::EventBuffer &batch) override;

    /** The instruction-side first-level cache. */
    const CacheLevel &i1() const { return i1_; }

    /**
     * Self counters of one context (zeroes if never seen).
     *
     * With batched/async dispatch (GuestConfig::batchEvents /
     * asyncTools) call Guest::sync() first — the tool lags the guest
     * until the in-flight buffers drain. Debug builds assert that no
     * events are pending. (Guest::finish() syncs, so post-run reads
     * need nothing extra.)
     */
    const CgCounters &counters(vg::ContextId ctx) const;

    const CacheSim &caches() const { return caches_; }

    /**
     * Snapshot the profile, with names and inclusive costs filled in.
     * Requires Guest::sync() first under batched/async dispatch (see
     * counters()); debug builds assert that no events are pending.
     */
    CgProfile takeProfile() const;

  private:
    CgCounters &row(vg::ContextId ctx);

    /** @name Event bodies with explicit ambient context */
    /// @{
    void readAt(vg::Addr addr, unsigned size, vg::ContextId ctx);
    void writeAt(vg::Addr addr, unsigned size, vg::ContextId ctx);
    void opAt(std::uint64_t iops, std::uint64_t flops, vg::ContextId ctx);
    void branchAt(bool taken, vg::ContextId ctx);
    /// @}

    /**
     * Fetch instruction bytes for the current context from its
     * synthetic 1 KiB code region, charging I1 misses. The fetch
     * cursor wraps, so loops re-fetch the same lines (hits) while
     * function switches touch new lines.
     */
    void fetchCode(vg::ContextId ctx, std::uint64_t instr_bytes);

    bool roiOnly_ = false;
    bool collecting_ = true;
    std::vector<CgCounters> rows_;
    std::vector<std::uint32_t> fetchPos_;
    CacheSim caches_;
    CacheLevel i1_{CacheConfig{32 * 1024, 8, 64}};
    BranchSim branches_;
    static const CgCounters kZero;
};

} // namespace sigil::cg

#endif // SIGIL_CG_CG_TOOL_HH
