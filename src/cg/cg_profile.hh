/**
 * @file
 * Snapshot of a Callgrind-style profile.
 *
 * One row per calling context with self costs; inclusive costs are
 * accumulated over the context tree. The cycle estimate follows
 * Callgrind's formula: CEst = Ir + 10*Bm + 10*L1m + 100*LLm.
 */

#ifndef SIGIL_CG_CG_PROFILE_HH
#define SIGIL_CG_CG_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "vg/types.hh"

namespace sigil::cg {

/** Self-cost counters attributed to one calling context. */
struct CgCounters
{
    std::uint64_t instructions = 0;
    std::uint64_t iops = 0;
    std::uint64_t flops = 0;
    std::uint64_t reads = 0;
    std::uint64_t readBytes = 0;
    std::uint64_t writes = 0;
    std::uint64_t writeBytes = 0;
    std::uint64_t d1Misses = 0;
    std::uint64_t i1Misses = 0;
    std::uint64_t llMisses = 0;
    std::uint64_t branches = 0;
    std::uint64_t branchMispredicts = 0;
    std::uint64_t calls = 0;

    void
    add(const CgCounters &o)
    {
        instructions += o.instructions;
        iops += o.iops;
        flops += o.flops;
        reads += o.reads;
        readBytes += o.readBytes;
        writes += o.writes;
        writeBytes += o.writeBytes;
        d1Misses += o.d1Misses;
        i1Misses += o.i1Misses;
        llMisses += o.llMisses;
        branches += o.branches;
        branchMispredicts += o.branchMispredicts;
        calls += o.calls;
    }

    /** Callgrind's estimated cycle count for these costs (L1m counts
     *  both instruction- and data-side first-level misses). */
    std::uint64_t
    cycleEstimate() const
    {
        return instructions + 10 * branchMispredicts +
               10 * (d1Misses + i1Misses) + 100 * llMisses;
    }
};

/** One context row of a profile. */
struct CgRow
{
    vg::ContextId ctx = vg::kInvalidContext;
    vg::ContextId parent = vg::kInvalidContext;
    vg::FunctionId fn = vg::kInvalidFunction;
    std::string fnName;
    std::string displayName;
    std::string path;
    CgCounters self;
    CgCounters incl;
};

/** A full profile: rows indexed by context id. */
struct CgProfile
{
    std::string program;
    std::vector<CgRow> rows;

    /** Sum of inclusive cycle estimates over root contexts. */
    std::uint64_t totalCycles() const;

    /** Sum of self instructions over all rows. */
    std::uint64_t totalInstructions() const;

    /** Compute inclusive costs from self costs (parents < children). */
    void accumulateInclusive();
};

} // namespace sigil::cg

#endif // SIGIL_CG_CG_PROFILE_HH
