/**
 * @file
 * Segment-parallel trace replay with speculative shadow deltas.
 *
 * Replaying one SGB2/SGB3 trace is inherently serial: every read's
 * classification depends on the last writer of its data unit, which may
 * be arbitrarily far back in the stream. This engine breaks the chain
 * by splitting the trace into S segments at event-frame boundaries (the
 * seek-index trailer gives O(1) cut points, docs/FORMATS.md §3.5;
 * without one the frame chain is scanned once) and replaying the
 * segments concurrently, each worker running the full tool stack
 * against its own *speculative* shadow:
 *
 *   - a unit the worker has written is *owned* — its local history is
 *     complete, so the serial classification kernels run unchanged;
 *   - a read of a unit the worker never wrote has an unknown producer.
 *     The unit is stamped with an interned Unresolved(segment,
 *     firstReadSeq) placeholder and the read is appended to a boundary
 *     log; the first local overwrite of such a unit logs a run
 *     termination and takes ownership.
 *
 * A sequential resolution pass then folds the segments in stream
 * order into the control profiler: worker stamp tables are re-interned
 * (reproducing the serial intern order), each boundary log is replayed
 * against the merged predecessor shadow — resolving every placeholder
 * to its real producer and rewriting comm-table rows and event-file X
 * records — and the worker's owned-unit delta is imported. Profiles
 * and event files are bit-identical to a serial replay.
 *
 * The speculative path requires a deterministic, unlimited serial
 * shadow (no chunk cap, no object attribution, per-event dispatch, no
 * shard engine). Every other configuration — sharded, batched/async,
 * bounded shadow, checkpointed — falls back to a *chained* scan: one
 * serial session stepped cut-to-cut, which keeps the per-segment
 * timing breakdown and (with a checkpoint path) writes a version-4
 * snapshot with segment provenance at every cut boundary. Chained
 * output is the serial output by construction, and serial and
 * segmented replays resume each other's checkpoint files.
 */

#ifndef SIGIL_CORE_SEGMENT_ENGINE_HH
#define SIGIL_CORE_SEGMENT_ENGINE_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/checkpoint.hh"
#include "core/sigil_profiler.hh"
#include "vg/guest.hh"
#include "vg/trace_error.hh"

namespace sigil::core {

/** How to partition and drive a segment-parallel replay. */
struct SegmentOptions
{
    /** Target segment count; 1 replays serially (chained path). */
    unsigned segments = 1;

    /** Worker threads for the speculative path; 0 = one per segment. */
    unsigned threads = 0;

    /** Error policy forwarded to every replay session. */
    vg::ReplayOptions replay;

    /**
     * Checkpointing (chained path only; an empty path disables it).
     * In addition to the periodic interval, a snapshot is written at
     * every segment cut, stamped with version-4 segment provenance.
     */
    CheckpointConfig checkpoint;
};

/** Wall-clock breakdown of one segmented replay, nanoseconds. */
struct SegmentTiming
{
    /** Cut planning: seek-index read or frame-chain scan. */
    std::uint64_t planNs = 0;

    /** Control scan (speculative path only). */
    std::uint64_t scanNs = 0;

    /** Ordered resolution merge (speculative path only). */
    std::uint64_t resolveNs = 0;

    /** Per-segment replay time, in stream order. */
    std::vector<std::uint64_t> workerNs;
};

/** What one segmented replay did. */
struct SegmentResult
{
    /** The serial-equivalent replay report. */
    vg::ReplayReport report;

    SegmentTiming timing;

    /** Segments actually replayed (≤ requested; cuts may coincide). */
    unsigned segmentsUsed = 1;

    /** True when the speculative worker path ran (vs. chained scan). */
    bool speculative = false;

    /** True when cut points came from the seek-index trailer. */
    bool usedSeekIndex = false;

    /** Checkpoint activity (chained path with a checkpoint path). */
    CheckpointStats checkpoint;
};

/**
 * Replay a trace image segment-parallel. The caller constructs the
 * guest and profiler and attaches the profiler, exactly as for a
 * serial replay; on return the pair holds the complete analysis state
 * (bit-identical to a serial replay of the same trace), ready for
 * takeProfile()/events().
 */
SegmentResult replaySegmented(std::string_view trace, vg::Guest &guest,
                              SigilProfiler &profiler,
                              const SegmentOptions &opts = {});

/**
 * replaySegmented() straight from a trace file (mmap'd when possible).
 * Returns an Io-cause error report if the file cannot be opened.
 */
SegmentResult replaySegmentedFile(const std::string &tracePath,
                                  vg::Guest &guest,
                                  SigilProfiler &profiler,
                                  const SegmentOptions &opts = {});

} // namespace sigil::core

#endif // SIGIL_CORE_SEGMENT_ENGINE_HH
