#include "sigil_profiler.hh"

#include <algorithm>

#include "support/logging.hh"

namespace sigil::core {

const CommAggregates SigilProfiler::kZero = CommAggregates();

namespace {

std::uint64_t
edgeKey(vg::ContextId producer, vg::ContextId consumer)
{
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(producer))
            << 32) |
           static_cast<std::uint32_t>(consumer);
}

} // namespace

SigilProfiler::SigilProfiler(const SigilConfig &config)
    : config_(config),
      shadow_(shadow::ShadowMemory::Config{config.granularityShift,
                                           config.maxShadowChunks})
{
    shadow_.setEvictionHandler(
        [this](std::uint64_t unit, shadow::ShadowRef obj) {
            (void)unit;
            finalizeRun(obj.hot, obj.cold);
        });
    shadow_.setPressureHandler(
        [this](int failed_attempts) { degrade(failed_attempts); });
    collecting_ = !config_.roiOnly;
    reuseEnabled_ = config_.collectReuse;
}

void
SigilProfiler::degrade(int failed_attempts)
{
    if (degradationLevel_ == 0) {
        degradationLevel_ = 1;
        if (reuseEnabled_) {
            // Close out every pending run before dropping the mode so
            // the statistics collected so far keep their mass.
            shadow_.forEach(
                [this](std::uint64_t, shadow::ShadowRef obj) {
                    finalizeRun(obj.hot, obj.cold);
                });
            reuseEnabled_ = false;
            warn("SigilProfiler: shadow allocation pressure "
                 "(%d failed attempts) — dropping re-use tracking",
                 failed_attempts);
            return;
        }
    }
    if (degradationLevel_ == 1) {
        degradationLevel_ = 2;
        classifyEnabled_ = false;
        warn("SigilProfiler: shadow allocation pressure persists "
             "(%d failed attempts) — dropping read classification",
             failed_attempts);
    }
}

void
SigilProfiler::roi(bool active)
{
    if (config_.roiOnly)
        collecting_ = active;
}

void
SigilProfiler::attach(const vg::Guest &guest)
{
    Tool::attach(guest);
}

CommAggregates &
SigilProfiler::row(vg::ContextId ctx)
{
    std::size_t idx = static_cast<std::size_t>(ctx);
    if (idx >= rows_.size())
        rows_.resize(idx + 1);
    return rows_[idx];
}

void
SigilProfiler::fnEnter(vg::ContextId ctx, vg::CallNum call)
{
    if (collecting_)
        ++row(ctx).calls;
    if (!config_.collectEvents)
        return;
    // The first segment of a call is spawned by the caller's segment
    // that was open at the call site (on the same thread).
    SegState &state = seg();
    std::uint64_t pred = state.open ? state.segment.seq : 0;
    startSegment(state, ctx, call, pred);
    state.frameLastSeq.push_back(state.segment.seq);
}

void
SigilProfiler::fnLeave(vg::ContextId ctx, vg::CallNum call)
{
    (void)ctx;
    (void)call;
    if (!config_.collectEvents)
        return;
    std::size_t depth = guest_->callDepth();
    leaveAt(depth > 0 ? guest_->currentContext() : vg::kInvalidContext,
            depth > 0 ? guest_->currentCall() : 0, depth);
}

void
SigilProfiler::leaveAt(vg::ContextId resumed_ctx, vg::CallNum resumed_call,
                       std::size_t depth)
{
    if (!config_.collectEvents)
        return;
    SegState &state = seg();
    if (state.frameLastSeq.empty())
        panic("SigilProfiler::fnLeave with no open frame");
    state.frameLastSeq.pop_back();
    // The guest has already popped the left frame, so its current frame
    // (if any) is the caller resuming execution: open a fresh segment
    // for this re-occurrence of the caller, serially ordered after the
    // caller's previous segment (not after the child — functions are
    // modelled as non-blocking).
    if (depth > 0) {
        startSegment(state, resumed_ctx, resumed_call,
                     state.frameLastSeq.back());
        state.frameLastSeq.back() = state.segment.seq;
    } else {
        flushSegment(state);
    }
}

SigilProfiler::ObjectStats &
SigilProfiler::objectSlot(int alloc_index)
{
    std::size_t slot = static_cast<std::size_t>(alloc_index + 1);
    if (slot >= objectStats_.size())
        objectStats_.resize(slot + 1);
    return objectStats_[slot];
}

void
SigilProfiler::memWrite(vg::Addr addr, unsigned size)
{
    writeAccess(addr, size, guest_->currentContext(),
                guest_->currentCall());
}

void
SigilProfiler::writeAccess(vg::Addr addr, unsigned size,
                           vg::ContextId ctx, vg::CallNum call)
{
    if (collecting_) {
        row(ctx).writeBytes += size;
        if (config_.collectObjects)
            objectSlot(guest_->allocationOf(addr)).writeBytes += size;
    }
    SegState &state = seg();
    if (state.open)
        ++state.segment.writes;
    std::uint64_t seq = state.open ? state.segment.seq : 0;

    std::uint64_t first = shadow_.unitOf(addr);
    std::uint64_t last = shadow_.lastUnitOf(addr, size);
    if (config_.referenceShadowPath) {
        // Reference path: resolve the chunk once per unit.
        for (std::uint64_t u = first; u <= last; ++u) {
            shadow::ShadowRef s = shadow_.lookup(u);
            writeUnit(s.hot, s.cold, ctx, call, seq);
        }
        return;
    }
    shadow_.span(first, last, [&](shadow::ShadowMemory::Run run) {
        for (std::size_t i = 0; i < run.count; ++i)
            writeUnit(run.hot[i], run.cold[i], ctx, call, seq);
    });
}

void
SigilProfiler::writeUnit(shadow::ShadowHot &hot, shadow::ShadowCold &cold,
                         vg::ContextId ctx, vg::CallNum call,
                         std::uint64_t seq)
{
    if (reuseEnabled_)
        finalizeRun(hot, cold);
    hot.lastWriterCtx = ctx;
    hot.lastWriterCall = call;
    hot.lastWriterSeq = seq;
    hot.lastWriterThread = currentTid_;
    hot.lastReaderCtx = vg::kInvalidContext;
    hot.lastReaderCall = 0;
}

void
SigilProfiler::memRead(vg::Addr addr, unsigned size)
{
    readAccess(addr, size, guest_->currentContext(),
               guest_->currentCall(), guest_->now());
}

void
SigilProfiler::readAccess(vg::Addr addr, unsigned size, vg::ContextId ctx,
                          vg::CallNum call, vg::Tick now)
{
    if (collecting_)
        row(ctx).readBytes += size;
    SegState &state = seg();
    if (state.open)
        ++state.segment.reads;
    std::uint64_t unique_bytes_this_access = 0;

    std::uint64_t first = shadow_.unitOf(addr);
    std::uint64_t last = shadow_.lastUnitOf(addr, size);
    const unsigned shift = shadow_.granularityShift();
    const std::uint64_t unit_bytes = shadow_.unitBytes();
    if (config_.referenceShadowPath) {
        // Reference path: resolve the chunk and compute the covered
        // byte width from scratch for every unit.
        for (std::uint64_t u = first; u <= last; ++u) {
            shadow::ShadowRef s = shadow_.lookup(u);
            std::uint64_t unit_lo = u << shift;
            std::uint64_t unit_hi = unit_lo + unit_bytes;
            std::uint64_t lo = std::max<std::uint64_t>(addr, unit_lo);
            std::uint64_t hi =
                std::min<std::uint64_t>(addr + size, unit_hi);
            readUnit(s.hot, s.cold, hi - lo, ctx, call, now, state,
                     unique_bytes_this_access);
        }
    } else {
        shadow_.span(first, last, [&](shadow::ShadowMemory::Run run) {
            for (std::size_t i = 0; i < run.count; ++i) {
                // Every unit covers a full unit's worth of the access
                // except possibly the two end units.
                std::uint64_t u = run.firstUnit + i;
                std::uint64_t w = unit_bytes;
                if (u == first || u == last) {
                    std::uint64_t unit_lo = u << shift;
                    std::uint64_t unit_hi = unit_lo + unit_bytes;
                    std::uint64_t lo =
                        std::max<std::uint64_t>(addr, unit_lo);
                    std::uint64_t hi =
                        std::min<std::uint64_t>(addr + size, unit_hi);
                    w = hi - lo;
                }
                readUnit(run.hot[i], run.cold[i], w, ctx, call, now,
                         state, unique_bytes_this_access);
            }
        });
    }

    if (collecting_ && config_.collectObjects) {
        ObjectStats &obj = objectSlot(guest_->allocationOf(addr));
        obj.readBytes += size;
        obj.uniqueReadBytes += unique_bytes_this_access;
    }
}

void
SigilProfiler::readUnit(shadow::ShadowHot &s, shadow::ShadowCold &c,
                        std::uint64_t w, vg::ContextId ctx,
                        vg::CallNum call, vg::Tick now, SegState &state,
                        std::uint64_t &unique_bytes_this_access)
{
    vg::ContextId producer =
        s.everWritten() ? s.lastWriterCtx : kUninitProducer;
    bool unique = s.lastReaderCtx != ctx;
    bool local = producer == ctx;

    if (!collecting_) {
        // Outside the ROI: maintain shadow state only. Clear any
        // pending run so pre-ROI reads never leak into ROI stats.
        c.runReads = 0;
        s.lastReaderCtx = ctx;
        s.lastReaderCall = call;
        return;
    }

    if (!classifyEnabled_) {
        // Degradation level 2: raw byte totals (readAccess) continue,
        // but per-class aggregation stops. Reader identity is still
        // maintained so a later analysis of the shadow state remains
        // coherent.
        s.lastReaderCtx = ctx;
        s.lastReaderCall = call;
        return;
    }

    if (unique)
        unique_bytes_this_access += w;
    if (local) {
        // row() may grow rows_, so the reader row is re-fetched after
        // any call that can resize it rather than cached across them.
        CommAggregates &reader = row(ctx);
        if (unique)
            reader.uniqueLocalBytes += w;
        else
            reader.nonuniqueLocalBytes += w;
    } else {
        CommAggregates &reader = row(ctx);
        if (unique)
            reader.uniqueInputBytes += w;
        else
            reader.nonuniqueInputBytes += w;
        if (producer >= 0) {
            CommAggregates &prod = row(producer);
            if (unique)
                prod.uniqueOutputBytes += w;
            else
                prod.nonuniqueOutputBytes += w;
        }
        std::uint64_t key = edgeKey(producer, ctx);
        auto [it, inserted] = edgeIndex_.try_emplace(key, edges_.size());
        if (inserted)
            edges_.push_back(CommEdge{producer, ctx, 0, 0});
        CommEdge &edge = edges_[it->second];
        if (unique)
            edge.uniqueBytes += w;
        else
            edge.nonuniqueBytes += w;
    }

    // Cross-thread communication: producer ran on another thread.
    // Orthogonal to the local/input axis — two threads executing
    // the same function still communicate through memory.
    if (s.everWritten() && s.lastWriterThread != currentTid_) {
        CommAggregates &reader = row(ctx);
        if (unique)
            reader.uniqueInterThreadBytes += w;
        else
            reader.nonuniqueInterThreadBytes += w;
        std::uint64_t tkey =
            (static_cast<std::uint64_t>(s.lastWriterThread) << 32) |
            currentTid_;
        auto [tit, tin] =
            threadEdgeIndex_.try_emplace(tkey, threadEdges_.size());
        if (tin) {
            threadEdges_.push_back(
                ThreadCommEdge{s.lastWriterThread, currentTid_, 0, 0});
        }
        ThreadCommEdge &tedge = threadEdges_[tit->second];
        if (unique)
            tedge.uniqueBytes += w;
        else
            tedge.nonuniqueBytes += w;
    }

    if (config_.collectEvents && unique && s.everWritten() &&
        state.open && s.lastWriterSeq != state.segment.seq) {
        state.xfers[s.lastWriterSeq] += w;
    }

    if (reuseEnabled_) {
        if (s.lastReaderCtx == ctx && s.lastReaderCall == call) {
            ++c.runReads;
            c.runLastRead = now;
        } else {
            finalizeRun(s, c);
            c.runReads = 1;
            c.runFirstRead = now;
            c.runLastRead = now;
        }
    }

    // Per-unit access totals only feed the line-granularity re-use
    // breakdown, so byte-mode reads skip the cold record entirely
    // unless they are tracking a re-use run.
    if (config_.granularityShift > 0)
        ++c.totalAccesses;
    s.lastReaderCtx = ctx;
    s.lastReaderCall = call;
}

void
SigilProfiler::op(std::uint64_t iops, std::uint64_t flops)
{
    if (!collecting_)
        return;
    opAt(iops, flops, guest_->currentContext());
}

void
SigilProfiler::opAt(std::uint64_t iops, std::uint64_t flops,
                    vg::ContextId ctx)
{
    if (!collecting_)
        return;
    if (ctx == vg::kInvalidContext)
        panic("SigilProfiler: op outside any function");
    CommAggregates &r = row(ctx);
    r.iops += iops;
    r.flops += flops;
    SegState &state = seg();
    if (state.open) {
        state.segment.iops += iops;
        state.segment.flops += flops;
    }
}

void
SigilProfiler::threadSwitch(vg::ThreadId tid)
{
    // At this point the guest's current thread is already tid.
    bool active = guest_->callDepth() > 0;
    threadSwitchAt(tid,
                   active ? guest_->currentContext() : vg::kInvalidContext,
                   active ? guest_->currentCall() : 0);
}

void
SigilProfiler::threadSwitchAt(vg::ThreadId tid, vg::ContextId ctx,
                              vg::CallNum call)
{
    if (static_cast<std::size_t>(tid) >= segStates_.size())
        segStates_.resize(static_cast<std::size_t>(tid) + 1);
    if (!config_.collectEvents) {
        currentTid_ = tid;
        return;
    }
    // A compute segment cannot span a descheduling: flush the outgoing
    // thread's open segment so the trace stays topologically ordered
    // (a consumer on another thread may reference it immediately).
    flushSegment(seg());
    currentTid_ = tid;
    // Resume the incoming thread's current function (if any) as a new
    // segment chained to its previous one.
    SegState &state = seg();
    if (!state.frameLastSeq.empty()) {
        startSegment(state, ctx, call, state.frameLastSeq.back());
        state.frameLastSeq.back() = state.segment.seq;
    }
}

void
SigilProfiler::finalizeRun(shadow::ShadowHot &hot, shadow::ShadowCold &cold)
{
    if (!reuseEnabled_)
        return;
    if (hot.lastReaderCtx == vg::kInvalidContext || cold.runReads == 0)
        return;
    std::uint64_t reuse = cold.runReads - 1;
    unitReuseBreakdown_.add(reuse);
    if (reuse >= 1) {
        CommAggregates &r = row(hot.lastReaderCtx);
        ++r.reusedUnits;
        r.reuseReads += reuse;
        std::uint64_t lifetime = cold.runLastRead - cold.runFirstRead;
        r.lifetimeSum += lifetime;
        r.lifetimeHist.add(lifetime);
    }
    cold.runReads = 0;
}

std::uint64_t
SigilProfiler::resolvePred(std::uint64_t seq) const
{
    // Follow the forwarding chain through skipped empty segments so an
    // ordering edge never dangles on a segment absent from the trace.
    auto it = skippedSegments_.find(seq);
    while (it != skippedSegments_.end()) {
        seq = it->second;
        it = skippedSegments_.find(seq);
    }
    return seq;
}

void
SigilProfiler::barrier()
{
    if (!config_.collectEvents)
        return;
    bool active = guest_->callDepth() > 0;
    barrierAt(active ? guest_->currentContext() : vg::kInvalidContext,
              active ? guest_->currentCall() : 0);
}

void
SigilProfiler::barrierAt(vg::ContextId ctx, vg::CallNum call)
{
    if (!config_.collectEvents)
        return;
    // Close every thread's open segment; everything after the barrier
    // is ordered after everything before it.
    barrierPreds_.clear();
    for (SegState &state : segStates_) {
        flushSegment(state);
        if (!state.frameLastSeq.empty())
            barrierPreds_.push_back(state.frameLastSeq.back());
        state.barrierPending = true;
    }
    // The current thread keeps running: reopen its segment so the
    // post-barrier work lands in a node that carries the barrier edges.
    SegState &cur = seg();
    if (!cur.frameLastSeq.empty()) {
        startSegment(cur, ctx, call, cur.frameLastSeq.back());
        cur.frameLastSeq.back() = cur.segment.seq;
    }
}

void
SigilProfiler::startSegment(SegState &state, vg::ContextId ctx,
                            vg::CallNum call, std::uint64_t pred_seq)
{
    flushSegment(state);
    state.segment = ComputeEvent{};
    state.segment.seq = nextSeq_++;
    state.segment.predSeq = resolvePred(pred_seq);
    state.segment.ctx = ctx;
    state.segment.call = call;
    state.open = true;
    if (state.barrierPending) {
        // Zero-byte ordering edges from every thread's pre-barrier
        // work (the serial predecessor already covers this thread's
        // own chain).
        for (std::uint64_t pred : barrierPreds_) {
            std::uint64_t resolved = resolvePred(pred);
            if (resolved != state.segment.predSeq && resolved != 0)
                state.xfers.try_emplace(resolved, 0);
        }
        state.barrierPending = false;
    }
}

void
SigilProfiler::flushSegment(SegState &state)
{
    if (!state.open)
        return;
    const ComputeEvent &segment = state.segment;
    bool has_work = segment.iops || segment.flops || segment.reads ||
                    segment.writes;
    if (collecting_ && (has_work || !state.xfers.empty())) {
        // Emit incoming transfers in source order: the hash map's
        // iteration order is not part of the observable state, and a
        // checkpoint restore would otherwise reorder the X records.
        std::vector<std::pair<std::uint64_t, std::uint64_t>> ordered(
            state.xfers.begin(), state.xfers.end());
        std::sort(ordered.begin(), ordered.end());
        for (const auto &[src, bytes] : ordered) {
            XferEvent x;
            x.srcSeq = resolvePred(src);
            x.dstSeq = segment.seq;
            x.bytes = bytes;
            events_.records.push_back(EventRecord::makeXfer(x));
        }
        events_.records.push_back(EventRecord::makeCompute(segment));
    } else {
        skippedSegments_.emplace(segment.seq, segment.predSeq);
    }
    state.xfers.clear();
    state.open = false;
}

void
SigilProfiler::processBatch(const vg::EventBuffer &batch)
{
    const vg::EventKind *kinds = batch.kinds();
    const std::uint64_t *as = batch.as();
    const std::uint64_t *bs = batch.bs();
    const vg::ContextId *ctxs = batch.ctxs();
    const vg::CallNum *calls = batch.calls();
    const vg::Tick *ticks = batch.ticks();
    const std::uint32_t *depths = batch.depths();
    for (std::size_t i = 0, n = batch.size(); i < n; ++i) {
        switch (kinds[i]) {
          case vg::EventKind::kRead:
            readAccess(as[i], static_cast<unsigned>(bs[i]), ctxs[i],
                       calls[i], ticks[i]);
            break;
          case vg::EventKind::kWrite:
            writeAccess(as[i], static_cast<unsigned>(bs[i]), ctxs[i],
                        calls[i]);
            break;
          case vg::EventKind::kOp:
            if (collecting_)
                opAt(as[i], bs[i], ctxs[i]);
            break;
          case vg::EventKind::kBranch:
            break;
          case vg::EventKind::kEnter:
            fnEnter(ctxs[i], calls[i]);
            break;
          case vg::EventKind::kLeave:
            leaveAt(ctxs[i], calls[i], depths[i]);
            break;
          case vg::EventKind::kThreadSwitch:
            threadSwitchAt(static_cast<vg::ThreadId>(as[i]), ctxs[i],
                           calls[i]);
            break;
          case vg::EventKind::kBarrier:
            barrierAt(ctxs[i], calls[i]);
            break;
          case vg::EventKind::kRoi:
            roi(as[i] != 0);
            break;
        }
    }
}

void
SigilProfiler::finish()
{
    for (SegState &state : segStates_)
        flushSegment(state);
    shadow_.forEach([this](std::uint64_t unit, shadow::ShadowRef obj) {
        (void)unit;
        finalizeRun(obj.hot, obj.cold);
        if (config_.granularityShift > 0 && obj.cold.totalAccesses > 0)
            lineReuseBreakdown_.add(obj.cold.totalAccesses - 1);
    });
}

const CommAggregates &
SigilProfiler::aggregates(vg::ContextId ctx) const
{
#ifndef NDEBUG
    SIGIL_ASSERT(guest_ == nullptr || !guest_->eventsPendingDispatch(),
                 "tool state read with events pending — call "
                 "Guest::sync() first");
#endif
    std::size_t idx = static_cast<std::size_t>(ctx);
    return idx < rows_.size() ? rows_[idx] : kZero;
}

SigilProfile
SigilProfiler::takeProfile() const
{
    if (guest_ == nullptr)
        panic("SigilProfiler::takeProfile before attach");
#ifndef NDEBUG
    SIGIL_ASSERT(!guest_->eventsPendingDispatch(),
                 "tool state read with events pending — call "
                 "Guest::sync() first");
#endif
    const vg::ContextTree &ctxs = guest_->contexts();
    const vg::FunctionRegistry &fns = guest_->functions();

    SigilProfile profile;
    profile.program = guest_->programName();
    profile.granularityShift = config_.granularityShift;
    profile.rows.resize(ctxs.size());
    for (std::size_t i = 0; i < ctxs.size(); ++i) {
        vg::ContextId ctx = static_cast<vg::ContextId>(i);
        SigilRow &out = profile.rows[i];
        out.ctx = ctx;
        out.parent = ctxs.parent(ctx);
        out.fn = ctxs.function(ctx);
        out.fnName = fns.name(out.fn);
        out.displayName = ctxs.displayName(ctx);
        out.path = ctxs.pathName(ctx);
        out.agg = aggregates(ctx);
    }
    profile.edges = edges_;
    profile.threadEdges = threadEdges_;
    if (config_.collectObjects) {
        const auto &allocs = guest_->allocations();
        // Row i+1 of objectStats_ maps to allocation i; row 0 = other.
        for (std::size_t i = 0; i < allocs.size() + 1; ++i) {
            SigilProfile::ObjectRow row;
            if (i == 0) {
                row.tag = "<other>";
            } else {
                row.tag = allocs[i - 1].tag;
                row.base = allocs[i - 1].base;
                row.size = allocs[i - 1].size;
            }
            if (i < objectStats_.size()) {
                row.readBytes = objectStats_[i].readBytes;
                row.writeBytes = objectStats_[i].writeBytes;
                row.uniqueReadBytes = objectStats_[i].uniqueReadBytes;
            }
            profile.objects.push_back(std::move(row));
        }
    }
    profile.unitReuseBreakdown = unitReuseBreakdown_;
    profile.lineReuseBreakdown = lineReuseBreakdown_;
    profile.shadowPeakBytes = shadow_.peakBytes();
    profile.shadowEvictions = shadow_.stats().evictions;
    return profile;
}

namespace {

void
putLinearHistogram(ByteSink &sink, const LinearHistogram &h)
{
    sink.u64(h.binWidth());
    sink.varint(h.numBins());
    for (std::size_t i = 0; i < h.numBins(); ++i)
        sink.u64(h.binCount(i));
    sink.u64(h.overflowCount());
    sink.u64(h.totalValue());
    sink.u64(h.maxValue());
}

bool
getLinearHistogram(ByteSource &src, LinearHistogram &h)
{
    std::uint64_t bin_width = src.u64();
    if (bin_width != h.binWidth())
        return false;
    std::uint64_t n = src.varint();
    if (!src.ok() || n > (std::uint64_t{1} << 24))
        return false;
    std::vector<std::uint64_t> bins(static_cast<std::size_t>(n));
    for (auto &b : bins)
        b = src.u64();
    std::uint64_t overflow = src.u64();
    std::uint64_t sum = src.u64();
    std::uint64_t max = src.u64();
    if (!src.ok())
        return false;
    h.restore(std::move(bins), overflow, sum, max);
    return true;
}

void
putBoundsHistogram(ByteSink &sink, const BoundsHistogram &h)
{
    sink.varint(h.numBins());
    for (std::size_t i = 0; i < h.numBins(); ++i)
        sink.u64(h.binCount(i));
}

bool
getBoundsHistogram(ByteSource &src, BoundsHistogram &h)
{
    std::uint64_t n = src.varint();
    if (n != h.numBins())
        return false;
    std::vector<std::uint64_t> counts(static_cast<std::size_t>(n));
    for (auto &c : counts)
        c = src.u64();
    if (!src.ok())
        return false;
    h.restore(counts);
    return true;
}

void
putAggregates(ByteSink &sink, const CommAggregates &a)
{
    sink.u64(a.calls);
    sink.u64(a.iops);
    sink.u64(a.flops);
    sink.u64(a.readBytes);
    sink.u64(a.writeBytes);
    sink.u64(a.uniqueLocalBytes);
    sink.u64(a.nonuniqueLocalBytes);
    sink.u64(a.uniqueInputBytes);
    sink.u64(a.nonuniqueInputBytes);
    sink.u64(a.uniqueOutputBytes);
    sink.u64(a.nonuniqueOutputBytes);
    sink.u64(a.uniqueInterThreadBytes);
    sink.u64(a.nonuniqueInterThreadBytes);
    sink.u64(a.reusedUnits);
    sink.u64(a.reuseReads);
    sink.u64(a.lifetimeSum);
    putLinearHistogram(sink, a.lifetimeHist);
}

bool
getAggregates(ByteSource &src, CommAggregates &a)
{
    a.calls = src.u64();
    a.iops = src.u64();
    a.flops = src.u64();
    a.readBytes = src.u64();
    a.writeBytes = src.u64();
    a.uniqueLocalBytes = src.u64();
    a.nonuniqueLocalBytes = src.u64();
    a.uniqueInputBytes = src.u64();
    a.nonuniqueInputBytes = src.u64();
    a.uniqueOutputBytes = src.u64();
    a.nonuniqueOutputBytes = src.u64();
    a.uniqueInterThreadBytes = src.u64();
    a.nonuniqueInterThreadBytes = src.u64();
    a.reusedUnits = src.u64();
    a.reuseReads = src.u64();
    a.lifetimeSum = src.u64();
    return getLinearHistogram(src, a.lifetimeHist);
}

void
putComputeEvent(ByteSink &sink, const ComputeEvent &c)
{
    sink.u64(c.seq);
    sink.u64(c.predSeq);
    sink.u32(static_cast<std::uint32_t>(c.ctx));
    sink.u64(c.call);
    sink.u64(c.iops);
    sink.u64(c.flops);
    sink.u64(c.reads);
    sink.u64(c.writes);
}

void
getComputeEvent(ByteSource &src, ComputeEvent &c)
{
    c.seq = src.u64();
    c.predSeq = src.u64();
    c.ctx = static_cast<vg::ContextId>(src.u32());
    c.call = src.u64();
    c.iops = src.u64();
    c.flops = src.u64();
    c.reads = src.u64();
    c.writes = src.u64();
}

} // namespace

void
SigilProfiler::saveState(ByteSink &sink)
{
    sink.u8(1); // profiler state version

    // Config echo: a checkpoint is only meaningful for the identical
    // collection configuration (referenceShadowPath is excluded — the
    // two shadow walks are bit-identical by contract).
    sink.u8(static_cast<std::uint8_t>(config_.granularityShift));
    sink.u64(config_.maxShadowChunks);
    sink.u8(config_.collectReuse ? 1 : 0);
    sink.u8(config_.collectEvents ? 1 : 0);
    sink.u8(config_.roiOnly ? 1 : 0);
    sink.u8(config_.collectObjects ? 1 : 0);

    sink.u8(collecting_ ? 1 : 0);
    sink.u8(static_cast<std::uint8_t>(degradationLevel_));
    sink.u8(reuseEnabled_ ? 1 : 0);
    sink.u8(classifyEnabled_ ? 1 : 0);

    sink.varint(rows_.size());
    for (const CommAggregates &a : rows_)
        putAggregates(sink, a);

    sink.varint(edges_.size());
    for (const CommEdge &e : edges_) {
        sink.u32(static_cast<std::uint32_t>(e.producer));
        sink.u32(static_cast<std::uint32_t>(e.consumer));
        sink.u64(e.uniqueBytes);
        sink.u64(e.nonuniqueBytes);
    }
    sink.varint(threadEdges_.size());
    for (const ThreadCommEdge &e : threadEdges_) {
        sink.u32(e.producer);
        sink.u32(e.consumer);
        sink.u64(e.uniqueBytes);
        sink.u64(e.nonuniqueBytes);
    }

    putBoundsHistogram(sink, unitReuseBreakdown_);
    putBoundsHistogram(sink, lineReuseBreakdown_);

    sink.varint(objectStats_.size());
    for (const ObjectStats &o : objectStats_) {
        sink.u64(o.readBytes);
        sink.u64(o.writeBytes);
        sink.u64(o.uniqueReadBytes);
    }

    sink.varint(events_.records.size());
    for (const EventRecord &r : events_.records) {
        sink.u8(r.kind == EventRecord::Kind::Compute ? 0 : 1);
        if (r.kind == EventRecord::Kind::Compute) {
            putComputeEvent(sink, r.compute);
        } else {
            sink.u64(r.xfer.srcSeq);
            sink.u64(r.xfer.dstSeq);
            sink.u64(r.xfer.bytes);
        }
    }
    sink.u64(nextSeq_);

    sink.varint(segStates_.size());
    for (const SegState &s : segStates_) {
        sink.u8(s.open ? 1 : 0);
        putComputeEvent(sink, s.segment);
        sink.varint(s.xfers.size());
        for (const auto &[src_seq, bytes] : s.xfers) {
            sink.u64(src_seq);
            sink.u64(bytes);
        }
        sink.varint(s.frameLastSeq.size());
        for (std::uint64_t seq : s.frameLastSeq)
            sink.u64(seq);
        sink.u8(s.barrierPending ? 1 : 0);
    }
    sink.varint(currentTid_);

    sink.varint(skippedSegments_.size());
    for (const auto &[seq, pred] : skippedSegments_) {
        sink.u64(seq);
        sink.u64(pred);
    }
    sink.varint(barrierPreds_.size());
    for (std::uint64_t seq : barrierPreds_)
        sink.u64(seq);

    const shadow::ShadowStats &st = shadow_.stats();
    sink.u64(st.chunksAllocated);
    sink.u64(st.chunksLive);
    sink.u64(st.chunksPeak);
    sink.u64(st.evictions);
    sink.u64(st.allocFailures);

    // Shadow units, least recently used chunk first: restoring in
    // this order reproduces the recency list, hence every future
    // eviction decision.
    std::uint64_t unit_count = 0;
    shadow_.forEachInRecencyOrder(
        [&](std::uint64_t, shadow::ShadowRef) { ++unit_count; });
    sink.varint(unit_count);
    shadow_.forEachInRecencyOrder(
        [&](std::uint64_t unit, shadow::ShadowRef obj) {
            sink.varint(unit);
            sink.u64(obj.hot.lastWriterSeq);
            sink.u64(obj.hot.lastWriterCall);
            sink.u64(obj.hot.lastReaderCall);
            sink.u32(static_cast<std::uint32_t>(obj.hot.lastWriterCtx));
            sink.u32(static_cast<std::uint32_t>(obj.hot.lastReaderCtx));
            sink.u32(obj.hot.lastWriterThread);
            sink.u64(obj.cold.runFirstRead);
            sink.u64(obj.cold.runLastRead);
            sink.u64(obj.cold.totalAccesses);
            sink.u32(obj.cold.runReads);
        });
}

bool
SigilProfiler::restoreState(ByteSource &src)
{
    if (src.u8() != 1)
        return false;

    if (src.u8() != config_.granularityShift ||
        src.u64() != config_.maxShadowChunks ||
        (src.u8() != 0) != config_.collectReuse ||
        (src.u8() != 0) != config_.collectEvents ||
        (src.u8() != 0) != config_.roiOnly ||
        (src.u8() != 0) != config_.collectObjects) {
        return false;
    }

    collecting_ = src.u8() != 0;
    degradationLevel_ = src.u8();
    reuseEnabled_ = src.u8() != 0;
    classifyEnabled_ = src.u8() != 0;

    std::uint64_t num_rows = src.varint();
    if (!src.ok() || num_rows > (std::uint64_t{1} << 32))
        return false;
    rows_.assign(static_cast<std::size_t>(num_rows), CommAggregates());
    for (CommAggregates &a : rows_) {
        if (!getAggregates(src, a))
            return false;
    }

    std::uint64_t num_edges = src.varint();
    if (!src.ok() || num_edges > (std::uint64_t{1} << 32))
        return false;
    edges_.clear();
    edgeIndex_.clear();
    for (std::uint64_t i = 0; i < num_edges; ++i) {
        CommEdge e;
        e.producer = static_cast<vg::ContextId>(src.u32());
        e.consumer = static_cast<vg::ContextId>(src.u32());
        e.uniqueBytes = src.u64();
        e.nonuniqueBytes = src.u64();
        edgeIndex_.emplace(edgeKey(e.producer, e.consumer),
                           edges_.size());
        edges_.push_back(e);
    }
    std::uint64_t num_tedges = src.varint();
    if (!src.ok() || num_tedges > (std::uint64_t{1} << 32))
        return false;
    threadEdges_.clear();
    threadEdgeIndex_.clear();
    for (std::uint64_t i = 0; i < num_tedges; ++i) {
        ThreadCommEdge e;
        e.producer = src.u32();
        e.consumer = src.u32();
        e.uniqueBytes = src.u64();
        e.nonuniqueBytes = src.u64();
        threadEdgeIndex_.emplace(
            (static_cast<std::uint64_t>(e.producer) << 32) | e.consumer,
            threadEdges_.size());
        threadEdges_.push_back(e);
    }

    if (!getBoundsHistogram(src, unitReuseBreakdown_) ||
        !getBoundsHistogram(src, lineReuseBreakdown_)) {
        return false;
    }

    std::uint64_t num_objs = src.varint();
    if (!src.ok() || num_objs > (std::uint64_t{1} << 32))
        return false;
    objectStats_.assign(static_cast<std::size_t>(num_objs),
                        ObjectStats{});
    for (ObjectStats &o : objectStats_) {
        o.readBytes = src.u64();
        o.writeBytes = src.u64();
        o.uniqueReadBytes = src.u64();
    }

    std::uint64_t num_records = src.varint();
    if (!src.ok() || num_records > (std::uint64_t{1} << 32))
        return false;
    events_.records.clear();
    events_.records.reserve(static_cast<std::size_t>(num_records));
    for (std::uint64_t i = 0; i < num_records; ++i) {
        if (src.u8() == 0) {
            ComputeEvent c;
            getComputeEvent(src, c);
            events_.records.push_back(EventRecord::makeCompute(c));
        } else {
            XferEvent x;
            x.srcSeq = src.u64();
            x.dstSeq = src.u64();
            x.bytes = src.u64();
            events_.records.push_back(EventRecord::makeXfer(x));
        }
    }
    nextSeq_ = src.u64();

    std::uint64_t num_segs = src.varint();
    if (!src.ok() || num_segs == 0 || num_segs > (std::uint64_t{1} << 20))
        return false;
    segStates_.assign(static_cast<std::size_t>(num_segs), SegState{});
    for (SegState &s : segStates_) {
        s.open = src.u8() != 0;
        getComputeEvent(src, s.segment);
        std::uint64_t num_xfers = src.varint();
        if (!src.ok() || num_xfers > (std::uint64_t{1} << 32))
            return false;
        for (std::uint64_t i = 0; i < num_xfers; ++i) {
            std::uint64_t src_seq = src.u64();
            std::uint64_t bytes = src.u64();
            s.xfers.emplace(src_seq, bytes);
        }
        std::uint64_t num_frames = src.varint();
        if (!src.ok() || num_frames > (std::uint64_t{1} << 24))
            return false;
        s.frameLastSeq.resize(static_cast<std::size_t>(num_frames));
        for (auto &seq : s.frameLastSeq)
            seq = src.u64();
        s.barrierPending = src.u8() != 0;
    }
    currentTid_ = static_cast<vg::ThreadId>(src.varint());
    if (currentTid_ >= segStates_.size())
        return false;

    std::uint64_t num_skipped = src.varint();
    if (!src.ok() || num_skipped > (std::uint64_t{1} << 32))
        return false;
    skippedSegments_.clear();
    for (std::uint64_t i = 0; i < num_skipped; ++i) {
        std::uint64_t seq = src.u64();
        std::uint64_t pred = src.u64();
        skippedSegments_.emplace(seq, pred);
    }
    std::uint64_t num_bpreds = src.varint();
    if (!src.ok() || num_bpreds > (std::uint64_t{1} << 20))
        return false;
    barrierPreds_.resize(static_cast<std::size_t>(num_bpreds));
    for (auto &seq : barrierPreds_)
        seq = src.u64();

    shadow::ShadowStats st;
    st.chunksAllocated = src.u64();
    st.chunksLive = src.u64();
    st.chunksPeak = src.u64();
    st.evictions = src.u64();
    st.allocFailures = src.u64();

    std::uint64_t num_units = src.varint();
    if (!src.ok() || num_units > (std::uint64_t{1} << 40))
        return false;
    for (std::uint64_t i = 0; i < num_units; ++i) {
        std::uint64_t unit = src.varint();
        if (!src.ok())
            return false;
        shadow::ShadowRef obj = shadow_.restoreLookup(unit);
        obj.hot.lastWriterSeq = src.u64();
        obj.hot.lastWriterCall = src.u64();
        obj.hot.lastReaderCall = src.u64();
        obj.hot.lastWriterCtx = static_cast<vg::ContextId>(src.u32());
        obj.hot.lastReaderCtx = static_cast<vg::ContextId>(src.u32());
        obj.hot.lastWriterThread = src.u32();
        obj.cold.runFirstRead = src.u64();
        obj.cold.runLastRead = src.u64();
        obj.cold.totalAccesses = src.u64();
        obj.cold.runReads = src.u32();
    }
    shadow_.restoreStats(st);
    return src.ok();
}

} // namespace sigil::core
