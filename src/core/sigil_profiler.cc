#include "sigil_profiler.hh"

#include <algorithm>

#include "core/shard_engine.hh"
#include "support/logging.hh"

namespace sigil::core {

const CommAggregates SigilProfiler::kZero = CommAggregates();

SigilProfiler::SigilProfiler(const SigilConfig &config)
    : config_(config),
      shadow_(shadow::ShadowMemory::Config{config.granularityShift,
                                           config.maxShadowChunks})
{
    shadow_.setEvictionHandler(
        [this](std::uint64_t unit, shadow::ShadowRef obj) {
            (void)unit;
            commFinalizeRun(tables_, reuseEnabled_, shadow_.stamps(),
                            obj.hot, obj.cold);
        },
        shadow::SweepFilter::PendingRuns);
    shadow_.setPressureHandler(
        [this](int failed_attempts) { degrade(failed_attempts); });
    collecting_ = !config_.roiOnly;
    reuseEnabled_ = config_.collectReuse;
}

SigilProfiler::~SigilProfiler() = default;

void
SigilProfiler::degrade(int failed_attempts)
{
    if (degradationLevel_ == 0) {
        degradationLevel_ = 1;
        if (reuseEnabled_) {
            // Close out every pending run before dropping the mode so
            // the statistics collected so far keep their mass.
            shadow_.forEach(
                [this](std::uint64_t, shadow::ShadowRef obj) {
                    commFinalizeRun(tables_, reuseEnabled_,
                                    shadow_.stamps(), obj.hot, obj.cold);
                },
                shadow::SweepFilter::PendingRuns);
            reuseEnabled_ = false;
            warn("SigilProfiler: shadow allocation pressure "
                 "(%d failed attempts) — dropping re-use tracking",
                 failed_attempts);
            return;
        }
    }
    if (degradationLevel_ == 1) {
        degradationLevel_ = 2;
        classifyEnabled_ = false;
        warn("SigilProfiler: shadow allocation pressure persists "
             "(%d failed attempts) — dropping read classification",
             failed_attempts);
    }
}

void
SigilProfiler::roi(bool active)
{
    if (config_.roiOnly)
        collecting_ = active;
}

void
SigilProfiler::attach(const vg::Guest &guest)
{
    Tool::attach(guest);
    const vg::GuestConfig &gc = guest.config();
    if (gc.shardCount > 1 && shadow_.hasAllocationFailureInjector()) {
        // Sharded workers never consult injectors and cannot degrade;
        // silently ignoring the injector would make a fault-injection
        // run report clean results it never exercised.
        fatal("SigilProfiler: allocation-failure injection is not "
              "supported with shardCount > 1");
    }
    // The shared handle keeps the governor alive for this profiler's
    // whole lifetime, so shadow_'s raw pointer into it cannot dangle
    // even when the guest is torn down first.
    governorHold_ = guest.governorShared();
    shadow_.setGovernor(governorHold_.get());
    if (gc.shardCount > 1 && engine_ == nullptr) {
        engine_ = std::make_unique<ShardEngine>(
            config_, gc.shardCount, gc.shardQueueCapacity,
            guest.watchdogShared(), guest.governorShared());
    }
}

void
SigilProfiler::fnEnter(vg::ContextId ctx, vg::CallNum call)
{
    if (collecting_ && mode_ != Mode::kControlScan)
        ++row(ctx).calls;
    if (!config_.collectEvents)
        return;
    // The first segment of a call is spawned by the caller's segment
    // that was open at the call site (on the same thread).
    SegState &state = seg();
    std::uint64_t pred = state.open ? state.segment.seq : 0;
    startSegment(state, ctx, call, pred);
    state.frameLastSeq.push_back(state.segment.seq);
}

void
SigilProfiler::fnLeave(vg::ContextId ctx, vg::CallNum call)
{
    (void)ctx;
    (void)call;
    if (!config_.collectEvents)
        return;
    std::size_t depth = guest_->callDepth();
    leaveAt(depth > 0 ? guest_->currentContext() : vg::kInvalidContext,
            depth > 0 ? guest_->currentCall() : 0, depth);
}

void
SigilProfiler::leaveAt(vg::ContextId resumed_ctx, vg::CallNum resumed_call,
                       std::size_t depth)
{
    if (!config_.collectEvents)
        return;
    SegState &state = seg();
    if (state.frameLastSeq.empty())
        panic("SigilProfiler::fnLeave with no open frame");
    state.frameLastSeq.pop_back();
    // The guest has already popped the left frame, so its current frame
    // (if any) is the caller resuming execution: open a fresh segment
    // for this re-occurrence of the caller, serially ordered after the
    // caller's previous segment (not after the child — functions are
    // modelled as non-blocking).
    if (depth > 0) {
        startSegment(state, resumed_ctx, resumed_call,
                     state.frameLastSeq.back());
        state.frameLastSeq.back() = state.segment.seq;
    } else {
        flushSegment(state);
    }
}

void
SigilProfiler::memWrite(vg::Addr addr, unsigned size)
{
    writeAccess(addr, size, guest_->currentContext(),
                guest_->currentCall());
}

void
SigilProfiler::writeAccess(vg::Addr addr, unsigned size,
                           vg::ContextId ctx, vg::CallNum call)
{
    if (collecting_ && mode_ != Mode::kControlScan) {
        row(ctx).writeBytes += size;
        if (config_.collectObjects) {
            tables_.objectSlot(guest_->allocationOf(addr)).writeBytes +=
                size;
        }
    }
    SegState &state = seg();
    if (state.open)
        ++state.segment.writes;
    std::uint64_t seq = state.open ? state.segment.seq : 0;

    if (mode_ == Mode::kControlScan)
        return;

    if (engine_) {
        AccessStamp a;
        a.ctx = ctx;
        a.call = call;
        a.tid = currentTid_;
        a.segSeq = seq;
        a.collecting = collecting_;
        engine_->routeAccess(true, addr, size, a);
        needsFold_ = true;
        return;
    }

    std::uint64_t first = shadow_.unitOf(addr);
    std::uint64_t last = shadow_.lastUnitOf(addr, size);
    // One producer identity per access: intern it once, stamp the id.
    const shadow::StampId ws = shadow_.internWriter(
        shadow::WriterStamp{seq, ctx, currentTid_});
    if (mode_ == Mode::kSegmentWorker) {
        // Speculative walk: the first overwrite of a unit this worker
        // never wrote must finalize the *predecessor's* pending re-use
        // run, which lives in the merged shadow the resolution pass
        // folds segments into — log a termination and take ownership.
        // Units already owned behave exactly like the serial span path.
        shadow_.span(first, last, /*want_cold=*/false,
                     [&](shadow::ShadowMemory::Run run) {
            for (std::size_t i = 0; i < run.count; ++i) {
                shadow::ShadowHot &hot = run.hot[i];
                if (hot.writer == 0 ||
                    shadow::StampTable::isUnresolved(hot.writer)) {
                    BoundaryOp op;
                    op.kind = BoundaryOp::Kind::kTerminate;
                    op.unit = run.firstUnit + i;
                    boundaryLog_.push_back(op);
                } else if (reuseEnabled_ && run.cold != nullptr &&
                           hot.reader != 0) {
                    commFinalizeRun(tables_, reuseEnabled_,
                                    shadow_.stamps(), hot, run.cold + i);
                }
                hot = shadow::ShadowHot{ws, 0};
            }
        });
        return;
    }
    if (config_.referenceShadowPath) {
        // Reference path: resolve the chunk once per unit.
        for (std::uint64_t u = first; u <= last; ++u) {
            shadow::ShadowRef s = shadow_.lookup(u);
            commWriteUnit(tables_, reuseEnabled_, shadow_.stamps(),
                          s.hot, s.cold, ws);
        }
        return;
    }
    shadow_.span(first, last, /*want_cold=*/false,
                 [&](shadow::ShadowMemory::Run run) {
        if (reuseEnabled_ && run.cold != nullptr) {
            // Close pending runs before the overwrite clobbers their
            // reader identity; units with no recorded reader have
            // nothing pending.
            for (std::size_t i = 0; i < run.count; ++i) {
                if (run.hot[i].reader != 0) {
                    commFinalizeRun(tables_, reuseEnabled_,
                                    shadow_.stamps(), run.hot[i],
                                    run.cold + i);
                }
            }
        }
        // The stamp overwrite itself is a plain 8-byte word fill.
        std::fill(run.hot, run.hot + run.count, shadow::ShadowHot{ws, 0});
    });
}

void
SigilProfiler::memRead(vg::Addr addr, unsigned size)
{
    readAccess(addr, size, guest_->currentContext(),
               guest_->currentCall(), guest_->now());
}

void
SigilProfiler::readAccess(vg::Addr addr, unsigned size, vg::ContextId ctx,
                          vg::CallNum call, vg::Tick now)
{
    if (collecting_ && mode_ != Mode::kControlScan)
        row(ctx).readBytes += size;
    SegState &state = seg();
    if (state.open)
        ++state.segment.reads;

    if (mode_ == Mode::kControlScan)
        return;

    if (engine_) {
        std::int32_t alloc_idx = -1;
        if (collecting_ && config_.collectObjects) {
            alloc_idx = guest_->allocationOf(addr);
            tables_.objectSlot(alloc_idx).readBytes += size;
        }
        AccessStamp a;
        a.ctx = ctx;
        a.call = call;
        a.tick = now;
        a.tid = currentTid_;
        a.segSeq = state.open ? state.segment.seq : 0;
        a.allocIdx = alloc_idx;
        a.collecting = collecting_;
        engine_->routeAccess(false, addr, size, a);
        needsFold_ = true;
        return;
    }

    std::uint64_t unique_bytes_this_access = 0;
    AccessStamp a;
    a.ctx = ctx;
    a.call = call;
    a.tick = now;
    a.tid = currentTid_;
    a.segSeq = state.open ? state.segment.seq : 0;
    a.collecting = collecting_;
    ClassifyEnv env{reuseEnabled_, classifyEnabled_,
                    config_.collectEvents, config_.granularityShift};

    std::uint64_t first = shadow_.unitOf(addr);
    std::uint64_t last = shadow_.lastUnitOf(addr, size);
    const unsigned shift = shadow_.granularityShift();
    const std::uint64_t unit_bytes = shadow_.unitBytes();
    // One consumer identity per access, and one cold-materialization
    // decision per access (so a mid-span fidelity flip cannot make the
    // two walk paths materialize differently). The call number only
    // matters for re-use run identity (consecutive-reader equality);
    // with re-use off, classification reads nothing but the reader's
    // context, so collapsing the call keeps the table at one entry
    // per context instead of one per dynamic call.
    const shadow::StampId rs = shadow_.internReader(
        shadow::ReaderStamp{reuseEnabled_ ? call : 0, ctx});
    const bool want_cold = readWantsCold();
    if (mode_ == Mode::kSegmentWorker) {
        // Speculative walk: a unit this worker ever wrote is *owned* —
        // its whole local history is known, so the serial kernel runs
        // as-is. A unit it never wrote has an unknown producer: mark
        // it with an unresolved placeholder stamp and log the read;
        // the resolution pass replays the log in order against the
        // merged predecessor shadow, classifying with real producers.
        // Every unit touch takes an epoch so edge first-occurrence
        // order survives the split between the two table sets.
        shadow_.span(first, last, want_cold,
                     [&](shadow::ShadowMemory::Run run) {
            for (std::size_t i = 0; i < run.count; ++i) {
                std::uint64_t u = run.firstUnit + i;
                std::uint64_t w = unit_bytes;
                if (u == first || u == last) {
                    std::uint64_t unit_lo = u << shift;
                    std::uint64_t unit_hi = unit_lo + unit_bytes;
                    std::uint64_t lo =
                        std::max<std::uint64_t>(addr, unit_lo);
                    std::uint64_t hi =
                        std::min<std::uint64_t>(addr + size, unit_hi);
                    w = hi - lo;
                }
                a.epoch = ++epochCounter_;
                shadow::ShadowHot &hot = run.hot[i];
                if (hot.writer == 0 ||
                    shadow::StampTable::isUnresolved(hot.writer)) {
                    if (hot.writer == 0) {
                        hot.writer =
                            shadow_.internUnresolved(shadow::UnresolvedStamp{
                                segmentIndex_, a.segSeq});
                    }
                    BoundaryOp op;
                    op.kind = BoundaryOp::Kind::kRead;
                    op.collecting = collecting_;
                    op.wantCold = want_cold;
                    op.unit = u;
                    op.w = w;
                    op.localReader = rs;
                    op.ctx = ctx;
                    op.tick = now;
                    op.tid = currentTid_;
                    op.segSeq = a.segSeq;
                    op.epoch = a.epoch;
                    boundaryLog_.push_back(op);
                } else {
                    commReadUnit(tables_, env, shadow_.stamps(), hot,
                                 run.cold ? run.cold + i : nullptr, w, a,
                                 rs, &state.xfers,
                                 unique_bytes_this_access);
                }
            }
        });
        return;
    }
    if (config_.referenceShadowPath) {
        // Reference path: resolve the chunk and compute the covered
        // byte width from scratch for every unit.
        for (std::uint64_t u = first; u <= last; ++u) {
            shadow::ShadowRef s = shadow_.lookup(u, want_cold);
            std::uint64_t unit_lo = u << shift;
            std::uint64_t unit_hi = unit_lo + unit_bytes;
            std::uint64_t lo = std::max<std::uint64_t>(addr, unit_lo);
            std::uint64_t hi =
                std::min<std::uint64_t>(addr + size, unit_hi);
            commReadUnit(tables_, env, shadow_.stamps(), s.hot, s.cold,
                         hi - lo, a, rs, &state.xfers,
                         unique_bytes_this_access);
        }
    } else {
        shadow_.span(first, last, want_cold,
                     [&](shadow::ShadowMemory::Run run) {
            for (std::size_t i = 0; i < run.count; ++i) {
                // Every unit covers a full unit's worth of the access
                // except possibly the two end units.
                std::uint64_t u = run.firstUnit + i;
                std::uint64_t w = unit_bytes;
                if (u == first || u == last) {
                    std::uint64_t unit_lo = u << shift;
                    std::uint64_t unit_hi = unit_lo + unit_bytes;
                    std::uint64_t lo =
                        std::max<std::uint64_t>(addr, unit_lo);
                    std::uint64_t hi =
                        std::min<std::uint64_t>(addr + size, unit_hi);
                    w = hi - lo;
                }
                commReadUnit(tables_, env, shadow_.stamps(), run.hot[i],
                             run.cold ? run.cold + i : nullptr, w, a, rs,
                             &state.xfers, unique_bytes_this_access);
            }
        });
    }

    if (collecting_ && config_.collectObjects) {
        ObjectTraffic &obj =
            tables_.objectSlot(guest_->allocationOf(addr));
        obj.readBytes += size;
        obj.uniqueReadBytes += unique_bytes_this_access;
    }
}

void
SigilProfiler::op(std::uint64_t iops, std::uint64_t flops)
{
    if (!collecting_)
        return;
    opAt(iops, flops, guest_->currentContext());
}

void
SigilProfiler::opAt(std::uint64_t iops, std::uint64_t flops,
                    vg::ContextId ctx)
{
    if (!collecting_)
        return;
    if (ctx == vg::kInvalidContext)
        panic("SigilProfiler: op outside any function");
    if (mode_ != Mode::kControlScan) {
        CommAggregates &r = row(ctx);
        r.iops += iops;
        r.flops += flops;
    }
    SegState &state = seg();
    if (state.open) {
        state.segment.iops += iops;
        state.segment.flops += flops;
    }
}

void
SigilProfiler::threadSwitch(vg::ThreadId tid)
{
    // At this point the guest's current thread is already tid.
    bool active = guest_->callDepth() > 0;
    threadSwitchAt(tid,
                   active ? guest_->currentContext() : vg::kInvalidContext,
                   active ? guest_->currentCall() : 0);
}

void
SigilProfiler::threadSwitchAt(vg::ThreadId tid, vg::ContextId ctx,
                              vg::CallNum call)
{
    if (static_cast<std::size_t>(tid) >= segStates_.size())
        segStates_.resize(static_cast<std::size_t>(tid) + 1);
    if (!config_.collectEvents) {
        currentTid_ = tid;
        return;
    }
    // A compute segment cannot span a descheduling: flush the outgoing
    // thread's open segment so the trace stays topologically ordered
    // (a consumer on another thread may reference it immediately).
    flushSegment(seg());
    currentTid_ = tid;
    // Resume the incoming thread's current function (if any) as a new
    // segment chained to its previous one.
    SegState &state = seg();
    if (!state.frameLastSeq.empty()) {
        startSegment(state, ctx, call, state.frameLastSeq.back());
        state.frameLastSeq.back() = state.segment.seq;
    }
}

std::uint64_t
SigilProfiler::resolvePred(std::uint64_t seq) const
{
    return resolvePredAt(seq, ~std::uint64_t{0});
}

std::uint64_t
SigilProfiler::resolvePredAt(std::uint64_t seq,
                             std::uint64_t stamp_bound) const
{
    // Follow the forwarding chain through skipped empty segments so an
    // ordering edge never dangles on a segment absent from the trace.
    auto it = skippedSegments_.find(seq);
    while (it != skippedSegments_.end() &&
           it->second.stamp < stamp_bound) {
        seq = it->second.pred;
        it = skippedSegments_.find(seq);
    }
    return seq;
}

void
SigilProfiler::barrier()
{
    if (!config_.collectEvents)
        return;
    bool active = guest_->callDepth() > 0;
    barrierAt(active ? guest_->currentContext() : vg::kInvalidContext,
              active ? guest_->currentCall() : 0);
}

void
SigilProfiler::barrierAt(vg::ContextId ctx, vg::CallNum call)
{
    if (!config_.collectEvents)
        return;
    // Close every thread's open segment; everything after the barrier
    // is ordered after everything before it.
    barrierPreds_.clear();
    for (SegState &state : segStates_) {
        flushSegment(state);
        if (!state.frameLastSeq.empty())
            barrierPreds_.push_back(state.frameLastSeq.back());
        state.barrierPending = true;
    }
    // The current thread keeps running: reopen its segment so the
    // post-barrier work lands in a node that carries the barrier edges.
    SegState &cur = seg();
    if (!cur.frameLastSeq.empty()) {
        startSegment(cur, ctx, call, cur.frameLastSeq.back());
        cur.frameLastSeq.back() = cur.segment.seq;
    }
}

void
SigilProfiler::startSegment(SegState &state, vg::ContextId ctx,
                            vg::CallNum call, std::uint64_t pred_seq)
{
    flushSegment(state);
    state.segment = ComputeEvent{};
    state.segment.seq = nextSeq_++;
    state.segment.predSeq = resolvePred(pred_seq);
    state.segment.ctx = ctx;
    state.segment.call = call;
    state.open = true;
    if (state.barrierPending) {
        // Zero-byte ordering edges from every thread's pre-barrier
        // work (the serial predecessor already covers this thread's
        // own chain).
        for (std::uint64_t pred : barrierPreds_) {
            std::uint64_t resolved = resolvePred(pred);
            if (resolved != state.segment.predSeq && resolved != 0)
                state.xfers.try_emplace(resolved, 0);
        }
        state.barrierPending = false;
    }
}

void
SigilProfiler::flushSegment(SegState &state)
{
    if (!state.open)
        return;
    const ComputeEvent &segment = state.segment;
    bool has_work = segment.iops || segment.flops || segment.reads ||
                    segment.writes;
    if (collecting_ && (has_work || !state.xfers.empty())) {
        if (mode_ == Mode::kSegmentWorker) {
            // Workers never emit records — the control scan already
            // wrote this segment's C record and placeholder. Bank the
            // locally observed transfers (comm-kernel entries for
            // owned units plus the restored/barrier ordering entries)
            // for the resolution pass to fold in stream order.
            auto &dst = workerSegXfers_[segment.seq];
            for (const auto &[src, bytes] : state.xfers)
                dst[src] += bytes;
        } else if (mode_ == Mode::kControlScan) {
            // Control scan: emit the C record and a placeholder so the
            // resolution fold can splice the X records (accumulated
            // across workers and boundary replay) in front of it,
            // exactly like the sharded fold does.
            pendingSegs_.push_back(PendingSeg{events_.records.size(),
                                              segment.seq, skipStamp_,
                                              std::move(state.xfers)});
            state.xfers = {};
            events_.records.push_back(EventRecord::makeCompute(segment));
        } else if (engine_) {
            // The segment's data transfers are still distributed over
            // the shard tables; emit the C record now and leave a
            // placeholder so the fold can splice the X records in
            // front of it. state.xfers carries only sequencer-side
            // entries (barrier ordering edges, restored state).
            pendingSegs_.push_back(PendingSeg{events_.records.size(),
                                              segment.seq, skipStamp_,
                                              std::move(state.xfers)});
            state.xfers = {};
            events_.records.push_back(EventRecord::makeCompute(segment));
            needsFold_ = true;
        } else {
            // Emit incoming transfers in source order: the hash map's
            // iteration order is not part of the observable state, and
            // a checkpoint restore would otherwise reorder the X
            // records.
            std::vector<std::pair<std::uint64_t, std::uint64_t>> ordered(
                state.xfers.begin(), state.xfers.end());
            std::sort(ordered.begin(), ordered.end());
            for (const auto &[src, bytes] : ordered) {
                XferEvent x;
                x.srcSeq = resolvePred(src);
                x.dstSeq = segment.seq;
                x.bytes = bytes;
                events_.records.push_back(EventRecord::makeXfer(x));
            }
            events_.records.push_back(EventRecord::makeCompute(segment));
        }
    } else {
        skippedSegments_.emplace(segment.seq,
                                 SkipInfo{segment.predSeq, skipStamp_++});
        if (mode_ == Mode::kControlScan && config_.collectEvents) {
            // Worker- and replay-side transfers charged to this
            // segment must be discarded at the resolution fold, as the
            // serial path discards state.xfers here. (Workers reach
            // the same decision — the segment counters are part of the
            // restored control state — and drop theirs locally.)
            discardedSeqs_.push_back(segment.seq);
        } else if (engine_ && config_.collectEvents) {
            // Any shard-side transfers charged to this segment must be
            // discarded at the fold, as the serial path discards
            // state.xfers here.
            discardedSeqs_.push_back(segment.seq);
            needsFold_ = true;
        }
    }
    state.xfers.clear();
    state.open = false;
}

void
SigilProfiler::processBatch(const vg::EventBuffer &batch)
{
    const vg::EventKind *kinds = batch.kinds();
    const std::uint64_t *as = batch.as();
    const std::uint64_t *bs = batch.bs();
    const vg::ContextId *ctxs = batch.ctxs();
    const vg::CallNum *calls = batch.calls();
    const vg::Tick *ticks = batch.ticks();
    const std::uint32_t *depths = batch.depths();
    for (std::size_t i = 0, n = batch.size(); i < n; ++i) {
        switch (kinds[i]) {
          case vg::EventKind::kRead:
            readAccess(as[i], static_cast<unsigned>(bs[i]), ctxs[i],
                       calls[i], ticks[i]);
            break;
          case vg::EventKind::kWrite:
            writeAccess(as[i], static_cast<unsigned>(bs[i]), ctxs[i],
                        calls[i]);
            break;
          case vg::EventKind::kOp:
            if (collecting_)
                opAt(as[i], bs[i], ctxs[i]);
            break;
          case vg::EventKind::kBranch:
            break;
          case vg::EventKind::kEnter:
            fnEnter(ctxs[i], calls[i]);
            break;
          case vg::EventKind::kLeave:
            leaveAt(ctxs[i], calls[i], depths[i]);
            break;
          case vg::EventKind::kThreadSwitch:
            threadSwitchAt(static_cast<vg::ThreadId>(as[i]), ctxs[i],
                           calls[i]);
            break;
          case vg::EventKind::kBarrier:
            barrierAt(ctxs[i], calls[i]);
            break;
          case vg::EventKind::kRoi:
            roi(as[i] != 0);
            break;
        }
    }
}

void
SigilProfiler::sync()
{
    foldShards();
}

void
SigilProfiler::foldShards()
{
    if (engine_ == nullptr || !needsFold_)
        return;
    engine_->drain();
    needsFold_ = false;

    const unsigned n = engine_->shardCount();
    std::vector<unsigned> order;
    if (foldOrder_.size() == n) {
        order = foldOrder_;
    } else {
        order.resize(n);
        for (unsigned i = 0; i < n; ++i)
            order[i] = i;
    }

    // Edges need their serial first-seen order back: every edge carries
    // the global epoch of the piece that created it, epochs are unique
    // per piece (hence per shard), and within one piece the shard's
    // local insertion index preserves unit order — so (epoch, localIdx)
    // totally orders the new edges exactly as the serial engine would
    // have first seen them, independent of the shard visit order.
    struct TaggedEdge
    {
        std::uint64_t epoch;
        std::uint64_t localIdx;
        CommEdge edge;
    };
    struct TaggedThreadEdge
    {
        std::uint64_t epoch;
        std::uint64_t localIdx;
        ThreadCommEdge edge;
    };
    std::vector<TaggedEdge> new_edges;
    std::vector<TaggedThreadEdge> new_tedges;

    // The shard tables know exactly how many edges are in flight:
    // reserve the staging vectors and the merged indexes once from the
    // summed sizes instead of growing them geometrically mid-fold.
    std::size_t edge_total = 0;
    std::size_t tedge_total = 0;
    for (unsigned i : order) {
        edge_total += engine_->tables(i).edges.size();
        tedge_total += engine_->tables(i).threadEdges.size();
    }
    new_edges.reserve(edge_total);
    new_tedges.reserve(tedge_total);
    tables_.edgeIndex.reserve(tables_.edgeIndex.size() + edge_total);
    tables_.threadEdgeIndex.reserve(tables_.threadEdgeIndex.size() +
                                    tedge_total);

    for (unsigned i : order) {
        CommTables &st = engine_->tables(i);
        for (std::size_t c = 0; c < st.rows.size(); ++c) {
            mergeAggregates(tables_.row(static_cast<vg::ContextId>(c)),
                            st.rows[c]);
        }
        st.rows.clear();
        tables_.unitReuseBreakdown.merge(st.unitReuseBreakdown);
        st.unitReuseBreakdown =
            BoundsHistogram{std::vector<std::uint64_t>{0, 9}};
        tables_.lineReuseBreakdown.merge(st.lineReuseBreakdown);
        st.lineReuseBreakdown =
            BoundsHistogram{std::vector<std::uint64_t>{9, 99, 999, 9999}};
        for (std::size_t o = 0; o < st.objectStats.size(); ++o) {
            ObjectTraffic &dst = tables_.objectSlot(
                static_cast<std::int32_t>(o) - 1);
            dst.readBytes += st.objectStats[o].readBytes;
            dst.writeBytes += st.objectStats[o].writeBytes;
            dst.uniqueReadBytes += st.objectStats[o].uniqueReadBytes;
        }
        st.objectStats.clear();
        for (std::size_t e = 0; e < st.edges.size(); ++e) {
            new_edges.push_back(
                {st.edges[e].firstEpoch, e, st.edges[e].edge});
        }
        st.edges.clear();
        st.edgeIndex.clear();
        for (std::size_t e = 0; e < st.threadEdges.size(); ++e) {
            new_tedges.push_back(
                {st.threadEdges[e].firstEpoch, e, st.threadEdges[e].edge});
        }
        st.threadEdges.clear();
        st.threadEdgeIndex.clear();
    }

    std::sort(new_edges.begin(), new_edges.end(),
              [](const TaggedEdge &a, const TaggedEdge &b) {
                  return a.epoch != b.epoch ? a.epoch < b.epoch
                                            : a.localIdx < b.localIdx;
              });
    tables_.edges.reserve(tables_.edges.size() + new_edges.size());
    for (const TaggedEdge &te : new_edges) {
        std::uint64_t key =
            CommTables::edgeKey(te.edge.producer, te.edge.consumer);
        auto [it, inserted] =
            tables_.edgeIndex.try_emplace(key, tables_.edges.size());
        if (inserted) {
            tables_.edges.push_back(OrderedCommEdge{te.edge, te.epoch});
        } else {
            CommEdge &dst = tables_.edges[it->second].edge;
            dst.uniqueBytes += te.edge.uniqueBytes;
            dst.nonuniqueBytes += te.edge.nonuniqueBytes;
        }
    }
    std::sort(new_tedges.begin(), new_tedges.end(),
              [](const TaggedThreadEdge &a, const TaggedThreadEdge &b) {
                  return a.epoch != b.epoch ? a.epoch < b.epoch
                                            : a.localIdx < b.localIdx;
              });
    tables_.threadEdges.reserve(tables_.threadEdges.size() +
                                new_tedges.size());
    for (const TaggedThreadEdge &te : new_tedges) {
        std::uint64_t key = CommTables::threadEdgeKey(te.edge.producer,
                                                      te.edge.consumer);
        auto [it, inserted] = tables_.threadEdgeIndex.try_emplace(
            key, tables_.threadEdges.size());
        if (inserted) {
            tables_.threadEdges.push_back(
                OrderedThreadEdge{te.edge, te.epoch});
        } else {
            ThreadCommEdge &dst = tables_.threadEdges[it->second].edge;
            dst.uniqueBytes += te.edge.uniqueBytes;
            dst.nonuniqueBytes += te.edge.nonuniqueBytes;
        }
    }

    if (!config_.collectEvents)
        return;

    for (std::uint64_t seq : discardedSeqs_) {
        for (unsigned i = 0; i < n; ++i)
            engine_->tables(i).segXfers.erase(seq);
    }
    discardedSeqs_.clear();

    if (pendingSegs_.empty())
        return;

    // Pull each emitted segment's shard-side transfers into its pending
    // record, then rebuild the record stream once, splicing the X
    // records (raw-key sorted, flush-time predecessor resolution)
    // before their C record — exactly where the serial engine would
    // have written them.
    std::size_t extra = 0;
    for (PendingSeg &p : pendingSegs_) {
        // Size the destination map once from the summed shard entries
        // (an upper bound — shards may share source segments) before
        // merging, so the merge itself never rehashes.
        std::size_t found = 0;
        for (unsigned i : order) {
            auto &sx = engine_->tables(i).segXfers;
            auto it = sx.find(p.seq);
            if (it != sx.end())
                found += it->second.size();
        }
        if (found != 0)
            p.xfers.reserve(p.xfers.size() + found);
        for (unsigned i : order) {
            auto &sx = engine_->tables(i).segXfers;
            auto it = sx.find(p.seq);
            if (it == sx.end())
                continue;
            for (const auto &[src, bytes] : it->second)
                p.xfers[src] += bytes;
            sx.erase(it);
        }
        extra += p.xfers.size();
    }
    std::vector<EventRecord> rebuilt;
    rebuilt.reserve(events_.records.size() + extra);
    std::size_t next = 0;
    for (std::size_t pos = 0; pos < events_.records.size(); ++pos) {
        while (next < pendingSegs_.size() &&
               pendingSegs_[next].recordPos == pos) {
            PendingSeg &p = pendingSegs_[next];
            std::vector<std::pair<std::uint64_t, std::uint64_t>> ordered(
                p.xfers.begin(), p.xfers.end());
            std::sort(ordered.begin(), ordered.end());
            for (const auto &[src, bytes] : ordered) {
                XferEvent x;
                x.srcSeq = resolvePredAt(src, p.skipStamp);
                x.dstSeq = p.seq;
                x.bytes = bytes;
                rebuilt.push_back(EventRecord::makeXfer(x));
            }
            ++next;
        }
        rebuilt.push_back(events_.records[pos]);
    }
    events_.records = std::move(rebuilt);
    pendingSegs_.clear();
}

void
SigilProfiler::mergeOpenSegXfers()
{
    for (SegState &s : segStates_) {
        if (!s.open)
            continue;
        for (unsigned i = 0; i < engine_->shardCount(); ++i) {
            auto &sx = engine_->tables(i).segXfers;
            auto it = sx.find(s.segment.seq);
            if (it == sx.end())
                continue;
            for (const auto &[src, bytes] : it->second)
                s.xfers[src] += bytes;
            sx.erase(it);
        }
    }
}

void
SigilProfiler::finish()
{
    for (SegState &state : segStates_)
        flushSegment(state);
    if (mode_ == Mode::kControlScan) {
        // The control scan only sequences: segment record emission and
        // skip forwarding are final here, but every kernel-side total
        // (and the shadow sweep) belongs to the resolution fold.
        return;
    }
    // The end-of-run sweep only finalizes pending re-use runs and (in
    // line mode) folds per-unit access totals: both live in the cold
    // record, so chunks that never materialized one are skipped whole.
    // In line mode a read-then-overwritten unit has no recorded reader
    // but a nonzero access total, so the sweep must visit every unit
    // of a cold chunk; in byte mode units with no recorded reader have
    // nothing pending and are skipped too.
    const shadow::SweepFilter filter =
        config_.granularityShift > 0 ? shadow::SweepFilter::ColdChunks
                                     : shadow::SweepFilter::PendingRuns;
    const bool sweep_needed =
        config_.granularityShift > 0 || reuseEnabled_;
    if (engine_) {
        needsFold_ = true;
        foldShards();
        if (!sweep_needed)
            return;
        for (unsigned i = 0; i < engine_->shardCount(); ++i) {
            shadow::ShadowMemory &sh = engine_->shadowOf(i);
            sh.forEach(
                [this, &sh](std::uint64_t, shadow::ShadowRef obj) {
                    commFinalizeRun(tables_, reuseEnabled_, sh.stamps(),
                                    obj.hot, obj.cold);
                    if (config_.granularityShift > 0 && obj.cold &&
                        obj.cold->totalAccesses > 0) {
                        tables_.lineReuseBreakdown.add(
                            obj.cold->totalAccesses - 1);
                    }
                },
                filter);
        }
        return;
    }
    runFinalSweep();
}

void
SigilProfiler::runFinalSweep()
{
    const bool sweep_needed =
        config_.granularityShift > 0 || reuseEnabled_;
    if (!sweep_needed)
        return;
    const shadow::SweepFilter filter =
        config_.granularityShift > 0 ? shadow::SweepFilter::ColdChunks
                                     : shadow::SweepFilter::PendingRuns;
    shadow_.forEach(
        [this](std::uint64_t unit, shadow::ShadowRef obj) {
            (void)unit;
            commFinalizeRun(tables_, reuseEnabled_, shadow_.stamps(),
                            obj.hot, obj.cold);
            if (config_.granularityShift > 0 && obj.cold &&
                obj.cold->totalAccesses > 0)
                tables_.lineReuseBreakdown.add(obj.cold->totalAccesses -
                                               1);
        },
        filter);
}

SigilProfiler::ControlState
SigilProfiler::captureControlState() const
{
    ControlState s;
    s.collecting = collecting_;
    s.segStates = segStates_;
    s.currentTid = currentTid_;
    s.nextSeq = nextSeq_;
    s.skippedSegments = skippedSegments_;
    s.skipStamp = skipStamp_;
    s.barrierPreds = barrierPreds_;
    return s;
}

void
SigilProfiler::restoreControlState(const ControlState &s)
{
    collecting_ = s.collecting;
    segStates_ = s.segStates;
    currentTid_ = s.currentTid;
    nextSeq_ = s.nextSeq;
    skippedSegments_ = s.skippedSegments;
    skipStamp_ = s.skipStamp;
    barrierPreds_ = s.barrierPreds;
}

void
SigilProfiler::flushOpenSegmentsToXfers()
{
    // A segment spanning the cut stays open — the successor worker
    // (or the control scan's final flush) closes it. Only its locally
    // observed transfers move to the banked map keyed by sequence, so
    // the resolution pass can attribute them regardless of which
    // worker eventually flushes the segment.
    for (SegState &s : segStates_) {
        if (!s.open || s.xfers.empty())
            continue;
        auto &dst = workerSegXfers_[s.segment.seq];
        for (const auto &[src, bytes] : s.xfers)
            dst[src] += bytes;
        s.xfers.clear();
    }
}

const CommAggregates &
SigilProfiler::aggregates(vg::ContextId ctx) const
{
#ifndef NDEBUG
    SIGIL_ASSERT(guest_ == nullptr || !guest_->eventsPendingDispatch(),
                 "tool state read with events pending — call "
                 "Guest::sync() first");
#endif
    if (engine_ != nullptr && needsFold_)
        const_cast<SigilProfiler *>(this)->foldShards();
    std::size_t idx = static_cast<std::size_t>(ctx);
    return idx < tables_.rows.size() ? tables_.rows[idx] : kZero;
}

const EventTrace &
SigilProfiler::events() const
{
    if (engine_ != nullptr && needsFold_)
        const_cast<SigilProfiler *>(this)->foldShards();
    return events_;
}

shadow::ShadowStats
SigilProfiler::shadowStats() const
{
    return engine_ != nullptr ? engine_->planner().stats()
                              : shadow_.stats();
}

std::uint64_t
SigilProfiler::shadowPeakBytes() const
{
    return shadowStats().peakBytes();
}

void
SigilProfiler::setFoldOrderForTesting(std::vector<unsigned> order)
{
    foldOrder_ = std::move(order);
}

SigilProfile
SigilProfiler::takeProfile() const
{
    if (guest_ == nullptr)
        panic("SigilProfiler::takeProfile before attach");
#ifndef NDEBUG
    SIGIL_ASSERT(!guest_->eventsPendingDispatch(),
                 "tool state read with events pending — call "
                 "Guest::sync() first");
#endif
    if (engine_ != nullptr && needsFold_)
        const_cast<SigilProfiler *>(this)->foldShards();
    const vg::ContextTree &ctxs = guest_->contexts();
    const vg::FunctionRegistry &fns = guest_->functions();

    SigilProfile profile;
    profile.program = guest_->programName();
    profile.granularityShift = config_.granularityShift;
    profile.rows.resize(ctxs.size());
    for (std::size_t i = 0; i < ctxs.size(); ++i) {
        vg::ContextId ctx = static_cast<vg::ContextId>(i);
        SigilRow &out = profile.rows[i];
        out.ctx = ctx;
        out.parent = ctxs.parent(ctx);
        out.fn = ctxs.function(ctx);
        out.fnName = fns.name(out.fn);
        out.displayName = ctxs.displayName(ctx);
        out.path = ctxs.pathName(ctx);
        out.agg = aggregates(ctx);
    }
    profile.edges.reserve(tables_.edges.size());
    for (const OrderedCommEdge &e : tables_.edges)
        profile.edges.push_back(e.edge);
    profile.threadEdges.reserve(tables_.threadEdges.size());
    for (const OrderedThreadEdge &e : tables_.threadEdges)
        profile.threadEdges.push_back(e.edge);
    if (config_.collectObjects) {
        const auto &allocs = guest_->allocations();
        // Row i+1 of objectStats maps to allocation i; row 0 = other.
        for (std::size_t i = 0; i < allocs.size() + 1; ++i) {
            SigilProfile::ObjectRow row;
            if (i == 0) {
                row.tag = "<other>";
            } else {
                row.tag = allocs[i - 1].tag;
                row.base = allocs[i - 1].base;
                row.size = allocs[i - 1].size;
            }
            if (i < tables_.objectStats.size()) {
                row.readBytes = tables_.objectStats[i].readBytes;
                row.writeBytes = tables_.objectStats[i].writeBytes;
                row.uniqueReadBytes =
                    tables_.objectStats[i].uniqueReadBytes;
            }
            profile.objects.push_back(std::move(row));
        }
    }
    profile.unitReuseBreakdown = tables_.unitReuseBreakdown;
    profile.lineReuseBreakdown = tables_.lineReuseBreakdown;
    profile.shadowPeakBytes = shadowPeakBytes();
    profile.shadowEvictions = shadowStats().evictions;
    return profile;
}

namespace {

void
putLinearHistogram(ByteSink &sink, const LinearHistogram &h)
{
    sink.u64(h.binWidth());
    sink.varint(h.numBins());
    for (std::size_t i = 0; i < h.numBins(); ++i)
        sink.u64(h.binCount(i));
    sink.u64(h.overflowCount());
    sink.u64(h.totalValue());
    sink.u64(h.maxValue());
}

bool
getLinearHistogram(ByteSource &src, LinearHistogram &h)
{
    std::uint64_t bin_width = src.u64();
    if (bin_width != h.binWidth())
        return false;
    std::uint64_t n = src.varint();
    if (!src.ok() || n > (std::uint64_t{1} << 24))
        return false;
    std::vector<std::uint64_t> bins(static_cast<std::size_t>(n));
    for (auto &b : bins)
        b = src.u64();
    std::uint64_t overflow = src.u64();
    std::uint64_t sum = src.u64();
    std::uint64_t max = src.u64();
    if (!src.ok())
        return false;
    h.restore(std::move(bins), overflow, sum, max);
    return true;
}

void
putBoundsHistogram(ByteSink &sink, const BoundsHistogram &h)
{
    sink.varint(h.numBins());
    for (std::size_t i = 0; i < h.numBins(); ++i)
        sink.u64(h.binCount(i));
}

bool
getBoundsHistogram(ByteSource &src, BoundsHistogram &h)
{
    std::uint64_t n = src.varint();
    if (n != h.numBins())
        return false;
    std::vector<std::uint64_t> counts(static_cast<std::size_t>(n));
    for (auto &c : counts)
        c = src.u64();
    if (!src.ok())
        return false;
    h.restore(counts);
    return true;
}

void
putAggregates(ByteSink &sink, const CommAggregates &a)
{
    sink.u64(a.calls);
    sink.u64(a.iops);
    sink.u64(a.flops);
    sink.u64(a.readBytes);
    sink.u64(a.writeBytes);
    sink.u64(a.uniqueLocalBytes);
    sink.u64(a.nonuniqueLocalBytes);
    sink.u64(a.uniqueInputBytes);
    sink.u64(a.nonuniqueInputBytes);
    sink.u64(a.uniqueOutputBytes);
    sink.u64(a.nonuniqueOutputBytes);
    sink.u64(a.uniqueInterThreadBytes);
    sink.u64(a.nonuniqueInterThreadBytes);
    sink.u64(a.reusedUnits);
    sink.u64(a.reuseReads);
    sink.u64(a.lifetimeSum);
    putLinearHistogram(sink, a.lifetimeHist);
}

bool
getAggregates(ByteSource &src, CommAggregates &a)
{
    a.calls = src.u64();
    a.iops = src.u64();
    a.flops = src.u64();
    a.readBytes = src.u64();
    a.writeBytes = src.u64();
    a.uniqueLocalBytes = src.u64();
    a.nonuniqueLocalBytes = src.u64();
    a.uniqueInputBytes = src.u64();
    a.nonuniqueInputBytes = src.u64();
    a.uniqueOutputBytes = src.u64();
    a.nonuniqueOutputBytes = src.u64();
    a.uniqueInterThreadBytes = src.u64();
    a.nonuniqueInterThreadBytes = src.u64();
    a.reusedUnits = src.u64();
    a.reuseReads = src.u64();
    a.lifetimeSum = src.u64();
    return getLinearHistogram(src, a.lifetimeHist);
}

void
putComputeEvent(ByteSink &sink, const ComputeEvent &c)
{
    sink.u64(c.seq);
    sink.u64(c.predSeq);
    sink.u32(static_cast<std::uint32_t>(c.ctx));
    sink.u64(c.call);
    sink.u64(c.iops);
    sink.u64(c.flops);
    sink.u64(c.reads);
    sink.u64(c.writes);
}

void
getComputeEvent(ByteSource &src, ComputeEvent &c)
{
    c.seq = src.u64();
    c.predSeq = src.u64();
    c.ctx = static_cast<vg::ContextId>(src.u32());
    c.call = src.u64();
    c.iops = src.u64();
    c.flops = src.u64();
    c.reads = src.u64();
    c.writes = src.u64();
}

} // namespace

void
SigilProfiler::saveState(ByteSink &sink)
{
    // Version 4 is version 3 plus a segment-provenance trailer; it is
    // only emitted when a segmented driver stamped this profiler, so
    // serial snapshots stay byte-identical to previous releases.
    saveStateImpl(sink, provenance_ ? 4 : 3);
}

void
SigilProfiler::saveStateLegacy(ByteSink &sink)
{
    saveStateImpl(sink, engine_ ? 2 : 1);
}

void
SigilProfiler::saveStateImpl(ByteSink &sink, std::uint8_t version)
{
    if (engine_) {
        // Fold everything shard-side into the authoritative tables so
        // the serialized body is engine-independent (and restorable
        // into a serial profiler or any shard count).
        needsFold_ = true;
        foldShards();
        mergeOpenSegXfers();
    }

    // Version 2 differs from 1 only by recording the shard count of
    // the saving run (informational); the body layout is identical.
    // Version 3 always records the shard count (1 when serial) and
    // replaces the per-unit identity tuples with the interned stamp
    // table plus chunk-grouped stamp-id units.
    sink.u8(version);
    if (version >= 3)
        sink.varint(engine_ ? engine_->shardCount() : 1);
    else if (engine_)
        sink.varint(engine_->shardCount());

    // Config echo: a checkpoint is only meaningful for the identical
    // collection configuration (referenceShadowPath is excluded — the
    // two shadow walks are bit-identical by contract).
    sink.u8(static_cast<std::uint8_t>(config_.granularityShift));
    sink.u64(config_.maxShadowChunks);
    sink.u8(config_.collectReuse ? 1 : 0);
    sink.u8(config_.collectEvents ? 1 : 0);
    sink.u8(config_.roiOnly ? 1 : 0);
    sink.u8(config_.collectObjects ? 1 : 0);

    sink.u8(collecting_ ? 1 : 0);
    sink.u8(static_cast<std::uint8_t>(degradationLevel_));
    sink.u8(reuseEnabled_ ? 1 : 0);
    sink.u8(classifyEnabled_ ? 1 : 0);

    sink.varint(tables_.rows.size());
    for (const CommAggregates &a : tables_.rows)
        putAggregates(sink, a);

    sink.varint(tables_.edges.size());
    for (const OrderedCommEdge &oe : tables_.edges) {
        sink.u32(static_cast<std::uint32_t>(oe.edge.producer));
        sink.u32(static_cast<std::uint32_t>(oe.edge.consumer));
        sink.u64(oe.edge.uniqueBytes);
        sink.u64(oe.edge.nonuniqueBytes);
    }
    sink.varint(tables_.threadEdges.size());
    for (const OrderedThreadEdge &oe : tables_.threadEdges) {
        sink.u32(oe.edge.producer);
        sink.u32(oe.edge.consumer);
        sink.u64(oe.edge.uniqueBytes);
        sink.u64(oe.edge.nonuniqueBytes);
    }

    putBoundsHistogram(sink, tables_.unitReuseBreakdown);
    putBoundsHistogram(sink, tables_.lineReuseBreakdown);

    sink.varint(tables_.objectStats.size());
    for (const ObjectTraffic &o : tables_.objectStats) {
        sink.u64(o.readBytes);
        sink.u64(o.writeBytes);
        sink.u64(o.uniqueReadBytes);
    }

    sink.varint(events_.records.size());
    for (const EventRecord &r : events_.records) {
        sink.u8(r.kind == EventRecord::Kind::Compute ? 0 : 1);
        if (r.kind == EventRecord::Kind::Compute) {
            putComputeEvent(sink, r.compute);
        } else {
            sink.u64(r.xfer.srcSeq);
            sink.u64(r.xfer.dstSeq);
            sink.u64(r.xfer.bytes);
        }
    }
    sink.u64(nextSeq_);

    sink.varint(segStates_.size());
    for (const SegState &s : segStates_) {
        sink.u8(s.open ? 1 : 0);
        putComputeEvent(sink, s.segment);
        // Canonical order: unordered_map iteration depends on insertion
        // history, which a restore does not replay. Sorting makes the
        // body a pure function of the logical state.
        std::vector<std::pair<std::uint64_t, std::uint64_t>> xfers(
            s.xfers.begin(), s.xfers.end());
        std::sort(xfers.begin(), xfers.end());
        sink.varint(xfers.size());
        for (const auto &[src_seq, bytes] : xfers) {
            sink.u64(src_seq);
            sink.u64(bytes);
        }
        sink.varint(s.frameLastSeq.size());
        for (std::uint64_t seq : s.frameLastSeq)
            sink.u64(seq);
        sink.u8(s.barrierPending ? 1 : 0);
    }
    sink.varint(currentTid_);

    std::vector<std::pair<std::uint64_t, std::uint64_t>> skipped;
    skipped.reserve(skippedSegments_.size());
    for (const auto &[seq, info] : skippedSegments_)
        skipped.emplace_back(seq, info.pred);
    std::sort(skipped.begin(), skipped.end());
    sink.varint(skipped.size());
    for (const auto &[seq, pred] : skipped) {
        sink.u64(seq);
        sink.u64(pred);
    }
    sink.varint(barrierPreds_.size());
    for (std::uint64_t seq : barrierPreds_)
        sink.u64(seq);

    const shadow::ShadowStats st = shadowStats();
    sink.u64(st.chunksAllocated);
    sink.u64(st.chunksLive);
    sink.u64(st.chunksPeak);
    sink.u64(st.evictions);
    sink.u64(st.allocFailures);

    if (version < 3) {
        // Legacy body: flat unit list in recency order, identity
        // tuples inline (resolved back from the stamp table).
        const auto putUnitLegacy = [&](const shadow::StampTable &table,
                                       std::uint64_t unit,
                                       shadow::ShadowRef obj) {
            const shadow::WriterStamp &w = table.writer(obj.hot.writer);
            const shadow::ReaderStamp &r = table.reader(obj.hot.reader);
            sink.varint(unit);
            sink.u64(w.seq);
            sink.u64(0); // legacy writer-call slot; no consumer
            sink.u64(r.call);
            sink.u32(static_cast<std::uint32_t>(w.ctx));
            sink.u32(static_cast<std::uint32_t>(r.ctx));
            sink.u32(w.thread);
            sink.u64(obj.cold ? obj.cold->runFirstRead : 0);
            sink.u64(obj.cold ? obj.cold->runLastRead : 0);
            sink.u64(obj.cold ? obj.cold->totalAccesses : 0);
            sink.u32(obj.cold ? obj.cold->runReads : 0);
        };
        if (engine_) {
            std::uint64_t unit_count = 0;
            engine_->planner().forEachChunk(
                [&](std::uint64_t index, bool) {
                    engine_->shadowOf(engine_->shardOf(index))
                        .forEachInChunk(
                            index,
                            [&](std::uint64_t, shadow::ShadowRef) {
                                ++unit_count;
                            });
                });
            sink.varint(unit_count);
            engine_->planner().forEachChunk(
                [&](std::uint64_t index, bool) {
                    shadow::ShadowMemory &sh =
                        engine_->shadowOf(engine_->shardOf(index));
                    sh.forEachInChunk(
                        index, [&](std::uint64_t unit,
                                   shadow::ShadowRef obj) {
                            putUnitLegacy(sh.stamps(), unit, obj);
                        });
                });
        } else {
            std::uint64_t unit_count = 0;
            shadow_.forEachInRecencyOrder(
                [&](std::uint64_t, shadow::ShadowRef) { ++unit_count; });
            sink.varint(unit_count);
            shadow_.forEachInRecencyOrder(
                [&](std::uint64_t unit, shadow::ShadowRef obj) {
                    putUnitLegacy(shadow_.stamps(), unit, obj);
                });
        }
        return;
    }

    // Version 3 shadow body. The byte peak joins the stats (it is no
    // longer derivable from chunksPeak once cold arrays are lazy).
    sink.u64(st.bytesPeak);

    // The FULL stamp table, in id order — including tuples whose only
    // holders were evicted chunks. A resumed run must not re-grow the
    // table for tuples the interrupted run already knew, or its byte
    // accounting (hence its profile) would diverge from an
    // uninterrupted run's. Sharded runs serialize the sequencer's
    // mirror table, whose ids are serial-equivalent by construction,
    // making the body engine-independent; shard-local unit stamps are
    // remapped through it below.
    const shadow::StampTable &table =
        engine_ ? engine_->planner().stamps() : shadow_.stamps();
    sink.varint(table.writerCount() - 1);
    for (std::size_t i = 1; i < table.writerCount(); ++i) {
        const shadow::WriterStamp &w =
            table.writer(static_cast<shadow::StampId>(i));
        sink.u64(w.seq);
        sink.u32(static_cast<std::uint32_t>(w.ctx));
        sink.u32(w.thread);
    }
    sink.varint(table.readerCount() - 1);
    for (std::size_t i = 1; i < table.readerCount(); ++i) {
        const shadow::ReaderStamp &r =
            table.reader(static_cast<shadow::StampId>(i));
        sink.u64(r.call);
        sink.u32(static_cast<std::uint32_t>(r.ctx));
    }

    // Chunk groups, least recently used chunk first: restoring in
    // this order reproduces the recency list, hence every future
    // eviction decision. Each group carries its cold-presence flag so
    // the restore re-materializes exactly the saved cold arrays.
    // Sharded runs walk the planner's recency list (which *is* the
    // serial recency order) and pull each chunk's units from its
    // owning shard.
    struct ChunkHead
    {
        std::uint64_t index;
        bool hasCold;
        std::uint64_t units;
    };
    std::vector<ChunkHead> heads;
    if (engine_) {
        engine_->planner().forEachChunk(
            [&](std::uint64_t index, bool has_cold) {
                std::uint64_t units = 0;
                engine_->shadowOf(engine_->shardOf(index))
                    .forEachInChunk(index,
                                    [&](std::uint64_t,
                                        shadow::ShadowRef) { ++units; });
                heads.push_back(ChunkHead{index, has_cold, units});
            });
    } else {
        shadow_.forEachChunkInRecencyOrder(
            [&](std::uint64_t index, bool has_cold,
                std::uint64_t units) {
                heads.push_back(ChunkHead{index, has_cold, units});
            });
    }
    sink.varint(heads.size());
    for (const ChunkHead &head : heads) {
        sink.varint(head.index);
        sink.u8(head.hasCold ? 1 : 0);
        sink.varint(head.units);
        const std::uint64_t base = head.index
                                   << shadow::ShadowMemory::kChunkShift;
        const auto putUnit = [&](const shadow::StampTable &local,
                                 bool remap, std::uint64_t unit,
                                 shadow::ShadowRef obj) {
            sink.varint(unit - base);
            shadow::StampId w = obj.hot.writer;
            shadow::StampId r = obj.hot.reader;
            if (remap) {
                w = table.idOfWriter(local.writer(w));
                r = table.idOfReader(local.reader(r));
            }
            sink.varint(w);
            sink.varint(r);
            if (head.hasCold) {
                sink.u64(obj.cold->runFirstRead);
                sink.u64(obj.cold->runLastRead);
                sink.u64(obj.cold->totalAccesses);
                sink.u32(obj.cold->runReads);
            }
        };
        if (engine_) {
            shadow::ShadowMemory &sh =
                engine_->shadowOf(engine_->shardOf(head.index));
            sh.forEachInChunk(head.index,
                              [&](std::uint64_t unit,
                                  shadow::ShadowRef obj) {
                                  putUnit(sh.stamps(), true, unit, obj);
                              });
        } else {
            shadow_.forEachInChunk(head.index,
                                   [&](std::uint64_t unit,
                                       shadow::ShadowRef obj) {
                                       putUnit(shadow_.stamps(), false,
                                               unit, obj);
                                   });
        }
    }

    // Version 4 trailer: which segmented cut this snapshot was taken
    // at. Informational — the body above is complete replay state, so
    // serial and segmented drivers resume each other's files.
    if (version >= 4) {
        sink.u64(provenance_->segments);
        sink.u64(provenance_->segmentIndex);
        sink.u64(provenance_->cutOffset);
    }
}

bool
SigilProfiler::restoreState(ByteSource &src)
{
    std::uint8_t version = src.u8();
    if (version < 1 || version > 4)
        return false;
    if (version >= 2) {
        // Shard count of the saving run; the body is engine-neutral,
        // so the value is informational only.
        (void)src.varint();
        if (!src.ok())
            return false;
    }

    if (src.u8() != config_.granularityShift ||
        src.u64() != config_.maxShadowChunks ||
        (src.u8() != 0) != config_.collectReuse ||
        (src.u8() != 0) != config_.collectEvents ||
        (src.u8() != 0) != config_.roiOnly ||
        (src.u8() != 0) != config_.collectObjects) {
        return false;
    }

    collecting_ = src.u8() != 0;
    degradationLevel_ = src.u8();
    reuseEnabled_ = src.u8() != 0;
    classifyEnabled_ = src.u8() != 0;
    if (engine_ && degradationLevel_ != 0) {
        // The sharded engine runs at fixed fidelity; a degraded
        // snapshot can only resume serially.
        return false;
    }

    std::uint64_t num_rows = src.varint();
    if (!src.ok() || num_rows > (std::uint64_t{1} << 32))
        return false;
    tables_.rows.assign(static_cast<std::size_t>(num_rows),
                        CommAggregates());
    for (CommAggregates &a : tables_.rows) {
        if (!getAggregates(src, a))
            return false;
    }

    std::uint64_t num_edges = src.varint();
    if (!src.ok() || num_edges > (std::uint64_t{1} << 32))
        return false;
    tables_.edges.clear();
    tables_.edgeIndex.clear();
    for (std::uint64_t i = 0; i < num_edges; ++i) {
        CommEdge e;
        e.producer = static_cast<vg::ContextId>(src.u32());
        e.consumer = static_cast<vg::ContextId>(src.u32());
        e.uniqueBytes = src.u64();
        e.nonuniqueBytes = src.u64();
        tables_.edgeIndex.emplace(
            CommTables::edgeKey(e.producer, e.consumer),
            tables_.edges.size());
        tables_.edges.push_back(OrderedCommEdge{e, 0});
    }
    std::uint64_t num_tedges = src.varint();
    if (!src.ok() || num_tedges > (std::uint64_t{1} << 32))
        return false;
    tables_.threadEdges.clear();
    tables_.threadEdgeIndex.clear();
    for (std::uint64_t i = 0; i < num_tedges; ++i) {
        ThreadCommEdge e;
        e.producer = src.u32();
        e.consumer = src.u32();
        e.uniqueBytes = src.u64();
        e.nonuniqueBytes = src.u64();
        tables_.threadEdgeIndex.emplace(
            CommTables::threadEdgeKey(e.producer, e.consumer),
            tables_.threadEdges.size());
        tables_.threadEdges.push_back(OrderedThreadEdge{e, 0});
    }

    if (!getBoundsHistogram(src, tables_.unitReuseBreakdown) ||
        !getBoundsHistogram(src, tables_.lineReuseBreakdown)) {
        return false;
    }

    std::uint64_t num_objs = src.varint();
    if (!src.ok() || num_objs > (std::uint64_t{1} << 32))
        return false;
    tables_.objectStats.assign(static_cast<std::size_t>(num_objs),
                               ObjectTraffic{});
    for (ObjectTraffic &o : tables_.objectStats) {
        o.readBytes = src.u64();
        o.writeBytes = src.u64();
        o.uniqueReadBytes = src.u64();
    }

    std::uint64_t num_records = src.varint();
    if (!src.ok() || num_records > (std::uint64_t{1} << 32))
        return false;
    events_.records.clear();
    events_.records.reserve(static_cast<std::size_t>(num_records));
    for (std::uint64_t i = 0; i < num_records; ++i) {
        if (src.u8() == 0) {
            ComputeEvent c;
            getComputeEvent(src, c);
            events_.records.push_back(EventRecord::makeCompute(c));
        } else {
            XferEvent x;
            x.srcSeq = src.u64();
            x.dstSeq = src.u64();
            x.bytes = src.u64();
            events_.records.push_back(EventRecord::makeXfer(x));
        }
    }
    nextSeq_ = src.u64();

    std::uint64_t num_segs = src.varint();
    if (!src.ok() || num_segs == 0 || num_segs > (std::uint64_t{1} << 20))
        return false;
    segStates_.assign(static_cast<std::size_t>(num_segs), SegState{});
    for (SegState &s : segStates_) {
        s.open = src.u8() != 0;
        getComputeEvent(src, s.segment);
        std::uint64_t num_xfers = src.varint();
        if (!src.ok() || num_xfers > (std::uint64_t{1} << 32))
            return false;
        for (std::uint64_t i = 0; i < num_xfers; ++i) {
            std::uint64_t src_seq = src.u64();
            std::uint64_t bytes = src.u64();
            s.xfers.emplace(src_seq, bytes);
        }
        std::uint64_t num_frames = src.varint();
        if (!src.ok() || num_frames > (std::uint64_t{1} << 24))
            return false;
        s.frameLastSeq.resize(static_cast<std::size_t>(num_frames));
        for (auto &seq : s.frameLastSeq)
            seq = src.u64();
        s.barrierPending = src.u8() != 0;
    }
    currentTid_ = static_cast<vg::ThreadId>(src.varint());
    if (currentTid_ >= segStates_.size())
        return false;

    std::uint64_t num_skipped = src.varint();
    if (!src.ok() || num_skipped > (std::uint64_t{1} << 32))
        return false;
    skippedSegments_.clear();
    skipStamp_ = 0;
    for (std::uint64_t i = 0; i < num_skipped; ++i) {
        std::uint64_t seq = src.u64();
        std::uint64_t pred = src.u64();
        skippedSegments_.emplace(seq, SkipInfo{pred, skipStamp_++});
    }
    std::uint64_t num_bpreds = src.varint();
    if (!src.ok() || num_bpreds > (std::uint64_t{1} << 20))
        return false;
    barrierPreds_.resize(static_cast<std::size_t>(num_bpreds));
    for (auto &seq : barrierPreds_)
        seq = src.u64();

    shadow::ShadowStats st;
    st.chunksAllocated = src.u64();
    st.chunksLive = src.u64();
    st.chunksPeak = src.u64();
    st.evictions = src.u64();
    st.allocFailures = src.u64();

    // Re-interns a resolved identity tuple pair into whichever tables
    // the target engine uses and stores the unit. Interning (rather
    // than trusting saved ids) keeps the restore correct even if the
    // saved id space and ours ever disagree, and lets v1/v2 bodies —
    // which carry tuples, not ids — restore into the same machinery.
    const auto restoreUnit = [&](std::uint64_t unit, bool has_cold,
                                 const shadow::WriterStamp &w,
                                 const shadow::ReaderStamp &r,
                                 shadow::ShadowCold cold) {
        shadow::ShadowRef obj = engine_
                                    ? engine_->restoreUnit(unit, has_cold)
                                    : shadow_.restoreLookup(unit,
                                                            has_cold);
        if (engine_) {
            // Keep the sequencer's mirror table in sync so later
            // saves can resolve shard-local ids (v3 interned the full
            // table above already; this is a dedup no-op there).
            engine_->planner().stamps().internWriter(w);
            engine_->planner().stamps().internReader(r);
            obj.hot.writer = engine_->internWriterFor(unit, w);
            obj.hot.reader = engine_->internReaderFor(unit, r);
        } else {
            obj.hot.writer = shadow_.internWriter(w);
            obj.hot.reader = shadow_.internReader(r);
        }
        if (has_cold)
            *obj.cold = cold;
    };

    if (version < 3) {
        // Legacy flat unit list with inline identity tuples. A unit
        // gets a cold slot iff any cold field is nonzero — exactly the
        // units the old eager-cold layout carried pending state for.
        // bytesPeak was not recorded; restoreStats approximates it as
        // the rebuilt live footprint.
        std::uint64_t num_units = src.varint();
        if (!src.ok() || num_units > (std::uint64_t{1} << 40))
            return false;
        for (std::uint64_t i = 0; i < num_units; ++i) {
            std::uint64_t unit = src.varint();
            if (!src.ok())
                return false;
            shadow::WriterStamp w;
            shadow::ReaderStamp r;
            shadow::ShadowCold cold;
            w.seq = src.u64();
            src.u64(); // legacy writer-call slot; no consumer
            r.call = src.u64();
            w.ctx = static_cast<vg::ContextId>(src.u32());
            r.ctx = static_cast<vg::ContextId>(src.u32());
            w.thread = src.u32();
            cold.runFirstRead = src.u64();
            cold.runLastRead = src.u64();
            cold.totalAccesses = src.u64();
            cold.runReads = src.u32();
            const bool has_cold = cold.runFirstRead != 0 ||
                                  cold.runLastRead != 0 ||
                                  cold.totalAccesses != 0 ||
                                  cold.runReads != 0;
            restoreUnit(unit, has_cold, w, r, cold);
        }
    } else {
        st.bytesPeak = src.u64();

        // Full stamp table of the saving run. Every entry is interned
        // up front — even ones no resident unit references — so the
        // resumed run's table growth (hence byte accounting) matches
        // an uninterrupted run's.
        std::uint64_t wcount = src.varint();
        if (!src.ok() || wcount > (std::uint64_t{1} << 32))
            return false;
        std::vector<shadow::WriterStamp> writers(
            static_cast<std::size_t>(wcount) + 1);
        for (std::uint64_t i = 1; i <= wcount; ++i) {
            shadow::WriterStamp &w = writers[i];
            w.seq = src.u64();
            w.ctx = static_cast<vg::ContextId>(src.u32());
            w.thread = src.u32();
            if (engine_)
                engine_->planner().stamps().internWriter(w);
            else
                shadow_.internWriter(w);
        }
        std::uint64_t rcount = src.varint();
        if (!src.ok() || rcount > (std::uint64_t{1} << 32))
            return false;
        std::vector<shadow::ReaderStamp> readers(
            static_cast<std::size_t>(rcount) + 1);
        for (std::uint64_t i = 1; i <= rcount; ++i) {
            shadow::ReaderStamp &r = readers[i];
            r.call = src.u64();
            r.ctx = static_cast<vg::ContextId>(src.u32());
            if (engine_)
                engine_->planner().stamps().internReader(r);
            else
                shadow_.internReader(r);
        }

        std::uint64_t num_chunks = src.varint();
        if (!src.ok() || num_chunks > (std::uint64_t{1} << 28))
            return false;
        for (std::uint64_t c = 0; c < num_chunks; ++c) {
            std::uint64_t index = src.varint();
            std::uint8_t has_cold = src.u8();
            std::uint64_t num_units = src.varint();
            if (!src.ok() || has_cold > 1 ||
                num_units > shadow::ShadowMemory::kChunkUnits) {
                return false;
            }
            const std::uint64_t base =
                index << shadow::ShadowMemory::kChunkShift;
            for (std::uint64_t i = 0; i < num_units; ++i) {
                std::uint64_t off = src.varint();
                std::uint64_t wid = src.varint();
                std::uint64_t rid = src.varint();
                if (!src.ok() ||
                    off >= shadow::ShadowMemory::kChunkUnits ||
                    wid > wcount || rid > rcount) {
                    return false;
                }
                shadow::ShadowCold cold;
                if (has_cold != 0) {
                    cold.runFirstRead = src.u64();
                    cold.runLastRead = src.u64();
                    cold.totalAccesses = src.u64();
                    cold.runReads = src.u32();
                }
                restoreUnit(base + off, has_cold != 0, writers[wid],
                            readers[rid], cold);
            }
        }
        if (version >= 4) {
            // Segment-provenance trailer: informational, consumed so
            // the session reader state that follows stays aligned.
            (void)src.u64();
            (void)src.u64();
            (void)src.u64();
        }
    }
    if (engine_)
        engine_->planner().restoreStats(st);
    else
        shadow_.restoreStats(st);
    pendingSegs_.clear();
    discardedSeqs_.clear();
    needsFold_ = false;
    return src.ok();
}

} // namespace sigil::core
