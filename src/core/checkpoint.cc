#include "checkpoint.hh"

#include <cstdio>
#include <fstream>
#include <istream>
#include <optional>
#include <sstream>
#include <utility>

#include "support/crc32c.hh"
#include "support/logging.hh"
#include "support/serial.hh"
#include "vg/trace_io.hh"

namespace sigil::core {

namespace {

constexpr char kCheckpointMagic[4] = {'S', 'G', 'C', 'P'};
constexpr std::uint8_t kCheckpointVersion = 1;

/** Bytes of the trace preamble hashed into the checkpoint binding. */
constexpr std::size_t kBindingBytes = 256;

std::string
slurpStream(std::istream &is)
{
    std::string data;
    char buf[256 * 1024];
    while (is.read(buf, sizeof(buf)) || is.gcount() > 0)
        data.append(buf, static_cast<std::size_t>(is.gcount()));
    return data;
}

} // namespace

namespace detail {

TraceBinding
TraceBinding::of(std::string_view trace)
{
    TraceBinding b;
    b.traceBytes = trace.size();
    b.preambleCrc =
        crc32c(trace.data(), std::min(trace.size(), kBindingBytes));
    return b;
}

std::uint64_t
writeCheckpointFile(const std::string &path, const std::string &payload)
{
    ByteSink header;
    header.raw(kCheckpointMagic, sizeof(kCheckpointMagic));
    header.u8(kCheckpointVersion);
    header.u64(payload.size());
    header.u32(crc32c(payload.data(), payload.size()));

    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            warn("checkpoint: cannot open %s for writing", tmp.c_str());
            return 0;
        }
        os.write(header.bytes().data(),
                 static_cast<std::streamsize>(header.size()));
        os.write(payload.data(),
                 static_cast<std::streamsize>(payload.size()));
        os.flush();
        if (!os) {
            warn("checkpoint: short write to %s", tmp.c_str());
            std::remove(tmp.c_str());
            return 0;
        }
    }
    // Rotate, newest last: path -> path.prev, tmp -> path. rename(2)
    // is atomic, so a crash at any point leaves a valid file at one of
    // the two names.
    std::rename(path.c_str(), (path + ".prev").c_str());
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("checkpoint: cannot rename %s into place", tmp.c_str());
        std::remove(tmp.c_str());
        return 0;
    }
    return header.size() + payload.size();
}

std::optional<std::string>
loadCheckpointFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return std::nullopt;
    std::string data = slurpStream(is);

    ByteSource src(data);
    char magic[4];
    src.raw(magic, sizeof(magic));
    if (!src.ok() ||
        std::string_view(magic, 4) != std::string_view(kCheckpointMagic, 4))
        return std::nullopt;
    if (src.u8() != kCheckpointVersion)
        return std::nullopt;
    std::uint64_t len = src.u64();
    std::uint32_t crc = src.u32();
    if (!src.ok() || len != data.size() - src.pos())
        return std::nullopt;
    std::string payload = data.substr(src.pos());
    if (crc32c(payload.data(), payload.size()) != crc)
        return std::nullopt;
    return payload;
}

std::string
buildSnapshot(const TraceBinding &binding, vg::Guest &guest,
              SigilProfiler &profiler, vg::BinaryReplaySession &session)
{
    ByteSink sink;
    sink.u64(binding.traceBytes);
    sink.u32(binding.preambleCrc);
    guest.saveState(sink); // sync()s, so the profiler is caught up
    profiler.saveState(sink);
    session.saveReaderState(sink);
    return sink.take();
}

bool
restoreSnapshot(const std::string &payload, const TraceBinding &binding,
                vg::Guest &guest, SigilProfiler &profiler,
                vg::BinaryReplaySession &session)
{
    ByteSource src(payload);
    TraceBinding saved;
    saved.traceBytes = src.u64();
    saved.preambleCrc = src.u32();
    if (!src.ok() || !(saved == binding))
        return false;
    return guest.restoreState(src) && profiler.restoreState(src) &&
           session.restoreReaderState(src) && src.ok();
}

} // namespace detail

namespace {

using namespace detail;

/**
 * Shared core: checkpointed replay directly over a byte view (an
 * mmap'd file or a slurped stream). The binding hashes the raw stored
 * bytes, so it is identical whether the trace arrived as a stream, a
 * mapping, or a compressed (SGB3) file.
 */
vg::ReplayReport
replayViewWithCheckpoints(std::string_view data, vg::Guest &guest,
                          SigilProfiler &profiler,
                          const vg::ReplayOptions &options,
                          const CheckpointConfig &config,
                          CheckpointStats *stats)
{
    CheckpointStats local;
    CheckpointStats &st = stats != nullptr ? *stats : local;
    st = CheckpointStats{};

    const TraceBinding binding = TraceBinding::of(data);

    vg::BinaryReplaySession session(data, guest, options);

    // Resume from the newest valid checkpoint that matches this trace
    // and configuration; a corrupt or torn newest file falls back to
    // the rotated previous one. Restore failure part-way through can
    // leave guest/profiler partially written, but the caller handed us
    // freshly constructed ones and both restores re-assign (never
    // merge), so the later attempt starts clean.
    if (!config.path.empty()) {
        for (const std::string &candidate :
             {config.path, config.path + ".prev"}) {
            auto payload = loadCheckpointFile(candidate);
            if (!payload)
                continue;
            if (restoreSnapshot(*payload, binding, guest, profiler,
                                session)) {
                st.resumed = true;
                st.resumeBlocks = session.blocksProcessed();
                break;
            }
            warn("checkpoint: %s does not match this replay, ignoring",
                 candidate.c_str());
        }
    }

    const bool periodic =
        !config.path.empty() && config.intervalBlocks != 0;
    std::uint64_t next_checkpoint =
        periodic ? session.blocksProcessed() + config.intervalBlocks : 0;

    while (session.step()) {
        if (periodic && session.blocksProcessed() >= next_checkpoint) {
            std::uint64_t bytes = writeCheckpointFile(
                config.path,
                buildSnapshot(binding, guest, profiler, session));
            if (bytes != 0) {
                ++st.checkpointsWritten;
                st.lastCheckpointBytes = bytes;
            }
            next_checkpoint =
                session.blocksProcessed() + config.intervalBlocks;
        }
    }

    return session.finish();
}

} // namespace

vg::ReplayReport
replayWithCheckpoints(std::istream &trace, vg::Guest &guest,
                      SigilProfiler &profiler,
                      const vg::ReplayOptions &options,
                      const CheckpointConfig &config,
                      CheckpointStats *stats)
{
    const std::string data = slurpStream(trace);
    return replayViewWithCheckpoints(data, guest, profiler, options,
                                     config, stats);
}

vg::ReplayReport
replayFileWithCheckpoints(const std::string &tracePath, vg::Guest &guest,
                          SigilProfiler &profiler,
                          const vg::ReplayOptions &options,
                          const CheckpointConfig &config,
                          CheckpointStats *stats)
{
    vg::MappedTraceFile file(tracePath);
    if (!file.ok()) {
        if (stats != nullptr)
            *stats = CheckpointStats{};
        vg::ReplayReport report;
        vg::TraceError e;
        e.cause = vg::TraceErrorCause::Io;
        e.detail = file.errorDetail();
        report.error = std::move(e);
        return report;
    }
    return replayViewWithCheckpoints(file.view(), guest, profiler,
                                     options, config, stats);
}

} // namespace sigil::core
