#include "callgrind_writer.hh"

#include <ostream>
#include <sstream>

#include "support/logging.hh"

namespace sigil::core {

void
writeCallgrindFormat(std::ostream &os, const SigilProfile &sigil,
                     const cg::CgProfile *cg)
{
    if (cg != nullptr && cg->rows.size() != sigil.rows.size())
        fatal("writeCallgrindFormat: mismatched profiles");

    os << "# callgrind format\n";
    os << "version: 1\n";
    os << "creator: sigil-repro\n";
    os << "cmd: " << sigil.program << "\n";
    os << "positions: line\n";
    if (cg != nullptr) {
        os << "events: Ir Dr Dw D1mr Bc Bim "
              "UniqIn NonUniqIn UniqOut UniqLocal\n";
    } else {
        os << "events: UniqIn NonUniqIn UniqOut UniqLocal\n";
    }
    os << "\n";

    // One fn block per context; display names make contexts unique.
    for (const SigilRow &row : sigil.rows) {
        const CommAggregates &a = row.agg;
        os << "fn=" << row.displayName << "\n";
        os << "0";
        if (cg != nullptr) {
            const cg::CgCounters &c =
                cg->rows[static_cast<std::size_t>(row.ctx)].self;
            os << ' ' << c.instructions << ' ' << c.reads << ' '
               << c.writes << ' ' << c.d1Misses << ' ' << c.branches
               << ' ' << c.branchMispredicts;
        }
        os << ' ' << a.uniqueInputBytes << ' ' << a.nonuniqueInputBytes
           << ' ' << a.uniqueOutputBytes << ' ' << a.uniqueLocalBytes
           << "\n";

        // Call records: one per child context, with the child's
        // inclusive costs attached as the called cost.
        for (const SigilRow &child : sigil.rows) {
            if (child.parent != row.ctx)
                continue;
            os << "cfn=" << child.displayName << "\n";
            os << "calls=" << child.agg.calls << " 0\n";
            const CommAggregates &b = child.agg;
            os << "0";
            if (cg != nullptr) {
                const cg::CgCounters &c =
                    cg->rows[static_cast<std::size_t>(child.ctx)].incl;
                os << ' ' << c.instructions << ' ' << c.reads << ' '
                   << c.writes << ' ' << c.d1Misses << ' ' << c.branches
                   << ' ' << c.branchMispredicts;
            }
            os << ' ' << b.uniqueInputBytes << ' '
               << b.nonuniqueInputBytes << ' ' << b.uniqueOutputBytes
               << ' ' << b.uniqueLocalBytes << "\n";
        }
        os << "\n";
    }

    // Summary line (totals) for callgrind_annotate.
    std::uint64_t t_ir = 0, t_dr = 0, t_dw = 0, t_d1 = 0, t_bc = 0,
                  t_bim = 0;
    std::uint64_t t_ui = 0, t_nui = 0, t_uo = 0, t_ul = 0;
    for (const SigilRow &row : sigil.rows) {
        const CommAggregates &a = row.agg;
        t_ui += a.uniqueInputBytes;
        t_nui += a.nonuniqueInputBytes;
        t_uo += a.uniqueOutputBytes;
        t_ul += a.uniqueLocalBytes;
    }
    if (cg != nullptr) {
        for (const cg::CgRow &row : cg->rows) {
            t_ir += row.self.instructions;
            t_dr += row.self.reads;
            t_dw += row.self.writes;
            t_d1 += row.self.d1Misses;
            t_bc += row.self.branches;
            t_bim += row.self.branchMispredicts;
        }
    }
    os << "totals:";
    if (cg != nullptr) {
        os << ' ' << t_ir << ' ' << t_dr << ' ' << t_dw << ' ' << t_d1
           << ' ' << t_bc << ' ' << t_bim;
    }
    os << ' ' << t_ui << ' ' << t_nui << ' ' << t_uo << ' ' << t_ul
       << "\n";
}

std::string
callgrindString(const SigilProfile &sigil, const cg::CgProfile *cg)
{
    std::ostringstream os;
    writeCallgrindFormat(os, sigil, cg);
    return os.str();
}

} // namespace sigil::core
