/**
 * @file
 * Human-readable profile reports: a gprof-style flat profile ranked by
 * inclusive cycles, and a communication summary giving the paper's
 * headline numbers (how much of the traffic is unique, local, re-read)
 * for one run.
 */

#ifndef SIGIL_CORE_REPORT_HH
#define SIGIL_CORE_REPORT_HH

#include <string>

#include "cg/cg_profile.hh"
#include "core/profile.hh"

namespace sigil::core {

/**
 * Flat profile of the top_n contexts by inclusive cycle estimate (or
 * by operations when cg is nullptr), with per-row communication
 * columns. Rendered as an aligned text table.
 */
std::string flatReport(const SigilProfile &sigil, const cg::CgProfile *cg,
                       std::size_t top_n = 20);

/**
 * Program-wide communication summary: totals of every classification
 * axis, the unique fraction, the re-use breakdown, and cross-thread
 * share when the guest was multi-threaded.
 */
std::string commSummary(const SigilProfile &sigil);

} // namespace sigil::core

#endif // SIGIL_CORE_REPORT_HH
