/**
 * @file
 * Checkpoint/resume for long trace replays.
 *
 * A replay over a large trace can be interrupted — machine reboot,
 * preemption, a crash in unrelated code — and restarting a multi-hour
 * analysis from the beginning wastes the "collect once, analyze many"
 * economics the trace format is built around. The checkpoint layer
 * drives an SGB2 replay through BinaryReplaySession and, every N event
 * blocks, snapshots the complete replay state to a file:
 *
 *   - the guest (function registry, context tree, call stacks, virtual
 *     clock, allocations, ROI flag),
 *   - the analysis tool (profiler aggregates, edges, histograms, event
 *     trace, open segments, and every live shadow chunk in recency
 *     order),
 *   - the reader (stream position, trace-id → function map, salvage
 *     accounting).
 *
 * File layout (docs/FORMATS.md §5): "SGCP" magic, u8 version, u64
 * payload length, u32 CRC32C of the payload, payload. The payload
 * additionally records the trace's size and preamble CRC so a
 * checkpoint cannot be resumed against a different trace. Writes are
 * atomic (tmp file + rename) and the previous checkpoint is rotated to
 * "<path>.prev", so a crash mid-write leaves at least one valid
 * checkpoint behind; resume tries the newest first and falls back.
 *
 * Restored replays are bit-identical to uninterrupted ones: the
 * profiler restores shadow chunks in LRU order (reproducing future
 * eviction decisions) and SGB2 resets its address-delta chain at every
 * block boundary (so decoding resumes cleanly mid-stream).
 *
 * Sharded replays (GuestConfig::shardCount > 1) fold their
 * shard-partial state before every snapshot, so the profiler body is
 * engine-independent (version 2 merely records the shard count,
 * docs/FORMATS.md §5.1): snapshots restore across engines and shard
 * counts in both directions, still bit-identically.
 */

#ifndef SIGIL_CORE_CHECKPOINT_HH
#define SIGIL_CORE_CHECKPOINT_HH

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "core/sigil_profiler.hh"
#include "vg/guest.hh"
#include "vg/trace_error.hh"

namespace sigil::vg {
class BinaryReplaySession;
}

namespace sigil::core {

/** Checkpointing policy of a replay. */
struct CheckpointConfig
{
    /** Checkpoint file; "<path>.prev" holds the rotated previous one. */
    std::string path;

    /** Event blocks between snapshots (0 disables periodic writes). */
    std::uint64_t intervalBlocks = 64;
};

/** What the checkpoint layer did during one replay. */
struct CheckpointStats
{
    /** Snapshots written this run. */
    std::uint64_t checkpointsWritten = 0;

    /** Size of the most recent snapshot, bytes. */
    std::uint64_t lastCheckpointBytes = 0;

    /** True when the replay resumed from an existing checkpoint. */
    bool resumed = false;

    /** Event blocks that were skipped over by the resume. */
    std::uint64_t resumeBlocks = 0;
};

/**
 * Replay an SGB2 trace with periodic checkpoints.
 *
 * The guest must be freshly constructed with the profiler attached
 * (batched/async guest configurations are not resumable and are
 * rejected at resume time). If config.path holds a checkpoint that
 * matches this trace and configuration, the replay resumes from it;
 * otherwise it starts from the beginning. Either way a snapshot is
 * written every config.intervalBlocks event blocks.
 *
 * @return the final ReplayReport (cumulative across resume).
 */
vg::ReplayReport
replayWithCheckpoints(std::istream &trace, vg::Guest &guest,
                      SigilProfiler &profiler,
                      const vg::ReplayOptions &options,
                      const CheckpointConfig &config,
                      CheckpointStats *stats = nullptr);

/**
 * Checkpointed replay straight from a trace file. The file is mmap'd
 * when possible (vg::MappedTraceFile), so replay decodes in place with
 * no slurp copy; checkpoint binding and resume semantics are identical
 * to the stream overload — the binding hashes the stored bytes, which
 * SGB3 compression does not change between record and replay. Returns
 * an Io-cause error report if the file cannot be opened.
 */
vg::ReplayReport
replayFileWithCheckpoints(const std::string &tracePath, vg::Guest &guest,
                          SigilProfiler &profiler,
                          const vg::ReplayOptions &options,
                          const CheckpointConfig &config,
                          CheckpointStats *stats = nullptr);

/**
 * Building blocks of the checkpoint file format, exported for other
 * replay drivers (the segment engine writes snapshots at segment cut
 * boundaries with the same file format, rotation, and trace binding,
 * so serial and segmented replays can resume each other's files).
 */
namespace detail {

/**
 * Identity of the trace a checkpoint belongs to: its size plus a CRC
 * of its preamble. Resuming against a different trace is refused.
 */
struct TraceBinding
{
    std::uint64_t traceBytes = 0;
    std::uint32_t preambleCrc = 0;

    static TraceBinding of(std::string_view trace);

    bool
    operator==(const TraceBinding &o) const
    {
        return traceBytes == o.traceBytes && preambleCrc == o.preambleCrc;
    }
};

/**
 * Atomically replace the checkpoint at `path`, rotating the previous
 * one to "<path>.prev". Returns the bytes written, 0 on failure (a
 * failed write never destroys the existing checkpoint).
 */
std::uint64_t writeCheckpointFile(const std::string &path,
                                  const std::string &payload);

/** Load and validate one checkpoint file; nullopt when unusable. */
std::optional<std::string> loadCheckpointFile(const std::string &path);

/** Serialize the complete replay state (binding + guest + tool + reader). */
std::string buildSnapshot(const TraceBinding &binding, vg::Guest &guest,
                          SigilProfiler &profiler,
                          vg::BinaryReplaySession &session);

/** Inverse of buildSnapshot(); false when the payload does not match. */
bool restoreSnapshot(const std::string &payload,
                     const TraceBinding &binding, vg::Guest &guest,
                     SigilProfiler &profiler,
                     vg::BinaryReplaySession &session);

} // namespace detail

} // namespace sigil::core

#endif // SIGIL_CORE_CHECKPOINT_HH
