#include "profile_io.hh"

#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "support/logging.hh"

namespace sigil::core {

namespace {

/** Split a line on tabs. */
std::vector<std::string>
splitTabs(const std::string &line)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        std::size_t pos = line.find('\t', start);
        if (pos == std::string::npos) {
            out.push_back(line.substr(start));
            return out;
        }
        out.push_back(line.substr(start, pos - start));
        start = pos + 1;
    }
}

std::uint64_t
parseU64(const std::string &s, const char *what)
{
    try {
        std::size_t consumed = 0;
        std::uint64_t v = std::stoull(s, &consumed);
        if (consumed != s.size())
            fatal("profile parse: bad %s value '%s'", what, s.c_str());
        return v;
    } catch (const std::exception &) {
        fatal("profile parse: bad %s value '%s'", what, s.c_str());
    }
}

std::int64_t
parseI64(const std::string &s, const char *what)
{
    try {
        std::size_t consumed = 0;
        std::int64_t v = std::stoll(s, &consumed);
        if (consumed != s.size())
            fatal("profile parse: bad %s value '%s'", what, s.c_str());
        return v;
    } catch (const std::exception &) {
        fatal("profile parse: bad %s value '%s'", what, s.c_str());
    }
}

std::string
sanitize(const std::string &name)
{
    std::string out = name;
    for (char &c : out) {
        if (c == '\t' || c == '\n')
            c = ' ';
    }
    return out;
}

void
writeBounds(std::ostream &os, const char *tag, const BoundsHistogram &h)
{
    os << "breakdown\t" << tag;
    for (std::size_t i = 0; i < h.numBins(); ++i)
        os << '\t' << h.binCount(i);
    os << '\n';
}

} // namespace

void
writeProfile(std::ostream &os, const SigilProfile &profile)
{
    os << "sigil-profile\t1\n";
    os << "program\t" << sanitize(profile.program) << '\n';
    os << "granularity\t" << profile.granularityShift << '\n';
    os << "shadow\t" << profile.shadowPeakBytes << '\t'
       << profile.shadowEvictions << '\n';

    for (const SigilRow &r : profile.rows) {
        const CommAggregates &a = r.agg;
        os << "row\t" << r.ctx << '\t' << r.parent << '\t'
           << sanitize(r.fnName) << '\t' << sanitize(r.displayName) << '\t'
           << sanitize(r.path) << '\t' << a.calls << '\t' << a.iops << '\t'
           << a.flops << '\t' << a.readBytes << '\t' << a.writeBytes
           << '\t' << a.uniqueLocalBytes << '\t' << a.nonuniqueLocalBytes
           << '\t' << a.uniqueInputBytes << '\t' << a.nonuniqueInputBytes
           << '\t' << a.uniqueOutputBytes << '\t'
           << a.nonuniqueOutputBytes << '\t' << a.reusedUnits << '\t'
           << a.reuseReads << '\t' << a.lifetimeSum << '\t'
           << a.uniqueInterThreadBytes << '\t'
           << a.nonuniqueInterThreadBytes << '\n';
        const LinearHistogram &h = a.lifetimeHist;
        if (h.totalCount() > 0) {
            os << "hist\t" << r.ctx << '\t' << h.binWidth() << '\t'
               << h.overflowCount() << '\t' << h.totalValue() << '\t'
               << h.maxValue() << '\t' << h.numBins();
            for (std::size_t i = 0; i < h.numBins(); ++i)
                os << '\t' << h.binCount(i);
            os << '\n';
        }
    }

    for (const CommEdge &e : profile.edges) {
        os << "edge\t" << e.producer << '\t' << e.consumer << '\t'
           << e.uniqueBytes << '\t' << e.nonuniqueBytes << '\n';
    }
    for (const ThreadCommEdge &e : profile.threadEdges) {
        os << "tedge\t" << e.producer << '\t' << e.consumer << '\t'
           << e.uniqueBytes << '\t' << e.nonuniqueBytes << '\n';
    }

    writeBounds(os, "unit", profile.unitReuseBreakdown);
    writeBounds(os, "line", profile.lineReuseBreakdown);
    os << "end\n";
}

void
writeProfileFile(const std::string &path, const SigilProfile &profile)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '%s' for writing", path.c_str());
    writeProfile(os, profile);
    if (!os)
        fatal("I/O error writing '%s'", path.c_str());
}

SigilProfile
readProfile(std::istream &is)
{
    SigilProfile profile;
    std::string line;
    bool saw_header = false;
    bool saw_end = false;
    std::unordered_map<std::string, vg::FunctionId> fn_ids;

    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::vector<std::string> f = splitTabs(line);
        const std::string &tag = f[0];

        if (!saw_header) {
            if (tag != "sigil-profile" || f.size() < 2 || f[1] != "1")
                fatal("not a sigil profile (bad header)");
            saw_header = true;
            continue;
        }
        if (tag == "program" && f.size() >= 2) {
            profile.program = f[1];
        } else if (tag == "granularity" && f.size() >= 2) {
            profile.granularityShift =
                static_cast<unsigned>(parseU64(f[1], "granularity"));
        } else if (tag == "shadow" && f.size() >= 3) {
            profile.shadowPeakBytes = parseU64(f[1], "shadow peak");
            profile.shadowEvictions = parseU64(f[2], "shadow evictions");
        } else if (tag == "row") {
            if (f.size() < 22)
                fatal("profile parse: short row line");
            SigilRow r;
            r.ctx = static_cast<vg::ContextId>(parseI64(f[1], "ctx"));
            r.parent =
                static_cast<vg::ContextId>(parseI64(f[2], "parent"));
            r.fnName = f[3];
            r.displayName = f[4];
            r.path = f[5];
            auto [it, inserted] = fn_ids.try_emplace(
                r.fnName, static_cast<vg::FunctionId>(fn_ids.size()));
            (void)inserted;
            r.fn = it->second;
            CommAggregates &a = r.agg;
            a.calls = parseU64(f[6], "calls");
            a.iops = parseU64(f[7], "iops");
            a.flops = parseU64(f[8], "flops");
            a.readBytes = parseU64(f[9], "readBytes");
            a.writeBytes = parseU64(f[10], "writeBytes");
            a.uniqueLocalBytes = parseU64(f[11], "ul");
            a.nonuniqueLocalBytes = parseU64(f[12], "nul");
            a.uniqueInputBytes = parseU64(f[13], "ui");
            a.nonuniqueInputBytes = parseU64(f[14], "nui");
            a.uniqueOutputBytes = parseU64(f[15], "uo");
            a.nonuniqueOutputBytes = parseU64(f[16], "nuo");
            a.reusedUnits = parseU64(f[17], "reusedUnits");
            a.reuseReads = parseU64(f[18], "reuseReads");
            a.lifetimeSum = parseU64(f[19], "lifetimeSum");
            a.uniqueInterThreadBytes = parseU64(f[20], "uit");
            a.nonuniqueInterThreadBytes = parseU64(f[21], "nit");
            std::size_t idx = static_cast<std::size_t>(r.ctx);
            if (idx >= profile.rows.size())
                profile.rows.resize(idx + 1);
            profile.rows[idx] = std::move(r);
        } else if (tag == "hist") {
            if (f.size() < 7)
                fatal("profile parse: short hist line");
            std::size_t ctx = parseU64(f[1], "hist ctx");
            std::uint64_t width = parseU64(f[2], "hist width");
            std::uint64_t overflow = parseU64(f[3], "hist overflow");
            std::uint64_t sum = parseU64(f[4], "hist sum");
            std::uint64_t max = parseU64(f[5], "hist max");
            std::size_t nbins = parseU64(f[6], "hist nbins");
            if (f.size() != 7 + nbins)
                fatal("profile parse: hist bin count mismatch");
            std::vector<std::uint64_t> bins(nbins);
            for (std::size_t i = 0; i < nbins; ++i)
                bins[i] = parseU64(f[7 + i], "hist bin");
            if (ctx >= profile.rows.size())
                fatal("profile parse: hist for unknown context");
            LinearHistogram h(width);
            h.restore(std::move(bins), overflow, sum, max);
            profile.rows[ctx].agg.lifetimeHist = std::move(h);
        } else if (tag == "tedge") {
            if (f.size() < 5)
                fatal("profile parse: short tedge line");
            ThreadCommEdge e;
            e.producer = static_cast<vg::ThreadId>(
                parseU64(f[1], "producer tid"));
            e.consumer = static_cast<vg::ThreadId>(
                parseU64(f[2], "consumer tid"));
            e.uniqueBytes = parseU64(f[3], "unique");
            e.nonuniqueBytes = parseU64(f[4], "nonunique");
            profile.threadEdges.push_back(e);
        } else if (tag == "edge") {
            if (f.size() < 5)
                fatal("profile parse: short edge line");
            CommEdge e;
            e.producer =
                static_cast<vg::ContextId>(parseI64(f[1], "producer"));
            e.consumer =
                static_cast<vg::ContextId>(parseI64(f[2], "consumer"));
            e.uniqueBytes = parseU64(f[3], "unique");
            e.nonuniqueBytes = parseU64(f[4], "nonunique");
            profile.edges.push_back(e);
        } else if (tag == "breakdown") {
            if (f.size() < 2)
                fatal("profile parse: short breakdown line");
            std::vector<std::uint64_t> counts;
            for (std::size_t i = 2; i < f.size(); ++i)
                counts.push_back(parseU64(f[i], "breakdown"));
            if (f[1] == "unit")
                profile.unitReuseBreakdown.restore(counts);
            else if (f[1] == "line")
                profile.lineReuseBreakdown.restore(counts);
            else
                fatal("profile parse: unknown breakdown '%s'",
                      f[1].c_str());
        } else if (tag == "end") {
            saw_end = true;
            break;
        } else {
            fatal("profile parse: unknown tag '%s'", tag.c_str());
        }
    }
    if (!saw_header)
        fatal("not a sigil profile (empty input)");
    if (!saw_end)
        fatal("profile parse: truncated input (missing 'end')");
    return profile;
}

SigilProfile
readProfileFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open '%s' for reading", path.c_str());
    return readProfile(is);
}

void
writeEvents(std::ostream &os, const EventTrace &events)
{
    os << "sigil-events\t1\n";
    for (const EventRecord &r : events.records) {
        if (r.kind == EventRecord::Kind::Compute) {
            const ComputeEvent &c = r.compute;
            os << "C\t" << c.seq << '\t' << c.predSeq << '\t' << c.ctx
               << '\t' << c.call << '\t' << c.iops << '\t' << c.flops
               << '\t' << c.reads << '\t' << c.writes << '\n';
        } else {
            const XferEvent &x = r.xfer;
            os << "X\t" << x.srcSeq << '\t' << x.dstSeq << '\t' << x.bytes
               << '\n';
        }
    }
    os << "end\n";
}

void
writeEventsFile(const std::string &path, const EventTrace &events)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '%s' for writing", path.c_str());
    writeEvents(os, events);
    if (!os)
        fatal("I/O error writing '%s'", path.c_str());
}

EventTrace
readEvents(std::istream &is)
{
    EventTrace trace;
    std::string line;
    bool saw_header = false;
    bool saw_end = false;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::vector<std::string> f = splitTabs(line);
        if (!saw_header) {
            if (f[0] != "sigil-events" || f.size() < 2 || f[1] != "1")
                fatal("not a sigil event file (bad header)");
            saw_header = true;
            continue;
        }
        if (f[0] == "C") {
            if (f.size() < 9)
                fatal("event parse: short compute line");
            ComputeEvent c;
            c.seq = parseU64(f[1], "seq");
            c.predSeq = parseU64(f[2], "predSeq");
            c.ctx = static_cast<vg::ContextId>(parseI64(f[3], "ctx"));
            c.call = parseU64(f[4], "call");
            c.iops = parseU64(f[5], "iops");
            c.flops = parseU64(f[6], "flops");
            c.reads = parseU64(f[7], "reads");
            c.writes = parseU64(f[8], "writes");
            trace.records.push_back(EventRecord::makeCompute(c));
        } else if (f[0] == "X") {
            if (f.size() < 4)
                fatal("event parse: short xfer line");
            XferEvent x;
            x.srcSeq = parseU64(f[1], "srcSeq");
            x.dstSeq = parseU64(f[2], "dstSeq");
            x.bytes = parseU64(f[3], "bytes");
            trace.records.push_back(EventRecord::makeXfer(x));
        } else if (f[0] == "end") {
            saw_end = true;
            break;
        } else {
            fatal("event parse: unknown tag '%s'", f[0].c_str());
        }
    }
    if (!saw_header)
        fatal("not a sigil event file (empty input)");
    if (!saw_end)
        fatal("event parse: truncated input (missing 'end')");
    return trace;
}

EventTrace
readEventsFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open '%s' for reading", path.c_str());
    return readEvents(is);
}

} // namespace sigil::core
