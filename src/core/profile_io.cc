#include "profile_io.hh"

#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "support/logging.hh"

namespace sigil::core {

namespace {

/** Split a line on tabs. */
std::vector<std::string>
splitTabs(const std::string &line)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        std::size_t pos = line.find('\t', start);
        if (pos == std::string::npos) {
            out.push_back(line.substr(start));
            return out;
        }
        out.push_back(line.substr(start, pos - start));
        start = pos + 1;
    }
}

/** Internal transport of a structured parse error (never escapes). */
struct ProfileAbort
{
    vg::TraceError err;
};

/**
 * Position of the line being parsed; every rejection carries it plus
 * the offending token, so a bad profile is diagnosable byte-exactly.
 */
struct LineCtx
{
    std::uint64_t line = 0;   ///< 1-based line number
    std::uint64_t offset = 0; ///< byte offset of the line start

    [[noreturn]] void
    reject(vg::TraceErrorCause cause, std::string detail) const
    {
        vg::TraceError e;
        e.cause = cause;
        e.line = line;
        e.byteOffset = offset;
        e.detail = std::move(detail);
        throw ProfileAbort{e};
    }

    std::uint64_t
    u64(const std::string &s, const char *what) const
    {
        try {
            std::size_t consumed = 0;
            std::uint64_t v = std::stoull(s, &consumed);
            if (consumed == s.size())
                return v;
        } catch (const std::exception &) {
        }
        reject(vg::TraceErrorCause::BadRecord,
               std::string("bad ") + what + " value '" + s + "'");
    }

    std::int64_t
    i64(const std::string &s, const char *what) const
    {
        try {
            std::size_t consumed = 0;
            std::int64_t v = std::stoll(s, &consumed);
            if (consumed == s.size())
                return v;
        } catch (const std::exception &) {
        }
        reject(vg::TraceErrorCause::BadRecord,
               std::string("bad ") + what + " value '" + s + "'");
    }
};

std::string
sanitize(const std::string &name)
{
    std::string out = name;
    for (char &c : out) {
        if (c == '\t' || c == '\n')
            c = ' ';
    }
    return out;
}

void
writeBounds(std::ostream &os, const char *tag, const BoundsHistogram &h)
{
    os << "breakdown\t" << tag;
    for (std::size_t i = 0; i < h.numBins(); ++i)
        os << '\t' << h.binCount(i);
    os << '\n';
}

} // namespace

void
writeProfile(std::ostream &os, const SigilProfile &profile)
{
    os << "sigil-profile\t1\n";
    os << "program\t" << sanitize(profile.program) << '\n';
    os << "granularity\t" << profile.granularityShift << '\n';
    os << "shadow\t" << profile.shadowPeakBytes << '\t'
       << profile.shadowEvictions << '\n';

    for (const SigilRow &r : profile.rows) {
        const CommAggregates &a = r.agg;
        os << "row\t" << r.ctx << '\t' << r.parent << '\t'
           << sanitize(r.fnName) << '\t' << sanitize(r.displayName) << '\t'
           << sanitize(r.path) << '\t' << a.calls << '\t' << a.iops << '\t'
           << a.flops << '\t' << a.readBytes << '\t' << a.writeBytes
           << '\t' << a.uniqueLocalBytes << '\t' << a.nonuniqueLocalBytes
           << '\t' << a.uniqueInputBytes << '\t' << a.nonuniqueInputBytes
           << '\t' << a.uniqueOutputBytes << '\t'
           << a.nonuniqueOutputBytes << '\t' << a.reusedUnits << '\t'
           << a.reuseReads << '\t' << a.lifetimeSum << '\t'
           << a.uniqueInterThreadBytes << '\t'
           << a.nonuniqueInterThreadBytes << '\n';
        const LinearHistogram &h = a.lifetimeHist;
        if (h.totalCount() > 0) {
            os << "hist\t" << r.ctx << '\t' << h.binWidth() << '\t'
               << h.overflowCount() << '\t' << h.totalValue() << '\t'
               << h.maxValue() << '\t' << h.numBins();
            for (std::size_t i = 0; i < h.numBins(); ++i)
                os << '\t' << h.binCount(i);
            os << '\n';
        }
    }

    for (const CommEdge &e : profile.edges) {
        os << "edge\t" << e.producer << '\t' << e.consumer << '\t'
           << e.uniqueBytes << '\t' << e.nonuniqueBytes << '\n';
    }
    for (const ThreadCommEdge &e : profile.threadEdges) {
        os << "tedge\t" << e.producer << '\t' << e.consumer << '\t'
           << e.uniqueBytes << '\t' << e.nonuniqueBytes << '\n';
    }

    writeBounds(os, "unit", profile.unitReuseBreakdown);
    writeBounds(os, "line", profile.lineReuseBreakdown);
    os << "end\n";
}

void
writeProfileFile(const std::string &path, const SigilProfile &profile)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '%s' for writing", path.c_str());
    writeProfile(os, profile);
    if (!os)
        fatal("I/O error writing '%s'", path.c_str());
}

namespace {

SigilProfile
parseProfile(std::istream &is)
{
    SigilProfile profile;
    std::string line;
    bool saw_header = false;
    bool saw_end = false;
    std::unordered_map<std::string, vg::FunctionId> fn_ids;
    LineCtx at;
    std::uint64_t next_offset = 0;

    while (std::getline(is, line)) {
        ++at.line;
        at.offset = next_offset;
        next_offset += line.size() + 1;
        if (line.empty() || line[0] == '#')
            continue;
        std::vector<std::string> f = splitTabs(line);
        const std::string &tag = f[0];

        if (!saw_header) {
            if (tag != "sigil-profile" || f.size() < 2 || f[1] != "1")
                at.reject(vg::TraceErrorCause::BadMagic,
                          "not a sigil profile header: '" + tag + "'");
            saw_header = true;
            continue;
        }
        if (tag == "program" && f.size() >= 2) {
            profile.program = f[1];
        } else if (tag == "granularity" && f.size() >= 2) {
            profile.granularityShift =
                static_cast<unsigned>(at.u64(f[1], "granularity"));
        } else if (tag == "shadow" && f.size() >= 3) {
            profile.shadowPeakBytes = at.u64(f[1], "shadow peak");
            profile.shadowEvictions = at.u64(f[2], "shadow evictions");
        } else if (tag == "row") {
            if (f.size() < 22)
                at.reject(vg::TraceErrorCause::BadRecord,
                          "short row line (" + std::to_string(f.size()) +
                              " of 22 fields)");
            SigilRow r;
            r.ctx = static_cast<vg::ContextId>(at.i64(f[1], "ctx"));
            r.parent =
                static_cast<vg::ContextId>(at.i64(f[2], "parent"));
            r.fnName = f[3];
            r.displayName = f[4];
            r.path = f[5];
            auto [it, inserted] = fn_ids.try_emplace(
                r.fnName, static_cast<vg::FunctionId>(fn_ids.size()));
            (void)inserted;
            r.fn = it->second;
            CommAggregates &a = r.agg;
            a.calls = at.u64(f[6], "calls");
            a.iops = at.u64(f[7], "iops");
            a.flops = at.u64(f[8], "flops");
            a.readBytes = at.u64(f[9], "readBytes");
            a.writeBytes = at.u64(f[10], "writeBytes");
            a.uniqueLocalBytes = at.u64(f[11], "ul");
            a.nonuniqueLocalBytes = at.u64(f[12], "nul");
            a.uniqueInputBytes = at.u64(f[13], "ui");
            a.nonuniqueInputBytes = at.u64(f[14], "nui");
            a.uniqueOutputBytes = at.u64(f[15], "uo");
            a.nonuniqueOutputBytes = at.u64(f[16], "nuo");
            a.reusedUnits = at.u64(f[17], "reusedUnits");
            a.reuseReads = at.u64(f[18], "reuseReads");
            a.lifetimeSum = at.u64(f[19], "lifetimeSum");
            a.uniqueInterThreadBytes = at.u64(f[20], "uit");
            a.nonuniqueInterThreadBytes = at.u64(f[21], "nit");
            std::size_t idx = static_cast<std::size_t>(r.ctx);
            if (idx >= profile.rows.size())
                profile.rows.resize(idx + 1);
            profile.rows[idx] = std::move(r);
        } else if (tag == "hist") {
            if (f.size() < 7)
                at.reject(vg::TraceErrorCause::BadRecord,
                          "short hist line");
            std::size_t ctx = at.u64(f[1], "hist ctx");
            std::uint64_t width = at.u64(f[2], "hist width");
            std::uint64_t overflow = at.u64(f[3], "hist overflow");
            std::uint64_t sum = at.u64(f[4], "hist sum");
            std::uint64_t max = at.u64(f[5], "hist max");
            std::size_t nbins = at.u64(f[6], "hist nbins");
            if (f.size() != 7 + nbins)
                at.reject(vg::TraceErrorCause::BadRecord,
                          "hist bin count mismatch: header says " +
                              std::to_string(nbins) + ", line has " +
                              std::to_string(f.size() - 7));
            if (width == 0)
                at.reject(vg::TraceErrorCause::BadRecord,
                          "hist bin width 0");
            std::vector<std::uint64_t> bins(nbins);
            for (std::size_t i = 0; i < nbins; ++i)
                bins[i] = at.u64(f[7 + i], "hist bin");
            if (ctx >= profile.rows.size())
                at.reject(vg::TraceErrorCause::BadRecord,
                          "hist for unknown context " +
                              std::to_string(ctx));
            LinearHistogram h(width);
            h.restore(std::move(bins), overflow, sum, max);
            profile.rows[ctx].agg.lifetimeHist = std::move(h);
        } else if (tag == "tedge") {
            if (f.size() < 5)
                at.reject(vg::TraceErrorCause::BadRecord,
                          "short tedge line");
            ThreadCommEdge e;
            e.producer = static_cast<vg::ThreadId>(
                at.u64(f[1], "producer tid"));
            e.consumer = static_cast<vg::ThreadId>(
                at.u64(f[2], "consumer tid"));
            e.uniqueBytes = at.u64(f[3], "unique");
            e.nonuniqueBytes = at.u64(f[4], "nonunique");
            profile.threadEdges.push_back(e);
        } else if (tag == "edge") {
            if (f.size() < 5)
                at.reject(vg::TraceErrorCause::BadRecord,
                          "short edge line");
            CommEdge e;
            e.producer =
                static_cast<vg::ContextId>(at.i64(f[1], "producer"));
            e.consumer =
                static_cast<vg::ContextId>(at.i64(f[2], "consumer"));
            e.uniqueBytes = at.u64(f[3], "unique");
            e.nonuniqueBytes = at.u64(f[4], "nonunique");
            profile.edges.push_back(e);
        } else if (tag == "breakdown") {
            if (f.size() < 2)
                at.reject(vg::TraceErrorCause::BadRecord,
                          "short breakdown line");
            std::vector<std::uint64_t> counts;
            for (std::size_t i = 2; i < f.size(); ++i)
                counts.push_back(at.u64(f[i], "breakdown"));
            if (f[1] == "unit")
                profile.unitReuseBreakdown.restore(counts);
            else if (f[1] == "line")
                profile.lineReuseBreakdown.restore(counts);
            else
                at.reject(vg::TraceErrorCause::BadRecord,
                          "unknown breakdown '" + f[1] + "'");
        } else if (tag == "end") {
            saw_end = true;
            break;
        } else {
            at.reject(vg::TraceErrorCause::UnknownSection,
                      "unknown tag '" + tag + "'");
        }
    }
    if (!saw_header) {
        at.offset = next_offset;
        at.reject(vg::TraceErrorCause::BadMagic, "empty input");
    }
    if (!saw_end) {
        ++at.line;
        at.offset = next_offset;
        at.reject(vg::TraceErrorCause::Truncated,
                  "input ended before 'end'");
    }
    return profile;
}

} // namespace

std::optional<SigilProfile>
tryReadProfile(std::istream &is, vg::TraceError &error)
{
    try {
        return parseProfile(is);
    } catch (const ProfileAbort &abort) {
        error = abort.err;
        return std::nullopt;
    }
}

SigilProfile
readProfile(std::istream &is)
{
    vg::TraceError error;
    std::optional<SigilProfile> profile = tryReadProfile(is, error);
    if (!profile)
        fatal("profile parse: %s", error.message().c_str());
    return *std::move(profile);
}

SigilProfile
readProfileFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open '%s' for reading", path.c_str());
    return readProfile(is);
}

void
writeEvents(std::ostream &os, const EventTrace &events)
{
    os << "sigil-events\t1\n";
    for (const EventRecord &r : events.records) {
        if (r.kind == EventRecord::Kind::Compute) {
            const ComputeEvent &c = r.compute;
            os << "C\t" << c.seq << '\t' << c.predSeq << '\t' << c.ctx
               << '\t' << c.call << '\t' << c.iops << '\t' << c.flops
               << '\t' << c.reads << '\t' << c.writes << '\n';
        } else {
            const XferEvent &x = r.xfer;
            os << "X\t" << x.srcSeq << '\t' << x.dstSeq << '\t' << x.bytes
               << '\n';
        }
    }
    os << "end\n";
}

void
writeEventsFile(const std::string &path, const EventTrace &events)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '%s' for writing", path.c_str());
    writeEvents(os, events);
    if (!os)
        fatal("I/O error writing '%s'", path.c_str());
}

namespace {

EventTrace
parseEvents(std::istream &is)
{
    EventTrace trace;
    std::string line;
    bool saw_header = false;
    bool saw_end = false;
    LineCtx at;
    std::uint64_t next_offset = 0;
    while (std::getline(is, line)) {
        ++at.line;
        at.offset = next_offset;
        next_offset += line.size() + 1;
        if (line.empty() || line[0] == '#')
            continue;
        std::vector<std::string> f = splitTabs(line);
        if (!saw_header) {
            if (f[0] != "sigil-events" || f.size() < 2 || f[1] != "1")
                at.reject(vg::TraceErrorCause::BadMagic,
                          "not a sigil event file header: '" + f[0] +
                              "'");
            saw_header = true;
            continue;
        }
        if (f[0] == "C") {
            if (f.size() < 9)
                at.reject(vg::TraceErrorCause::BadRecord,
                          "short compute line (" +
                              std::to_string(f.size()) +
                              " of 9 fields)");
            ComputeEvent c;
            c.seq = at.u64(f[1], "seq");
            c.predSeq = at.u64(f[2], "predSeq");
            c.ctx = static_cast<vg::ContextId>(at.i64(f[3], "ctx"));
            c.call = at.u64(f[4], "call");
            c.iops = at.u64(f[5], "iops");
            c.flops = at.u64(f[6], "flops");
            c.reads = at.u64(f[7], "reads");
            c.writes = at.u64(f[8], "writes");
            trace.records.push_back(EventRecord::makeCompute(c));
        } else if (f[0] == "X") {
            if (f.size() < 4)
                at.reject(vg::TraceErrorCause::BadRecord,
                          "short xfer line");
            XferEvent x;
            x.srcSeq = at.u64(f[1], "srcSeq");
            x.dstSeq = at.u64(f[2], "dstSeq");
            x.bytes = at.u64(f[3], "bytes");
            trace.records.push_back(EventRecord::makeXfer(x));
        } else if (f[0] == "end") {
            saw_end = true;
            break;
        } else {
            at.reject(vg::TraceErrorCause::UnknownSection,
                      "unknown tag '" + f[0] + "'");
        }
    }
    if (!saw_header) {
        at.offset = next_offset;
        at.reject(vg::TraceErrorCause::BadMagic, "empty input");
    }
    if (!saw_end) {
        ++at.line;
        at.offset = next_offset;
        at.reject(vg::TraceErrorCause::Truncated,
                  "input ended before 'end'");
    }
    return trace;
}

} // namespace

std::optional<EventTrace>
tryReadEvents(std::istream &is, vg::TraceError &error)
{
    try {
        return parseEvents(is);
    } catch (const ProfileAbort &abort) {
        error = abort.err;
        return std::nullopt;
    }
}

EventTrace
readEvents(std::istream &is)
{
    vg::TraceError error;
    std::optional<EventTrace> events = tryReadEvents(is, error);
    if (!events)
        fatal("event parse: %s", error.message().c_str());
    return *std::move(events);
}

EventTrace
readEventsFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open '%s' for reading", path.c_str());
    return readEvents(is);
}

} // namespace sigil::core
