#include "profile_diff.hh"

#include <map>

namespace sigil::core {

namespace {

void
check(ProfileDiff &diff, const std::string &where, const char *field,
      std::uint64_t lhs, std::uint64_t rhs)
{
    if (lhs != rhs)
        diff.mismatches.push_back(ProfileMismatch{where, field, lhs, rhs});
}

} // namespace

std::string
ProfileDiff::describe(std::size_t max_items) const
{
    std::string out;
    std::size_t shown = 0;
    for (const ProfileMismatch &m : mismatches) {
        if (shown++ >= max_items) {
            out += "... (" +
                   std::to_string(mismatches.size() - max_items) +
                   " more)\n";
            break;
        }
        out += m.where + ": " + m.field + " " + std::to_string(m.lhs) +
               " != " + std::to_string(m.rhs) + "\n";
    }
    return out;
}

ProfileDiff
diffProfiles(const SigilProfile &lhs, const SigilProfile &rhs)
{
    ProfileDiff diff;

    // Index rows by context path (context ids may differ in principle).
    std::map<std::string, const SigilRow *> lrows, rrows;
    for (const SigilRow &r : lhs.rows)
        lrows[r.path] = &r;
    for (const SigilRow &r : rhs.rows)
        rrows[r.path] = &r;

    for (const auto &[path, lr] : lrows) {
        auto it = rrows.find(path);
        if (it == rrows.end()) {
            diff.mismatches.push_back(
                ProfileMismatch{path, "missing-in-rhs", 1, 0});
            continue;
        }
        const SigilRow *rr = it->second;
        const CommAggregates &a = lr->agg;
        const CommAggregates &b = rr->agg;
        check(diff, path, "calls", a.calls, b.calls);
        check(diff, path, "iops", a.iops, b.iops);
        check(diff, path, "flops", a.flops, b.flops);
        check(diff, path, "readBytes", a.readBytes, b.readBytes);
        check(diff, path, "writeBytes", a.writeBytes, b.writeBytes);
        check(diff, path, "uniqueLocalBytes", a.uniqueLocalBytes,
              b.uniqueLocalBytes);
        check(diff, path, "nonuniqueLocalBytes", a.nonuniqueLocalBytes,
              b.nonuniqueLocalBytes);
        check(diff, path, "uniqueInputBytes", a.uniqueInputBytes,
              b.uniqueInputBytes);
        check(diff, path, "nonuniqueInputBytes", a.nonuniqueInputBytes,
              b.nonuniqueInputBytes);
        check(diff, path, "uniqueOutputBytes", a.uniqueOutputBytes,
              b.uniqueOutputBytes);
        check(diff, path, "nonuniqueOutputBytes", a.nonuniqueOutputBytes,
              b.nonuniqueOutputBytes);
        check(diff, path, "uniqueInterThreadBytes",
              a.uniqueInterThreadBytes, b.uniqueInterThreadBytes);
        check(diff, path, "nonuniqueInterThreadBytes",
              a.nonuniqueInterThreadBytes, b.nonuniqueInterThreadBytes);
        check(diff, path, "lifetimeHistMass",
              a.lifetimeHist.totalCount(), b.lifetimeHist.totalCount());
    }
    for (const auto &[path, rr] : rrows) {
        (void)rr;
        if (!lrows.count(path)) {
            diff.mismatches.push_back(
                ProfileMismatch{path, "missing-in-lhs", 0, 1});
        }
    }

    // Communication matrix, keyed by producer/consumer paths.
    auto edge_map = [](const SigilProfile &p) {
        std::map<std::pair<std::string, std::string>,
                 std::pair<std::uint64_t, std::uint64_t>>
            out;
        for (const CommEdge &e : p.edges) {
            std::string src = e.producer >= 0
                                  ? p.row(e.producer).path
                                  : std::string("<uninit>");
            std::string dst = p.row(e.consumer).path;
            auto &cell = out[{src, dst}];
            cell.first += e.uniqueBytes;
            cell.second += e.nonuniqueBytes;
        }
        return out;
    };
    auto le = edge_map(lhs);
    auto re = edge_map(rhs);
    for (const auto &[key, lval] : le) {
        auto it = re.find(key);
        std::string where = "edge " + key.first + " -> " + key.second;
        if (it == re.end()) {
            diff.mismatches.push_back(
                ProfileMismatch{where, "missing-in-rhs", lval.first, 0});
            continue;
        }
        check(diff, where, "uniqueBytes", lval.first, it->second.first);
        check(diff, where, "nonuniqueBytes", lval.second,
              it->second.second);
    }
    for (const auto &[key, rval] : re) {
        if (!le.count(key)) {
            diff.mismatches.push_back(ProfileMismatch{
                "edge " + key.first + " -> " + key.second,
                "missing-in-lhs", 0, rval.first});
        }
    }
    return diff;
}

} // namespace sigil::core
