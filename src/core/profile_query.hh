/**
 * @file
 * Canonical textual renderings of profile queries.
 *
 * The profile-query daemon (src/server) answers every query with text
 * produced by these functions, and the daemon's differential tests
 * call the same functions directly on in-process profiles — so "the
 * daemon is correct" reduces to byte equality between two strings
 * rendered by the same code over the same profile. Anything that
 * should be queryable over the wire gets a canonical renderer here;
 * the server adds only transport.
 */

#ifndef SIGIL_CORE_PROFILE_QUERY_HH
#define SIGIL_CORE_PROFILE_QUERY_HH

#include <cstdint>
#include <string>

#include "core/profile.hh"

namespace sigil::core {

/**
 * The full aggregate profile in the release text format — identical
 * bytes to writeProfile() on the same profile.
 */
std::string profileQueryText(const SigilProfile &profile);

/**
 * Every context row whose function name matches fn_name: one line per
 * context (display name, calls, ops, traffic, unique in/out), plus a
 * summed aggregate line. "function not found" message when no row
 * matches — still a successful query, the answer is just empty.
 */
std::string functionQueryText(const SigilProfile &profile,
                              const std::string &fn_name);

/**
 * The producer→consumer communication matrix: one line per edge with
 * both endpoints resolved to display names, unique/non-unique bytes,
 * followed by the cross-thread matrix when present.
 */
std::string edgesQueryText(const SigilProfile &profile);

/**
 * Structural diff of two profiles: the identical/differs verdict line
 * followed by diffProfiles().describe() when they differ.
 */
std::string diffQueryText(const SigilProfile &lhs,
                          const SigilProfile &rhs);

/**
 * The human-facing report pair: flatReport() over the top contexts
 * plus the program-wide commSummary().
 */
std::string summaryQueryText(const SigilProfile &profile,
                             std::size_t top_n = 20);

/**
 * Heap footprint estimate of a resident profile (rows, strings,
 * edges, objects, histograms) — the accounting unit the daemon's
 * governed catalog charges against its memory budget.
 */
std::uint64_t profileMemoryEstimate(const SigilProfile &profile);

} // namespace sigil::core

#endif // SIGIL_CORE_PROFILE_QUERY_HH
