/**
 * @file
 * Structural comparison of two Sigil profiles.
 *
 * The paper's release model rests on profiles being platform
 * independent: "the profiles will remain the same despite the platform
 * that the profile is run on". This module checks that claim
 * mechanically — two profiles of the same program (collected with
 * different cache configurations, tool modes, or on different hosts)
 * must agree on every communication number; profiles of different
 * input scales can be compared field by field to study how
 * communication grows.
 */

#ifndef SIGIL_CORE_PROFILE_DIFF_HH
#define SIGIL_CORE_PROFILE_DIFF_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/profile.hh"

namespace sigil::core {

/** One field mismatch between two profiles. */
struct ProfileMismatch
{
    std::string where; // context path or "edges"/"structure"
    std::string field;
    std::uint64_t lhs = 0;
    std::uint64_t rhs = 0;
};

/** Result of a comparison. */
struct ProfileDiff
{
    std::vector<ProfileMismatch> mismatches;

    bool identical() const { return mismatches.empty(); }

    /** Render the first max_items mismatches, one per line. */
    std::string describe(std::size_t max_items = 10) const;
};

/**
 * Compare the platform-independent content of two profiles: the
 * context tree (by path), per-context communication aggregates, and
 * the communication matrix. Re-use histograms are compared by total
 * mass. Host-side artefacts (shadow peak bytes, eviction counts) are
 * deliberately ignored — those are allowed to differ across platforms.
 */
ProfileDiff diffProfiles(const SigilProfile &lhs, const SigilProfile &rhs);

} // namespace sigil::core

#endif // SIGIL_CORE_PROFILE_DIFF_HH
