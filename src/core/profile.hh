/**
 * @file
 * Snapshot of a Sigil profile: per-context communication aggregates,
 * the producer→consumer communication matrix, and program-wide re-use
 * breakdowns. This is the "aggregate" output representation of the
 * paper; the event-file representation lives in event_trace.hh.
 */

#ifndef SIGIL_CORE_PROFILE_HH
#define SIGIL_CORE_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/comm_stats.hh"
#include "support/histogram.hh"
#include "vg/types.hh"

namespace sigil::core {

/** One context row of a Sigil profile. */
struct SigilRow
{
    vg::ContextId ctx = vg::kInvalidContext;
    vg::ContextId parent = vg::kInvalidContext;
    vg::FunctionId fn = vg::kInvalidFunction;
    std::string fnName;
    std::string displayName;
    std::string path;
    CommAggregates agg;
};

/** A complete aggregate profile. */
struct SigilProfile
{
    std::string program;

    /** log2 of the shadowed unit (0 = byte mode, 6 = 64B lines). */
    unsigned granularityShift = 0;

    /** Rows indexed by context id. */
    std::vector<SigilRow> rows;

    /** Producer→consumer unique/non-unique byte matrix (no self edges). */
    std::vector<CommEdge> edges;

    /**
     * Cross-thread communication matrix (empty for single-threaded
     * guests): bytes produced on one thread and consumed on another.
     */
    std::vector<ThreadCommEdge> threadEdges;

    /**
     * Per-data-structure traffic (populated when collectObjects is
     * set): row 0 is the "<other>" bucket (scratch stack, allocator
     * headers), followed by one row per tagged heap allocation in
     * allocation order.
     */
    struct ObjectRow
    {
        std::string tag;
        vg::Addr base = 0;
        std::uint64_t size = 0;
        std::uint64_t readBytes = 0;
        std::uint64_t writeBytes = 0;
        std::uint64_t uniqueReadBytes = 0;
    };
    std::vector<ObjectRow> objects;

    /**
     * Figure 8: per (unit, consuming call) re-use-count samples with
     * bins {0, 1-9, >9}.
     */
    BoundsHistogram unitReuseBreakdown{std::vector<std::uint64_t>{0, 9}};

    /**
     * Figure 12 (line mode): per-unit total re-use counts with bins
     * {<10, <100, <1000, <10000, >=10000}.
     */
    BoundsHistogram lineReuseBreakdown{
        std::vector<std::uint64_t>{9, 99, 999, 9999}};

    /** Peak shadow-memory bytes the profiler held. */
    std::uint64_t shadowPeakBytes = 0;

    /** Shadow chunks evicted by the FIFO memory limiter. */
    std::uint64_t shadowEvictions = 0;

    /** Sum over rows of unique input bytes. */
    std::uint64_t totalUniqueInputBytes() const;

    /** Sum over rows of unique local bytes. */
    std::uint64_t totalUniqueLocalBytes() const;

    /** Sum over rows of all read bytes. */
    std::uint64_t totalReadBytes() const;

    /** Row for a context id; panics if out of range. */
    const SigilRow &row(vg::ContextId ctx) const;

    /** First row whose display name matches, or nullptr. */
    const SigilRow *findByDisplayName(const std::string &name) const;

    /** All rows whose function name matches (multiple contexts). */
    std::vector<const SigilRow *>
    findByFunction(const std::string &fn_name) const;
};

} // namespace sigil::core

#endif // SIGIL_CORE_PROFILE_HH
