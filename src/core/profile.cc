#include "profile.hh"

#include "support/logging.hh"

namespace sigil::core {

std::uint64_t
SigilProfile::totalUniqueInputBytes() const
{
    std::uint64_t total = 0;
    for (const SigilRow &r : rows)
        total += r.agg.uniqueInputBytes;
    return total;
}

std::uint64_t
SigilProfile::totalUniqueLocalBytes() const
{
    std::uint64_t total = 0;
    for (const SigilRow &r : rows)
        total += r.agg.uniqueLocalBytes;
    return total;
}

std::uint64_t
SigilProfile::totalReadBytes() const
{
    std::uint64_t total = 0;
    for (const SigilRow &r : rows)
        total += r.agg.readBytes;
    return total;
}

const SigilRow &
SigilProfile::row(vg::ContextId ctx) const
{
    if (ctx < 0 || static_cast<std::size_t>(ctx) >= rows.size())
        panic("SigilProfile::row: bad context %d", ctx);
    return rows[static_cast<std::size_t>(ctx)];
}

const SigilRow *
SigilProfile::findByDisplayName(const std::string &name) const
{
    for (const SigilRow &r : rows) {
        if (r.displayName == name)
            return &r;
    }
    return nullptr;
}

std::vector<const SigilRow *>
SigilProfile::findByFunction(const std::string &fn_name) const
{
    std::vector<const SigilRow *> out;
    for (const SigilRow &r : rows) {
        if (r.fnName == fn_name)
            out.push_back(&r);
    }
    return out;
}

} // namespace sigil::core
