/**
 * @file
 * Address-sharded parallel analysis engine.
 *
 * Partitions the shadowed address space over N workers by chunk index
 * (shard = index & (N-1)): each worker owns a private ShadowMemory and
 * a private partial CommTables, so the per-unit classification kernels
 * run completely lock-free. The sequencer (the thread driving guest
 * events) splits every access into chunk-clamped pieces, stamps each
 * with the ambient calling context and a monotonic epoch, and routes
 * it to the owning worker's SPSC queue; non-memory events never leave
 * the sequencer.
 *
 * Determinism invariants:
 *  - Piece splitting at chunk boundaries preserves the serial per-unit
 *    byte widths (a unit never spans chunks, so clamping an access to
 *    its chunk cannot change any unit's covered width).
 *  - The sequencer's ChunkLruPlanner re-enacts the serial
 *    ShadowMemory recency/eviction automaton (including its one-entry
 *    lookup cache) over chunk indices, so the *global* eviction
 *    sequence is identical to serial; victims are evicted in the
 *    owning shard via explicit queue commands, FIFO-ordered after
 *    every earlier access to that chunk.
 *  - Workers never evict on their own (their shadows are unbounded)
 *    and never consult failure injectors; shadow statistics come from
 *    the planner, which is exact (peak-of-sum, not sum-of-peaks).
 *
 * The merge back into the serial tables lives in SigilProfiler
 * (foldShards); this class only owns the routing and the workers.
 */

#ifndef SIGIL_CORE_SHARD_ENGINE_HH
#define SIGIL_CORE_SHARD_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/comm_tables.hh"
#include "shadow/shadow_memory.hh"
#include "support/mem_governor.hh"
#include "vg/shard_queue.hh"

namespace sigil {
class Watchdog;
}

namespace sigil::core {

struct SigilConfig;

/**
 * Sequencer-side mirror of ShadowMemory's chunk recency automaton.
 *
 * Replays exactly the decisions ShadowMemory::chunkFor would make over
 * the same chunk-touch sequence: a one-entry cache hit does no recency
 * work, a miss on a resident chunk moves it to the back, and a miss on
 * an absent chunk evicts the front when the limit is reached (one
 * eviction per allocation, like the serial path). It is the single
 * authority for eviction decisions and for the ShadowStats of a
 * sharded run.
 */
class ChunkLruPlanner
{
  public:
    static constexpr std::uint64_t kNone = ~std::uint64_t{0};

    explicit ChunkLruPlanner(std::size_t max_chunks)
        : maxChunks_(max_chunks)
    {}

    /**
     * Record a touch of a chunk, allocating it if absent. want_cold
     * mirrors the serial lookup's lazy cold-array materialization:
     * the planner tracks which chunks hold a cold array (and accounts
     * its bytes) so a sharded run's ShadowStats — including the byte
     * peak a profile embeds — is bit-identical to the serial run's.
     * Every chunk index evicted to make room — at most one for the
     * chunk limit, any number for the memory budget — is appended to
     * `victims` in eviction order.
     */
    void
    touch(std::uint64_t index, bool want_cold,
          std::vector<std::uint64_t> &victims)
    {
        if (lastEntry_ != nullptr && index == lastIndex_) {
            // Cache hit: no recency work, but the serial lookup still
            // materializes the cold array on demand.
            if (want_cold && !lastEntry_->cold)
                materializeColdGoverned(index, *lastEntry_, victims);
            return;
        }
        auto it = map_.find(index);
        if (it == map_.end()) {
            if (maxChunks_ != 0 && map_.size() >= maxChunks_)
                victims.push_back(evictFront());
            // Same budget loop as the serial ShadowMemory::chunkFor,
            // replayed here so the global eviction sequence of a
            // governed sharded run matches the governed serial run.
            if (governor_ != nullptr) {
                while (!map_.empty() &&
                       governor_->overBudget(
                           shadow::ShadowMemory::chunkHotBytes())) {
                    victims.push_back(evictFront());
                }
            }
            lru_.push_back(index);
            it = map_.emplace(index,
                              Entry{std::prev(lru_.end()), false})
                     .first;
            ++stats_.chunksAllocated;
            stats_.chunksLive = map_.size();
            if (stats_.chunksLive > stats_.chunksPeak)
                stats_.chunksPeak = stats_.chunksLive;
            bytesAdd(shadow::ShadowMemory::chunkHotBytes());
        } else if (it->second.pos != std::prev(lru_.end())) {
            lru_.splice(lru_.end(), lru_, it->second.pos);
        }
        if (want_cold && !it->second.cold)
            materializeColdGoverned(index, it->second, victims);
        lastIndex_ = index;
        lastEntry_ = &it->second;
    }

    /**
     * touch() for checkpoint restore: never evicts (the saved chunk
     * set already respects the limit). Statistics churn is overwritten
     * by restoreStats() afterwards, as in the serial restore.
     */
    void
    restoreTouch(std::uint64_t index, bool has_cold)
    {
        if (lastEntry_ != nullptr && index == lastIndex_) {
            if (has_cold && !lastEntry_->cold)
                materializeCold(*lastEntry_);
            return;
        }
        auto it = map_.find(index);
        if (it == map_.end()) {
            lru_.push_back(index);
            it = map_.emplace(index,
                              Entry{std::prev(lru_.end()), false})
                     .first;
            ++stats_.chunksAllocated;
            stats_.chunksLive = map_.size();
            if (stats_.chunksLive > stats_.chunksPeak)
                stats_.chunksPeak = stats_.chunksLive;
            bytesAdd(shadow::ShadowMemory::chunkHotBytes());
        } else if (it->second.pos != std::prev(lru_.end())) {
            lru_.splice(lru_.end(), lru_, it->second.pos);
        }
        if (has_cold && !it->second.cold)
            materializeCold(it->second);
        lastIndex_ = index;
        lastEntry_ = &it->second;
    }

    const shadow::ShadowStats &stats() const { return stats_; }

    /** @name Mirror stamp table
     *
     * The sequencer interns every access's identity tuple here, in
     * serial order, before routing it — so the mirror's table growth
     * (hence its byte accounting, hence the profile's byte peak)
     * matches the table a serial run would build. The per-shard local
     * tables workers use for kernel execution are deliberately NOT
     * accounted: they duplicate the mirror's content and are a cost of
     * sharding, not of the analysis being modeled.
     */
    /// @{
    shadow::StampId
    internWriter(const shadow::WriterStamp &s)
    {
        std::uint64_t before = stamps_.bytes();
        shadow::StampId id = stamps_.internWriter(s);
        if (std::uint64_t after = stamps_.bytes(); after != before)
            bytesAdd(after - before);
        return id;
    }

    shadow::StampId
    internReader(const shadow::ReaderStamp &s)
    {
        std::uint64_t before = stamps_.bytes();
        shadow::StampId id = stamps_.internReader(s);
        if (std::uint64_t after = stamps_.bytes(); after != before)
            bytesAdd(after - before);
        return id;
    }

    shadow::StampTable &stamps() { return stamps_; }
    const shadow::StampTable &stamps() const { return stamps_; }
    /// @}

    /**
     * Overwrite statistics (checkpoint restore). Live chunk and cold
     * array counts and the live byte figure are re-derived from the
     * planner's own state, clamping the peak up like the serial
     * restore.
     */
    void
    restoreStats(const shadow::ShadowStats &stats)
    {
        std::uint64_t charged = stats_.bytesLive;
        stats_ = stats;
        stats_.chunksLive = map_.size();
        stats_.coldArraysLive = 0;
        std::uint64_t live = stamps_.bytes();
        for (const auto &[index, entry] : map_) {
            live += shadow::ShadowMemory::chunkHotBytes();
            if (entry.cold) {
                live += shadow::ShadowMemory::chunkColdBytes();
                ++stats_.coldArraysLive;
            }
        }
        stats_.bytesLive = live;
        if (stats_.bytesPeak < stats_.bytesLive)
            stats_.bytesPeak = stats_.bytesLive;
        if (governor_ != nullptr) {
            // Restore interns stamps directly into the mirror table
            // (bypassing the delta-charging wrappers), so resync the
            // governor's lane with the recomputed live figure.
            governor_->release(sigil::MemCategory::Shadow,
                               static_cast<std::size_t>(charged));
            governor_->charge(
                sigil::MemCategory::Shadow,
                static_cast<std::size_t>(stats_.bytesLive));
        }
    }

    /**
     * Visit live chunks as (index, has_cold), least recently touched
     * first.
     */
    template <typename Fn>
    void
    forEachChunk(Fn &&fn) const
    {
        for (std::uint64_t index : lru_)
            fn(index, map_.find(index)->second.cold);
    }

    std::size_t liveChunks() const { return map_.size(); }

    /**
     * Attach the memory governor. The planner — not the per-shard
     * shadows, which are unbounded mirrors — is the accounting
     * authority of a sharded run, so its byte ledger is the one
     * reflected into the governor's Shadow lane, and its touch()
     * evicts for the budget exactly like the governed serial shadow.
     */
    void
    setGovernor(sigil::MemoryGovernor *governor)
    {
        if (governor_ == governor)
            return;
        if (governor_ != nullptr)
            governor_->release(
                sigil::MemCategory::Shadow,
                static_cast<std::size_t>(stats_.bytesLive));
        governor_ = governor;
        if (governor_ != nullptr && stats_.bytesLive != 0)
            governor_->charge(
                sigil::MemCategory::Shadow,
                static_cast<std::size_t>(stats_.bytesLive));
    }

  private:
    struct Entry
    {
        std::list<std::uint64_t>::iterator pos;
        /** Chunk holds a (mirrored) cold array. */
        bool cold;
    };

    void
    bytesAdd(std::uint64_t n)
    {
        stats_.bytesLive += n;
        if (stats_.bytesLive > stats_.bytesPeak)
            stats_.bytesPeak = stats_.bytesLive;
        if (governor_ != nullptr)
            governor_->charge(sigil::MemCategory::Shadow,
                              static_cast<std::size_t>(n));
    }

    void
    bytesSub(std::uint64_t n)
    {
        stats_.bytesLive -= n;
        if (governor_ != nullptr)
            governor_->release(sigil::MemCategory::Shadow,
                               static_cast<std::size_t>(n));
    }

    /** Evict the least recently touched chunk, returning its index. */
    std::uint64_t
    evictFront()
    {
        std::uint64_t victim = lru_.front();
        auto vit = map_.find(victim);
        bytesSub(shadow::ShadowMemory::chunkHotBytes());
        if (vit->second.cold) {
            bytesSub(shadow::ShadowMemory::chunkColdBytes());
            --stats_.coldArraysLive;
        }
        // Mirror the serial lookup-cache invalidation on eviction.
        if (lastEntry_ == &vit->second) {
            lastEntry_ = nullptr;
            lastIndex_ = kNone;
        }
        map_.erase(vit);
        lru_.pop_front();
        ++stats_.evictions;
        stats_.chunksLive = map_.size();
        return victim;
    }

    void
    materializeCold(Entry &entry)
    {
        entry.cold = true;
        ++stats_.coldArraysLive;
        bytesAdd(shadow::ShadowMemory::chunkColdBytes());
    }

    /**
     * materializeCold with the serial shadow's budget loop: make room
     * for the cold array, but never by evicting the chunk gaining it.
     */
    void
    materializeColdGoverned(std::uint64_t index, Entry &entry,
                            std::vector<std::uint64_t> &victims)
    {
        if (governor_ != nullptr) {
            while (map_.size() > 1 && lru_.front() != index &&
                   governor_->overBudget(
                       shadow::ShadowMemory::chunkColdBytes())) {
                victims.push_back(evictFront());
            }
        }
        materializeCold(entry);
    }

    std::size_t maxChunks_;
    std::list<std::uint64_t> lru_;
    std::unordered_map<std::uint64_t, Entry> map_;
    /** Mirror of ShadowMemory's one-entry lookup cache. */
    std::uint64_t lastIndex_ = kNone;
    Entry *lastEntry_ = nullptr;
    sigil::MemoryGovernor *governor_ = nullptr;
    shadow::StampTable stamps_;
    shadow::ShadowStats stats_;
};

/** The shard workers plus the sequencer-side routing state. */
class ShardEngine
{
  public:
    /**
     * watchdog (optional) monitors each shard worker for stalls;
     * governor (optional) accounts the fixed queue footprint under
     * ShardQueues and drives the planner's budget evictions. Both are
     * shared handles: the engine's destructor releases charges and
     * unregisters heartbeats, so they must stay alive even when the
     * owning profiler outlives the guest that created them.
     */
    ShardEngine(const SigilConfig &config, unsigned shard_count,
                std::size_t queue_capacity,
                std::shared_ptr<sigil::Watchdog> watchdog = nullptr,
                std::shared_ptr<sigil::MemoryGovernor> governor = nullptr);
    ~ShardEngine();

    ShardEngine(const ShardEngine &) = delete;
    ShardEngine &operator=(const ShardEngine &) = delete;

    unsigned
    shardCount() const
    {
        return static_cast<unsigned>(shards_.size());
    }

    unsigned
    shardOf(std::uint64_t chunk_index) const
    {
        return static_cast<unsigned>(chunk_index &
                                     (shards_.size() - 1));
    }

    /**
     * Split an access into chunk-clamped pieces and enqueue each to
     * its owning shard, running the eviction planner along the way.
     * stamp.epoch is overwritten with fresh epochs per piece.
     */
    void routeAccess(bool is_write, vg::Addr addr, unsigned size,
                     AccessStamp stamp);

    /** Block until every routed record has been processed. */
    void drain();

    CommTables &tables(unsigned shard);
    shadow::ShadowMemory &shadowOf(unsigned shard);

    ChunkLruPlanner &planner() { return planner_; }
    const ChunkLruPlanner &planner() const { return planner_; }

    /**
     * Checkpoint restore: materialize one unit in its owning shard
     * (planner recency and cold-array mirror updated to match).
     * Workers must be idle.
     */
    shadow::ShadowRef restoreUnit(std::uint64_t unit, bool has_cold);

    /**
     * Checkpoint restore: intern an identity tuple into the LOCAL
     * stamp table of the shard owning a unit, returning the local id
     * to store in that unit's hot record. (The sequencer's mirror
     * table is maintained separately by the caller.) Workers must be
     * idle.
     */
    shadow::StampId internWriterFor(std::uint64_t unit,
                                    const shadow::WriterStamp &s);
    shadow::StampId internReaderFor(std::uint64_t unit,
                                    const shadow::ReaderStamp &s);

  private:
    struct Shard;

    void workerLoop(Shard &shard);
    void process(Shard &shard, const vg::ShardRecord &record);

    const SigilConfig &config_;
    /**
     * Fidelity flags in sharded mode: fixed for the lifetime of the
     * run (degradation requires the serial engine's failure-injection
     * path, which sharding does not support). ClassifyEnv binds these
     * by reference.
     */
    bool reuseEnabled_;
    bool classifyEnabled_ = true;

    ChunkLruPlanner planner_;
    std::uint64_t nextEpoch_ = 1;
    std::shared_ptr<sigil::Watchdog> watchdog_;
    std::shared_ptr<sigil::MemoryGovernor> governor_;
    /** ShardQueues bytes charged at construction, released at teardown. */
    std::size_t queueBytesCharged_ = 0;
    /** Scratch victim list reused across routeAccess calls. */
    std::vector<std::uint64_t> victimScratch_;
    std::vector<std::unique_ptr<Shard>> shards_;
};

} // namespace sigil::core

#endif // SIGIL_CORE_SHARD_ENGINE_HH
