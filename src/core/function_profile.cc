#include "function_profile.hh"

#include <algorithm>
#include <map>

namespace sigil::core {

const FunctionRow *
FunctionProfile::find(const std::string &fn_name) const
{
    for (const FunctionRow &row : rows) {
        if (row.fnName == fn_name)
            return &row;
    }
    return nullptr;
}

std::vector<const FunctionRow *>
FunctionProfile::topBy(
    std::size_t n,
    const std::function<std::uint64_t(const FunctionRow &)> &metric) const
{
    std::vector<const FunctionRow *> out;
    out.reserve(rows.size());
    for (const FunctionRow &row : rows)
        out.push_back(&row);
    std::sort(out.begin(), out.end(),
              [&](const FunctionRow *a, const FunctionRow *b) {
                  std::uint64_t ma = metric(*a);
                  std::uint64_t mb = metric(*b);
                  if (ma != mb)
                      return ma > mb;
                  return a->fnName < b->fnName;
              });
    if (out.size() > n)
        out.resize(n);
    return out;
}

FunctionProfile
collapseByFunction(const SigilProfile &profile)
{
    FunctionProfile out;
    out.program = profile.program;
    std::map<std::string, std::size_t> index;
    for (const SigilRow &row : profile.rows) {
        auto [it, inserted] =
            index.try_emplace(row.fnName, out.rows.size());
        if (inserted) {
            FunctionRow fr;
            fr.fnName = row.fnName;
            out.rows.push_back(std::move(fr));
        }
        FunctionRow &fr = out.rows[it->second];
        ++fr.numContexts;
        CommAggregates &a = fr.agg;
        const CommAggregates &b = row.agg;
        a.calls += b.calls;
        a.iops += b.iops;
        a.flops += b.flops;
        a.readBytes += b.readBytes;
        a.writeBytes += b.writeBytes;
        a.uniqueLocalBytes += b.uniqueLocalBytes;
        a.nonuniqueLocalBytes += b.nonuniqueLocalBytes;
        a.uniqueInputBytes += b.uniqueInputBytes;
        a.nonuniqueInputBytes += b.nonuniqueInputBytes;
        a.uniqueOutputBytes += b.uniqueOutputBytes;
        a.nonuniqueOutputBytes += b.nonuniqueOutputBytes;
        a.reusedUnits += b.reusedUnits;
        a.reuseReads += b.reuseReads;
        a.lifetimeSum += b.lifetimeSum;
        a.lifetimeHist.merge(b.lifetimeHist);
    }
    return out;
}

} // namespace sigil::core
