/**
 * @file
 * Shared communication-classification tables and kernels.
 *
 * The paper's per-byte classification (local vs. input/output, unique
 * vs. non-unique, re-use runs) is needed by two engines: the serial
 * SigilProfiler and the address-sharded parallel engine, where every
 * shard worker maintains a private partial table that is later merged.
 * Keeping one implementation of the per-unit kernels — commReadUnit /
 * commWriteUnit / commFinalizeRun operating on a CommTables — is what
 * makes "sharded output is bit-identical to serial" true by
 * construction rather than by parallel maintenance of two copies.
 *
 * All quantities in a CommTables are unsigned-integer sums or
 * histogram counts, so merging shard partials by addition reproduces
 * the serial totals exactly. Edge *order* is the one observable that
 * addition cannot recover; edges therefore carry the global epoch of
 * their first occurrence, and the merge re-sorts by (epoch, local
 * insertion index) to reproduce the serial first-seen order.
 */

#ifndef SIGIL_CORE_COMM_TABLES_HH
#define SIGIL_CORE_COMM_TABLES_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/comm_stats.hh"
#include "shadow/shadow_memory.hh"
#include "vg/types.hh"

namespace sigil::core {

/** A communication edge plus its first-occurrence position. */
struct OrderedCommEdge
{
    CommEdge edge;
    /** Global access epoch at which the edge was first created. */
    std::uint64_t firstEpoch = 0;
};

/** A thread edge plus its first-occurrence position. */
struct OrderedThreadEdge
{
    ThreadCommEdge edge;
    std::uint64_t firstEpoch = 0;
};

/** Per-allocation traffic; slot 0 is the "other" bucket. */
struct ObjectTraffic
{
    std::uint64_t readBytes = 0;
    std::uint64_t writeBytes = 0;
    std::uint64_t uniqueReadBytes = 0;
};

/**
 * Ambient state of one memory-access piece, captured by the sequencer
 * at event time. Shard workers classify against this stamp instead of
 * live guest state, which is how classification stays epoch-exact
 * while memory events execute out of band.
 */
struct AccessStamp
{
    vg::ContextId ctx = vg::kInvalidContext;
    vg::CallNum call = 0;
    vg::Tick tick = 0;
    vg::ThreadId tid = 0;
    /** Open event-trace segment receiving the access (0 = none). */
    std::uint64_t segSeq = 0;
    /** Position of the piece in the global access stream. */
    std::uint64_t epoch = 0;
    /** Allocation receiving unique-read attribution (-1 = none). */
    std::int32_t allocIdx = -1;
    /** ROI collection flag at the time of the access. */
    bool collecting = true;
};

/**
 * Collection environment of the read kernel. The fidelity flags are
 * *references*: in the serial engine a failure-injected chunk
 * allocation can degrade fidelity in the middle of a multi-unit span,
 * and the kernel must observe the flip on the very next unit, exactly
 * as the pre-refactor member functions did.
 */
struct ClassifyEnv
{
    const bool &reuseEnabled;
    const bool &classifyEnabled;
    bool collectEvents = false;
    unsigned granularityShift = 0;
};

/**
 * One set of communication tables: either the serial profiler's single
 * authoritative copy, or a shard worker's partial awaiting the merge.
 */
struct CommTables
{
    std::vector<CommAggregates> rows;

    /** (producer<<32|consumer) → edge index, no self edges. */
    std::unordered_map<std::uint64_t, std::size_t> edgeIndex;
    std::vector<OrderedCommEdge> edges;

    /** (producerTid<<32|consumerTid) → thread-edge index. */
    std::unordered_map<std::uint64_t, std::size_t> threadEdgeIndex;
    std::vector<OrderedThreadEdge> threadEdges;

    BoundsHistogram unitReuseBreakdown{std::vector<std::uint64_t>{0, 9}};
    BoundsHistogram lineReuseBreakdown{
        std::vector<std::uint64_t>{9, 99, 999, 9999}};

    std::vector<ObjectTraffic> objectStats;

    /**
     * Shard partials only: per consuming segment, producer segment →
     * unique bytes. The serial engine accumulates directly into the
     * open segment's map instead; at the fold these merge into the
     * matching pending segment records.
     */
    std::unordered_map<std::uint64_t,
                       std::unordered_map<std::uint64_t, std::uint64_t>>
        segXfers;

    CommAggregates &
    row(vg::ContextId ctx)
    {
        std::size_t idx = static_cast<std::size_t>(ctx);
        if (idx >= rows.size())
            rows.resize(idx + 1);
        return rows[idx];
    }

    /** Grow-and-fetch the stats slot of allocation index (-1 = other). */
    ObjectTraffic &
    objectSlot(std::int32_t alloc_index)
    {
        std::size_t slot = static_cast<std::size_t>(alloc_index + 1);
        if (slot >= objectStats.size())
            objectStats.resize(slot + 1);
        return objectStats[slot];
    }

    static std::uint64_t
    edgeKey(vg::ContextId producer, vg::ContextId consumer)
    {
        return (static_cast<std::uint64_t>(
                    static_cast<std::uint32_t>(producer))
                << 32) |
               static_cast<std::uint32_t>(consumer);
    }

    static std::uint64_t
    threadEdgeKey(vg::ThreadId producer, vg::ThreadId consumer)
    {
        return (static_cast<std::uint64_t>(producer) << 32) | consumer;
    }
};

/** Add every counter of src into dst (histograms merge). */
inline void
mergeAggregates(CommAggregates &dst, const CommAggregates &src)
{
    dst.calls += src.calls;
    dst.iops += src.iops;
    dst.flops += src.flops;
    dst.readBytes += src.readBytes;
    dst.writeBytes += src.writeBytes;
    dst.uniqueLocalBytes += src.uniqueLocalBytes;
    dst.nonuniqueLocalBytes += src.nonuniqueLocalBytes;
    dst.uniqueInputBytes += src.uniqueInputBytes;
    dst.nonuniqueInputBytes += src.nonuniqueInputBytes;
    dst.uniqueOutputBytes += src.uniqueOutputBytes;
    dst.nonuniqueOutputBytes += src.nonuniqueOutputBytes;
    dst.uniqueInterThreadBytes += src.uniqueInterThreadBytes;
    dst.nonuniqueInterThreadBytes += src.nonuniqueInterThreadBytes;
    dst.reusedUnits += src.reusedUnits;
    dst.reuseReads += src.reuseReads;
    dst.lifetimeSum += src.lifetimeSum;
    dst.lifetimeHist.merge(src.lifetimeHist);
}

/**
 * Close the pending re-use run of a shadow object, folding its
 * lifetime into the last reader's statistics and its read count into
 * the program-wide breakdown. A pending run can only exist on a unit
 * whose chunk has a cold array, so a null cold is a no-op.
 */
inline void
commFinalizeRun(CommTables &t, const bool &reuse_enabled,
                const shadow::StampTable &st, shadow::ShadowHot &hot,
                shadow::ShadowCold *cold)
{
    if (!reuse_enabled || cold == nullptr)
        return;
    if (hot.reader == 0 || cold->runReads == 0)
        return;
    const shadow::ReaderStamp &rd = st.reader(hot.reader);
    if (rd.ctx == vg::kInvalidContext)
        return;
    std::uint64_t reuse = cold->runReads - 1;
    t.unitReuseBreakdown.add(reuse);
    if (reuse >= 1) {
        CommAggregates &r = t.row(rd.ctx);
        ++r.reusedUnits;
        r.reuseReads += reuse;
        std::uint64_t lifetime = cold->runLastRead - cold->runFirstRead;
        r.lifetimeSum += lifetime;
        r.lifetimeHist.add(lifetime);
    }
    cold->runReads = 0;
}

/**
 * Record one write into a unit's shadow state. writer_id is the
 * access's producer identity, interned once per access into the
 * owning shadow's stamp table.
 */
inline void
commWriteUnit(CommTables &t, const bool &reuse_enabled,
              const shadow::StampTable &st, shadow::ShadowHot &hot,
              shadow::ShadowCold *cold, shadow::StampId writer_id)
{
    if (reuse_enabled)
        commFinalizeRun(t, reuse_enabled, st, hot, cold);
    hot.writer = writer_id;
    hot.reader = 0;
}

/**
 * Classify one read of w bytes against a unit's shadow state and
 * update that state. reader_id is the access's consumer identity
 * (a.call, a.ctx), interned once per access. cold may be null when the
 * access does not need the cold record (the caller materializes it
 * exactly when re-use or line mode will touch it). seg_xfers
 * (nullable) receives producer-segment → unique-byte transfers;
 * unique_bytes_this_access accumulates for per-object attribution.
 */
inline void
commReadUnit(CommTables &t, const ClassifyEnv &env,
             const shadow::StampTable &st, shadow::ShadowHot &s,
             shadow::ShadowCold *c, std::uint64_t w,
             const AccessStamp &a, shadow::StampId reader_id,
             std::unordered_map<std::uint64_t, std::uint64_t> *seg_xfers,
             std::uint64_t &unique_bytes_this_access)
{
    const shadow::WriterStamp &wr = st.writer(s.writer);
    const bool ever_written = wr.ctx != vg::kInvalidContext;
    vg::ContextId producer = ever_written ? wr.ctx : kUninitProducer;
    bool unique = st.reader(s.reader).ctx != a.ctx;
    bool local = producer == a.ctx;

    if (!a.collecting) {
        // Outside the ROI: maintain shadow state only. Clear any
        // pending run so pre-ROI reads never leak into ROI stats.
        if (c != nullptr)
            c->runReads = 0;
        s.reader = reader_id;
        return;
    }

    if (!env.classifyEnabled) {
        // Degradation level 2: raw byte totals continue, but per-class
        // aggregation stops. Reader identity is still maintained so a
        // later analysis of the shadow state remains coherent.
        s.reader = reader_id;
        return;
    }

    if (unique)
        unique_bytes_this_access += w;
    if (local) {
        // row() may grow rows, so the reader row is re-fetched after
        // any call that can resize it rather than cached across them.
        CommAggregates &reader = t.row(a.ctx);
        if (unique)
            reader.uniqueLocalBytes += w;
        else
            reader.nonuniqueLocalBytes += w;
    } else {
        CommAggregates &reader = t.row(a.ctx);
        if (unique)
            reader.uniqueInputBytes += w;
        else
            reader.nonuniqueInputBytes += w;
        if (producer >= 0) {
            CommAggregates &prod = t.row(producer);
            if (unique)
                prod.uniqueOutputBytes += w;
            else
                prod.nonuniqueOutputBytes += w;
        }
        std::uint64_t key = CommTables::edgeKey(producer, a.ctx);
        auto [it, inserted] =
            t.edgeIndex.try_emplace(key, t.edges.size());
        if (inserted) {
            t.edges.push_back(
                OrderedCommEdge{CommEdge{producer, a.ctx, 0, 0},
                                a.epoch});
        }
        CommEdge &edge = t.edges[it->second].edge;
        if (unique)
            edge.uniqueBytes += w;
        else
            edge.nonuniqueBytes += w;
    }

    // Cross-thread communication: producer ran on another thread.
    // Orthogonal to the local/input axis — two threads executing the
    // same function still communicate through memory.
    if (ever_written && wr.thread != a.tid) {
        CommAggregates &reader = t.row(a.ctx);
        if (unique)
            reader.uniqueInterThreadBytes += w;
        else
            reader.nonuniqueInterThreadBytes += w;
        std::uint64_t tkey = CommTables::threadEdgeKey(wr.thread, a.tid);
        auto [tit, tin] =
            t.threadEdgeIndex.try_emplace(tkey, t.threadEdges.size());
        if (tin) {
            t.threadEdges.push_back(OrderedThreadEdge{
                ThreadCommEdge{wr.thread, a.tid, 0, 0}, a.epoch});
        }
        ThreadCommEdge &tedge = t.threadEdges[tit->second].edge;
        if (unique)
            tedge.uniqueBytes += w;
        else
            tedge.nonuniqueBytes += w;
    }

    if (env.collectEvents && unique && ever_written && a.segSeq != 0 &&
        wr.seq != a.segSeq) {
        (*seg_xfers)[wr.seq] += w;
    }

    if (env.reuseEnabled) {
        // Stamp interning is injective, so id equality is exactly the
        // old (reader ctx, reader call) pair comparison. Re-use mode
        // always resolves with want_cold, so c is non-null here.
        if (s.reader == reader_id) {
            ++c->runReads;
            c->runLastRead = a.tick;
        } else {
            commFinalizeRun(t, env.reuseEnabled, st, s, c);
            c->runReads = 1;
            c->runFirstRead = a.tick;
            c->runLastRead = a.tick;
        }
    }

    // Per-unit access totals only feed the line-granularity re-use
    // breakdown, so byte-mode reads skip the cold record entirely
    // unless they are tracking a re-use run.
    if (env.granularityShift > 0)
        ++c->totalAccesses;
    s.reader = reader_id;
}

} // namespace sigil::core

#endif // SIGIL_CORE_COMM_TABLES_HH
