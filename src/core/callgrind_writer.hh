/**
 * @file
 * Callgrind-format profile export.
 *
 * The original Sigil extends Callgrind and inherits its output format,
 * so existing tooling (callgrind_annotate, KCachegrind) can browse the
 * combined profile. This writer emits that format from our profiles:
 * the standard cost events plus Sigil's communication events as extra
 * counters (unique/non-unique input, output, and local bytes) attached
 * to every function, with the calltree expressed through cfn/calls
 * records.
 */

#ifndef SIGIL_CORE_CALLGRIND_WRITER_HH
#define SIGIL_CORE_CALLGRIND_WRITER_HH

#include <iosfwd>
#include <string>

#include "cg/cg_profile.hh"
#include "core/profile.hh"

namespace sigil::core {

/**
 * Write a callgrind-format file combining the cost model's counters
 * with Sigil's communication counters. The two profiles must come from
 * the same run (matching context ids); pass nullptr for cg to emit
 * communication counters only.
 */
void writeCallgrindFormat(std::ostream &os, const SigilProfile &sigil,
                          const cg::CgProfile *cg);

/** Convenience: render to a string. */
std::string callgrindString(const SigilProfile &sigil,
                            const cg::CgProfile *cg);

} // namespace sigil::core

#endif // SIGIL_CORE_CALLGRIND_WRITER_HH
