/**
 * @file
 * Communication-classification types.
 *
 * Every byte Sigil observes being read is classified along two axes
 * (Section II-A of the paper):
 *  - local vs. input/output: was the byte produced by the reading
 *    context itself, or by another context (making it an input of the
 *    reader and an output of the producer)?
 *  - unique vs. non-unique: is this the first read of the byte by this
 *    consumer since it was produced, or a re-read?
 */

#ifndef SIGIL_CORE_COMM_STATS_HH
#define SIGIL_CORE_COMM_STATS_HH

#include <cstdint>

#include "support/histogram.hh"
#include "vg/types.hh"

namespace sigil::core {

/** Producer id of a byte that was read before ever being written. */
constexpr vg::ContextId kUninitProducer = -2;

/** Per-context communication and re-use aggregates. */
struct CommAggregates
{
    std::uint64_t calls = 0;
    std::uint64_t iops = 0;
    std::uint64_t flops = 0;
    std::uint64_t readBytes = 0;
    std::uint64_t writeBytes = 0;

    /** Bytes produced and consumed by this same context. */
    std::uint64_t uniqueLocalBytes = 0;
    std::uint64_t nonuniqueLocalBytes = 0;

    /** Bytes consumed by this context but produced elsewhere. */
    std::uint64_t uniqueInputBytes = 0;
    std::uint64_t nonuniqueInputBytes = 0;

    /** Bytes produced by this context and consumed elsewhere. */
    std::uint64_t uniqueOutputBytes = 0;
    std::uint64_t nonuniqueOutputBytes = 0;

    /**
     * Subset of the input bytes whose producer ran on a different
     * guest thread (cross-thread communication).
     */
    std::uint64_t uniqueInterThreadBytes = 0;
    std::uint64_t nonuniqueInterThreadBytes = 0;

    /** @name Re-use statistics (re-use mode only) */
    /// @{

    /** Re-use runs (unit × call) with at least one re-read. */
    std::uint64_t reusedUnits = 0;

    /** Total re-reads across all runs. */
    std::uint64_t reuseReads = 0;

    /** Sum of re-use lifetimes (run last - first read) in ticks. */
    std::uint64_t lifetimeSum = 0;

    /** Histogram of re-use lifetimes, bin width 1000 ticks. */
    LinearHistogram lifetimeHist;

    /// @}

    /** Total bytes this context read (all classes). */
    std::uint64_t
    totalReadBytes() const
    {
        return uniqueLocalBytes + nonuniqueLocalBytes + uniqueInputBytes +
               nonuniqueInputBytes;
    }

    /** True unique input set of the context. */
    std::uint64_t uniqueIn() const { return uniqueInputBytes; }

    /** True unique output set of the context. */
    std::uint64_t uniqueOut() const { return uniqueOutputBytes; }

    /** Mean re-use lifetime of a re-used unit, 0 if none. */
    double
    avgReuseLifetime() const
    {
        return reusedUnits == 0 ? 0.0
                                : static_cast<double>(lifetimeSum) /
                                      static_cast<double>(reusedUnits);
    }
};

/** One producer→consumer edge of the communication matrix. */
struct CommEdge
{
    vg::ContextId producer = vg::kInvalidContext;
    vg::ContextId consumer = vg::kInvalidContext;
    std::uint64_t uniqueBytes = 0;
    std::uint64_t nonuniqueBytes = 0;
};

/** One producer-thread→consumer-thread edge (multi-threaded guests). */
struct ThreadCommEdge
{
    vg::ThreadId producer = 0;
    vg::ThreadId consumer = 0;
    std::uint64_t uniqueBytes = 0;
    std::uint64_t nonuniqueBytes = 0;
};

} // namespace sigil::core

#endif // SIGIL_CORE_COMM_STATS_HH
