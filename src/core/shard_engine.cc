#include "shard_engine.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "core/sigil_profiler.hh"
#include "support/logging.hh"
#include "support/watchdog.hh"

namespace sigil::core {

namespace {

/** Records a worker pops per queue visit (amortizes cursor traffic). */
constexpr std::size_t kPopBatch = 256;

} // namespace

/** One shard: its queue, private shadow + tables, and the worker. */
struct ShardEngine::Shard
{
    Shard(std::size_t queue_capacity, unsigned granularity_shift)
        : queue(queue_capacity),
          shadow(shadow::ShadowMemory::Config{granularity_shift, 0})
    {}

    vg::ShardQueue queue;
    /** Unbounded: the sequencer's planner owns eviction decisions. */
    shadow::ShadowMemory shadow;
    CommTables tables;

    /** Sequencer-local count of records pushed to this shard. */
    std::uint64_t pushed = 0;
    /** Worker's count of records fully processed. */
    alignas(64) std::atomic<std::uint64_t> processed{0};

    /** Watchdog entity of this shard's worker (-1 when unmonitored). */
    int dogId = -1;

    std::thread worker;
};

ShardEngine::ShardEngine(const SigilConfig &config, unsigned shard_count,
                         std::size_t queue_capacity,
                         std::shared_ptr<sigil::Watchdog> watchdog,
                         std::shared_ptr<sigil::MemoryGovernor> governor)
    : config_(config), reuseEnabled_(config.collectReuse),
      planner_(config.maxShadowChunks), watchdog_(std::move(watchdog)),
      governor_(std::move(governor))
{
    if (shard_count < 2 ||
        (shard_count & (shard_count - 1)) != 0) {
        panic("ShardEngine: shard count %u is not a power of two >= 2",
              shard_count);
    }
    planner_.setGovernor(governor_.get());
    shards_.reserve(shard_count);
    for (unsigned i = 0; i < shard_count; ++i) {
        auto shard = std::make_unique<Shard>(queue_capacity,
                                             config.granularityShift);
        Shard *s = shard.get();
        s->shadow.setEvictionHandler(
            [this, s](std::uint64_t, shadow::ShadowRef obj) {
                commFinalizeRun(s->tables, reuseEnabled_,
                                s->shadow.stamps(), obj.hot, obj.cold);
            },
            shadow::SweepFilter::PendingRuns);
        if (watchdog_ != nullptr) {
            char name[32];
            std::snprintf(name, sizeof(name), "shard-worker-%u", i);
            s->dogId = watchdog_->registerEntity(
                name, sigil::Watchdog::StallAction::Fail, [s] {
                    char buf[48];
                    std::snprintf(
                        buf, sizeof(buf), "records processed=%llu",
                        static_cast<unsigned long long>(
                            s->processed.load(
                                std::memory_order_relaxed)));
                    return std::string(buf);
                });
        }
        shards_.push_back(std::move(shard));
    }
    if (governor_ != nullptr) {
        // Fixed footprint: the SPSC rings exist for the engine's whole
        // lifetime, so one charge up front and one release at teardown.
        // capacity() is the ring's actual (power-of-two) slot count.
        queueBytesCharged_ = shard_count *
                             shards_[0]->queue.capacity() *
                             sizeof(vg::ShardRecord);
        governor_->charge(sigil::MemCategory::ShardQueues,
                          queueBytesCharged_);
    }
    for (auto &shard : shards_) {
        Shard *s = shard.get();
        s->worker = std::thread([this, s] { workerLoop(*s); });
    }
}

ShardEngine::~ShardEngine()
{
    for (auto &shard : shards_)
        shard->queue.stop();
    for (auto &shard : shards_) {
        if (shard->worker.joinable())
            shard->worker.join();
        if (watchdog_ != nullptr && shard->dogId >= 0)
            watchdog_->unregisterEntity(shard->dogId);
    }
    if (governor_ != nullptr) {
        governor_->release(sigil::MemCategory::ShardQueues,
                           queueBytesCharged_);
        planner_.setGovernor(nullptr);
    }
}

CommTables &
ShardEngine::tables(unsigned shard)
{
    return shards_[shard]->tables;
}

shadow::ShadowMemory &
ShardEngine::shadowOf(unsigned shard)
{
    return shards_[shard]->shadow;
}

void
ShardEngine::routeAccess(bool is_write, vg::Addr addr, unsigned size,
                         AccessStamp stamp)
{
    const unsigned shift = config_.granularityShift;
    const std::uint64_t first = addr >> shift;
    const std::uint64_t last =
        (addr + (size ? size - 1 : 0)) >> shift;

    vg::ShardRecord record;
    record.kind = is_write ? vg::ShardRecord::kWrite
                           : vg::ShardRecord::kRead;
    record.tick = stamp.tick;
    record.segSeq = stamp.segSeq;
    record.call = stamp.call;
    record.ctx = stamp.ctx;
    record.tid = stamp.tid;
    record.allocIdx = stamp.allocIdx;
    record.collecting = stamp.collecting;

    // Mirror the serial engine's stamp interning (once per access,
    // before the shadow walk) so the sequencer's table — the one the
    // byte accounting and checkpoints use — grows in exactly the
    // serial order. Workers re-intern into their shard-local tables.
    if (is_write) {
        planner_.internWriter(shadow::WriterStamp{
            stamp.segSeq, stamp.ctx, stamp.tid});
    } else {
        planner_.internReader(shadow::ReaderStamp{
            reuseEnabled_ ? stamp.call : 0, stamp.ctx});
    }
    // Serial readAccess resolves want_cold once per access; the worker
    // computes the identical value from the record (classifyEnabled_
    // is fixed true in sharded mode).
    const bool want_cold = !is_write && stamp.collecting &&
                           classifyEnabled_ &&
                           (reuseEnabled_ ||
                            config_.granularityShift > 0);

    std::uint64_t u = first;
    vg::Addr piece_addr = addr;
    const vg::Addr end_addr = addr + size;
    for (;;) {
        const std::uint64_t chunk =
            u >> shadow::ShadowMemory::kChunkShift;
        const std::uint64_t chunk_last_unit =
            ((chunk + 1) << shadow::ShadowMemory::kChunkShift) - 1;
        const std::uint64_t piece_last =
            std::min(last, chunk_last_unit);
        const vg::Addr piece_end = std::min<vg::Addr>(
            end_addr, (piece_last + 1) << shift);

        // Replay the serial recency/eviction decision for this chunk;
        // every victim (chunk limit, or the governor's budget loop) is
        // evicted in its owning shard before the piece that displaced
        // it is enqueued, in planner eviction order.
        victimScratch_.clear();
        planner_.touch(chunk, want_cold, victimScratch_);
        for (std::uint64_t victim : victimScratch_) {
            Shard &vs = *shards_[shardOf(victim)];
            vg::ShardRecord evict;
            evict.kind = vg::ShardRecord::kEvict;
            evict.addr = victim;
            evict.epoch = nextEpoch_++;
            vs.queue.push(evict);
            ++vs.pushed;
        }

        record.addr = piece_addr;
        record.size = static_cast<std::uint32_t>(piece_end - piece_addr);
        record.epoch = nextEpoch_++;
        Shard &s = *shards_[shardOf(chunk)];
        s.queue.push(record);
        ++s.pushed;

        if (piece_last == last)
            break;
        u = piece_last + 1;
        piece_addr = piece_end;
    }
}

void
ShardEngine::drain()
{
    for (auto &shard : shards_) {
        const std::uint64_t target = shard->pushed;
        int spins = 0;
        while (shard->processed.load(std::memory_order_acquire) <
               target) {
            if (spins < 64) {
                ++spins;
                std::this_thread::yield();
            } else {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(50));
            }
        }
    }
}

shadow::ShadowRef
ShardEngine::restoreUnit(std::uint64_t unit, bool has_cold)
{
    const std::uint64_t chunk =
        unit >> shadow::ShadowMemory::kChunkShift;
    planner_.restoreTouch(chunk, has_cold);
    return shards_[shardOf(chunk)]->shadow.restoreLookup(unit,
                                                         has_cold);
}

shadow::StampId
ShardEngine::internWriterFor(std::uint64_t unit,
                             const shadow::WriterStamp &s)
{
    const std::uint64_t chunk =
        unit >> shadow::ShadowMemory::kChunkShift;
    return shards_[shardOf(chunk)]->shadow.internWriter(s);
}

shadow::StampId
ShardEngine::internReaderFor(std::uint64_t unit,
                             const shadow::ReaderStamp &s)
{
    const std::uint64_t chunk =
        unit >> shadow::ShadowMemory::kChunkShift;
    return shards_[shardOf(chunk)]->shadow.internReader(s);
}

void
ShardEngine::workerLoop(Shard &shard)
{
    std::vector<vg::ShardRecord> buf(kPopBatch);
    std::uint64_t done = 0;
    for (;;) {
        // Blocking on an empty queue is idleness, not a stall: only
        // time spent processing popped records counts for the
        // watchdog's deadline.
        if (watchdog_ != nullptr && shard.dogId >= 0)
            watchdog_->idle(shard.dogId);
        std::size_t n = shard.queue.pop(buf.data(), buf.size());
        if (n == 0)
            return; // stopped and fully drained
        if (watchdog_ != nullptr && shard.dogId >= 0)
            watchdog_->busy(shard.dogId);
        for (std::size_t i = 0; i < n; ++i)
            process(shard, buf[i]);
        done += n;
        shard.processed.store(done, std::memory_order_release);
        if (watchdog_ != nullptr && shard.dogId >= 0)
            watchdog_->beat(shard.dogId);
    }
}

void
ShardEngine::process(Shard &shard, const vg::ShardRecord &r)
{
    if (r.kind == vg::ShardRecord::kEvict) {
        shard.shadow.evictChunk(r.addr);
        return;
    }

    AccessStamp a;
    a.ctx = r.ctx;
    a.call = r.call;
    a.tick = r.tick;
    a.tid = r.tid;
    a.segSeq = r.segSeq;
    a.epoch = r.epoch;
    a.allocIdx = r.allocIdx;
    a.collecting = r.collecting;

    shadow::ShadowMemory &sh = shard.shadow;
    const std::uint64_t first = sh.unitOf(r.addr);
    const std::uint64_t last = sh.lastUnitOf(r.addr, r.size);

    if (r.kind == vg::ShardRecord::kWrite) {
        const shadow::StampId ws = sh.internWriter(shadow::WriterStamp{
            a.segSeq, a.ctx, a.tid});
        if (config_.referenceShadowPath) {
            for (std::uint64_t u = first; u <= last; ++u) {
                shadow::ShadowRef s = sh.lookup(u);
                commWriteUnit(shard.tables, reuseEnabled_, sh.stamps(),
                              s.hot, s.cold, ws);
            }
            return;
        }
        sh.span(first, last, /*want_cold=*/false,
                [&](shadow::ShadowMemory::Run run) {
                    if (reuseEnabled_ && run.cold != nullptr) {
                        for (std::size_t i = 0; i < run.count; ++i) {
                            if (run.hot[i].reader != 0) {
                                commFinalizeRun(shard.tables,
                                                reuseEnabled_,
                                                sh.stamps(), run.hot[i],
                                                run.cold + i);
                            }
                        }
                    }
                    std::fill(run.hot, run.hot + run.count,
                              shadow::ShadowHot{ws, 0});
                });
        return;
    }

    // Read: same per-unit byte-width clamping as the serial span walk.
    // The piece is the access clamped to this chunk and units never
    // span chunks, so clamping against the piece bounds yields the
    // serial widths.
    // Same call-collapse rule as the serial read path: with re-use
    // off the reader call feeds nothing, so one stamp per context.
    const shadow::StampId rs = sh.internReader(
        shadow::ReaderStamp{reuseEnabled_ ? a.call : 0, a.ctx});
    const bool want_cold = a.collecting && classifyEnabled_ &&
                           (reuseEnabled_ ||
                            config_.granularityShift > 0);
    ClassifyEnv env{reuseEnabled_, classifyEnabled_,
                    config_.collectEvents, config_.granularityShift};
    std::unordered_map<std::uint64_t, std::uint64_t> *xfers =
        (config_.collectEvents && a.segSeq != 0)
            ? &shard.tables.segXfers[a.segSeq]
            : nullptr;
    std::uint64_t unique_bytes = 0;
    const unsigned shift = sh.granularityShift();
    const std::uint64_t unit_bytes = sh.unitBytes();
    const vg::Addr addr = r.addr;
    const vg::Addr end_addr = r.addr + r.size;

    if (config_.referenceShadowPath) {
        for (std::uint64_t u = first; u <= last; ++u) {
            shadow::ShadowRef s = sh.lookup(u, want_cold);
            std::uint64_t unit_lo = u << shift;
            std::uint64_t unit_hi = unit_lo + unit_bytes;
            std::uint64_t lo = std::max<std::uint64_t>(addr, unit_lo);
            std::uint64_t hi =
                std::min<std::uint64_t>(end_addr, unit_hi);
            commReadUnit(shard.tables, env, sh.stamps(), s.hot, s.cold,
                         hi - lo, a, rs, xfers, unique_bytes);
        }
    } else {
        sh.span(first, last, want_cold,
                [&](shadow::ShadowMemory::Run run) {
                    for (std::size_t i = 0; i < run.count; ++i) {
                        std::uint64_t u = run.firstUnit + i;
                        std::uint64_t w = unit_bytes;
                        if (u == first || u == last) {
                            std::uint64_t unit_lo = u << shift;
                            std::uint64_t unit_hi = unit_lo + unit_bytes;
                            std::uint64_t lo =
                                std::max<std::uint64_t>(addr, unit_lo);
                            std::uint64_t hi = std::min<std::uint64_t>(
                                end_addr, unit_hi);
                            w = hi - lo;
                        }
                        commReadUnit(shard.tables, env, sh.stamps(),
                                     run.hot[i],
                                     run.cold ? run.cold + i : nullptr,
                                     w, a, rs, xfers, unique_bytes);
                    }
                });
    }

    if (a.collecting && config_.collectObjects) {
        shard.tables.objectSlot(a.allocIdx).uniqueReadBytes +=
            unique_bytes;
    }
}

} // namespace sigil::core
