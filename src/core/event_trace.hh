/**
 * @file
 * The "event" representation of an execution (Section II-C2).
 *
 * A program is reduced to a sequence of computation fragments
 * ("segments") separated by data-transfer edges. A new segment starts
 * whenever control enters or re-enters a function; transfers record
 * which earlier segment produced the bytes a segment consumes. The
 * trace preserves inter-function ordering but not ordering within a
 * function, exactly as the paper specifies.
 */

#ifndef SIGIL_CORE_EVENT_TRACE_HH
#define SIGIL_CORE_EVENT_TRACE_HH

#include <cstdint>
#include <vector>

#include "vg/types.hh"

namespace sigil::core {

/** A computation fragment: one contiguous stay inside a function. */
struct ComputeEvent
{
    /** Unique, strictly increasing segment id. */
    std::uint64_t seq = 0;

    /**
     * Segment this one is serially ordered after: the caller's segment
     * for the first segment of a call, or the same call's previous
     * segment for a re-occurrence after a child returned (the
     * conservative ordering edge of the paper's Figure 3). 0 = none.
     */
    std::uint64_t predSeq = 0;

    vg::ContextId ctx = vg::kInvalidContext;
    vg::CallNum call = 0;
    std::uint64_t iops = 0;
    std::uint64_t flops = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
};

/** Unique bytes transferred from a producing segment into a consumer. */
struct XferEvent
{
    /** Producing segment (its ComputeEvent::seq). */
    std::uint64_t srcSeq = 0;
    /** Consuming segment. */
    std::uint64_t dstSeq = 0;
    std::uint64_t bytes = 0;
};

/** One record of the trace, in program order. */
struct EventRecord
{
    enum class Kind { Compute, Xfer };

    Kind kind;
    ComputeEvent compute; // valid when kind == Compute
    XferEvent xfer;       // valid when kind == Xfer

    static EventRecord
    makeCompute(const ComputeEvent &c)
    {
        EventRecord r;
        r.kind = Kind::Compute;
        r.compute = c;
        return r;
    }

    static EventRecord
    makeXfer(const XferEvent &x)
    {
        EventRecord r;
        r.kind = Kind::Xfer;
        r.xfer = x;
        return r;
    }
};

/** An in-memory event trace. */
struct EventTrace
{
    std::vector<EventRecord> records;

    std::size_t size() const { return records.size(); }
    bool empty() const { return records.empty(); }
};

} // namespace sigil::core

#endif // SIGIL_CORE_EVENT_TRACE_HH
