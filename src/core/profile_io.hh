/**
 * @file
 * Text serialization of Sigil's two output representations: the
 * per-function aggregate profile and the event file. The formats are
 * line-oriented and tab-delimited so that function names containing
 * spaces (e.g. "operator new") round-trip safely, and so downstream
 * post-processing (the cdfg and critpath modules, or external scripts)
 * can consume them without the profiler in the loop — which is how the
 * paper's released profiles were meant to be used.
 */

#ifndef SIGIL_CORE_PROFILE_IO_HH
#define SIGIL_CORE_PROFILE_IO_HH

#include <iosfwd>
#include <optional>
#include <string>

#include "core/event_trace.hh"
#include "core/profile.hh"
#include "vg/trace_error.hh"

namespace sigil::core {

/** Write an aggregate profile. */
void writeProfile(std::ostream &os, const SigilProfile &profile);

/** Write an aggregate profile to a file; fatal() on I/O failure. */
void writeProfileFile(const std::string &path, const SigilProfile &profile);

/** Parse an aggregate profile; fatal() on malformed input. */
SigilProfile readProfile(std::istream &is);

/** Parse an aggregate profile from a file. */
SigilProfile readProfileFile(const std::string &path);

/**
 * Fault-tolerant variant of readProfile(): a malformed input yields
 * nullopt and fills `error` with the cause, 1-based line number, byte
 * offset of the offending line, and the offending token, instead of
 * exiting the process.
 */
std::optional<SigilProfile> tryReadProfile(std::istream &is,
                                           vg::TraceError &error);

/** Write an event trace. */
void writeEvents(std::ostream &os, const EventTrace &events);

/** Write an event trace to a file; fatal() on I/O failure. */
void writeEventsFile(const std::string &path, const EventTrace &events);

/** Parse an event trace; fatal() on malformed input. */
EventTrace readEvents(std::istream &is);

/** Parse an event trace from a file. */
EventTrace readEventsFile(const std::string &path);

/** Fault-tolerant variant of readEvents() (see tryReadProfile()). */
std::optional<EventTrace> tryReadEvents(std::istream &is,
                                        vg::TraceError &error);

} // namespace sigil::core

#endif // SIGIL_CORE_PROFILE_IO_HH
