#include "core/profile_query.hh"

#include <cstdio>
#include <sstream>

#include "core/comm_stats.hh"
#include "core/profile_diff.hh"
#include "core/profile_io.hh"
#include "core/report.hh"

namespace sigil::core {

namespace {

/** Display name of a context id, tolerating ids outside the rows. */
std::string
contextName(const SigilProfile &profile, vg::ContextId ctx)
{
    if (ctx == kUninitProducer)
        return "<uninit>";
    if (ctx >= 0 &&
        static_cast<std::size_t>(ctx) < profile.rows.size()) {
        const SigilRow &row = profile.rows[static_cast<std::size_t>(ctx)];
        if (!row.displayName.empty())
            return row.displayName;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "ctx%lld",
                  static_cast<long long>(ctx));
    return buf;
}

void
appendRowLine(std::string &out, const char *name,
              const CommAggregates &a)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  %-32s calls %llu iops %llu flops %llu "
                  "read %llu write %llu uniq-in %llu uniq-out %llu\n",
                  name, static_cast<unsigned long long>(a.calls),
                  static_cast<unsigned long long>(a.iops),
                  static_cast<unsigned long long>(a.flops),
                  static_cast<unsigned long long>(a.readBytes),
                  static_cast<unsigned long long>(a.writeBytes),
                  static_cast<unsigned long long>(a.uniqueInputBytes),
                  static_cast<unsigned long long>(a.uniqueOutputBytes));
    out += buf;
}

} // namespace

std::string
profileQueryText(const SigilProfile &profile)
{
    std::ostringstream os;
    writeProfile(os, profile);
    return os.str();
}

std::string
functionQueryText(const SigilProfile &profile, const std::string &fn_name)
{
    std::vector<const SigilRow *> rows = profile.findByFunction(fn_name);
    std::string out;
    char head[160];
    std::snprintf(head, sizeof(head), "function %s: %zu context%s\n",
                  fn_name.c_str(), rows.size(),
                  rows.size() == 1 ? "" : "s");
    out += head;
    if (rows.empty()) {
        out += "  (no context matches this function name)\n";
        return out;
    }
    CommAggregates sum;
    for (const SigilRow *row : rows) {
        appendRowLine(out, row->displayName.c_str(), row->agg);
        sum.calls += row->agg.calls;
        sum.iops += row->agg.iops;
        sum.flops += row->agg.flops;
        sum.readBytes += row->agg.readBytes;
        sum.writeBytes += row->agg.writeBytes;
        sum.uniqueInputBytes += row->agg.uniqueInputBytes;
        sum.uniqueOutputBytes += row->agg.uniqueOutputBytes;
    }
    if (rows.size() > 1)
        appendRowLine(out, "<total>", sum);
    return out;
}

std::string
edgesQueryText(const SigilProfile &profile)
{
    std::string out;
    char head[96];
    std::snprintf(head, sizeof(head), "edges %zu\n",
                  profile.edges.size());
    out += head;
    for (const CommEdge &e : profile.edges) {
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "  %s -> %s unique %llu nonunique %llu\n",
                      contextName(profile, e.producer).c_str(),
                      contextName(profile, e.consumer).c_str(),
                      static_cast<unsigned long long>(e.uniqueBytes),
                      static_cast<unsigned long long>(e.nonuniqueBytes));
        out += buf;
    }
    if (!profile.threadEdges.empty()) {
        std::snprintf(head, sizeof(head), "thread-edges %zu\n",
                      profile.threadEdges.size());
        out += head;
        for (const ThreadCommEdge &e : profile.threadEdges) {
            char buf[160];
            std::snprintf(buf, sizeof(buf),
                          "  t%u -> t%u unique %llu nonunique %llu\n",
                          e.producer, e.consumer,
                          static_cast<unsigned long long>(e.uniqueBytes),
                          static_cast<unsigned long long>(
                              e.nonuniqueBytes));
            out += buf;
        }
    }
    return out;
}

std::string
diffQueryText(const SigilProfile &lhs, const SigilProfile &rhs)
{
    ProfileDiff diff = diffProfiles(lhs, rhs);
    std::string out;
    char head[128];
    std::snprintf(head, sizeof(head), "profiles %s: %zu mismatch%s\n",
                  diff.identical() ? "identical" : "differ",
                  diff.mismatches.size(),
                  diff.mismatches.size() == 1 ? "" : "es");
    out += head;
    if (!diff.identical())
        out += diff.describe();
    return out;
}

std::string
summaryQueryText(const SigilProfile &profile, std::size_t top_n)
{
    std::string out = flatReport(profile, nullptr, top_n);
    out += "\n";
    out += commSummary(profile);
    return out;
}

std::uint64_t
profileMemoryEstimate(const SigilProfile &profile)
{
    std::uint64_t bytes = sizeof(SigilProfile);
    bytes += profile.program.capacity();
    for (const SigilRow &row : profile.rows) {
        bytes += sizeof(SigilRow);
        bytes += row.fnName.capacity() + row.displayName.capacity() +
                 row.path.capacity();
    }
    bytes += profile.edges.size() * sizeof(CommEdge);
    bytes += profile.threadEdges.size() * sizeof(ThreadCommEdge);
    for (const SigilProfile::ObjectRow &obj : profile.objects)
        bytes += sizeof(obj) + obj.tag.capacity();
    return bytes;
}

} // namespace sigil::core
