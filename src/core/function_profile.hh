/**
 * @file
 * Function-level (context-collapsed) views of a Sigil profile.
 *
 * Sigil keeps separate accounting per calling context; many analyses
 * (and gprof-style reporting) want per-function totals instead. This
 * module folds all contexts of a function into one row and provides
 * sorted top-N queries over any metric.
 */

#ifndef SIGIL_CORE_FUNCTION_PROFILE_HH
#define SIGIL_CORE_FUNCTION_PROFILE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/profile.hh"

namespace sigil::core {

/** Per-function totals over all calling contexts. */
struct FunctionRow
{
    std::string fnName;
    std::size_t numContexts = 0;
    CommAggregates agg;
};

/** A context-collapsed profile. */
struct FunctionProfile
{
    std::string program;
    std::vector<FunctionRow> rows;

    /** Row by function name; nullptr if absent. */
    const FunctionRow *find(const std::string &fn_name) const;

    /**
     * The n rows with the largest value of metric, descending.
     * Ties are broken by function name for determinism.
     */
    std::vector<const FunctionRow *>
    topBy(std::size_t n,
          const std::function<std::uint64_t(const FunctionRow &)> &metric)
        const;
};

/** Collapse a context-sensitive profile to per-function rows. */
FunctionProfile collapseByFunction(const SigilProfile &profile);

} // namespace sigil::core

#endif // SIGIL_CORE_FUNCTION_PROFILE_HH
