/**
 * @file
 * The Sigil profiling tool.
 *
 * Implements the paper's measurement methodology (Section II-B): a
 * shadow object per data unit tracks the last writer and last reader;
 * writes mark the producer, reads are classified as local vs.
 * input/output (producer identity) and unique vs. non-unique (last
 * reader identity). In re-use mode the tool additionally tracks per
 * (unit, consuming call) re-use runs — read counts and first/last
 * timestamps — whose lifetimes feed per-function histograms. With event
 * collection enabled the tool also emits the event-file representation
 * (computation segments + data-transfer edges).
 */

#ifndef SIGIL_CORE_SIGIL_PROFILER_HH
#define SIGIL_CORE_SIGIL_PROFILER_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "support/serial.hh"
#include "core/comm_stats.hh"
#include "core/event_trace.hh"
#include "core/profile.hh"
#include "shadow/shadow_memory.hh"
#include "vg/guest.hh"
#include "vg/tool.hh"

namespace sigil::core {

/** Configuration of a profiling run. */
struct SigilConfig
{
    /** 0 = shadow every byte; 6 = shadow 64-byte lines (Fig. 12). */
    unsigned granularityShift = 0;

    /** Shadow-memory limit in chunks; 0 = unlimited. */
    std::size_t maxShadowChunks = 0;

    /** Track re-use runs and lifetimes (Table I "Reuse mode"). */
    bool collectReuse = true;

    /** Emit the event-file representation. */
    bool collectEvents = false;

    /**
     * Collect only inside the guest's region of interest (the PARSEC
     * __parsec_roi_begin/end convention). Shadow state is maintained
     * throughout — producers written during setup are still known —
     * but aggregates, edges, re-use samples, and event records are
     * attributed only within the ROI.
     */
    bool roiOnly = false;

    /**
     * Attribute traffic to the guest's tagged heap allocations
     * (per-data-structure communication).
     */
    bool collectObjects = false;

    /**
     * Use the retained per-unit shadow walk (one ShadowMemory::lookup
     * per unit) instead of the span-oriented hot path. The two paths
     * produce bitwise-identical profiles; this one exists as the
     * reference implementation for differential testing and as the
     * baseline for the span-path microbenchmarks.
     */
    bool referenceShadowPath = false;
};

/** The Sigil communication profiler. */
class SigilProfiler : public vg::Tool
{
  public:
    explicit SigilProfiler(const SigilConfig &config = SigilConfig{});

    void attach(const vg::Guest &guest) override;
    void fnEnter(vg::ContextId ctx, vg::CallNum call) override;
    void fnLeave(vg::ContextId ctx, vg::CallNum call) override;
    void memRead(vg::Addr addr, unsigned size) override;
    void memWrite(vg::Addr addr, unsigned size) override;
    void op(std::uint64_t iops, std::uint64_t flops) override;
    void threadSwitch(vg::ThreadId tid) override;
    void barrier() override;
    void roi(bool active) override;
    void finish() override;

    /**
     * Native batch consumer: reads the buffer's lanes directly instead
     * of going through the per-event virtuals and the guest's
     * ambient-state accessors. Produces bit-identical profiles.
     */
    void processBatch(const vg::EventBuffer &batch) override;

    /**
     * Aggregates of one context (zeroes if never seen).
     *
     * With batched/async dispatch (GuestConfig::batchEvents /
     * asyncTools) call Guest::sync() first — the profiler lags the
     * guest until the in-flight buffers drain. Debug builds assert
     * that no events are pending.
     */
    const CommAggregates &aggregates(vg::ContextId ctx) const;

    /**
     * Snapshot the aggregate profile (names, edges, breakdowns).
     * Requires Guest::sync() first under batched/async dispatch (see
     * aggregates()); debug builds assert that no events are pending.
     */
    SigilProfile takeProfile() const;

    /** @name Checkpointing
     *
     * saveState() serializes the complete analysis state — aggregate
     * rows, edges, breakdown histograms, object stats, event-trace
     * records and open segments, and every live shadow chunk (in
     * recency order, so the restore reproduces future eviction
     * decisions). restoreState() rebuilds it into a freshly
     * constructed profiler with an *identical* SigilConfig; a config
     * mismatch or corrupt input returns false.
     */
    /// @{
    void saveState(ByteSink &sink);
    bool restoreState(ByteSource &src);
    /// @}

    /**
     * Fidelity degradation under shadow allocation pressure (driven by
     * ShadowMemory's pressure handler): 0 = full fidelity, 1 = re-use
     * tracking dropped (pending runs are finalized first, so existing
     * statistics keep their mass), 2 = read classification dropped
     * (raw byte counts continue). The level only rises.
     */
    int degradationLevel() const { return degradationLevel_; }

    /** The event trace (empty unless collectEvents). */
    const EventTrace &events() const { return events_; }

    const shadow::ShadowMemory &shadowMemory() const { return shadow_; }

    /**
     * Mutable shadow access for fault-injection harnesses (install an
     * allocation-failure injector before driving the guest).
     */
    shadow::ShadowMemory &shadowMemory() { return shadow_; }

    const SigilConfig &config() const { return config_; }

  private:
    CommAggregates &row(vg::ContextId ctx);

    /** @name Event bodies with explicit ambient state
     *
     * The per-event virtuals query the guest for the ambient state
     * (current context, call, virtual time, depth) and forward here;
     * processBatch() forwards the buffer's ambient lanes directly.
     */
    /// @{
    void readAccess(vg::Addr addr, unsigned size, vg::ContextId ctx,
                    vg::CallNum call, vg::Tick now);
    void writeAccess(vg::Addr addr, unsigned size, vg::ContextId ctx,
                     vg::CallNum call);
    void opAt(std::uint64_t iops, std::uint64_t flops, vg::ContextId ctx);
    void leaveAt(vg::ContextId resumed_ctx, vg::CallNum resumed_call,
                 std::size_t depth);
    void threadSwitchAt(vg::ThreadId tid, vg::ContextId ctx,
                        vg::CallNum call);
    void barrierAt(vg::ContextId ctx, vg::CallNum call);
    /// @}

    /**
     * Close the pending re-use run of a shadow object, folding its
     * lifetime into the last reader's statistics and its read count
     * into the program-wide breakdown.
     */
    void finalizeRun(shadow::ShadowHot &hot, shadow::ShadowCold &cold);

    struct SegState;

    /**
     * Classify one read of w bytes against a unit's shadow state and
     * update that state. Shared by the span hot path and the per-unit
     * reference path so both produce identical profiles.
     */
    void readUnit(shadow::ShadowHot &hot, shadow::ShadowCold &cold,
                  std::uint64_t w, vg::ContextId ctx, vg::CallNum call,
                  vg::Tick now, SegState &state,
                  std::uint64_t &unique_bytes_this_access);

    /** Record one write into a unit's shadow state. */
    void writeUnit(shadow::ShadowHot &hot, shadow::ShadowCold &cold,
                   vg::ContextId ctx, vg::CallNum call,
                   std::uint64_t seq);

    /** Flush a thread's open compute segment and start a new one. */
    void startSegment(SegState &state, vg::ContextId ctx,
                      vg::CallNum call, std::uint64_t pred_seq);

    /** Emit a thread's open compute segment (if any) to the trace. */
    void flushSegment(SegState &state);

    /** Resolve a predecessor through any skipped (empty) segments. */
    std::uint64_t resolvePred(std::uint64_t seq) const;

    /** Shed fidelity one rung at a time (see degradationLevel()). */
    void degrade(int failed_attempts);

    SigilConfig config_;
    shadow::ShadowMemory shadow_;

    /** False while ROI-only collection is outside the ROI. */
    bool collecting_ = true;

    /** @name Degradation ladder state */
    /// @{
    int degradationLevel_ = 0;
    /** config_.collectReuse until degradation level 1. */
    bool reuseEnabled_ = true;
    /** True until degradation level 2. */
    bool classifyEnabled_ = true;
    /// @}

    std::vector<CommAggregates> rows_;

    /** (producer<<32|consumer) → edge index, no self edges. */
    std::unordered_map<std::uint64_t, std::size_t> edgeIndex_;
    std::vector<CommEdge> edges_;

    BoundsHistogram unitReuseBreakdown_{std::vector<std::uint64_t>{0, 9}};
    BoundsHistogram lineReuseBreakdown_{
        std::vector<std::uint64_t>{9, 99, 999, 9999}};

    /** (producerTid<<32|consumerTid) → thread-edge index. */
    std::unordered_map<std::uint64_t, std::size_t> threadEdgeIndex_;
    std::vector<ThreadCommEdge> threadEdges_;

    /** Per-allocation traffic; slot 0 is the "other" bucket. */
    struct ObjectStats
    {
        std::uint64_t readBytes = 0;
        std::uint64_t writeBytes = 0;
        std::uint64_t uniqueReadBytes = 0;
    };
    std::vector<ObjectStats> objectStats_;

    /** Grow-and-fetch the stats slot of allocation index (-1 = other). */
    ObjectStats &objectSlot(int alloc_index);

    /** @name Open event-trace segments (one per guest thread) */
    /// @{
    EventTrace events_;
    std::uint64_t nextSeq_ = 1;

    /** Per-thread segment state; threads interleave in the trace. */
    struct SegState
    {
        bool open = false;
        ComputeEvent segment;
        /** Producer segment → unique bytes consumed by the segment. */
        std::unordered_map<std::uint64_t, std::uint64_t> xfers;
        /** Last segment of each active frame on this thread. */
        std::vector<std::uint64_t> frameLastSeq;
        /** The thread must pick up barrier ordering edges. */
        bool barrierPending = false;
    };

    SegState &seg() { return segStates_[currentTid_]; }

    std::vector<SegState> segStates_{1};
    vg::ThreadId currentTid_ = 0;

    /** Skipped empty segments: seq → its own predecessor. */
    std::unordered_map<std::uint64_t, std::uint64_t> skippedSegments_;

    /** Every thread's last segment at the most recent barrier. */
    std::vector<std::uint64_t> barrierPreds_;
    /// @}

    static const CommAggregates kZero;
};

} // namespace sigil::core

#endif // SIGIL_CORE_SIGIL_PROFILER_HH
