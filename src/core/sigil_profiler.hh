/**
 * @file
 * The Sigil profiling tool.
 *
 * Implements the paper's measurement methodology (Section II-B): a
 * shadow object per data unit tracks the last writer and last reader;
 * writes mark the producer, reads are classified as local vs.
 * input/output (producer identity) and unique vs. non-unique (last
 * reader identity). In re-use mode the tool additionally tracks per
 * (unit, consuming call) re-use runs — read counts and first/last
 * timestamps — whose lifetimes feed per-function histograms. With event
 * collection enabled the tool also emits the event-file representation
 * (computation segments + data-transfer edges).
 *
 * Two execution engines share the classification kernels
 * (core/comm_tables.hh): the serial path below, and an address-sharded
 * parallel path (core/shard_engine.hh) enabled by
 * vg::GuestConfig::shardCount > 1, whose merged output is bit-identical
 * to the serial path.
 */

#ifndef SIGIL_CORE_SIGIL_PROFILER_HH
#define SIGIL_CORE_SIGIL_PROFILER_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "support/serial.hh"
#include "core/comm_stats.hh"
#include "core/comm_tables.hh"
#include "core/event_trace.hh"
#include "core/profile.hh"
#include "shadow/shadow_memory.hh"
#include "vg/guest.hh"
#include "vg/tool.hh"

namespace sigil::core {

class ShardEngine;
class SegmentEngine;

/** Configuration of a profiling run. */
struct SigilConfig
{
    /** 0 = shadow every byte; 6 = shadow 64-byte lines (Fig. 12). */
    unsigned granularityShift = 0;

    /** Shadow-memory limit in chunks; 0 = unlimited. */
    std::size_t maxShadowChunks = 0;

    /** Track re-use runs and lifetimes (Table I "Reuse mode"). */
    bool collectReuse = true;

    /** Emit the event-file representation. */
    bool collectEvents = false;

    /**
     * Collect only inside the guest's region of interest (the PARSEC
     * __parsec_roi_begin/end convention). Shadow state is maintained
     * throughout — producers written during setup are still known —
     * but aggregates, edges, re-use samples, and event records are
     * attributed only within the ROI.
     */
    bool roiOnly = false;

    /**
     * Attribute traffic to the guest's tagged heap allocations
     * (per-data-structure communication).
     */
    bool collectObjects = false;

    /**
     * Use the retained per-unit shadow walk (one ShadowMemory::lookup
     * per unit) instead of the span-oriented hot path. The two paths
     * produce bitwise-identical profiles; this one exists as the
     * reference implementation for differential testing and as the
     * baseline for the span-path microbenchmarks.
     */
    bool referenceShadowPath = false;
};

/** The Sigil communication profiler. */
class SigilProfiler : public vg::Tool
{
  public:
    explicit SigilProfiler(const SigilConfig &config = SigilConfig{});
    ~SigilProfiler() override;

    void attach(const vg::Guest &guest) override;
    void fnEnter(vg::ContextId ctx, vg::CallNum call) override;
    void fnLeave(vg::ContextId ctx, vg::CallNum call) override;
    void memRead(vg::Addr addr, unsigned size) override;
    void memWrite(vg::Addr addr, unsigned size) override;
    void op(std::uint64_t iops, std::uint64_t flops) override;
    void threadSwitch(vg::ThreadId tid) override;
    void barrier() override;
    void roi(bool active) override;
    void finish() override;

    /**
     * Sharded mode: drain the shard queues and fold every shard's
     * partial tables into the authoritative ones (Guest::sync() calls
     * this). No-op in serial mode.
     */
    void sync() override;

    /**
     * Native batch consumer: reads the buffer's lanes directly instead
     * of going through the per-event virtuals and the guest's
     * ambient-state accessors. Produces bit-identical profiles.
     */
    void processBatch(const vg::EventBuffer &batch) override;

    /**
     * Aggregates of one context (zeroes if never seen).
     *
     * With batched/async dispatch (GuestConfig::batchEvents /
     * asyncTools) call Guest::sync() first — the profiler lags the
     * guest until the in-flight buffers drain. Debug builds assert
     * that no events are pending.
     */
    const CommAggregates &aggregates(vg::ContextId ctx) const;

    /**
     * Snapshot the aggregate profile (names, edges, breakdowns).
     * Requires Guest::sync() first under batched/async dispatch (see
     * aggregates()); debug builds assert that no events are pending.
     */
    SigilProfile takeProfile() const;

    /** @name Checkpointing
     *
     * saveState() serializes the complete analysis state — aggregate
     * rows, edges, breakdown histograms, object stats, event-trace
     * records and open segments, and every live shadow chunk (in
     * recency order, so the restore reproduces future eviction
     * decisions). restoreState() rebuilds it into a freshly
     * constructed profiler with an *identical* SigilConfig; a config
     * mismatch or corrupt input returns false.
     *
     * Sharded runs fold before saving, so the snapshot body is
     * engine-independent: a checkpoint written by a sharded run (v2)
     * restores into a serial profiler and vice versa, for any shard
     * count.
     */
    /// @{
    void saveState(ByteSink &sink);
    bool restoreState(ByteSource &src);

    /**
     * Where in a segment-parallel replay a snapshot was taken. When
     * set, saveState() writes version 4 — the version-3 body plus this
     * trailer — so a checkpoint written at a segment cut records its
     * provenance. The trailer is informational: version-4 snapshots
     * restore into serial and segmented replays alike.
     */
    struct SegmentProvenance
    {
        std::uint64_t segments = 0;
        std::uint64_t segmentIndex = 0;
        std::uint64_t cutOffset = 0;
    };

    void
    setSegmentProvenance(const SegmentProvenance &p)
    {
        provenance_ = p;
    }

    /**
     * Write the pre-stamp-table body (version 1 serial / 2 sharded):
     * per-unit identity tuples inline, no stamp table, no byte peak.
     * Retained so the cross-version restore path (v1/v2 snapshot into
     * a stamp-compressed profiler) stays covered by tests; new
     * checkpoints are always written by saveState() as version 3.
     */
    void saveStateLegacy(ByteSink &sink);
    /// @}

    /**
     * Fidelity degradation under shadow allocation pressure (driven by
     * ShadowMemory's pressure handler): 0 = full fidelity, 1 = re-use
     * tracking dropped (pending runs are finalized first, so existing
     * statistics keep their mass), 2 = read classification dropped
     * (raw byte counts continue). The level only rises. Serial engine
     * only — sharded runs do not consult failure injectors.
     */
    int degradationLevel() const { return degradationLevel_; }

    /**
     * The event trace (empty unless collectEvents). Sharded mode folds
     * pending shard work first, like aggregates().
     */
    const EventTrace &events() const;

    const shadow::ShadowMemory &shadowMemory() const { return shadow_; }

    /**
     * Mutable shadow access for fault-injection harnesses (install an
     * allocation-failure injector before driving the guest). Serial
     * engine only: sharded runs never consult this shadow.
     */
    shadow::ShadowMemory &shadowMemory() { return shadow_; }

    /** True when the address-sharded parallel engine is active. */
    bool sharded() const { return engine_ != nullptr; }

    /**
     * Aggregate shadow allocation statistics: the serial shadow's, or
     * the shard planner's (exact global peak-of-sum) when sharded.
     */
    shadow::ShadowStats shadowStats() const;

    /** Peak host bytes of shadow state across all shards. */
    std::uint64_t shadowPeakBytes() const;

    /**
     * Test hook: permutation in which foldShards() visits shards. The
     * merge is order-independent by construction; the differential
     * tests assert it stays that way. Ignored unless it is a
     * permutation of [0, shardCount).
     */
    void setFoldOrderForTesting(std::vector<unsigned> order);

    const SigilConfig &config() const { return config_; }

  private:
    friend class SegmentEngine;

    /**
     * Which role this profiler plays in a segment-parallel replay
     * (core/segment_engine.hh). kSerial is the normal standalone tool.
     * kControlScan maintains only the control-flow state a segment
     * worker must inherit — ROI flag, thread, segment seq chain and
     * emit/skip decisions — and touches neither rows nor shadow.
     * kSegmentWorker runs the full kernels against a speculative local
     * shadow, logging reads of units it never wrote (and terminations
     * of their pending runs) for the ordered resolution pass.
     */
    enum class Mode
    {
        kSerial,
        kControlScan,
        kSegmentWorker,
    };

    /** Merge each still-open segment's xfers into workerSegXfers_. */
    void flushOpenSegmentsToXfers();

    /**
     * The serial end-of-run shadow sweep (finalize pending runs, fold
     * line-mode access totals), callable on its own by the segment
     * engine after the resolution merge.
     */
    void runFinalSweep();
    CommAggregates &
    row(vg::ContextId ctx)
    {
        return tables_.row(ctx);
    }

    /** @name Event bodies with explicit ambient state
     *
     * The per-event virtuals query the guest for the ambient state
     * (current context, call, virtual time, depth) and forward here;
     * processBatch() forwards the buffer's ambient lanes directly.
     */
    /// @{
    void readAccess(vg::Addr addr, unsigned size, vg::ContextId ctx,
                    vg::CallNum call, vg::Tick now);
    void writeAccess(vg::Addr addr, unsigned size, vg::ContextId ctx,
                     vg::CallNum call);
    void opAt(std::uint64_t iops, std::uint64_t flops, vg::ContextId ctx);
    void leaveAt(vg::ContextId resumed_ctx, vg::CallNum resumed_call,
                 std::size_t depth);
    void threadSwitchAt(vg::ThreadId tid, vg::ContextId ctx,
                        vg::CallNum call);
    void barrierAt(vg::ContextId ctx, vg::CallNum call);
    /// @}

    struct SegState;

    /** Flush a thread's open compute segment and start a new one. */
    void startSegment(SegState &state, vg::ContextId ctx,
                      vg::CallNum call, std::uint64_t pred_seq);

    /** Emit a thread's open compute segment (if any) to the trace. */
    void flushSegment(SegState &state);

    /** Resolve a predecessor through any skipped (empty) segments. */
    std::uint64_t resolvePred(std::uint64_t seq) const;

    /**
     * resolvePred() as of an earlier moment: only skip entries with an
     * insertion stamp below the bound are followed. The sharded fold
     * resolves X-record sources with the stamp captured when the
     * consuming segment was flushed, reproducing the serial flush-time
     * resolution even when further segments were skipped since.
     */
    std::uint64_t resolvePredAt(std::uint64_t seq,
                                std::uint64_t stamp_bound) const;

    /** Shed fidelity one rung at a time (see degradationLevel()). */
    void degrade(int failed_attempts);

    /**
     * Whether a read access must materialize the cold record of the
     * units it touches: only re-use tracking and line-mode access
     * totals ever write it. Writes never materialize cold (finalizing
     * an overwritten run only touches a cold record that already
     * exists). Computed once per access, before the shadow walk, so
     * the reference and span paths materialize identically even when
     * fidelity degrades mid-span.
     */
    bool
    readWantsCold() const
    {
        return collecting_ && classifyEnabled_ &&
               (reuseEnabled_ || config_.granularityShift > 0);
    }

    /** Common body writer behind saveState()/saveStateLegacy(). */
    void saveStateImpl(ByteSink &sink, std::uint8_t version);

    /**
     * Sharded mode: drain the workers and fold their partial tables —
     * rows, breakdowns, object stats, edges in global first-occurrence
     * order, and per-segment transfer maps spliced into the event
     * trace — into the authoritative state. Idempotent.
     */
    void foldShards();

    /**
     * Sharded checkpoint save: pull each open segment's shard-side
     * transfer map into its sequencer SegState so the serialized body
     * matches what a serial run would hold.
     */
    void mergeOpenSegXfers();

    SigilConfig config_;
    shadow::ShadowMemory shadow_;
    /**
     * Keeps the attached guest's MemoryGovernor alive as long as this
     * profiler (tools routinely outlive their guest in tests), so the
     * raw governor pointer installed into shadow_ stays valid.
     */
    std::shared_ptr<sigil::MemoryGovernor> governorHold_;

    /** False while ROI-only collection is outside the ROI. */
    bool collecting_ = true;

    /** @name Degradation ladder state */
    /// @{
    int degradationLevel_ = 0;
    /** config_.collectReuse until degradation level 1. */
    bool reuseEnabled_ = true;
    /** True until degradation level 2. */
    bool classifyEnabled_ = true;
    /// @}

    /** Aggregate rows, edges, breakdowns, object stats. */
    CommTables tables_;

    /** @name Open event-trace segments (one per guest thread) */
    /// @{
    EventTrace events_;
    std::uint64_t nextSeq_ = 1;

    /** Per-thread segment state; threads interleave in the trace. */
    struct SegState
    {
        bool open = false;
        ComputeEvent segment;
        /** Producer segment → unique bytes consumed by the segment. */
        std::unordered_map<std::uint64_t, std::uint64_t> xfers;
        /** Last segment of each active frame on this thread. */
        std::vector<std::uint64_t> frameLastSeq;
        /** The thread must pick up barrier ordering edges. */
        bool barrierPending = false;
    };

    SegState &seg() { return segStates_[currentTid_]; }

    std::vector<SegState> segStates_{1};
    vg::ThreadId currentTid_ = 0;

    /** A skipped empty segment: its predecessor + insertion stamp. */
    struct SkipInfo
    {
        std::uint64_t pred;
        /** Position in the skip sequence (see resolvePredAt). */
        std::uint64_t stamp;
    };

    /** Skipped empty segments: seq → forwarding info. */
    std::unordered_map<std::uint64_t, SkipInfo> skippedSegments_;
    std::uint64_t skipStamp_ = 0;

    /** Every thread's last segment at the most recent barrier. */
    std::vector<std::uint64_t> barrierPreds_;
    /// @}

    /** @name Segment-parallel engine state (core/segment_engine.hh) */
    /// @{
    Mode mode_ = Mode::kSerial;

    /**
     * Deep copy of the control-flow state a worker inherits at a cut:
     * everything the event machinery reads besides guest state and the
     * shadow. Captured by the control scan at each cut boundary and
     * restored into the freshly constructed worker profiler.
     */
    struct ControlState
    {
        bool collecting = true;
        std::vector<SegState> segStates;
        vg::ThreadId currentTid = 0;
        std::uint64_t nextSeq = 1;
        std::unordered_map<std::uint64_t, SkipInfo> skippedSegments;
        std::uint64_t skipStamp = 0;
        std::vector<std::uint64_t> barrierPreds;
    };

    ControlState captureControlState() const;
    void restoreControlState(const ControlState &s);

    /**
     * One deferred shadow operation on a unit this worker never wrote:
     * either a read whose producer is unknown (classified during the
     * resolution pass against the merged predecessor shadow) or the
     * first local overwrite of such a unit (which must finalize the
     * predecessor's pending re-use run). Replayed in log order.
     */
    struct BoundaryOp
    {
        enum class Kind : std::uint8_t
        {
            kRead,
            kTerminate,
        };
        Kind kind = Kind::kRead;
        bool collecting = true;
        /** Cold-materialization decision of the originating access. */
        bool wantCold = false;
        std::uint64_t unit = 0;
        /** Bytes of the access covered by this unit (reads). */
        std::uint64_t w = 0;
        /** Worker-local reader stamp id (remapped at resolution). */
        shadow::StampId localReader = 0;
        vg::ContextId ctx = vg::kInvalidContext;
        vg::Tick tick = 0;
        vg::ThreadId tid = 0;
        std::uint64_t segSeq = 0;
        /** Worker-local unit-touch epoch (orders edge creation). */
        std::uint64_t epoch = 0;
    };

    /** Worker mode: deferred boundary operations, in access order. */
    std::vector<BoundaryOp> boundaryLog_;

    /** Worker mode: unit-touch counter tagging edge first occurrences. */
    std::uint64_t epochCounter_ = 0;

    /** Worker mode: index of the trace segment this worker replays. */
    std::uint64_t segmentIndex_ = 0;

    /**
     * Worker mode: per consuming segment, producer segment → unique
     * bytes from locally-owned units. Folded (with the resolution
     * pass's boundary transfers) into the control scan's pending
     * records.
     */
    std::unordered_map<std::uint64_t,
                       std::unordered_map<std::uint64_t, std::uint64_t>>
        workerSegXfers_;

    /** Version-4 checkpoint trailer (set by the segment engine). */
    std::optional<SegmentProvenance> provenance_;
    /// @}

    /** @name Sharded engine state (null ⇒ fully serial) */
    /// @{
    std::unique_ptr<ShardEngine> engine_;

    /** Routed or flushed work not yet folded into tables_/events_. */
    bool needsFold_ = false;

    /**
     * Emitted C records whose X records wait for the fold: the
     * transfer bytes live shard-side until the queues drain.
     */
    struct PendingSeg
    {
        /** Index of the segment's C record in events_.records. */
        std::size_t recordPos;
        std::uint64_t seq;
        /** skipStamp_ at flush time (see resolvePredAt). */
        std::uint64_t skipStamp;
        /** Sequencer-side xfers (barrier edges, restored entries). */
        std::unordered_map<std::uint64_t, std::uint64_t> xfers;
    };
    std::vector<PendingSeg> pendingSegs_;

    /**
     * Segments flushed without emission (ROI off): their shard-side
     * transfer maps are discarded at the fold, as the serial path
     * discards state.xfers.
     */
    std::vector<std::uint64_t> discardedSeqs_;

    std::vector<unsigned> foldOrder_;
    /// @}

    static const CommAggregates kZero;
};

} // namespace sigil::core

#endif // SIGIL_CORE_SIGIL_PROFILER_HH
