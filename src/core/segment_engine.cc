#include "segment_engine.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <unordered_map>
#include <utility>

#include "core/comm_tables.hh"
#include "support/logging.hh"
#include "support/serial.hh"
#include "vg/trace_io.hh"

namespace sigil::core {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t
nsSince(Clock::time_point start)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - start)
            .count());
}

/** SGB2 frame tag carrying event payload (vg/trace_io.cc). */
constexpr std::uint8_t kEventFrameTag = 0x02;

/**
 * Interior cut targets: byte offsets of event frames that split the
 * event stream into `segments` near-equal slices. The seek-index
 * trailer gives them in O(index); a trace without one (older recorder,
 * damaged tail) costs one sequential frame-chain scan. Targets are
 * advisory — the control scan cuts at the first frame boundary it
 * observes at or past each target, so a damaged region spanning a
 * target simply shifts the cut to the next decodable frame.
 */
std::vector<std::uint64_t>
planCutTargets(std::string_view trace, unsigned segments,
               bool &used_seek_index)
{
    struct Frame
    {
        std::uint64_t offset;
        std::uint64_t events;
    };
    std::vector<Frame> frames;
    std::vector<vg::SeekIndexEntry> index = vg::readSeekIndex(trace);
    used_seek_index = !index.empty();
    if (used_seek_index) {
        frames.reserve(index.size());
        for (const vg::SeekIndexEntry &e : index)
            frames.push_back(Frame{e.offset, e.eventCount});
    } else {
        for (const vg::Sgb2BlockInfo &b : vg::scanSgb2Blocks(trace)) {
            if (b.tag == kEventFrameTag)
                frames.push_back(Frame{b.offset, b.eventCount});
        }
    }
    std::vector<std::uint64_t> targets;
    if (segments <= 1 || frames.size() < 2)
        return targets;

    std::uint64_t total = 0;
    for (const Frame &f : frames)
        total += f.events;
    targets.reserve(segments - 1);
    std::uint64_t cum = 0;
    std::size_t next = 0;
    for (const Frame &f : frames) {
        while (next + 1 < segments &&
               cum >= total * (next + 1) / segments) {
            if (targets.empty() || targets.back() != f.offset)
                targets.push_back(f.offset);
            ++next;
        }
        cum += f.events;
    }
    return targets;
}

} // namespace

/**
 * Implementation of the segment-parallel replay (declared as a friend
 * of SigilProfiler so the control scan, the workers, and the ordered
 * resolution merge can drive the profiler's private machinery).
 */
class SegmentEngine
{
  public:
    static SegmentResult run(std::string_view trace, vg::Guest &guest,
                             SigilProfiler &profiler,
                             const SegmentOptions &opts);

  private:
    /** State captured by the control scan at one cut boundary. */
    struct Capture
    {
        std::uint64_t offset = 0;
        std::string guestBlob;
        std::string readerBlob;
        SigilProfiler::ControlState control;
    };

    static bool eligibleForSpeculation(const vg::Guest &guest,
                                       const SigilProfiler &profiler,
                                       const SegmentOptions &opts);
    static SegmentResult runChained(std::string_view trace,
                                    vg::Guest &guest,
                                    SigilProfiler &profiler,
                                    const SegmentOptions &opts,
                                    std::vector<std::uint64_t> targets,
                                    SegmentResult result);
    static SegmentResult
    runSpeculative(std::string_view trace, vg::Guest &guest,
                   SigilProfiler &profiler, const SegmentOptions &opts,
                   const std::vector<std::uint64_t> &targets,
                   SegmentResult result);
    static void resolveMerge(SigilProfiler &ctl,
                             std::vector<std::unique_ptr<SigilProfiler>>
                                 &workers);
};

bool
SegmentEngine::eligibleForSpeculation(const vg::Guest &guest,
                                      const SigilProfiler &profiler,
                                      const SegmentOptions &opts)
{
    const SigilConfig &cfg = profiler.config();
    const vg::GuestConfig &gc = guest.config();
    // The speculative path needs a deterministic, unlimited serial
    // shadow: no chunk cap (eviction decisions depend on global access
    // order), no object attribution (allocation indexes are resolved
    // against live guest state, not logged), per-event dispatch (the
    // worker guests are rebuilt from snapshots, which batching guests
    // do not support), and no shard engine under the same profiler.
    // Checkpointed runs go chained so every snapshot stays a plain
    // serial-session snapshot.
    return opts.segments > 1 && cfg.maxShadowChunks == 0 &&
           !cfg.collectObjects && !cfg.referenceShadowPath &&
           gc.shardCount <= 1 && !gc.batchEvents && !gc.asyncTools &&
           gc.memoryBudgetBytes == 0 && opts.checkpoint.path.empty() &&
           !profiler.shadowMemory().hasAllocationFailureInjector();
}

SegmentResult
SegmentEngine::run(std::string_view trace, vg::Guest &guest,
                   SigilProfiler &profiler, const SegmentOptions &opts)
{
    SegmentResult result;
    const Clock::time_point plan_start = Clock::now();
    std::vector<std::uint64_t> targets =
        planCutTargets(trace, opts.segments, result.usedSeekIndex);
    result.timing.planNs = nsSince(plan_start);

    // No interior cuts (one segment requested, or a trace too small or
    // too damaged to partition) degenerates to a plain serial scan —
    // the chained path, without its snapshot and merge overheads.
    if (targets.empty() ||
        !eligibleForSpeculation(guest, profiler, opts)) {
        return runChained(trace, guest, profiler, opts,
                          std::move(targets), std::move(result));
    }
    return runSpeculative(trace, guest, profiler, opts, targets,
                          std::move(result));
}

SegmentResult
SegmentEngine::runChained(std::string_view trace, vg::Guest &guest,
                          SigilProfiler &profiler,
                          const SegmentOptions &opts,
                          std::vector<std::uint64_t> targets,
                          SegmentResult result)
{
    result.speculative = false;
    CheckpointStats &st = result.checkpoint;

    const detail::TraceBinding binding = detail::TraceBinding::of(trace);
    vg::BinaryReplaySession session(trace, guest, opts.replay);

    const bool checkpointing = !opts.checkpoint.path.empty();
    if (checkpointing) {
        for (const std::string &candidate :
             {opts.checkpoint.path, opts.checkpoint.path + ".prev"}) {
            auto payload = detail::loadCheckpointFile(candidate);
            if (!payload)
                continue;
            if (detail::restoreSnapshot(*payload, binding, guest,
                                        profiler, session)) {
                st.resumed = true;
                st.resumeBlocks = session.blocksProcessed();
                break;
            }
            warn("segment engine: checkpoint %s does not match this "
                 "replay, ignoring",
                 candidate.c_str());
        }
    }

    // A resume may land mid-stream: cuts already behind the reader
    // collapse into segment 0 of this run.
    std::size_t next_cut = 0;
    while (next_cut < targets.size() &&
           session.nextOffset() >= targets[next_cut])
        ++next_cut;

    if (checkpointing) {
        profiler.setSegmentProvenance(SigilProfiler::SegmentProvenance{
            targets.size() + 1, next_cut, session.nextOffset()});
    }

    const bool periodic =
        checkpointing && opts.checkpoint.intervalBlocks != 0;
    std::uint64_t next_checkpoint =
        periodic
            ? session.blocksProcessed() + opts.checkpoint.intervalBlocks
            : 0;

    const auto write_snapshot = [&]() {
        std::uint64_t bytes = detail::writeCheckpointFile(
            opts.checkpoint.path,
            detail::buildSnapshot(binding, guest, profiler, session));
        if (bytes != 0) {
            ++st.checkpointsWritten;
            st.lastCheckpointBytes = bytes;
        }
    };

    Clock::time_point seg_start = Clock::now();
    while (session.step()) {
        if (next_cut < targets.size() &&
            session.nextOffset() >= targets[next_cut]) {
            result.timing.workerNs.push_back(nsSince(seg_start));
            seg_start = Clock::now();
            do {
                ++next_cut;
            } while (next_cut < targets.size() &&
                     session.nextOffset() >= targets[next_cut]);
            if (checkpointing) {
                profiler.setSegmentProvenance(
                    SigilProfiler::SegmentProvenance{
                        targets.size() + 1, next_cut,
                        session.nextOffset()});
                write_snapshot();
                if (periodic) {
                    next_checkpoint = session.blocksProcessed() +
                                      opts.checkpoint.intervalBlocks;
                }
            }
        }
        if (periodic && session.blocksProcessed() >= next_checkpoint) {
            write_snapshot();
            next_checkpoint = session.blocksProcessed() +
                              opts.checkpoint.intervalBlocks;
        }
    }
    result.timing.workerNs.push_back(nsSince(seg_start));
    result.segmentsUsed =
        static_cast<unsigned>(result.timing.workerNs.size());
    result.report = session.finish();
    return result;
}

SegmentResult
SegmentEngine::runSpeculative(std::string_view trace, vg::Guest &guest,
                              SigilProfiler &profiler,
                              const SegmentOptions &opts,
                              const std::vector<std::uint64_t> &targets,
                              SegmentResult result)
{
    result.speculative = true;

    // ---- Phase 1: control scan -------------------------------------
    // One serial pass with the caller's guest + profiler in control
    // mode: it sequences (ROI flag, thread switches, segment chain and
    // emit/skip decisions, C records + pending placeholders) without
    // touching rows or shadow, and snapshots guest + reader + control
    // state at every observed cut boundary. Its report is the replay's
    // report — error handling, salvage, resyncs all happen here, and
    // the captured reader states make every worker retrace the exact
    // same frame decisions.
    const Clock::time_point scan_start = Clock::now();
    profiler.mode_ = SigilProfiler::Mode::kControlScan;
    vg::BinaryReplaySession session(trace, guest, opts.replay);

    std::vector<Capture> captures;
    const auto capture = [&]() {
        Capture c;
        c.offset = session.nextOffset();
        ByteSink gs;
        guest.saveState(gs);
        c.guestBlob = gs.take();
        ByteSink rs;
        session.saveReaderState(rs);
        c.readerBlob = rs.take();
        c.control = profiler.captureControlState();
        captures.push_back(std::move(c));
    };
    capture(); // segment 0 starts at the head of the stream
    std::size_t next_target = 0;
    for (;;) {
        while (next_target < targets.size() &&
               session.nextOffset() >= targets[next_target]) {
            if (session.nextOffset() != captures.back().offset)
                capture();
            ++next_target;
        }
        if (!session.step())
            break;
    }
    result.report = session.finish();
    result.timing.scanNs = nsSince(scan_start);

    // ---- Phase 2: speculative segment workers ----------------------
    const std::size_t n = captures.size();
    result.segmentsUsed = static_cast<unsigned>(n);
    result.timing.workerNs.assign(n, 0);
    std::vector<std::unique_ptr<SigilProfiler>> wprofs(n);
    std::vector<std::unique_ptr<vg::Guest>> wguests(n);

    std::atomic<std::size_t> next_idx{0};
    const auto worker_loop = [&]() {
        for (;;) {
            const std::size_t k = next_idx.fetch_add(1);
            if (k >= n)
                return;
            const Clock::time_point t0 = Clock::now();
            auto prof =
                std::make_unique<SigilProfiler>(profiler.config());
            prof->mode_ = SigilProfiler::Mode::kSegmentWorker;
            prof->segmentIndex_ = k;
            auto g = std::make_unique<vg::Guest>(guest.programName(),
                                                 guest.config());
            g->addTool(prof.get());
            ByteSource gsrc(captures[k].guestBlob);
            if (!g->restoreState(gsrc))
                panic("segment engine: guest snapshot failed to "
                      "restore into worker");
            prof->restoreControlState(captures[k].control);
            vg::BinaryReplaySession s(trace, *g, opts.replay);
            ByteSource rsrc(captures[k].readerBlob);
            if (s.restoreReaderState(rsrc)) {
                const std::uint64_t end = k + 1 < n
                                              ? captures[k + 1].offset
                                              : ~std::uint64_t{0};
                // The end offset is a position the control reader
                // actually reached, so the (deterministic) worker
                // reader lands on it exactly — even when salvage
                // resyncs around damage.
                while (s.nextOffset() < end && s.step()) {
                }
            }
            // A restore refusal means this fresh session errored at
            // construction — the control session, on the same bytes,
            // did too, and delivered nothing: an empty worker is the
            // serial outcome.
            prof->flushOpenSegmentsToXfers();
            wprofs[k] = std::move(prof);
            wguests[k] = std::move(g);
            result.timing.workerNs[k] = nsSince(t0);
        }
    };
    std::size_t nthreads =
        opts.threads != 0 ? std::min<std::size_t>(opts.threads, n) : n;
    if (nthreads <= 1) {
        worker_loop();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(nthreads);
        for (std::size_t t = 0; t < nthreads; ++t)
            pool.emplace_back(worker_loop);
        for (std::thread &t : pool)
            t.join();
    }

    // ---- Phase 3: ordered resolution merge -------------------------
    const Clock::time_point resolve_start = Clock::now();
    resolveMerge(profiler, wprofs);
    result.timing.resolveNs = nsSince(resolve_start);
    return result;
}

void
SegmentEngine::resolveMerge(
    SigilProfiler &ctl,
    std::vector<std::unique_ptr<SigilProfiler>> &workers)
{
    const ClassifyEnv env{ctl.reuseEnabled_, ctl.classifyEnabled_,
                          ctl.config_.collectEvents,
                          ctl.config_.granularityShift};

    // Edges from every segment, tagged for a global re-sort into the
    // serial first-seen order: epochs are worker-local unit-touch
    // counters (unique per segment across both the worker's own table
    // and the boundary-resolution table), so (segment, epoch) totally
    // orders edge creation exactly as one serial pass would.
    struct TaggedEdge
    {
        std::uint64_t seg;
        std::uint64_t epoch;
        CommEdge edge;
    };
    struct TaggedThreadEdge
    {
        std::uint64_t seg;
        std::uint64_t epoch;
        ThreadCommEdge edge;
    };
    std::vector<TaggedEdge> new_edges;
    std::vector<TaggedThreadEdge> new_tedges;

    // Consuming segment seq → (producer seq → unique bytes), summed
    // over worker-local observations and boundary resolution.
    std::unordered_map<std::uint64_t,
                       std::unordered_map<std::uint64_t, std::uint64_t>>
        acc_xfers;

    for (std::size_t k = 0; k < workers.size(); ++k) {
        SigilProfiler &w = *workers[k];

        // (1) Stamp union. Folding segments in stream order and
        // interning each worker's stamps in local id order reproduces
        // the serial table's first-occurrence order (and its byte
        // accounting). Unresolved placeholders live in a separate lane
        // and never enter the merged table.
        const shadow::StampTable &wst = w.shadow_.stamps();
        std::vector<shadow::StampId> remap_w(wst.writerCount());
        for (std::size_t i = 1; i < wst.writerCount(); ++i) {
            remap_w[i] = ctl.shadow_.internWriter(
                wst.writer(static_cast<shadow::StampId>(i)));
        }
        std::vector<shadow::StampId> remap_r(wst.readerCount());
        for (std::size_t i = 1; i < wst.readerCount(); ++i) {
            remap_r[i] = ctl.shadow_.internReader(
                wst.reader(static_cast<shadow::StampId>(i)));
        }

        // (2) Boundary-log replay, in access order, against the merged
        // predecessor shadow — BEFORE this segment's delta import, so
        // every unresolved read classifies against the producer that
        // was live when the segment started.
        CommTables res;
        std::unordered_map<
            std::uint64_t,
            std::unordered_map<std::uint64_t, std::uint64_t>>
            res_xfers;
        std::uint64_t unique_unused = 0;
        for (const SigilProfiler::BoundaryOp &e : w.boundaryLog_) {
            if (e.kind == SigilProfiler::BoundaryOp::Kind::kRead) {
                shadow::ShadowRef ref =
                    ctl.shadow_.lookup(e.unit, e.wantCold);
                AccessStamp a;
                a.ctx = e.ctx;
                a.tick = e.tick;
                a.tid = e.tid;
                a.segSeq = e.segSeq;
                a.epoch = e.epoch;
                a.collecting = e.collecting;
                commReadUnit(res, env, ctl.shadow_.stamps(), ref.hot,
                             ref.cold, e.w, a, remap_r[e.localReader],
                             &res_xfers[e.segSeq], unique_unused);
            } else {
                // First local overwrite of a never-owned unit: close
                // the predecessor's pending re-use run, as the serial
                // write path would have. The new owner stamp arrives
                // with the delta import below.
                shadow::ShadowRef ref = ctl.shadow_.lookup(e.unit, false);
                if (ctl.reuseEnabled_ && ref.cold != nullptr &&
                    ref.hot.reader != 0) {
                    commFinalizeRun(res, ctl.reuseEnabled_,
                                    ctl.shadow_.stamps(), ref.hot,
                                    ref.cold);
                }
            }
        }
        w.boundaryLog_.clear();

        // (3) Delta import: owned units overwrite the merged shadow
        // with their remapped final stamps; line-mode access totals
        // add (boundary reads already counted theirs into the merged
        // cold record during replay), and a still-pending local run
        // carries over for the final sweep.
        w.shadow_.forEach(
            [&](std::uint64_t unit, shadow::ShadowRef obj) {
                if (obj.hot.writer == 0 ||
                    shadow::StampTable::isUnresolved(obj.hot.writer))
                    return;
                shadow::ShadowRef dst =
                    ctl.shadow_.lookup(unit, obj.cold != nullptr);
                dst.hot.writer = remap_w[obj.hot.writer];
                dst.hot.reader =
                    obj.hot.reader != 0 ? remap_r[obj.hot.reader] : 0;
                if (obj.cold != nullptr) {
                    dst.cold->totalAccesses += obj.cold->totalAccesses;
                    if (obj.cold->runReads != 0) {
                        dst.cold->runFirstRead = obj.cold->runFirstRead;
                        dst.cold->runLastRead = obj.cold->runLastRead;
                        dst.cold->runReads = obj.cold->runReads;
                    }
                }
            },
            shadow::SweepFilter::All);

        // (4) Merge this segment's tables (worker-local + resolved).
        for (CommTables *src : {&w.tables_, &res}) {
            for (std::size_t c = 0; c < src->rows.size(); ++c) {
                mergeAggregates(
                    ctl.tables_.row(static_cast<vg::ContextId>(c)),
                    src->rows[c]);
            }
            ctl.tables_.unitReuseBreakdown.merge(src->unitReuseBreakdown);
            ctl.tables_.lineReuseBreakdown.merge(src->lineReuseBreakdown);
            for (const OrderedCommEdge &oe : src->edges)
                new_edges.push_back(TaggedEdge{k, oe.firstEpoch, oe.edge});
            for (const OrderedThreadEdge &oe : src->threadEdges) {
                new_tedges.push_back(
                    TaggedThreadEdge{k, oe.firstEpoch, oe.edge});
            }
        }
        for (const auto &[seq, xfers] : w.workerSegXfers_) {
            auto &dst = acc_xfers[seq];
            for (const auto &[src, bytes] : xfers)
                dst[src] += bytes;
        }
        w.workerSegXfers_.clear();
        for (const auto &[seq, xfers] : res_xfers) {
            auto &dst = acc_xfers[seq];
            for (const auto &[src, bytes] : xfers)
                dst[src] += bytes;
        }
        w.tables_ = CommTables{};
    }

    // Edges into the control tables in global first-seen order (the
    // control scan contributed none, so vector order = serial order).
    const auto edge_less = [](const auto &a, const auto &b) {
        return a.seg != b.seg ? a.seg < b.seg : a.epoch < b.epoch;
    };
    std::sort(new_edges.begin(), new_edges.end(), edge_less);
    ctl.tables_.edges.reserve(ctl.tables_.edges.size() +
                              new_edges.size());
    for (const TaggedEdge &te : new_edges) {
        std::uint64_t key =
            CommTables::edgeKey(te.edge.producer, te.edge.consumer);
        auto [it, inserted] = ctl.tables_.edgeIndex.try_emplace(
            key, ctl.tables_.edges.size());
        if (inserted) {
            ctl.tables_.edges.push_back(
                OrderedCommEdge{te.edge, te.epoch});
        } else {
            CommEdge &dst = ctl.tables_.edges[it->second].edge;
            dst.uniqueBytes += te.edge.uniqueBytes;
            dst.nonuniqueBytes += te.edge.nonuniqueBytes;
        }
    }
    std::sort(new_tedges.begin(), new_tedges.end(), edge_less);
    ctl.tables_.threadEdges.reserve(ctl.tables_.threadEdges.size() +
                                    new_tedges.size());
    for (const TaggedThreadEdge &te : new_tedges) {
        std::uint64_t key = CommTables::threadEdgeKey(te.edge.producer,
                                                      te.edge.consumer);
        auto [it, inserted] = ctl.tables_.threadEdgeIndex.try_emplace(
            key, ctl.tables_.threadEdges.size());
        if (inserted) {
            ctl.tables_.threadEdges.push_back(
                OrderedThreadEdge{te.edge, te.epoch});
        } else {
            ThreadCommEdge &dst =
                ctl.tables_.threadEdges[it->second].edge;
            dst.uniqueBytes += te.edge.uniqueBytes;
            dst.nonuniqueBytes += te.edge.nonuniqueBytes;
        }
    }

    if (ctl.config_.collectEvents) {
        // Transfers charged to segments the control scan skipped are
        // discarded, as the serial flush discards state.xfers.
        for (std::uint64_t seq : ctl.discardedSeqs_)
            acc_xfers.erase(seq);
        ctl.discardedSeqs_.clear();

        // Splice the X records before their C records, exactly like
        // the sharded fold: raw-key sort, flush-time predecessor
        // resolution via the stamp bound captured at emission.
        std::size_t extra = 0;
        for (SigilProfiler::PendingSeg &p : ctl.pendingSegs_) {
            auto it = acc_xfers.find(p.seq);
            if (it != acc_xfers.end()) {
                p.xfers.reserve(p.xfers.size() + it->second.size());
                for (const auto &[src, bytes] : it->second)
                    p.xfers[src] += bytes;
                acc_xfers.erase(it);
            }
            extra += p.xfers.size();
        }
        std::vector<EventRecord> rebuilt;
        rebuilt.reserve(ctl.events_.records.size() + extra);
        std::size_t next = 0;
        for (std::size_t pos = 0; pos < ctl.events_.records.size();
             ++pos) {
            while (next < ctl.pendingSegs_.size() &&
                   ctl.pendingSegs_[next].recordPos == pos) {
                SigilProfiler::PendingSeg &p = ctl.pendingSegs_[next];
                std::vector<std::pair<std::uint64_t, std::uint64_t>>
                    ordered(p.xfers.begin(), p.xfers.end());
                std::sort(ordered.begin(), ordered.end());
                for (const auto &[src, bytes] : ordered) {
                    XferEvent x;
                    x.srcSeq = ctl.resolvePredAt(src, p.skipStamp);
                    x.dstSeq = p.seq;
                    x.bytes = bytes;
                    rebuilt.push_back(EventRecord::makeXfer(x));
                }
                ++next;
            }
            rebuilt.push_back(ctl.events_.records[pos]);
        }
        ctl.events_.records = std::move(rebuilt);
        ctl.pendingSegs_.clear();
    }

    // The serial end-of-run sweep over the now-complete merged shadow
    // finalizes surviving runs and folds line-mode access totals.
    ctl.runFinalSweep();
    ctl.mode_ = SigilProfiler::Mode::kSerial;
}

SegmentResult
replaySegmented(std::string_view trace, vg::Guest &guest,
                SigilProfiler &profiler, const SegmentOptions &opts)
{
    return SegmentEngine::run(trace, guest, profiler, opts);
}

SegmentResult
replaySegmentedFile(const std::string &tracePath, vg::Guest &guest,
                    SigilProfiler &profiler, const SegmentOptions &opts)
{
    vg::MappedTraceFile file(tracePath);
    if (!file.ok()) {
        SegmentResult result;
        vg::TraceError e;
        e.cause = vg::TraceErrorCause::Io;
        e.detail = file.errorDetail();
        result.report.error = std::move(e);
        return result;
    }
    return SegmentEngine::run(file.view(), guest, profiler, opts);
}

} // namespace sigil::core
