#include "report.hh"

#include <algorithm>
#include <vector>

#include "support/logging.hh"
#include "support/table.hh"

namespace sigil::core {

std::string
flatReport(const SigilProfile &sigil, const cg::CgProfile *cg,
           std::size_t top_n)
{
    if (cg != nullptr && cg->rows.size() != sigil.rows.size())
        fatal("flatReport: mismatched profiles");

    struct Entry
    {
        const SigilRow *row;
        std::uint64_t inclCost;
        std::uint64_t selfCost;
    };
    std::vector<Entry> entries;
    for (const SigilRow &row : sigil.rows) {
        Entry e;
        e.row = &row;
        if (cg != nullptr) {
            const cg::CgRow &c =
                cg->rows[static_cast<std::size_t>(row.ctx)];
            e.inclCost = c.incl.cycleEstimate();
            e.selfCost = c.self.cycleEstimate();
        } else {
            e.inclCost = e.selfCost = row.agg.iops + row.agg.flops;
        }
        entries.push_back(e);
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  if (a.inclCost != b.inclCost)
                      return a.inclCost > b.inclCost;
                  return a.row->displayName < b.row->displayName;
              });

    std::uint64_t total = 0;
    for (const Entry &e : entries) {
        if (e.row->parent == vg::kInvalidContext)
            total += e.inclCost;
    }

    TextTable table;
    table.header({"incl%", "self", "calls", "uniq_in", "nonuniq_in",
                  "uniq_out", "context"});
    std::size_t shown = 0;
    for (const Entry &e : entries) {
        if (shown++ >= top_n)
            break;
        double pct = total == 0 ? 0.0
                                : 100.0 * static_cast<double>(e.inclCost) /
                                      static_cast<double>(total);
        const CommAggregates &a = e.row->agg;
        table.addRow({strformat("%.1f", pct),
                      std::to_string(e.selfCost),
                      std::to_string(a.calls),
                      std::to_string(a.uniqueInputBytes),
                      std::to_string(a.nonuniqueInputBytes),
                      std::to_string(a.uniqueOutputBytes),
                      e.row->path});
    }
    return table.render();
}

std::string
commSummary(const SigilProfile &sigil)
{
    std::uint64_t ul = 0, nul = 0, ui = 0, nui = 0, uo = 0, it = 0,
                  nit = 0;
    for (const SigilRow &row : sigil.rows) {
        const CommAggregates &a = row.agg;
        ul += a.uniqueLocalBytes;
        nul += a.nonuniqueLocalBytes;
        ui += a.uniqueInputBytes;
        nui += a.nonuniqueInputBytes;
        uo += a.uniqueOutputBytes;
        it += a.uniqueInterThreadBytes;
        nit += a.nonuniqueInterThreadBytes;
    }
    std::uint64_t total = ul + nul + ui + nui;
    auto pct = [&](std::uint64_t v) {
        return total == 0 ? 0.0
                          : 100.0 * static_cast<double>(v) /
                                static_cast<double>(total);
    };

    std::string out;
    out += strformat("total classified read bytes : %llu\n",
                     static_cast<unsigned long long>(total));
    out += strformat("  unique input     : %llu (%.1f%%)\n",
                     static_cast<unsigned long long>(ui), pct(ui));
    out += strformat("  re-read input    : %llu (%.1f%%)\n",
                     static_cast<unsigned long long>(nui), pct(nui));
    out += strformat("  unique local     : %llu (%.1f%%)\n",
                     static_cast<unsigned long long>(ul), pct(ul));
    out += strformat("  re-read local    : %llu (%.1f%%)\n",
                     static_cast<unsigned long long>(nul), pct(nul));
    out += strformat("unique output attributions  : %llu\n",
                     static_cast<unsigned long long>(uo));
    if (it + nit > 0) {
        out += strformat("cross-thread bytes          : %llu unique, "
                         "%llu re-read\n",
                         static_cast<unsigned long long>(it),
                         static_cast<unsigned long long>(nit));
    }
    const BoundsHistogram &h = sigil.unitReuseBreakdown;
    if (h.totalCount() > 0) {
        out += "re-use breakdown (per consuming call): ";
        for (std::size_t i = 0; i < h.numBins(); ++i) {
            out += strformat("%s=%.1f%%%s", h.binLabel(i).c_str(),
                             100.0 * h.binFraction(i),
                             i + 1 < h.numBins() ? ", " : "\n");
        }
    }
    return out;
}

} // namespace sigil::core
