/**
 * @file
 * Two-level shadow memory.
 *
 * Holds one ShadowObject per shadowed unit (byte, or cache line in
 * line-granularity mode) of the guest address space, following
 * Nethercote and Seward's design: a first-level directory indexed by the
 * high bits of the unit index, pointing at lazily created second-level
 * chunks of shadow objects. Chunks are created the first time their
 * address range is touched.
 *
 * An optional memory limit enables the paper's FIFO reclamation: when
 * the number of live chunks would exceed the limit, the least recently
 * touched chunk is evicted (its pending re-use state is handed to an
 * eviction handler first, so statistics lose only precision, not mass).
 */

#ifndef SIGIL_SHADOW_SHADOW_MEMORY_HH
#define SIGIL_SHADOW_SHADOW_MEMORY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "vg/types.hh"

namespace sigil::shadow {

/**
 * Shadow state of one shadowed unit (Table I of the paper).
 *
 * Baseline fields identify the producer (last writer) and last consumer
 * (last reader, with its call number); re-use mode additionally tracks
 * the current re-use run: how many times the last reader has read this
 * unit and the first/last access timestamps of that run.
 */
struct ShadowObject
{
    vg::ContextId lastWriterCtx = vg::kInvalidContext;
    vg::ContextId lastReaderCtx = vg::kInvalidContext;
    vg::CallNum lastWriterCall = 0;
    vg::CallNum lastReaderCall = 0;

    /** Event-trace segment that produced the current value. */
    std::uint64_t lastWriterSeq = 0;

    /** Thread that produced the current value. */
    vg::ThreadId lastWriterThread = 0;

    /** Reads by the last reader in the current re-use run. */
    std::uint32_t runReads = 0;
    /** Timestamp of the run's first and most recent read. */
    vg::Tick runFirstRead = 0;
    vg::Tick runLastRead = 0;

    /** Line-granularity mode: total accesses to this unit, ever. */
    std::uint64_t totalAccesses = 0;

    bool
    everWritten() const
    {
        return lastWriterCtx != vg::kInvalidContext;
    }
};

/** Allocation / eviction statistics (drives the memory-usage figure). */
struct ShadowStats
{
    std::uint64_t chunksAllocated = 0;
    std::uint64_t chunksLive = 0;
    std::uint64_t chunksPeak = 0;
    std::uint64_t evictions = 0;

    std::uint64_t
    peakBytes(std::size_t chunk_bytes) const
    {
        return chunksPeak * chunk_bytes;
    }
};

/** The two-level shadow table. */
class ShadowMemory
{
  public:
    /** Units per second-level chunk (2^12 = 4096). */
    static constexpr unsigned kChunkShift = 12;
    static constexpr std::size_t kChunkUnits = std::size_t{1}
                                               << kChunkShift;

    struct Config
    {
        /**
         * log2 of the shadowed unit size: 0 shadows every byte, 6
         * shadows 64-byte lines.
         */
        unsigned granularityShift = 0;

        /** Max live chunks; 0 means unlimited (no FIFO reclamation). */
        std::size_t maxChunks = 0;
    };

    ShadowMemory() : ShadowMemory(Config{}) {}
    explicit ShadowMemory(const Config &config);

    /** Called with each live object of a chunk about to be evicted. */
    using EvictionHandler =
        std::function<void(std::uint64_t unit, ShadowObject &obj)>;

    void setEvictionHandler(EvictionHandler handler);

    /** Unit index covering a guest address. */
    std::uint64_t
    unitOf(vg::Addr addr) const
    {
        return addr >> granularityShift_;
    }

    /** Unit index of the last unit covering [addr, addr+size). */
    std::uint64_t
    lastUnitOf(vg::Addr addr, unsigned size) const
    {
        return (addr + (size ? size - 1 : 0)) >> granularityShift_;
    }

    unsigned granularityShift() const { return granularityShift_; }

    /** Shadow unit size in guest bytes. */
    unsigned unitBytes() const { return 1u << granularityShift_; }

    /**
     * Locate (creating if needed) the shadow object of a unit, marking
     * its chunk as most recently touched. May evict another chunk when
     * a memory limit is configured.
     */
    ShadowObject &lookup(std::uint64_t unit);

    /** Locate without creating; nullptr if the chunk does not exist. */
    ShadowObject *find(std::uint64_t unit);

    /**
     * Visit every live shadow object (used for the end-of-run sweep
     * that finalizes pending re-use runs).
     */
    void forEach(const EvictionHandler &visitor);

    const ShadowStats &stats() const { return stats_; }

    /** Host bytes of one chunk, for memory accounting. */
    static constexpr std::size_t
    chunkBytes()
    {
        return kChunkUnits * sizeof(ShadowObject);
    }

    /** Current host bytes held by live chunks. */
    std::uint64_t liveBytes() const
    {
        return stats_.chunksLive * chunkBytes();
    }

    /** Peak host bytes ever held. */
    std::uint64_t peakBytes() const
    {
        return stats_.chunksPeak * chunkBytes();
    }

  private:
    struct Chunk
    {
        std::uint64_t base; // first unit index covered
        std::uint64_t lastTouch = 0;
        std::unique_ptr<ShadowObject[]> objects;
    };

    Chunk &chunkFor(std::uint64_t unit);
    void evictOldest();

    unsigned granularityShift_;
    std::size_t maxChunks_;
    std::unordered_map<std::uint64_t, Chunk> directory_;
    /** One-entry lookup cache for the common sequential-access case. */
    Chunk *lastChunk_ = nullptr;
    std::uint64_t lastChunkIndex_ = ~0ull;
    std::uint64_t touchClock_ = 0;
    EvictionHandler evictionHandler_;
    ShadowStats stats_;
};

} // namespace sigil::shadow

#endif // SIGIL_SHADOW_SHADOW_MEMORY_HH
