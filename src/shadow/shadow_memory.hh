/**
 * @file
 * Two-level shadow memory with a span-oriented, stamp-compressed hot
 * path.
 *
 * Holds shadow state per shadowed unit (byte, or cache line in
 * line-granularity mode) of the guest address space, following
 * Nethercote and Seward's design: a first-level directory indexed by the
 * high bits of the unit index, pointing at lazily created second-level
 * chunks of shadow objects. Chunks are created the first time their
 * address range is touched.
 *
 * Per chunk the state is stored as a structure-of-arrays split:
 *  - a *hot* array (ShadowHot): two 32-bit stamp ids per unit — the
 *    interned producer and last-consumer identities (see
 *    stamp_table.hh). Every traced access reads or writes this record;
 *    at 8 bytes per unit a contiguous span write is a word fill.
 *  - a *cold* array (ShadowCold): re-use run state and line-mode access
 *    totals. The array is allocated lazily, per chunk, the first time a
 *    client asks for it (want_cold) — baseline-mode runs never pay for
 *    it at all;
 *  - a *touched bitmap*: one bit per unit ever returned to a client, so
 *    end-of-run sweeps and eviction handlers visit only units whose
 *    state can differ from the default instead of all kChunkUnits.
 *
 * Clients that walk a contiguous unit range should use span(), which
 * resolves each chunk once and yields chunk-clamped runs, instead of
 * calling lookup() per unit.
 *
 * An optional memory limit enables the paper's reclamation: when the
 * number of live chunks would exceed the limit, the least recently
 * touched chunk is evicted (its pending re-use state is handed to an
 * eviction handler first, so statistics lose only precision, not mass).
 * Recency is maintained with an intrusive doubly-linked list over the
 * chunks, making both the touch and the evict constant time.
 */

#ifndef SIGIL_SHADOW_SHADOW_MEMORY_HH
#define SIGIL_SHADOW_SHADOW_MEMORY_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "shadow/stamp_table.hh"
#include "support/mem_governor.hh"
#include "vg/types.hh"

namespace sigil::shadow {

/**
 * Hot shadow state of one shadowed unit (Table I of the paper),
 * stamp-compressed: the interned identity of the producer (last
 * writer) and of the last consumer (last reader, with its call
 * number). Id 0 is the null stamp, so a zero record means "never
 * written, never read" and `reader != 0` means a consumer identity is
 * recorded.
 */
struct ShadowHot
{
    StampId writer = 0;
    StampId reader = 0;
};

/**
 * Cold shadow state of one shadowed unit: the current re-use run (how
 * many times the last reader has read this unit and the first/last
 * access timestamps of that run) and the line-granularity access
 * total. Only re-use / line mode touches this record, so it lives in a
 * side array that is not even allocated until such a client asks for
 * it.
 */
struct ShadowCold
{
    /** Timestamp of the run's first and most recent read. */
    vg::Tick runFirstRead = 0;
    vg::Tick runLastRead = 0;
    /** Line-granularity mode: total accesses to this unit, ever. */
    std::uint64_t totalAccesses = 0;
    /** Reads by the last reader in the current re-use run. */
    std::uint32_t runReads = 0;
};

/**
 * Reference to the shadow state of one unit. cold is null when the
 * unit's chunk has no cold array (it was never requested with
 * want_cold); clients that only need it opportunistically — finalizing
 * a pending run that can only exist if cold exists — check for null.
 */
struct ShadowRef
{
    ShadowHot &hot;
    ShadowCold *cold;
};

/** Nullable variant of ShadowRef (find() result). */
struct ShadowPtr
{
    ShadowHot *hot = nullptr;
    ShadowCold *cold = nullptr;

    explicit operator bool() const { return hot != nullptr; }
};

/**
 * Which touched units a sweep visits. Sweeps whose visitor is a no-op
 * on some units (finalizing re-use runs never does anything to a unit
 * with no recorded reader, or in a chunk with no cold array) pass a
 * filter so the bit-scan loop skips them without a call through
 * std::function.
 */
enum class SweepFilter
{
    /** Every touched unit. */
    All,
    /** Only chunks that have a cold array (every touched unit in them). */
    ColdChunks,
    /** Only units with a recorded reader, in chunks with a cold array. */
    PendingRuns,
};

/** Allocation / eviction statistics (drives the memory-usage figure). */
struct ShadowStats
{
    std::uint64_t chunksAllocated = 0;
    std::uint64_t chunksLive = 0;
    std::uint64_t chunksPeak = 0;
    std::uint64_t evictions = 0;
    /** Injected (or real) chunk allocation failures survived. */
    std::uint64_t allocFailures = 0;

    /** Chunks currently holding a (lazily allocated) cold array. */
    std::uint64_t coldArraysLive = 0;

    /**
     * Actual allocated shadow bytes, now and at the high-water mark:
     * hot arrays + touched bitmaps of live chunks, cold arrays where
     * present, plus the stamp table's accounting share. Replaces the
     * old `chunksPeak * chunk_bytes` approximation, which over-counted
     * chunks that never materialized a cold array.
     */
    std::uint64_t bytesLive = 0;
    std::uint64_t bytesPeak = 0;

    std::uint64_t
    peakBytes() const
    {
        return bytesPeak;
    }
};

/** The two-level shadow table. */
class ShadowMemory
{
  public:
    /** Units per second-level chunk (2^12 = 4096). */
    static constexpr unsigned kChunkShift = 12;
    static constexpr std::size_t kChunkUnits = std::size_t{1}
                                               << kChunkShift;
    /** 64-bit words in a chunk's touched bitmap. */
    static constexpr std::size_t kTouchedWords = kChunkUnits / 64;

    struct Config
    {
        /**
         * log2 of the shadowed unit size: 0 shadows every byte, 6
         * shadows 64-byte lines.
         */
        unsigned granularityShift = 0;

        /** Max live chunks; 0 means unlimited (no reclamation). */
        std::size_t maxChunks = 0;
    };

    ShadowMemory() : ShadowMemory(Config{}) {}
    explicit ShadowMemory(const Config &config);

    /** Called with each touched object of a chunk about to be evicted. */
    using EvictionHandler =
        std::function<void(std::uint64_t unit, ShadowRef obj)>;

    /**
     * Install the eviction handler. The filter restricts which touched
     * units the handler is called with; a handler that only finalizes
     * pending re-use runs passes SweepFilter::PendingRuns so eviction
     * skips the (typically vast) majority of units it would no-op on.
     */
    void setEvictionHandler(EvictionHandler handler,
                            SweepFilter filter = SweepFilter::All);

    /** Unit index covering a guest address. */
    std::uint64_t
    unitOf(vg::Addr addr) const
    {
        return addr >> granularityShift_;
    }

    /** Unit index of the last unit covering [addr, addr+size). */
    std::uint64_t
    lastUnitOf(vg::Addr addr, unsigned size) const
    {
        return (addr + (size ? size - 1 : 0)) >> granularityShift_;
    }

    unsigned granularityShift() const { return granularityShift_; }

    /** Shadow unit size in guest bytes. */
    unsigned unitBytes() const { return 1u << granularityShift_; }

    /** @name Stamp interning
     *
     * All stamp ids stored in this shadow come from its own table;
     * interning goes through the shadow so the table's memory share is
     * folded into the byte accounting the moment it grows.
     */
    /// @{
    StampId
    internWriter(const WriterStamp &s)
    {
        std::uint64_t before = stamps_.bytes();
        StampId id = stamps_.internWriter(s);
        if (std::uint64_t after = stamps_.bytes(); after != before)
            bytesAdd(after - before);
        return id;
    }

    StampId
    internReader(const ReaderStamp &s)
    {
        std::uint64_t before = stamps_.bytes();
        StampId id = stamps_.internReader(s);
        if (std::uint64_t after = stamps_.bytes(); after != before)
            bytesAdd(after - before);
        return id;
    }

    /**
     * Intern an unresolved placeholder (speculative segment workers).
     * Deliberately not byte-accounted: placeholders never exist in a
     * serial shadow, and the speculative worker's byte figures are
     * discarded at fold time anyway.
     */
    StampId
    internUnresolved(const UnresolvedStamp &s)
    {
        return stamps_.internUnresolved(s);
    }

    const StampTable &stamps() const { return stamps_; }
    /// @}

    /**
     * Locate (creating if needed) the shadow state of a unit, marking
     * its chunk as most recently touched. May evict another chunk when
     * a memory limit is configured. want_cold materializes the chunk's
     * cold array if it is still absent; without it the returned cold
     * pointer is null unless the array already exists.
     */
    ShadowRef lookup(std::uint64_t unit, bool want_cold = false);

    /**
     * A maximal contiguous run of shadow state inside one chunk:
     * units [firstUnit, firstUnit + count) map to hot[0..count), and
     * to cold[0..count) when the chunk has a cold array (else cold is
     * null).
     */
    struct Run
    {
        std::uint64_t firstUnit;
        std::size_t count;
        ShadowHot *hot;
        ShadowCold *cold;
    };

    /**
     * Span-oriented lookup: visit the shadow state of every unit in
     * [first_unit, last_unit] as chunk-clamped contiguous runs,
     * resolving each chunk exactly once. Equivalent to calling
     * lookup() per unit (same touch ordering, same evictions and cold
     * materializations at chunk boundaries) without the per-unit
     * directory and recency work.
     *
     * The references inside a Run are valid only during the callback:
     * the next chunk resolution may evict the chunk that backed it.
     */
    template <typename Fn>
    void
    span(std::uint64_t first_unit, std::uint64_t last_unit,
         bool want_cold, Fn &&fn)
    {
        if (first_unit == last_unit) {
            // Single-unit access (the byte-mode common case): skip the
            // run clamping and range bitmap arithmetic entirely.
            Chunk &chunk = chunkFor(first_unit);
            if (want_cold && !chunk.cold)
                materializeCold(chunk);
            std::size_t off = first_unit & (kChunkUnits - 1);
            chunk.touched[off >> 6] |= std::uint64_t{1} << (off & 63);
            fn(Run{first_unit, 1, chunk.hot.get() + off,
                   chunk.cold ? chunk.cold.get() + off : nullptr});
            return;
        }
        std::uint64_t u = first_unit;
        while (u <= last_unit) {
            Chunk &chunk = chunkFor(u);
            if (want_cold && !chunk.cold)
                materializeCold(chunk);
            std::size_t off = static_cast<std::size_t>(u - chunk.base);
            std::size_t n = static_cast<std::size_t>(
                std::min<std::uint64_t>(last_unit - u + 1,
                                        kChunkUnits - off));
            markTouched(chunk, off, n);
            fn(Run{u, n, chunk.hot.get() + off,
                   chunk.cold ? chunk.cold.get() + off : nullptr});
            u += n;
        }
    }

    /** Locate without creating or touching; null if chunk is absent. */
    ShadowPtr find(std::uint64_t unit);

    /**
     * lookup() variant for checkpoint restore: never evicts and never
     * consults the failure injector, so re-populating exactly the
     * saved chunk set (which already respects the limit) cannot
     * perturb it. Units must be restored in saved (recency) order.
     */
    ShadowRef restoreLookup(std::uint64_t unit, bool want_cold = false);

    /**
     * Visit every touched shadow object (used for the end-of-run sweep
     * that finalizes pending re-use runs). Chunks are visited in
     * ascending base order so the sweep is deterministic run-to-run;
     * within a chunk only units matching the filter are visited.
     */
    void forEach(const EvictionHandler &visitor,
                 SweepFilter filter = SweepFilter::All);

    /**
     * Visit every touched shadow object chunk-by-chunk in recency
     * order, least recently touched chunk first. A checkpoint saves
     * chunks in this order so that a restore — which re-lookup()s the
     * units in saved order — reproduces the recency list exactly, and
     * with it every future eviction decision.
     */
    void forEachInRecencyOrder(const EvictionHandler &visitor);

    /**
     * Visit the live chunks in recency order (least recently touched
     * first) as (index, has_cold, touched_units) triples — the
     * chunk-level walk the checkpoint writer uses to frame each
     * chunk's unit group.
     */
    void forEachChunkInRecencyOrder(
        const std::function<void(std::uint64_t index, bool has_cold,
                                 std::uint64_t touched_units)> &fn) const;

    /**
     * Visit the touched units of one resident chunk (ascending unit
     * order), or do nothing if the chunk is absent. Sharded mode saves
     * checkpoints by walking the planner's global recency list and
     * visiting each chunk in its owning shard with this.
     */
    void forEachInChunk(std::uint64_t index,
                        const EvictionHandler &visitor);

    /** Whether a resident chunk has a cold array (false if absent). */
    bool chunkHasCold(std::uint64_t index) const;

    /**
     * Evict one specific resident chunk (sharded mode: the sequencer's
     * recency planner decides victims globally and commands the owning
     * shard). Runs the eviction handler over the chunk's touched units
     * exactly like the LRU path. Panics if the chunk is absent.
     */
    void evictChunk(std::uint64_t index);

    const ShadowStats &stats() const { return stats_; }

    /**
     * Overwrite the cumulative statistics (checkpoint restore). The
     * live-chunk count, cold-array count, and live bytes are re-derived
     * from the directory and stamp table; the byte peak is clamped up
     * to the re-derived live figure (pre-v3 checkpoints do not record
     * it).
     */
    void restoreStats(const ShadowStats &stats);

    /**
     * Fault injection: consulted before every new chunk allocation;
     * returning true simulates the allocation failing. The shadow
     * survives by evicting its least recently used chunk to make room
     * and retrying (the paper's reclamation path under real memory
     * pressure); if the injector keeps failing with nothing left to
     * evict, the pressure handler is told how many attempts failed so
     * the owning profiler can degrade collection fidelity, and the
     * allocation then proceeds (the injector only simulates failure).
     */
    void
    setAllocationFailureInjector(std::function<bool()> injector)
    {
        allocFailureInjector_ = std::move(injector);
    }

    /** Called when eviction could not satisfy an allocation. */
    void
    setPressureHandler(std::function<void(int failed_attempts)> handler)
    {
        pressureHandler_ = std::move(handler);
    }

    /** Whether a fault injector is installed (conflict detection). */
    bool
    hasAllocationFailureInjector() const
    {
        return static_cast<bool>(allocFailureInjector_);
    }

    /**
     * Attach the process-wide memory governor. From here on every
     * shadow byte (hot arrays, cold arrays, stamp tables) is mirrored
     * into the governor's Shadow lane, and — when the governor has a
     * non-zero budget — chunk and cold-array growth evicts least
     * recently used chunks until the new allocation fits, falling back
     * to the pressure handler when nothing evictable remains. Bytes
     * already live are charged at install time so the lane always
     * equals stats().bytesLive.
     */
    void setGovernor(MemoryGovernor *governor);

    /**
     * Host bytes of the always-present part of one chunk: the hot unit
     * array plus the touched bitmap.
     */
    static constexpr std::size_t
    chunkHotBytes()
    {
        return kChunkUnits * sizeof(ShadowHot) +
               kTouchedWords * sizeof(std::uint64_t);
    }

    /** Host bytes of one chunk's lazily allocated cold array. */
    static constexpr std::size_t
    chunkColdBytes()
    {
        return kChunkUnits * sizeof(ShadowCold);
    }

    /** Current host bytes held (chunks + stamp table share). */
    std::uint64_t liveBytes() const { return stats_.bytesLive; }

    /** Peak host bytes ever held. */
    std::uint64_t peakBytes() const { return stats_.bytesPeak; }

  private:
    struct Chunk
    {
        std::uint64_t base = 0; // first unit index covered
        std::uint64_t index = 0;
        std::unique_ptr<ShadowHot[]> hot;
        /** Lazily allocated on the first want_cold resolution. */
        std::unique_ptr<ShadowCold[]> cold;
        /** Bit per unit: ever returned via lookup()/span(). */
        std::uint64_t touched[kTouchedWords] = {};
        /** Intrusive recency list; head = oldest, tail = newest. */
        Chunk *lruPrev = nullptr;
        Chunk *lruNext = nullptr;
    };

    Chunk &chunkFor(std::uint64_t unit);
    void materializeCold(Chunk &chunk);
    void evictOldest();
    void evictChunkPtr(Chunk *chunk);

    void lruUnlink(Chunk *chunk);
    void lruAppend(Chunk *chunk);

    /**
     * The single owner of the touched-bit scan: every sweep — the
     * ascending and recency-ordered walks, the per-chunk checkpoint
     * walk, and the eviction handler pass — visits a chunk's touched
     * units through here (the eviction/sweep loop used to be
     * duplicated per caller).
     */
    static void visitTouched(Chunk &chunk, const EvictionHandler &visitor,
                             SweepFilter filter);

    void
    bytesAdd(std::uint64_t n)
    {
        stats_.bytesLive += n;
        if (stats_.bytesLive > stats_.bytesPeak)
            stats_.bytesPeak = stats_.bytesLive;
        if (governor_ != nullptr)
            governor_->charge(MemCategory::Shadow,
                              static_cast<std::size_t>(n));
    }

    void
    bytesSub(std::uint64_t n)
    {
        stats_.bytesLive -= n;
        if (governor_ != nullptr)
            governor_->release(MemCategory::Shadow,
                               static_cast<std::size_t>(n));
    }

    /** Mark units [off, off + n) of a chunk as touched. */
    static void
    markTouched(Chunk &chunk, std::size_t off, std::size_t n)
    {
        std::size_t first_word = off >> 6;
        std::size_t last_word = (off + n - 1) >> 6;
        std::uint64_t head = ~0ull << (off & 63);
        std::uint64_t tail = ~0ull >> (63 - ((off + n - 1) & 63));
        if (first_word == last_word) {
            chunk.touched[first_word] |= head & tail;
            return;
        }
        chunk.touched[first_word] |= head;
        for (std::size_t w = first_word + 1; w < last_word; ++w)
            chunk.touched[w] = ~0ull;
        chunk.touched[last_word] |= tail;
    }

    unsigned granularityShift_;
    std::size_t maxChunks_;
    std::unordered_map<std::uint64_t, Chunk> directory_;
    /** One-entry lookup cache for the common sequential-access case. */
    Chunk *lastChunk_ = nullptr;
    std::uint64_t lastChunkIndex_ = ~0ull;
    Chunk *lruHead_ = nullptr;
    Chunk *lruTail_ = nullptr;
    EvictionHandler evictionHandler_;
    SweepFilter evictionFilter_ = SweepFilter::All;
    std::function<bool()> allocFailureInjector_;
    std::function<void(int)> pressureHandler_;
    MemoryGovernor *governor_ = nullptr;
    /** False only inside restoreLookup(): account, never evict. */
    bool enforceBudget_ = true;
    StampTable stamps_;
    ShadowStats stats_;
};

} // namespace sigil::shadow

#endif // SIGIL_SHADOW_SHADOW_MEMORY_HH
