/**
 * @file
 * Exact LRU stack-distance (reuse-distance) tracking.
 *
 * The paper's Section IV-B argues Sigil's re-use data lets designers
 * size caches, scratchpads, and accelerator buffers (the BB-curves of
 * Cong et al.). The quantitative backbone of that analysis is the
 * reuse-distance histogram: the number of *distinct* units touched
 * between consecutive accesses to the same unit. For a fully
 * associative LRU memory of capacity C units, an access hits exactly
 * when its reuse distance is < C, so one histogram yields the whole
 * miss-ratio curve.
 *
 * Implementation: the classic Bennett–Kruskal / Olken scheme — a
 * Fenwick tree over access timestamps holds one marker per unit at its
 * most recent access time; the reuse distance of an access is the
 * number of markers after the unit's previous timestamp.
 */

#ifndef SIGIL_SHADOW_REUSE_DISTANCE_HH
#define SIGIL_SHADOW_REUSE_DISTANCE_HH

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "support/histogram.hh"

namespace sigil::shadow {

/** Sentinel distance for the first-ever (cold) access to a unit. */
constexpr std::uint64_t kColdAccess =
    std::numeric_limits<std::uint64_t>::max();

/** Exact reuse-distance tracker over an arbitrary unit space. */
class ReuseDistanceTracker
{
  public:
    ReuseDistanceTracker() = default;

    /**
     * Record an access to a unit.
     * @return the LRU stack distance (distinct units touched since the
     *         unit's previous access), or kColdAccess on first touch.
     */
    std::uint64_t access(std::uint64_t unit);

    /** Total accesses recorded. */
    std::uint64_t accesses() const { return clock_; }

    /** Distinct units ever touched (the working-set size). */
    std::uint64_t distinctUnits() const
    {
        return static_cast<std::uint64_t>(lastAccess_.size());
    }

    /** Cold (first-touch) accesses. */
    std::uint64_t coldAccesses() const { return cold_; }

    /**
     * Histogram of non-cold distances in power-of-two bins: bin 0
     * counts distance 0, bin i counts [2^(i-1), 2^i).
     */
    const std::vector<std::uint64_t> &distanceBins() const
    {
        return bins_;
    }

    /**
     * Miss ratio of a fully associative LRU memory with the given
     * capacity in units, derived from the exact distance records.
     * Cold misses are included.
     */
    double missRatio(std::uint64_t capacity_units) const;

    /**
     * Miss-ratio curve at power-of-two capacities from 1 to beyond the
     * working set; pairs of (capacity, miss ratio).
     */
    std::vector<std::pair<std::uint64_t, double>> missRatioCurve() const;

  private:
    void fenwickAdd(std::size_t pos, std::int64_t delta);
    std::int64_t fenwickSum(std::size_t pos) const; // sum of [0, pos]

    /** Exact distances kept sorted lazily for missRatio queries. */
    void recordDistance(std::uint64_t distance);

    std::uint64_t clock_ = 0;
    std::uint64_t cold_ = 0;
    std::unordered_map<std::uint64_t, std::uint64_t> lastAccess_;
    std::vector<std::int64_t> fenwick_; // 1-based, grows with clock_
    std::vector<std::uint64_t> bins_;   // power-of-two distance bins
};

} // namespace sigil::shadow

#endif // SIGIL_SHADOW_REUSE_DISTANCE_HH
