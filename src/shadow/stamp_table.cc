#include "stamp_table.hh"

#include <limits>

#include "support/logging.hh"

namespace sigil::shadow {

namespace {

/** splitmix64 finalizer; mixes each field into the running hash. */
inline std::uint64_t
mix(std::uint64_t h, std::uint64_t v)
{
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    return h;
}

} // namespace

std::size_t
StampTable::WriterHash::operator()(const WriterStamp &s) const
{
    std::uint64_t h = mix(0, s.seq);
    h = mix(h, (static_cast<std::uint64_t>(
                    static_cast<std::uint32_t>(s.ctx))
                << 32) |
                   s.thread);
    return static_cast<std::size_t>(h);
}

std::size_t
StampTable::ReaderHash::operator()(const ReaderStamp &s) const
{
    std::uint64_t h = mix(0, s.call);
    h = mix(h, static_cast<std::uint32_t>(s.ctx));
    return static_cast<std::size_t>(h);
}

StampTable::StampTable()
{
    // Reserved null entries: id 0 is the default (never written /
    // never read) state, so a zero-filled hot array needs no fixup.
    writers_.push_back(WriterStamp{});
    writerIndex_.emplace(WriterStamp{}, 0);
    readers_.push_back(ReaderStamp{});
    readerIndex_.emplace(ReaderStamp{}, 0);
}

StampId
StampTable::internWriter(const WriterStamp &s)
{
    if (s == lastWriter_)
        return lastWriterId_;
    auto [it, inserted] =
        writerIndex_.try_emplace(s, static_cast<StampId>(writers_.size()));
    if (inserted) {
        if (writers_.size() >
            std::numeric_limits<StampId>::max()) {
            fatal("StampTable: writer stamp ids exhausted (%zu entries)",
                  writers_.size());
        }
        writers_.push_back(s);
    }
    lastWriter_ = s;
    lastWriterId_ = it->second;
    return it->second;
}

StampId
StampTable::internReader(const ReaderStamp &s)
{
    if (s == lastReader_)
        return lastReaderId_;
    auto [it, inserted] =
        readerIndex_.try_emplace(s, static_cast<StampId>(readers_.size()));
    if (inserted) {
        if (readers_.size() >
            std::numeric_limits<StampId>::max()) {
            fatal("StampTable: reader stamp ids exhausted (%zu entries)",
                  readers_.size());
        }
        readers_.push_back(s);
    }
    lastReader_ = s;
    lastReaderId_ = it->second;
    return it->second;
}

StampId
StampTable::idOfWriter(const WriterStamp &s) const
{
    auto it = writerIndex_.find(s);
    if (it == writerIndex_.end())
        panic("StampTable: writer stamp not interned");
    return it->second;
}

StampId
StampTable::idOfReader(const ReaderStamp &s) const
{
    auto it = readerIndex_.find(s);
    if (it == readerIndex_.end())
        panic("StampTable: reader stamp not interned");
    return it->second;
}

} // namespace sigil::shadow
