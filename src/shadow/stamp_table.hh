/**
 * @file
 * Interning table for shadow identity stamps.
 *
 * Every shadowed unit must remember who produced its current value —
 * (segment, context, thread) — and who last consumed it —
 * (call, context). Those tuples are massively repeated: one write
 * segment stamps the same producer identity across every unit it
 * touches. Storing the tuple inline (the pre-stamp ShadowHot was ~40
 * bytes per unit) duplicates it per unit; interning each distinct
 * tuple once and storing a 32-bit stamp id per unit cuts the hot
 * array to 8 bytes per unit and turns span writes into word fills.
 *
 * Stamp id 0 is reserved for the *null* tuple — the default state of
 * a never-written (resp. never-read) unit: writer {seq 0,
 * ctx kInvalidContext, thread 0}, reader {call 0, ctx
 * kInvalidContext}. Interning is injective, so id equality is tuple
 * equality; in particular "unit was never read" is `reader == 0`.
 *
 * Ids are assigned densely in first-intern order, which makes them
 * deterministic for a given access stream: two engines that intern
 * the same tuple sequence assign identical ids (the property the
 * sharded checkpoint path relies on).
 */

#ifndef SIGIL_SHADOW_STAMP_TABLE_HH
#define SIGIL_SHADOW_STAMP_TABLE_HH

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "vg/types.hh"

namespace sigil::shadow {

/** Index of an interned stamp tuple; 0 is the null stamp. */
using StampId = std::uint32_t;

/**
 * Producer identity of a shadowed unit's current value.
 *
 * Deliberately minimal: classification consumes the producer context,
 * thread (inter-thread edges), and event segment (transfer
 * attribution) — the producer's call number is consumed by nothing,
 * so carrying it would only multiply distinct tuples (one per call
 * instead of one per context) without changing any output. With event
 * collection off, segments never open and `seq` stays 0, so the table
 * holds roughly (contexts × threads) entries for a whole run.
 */
struct WriterStamp
{
    /** Event-trace segment that produced the value (0 = none). */
    std::uint64_t seq = 0;
    vg::ContextId ctx = vg::kInvalidContext;
    vg::ThreadId thread = 0;

    bool
    operator==(const WriterStamp &o) const
    {
        return seq == o.seq && ctx == o.ctx && thread == o.thread;
    }
};

/**
 * Identity of a shadowed unit's last consumer.
 *
 * The call number exists solely so that id equality delimits re-use
 * runs (a run ends when a different call or context reads the unit).
 * When re-use collection is off, intern sites pass call = 0 —
 * classification reads only the consumer context, and the table then
 * holds one entry per context instead of one per dynamic call.
 */
struct ReaderStamp
{
    vg::CallNum call = 0;
    vg::ContextId ctx = vg::kInvalidContext;

    bool
    operator==(const ReaderStamp &o) const
    {
        return call == o.call && ctx == o.ctx;
    }
};

/**
 * Placeholder producer identity used by speculative segment replay: a
 * worker that reads a unit it has never written records *which segment
 * first observed the unknown value and at what event-segment sequence*
 * instead of a writer tuple. The resolution pass replaces every
 * occurrence with the real producer from the preceding segments' merged
 * shadow image (or the null writer if the unit was genuinely never
 * written).
 */
struct UnresolvedStamp
{
    /** Trace-segment index of the speculating worker. */
    std::uint64_t segment = 0;
    /** Event segment seq active at the first unresolved read (0 = none). */
    std::uint64_t firstReadSeq = 0;

    bool
    operator==(const UnresolvedStamp &o) const
    {
        return segment == o.segment && firstReadSeq == o.firstReadSeq;
    }
};

/** The interning table: dense id → tuple, hash tuple → id. */
class StampTable
{
  public:
    StampTable();

    /**
     * Tag bit marking a writer StampId as an unresolved placeholder.
     * The low bits index the side table of UnresolvedStamp entries.
     * Real interned ids never reach 2^31 entries, so the bit is free.
     */
    static constexpr StampId kUnresolvedBit = 0x80000000u;

    static bool
    isUnresolved(StampId id)
    {
        return (id & kUnresolvedBit) != 0;
    }

    /** Intern a tuple, returning its (possibly existing) id. */
    StampId internWriter(const WriterStamp &s);
    StampId internReader(const ReaderStamp &s);

    /**
     * Intern an unresolved placeholder, returning kUnresolvedBit | idx.
     * Linear side table with a one-entry dedupe cache: consecutive
     * unresolved reads in one event segment share the placeholder.
     * Excluded from bytes() — placeholders exist only in speculative
     * worker shadows, which are never byte-accounted against serial.
     */
    StampId
    internUnresolved(const UnresolvedStamp &s)
    {
        if (!unresolved_.empty() && unresolved_.back() == s)
            return kUnresolvedBit |
                   static_cast<StampId>(unresolved_.size() - 1);
        unresolved_.push_back(s);
        return kUnresolvedBit |
               static_cast<StampId>(unresolved_.size() - 1);
    }

    const UnresolvedStamp &
    unresolved(StampId id) const
    {
        return unresolved_[id & ~kUnresolvedBit];
    }

    /** Resolve an id back to its tuple. */
    const WriterStamp &
    writer(StampId id) const
    {
        return writers_[id];
    }

    const ReaderStamp &
    reader(StampId id) const
    {
        return readers_[id];
    }

    /**
     * Id of an already-interned tuple. Panics if the tuple was never
     * interned — callers use this where absence is an invariant
     * violation (checkpoint save resolving shard-local stamps against
     * the sequencer mirror table).
     */
    StampId idOfWriter(const WriterStamp &s) const;
    StampId idOfReader(const ReaderStamp &s) const;

    /** Total entries, including the reserved null entry 0. */
    std::size_t writerCount() const { return writers_.size(); }
    std::size_t readerCount() const { return readers_.size(); }

    /**
     * Deterministic memory accounting: bytes attributed to the interned
     * entries beyond the two reserved null entries. Per entry this is
     * the tuple itself plus a fixed hash-index share, so two tables
     * holding the same entries report the same figure regardless of
     * load factors — a requirement for serial and sharded runs to
     * report bit-identical shadowPeakBytes.
     */
    static constexpr std::size_t kIndexShareBytes = 24;

    std::uint64_t
    bytes() const
    {
        return (writers_.size() - 1) *
                   (sizeof(WriterStamp) + kIndexShareBytes) +
               (readers_.size() - 1) *
                   (sizeof(ReaderStamp) + kIndexShareBytes);
    }

  private:
    struct WriterHash
    {
        std::size_t operator()(const WriterStamp &s) const;
    };
    struct ReaderHash
    {
        std::size_t operator()(const ReaderStamp &s) const;
    };

    std::vector<WriterStamp> writers_;
    std::vector<ReaderStamp> readers_;
    /** Speculative placeholder lane; see internUnresolved(). */
    std::vector<UnresolvedStamp> unresolved_;
    std::unordered_map<WriterStamp, StampId, WriterHash> writerIndex_;
    std::unordered_map<ReaderStamp, StampId, ReaderHash> readerIndex_;

    /**
     * One-entry intern caches: consecutive accesses share the ambient
     * stamp, so most interns are a repeat of the previous one.
     */
    WriterStamp lastWriter_;
    StampId lastWriterId_ = 0;
    ReaderStamp lastReader_;
    StampId lastReaderId_ = 0;
};

} // namespace sigil::shadow

#endif // SIGIL_SHADOW_STAMP_TABLE_HH
