#include "reuse_distance.hh"

#include "support/logging.hh"

namespace sigil::shadow {

void
ReuseDistanceTracker::fenwickAdd(std::size_t pos, std::int64_t delta)
{
    // 1-based Fenwick tree.
    for (std::size_t i = pos + 1; i <= fenwick_.size();
         i += i & (~i + 1)) {
        fenwick_[i - 1] += delta;
    }
}

std::int64_t
ReuseDistanceTracker::fenwickSum(std::size_t pos) const
{
    std::int64_t sum = 0;
    for (std::size_t i = pos + 1; i > 0; i -= i & (~i + 1))
        sum += fenwick_[i - 1];
    return sum;
}

void
ReuseDistanceTracker::recordDistance(std::uint64_t distance)
{
    // Bin 0 holds distance 0; bin i holds [2^(i-1), 2^i). This aligns
    // every bin boundary with a power-of-two capacity, so missRatio()
    // is exact there.
    std::size_t bin = 0;
    while ((std::uint64_t{1} << bin) <= distance && bin < 63)
        ++bin;
    if (bin >= bins_.size())
        bins_.resize(bin + 1, 0);
    ++bins_[bin];
}

std::uint64_t
ReuseDistanceTracker::access(std::uint64_t unit)
{
    std::uint64_t now = clock_++;
    if (now >= fenwick_.size()) {
        // Grow by rebuilding from prefix sums: amortized O(log n) per
        // access overall.
        std::vector<std::int64_t> old = std::move(fenwick_);
        std::size_t old_size = old.size();
        std::size_t new_size = old_size == 0 ? 1024 : old_size * 2;
        fenwick_.assign(new_size, 0);
        auto old_sum = [&](std::size_t pos) {
            std::int64_t sum = 0;
            for (std::size_t i = pos + 1; i > 0; i -= i & (~i + 1))
                sum += old[i - 1];
            return sum;
        };
        std::int64_t prev = 0;
        for (std::size_t i = 0; i < old_size; ++i) {
            std::int64_t cur = old_sum(i);
            std::int64_t point = cur - prev;
            prev = cur;
            if (point != 0)
                fenwickAdd(i, point);
        }
    }

    std::uint64_t distance = kColdAccess;
    auto it = lastAccess_.find(unit);
    if (it == lastAccess_.end()) {
        ++cold_;
        lastAccess_.emplace(unit, now);
    } else {
        std::uint64_t prev = it->second;
        // Markers strictly after prev = distinct units touched since.
        std::int64_t after_prev =
            fenwickSum(fenwick_.size() - 1) -
            fenwickSum(static_cast<std::size_t>(prev));
        if (after_prev < 0)
            panic("ReuseDistanceTracker: negative marker count");
        distance = static_cast<std::uint64_t>(after_prev);
        fenwickAdd(static_cast<std::size_t>(prev), -1);
        it->second = now;
        recordDistance(distance);
    }
    fenwickAdd(static_cast<std::size_t>(now), +1);
    return distance;
}

double
ReuseDistanceTracker::missRatio(std::uint64_t capacity_units) const
{
    if (clock_ == 0)
        return 0.0;
    // Misses: cold accesses plus re-accesses whose distance >= capacity.
    std::uint64_t misses = cold_;
    for (std::size_t bin = 0; bin < bins_.size(); ++bin) {
        std::uint64_t lo =
            bin == 0 ? 0 : (std::uint64_t{1} << (bin - 1));
        std::uint64_t hi =
            bin == 0 ? 0 : (std::uint64_t{1} << bin) - 1;
        if (lo >= capacity_units) {
            misses += bins_[bin];
        } else if (hi >= capacity_units) {
            // The bin straddles the capacity; apportion linearly.
            std::uint64_t span = hi - lo + 1;
            std::uint64_t over = hi - capacity_units + 1;
            misses += bins_[bin] * over / span;
        }
    }
    return static_cast<double>(misses) / static_cast<double>(clock_);
}

std::vector<std::pair<std::uint64_t, double>>
ReuseDistanceTracker::missRatioCurve() const
{
    std::vector<std::pair<std::uint64_t, double>> curve;
    std::uint64_t cap = 1;
    std::uint64_t limit = distinctUnits() * 2 + 2;
    while (cap < limit) {
        curve.emplace_back(cap, missRatio(cap));
        cap <<= 1;
    }
    return curve;
}

} // namespace sigil::shadow
