#include "shadow_memory.hh"

#include <bit>
#include <vector>

#include "support/logging.hh"

namespace sigil::shadow {

ShadowMemory::ShadowMemory(const Config &config)
    : granularityShift_(config.granularityShift),
      maxChunks_(config.maxChunks)
{
    if (granularityShift_ > 12)
        fatal("shadow granularity shift %u too large (max 12)",
              granularityShift_);
    if (maxChunks_ == 1)
        fatal("shadow memory limit must allow at least 2 chunks");
}

void
ShadowMemory::setEvictionHandler(EvictionHandler handler,
                                 SweepFilter filter)
{
    evictionHandler_ = std::move(handler);
    evictionFilter_ = filter;
}

void
ShadowMemory::lruUnlink(Chunk *chunk)
{
    if (chunk->lruPrev != nullptr)
        chunk->lruPrev->lruNext = chunk->lruNext;
    else
        lruHead_ = chunk->lruNext;
    if (chunk->lruNext != nullptr)
        chunk->lruNext->lruPrev = chunk->lruPrev;
    else
        lruTail_ = chunk->lruPrev;
    chunk->lruPrev = nullptr;
    chunk->lruNext = nullptr;
}

void
ShadowMemory::lruAppend(Chunk *chunk)
{
    chunk->lruPrev = lruTail_;
    chunk->lruNext = nullptr;
    if (lruTail_ != nullptr)
        lruTail_->lruNext = chunk;
    else
        lruHead_ = chunk;
    lruTail_ = chunk;
}

ShadowMemory::Chunk &
ShadowMemory::chunkFor(std::uint64_t unit)
{
    std::uint64_t index = unit >> kChunkShift;
    // The cached chunk is the most recently touched one, so a cache hit
    // needs no recency-list maintenance at all.
    if (lastChunk_ != nullptr && index == lastChunkIndex_)
        return *lastChunk_;

    auto it = directory_.find(index);
    if (it == directory_.end()) {
        if (maxChunks_ != 0 && directory_.size() >= maxChunks_)
            evictOldest();
        if (governor_ != nullptr && enforceBudget_) {
            // Budget enforcement, cheapest shedding first: evict LRU
            // chunks until the new chunk's hot array fits. Only when
            // nothing evictable remains does the pressure handler ask
            // the owner to climb the degradation ladder — the process
            // keeps running inside its budget either way.
            while (!directory_.empty() &&
                   governor_->overBudget(chunkHotBytes())) {
                evictOldest();
            }
            if (governor_->overBudget(chunkHotBytes()) &&
                pressureHandler_) {
                pressureHandler_(1);
            }
        }
        if (allocFailureInjector_) {
            // Degradation ladder, rung 1: survive a failed chunk
            // allocation by evicting the least recently used chunk
            // (losing only precision, like the memory-limit path) and
            // retrying. Only when nothing evictable remains does the
            // pressure handler ask the owner to degrade fidelity.
            int failed = 0;
            bool exhausted = false;
            while (allocFailureInjector_()) {
                ++failed;
                ++stats_.allocFailures;
                if (directory_.empty() || failed >= 8) {
                    exhausted = true;
                    break;
                }
                evictOldest();
            }
            if (exhausted && pressureHandler_)
                pressureHandler_(failed);
        }
        Chunk chunk;
        chunk.base = index << kChunkShift;
        chunk.index = index;
        chunk.hot = std::make_unique<ShadowHot[]>(kChunkUnits);
        it = directory_.emplace(index, std::move(chunk)).first;
        lruAppend(&it->second);
        ++stats_.chunksAllocated;
        stats_.chunksLive = directory_.size();
        if (stats_.chunksLive > stats_.chunksPeak)
            stats_.chunksPeak = stats_.chunksLive;
        bytesAdd(chunkHotBytes());
    } else if (&it->second != lruTail_) {
        lruUnlink(&it->second);
        lruAppend(&it->second);
    }
    lastChunk_ = &it->second;
    lastChunkIndex_ = index;
    return it->second;
}

void
ShadowMemory::materializeCold(Chunk &chunk)
{
    if (governor_ != nullptr && enforceBudget_) {
        // Make room for the cold array, but never by evicting the
        // chunk it is being attached to (it was just touched, so it is
        // at the recency tail unless it is the only chunk left).
        while (directory_.size() > 1 && lruHead_ != &chunk &&
               governor_->overBudget(chunkColdBytes())) {
            evictOldest();
        }
    }
    chunk.cold = std::make_unique<ShadowCold[]>(kChunkUnits);
    ++stats_.coldArraysLive;
    bytesAdd(chunkColdBytes());
}

ShadowRef
ShadowMemory::lookup(std::uint64_t unit, bool want_cold)
{
    Chunk &chunk = chunkFor(unit);
    if (want_cold && !chunk.cold)
        materializeCold(chunk);
    std::size_t off = unit & (kChunkUnits - 1);
    chunk.touched[off >> 6] |= std::uint64_t{1} << (off & 63);
    return ShadowRef{chunk.hot[off],
                     chunk.cold ? &chunk.cold[off] : nullptr};
}

ShadowRef
ShadowMemory::restoreLookup(std::uint64_t unit, bool want_cold)
{
    std::size_t saved_max = maxChunks_;
    std::function<bool()> saved_injector =
        std::move(allocFailureInjector_);
    maxChunks_ = 0;
    allocFailureInjector_ = nullptr;
    // Budget enforcement pauses too (the saved chunk set already
    // respected the budget when it was written); accounting continues.
    enforceBudget_ = false;
    ShadowRef ref = lookup(unit, want_cold);
    enforceBudget_ = true;
    maxChunks_ = saved_max;
    allocFailureInjector_ = std::move(saved_injector);
    return ref;
}

ShadowPtr
ShadowMemory::find(std::uint64_t unit)
{
    std::uint64_t index = unit >> kChunkShift;
    auto it = directory_.find(index);
    if (it == directory_.end())
        return ShadowPtr{};
    std::size_t off = unit & (kChunkUnits - 1);
    return ShadowPtr{&it->second.hot[off],
                     it->second.cold ? &it->second.cold[off] : nullptr};
}

void
ShadowMemory::visitTouched(Chunk &chunk, const EvictionHandler &visitor,
                           SweepFilter filter)
{
    if (filter != SweepFilter::All && !chunk.cold)
        return;
    const bool pending_only = filter == SweepFilter::PendingRuns;
    for (std::size_t w = 0; w < kTouchedWords; ++w) {
        std::uint64_t bits = chunk.touched[w];
        while (bits != 0) {
            std::size_t i =
                (w << 6) +
                static_cast<std::size_t>(std::countr_zero(bits));
            bits &= bits - 1;
            if (pending_only && chunk.hot[i].reader == 0)
                continue;
            visitor(chunk.base + i,
                    ShadowRef{chunk.hot[i],
                              chunk.cold ? &chunk.cold[i] : nullptr});
        }
    }
}

void
ShadowMemory::forEach(const EvictionHandler &visitor, SweepFilter filter)
{
    std::vector<Chunk *> chunks;
    chunks.reserve(directory_.size());
    for (auto &[index, chunk] : directory_)
        chunks.push_back(&chunk);
    std::sort(chunks.begin(), chunks.end(),
              [](const Chunk *a, const Chunk *b) {
                  return a->base < b->base;
              });
    for (Chunk *chunk : chunks)
        visitTouched(*chunk, visitor, filter);
}

void
ShadowMemory::forEachInRecencyOrder(const EvictionHandler &visitor)
{
    for (Chunk *chunk = lruHead_; chunk != nullptr;
         chunk = chunk->lruNext) {
        visitTouched(*chunk, visitor, SweepFilter::All);
    }
}

void
ShadowMemory::forEachChunkInRecencyOrder(
    const std::function<void(std::uint64_t, bool, std::uint64_t)> &fn)
    const
{
    for (const Chunk *chunk = lruHead_; chunk != nullptr;
         chunk = chunk->lruNext) {
        std::uint64_t touched = 0;
        for (std::size_t w = 0; w < kTouchedWords; ++w)
            touched += static_cast<std::uint64_t>(
                std::popcount(chunk->touched[w]));
        fn(chunk->index, chunk->cold != nullptr, touched);
    }
}

void
ShadowMemory::evictOldest()
{
    if (lruHead_ == nullptr)
        panic("ShadowMemory::evictOldest with no chunks");
    evictChunkPtr(lruHead_);
}

void
ShadowMemory::evictChunk(std::uint64_t index)
{
    auto it = directory_.find(index);
    if (it == directory_.end())
        panic("ShadowMemory::evictChunk: chunk %llu not resident",
              static_cast<unsigned long long>(index));
    evictChunkPtr(&it->second);
}

void
ShadowMemory::evictChunkPtr(Chunk *victim)
{
    if (evictionHandler_)
        visitTouched(*victim, evictionHandler_, evictionFilter_);
    // The lookup cache may point into the evicted chunk.
    lastChunk_ = nullptr;
    lastChunkIndex_ = ~0ull;
    bytesSub(chunkHotBytes());
    if (victim->cold) {
        bytesSub(chunkColdBytes());
        --stats_.coldArraysLive;
    }
    lruUnlink(victim);
    directory_.erase(victim->index);
    ++stats_.evictions;
    stats_.chunksLive = directory_.size();
}

void
ShadowMemory::forEachInChunk(std::uint64_t index,
                             const EvictionHandler &visitor)
{
    auto it = directory_.find(index);
    if (it == directory_.end())
        return;
    visitTouched(it->second, visitor, SweepFilter::All);
}

bool
ShadowMemory::chunkHasCold(std::uint64_t index) const
{
    auto it = directory_.find(index);
    return it != directory_.end() && it->second.cold != nullptr;
}

void
ShadowMemory::restoreStats(const ShadowStats &stats)
{
    std::uint64_t charged = stats_.bytesLive;
    stats_ = stats;
    stats_.chunksLive = directory_.size();
    stats_.coldArraysLive = 0;
    std::uint64_t live = stamps_.bytes();
    for (const auto &[index, chunk] : directory_) {
        live += chunkHotBytes();
        if (chunk.cold) {
            live += chunkColdBytes();
            ++stats_.coldArraysLive;
        }
    }
    stats_.bytesLive = live;
    if (stats_.bytesPeak < stats_.bytesLive)
        stats_.bytesPeak = stats_.bytesLive;
    if (governor_ != nullptr) {
        // Resynchronize the governor's lane with the recomputed live
        // figure (the checkpoint's stats replace ours wholesale).
        governor_->release(MemCategory::Shadow,
                           static_cast<std::size_t>(charged));
        governor_->charge(MemCategory::Shadow,
                          static_cast<std::size_t>(stats_.bytesLive));
    }
}

void
ShadowMemory::setGovernor(MemoryGovernor *governor)
{
    if (governor_ == governor)
        return;
    if (governor_ != nullptr)
        governor_->release(MemCategory::Shadow,
                           static_cast<std::size_t>(stats_.bytesLive));
    governor_ = governor;
    if (governor_ != nullptr && stats_.bytesLive != 0)
        governor_->charge(MemCategory::Shadow,
                          static_cast<std::size_t>(stats_.bytesLive));
}

} // namespace sigil::shadow
