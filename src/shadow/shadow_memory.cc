#include "shadow_memory.hh"

#include "support/logging.hh"

namespace sigil::shadow {

ShadowMemory::ShadowMemory(const Config &config)
    : granularityShift_(config.granularityShift),
      maxChunks_(config.maxChunks)
{
    if (granularityShift_ > 12)
        fatal("shadow granularity shift %u too large (max 12)",
              granularityShift_);
    if (maxChunks_ == 1)
        fatal("shadow memory limit must allow at least 2 chunks");
}

void
ShadowMemory::setEvictionHandler(EvictionHandler handler)
{
    evictionHandler_ = std::move(handler);
}

ShadowMemory::Chunk &
ShadowMemory::chunkFor(std::uint64_t unit)
{
    std::uint64_t index = unit >> kChunkShift;
    if (lastChunk_ != nullptr && index == lastChunkIndex_) {
        lastChunk_->lastTouch = ++touchClock_;
        return *lastChunk_;
    }

    auto it = directory_.find(index);
    if (it == directory_.end()) {
        if (maxChunks_ != 0 && directory_.size() >= maxChunks_)
            evictOldest();
        Chunk chunk;
        chunk.base = index << kChunkShift;
        chunk.objects = std::make_unique<ShadowObject[]>(kChunkUnits);
        it = directory_.emplace(index, std::move(chunk)).first;
        ++stats_.chunksAllocated;
        stats_.chunksLive = directory_.size();
        if (stats_.chunksLive > stats_.chunksPeak)
            stats_.chunksPeak = stats_.chunksLive;
    }
    it->second.lastTouch = ++touchClock_;
    lastChunk_ = &it->second;
    lastChunkIndex_ = index;
    return it->second;
}

ShadowObject &
ShadowMemory::lookup(std::uint64_t unit)
{
    Chunk &chunk = chunkFor(unit);
    return chunk.objects[unit & (kChunkUnits - 1)];
}

ShadowObject *
ShadowMemory::find(std::uint64_t unit)
{
    std::uint64_t index = unit >> kChunkShift;
    auto it = directory_.find(index);
    if (it == directory_.end())
        return nullptr;
    return &it->second.objects[unit & (kChunkUnits - 1)];
}

void
ShadowMemory::forEach(const EvictionHandler &visitor)
{
    for (auto &[index, chunk] : directory_) {
        for (std::size_t i = 0; i < kChunkUnits; ++i)
            visitor(chunk.base + i, chunk.objects[i]);
    }
}

void
ShadowMemory::evictOldest()
{
    if (directory_.empty())
        panic("ShadowMemory::evictOldest with no chunks");
    auto oldest = directory_.begin();
    for (auto it = directory_.begin(); it != directory_.end(); ++it) {
        if (it->second.lastTouch < oldest->second.lastTouch)
            oldest = it;
    }
    if (evictionHandler_) {
        Chunk &chunk = oldest->second;
        for (std::size_t i = 0; i < kChunkUnits; ++i)
            evictionHandler_(chunk.base + i, chunk.objects[i]);
    }
    // The lookup cache may point into the evicted chunk.
    lastChunk_ = nullptr;
    lastChunkIndex_ = ~0ull;
    directory_.erase(oldest);
    ++stats_.evictions;
    stats_.chunksLive = directory_.size();
}

} // namespace sigil::shadow
