#include "partitioner.hh"

#include <algorithm>
#include <limits>

#include "support/logging.hh"

namespace sigil::cdfg {

BreakevenResult
breakeven(const CdfgNode &node, const BreakevenParams &params)
{
    BreakevenResult r;
    r.tSw = static_cast<double>(node.inclCycles) / params.cpuFreqHz;
    r.tCommIn =
        static_cast<double>(node.boundaryInBytes) / params.busBytesPerSec;
    r.tCommOut =
        static_cast<double>(node.boundaryOutBytes) / params.busBytesPerSec;
    double denom = r.tSw - (r.tCommIn + r.tCommOut);
    if (r.tSw <= 0.0 || denom <= 0.0)
        r.speedup = std::numeric_limits<double>::infinity();
    else
        r.speedup = r.tSw / denom;
    return r;
}

std::vector<Candidate>
PartitionResult::top(std::size_t n) const
{
    std::vector<Candidate> out(candidates.begin(),
                               candidates.begin() +
                                   std::min(n, candidates.size()));
    return out;
}

std::vector<Candidate>
PartitionResult::bottom(std::size_t n) const
{
    std::vector<Candidate> out;
    std::size_t count = std::min(n, candidates.size());
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(candidates[candidates.size() - 1 - i]);
    return out;
}

double
Partitioner::chooseCuts(const Cdfg &graph, vg::ContextId ctx,
                        std::vector<vg::ContextId> &out) const
{
    const CdfgNode &n = graph.node(ctx);

    std::vector<vg::ContextId> child_cuts;
    double best_below = std::numeric_limits<double>::infinity();
    for (vg::ContextId c : n.children)
        best_below = std::min(best_below,
                              chooseCuts(graph, c, child_cuts));

    // The synthetic input producer and empty wrappers are never
    // accelerator candidates.
    double be = std::numeric_limits<double>::infinity();
    if (n.inclOps > 0 && n.fnName != "*input*")
        be = breakeven(n, params_).speedup;

    if (std::isfinite(be) && be <= best_below) {
        // Merging the whole subtree into this node is at least as good
        // as anything below it: cut here, absorbing internal edges.
        out.push_back(ctx);
        return be;
    }
    out.insert(out.end(), child_cuts.begin(), child_cuts.end());
    return best_below;
}

PartitionResult
Partitioner::partition(const Cdfg &graph) const
{
    std::vector<vg::ContextId> cuts;
    for (vg::ContextId root : graph.roots()) {
        // The root (main) is never merged; evaluate its children.
        for (vg::ContextId c : graph.node(root).children)
            chooseCuts(graph, c, cuts);
    }

    PartitionResult result;
    double total_cycles = static_cast<double>(graph.totalCycles());
    for (vg::ContextId ctx : cuts) {
        const CdfgNode &n = graph.node(ctx);
        Candidate cand;
        cand.ctx = ctx;
        cand.displayName = n.displayName;
        cand.path = n.path;
        cand.breakevenSpeedup = breakeven(n, params_).speedup;
        cand.inclCycles = n.inclCycles;
        cand.inclOps = n.inclOps;
        cand.boundaryInBytes = n.boundaryInBytes;
        cand.boundaryOutBytes = n.boundaryOutBytes;
        cand.coverage = total_cycles > 0.0
                            ? static_cast<double>(n.inclCycles) /
                                  total_cycles
                            : 0.0;
        result.candidates.push_back(std::move(cand));
    }
    std::sort(result.candidates.begin(), result.candidates.end(),
              [](const Candidate &a, const Candidate &b) {
                  if (a.breakevenSpeedup != b.breakevenSpeedup)
                      return a.breakevenSpeedup < b.breakevenSpeedup;
                  return a.inclCycles > b.inclCycles;
              });
    for (const Candidate &c : result.candidates)
        result.coverage += c.coverage;

    for (const CdfgNode &n : graph.nodes()) {
        if (n.children.empty() && n.inclOps > 0 &&
            !breakeven(n, params_).viable()) {
            ++result.nonViable;
        }
    }
    return result;
}

} // namespace sigil::cdfg
