/**
 * @file
 * Whole-program offload speedup estimation.
 *
 * The paper's companion work (Nilakantan, Battle, Hempstead, CAL 2012
 * — cited as [23]) combines Sigil's profile with an execution model to
 * "measure overall gains with offloaded functions". This module
 * implements that model: given the trimmed calltree's candidates, an
 * assumed computational speedup per accelerator, and the breakeven
 * platform parameters, it applies Amdahl's law with explicit
 * data-offload costs:
 *
 *   T_new = T_total − Σ_f [ t_sw(f) − ( t_sw(f)/S_acc + t_comm(f) ) ]
 *
 * restricted to candidates where the bracket is positive (a candidate
 * whose communication eats the gain is left on the CPU).
 */

#ifndef SIGIL_CDFG_OFFLOAD_MODEL_HH
#define SIGIL_CDFG_OFFLOAD_MODEL_HH

#include <cstdint>
#include <vector>

#include "cdfg/partitioner.hh"

namespace sigil::cdfg {

/** Per-candidate outcome of the offload model. */
struct OffloadDecision
{
    Candidate candidate;

    /** Software time of the candidate's subtree, seconds. */
    double tSw = 0.0;

    /** Accelerated time incl. data movement, seconds. */
    double tAccel = 0.0;

    /** Whether offloading this candidate is a net win. */
    bool offloaded = false;
};

/** Whole-program estimate. */
struct OffloadEstimate
{
    /** Assumed computational speedup of every accelerator. */
    double acceleratorSpeedup = 1.0;

    /** Total software time of the program, seconds. */
    double tTotal = 0.0;

    /** Estimated time with all profitable candidates offloaded. */
    double tNew = 0.0;

    /** tTotal / tNew. */
    double overallSpeedup = 1.0;

    std::vector<OffloadDecision> decisions;

    /** Number of candidates actually offloaded. */
    std::size_t offloadedCount() const;
};

/**
 * Estimate the whole-program speedup when every partition candidate is
 * given an accelerator with computational speedup s_acc. Candidates
 * are assumed independent (they are disjoint subtrees by
 * construction).
 */
OffloadEstimate estimateOffload(const Cdfg &graph,
                                const PartitionResult &parts,
                                double s_acc,
                                const BreakevenParams &params =
                                    BreakevenParams{});

} // namespace sigil::cdfg

#endif // SIGIL_CDFG_OFFLOAD_MODEL_HH
