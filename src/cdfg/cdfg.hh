/**
 * @file
 * Control data flow graph: a calltree with data-dependency edges
 * (Section II-C1 of the paper).
 *
 * Nodes are calling contexts; call edges come from the context tree and
 * dependency edges from Sigil's producer→consumer communication matrix,
 * weighted by unique bytes (the true input set — an accelerator with
 * internal buffers never pays for non-unique re-fetches).
 *
 * For every node the graph precomputes the quantities needed to "draw a
 * box" around the node's entire subtree: inclusive computation
 * (operations and estimated cycles) and the unique bytes crossing the
 * subtree boundary inward and outward. Edges internal to the box are
 * discarded, exactly as in Figure 2 of the paper.
 */

#ifndef SIGIL_CDFG_CDFG_HH
#define SIGIL_CDFG_CDFG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cg/cg_profile.hh"
#include "core/profile.hh"
#include "vg/types.hh"

namespace sigil::cdfg {

/** One node of the control data flow graph. */
struct CdfgNode
{
    vg::ContextId ctx = vg::kInvalidContext;
    vg::ContextId parent = vg::kInvalidContext;
    std::vector<vg::ContextId> children;

    std::string fnName;
    std::string displayName;
    std::string path;
    int depth = 0;

    /** Calls to this context. */
    std::uint64_t calls = 0;

    /** Self computation (iops + flops). */
    std::uint64_t selfOps = 0;

    /** Self estimated cycles (Callgrind formula). */
    std::uint64_t selfCycles = 0;

    /** Subtree-inclusive computation. */
    std::uint64_t inclOps = 0;
    std::uint64_t inclCycles = 0;

    /**
     * Unique bytes crossing the subtree boundary when this node and its
     * whole subtree are merged into one accelerator box.
     */
    std::uint64_t boundaryInBytes = 0;
    std::uint64_t boundaryOutBytes = 0;
};

/** A dependency edge between two contexts (node-level, not boxed). */
struct CdfgEdge
{
    vg::ContextId producer = vg::kInvalidContext; // may be kUninitProducer
    vg::ContextId consumer = vg::kInvalidContext;
    std::uint64_t uniqueBytes = 0;
    std::uint64_t nonuniqueBytes = 0;
};

/**
 * How dependency edges are weighted when computing subtree boundaries.
 * The paper's methodology uses unique bytes only (an accelerator with
 * internal buffers never re-fetches); Total reproduces prior work that
 * did not separate first use from re-use, for ablation.
 */
enum class BoundaryWeight { UniqueOnly, Total };

/** The calltree-with-dependencies graph. */
class Cdfg
{
  public:
    /**
     * Build from matching Sigil and Callgrind profiles (both snapshotted
     * from the same guest run, so context ids agree).
     */
    static Cdfg build(const core::SigilProfile &sigil,
                      const cg::CgProfile &cg);

    /** Build from a Sigil profile alone (cycles fall back to ops). */
    static Cdfg build(const core::SigilProfile &sigil);

    const std::vector<CdfgNode> &nodes() const { return nodes_; }
    const std::vector<CdfgEdge> &edges() const { return edges_; }

    const CdfgNode &node(vg::ContextId ctx) const;

    /** Root contexts (no parent). */
    const std::vector<vg::ContextId> &roots() const { return roots_; }

    /** Total estimated cycles of the whole program. */
    std::uint64_t totalCycles() const { return totalCycles_; }

    /** Total operations of the whole program. */
    std::uint64_t totalOps() const { return totalOps_; }

    /** True if anc == ctx or anc is an ancestor of ctx. */
    bool isAncestorOrSelf(vg::ContextId anc, vg::ContextId ctx) const;

    /**
     * Recompute every node's boundary bytes under a different edge
     * weighting (ablation of the unique/non-unique distinction).
     */
    void reweightBoundaries(BoundaryWeight weight);

  private:
    void computeInclusive();
    void computeBoundaries(BoundaryWeight weight =
                               BoundaryWeight::UniqueOnly);

    std::vector<CdfgNode> nodes_;
    std::vector<CdfgEdge> edges_;
    std::vector<vg::ContextId> roots_;
    std::uint64_t totalCycles_ = 0;
    std::uint64_t totalOps_ = 0;
};

} // namespace sigil::cdfg

#endif // SIGIL_CDFG_CDFG_HH
