#include "offload_model.hh"

#include "support/logging.hh"

namespace sigil::cdfg {

std::size_t
OffloadEstimate::offloadedCount() const
{
    std::size_t n = 0;
    for (const OffloadDecision &d : decisions)
        n += d.offloaded ? 1 : 0;
    return n;
}

OffloadEstimate
estimateOffload(const Cdfg &graph, const PartitionResult &parts,
                double s_acc, const BreakevenParams &params)
{
    if (s_acc < 1.0)
        fatal("estimateOffload: accelerator speedup must be >= 1");

    OffloadEstimate est;
    est.acceleratorSpeedup = s_acc;
    est.tTotal =
        static_cast<double>(graph.totalCycles()) / params.cpuFreqHz;
    est.tNew = est.tTotal;

    for (const Candidate &c : parts.candidates) {
        OffloadDecision d;
        d.candidate = c;
        d.tSw = static_cast<double>(c.inclCycles) / params.cpuFreqHz;
        double t_comm =
            static_cast<double>(c.boundaryInBytes +
                                c.boundaryOutBytes) /
            params.busBytesPerSec;
        d.tAccel = d.tSw / s_acc + t_comm;
        d.offloaded = d.tAccel < d.tSw;
        if (d.offloaded)
            est.tNew -= d.tSw - d.tAccel;
        est.decisions.push_back(d);
    }
    est.overallSpeedup = est.tNew > 0.0 ? est.tTotal / est.tNew : 1.0;
    if (est.overallSpeedup < 1.0)
        est.overallSpeedup = 1.0;
    return est;
}

} // namespace sigil::cdfg
