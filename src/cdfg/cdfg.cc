#include "cdfg.hh"

#include "core/comm_stats.hh"
#include "support/logging.hh"

namespace sigil::cdfg {

Cdfg
Cdfg::build(const core::SigilProfile &sigil, const cg::CgProfile &cg)
{
    if (cg.rows.size() != sigil.rows.size()) {
        fatal("Cdfg::build: profile size mismatch (%zu sigil vs %zu cg "
              "contexts) — snapshot both tools from one run",
              sigil.rows.size(), cg.rows.size());
    }
    Cdfg g = build(sigil);
    for (std::size_t i = 0; i < cg.rows.size(); ++i)
        g.nodes_[i].selfCycles = cg.rows[i].self.cycleEstimate();
    g.computeInclusive();
    g.computeBoundaries();
    return g;
}

Cdfg
Cdfg::build(const core::SigilProfile &sigil)
{
    Cdfg g;
    g.nodes_.resize(sigil.rows.size());
    for (std::size_t i = 0; i < sigil.rows.size(); ++i) {
        const core::SigilRow &r = sigil.rows[i];
        CdfgNode &n = g.nodes_[i];
        n.ctx = r.ctx;
        n.parent = r.parent;
        n.fnName = r.fnName;
        n.displayName = r.displayName;
        n.path = r.path;
        n.calls = r.agg.calls;
        n.selfOps = r.agg.iops + r.agg.flops;
        // Without a Callgrind profile, estimated cycles default to a
        // flat cost per op and per byte moved.
        n.selfCycles = n.selfOps + r.agg.readBytes + r.agg.writeBytes;
        if (r.parent != vg::kInvalidContext) {
            if (r.parent >= r.ctx)
                panic("Cdfg::build: context %d has out-of-order parent",
                      r.ctx);
            g.nodes_[static_cast<std::size_t>(r.parent)]
                .children.push_back(r.ctx);
            n.depth =
                g.nodes_[static_cast<std::size_t>(r.parent)].depth + 1;
        } else {
            g.roots_.push_back(r.ctx);
        }
    }
    for (const core::CommEdge &e : sigil.edges) {
        CdfgEdge edge;
        edge.producer = e.producer;
        edge.consumer = e.consumer;
        edge.uniqueBytes = e.uniqueBytes;
        edge.nonuniqueBytes = e.nonuniqueBytes;
        g.edges_.push_back(edge);
    }
    g.computeInclusive();
    g.computeBoundaries();
    return g;
}

const CdfgNode &
Cdfg::node(vg::ContextId ctx) const
{
    if (ctx < 0 || static_cast<std::size_t>(ctx) >= nodes_.size())
        panic("Cdfg::node: bad context %d", ctx);
    return nodes_[static_cast<std::size_t>(ctx)];
}

bool
Cdfg::isAncestorOrSelf(vg::ContextId anc, vg::ContextId ctx) const
{
    if (anc < 0 || ctx < 0)
        return false;
    for (vg::ContextId a = ctx; a != vg::kInvalidContext;
         a = node(a).parent) {
        if (a == anc)
            return true;
    }
    return false;
}

void
Cdfg::computeInclusive()
{
    for (CdfgNode &n : nodes_) {
        n.inclOps = n.selfOps;
        n.inclCycles = n.selfCycles;
    }
    for (std::size_t i = nodes_.size(); i-- > 0;) {
        CdfgNode &n = nodes_[i];
        if (n.parent == vg::kInvalidContext)
            continue;
        CdfgNode &p = nodes_[static_cast<std::size_t>(n.parent)];
        p.inclOps += n.inclOps;
        p.inclCycles += n.inclCycles;
    }
    totalCycles_ = 0;
    totalOps_ = 0;
    for (vg::ContextId r : roots_) {
        totalCycles_ += node(r).inclCycles;
        totalOps_ += node(r).inclOps;
    }
}

void
Cdfg::computeBoundaries(BoundaryWeight weight)
{
    for (CdfgNode &n : nodes_) {
        n.boundaryInBytes = 0;
        n.boundaryOutBytes = 0;
    }
    // An edge p→c crosses the boundary of the box around subtree(r)
    // exactly when r covers one endpoint but not the other. The set of
    // r covering an endpoint x is x and its ancestors, so walk both
    // ancestor chains up to the fork (their common suffix contains both
    // endpoints and sees the edge as internal).
    for (const CdfgEdge &e : edges_) {
        std::uint64_t bytes = e.uniqueBytes;
        if (weight == BoundaryWeight::Total)
            bytes += e.nonuniqueBytes;
        // Ancestors of the consumer not shared with the producer see
        // the edge as inbound; producer-only ancestors see it as
        // outbound.
        for (vg::ContextId a = e.consumer; a != vg::kInvalidContext;
             a = node(a).parent) {
            if (isAncestorOrSelf(a, e.producer))
                break;
            nodes_[static_cast<std::size_t>(a)].boundaryInBytes += bytes;
        }
        if (e.producer < 0)
            continue; // program input has no node
        for (vg::ContextId a = e.producer; a != vg::kInvalidContext;
             a = node(a).parent) {
            if (isAncestorOrSelf(a, e.consumer))
                break;
            nodes_[static_cast<std::size_t>(a)].boundaryOutBytes += bytes;
        }
    }
}

void
Cdfg::reweightBoundaries(BoundaryWeight weight)
{
    computeBoundaries(weight);
}

} // namespace sigil::cdfg
