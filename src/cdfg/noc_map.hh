/**
 * @file
 * Communication-aware mapping of functions onto a mesh NoC.
 *
 * The paper's introduction names network-on-chip design among the
 * tasks a communication profile improves. This module makes that
 * concrete: given the producer→consumer matrix, place the heaviest
 * communicating contexts onto tiles of a k×k mesh so that bytes travel
 * few hops. The quality metric is total byte-hops (Σ bytes × Manhattan
 * distance); the greedy placer is compared against naive row-major
 * placement by the accompanying benchmark.
 */

#ifndef SIGIL_CDFG_NOC_MAP_HH
#define SIGIL_CDFG_NOC_MAP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/profile.hh"

namespace sigil::cdfg {

/** A placement of contexts onto a k×k mesh. */
struct MeshMapping
{
    unsigned meshSize = 0;

    /** Contexts placed, one per tile slot used (index = tile). */
    std::vector<vg::ContextId> tileContents;

    /** Tile index of a context; -1 if the context was not placed. */
    int tileOf(vg::ContextId ctx) const;

    /** Manhattan distance between two tiles. */
    unsigned hopDistance(unsigned tile_a, unsigned tile_b) const;

    /**
     * Total byte-hops of the mapping over a communication matrix.
     * Edges with an unplaced endpoint (or the synthetic input) are
     * charged the mesh diameter, modelling off-chip traffic.
     */
    std::uint64_t
    byteHops(const std::vector<core::CommEdge> &edges) const;
};

/**
 * Select the (up to) k*k contexts with the highest communication
 * volume and place them row-major in that order — the naive baseline.
 */
MeshMapping mapRowMajor(const core::SigilProfile &profile, unsigned k);

/**
 * Greedy communication-aware placement: seed with the heaviest
 * communicator at the mesh centre, then repeatedly place the unplaced
 * context with the strongest affinity to already-placed ones onto the
 * free tile minimizing its weighted distance to its placed partners.
 */
MeshMapping mapGreedy(const core::SigilProfile &profile, unsigned k);

} // namespace sigil::cdfg

#endif // SIGIL_CDFG_NOC_MAP_HH
