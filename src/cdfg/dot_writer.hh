/**
 * @file
 * Graphviz DOT export of control data flow graphs.
 *
 * Renders the paper's Figure 1 view: the calltree as solid edges, data
 * dependencies as dashed edges weighted by unique bytes. Optionally
 * renders a trimmed tree (Figure 2) where each selected candidate's
 * subtree is drawn as one merged box.
 */

#ifndef SIGIL_CDFG_DOT_WRITER_HH
#define SIGIL_CDFG_DOT_WRITER_HH

#include <iosfwd>
#include <string>

#include "cdfg/cdfg.hh"
#include "cdfg/partitioner.hh"

namespace sigil::cdfg {

/** Options controlling the DOT rendering. */
struct DotOptions
{
    /** Suppress dependency edges carrying fewer unique bytes. */
    std::uint64_t minEdgeBytes = 1;

    /** Suppress nodes with less inclusive-cycle share than this. */
    double minNodeShare = 0.0;

    /** Include the synthetic *input* producer as a node. */
    bool showInput = true;
};

/** Write the full control data flow graph (paper Figure 1). */
void writeDot(std::ostream &os, const Cdfg &graph,
              const DotOptions &options = DotOptions{});

/**
 * Write the trimmed graph (paper Figure 2b): every candidate's subtree
 * collapses to a single box labelled with its inclusive cost and
 * breakeven speedup.
 */
void writeTrimmedDot(std::ostream &os, const Cdfg &graph,
                     const PartitionResult &parts,
                     const DotOptions &options = DotOptions{});

/** Convenience: render writeDot to a string. */
std::string dotString(const Cdfg &graph,
                      const DotOptions &options = DotOptions{});

} // namespace sigil::cdfg

#endif // SIGIL_CDFG_DOT_WRITER_HH
