/**
 * @file
 * HW/SW partitioning of control data flow graphs (Sections II-C1 and
 * IV-A of the paper).
 *
 * The breakeven-speedup metric (paper eq. 1) is the computational
 * speedup an accelerator for a subtree must achieve just to offset the
 * cost of moving its unique input and output data over a fixed-bandwidth
 * SoC bus. The trimming heuristic walks the calltree bottom-up and
 * merges a subtree into its root whenever the root's breakeven-speedup
 * is no worse than the best achievable inside the subtree — maximizing
 * application coverage while keeping communication minimal. The leaf
 * nodes of the trimmed tree are the accelerator candidates.
 */

#ifndef SIGIL_CDFG_PARTITIONER_HH
#define SIGIL_CDFG_PARTITIONER_HH

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "cdfg/cdfg.hh"

namespace sigil::cdfg {

/** Platform parameters of the breakeven model. */
struct BreakevenParams
{
    /** CPU frequency used to convert estimated cycles to seconds. */
    double cpuFreqHz = 2.0e9;

    /** SoC bus bandwidth for accelerator offload traffic. */
    double busBytesPerSec = 16.0e9;
};

/** Breakeven evaluation of one node's boxed subtree. */
struct BreakevenResult
{
    /** Estimated software run time of the subtree, seconds. */
    double tSw = 0.0;

    /** Input + output offload time, seconds. */
    double tCommIn = 0.0;
    double tCommOut = 0.0;

    /**
     * Breakeven speedup; infinity when communication costs meet or
     * exceed the software run time (offload can never win).
     */
    double speedup = 0.0;

    bool viable() const { return std::isfinite(speedup); }
};

/** Compute eq. 1 for the boxed subtree rooted at a node. */
BreakevenResult breakeven(const CdfgNode &node,
                          const BreakevenParams &params);

/** One selected accelerator candidate. */
struct Candidate
{
    vg::ContextId ctx = vg::kInvalidContext;
    std::string displayName;
    std::string path;
    double breakevenSpeedup = 0.0;
    std::uint64_t inclCycles = 0;
    std::uint64_t inclOps = 0;
    std::uint64_t boundaryInBytes = 0;
    std::uint64_t boundaryOutBytes = 0;
    /** Fraction of total program cycles covered by this candidate. */
    double coverage = 0.0;
};

/** Result of trimming a calltree. */
struct PartitionResult
{
    /** Leaf nodes of the trimmed tree, sorted by ascending breakeven. */
    std::vector<Candidate> candidates;

    /** Σ candidate coverage — the lower bar of the paper's Figure 7. */
    double coverage = 0.0;

    /** Contexts whose subtree was found non-viable (infinite S_be). */
    std::size_t nonViable = 0;

    /** The best (lowest breakeven) candidates, up to n. */
    std::vector<Candidate> top(std::size_t n) const;

    /** The worst (highest finite breakeven) candidates, up to n. */
    std::vector<Candidate> bottom(std::size_t n) const;
};

/** The max-coverage / min-communication trimming heuristic. */
class Partitioner
{
  public:
    explicit Partitioner(const BreakevenParams &params = BreakevenParams{})
        : params_(params)
    {}

    /** Trim the tree; roots themselves are never merged. */
    PartitionResult partition(const Cdfg &graph) const;

  private:
    /**
     * Recursive cut selection: returns the best breakeven achievable in
     * the subtree, appending cut nodes to out.
     */
    double chooseCuts(const Cdfg &graph, vg::ContextId ctx,
                      std::vector<vg::ContextId> &out) const;

    BreakevenParams params_;
};

} // namespace sigil::cdfg

#endif // SIGIL_CDFG_PARTITIONER_HH
