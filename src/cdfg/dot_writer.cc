#include "dot_writer.hh"

#include <ostream>
#include <sstream>
#include <unordered_map>

#include "core/comm_stats.hh"

namespace sigil::cdfg {

namespace {

/** Escape a label for DOT. */
std::string
escape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

std::string
nodeId(vg::ContextId ctx)
{
    if (ctx == core::kUninitProducer)
        return "uninit";
    return "n" + std::to_string(ctx);
}

bool
nodeVisible(const Cdfg &graph, const CdfgNode &node,
            const DotOptions &options)
{
    if (options.minNodeShare <= 0.0)
        return true;
    double total = static_cast<double>(graph.totalCycles());
    if (total <= 0.0)
        return true;
    return static_cast<double>(node.inclCycles) / total >=
           options.minNodeShare;
}

} // namespace

void
writeDot(std::ostream &os, const Cdfg &graph, const DotOptions &options)
{
    os << "digraph cdfg {\n";
    os << "  rankdir=TB;\n";
    os << "  node [shape=ellipse, fontsize=10];\n";

    for (const CdfgNode &n : graph.nodes()) {
        if (!nodeVisible(graph, n, options))
            continue;
        if (!options.showInput && n.fnName == "*input*")
            continue;
        os << "  " << nodeId(n.ctx) << " [label=\""
           << escape(n.displayName) << "\\nops=" << n.inclOps << "\"];\n";
    }

    // Call edges (solid, the calltree).
    for (const CdfgNode &n : graph.nodes()) {
        if (n.parent == vg::kInvalidContext)
            continue;
        if (!nodeVisible(graph, n, options) ||
            !nodeVisible(graph, graph.node(n.parent), options))
            continue;
        if (!options.showInput && n.fnName == "*input*")
            continue;
        os << "  " << nodeId(n.parent) << " -> " << nodeId(n.ctx)
           << " [style=solid];\n";
    }

    // Dependency edges (dashed, weighted by unique bytes).
    bool saw_uninit = false;
    for (const CdfgEdge &e : graph.edges()) {
        if (e.uniqueBytes < options.minEdgeBytes)
            continue;
        if (e.producer >= 0) {
            const CdfgNode &p = graph.node(e.producer);
            if (!nodeVisible(graph, p, options))
                continue;
            if (!options.showInput && p.fnName == "*input*")
                continue;
        } else {
            if (!options.showInput)
                continue;
            saw_uninit = true;
        }
        if (!nodeVisible(graph, graph.node(e.consumer), options))
            continue;
        os << "  " << nodeId(e.producer) << " -> " << nodeId(e.consumer)
           << " [style=dashed, label=\"" << e.uniqueBytes << "\"];\n";
    }
    if (saw_uninit)
        os << "  uninit [label=\"<uninitialized>\", shape=box];\n";
    os << "}\n";
}

void
writeTrimmedDot(std::ostream &os, const Cdfg &graph,
                const PartitionResult &parts, const DotOptions &options)
{
    // Map every context to its representative: the candidate whose
    // subtree swallows it, or itself.
    std::unordered_map<vg::ContextId, vg::ContextId> rep;
    for (const Candidate &c : parts.candidates) {
        for (const CdfgNode &n : graph.nodes()) {
            if (graph.isAncestorOrSelf(c.ctx, n.ctx))
                rep[n.ctx] = c.ctx;
        }
    }
    auto repOf = [&](vg::ContextId ctx) {
        auto it = rep.find(ctx);
        return it == rep.end() ? ctx : it->second;
    };
    auto isCandidate = [&](vg::ContextId ctx) {
        return rep.count(ctx) != 0 && rep.at(ctx) == ctx;
    };

    os << "digraph trimmed {\n";
    os << "  rankdir=TB;\n";
    os << "  node [fontsize=10];\n";

    for (const CdfgNode &n : graph.nodes()) {
        if (repOf(n.ctx) != n.ctx)
            continue; // merged away
        if (!options.showInput && n.fnName == "*input*")
            continue;
        if (isCandidate(n.ctx)) {
            BreakevenResult be = breakeven(n, BreakevenParams{});
            os << "  " << nodeId(n.ctx) << " [shape=box, label=\""
               << escape(n.displayName) << "\\nops=" << n.inclOps
               << "\\nS_be=";
            std::ostringstream val;
            if (be.viable())
                val.precision(4);
            if (be.viable())
                val << be.speedup;
            else
                val << "inf";
            os << val.str() << "\"];\n";
        } else {
            os << "  " << nodeId(n.ctx) << " [shape=ellipse, label=\""
               << escape(n.displayName) << "\"];\n";
        }
    }

    // Call edges between representatives.
    for (const CdfgNode &n : graph.nodes()) {
        if (n.parent == vg::kInvalidContext || repOf(n.ctx) != n.ctx)
            continue;
        if (!options.showInput && n.fnName == "*input*")
            continue;
        vg::ContextId p = repOf(n.parent);
        if (p != n.ctx) {
            os << "  " << nodeId(p) << " -> " << nodeId(n.ctx)
               << " [style=solid];\n";
        }
    }

    // Dependency edges, accumulated between representatives (edges
    // internal to a box are discarded, as in Figure 2).
    std::unordered_map<std::uint64_t, std::uint64_t> merged;
    for (const CdfgEdge &e : graph.edges()) {
        vg::ContextId p =
            e.producer >= 0 ? repOf(e.producer) : e.producer;
        vg::ContextId c = repOf(e.consumer);
        if (p == c)
            continue;
        std::uint64_t key =
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p))
             << 32) |
            static_cast<std::uint32_t>(c);
        merged[key] += e.uniqueBytes;
    }
    bool saw_uninit = false;
    for (const auto &[key, bytes] : merged) {
        if (bytes < options.minEdgeBytes)
            continue;
        vg::ContextId p = static_cast<vg::ContextId>(
            static_cast<std::int32_t>(key >> 32));
        vg::ContextId c = static_cast<vg::ContextId>(
            static_cast<std::int32_t>(key & 0xffffffff));
        if (p < 0) {
            if (!options.showInput)
                continue;
            if (p == core::kUninitProducer)
                saw_uninit = true;
        } else if (!options.showInput &&
                   graph.node(p).fnName == "*input*") {
            continue;
        }
        os << "  " << nodeId(p) << " -> " << nodeId(c)
           << " [style=dashed, label=\"" << bytes << "\"];\n";
    }
    if (saw_uninit)
        os << "  uninit [label=\"<uninitialized>\", shape=box];\n";
    os << "}\n";
}

std::string
dotString(const Cdfg &graph, const DotOptions &options)
{
    std::ostringstream os;
    writeDot(os, graph, options);
    return os.str();
}

} // namespace sigil::cdfg
