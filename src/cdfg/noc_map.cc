#include "noc_map.hh"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "support/logging.hh"

namespace sigil::cdfg {

namespace {

/** Total bytes (unique + re-read) a context sends or receives. */
std::unordered_map<vg::ContextId, std::uint64_t>
commVolume(const core::SigilProfile &profile)
{
    std::unordered_map<vg::ContextId, std::uint64_t> vol;
    for (const core::CommEdge &e : profile.edges) {
        std::uint64_t bytes = e.uniqueBytes + e.nonuniqueBytes;
        if (e.producer >= 0)
            vol[e.producer] += bytes;
        vol[e.consumer] += bytes;
    }
    return vol;
}

/** Contexts ordered by descending communication volume, capped at n. */
std::vector<vg::ContextId>
topCommunicators(const core::SigilProfile &profile, std::size_t n)
{
    auto vol = commVolume(profile);
    std::vector<std::pair<vg::ContextId, std::uint64_t>> ranked(
        vol.begin(), vol.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) {
                  if (a.second != b.second)
                      return a.second > b.second;
                  return a.first < b.first;
              });
    std::vector<vg::ContextId> out;
    for (const auto &[ctx, v] : ranked) {
        (void)v;
        if (out.size() >= n)
            break;
        out.push_back(ctx);
    }
    return out;
}

} // namespace

int
MeshMapping::tileOf(vg::ContextId ctx) const
{
    for (std::size_t t = 0; t < tileContents.size(); ++t) {
        if (tileContents[t] == ctx)
            return static_cast<int>(t);
    }
    return -1;
}

unsigned
MeshMapping::hopDistance(unsigned tile_a, unsigned tile_b) const
{
    if (meshSize == 0)
        panic("MeshMapping::hopDistance on empty mapping");
    unsigned xa = tile_a % meshSize, ya = tile_a / meshSize;
    unsigned xb = tile_b % meshSize, yb = tile_b / meshSize;
    unsigned dx = xa > xb ? xa - xb : xb - xa;
    unsigned dy = ya > yb ? ya - yb : yb - ya;
    return dx + dy;
}

std::uint64_t
MeshMapping::byteHops(const std::vector<core::CommEdge> &edges) const
{
    std::uint64_t total = 0;
    unsigned diameter = meshSize > 0 ? 2 * (meshSize - 1) : 0;
    for (const core::CommEdge &e : edges) {
        std::uint64_t bytes = e.uniqueBytes + e.nonuniqueBytes;
        int src = e.producer >= 0 ? tileOf(e.producer) : -1;
        int dst = tileOf(e.consumer);
        if (src < 0 || dst < 0) {
            total += bytes * diameter; // off-chip / memory controller
            continue;
        }
        total += bytes * hopDistance(static_cast<unsigned>(src),
                                     static_cast<unsigned>(dst));
    }
    return total;
}

MeshMapping
mapRowMajor(const core::SigilProfile &profile, unsigned k)
{
    if (k == 0)
        fatal("mapRowMajor: mesh size must be > 0");
    MeshMapping m;
    m.meshSize = k;
    m.tileContents = topCommunicators(profile, std::size_t{k} * k);
    return m;
}

MeshMapping
mapGreedy(const core::SigilProfile &profile, unsigned k)
{
    if (k == 0)
        fatal("mapGreedy: mesh size must be > 0");
    std::vector<vg::ContextId> nodes =
        topCommunicators(profile, std::size_t{k} * k);

    // Pairwise affinity among the selected nodes.
    std::map<std::pair<vg::ContextId, vg::ContextId>, std::uint64_t>
        affinity;
    for (const core::CommEdge &e : profile.edges) {
        if (e.producer < 0)
            continue;
        affinity[{e.producer, e.consumer}] +=
            e.uniqueBytes + e.nonuniqueBytes;
    }
    auto pair_bytes = [&](vg::ContextId a, vg::ContextId b) {
        std::uint64_t v = 0;
        auto it = affinity.find({a, b});
        if (it != affinity.end())
            v += it->second;
        it = affinity.find({b, a});
        if (it != affinity.end())
            v += it->second;
        return v;
    };

    MeshMapping m;
    m.meshSize = k;
    m.tileContents.assign(std::size_t{k} * k, vg::kInvalidContext);
    if (nodes.empty())
        return m;

    std::vector<bool> tile_used(std::size_t{k} * k, false);
    std::vector<bool> placed(nodes.size(), false);

    // Seed: the heaviest communicator at the mesh centre.
    unsigned centre = (k / 2) * k + k / 2;
    m.tileContents[centre] = nodes[0];
    tile_used[centre] = true;
    placed[0] = true;

    for (std::size_t step = 1; step < nodes.size(); ++step) {
        // Pick the unplaced node with the strongest tie to placed ones.
        std::size_t best_node = nodes.size();
        std::uint64_t best_tie = 0;
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            if (placed[i])
                continue;
            std::uint64_t tie = 0;
            for (std::size_t j = 0; j < nodes.size(); ++j) {
                if (placed[j])
                    tie += pair_bytes(nodes[i], nodes[j]);
            }
            if (best_node == nodes.size() || tie > best_tie) {
                best_node = i;
                best_tie = tie;
            }
        }

        // Put it on the free tile minimizing weighted distance to its
        // placed partners.
        unsigned best_tile = 0;
        std::uint64_t best_cost = ~0ull;
        for (unsigned t = 0; t < k * k; ++t) {
            if (tile_used[t])
                continue;
            std::uint64_t cost = 0;
            for (unsigned u = 0; u < k * k; ++u) {
                if (!tile_used[u])
                    continue;
                std::uint64_t bytes =
                    pair_bytes(nodes[best_node], m.tileContents[u]);
                cost += bytes * m.hopDistance(t, u);
            }
            if (cost < best_cost) {
                best_cost = cost;
                best_tile = t;
            }
        }
        m.tileContents[best_tile] = nodes[best_node];
        tile_used[best_tile] = true;
        placed[best_node] = true;
    }

    // Compact representation: strip unused trailing slots is not
    // needed — tileOf() skips kInvalidContext entries naturally.
    return m;
}

} // namespace sigil::cdfg
