#include "chain_stats.hh"

#include <unordered_map>
#include <unordered_set>

#include "critpath/critical_path.hh"
#include "support/logging.hh"

namespace sigil::critpath {

ChainStats
chainStats(const core::EventTrace &trace)
{
    ChainStats stats;
    std::unordered_map<std::uint64_t, std::uint64_t> incl_of;
    std::unordered_set<std::uint64_t> has_successor;
    std::vector<core::XferEvent> pending;

    for (const core::EventRecord &rec : trace.records) {
        if (rec.kind == core::EventRecord::Kind::Xfer) {
            pending.push_back(rec.xfer);
            continue;
        }
        const core::ComputeEvent &c = rec.compute;
        ++stats.segments;
        std::uint64_t self = c.iops + c.flops;
        stats.totalWork += self;

        std::uint64_t best = 0;
        std::uint64_t preds = 0;
        auto dep = [&](std::uint64_t seq) {
            if (seq == 0)
                return;
            auto it = incl_of.find(seq);
            if (it == incl_of.end())
                return;
            ++preds;
            has_successor.insert(seq);
            if (it->second > best)
                best = it->second;
        };
        dep(c.predSeq);
        for (const core::XferEvent &x : pending) {
            if (x.dstSeq == c.seq)
                dep(x.srcSeq);
        }
        pending.clear();

        stats.edges += preds;
        if (preds == 0)
            ++stats.roots;
        std::uint64_t incl = best + self;
        incl_of.emplace(c.seq, incl);
        stats.inclCostHist.add(incl);
        if (incl > stats.criticalPath)
            stats.criticalPath = incl;
    }

    for (const auto &[seq, incl] : incl_of) {
        (void)incl;
        if (!has_successor.count(seq))
            ++stats.leaves;
    }

    stats.avgParallelism =
        stats.criticalPath == 0
            ? 1.0
            : static_cast<double>(stats.totalWork) /
                  static_cast<double>(stats.criticalPath);
    if (stats.avgParallelism < 1.0)
        stats.avgParallelism = 1.0;
    return stats;
}

std::vector<double>
scheduleSpeedups(const core::EventTrace &trace,
                 const std::vector<unsigned> &slots)
{
    std::uint64_t serial = scheduleMakespan(trace, 1);
    std::vector<double> out;
    out.reserve(slots.size());
    for (unsigned s : slots) {
        std::uint64_t makespan = scheduleMakespan(trace, s);
        out.push_back(makespan == 0
                          ? 1.0
                          : static_cast<double>(serial) /
                                static_cast<double>(makespan));
    }
    return out;
}

} // namespace sigil::critpath
