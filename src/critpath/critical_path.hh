/**
 * @file
 * Dependency-chain construction and critical-path analysis over Sigil
 * event traces (Sections II-C2 and IV-C of the paper).
 *
 * Each computation segment of the trace becomes a chain node whose self
 * cost is the operations retired in it. A node depends on its serial
 * predecessor (previous occurrence of the same call, or the caller
 * segment that spawned it) and on every segment it consumed unique data
 * from. Functions are modelled as non-blocking, so a caller's
 * re-occurrence after a child returns does NOT depend on the child —
 * only data creates that edge. The longest accumulated chain is the
 * critical path; total self cost divided by the critical path bounds
 * the extractable function-level parallelism.
 */

#ifndef SIGIL_CRITPATH_CRITICAL_PATH_HH
#define SIGIL_CRITPATH_CRITICAL_PATH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/event_trace.hh"
#include "vg/types.hh"

namespace sigil::critpath {

/** One node of a dependency chain. */
struct ChainNode
{
    std::uint64_t seq = 0;
    vg::ContextId ctx = vg::kInvalidContext;
    vg::CallNum call = 0;

    /** Operations retired in the segment. */
    std::uint64_t selfCost = 0;

    /** Longest-chain cost from any root through this node. */
    std::uint64_t inclCost = 0;

    /** Predecessor on the longest chain (0 = chain starts here). */
    std::uint64_t bestPredSeq = 0;
};

/** Result of analyzing one event trace. */
struct CriticalPathResult
{
    /** Σ self cost over all segments (the serial program length). */
    std::uint64_t serialLength = 0;

    /** Length of the longest dependency chain. */
    std::uint64_t criticalPathLength = 0;

    /** serialLength / criticalPathLength (≥ 1). */
    double maxParallelism = 1.0;

    /** Nodes of the critical path, leaf first (as the paper lists). */
    std::vector<ChainNode> path;

    /**
     * Contexts along the critical path, leaf first, with consecutive
     * duplicates collapsed — the "drand48_iterate → … → main" view.
     */
    std::vector<vg::ContextId> pathContexts() const;
};

/** Analyze an event trace. */
CriticalPathResult analyze(const core::EventTrace &trace);

/**
 * Greedy list-schedule of the dependency graph onto a fixed number of
 * cores (scheduling slots), respecting all edges: an upper-bound
 * makespan for mapping the chains onto real cores (Section IV-C's
 * closing discussion).
 *
 * @return makespan in operations.
 */
std::uint64_t scheduleMakespan(const core::EventTrace &trace,
                               unsigned slots);

} // namespace sigil::critpath

#endif // SIGIL_CRITPATH_CRITICAL_PATH_HH
