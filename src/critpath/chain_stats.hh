/**
 * @file
 * Dependency-chain statistics beyond the single critical path.
 *
 * The paper contrasts benchmarks with "many short paths" (streamcluster,
 * libquantum) against ones whose path is "composed of a single function"
 * (fluidanimate). This module quantifies that: how many chain roots and
 * leaves the dependency graph has, the distribution of chain depths and
 * costs, and how much parallel work is available at each depth — the
 * inputs a scheduler would use to map chains onto cores.
 */

#ifndef SIGIL_CRITPATH_CHAIN_STATS_HH
#define SIGIL_CRITPATH_CHAIN_STATS_HH

#include <cstdint>
#include <vector>

#include "core/event_trace.hh"
#include "support/histogram.hh"

namespace sigil::critpath {

/** Aggregate statistics of the dependency graph. */
struct ChainStats
{
    /** Total segments (graph nodes). */
    std::uint64_t segments = 0;

    /** Segments with no predecessor (chain starts). */
    std::uint64_t roots = 0;

    /** Segments no other segment depends on (chain ends). */
    std::uint64_t leaves = 0;

    /** Total dependency edges (serial + data). */
    std::uint64_t edges = 0;

    /** Histogram of per-segment accumulated chain costs, bin 1000. */
    LinearHistogram inclCostHist{1000};

    /** Σ self cost over all segments. */
    std::uint64_t totalWork = 0;

    /** Longest accumulated chain. */
    std::uint64_t criticalPath = 0;

    /**
     * Average number of segments that are simultaneously "ready" when
     * executing greedily (work / critical path, the average-parallelism
     * figure of merit).
     */
    double avgParallelism = 1.0;
};

/** Compute chain statistics of an event trace. */
ChainStats chainStats(const core::EventTrace &trace);

/**
 * Speedup of a greedy list schedule of the trace on each slot count in
 * slots (serial time / makespan). Saturates at the trace's
 * max parallelism; this is the "map dependency chains onto scheduling
 * slots" experiment the paper's Section IV-C closes with.
 */
std::vector<double> scheduleSpeedups(const core::EventTrace &trace,
                                     const std::vector<unsigned> &slots);

} // namespace sigil::critpath

#endif // SIGIL_CRITPATH_CHAIN_STATS_HH
