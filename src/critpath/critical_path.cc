#include "critical_path.hh"

#include <algorithm>
#include <unordered_map>

#include "support/logging.hh"

namespace sigil::critpath {

std::vector<vg::ContextId>
CriticalPathResult::pathContexts() const
{
    std::vector<vg::ContextId> out;
    for (const ChainNode &n : path) {
        if (out.empty() || out.back() != n.ctx)
            out.push_back(n.ctx);
    }
    return out;
}

CriticalPathResult
analyze(const core::EventTrace &trace)
{
    CriticalPathResult result;

    std::vector<ChainNode> nodes;
    std::unordered_map<std::uint64_t, std::size_t> by_seq;
    std::vector<core::XferEvent> pending;

    auto incl_of = [&](std::uint64_t seq) -> std::uint64_t {
        if (seq == 0)
            return 0;
        auto it = by_seq.find(seq);
        return it == by_seq.end() ? 0 : nodes[it->second].inclCost;
    };

    for (const core::EventRecord &rec : trace.records) {
        if (rec.kind == core::EventRecord::Kind::Xfer) {
            pending.push_back(rec.xfer);
            continue;
        }
        const core::ComputeEvent &c = rec.compute;
        ChainNode n;
        n.seq = c.seq;
        n.ctx = c.ctx;
        n.call = c.call;
        n.selfCost = c.iops + c.flops;
        result.serialLength += n.selfCost;

        std::uint64_t best = incl_of(c.predSeq);
        n.bestPredSeq = c.predSeq;
        for (const core::XferEvent &x : pending) {
            if (x.dstSeq != c.seq) {
                warn("critpath: transfer for segment %llu seen before "
                     "segment %llu",
                     static_cast<unsigned long long>(x.dstSeq),
                     static_cast<unsigned long long>(c.seq));
                continue;
            }
            std::uint64_t cand = incl_of(x.srcSeq);
            if (cand > best) {
                best = cand;
                n.bestPredSeq = x.srcSeq;
            }
        }
        pending.clear();

        n.inclCost = best + n.selfCost;
        by_seq.emplace(n.seq, nodes.size());
        nodes.push_back(n);
    }

    // Locate the longest chain and walk it back to its start.
    std::size_t tip = nodes.size();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (tip == nodes.size() ||
            nodes[i].inclCost > nodes[tip].inclCost) {
            tip = i;
        }
    }
    if (tip < nodes.size()) {
        result.criticalPathLength = nodes[tip].inclCost;
        std::uint64_t seq = nodes[tip].seq;
        while (seq != 0) {
            auto it = by_seq.find(seq);
            if (it == by_seq.end())
                break;
            const ChainNode &n = nodes[it->second];
            result.path.push_back(n);
            seq = n.bestPredSeq;
        }
    }

    result.maxParallelism =
        result.criticalPathLength == 0
            ? 1.0
            : static_cast<double>(result.serialLength) /
                  static_cast<double>(result.criticalPathLength);
    if (result.maxParallelism < 1.0)
        result.maxParallelism = 1.0;
    return result;
}

std::uint64_t
scheduleMakespan(const core::EventTrace &trace, unsigned slots)
{
    if (slots == 0)
        fatal("scheduleMakespan: need at least one slot");

    std::unordered_map<std::uint64_t, std::uint64_t> finish_of;
    std::vector<std::uint64_t> slot_free(slots, 0);
    std::vector<core::XferEvent> pending;
    std::uint64_t makespan = 0;

    for (const core::EventRecord &rec : trace.records) {
        if (rec.kind == core::EventRecord::Kind::Xfer) {
            pending.push_back(rec.xfer);
            continue;
        }
        const core::ComputeEvent &c = rec.compute;
        std::uint64_t ready = 0;
        auto dep = [&](std::uint64_t seq) {
            if (seq == 0)
                return;
            auto it = finish_of.find(seq);
            if (it != finish_of.end())
                ready = std::max(ready, it->second);
        };
        dep(c.predSeq);
        for (const core::XferEvent &x : pending) {
            if (x.dstSeq == c.seq)
                dep(x.srcSeq);
        }
        pending.clear();

        auto slot = std::min_element(slot_free.begin(), slot_free.end());
        std::uint64_t start = std::max(*slot, ready);
        std::uint64_t end = start + c.iops + c.flops;
        *slot = end;
        finish_of.emplace(c.seq, end);
        makespan = std::max(makespan, end);
    }
    return makespan;
}

} // namespace sigil::critpath
