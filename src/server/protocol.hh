/**
 * @file
 * Wire protocol of the profile-query daemon (documented in
 * FORMATS.md §"sigild wire protocol").
 *
 * Every message is one frame of the net::socket codec:
 * u32le length | u8 op | payload | u32le CRC32C(op + payload).
 * Request payloads are ByteSink-encoded (varint-length-prefixed
 * strings); response payloads are either raw query text (Op::RespText)
 * or u8 error code + length-prefixed message (Op::RespError). The
 * protocol is strictly request→response on one connection; a client
 * may pipeline sequential requests but responses always come back in
 * order (one worker owns the connection).
 */

#ifndef SIGIL_SERVER_PROTOCOL_HH
#define SIGIL_SERVER_PROTOCOL_HH

#include <cstdint>

namespace sigil::server {

/** Protocol revision carried in the ping response. */
constexpr std::uint32_t kProtocolVersion = 1;

/** Operation codes. Requests < 0x80, responses >= 0x80. */
enum class Op : std::uint8_t {
    // Control plane.
    Ping = 0x01,     ///< () -> "sigild <version>"
    Stats = 0x02,    ///< () -> server + catalog counters
    List = 0x03,     ///< () -> one loaded trace per line
    Load = 0x20,     ///< (name, path) -> load report line
    Unload = 0x21,   ///< (name) -> confirmation line
    Shutdown = 0x22, ///< () -> confirmation, then graceful drain

    // Query plane (all renderings from core/profile_query.hh).
    Profile = 0x10,   ///< (name) -> full release-format profile
    Function = 0x11,  ///< (name, fn_name) -> matching context rows
    Edges = 0x12,     ///< (name) -> communication matrix
    Summary = 0x13,   ///< (name) -> flat report + comm summary
    Diff = 0x14,      ///< (name_a, name_b) -> structural diff
    Partition = 0x15, ///< (name) -> hw/sw partition candidates

    // Responses.
    RespText = 0x80,  ///< payload is the query text
    RespError = 0x81, ///< u8 ErrCode + varint-prefixed message
};

/** Structured error codes of Op::RespError. */
enum class ErrCode : std::uint8_t {
    BadFrame = 1,     ///< frame failed CRC / length validation
    BadRequest = 2,   ///< payload did not decode as the op requires
    UnknownOp = 3,    ///< request op code not in the table above
    NotFound = 4,     ///< no loaded trace (or function) by that name
    LoadFailed = 5,   ///< trace replay failed during Op::Load
    ShuttingDown = 6, ///< server is draining; retry elsewhere
    Internal = 7,     ///< anything else; message has detail
};

/** Human-readable error-code name ("bad-frame", "not-found", ...). */
const char *errCodeName(ErrCode code);

/** Cap on request frames: control ops carry names/paths, never bulk. */
constexpr std::uint32_t kMaxRequestFrame = 1u << 16;

/** Cap on response frames: a full profile of a large run is MBs. */
constexpr std::uint32_t kMaxResponseFrame = 256u << 20;

} // namespace sigil::server

#endif // SIGIL_SERVER_PROTOCOL_HH
