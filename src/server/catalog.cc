#include "server/catalog.hh"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "core/profile_query.hh"
#include "core/segment_engine.hh"
#include "core/sigil_profiler.hh"
#include "vg/guest.hh"
#include "vg/trace_io.hh"

namespace sigil::server {

ProfileCatalog::ProfileCatalog(std::shared_ptr<MemoryGovernor> governor,
                               unsigned segments)
    : governor_(std::move(governor)),
      segments_(segments == 0 ? 1 : segments)
{
}

ProfileCatalog::~ProfileCatalog()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (governor_) {
        for (const Entry &e : entries_)
            governor_->release(MemCategory::ProfileCatalog, e.bytes);
    }
    entries_.clear();
}

LoadStatus
ProfileCatalog::load(const std::string &name, const std::string &path)
{
    LoadStatus status;
    if (name.empty()) {
        status.error = "load: trace name must not be empty";
        return status;
    }

    // The replay runs outside the catalog lock: loading a big trace
    // must not stall queries against already-resident profiles.
    vg::GuestConfig gcfg;
    // Speculative segment workers rebuild guests from snapshots,
    // which needs per-event dispatch.
    gcfg.batchEvents = segments_ <= 1;
    vg::Guest guest(name, gcfg);
    core::SigilProfiler profiler{core::SigilConfig{}};
    guest.addTool(&profiler);

    vg::ReplayReport report;
    if (segments_ > 1) {
        core::SegmentOptions sopt;
        sopt.segments = segments_;
        sopt.replay.policy = vg::ReplayPolicy::Salvage;
        report = core::replaySegmentedFile(path, guest, profiler, sopt)
                     .report;
    } else {
        vg::ReplayOptions ropt;
        ropt.policy = vg::ReplayPolicy::Salvage;
        report = vg::replayTraceFile(path, guest, ropt);
    }
    if (!report.ok()) {
        status.error = report.error->message();
        return status;
    }

    Entry entry;
    entry.name = name;
    entry.path = path;
    entry.profile = std::make_shared<const core::SigilProfile>(
        profiler.takeProfile());
    entry.replaySummary = report.summary();
    entry.bytes = core::profileMemoryEstimate(*entry.profile);

    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->name == name) {
            if (governor_)
                governor_->release(MemCategory::ProfileCatalog,
                                   it->bytes);
            entries_.erase(it);
            break;
        }
    }
    if (governor_)
        governor_->charge(MemCategory::ProfileCatalog, entry.bytes);
    entry.lastUse = ++tick_;
    status.summary = entry.replaySummary;
    entries_.push_back(std::move(entry));
    status.evicted = evictOverBudgetLocked(name);
    status.ok = true;
    return status;
}

bool
ProfileCatalog::unload(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->name == name) {
            if (governor_)
                governor_->release(MemCategory::ProfileCatalog,
                                   it->bytes);
            entries_.erase(it);
            return true;
        }
    }
    return false;
}

std::shared_ptr<const core::SigilProfile>
ProfileCatalog::find(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (Entry &e : entries_) {
        if (e.name == name) {
            e.lastUse = ++tick_;
            ++e.hits;
            return e.profile;
        }
    }
    return nullptr;
}

std::vector<std::string>
ProfileCatalog::names() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<const Entry *> sorted;
    sorted.reserve(entries_.size());
    for (const Entry &e : entries_)
        sorted.push_back(&e);
    std::sort(sorted.begin(), sorted.end(),
              [](const Entry *a, const Entry *b) {
                  return a->lastUse > b->lastUse;
              });
    std::vector<std::string> out;
    out.reserve(sorted.size());
    for (const Entry *e : sorted)
        out.push_back(e->name);
    return out;
}

std::string
ProfileCatalog::statsText() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    char head[128];
    std::snprintf(head, sizeof(head),
                  "catalog: %zu trace%s, %llu eviction%s\n",
                  entries_.size(), entries_.size() == 1 ? "" : "s",
                  static_cast<unsigned long long>(evictions_),
                  evictions_ == 1 ? "" : "s");
    out += head;
    for (const Entry &e : entries_) {
        char line[512];
        std::snprintf(line, sizeof(line),
                      "  %-16s %10llu B  %6llu hit%s  %s\n",
                      e.name.c_str(),
                      static_cast<unsigned long long>(e.bytes),
                      static_cast<unsigned long long>(e.hits),
                      e.hits == 1 ? "" : "s", e.replaySummary.c_str());
        out += line;
    }
    if (governor_) {
        out += "  governor: " + governor_->describe() + "\n";
    }
    return out;
}

std::uint64_t
ProfileCatalog::evictions() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return evictions_;
}

std::size_t
ProfileCatalog::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

std::size_t
ProfileCatalog::evictOverBudgetLocked(const std::string &keep)
{
    if (!governor_)
        return 0;
    std::size_t evicted = 0;
    while (governor_->overBudget() && entries_.size() > 1) {
        auto victim = entries_.end();
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (it->name == keep)
                continue;
            if (victim == entries_.end() ||
                it->lastUse < victim->lastUse)
                victim = it;
        }
        if (victim == entries_.end())
            break;
        governor_->release(MemCategory::ProfileCatalog, victim->bytes);
        entries_.erase(victim);
        ++evicted;
        ++evictions_;
    }
    return evicted;
}

} // namespace sigil::server
