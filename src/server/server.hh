/**
 * @file
 * sigild — the profile-query daemon (DESIGN.md §4.9).
 *
 * One accept thread per listener (Unix-domain always, loopback TCP
 * optionally) feeds accepted connections into a bounded queue drained
 * by a pool of worker threads. A worker owns one connection at a time
 * and runs its request→response loop: decode one CRC-framed request,
 * render the answer from the immutable catalog profile, send one
 * response frame. Per-connection SO_RCVTIMEO/SO_SNDTIMEO deadlines
 * turn a stalled or malicious client into a closed connection instead
 * of a captured worker; the stall watchdog from the replay pipeline
 * monitors the workers themselves, so a wedged request (not a slow
 * client — a bug) is reported rather than silently eating a pool
 * slot.
 *
 * Shutdown (stop(), or the Op::Shutdown control request, or SIGTERM
 * in the sigild binary) is a drain: listeners stop accepting, queued
 * connections are answered, in-flight requests complete and their
 * responses are flushed, then the workers exit. No request that
 * reached the server is dropped without a response.
 */

#ifndef SIGIL_SERVER_SERVER_HH
#define SIGIL_SERVER_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/catalog.hh"
#include "server/protocol.hh"
#include "support/socket.hh"
#include "support/watchdog.hh"

namespace sigil::server {

/** Everything a daemon instance needs to know at start(). */
struct ServerConfig
{
    /** Unix-domain socket path (required). */
    std::string unixPath;

    /** Loopback TCP port: -1 = off, 0 = ephemeral (see tcpPort()). */
    int tcpPort = -1;

    /** Worker threads — the concurrent-request capacity. */
    unsigned threads = 4;

    /** Per-connection receive/send deadlines, ms (0 = no deadline). */
    int recvTimeoutMs = 5000;
    int sendTimeoutMs = 5000;

    /** Request-frame size cap (responses use kMaxResponseFrame). */
    std::uint32_t maxRequestFrame = kMaxRequestFrame;

    /** Catalog memory budget, bytes; 0 = ungoverned (never evicts). */
    std::size_t memoryBudgetBytes = 0;

    /** Worker stall deadline for the watchdog; 0 disables it. */
    unsigned stallTimeoutMs = 30000;

    /** Segment-parallel width for trace loads. */
    unsigned loadSegments = 1;
};

/**
 * hw/sw partition rendering (paper eq. 1 candidates) for one loaded
 * profile. Lives in the server layer — not core/profile_query — so
 * sigil_core does not grow a dependency on sigil_cdfg.
 */
std::string partitionQueryText(const core::SigilProfile &profile);

class ProfileQueryServer
{
  public:
    explicit ProfileQueryServer(ServerConfig config);
    ~ProfileQueryServer();

    ProfileQueryServer(const ProfileQueryServer &) = delete;
    ProfileQueryServer &operator=(const ProfileQueryServer &) = delete;

    /** Bind, spawn accept + worker threads. False + *err on failure. */
    bool start(std::string *err);

    /**
     * Graceful drain: stop accepting, answer everything in flight,
     * join all threads. Idempotent; safe from any thread except a
     * worker (the Shutdown op instead signals and returns).
     */
    void stop();

    /** Block until stop() completes or a Shutdown request drained. */
    void waitForShutdown();

    bool running() const { return running_.load(); }

    /** Actual TCP port when configured with tcpPort = 0. */
    std::uint16_t tcpPort() const { return tcpPort_; }

    ProfileCatalog &catalog() { return *catalog_; }

    /** @name Counters (exposed in Op::Stats) */
    /// @{
    std::uint64_t connectionsAccepted() const { return accepted_.load(); }
    std::uint64_t requestsServed() const { return requests_.load(); }
    std::uint64_t protocolErrors() const { return protoErrors_.load(); }
    std::uint64_t timeouts() const { return timeouts_.load(); }
    /// @}

    /** The Op::Stats rendering (also usable in-process). */
    std::string statsText() const;

  private:
    void acceptLoop(net::Listener *listener);
    void workerLoop(unsigned index);
    void serveConnection(net::Socket sock, int watchdogId);

    /**
     * Decode + execute one request; fills the response (op, payload).
     * Sets *drain when the request asked for shutdown.
     */
    void dispatch(std::uint8_t op, const std::string &payload,
                  std::uint8_t *resp_op, std::string *resp_payload,
                  bool *drain);

    void requestDrain();

    ServerConfig config_;
    std::shared_ptr<MemoryGovernor> governor_;
    std::unique_ptr<ProfileCatalog> catalog_;
    std::unique_ptr<Watchdog> watchdog_;

    net::Listener unixListener_;
    net::Listener tcpListener_;
    std::uint16_t tcpPort_ = 0;

    std::thread unixAcceptThread_;
    std::thread tcpAcceptThread_;
    std::vector<std::thread> workers_;

    /** Serializes stop() against concurrent callers (signal thread
     *  vs. main thread vs. destructor). */
    std::mutex stopMu_;

    std::mutex mu_;
    std::condition_variable cv_;
    std::condition_variable drainedCv_;
    std::deque<net::Socket> pending_;
    bool draining_ = false;

    std::atomic<bool> running_{false};
    std::atomic<bool> stopRequested_{false};

    std::atomic<std::uint64_t> accepted_{0};
    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> protoErrors_{0};
    std::atomic<std::uint64_t> timeouts_{0};
};

} // namespace sigil::server

#endif // SIGIL_SERVER_SERVER_HH
