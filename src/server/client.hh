/**
 * @file
 * C++ client of the profile-query daemon: one connection, blocking
 * request→response calls over the shared frame codec. Used by the
 * sigil-query CLI and by the server differential tests (which compare
 * daemon responses byte-for-byte against in-process renderings).
 */

#ifndef SIGIL_SERVER_CLIENT_HH
#define SIGIL_SERVER_CLIENT_HH

#include <cstdint>
#include <string>

#include "server/protocol.hh"
#include "support/socket.hh"

namespace sigil::server {

/** Outcome of one query round-trip. */
struct QueryResult
{
    /** True when the server answered Op::RespText. */
    bool ok = false;

    /** Query text (ok) — empty otherwise. */
    std::string text;

    /** Structured server error code (RespError answers). */
    ErrCode code = ErrCode::Internal;

    /** Error message: server-provided, or a transport diagnosis. */
    std::string error;
};

class QueryClient
{
  public:
    QueryClient() = default;

    /** Connect over the Unix-domain socket. */
    static QueryClient connectUnix(const std::string &path,
                                   int timeout_ms = 10000);

    /** Connect over loopback TCP. */
    static QueryClient connectTcp(const std::string &host,
                                  std::uint16_t port,
                                  int timeout_ms = 10000);

    bool valid() const { return sock_.valid(); }

    /** @name One call per protocol op */
    /// @{
    QueryResult ping();
    QueryResult stats();
    QueryResult list();
    QueryResult profile(const std::string &name);
    QueryResult function(const std::string &name,
                         const std::string &fn_name);
    QueryResult edges(const std::string &name);
    QueryResult summary(const std::string &name);
    QueryResult diff(const std::string &name_a,
                     const std::string &name_b);
    QueryResult partition(const std::string &name);
    QueryResult load(const std::string &name, const std::string &path);
    QueryResult unload(const std::string &name);
    QueryResult shutdownServer();
    /// @}

    /**
     * Raw round-trip with an arbitrary op byte and payload — the fuzz
     * tests speak malformed dialects through this.
     */
    QueryResult request(std::uint8_t op, std::string_view payload);

    /** Direct socket access (fuzz tests send hand-built bytes). */
    net::Socket &socket() { return sock_; }

  private:
    explicit QueryClient(net::Socket sock) : sock_(std::move(sock)) {}

    net::Socket sock_;
};

} // namespace sigil::server

#endif // SIGIL_SERVER_CLIENT_HH
