/**
 * @file
 * sigil-query — CLI client of the profile-query daemon.
 *
 * Usage:
 *   sigil-query --socket PATH COMMAND [args...]
 *   sigil-query --tcp HOST:PORT COMMAND [args...]
 *
 * Commands:
 *   ping                       protocol handshake
 *   stats                      server + catalog counters
 *   list                       loaded trace names
 *   profile NAME               full aggregate profile
 *   function NAME FN           context rows of one function
 *   edges NAME                 producer->consumer matrix
 *   summary NAME               flat report + comm summary
 *   diff NAME_A NAME_B         structural profile diff
 *   partition NAME             hw/sw accelerator candidates
 *   load NAME TRACE            replay a trace into the catalog
 *   unload NAME                drop a loaded trace
 *   shutdown                   graceful daemon drain
 *
 * Prints the response text on stdout; server or transport errors go
 * to stderr and exit non-zero.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "server/client.hh"

using namespace sigil;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s (--socket PATH | --tcp HOST:PORT) COMMAND [args]\n"
        "commands: ping stats list profile function edges summary\n"
        "          diff partition load unload shutdown\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string unix_path;
    std::string tcp_host;
    std::uint16_t tcp_port = 0;
    std::vector<std::string> args;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
            unix_path = argv[++i];
        } else if (std::strcmp(argv[i], "--tcp") == 0 && i + 1 < argc) {
            std::string spec = argv[++i];
            std::size_t colon = spec.rfind(':');
            if (colon == std::string::npos || colon == 0) {
                std::fprintf(stderr, "--tcp wants HOST:PORT\n");
                return 2;
            }
            tcp_host = spec.substr(0, colon);
            tcp_port = static_cast<std::uint16_t>(
                std::strtoul(spec.c_str() + colon + 1, nullptr, 10));
        } else {
            args.emplace_back(argv[i]);
        }
    }
    if (args.empty() || (unix_path.empty() && tcp_host.empty())) {
        usage(argv[0]);
        return 2;
    }

    server::QueryClient client =
        unix_path.empty()
            ? server::QueryClient::connectTcp(tcp_host, tcp_port)
            : server::QueryClient::connectUnix(unix_path);
    if (!client.valid()) {
        std::fprintf(stderr, "sigil-query: cannot connect to %s\n",
                     unix_path.empty()
                         ? (tcp_host + ":" + std::to_string(tcp_port))
                               .c_str()
                         : unix_path.c_str());
        return 1;
    }

    const std::string &cmd = args[0];
    auto expect = [&](std::size_t n, const char *shape) -> bool {
        if (args.size() - 1 != n) {
            std::fprintf(stderr, "sigil-query: %s expects %s\n",
                         cmd.c_str(), shape);
            return false;
        }
        return true;
    };

    server::QueryResult result;
    if (cmd == "ping" && expect(0, "no arguments")) {
        result = client.ping();
    } else if (cmd == "stats" && expect(0, "no arguments")) {
        result = client.stats();
    } else if (cmd == "list" && expect(0, "no arguments")) {
        result = client.list();
    } else if (cmd == "profile" && expect(1, "NAME")) {
        result = client.profile(args[1]);
    } else if (cmd == "function" && expect(2, "NAME FN")) {
        result = client.function(args[1], args[2]);
    } else if (cmd == "edges" && expect(1, "NAME")) {
        result = client.edges(args[1]);
    } else if (cmd == "summary" && expect(1, "NAME")) {
        result = client.summary(args[1]);
    } else if (cmd == "diff" && expect(2, "NAME_A NAME_B")) {
        result = client.diff(args[1], args[2]);
    } else if (cmd == "partition" && expect(1, "NAME")) {
        result = client.partition(args[1]);
    } else if (cmd == "load" && expect(2, "NAME TRACE")) {
        result = client.load(args[1], args[2]);
    } else if (cmd == "unload" && expect(1, "NAME")) {
        result = client.unload(args[1]);
    } else if (cmd == "shutdown" && expect(0, "no arguments")) {
        result = client.shutdownServer();
    } else {
        if (cmd != "ping" && cmd != "stats" && cmd != "list" &&
            cmd != "profile" && cmd != "function" && cmd != "edges" &&
            cmd != "summary" && cmd != "diff" && cmd != "partition" &&
            cmd != "load" && cmd != "unload" && cmd != "shutdown") {
            std::fprintf(stderr, "sigil-query: unknown command '%s'\n",
                         cmd.c_str());
            usage(argv[0]);
        }
        return 2;
    }

    if (!result.ok) {
        std::fprintf(stderr, "sigil-query: %s: [%s] %s\n", cmd.c_str(),
                     server::errCodeName(result.code),
                     result.error.c_str());
        return 1;
    }
    std::fputs(result.text.c_str(), stdout);
    return 0;
}
