#include "server/client.hh"

#include "support/serial.hh"

namespace sigil::server {

QueryClient
QueryClient::connectUnix(const std::string &path, int timeout_ms)
{
    net::Socket sock = net::connectUnix(path);
    if (sock.valid())
        sock.setTimeouts(timeout_ms, timeout_ms);
    return QueryClient(std::move(sock));
}

QueryClient
QueryClient::connectTcp(const std::string &host, std::uint16_t port,
                        int timeout_ms)
{
    net::Socket sock = net::connectTcp(host, port);
    if (sock.valid())
        sock.setTimeouts(timeout_ms, timeout_ms);
    return QueryClient(std::move(sock));
}

QueryResult
QueryClient::request(std::uint8_t op, std::string_view payload)
{
    QueryResult result;
    if (!sock_.valid()) {
        result.error = "not connected";
        return result;
    }
    net::IoStatus sent = net::sendFrame(sock_, op, payload);
    if (sent != net::IoStatus::Ok) {
        result.error = std::string("send failed: ") +
                       net::ioStatusName(sent);
        sock_.closeNow();
        return result;
    }
    std::uint8_t resp_op = 0;
    std::string resp_payload;
    net::FrameStatus st = net::recvFrame(sock_, &resp_op, &resp_payload,
                                         kMaxResponseFrame);
    if (st != net::FrameStatus::Ok) {
        result.error = std::string("receive failed: ") +
                       net::frameStatusName(st);
        sock_.closeNow();
        return result;
    }
    if (resp_op == static_cast<std::uint8_t>(Op::RespText)) {
        result.ok = true;
        result.text = std::move(resp_payload);
        return result;
    }
    if (resp_op == static_cast<std::uint8_t>(Op::RespError)) {
        ByteSource src(resp_payload);
        result.code = static_cast<ErrCode>(src.u8());
        result.error = src.str();
        if (!src.ok())
            result.error = "malformed error response";
        return result;
    }
    result.error = "unexpected response op";
    sock_.closeNow();
    return result;
}

namespace {

std::string
oneName(const std::string &name)
{
    ByteSink sink;
    sink.str(name);
    return sink.take();
}

std::string
twoNames(const std::string &a, const std::string &b)
{
    ByteSink sink;
    sink.str(a);
    sink.str(b);
    return sink.take();
}

} // namespace

QueryResult
QueryClient::ping()
{
    return request(static_cast<std::uint8_t>(Op::Ping), {});
}

QueryResult
QueryClient::stats()
{
    return request(static_cast<std::uint8_t>(Op::Stats), {});
}

QueryResult
QueryClient::list()
{
    return request(static_cast<std::uint8_t>(Op::List), {});
}

QueryResult
QueryClient::profile(const std::string &name)
{
    return request(static_cast<std::uint8_t>(Op::Profile),
                   oneName(name));
}

QueryResult
QueryClient::function(const std::string &name,
                      const std::string &fn_name)
{
    return request(static_cast<std::uint8_t>(Op::Function),
                   twoNames(name, fn_name));
}

QueryResult
QueryClient::edges(const std::string &name)
{
    return request(static_cast<std::uint8_t>(Op::Edges), oneName(name));
}

QueryResult
QueryClient::summary(const std::string &name)
{
    return request(static_cast<std::uint8_t>(Op::Summary),
                   oneName(name));
}

QueryResult
QueryClient::diff(const std::string &name_a, const std::string &name_b)
{
    return request(static_cast<std::uint8_t>(Op::Diff),
                   twoNames(name_a, name_b));
}

QueryResult
QueryClient::partition(const std::string &name)
{
    return request(static_cast<std::uint8_t>(Op::Partition),
                   oneName(name));
}

QueryResult
QueryClient::load(const std::string &name, const std::string &path)
{
    return request(static_cast<std::uint8_t>(Op::Load),
                   twoNames(name, path));
}

QueryResult
QueryClient::unload(const std::string &name)
{
    return request(static_cast<std::uint8_t>(Op::Unload),
                   oneName(name));
}

QueryResult
QueryClient::shutdownServer()
{
    return request(static_cast<std::uint8_t>(Op::Shutdown), {});
}

} // namespace sigil::server
