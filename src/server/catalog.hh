/**
 * @file
 * Budget-governed in-memory catalog of loaded profiles.
 *
 * The catalog decouples the expensive part of the paper's pipeline
 * (replaying a trace through the full profiler stack) from the cheap
 * part (answering queries over the resulting aggregate profile): each
 * trace is replayed exactly once at load time — segment-parallel,
 * salvage policy, so crash captures load too — and the immutable
 * SigilProfile then serves any number of concurrent readers without
 * locking beyond a catalog-map mutex.
 *
 * Resident profiles are charged to the process MemoryGovernor under
 * MemCategory::ProfileCatalog. When a load pushes the governor over
 * budget the catalog evicts least-recently-queried entries (never the
 * one being loaded) until the budget fits again — the same
 * shed-where-cheapest policy the shadow's chunk LRU applies, one
 * level up.
 */

#ifndef SIGIL_SERVER_CATALOG_HH
#define SIGIL_SERVER_CATALOG_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/profile.hh"
#include "support/mem_governor.hh"
#include "vg/trace_error.hh"

namespace sigil::server {

/** Outcome of one load request. */
struct LoadStatus
{
    bool ok = false;
    /** TraceError-derived message when the replay failed. */
    std::string error;
    /** One-line replay summary (events, salvage accounting). */
    std::string summary;
    /** Entries evicted to fit this load under the budget. */
    std::size_t evicted = 0;
};

class ProfileCatalog
{
  public:
    /**
     * governor may be null (ungoverned catalog, never evicts).
     * segments > 1 loads traces through the segment-parallel engine.
     */
    ProfileCatalog(std::shared_ptr<MemoryGovernor> governor,
                   unsigned segments);
    ~ProfileCatalog();

    ProfileCatalog(const ProfileCatalog &) = delete;
    ProfileCatalog &operator=(const ProfileCatalog &) = delete;

    /**
     * Replay the trace at path and store its profile under name.
     * Replaces an existing entry of the same name. Thread-safe; the
     * replay itself runs outside the catalog lock, so queries keep
     * flowing while a load is in progress.
     */
    LoadStatus load(const std::string &name, const std::string &path);

    /** Drop one entry; false when no such name. */
    bool unload(const std::string &name);

    /**
     * Profile by name, bumping its LRU stamp; null when absent. The
     * returned profile is immutable and outlives eviction (shared
     * ownership), so an in-flight query never races an unload.
     */
    std::shared_ptr<const core::SigilProfile>
    find(const std::string &name);

    /** Loaded names, most recently used first. */
    std::vector<std::string> names() const;

    /** One line per entry: name, bytes, hits, replay summary. */
    std::string statsText() const;

    std::uint64_t evictions() const;
    std::size_t size() const;

  private:
    struct Entry
    {
        std::string name;
        std::string path;
        std::shared_ptr<const core::SigilProfile> profile;
        std::string replaySummary;
        std::uint64_t bytes = 0;
        std::uint64_t lastUse = 0;
        std::uint64_t hits = 0;
    };

    /** Evict LRU entries until the governor fits; keeps `keep`. */
    std::size_t evictOverBudgetLocked(const std::string &keep);

    std::shared_ptr<MemoryGovernor> governor_;
    const unsigned segments_;

    mutable std::mutex mu_;
    std::vector<Entry> entries_;
    std::uint64_t tick_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace sigil::server

#endif // SIGIL_SERVER_CATALOG_HH
