#include "server/server.hh"

#include <cstdio>
#include <utility>

#include "cdfg/cdfg.hh"
#include "cdfg/partitioner.hh"
#include "core/profile_query.hh"
#include "support/logging.hh"
#include "support/serial.hh"

namespace sigil::server {

std::string
partitionQueryText(const core::SigilProfile &profile)
{
    cdfg::Cdfg graph = cdfg::Cdfg::build(profile);
    cdfg::PartitionResult parts = cdfg::Partitioner().partition(graph);
    std::string out;
    char head[160];
    std::snprintf(head, sizeof(head),
                  "partition: %zu candidate%s, %.1f%% coverage, "
                  "%zu non-viable\n",
                  parts.candidates.size(),
                  parts.candidates.size() == 1 ? "" : "s",
                  100.0 * parts.coverage, parts.nonViable);
    out += head;
    for (const cdfg::Candidate &c : parts.candidates) {
        char line[512];
        std::snprintf(line, sizeof(line),
                      "  %-32s S_be %.3f cover %.2f%% in %llu B "
                      "out %llu B\n",
                      c.displayName.c_str(), c.breakevenSpeedup,
                      100.0 * c.coverage,
                      static_cast<unsigned long long>(
                          c.boundaryInBytes),
                      static_cast<unsigned long long>(
                          c.boundaryOutBytes));
        out += line;
    }
    return out;
}

ProfileQueryServer::ProfileQueryServer(ServerConfig config)
    : config_(std::move(config))
{
    if (config_.threads == 0)
        config_.threads = 1;
    governor_ =
        std::make_shared<MemoryGovernor>(config_.memoryBudgetBytes);
    catalog_ = std::make_unique<ProfileCatalog>(governor_,
                                                config_.loadSegments);
}

ProfileQueryServer::~ProfileQueryServer()
{
    stop();
}

bool
ProfileQueryServer::start(std::string *err)
{
    if (running_.load()) {
        if (err)
            *err = "server already running";
        return false;
    }
    std::string local_err;
    unixListener_ = net::Listener::listenUnix(config_.unixPath,
                                              &local_err);
    if (!unixListener_.valid()) {
        if (err)
            *err = local_err;
        return false;
    }
    if (config_.tcpPort >= 0) {
        tcpListener_ = net::Listener::listenTcp(
            static_cast<std::uint16_t>(config_.tcpPort), &local_err);
        if (!tcpListener_.valid()) {
            unixListener_.closeNow();
            if (err)
                *err = local_err;
            return false;
        }
        tcpPort_ = tcpListener_.boundPort();
    }
    if (config_.stallTimeoutMs > 0)
        watchdog_ = std::make_unique<Watchdog>(config_.stallTimeoutMs);

    draining_ = false;
    stopRequested_.store(false);
    running_.store(true);
    unixAcceptThread_ =
        std::thread(&ProfileQueryServer::acceptLoop, this,
                    &unixListener_);
    if (tcpListener_.valid())
        tcpAcceptThread_ =
            std::thread(&ProfileQueryServer::acceptLoop, this,
                        &tcpListener_);
    workers_.reserve(config_.threads);
    for (unsigned i = 0; i < config_.threads; ++i)
        workers_.emplace_back(&ProfileQueryServer::workerLoop, this, i);
    return true;
}

void
ProfileQueryServer::requestDrain()
{
    {
        // stopRequested_ flips under mu_ so waitForShutdown() cannot
        // miss the transition between its predicate check and wait.
        std::lock_guard<std::mutex> lock(mu_);
        draining_ = true;
        stopRequested_.store(true);
    }
    cv_.notify_all();
    drainedCv_.notify_all();
    unixListener_.wake();
    tcpListener_.wake();
}

void
ProfileQueryServer::stop()
{
    std::lock_guard<std::mutex> stop_lock(stopMu_);
    if (!running_.load())
        return;
    requestDrain();
    if (unixAcceptThread_.joinable())
        unixAcceptThread_.join();
    if (tcpAcceptThread_.joinable())
        tcpAcceptThread_.join();
    for (std::thread &t : workers_)
        if (t.joinable())
            t.join();
    workers_.clear();
    unixListener_.closeNow();
    tcpListener_.closeNow();
    watchdog_.reset();
    running_.store(false);
    drainedCv_.notify_all();
}

void
ProfileQueryServer::waitForShutdown()
{
    std::unique_lock<std::mutex> lock(mu_);
    drainedCv_.wait(lock, [this] { return stopRequested_.load(); });
}

void
ProfileQueryServer::acceptLoop(net::Listener *listener)
{
    for (;;) {
        net::Socket sock = listener->accept();
        std::lock_guard<std::mutex> lock(mu_);
        if (draining_)
            return; // sock (if any) closes: no new work during drain
        if (!sock.valid())
            continue;
        accepted_.fetch_add(1, std::memory_order_relaxed);
        pending_.push_back(std::move(sock));
        cv_.notify_one();
    }
}

void
ProfileQueryServer::workerLoop(unsigned index)
{
    int wd_id = -1;
    if (watchdog_) {
        char name[32];
        std::snprintf(name, sizeof(name), "server-worker-%u", index);
        wd_id = watchdog_->registerEntity(
            name, Watchdog::StallAction::Degrade, [this] {
                char diag[96];
                std::snprintf(diag, sizeof(diag),
                              "requests served %llu, proto errors %llu",
                              static_cast<unsigned long long>(
                                  requests_.load()),
                              static_cast<unsigned long long>(
                                  protoErrors_.load()));
                return std::string(diag);
            });
    }
    for (;;) {
        net::Socket sock;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this] {
                return !pending_.empty() || draining_;
            });
            if (pending_.empty()) {
                // draining_ and nothing queued: the pool winds down.
                break;
            }
            sock = std::move(pending_.front());
            pending_.pop_front();
        }
        serveConnection(std::move(sock), wd_id);
    }
    if (watchdog_ && wd_id >= 0)
        watchdog_->unregisterEntity(wd_id);
}

void
ProfileQueryServer::serveConnection(net::Socket sock, int wd_id)
{
    sock.setTimeouts(config_.recvTimeoutMs, config_.sendTimeoutMs);
    for (;;) {
        std::uint8_t op = 0;
        std::string payload;
        // Blocking for a request is idleness, not progress-stall: only
        // the dispatch below runs under the watchdog's busy window.
        net::FrameStatus st = net::recvFrame(sock, &op, &payload,
                                             config_.maxRequestFrame);
        if (st == net::FrameStatus::Eof)
            break;
        if (st == net::FrameStatus::Timeout) {
            // Slow-client eviction: the connection has been silent for
            // the whole receive window; reclaim the worker.
            timeouts_.fetch_add(1, std::memory_order_relaxed);
            break;
        }
        if (st != net::FrameStatus::Ok) {
            // The stream is desynchronized (bad length, torn frame,
            // CRC mismatch). Answer with a structured error — fuzzers
            // and broken clients deserve a diagnosis — then close;
            // nothing after a corrupt frame can be trusted.
            protoErrors_.fetch_add(1, std::memory_order_relaxed);
            ByteSink err;
            err.u8(static_cast<std::uint8_t>(ErrCode::BadFrame));
            err.str(std::string("bad request frame: ") +
                    net::frameStatusName(st));
            net::sendFrame(sock,
                           static_cast<std::uint8_t>(Op::RespError),
                           err.bytes());
            break;
        }

        if (watchdog_ && wd_id >= 0)
            watchdog_->busy(wd_id);
        std::uint8_t resp_op = 0;
        std::string resp_payload;
        bool drain = false;
        dispatch(op, payload, &resp_op, &resp_payload, &drain);
        if (watchdog_ && wd_id >= 0)
            watchdog_->idle(wd_id);

        requests_.fetch_add(1, std::memory_order_relaxed);
        net::IoStatus sent =
            net::sendFrame(sock, resp_op, resp_payload);
        if (sent == net::IoStatus::Timeout)
            timeouts_.fetch_add(1, std::memory_order_relaxed);
        if (sent != net::IoStatus::Ok)
            break;
        if (drain) {
            requestDrain();
            break;
        }
        if (stopRequested_.load()) {
            // Drain: the response above was flushed; no new requests.
            break;
        }
    }
}

void
ProfileQueryServer::dispatch(std::uint8_t op, const std::string &payload,
                             std::uint8_t *resp_op,
                             std::string *resp_payload, bool *drain)
{
    auto error = [&](ErrCode code, const std::string &msg) {
        ByteSink sink;
        sink.u8(static_cast<std::uint8_t>(code));
        sink.str(msg);
        *resp_op = static_cast<std::uint8_t>(Op::RespError);
        *resp_payload = sink.take();
        protoErrors_.fetch_add(1, std::memory_order_relaxed);
    };
    auto text = [&](std::string body) {
        *resp_op = static_cast<std::uint8_t>(Op::RespText);
        *resp_payload = std::move(body);
    };
    auto profileFor =
        [&](const std::string &name,
            std::shared_ptr<const core::SigilProfile> *out) {
            *out = catalog_->find(name);
            if (!*out) {
                error(ErrCode::NotFound,
                      "no loaded trace named '" + name + "'");
                return false;
            }
            return true;
        };

    ByteSource src(payload);
    switch (static_cast<Op>(op)) {
    case Op::Ping: {
        if (!payload.empty())
            return error(ErrCode::BadRequest,
                         "ping carries no payload");
        char buf[64];
        std::snprintf(buf, sizeof(buf), "sigild protocol %u\n",
                      kProtocolVersion);
        return text(buf);
    }
    case Op::Stats:
        return text(statsText());
    case Op::List: {
        std::string out;
        for (const std::string &name : catalog_->names())
            out += name + "\n";
        return text(std::move(out));
    }
    case Op::Profile: {
        std::string name = src.str();
        if (!src.atEnd())
            return error(ErrCode::BadRequest,
                         "profile expects (name)");
        std::shared_ptr<const core::SigilProfile> p;
        if (!profileFor(name, &p))
            return;
        return text(core::profileQueryText(*p));
    }
    case Op::Function: {
        std::string name = src.str();
        std::string fn = src.str();
        if (!src.atEnd())
            return error(ErrCode::BadRequest,
                         "function expects (name, fn_name)");
        std::shared_ptr<const core::SigilProfile> p;
        if (!profileFor(name, &p))
            return;
        return text(core::functionQueryText(*p, fn));
    }
    case Op::Edges: {
        std::string name = src.str();
        if (!src.atEnd())
            return error(ErrCode::BadRequest, "edges expects (name)");
        std::shared_ptr<const core::SigilProfile> p;
        if (!profileFor(name, &p))
            return;
        return text(core::edgesQueryText(*p));
    }
    case Op::Summary: {
        std::string name = src.str();
        if (!src.atEnd())
            return error(ErrCode::BadRequest,
                         "summary expects (name)");
        std::shared_ptr<const core::SigilProfile> p;
        if (!profileFor(name, &p))
            return;
        return text(core::summaryQueryText(*p));
    }
    case Op::Diff: {
        std::string name_a = src.str();
        std::string name_b = src.str();
        if (!src.atEnd())
            return error(ErrCode::BadRequest,
                         "diff expects (name_a, name_b)");
        std::shared_ptr<const core::SigilProfile> a, b;
        if (!profileFor(name_a, &a) || !profileFor(name_b, &b))
            return;
        return text(core::diffQueryText(*a, *b));
    }
    case Op::Partition: {
        std::string name = src.str();
        if (!src.atEnd())
            return error(ErrCode::BadRequest,
                         "partition expects (name)");
        std::shared_ptr<const core::SigilProfile> p;
        if (!profileFor(name, &p))
            return;
        return text(partitionQueryText(*p));
    }
    case Op::Load: {
        std::string name = src.str();
        std::string path = src.str();
        if (!src.atEnd())
            return error(ErrCode::BadRequest,
                         "load expects (name, path)");
        if (stopRequested_.load())
            return error(ErrCode::ShuttingDown,
                         "server is draining");
        LoadStatus status = catalog_->load(name, path);
        if (!status.ok)
            return error(ErrCode::LoadFailed, status.error);
        char buf[128];
        std::snprintf(buf, sizeof(buf), " (evicted %zu)\n",
                      status.evicted);
        return text("loaded " + name + ": " + status.summary +
                    (status.evicted > 0 ? buf : "\n"));
    }
    case Op::Unload: {
        std::string name = src.str();
        if (!src.atEnd())
            return error(ErrCode::BadRequest, "unload expects (name)");
        if (!catalog_->unload(name))
            return error(ErrCode::NotFound,
                         "no loaded trace named '" + name + "'");
        return text("unloaded " + name + "\n");
    }
    case Op::Shutdown: {
        if (!payload.empty())
            return error(ErrCode::BadRequest,
                         "shutdown carries no payload");
        *drain = true;
        return text("draining\n");
    }
    case Op::RespText:
    case Op::RespError:
        break; // response codes are not requests
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "unknown request op 0x%02x", op);
    error(ErrCode::UnknownOp, buf);
}

std::string
ProfileQueryServer::statsText() const
{
    char head[256];
    std::snprintf(head, sizeof(head),
                  "sigild: %u worker%s, %llu connection%s, "
                  "%llu request%s, %llu protocol error%s, "
                  "%llu timeout%s, %llu stall%s\n",
                  config_.threads, config_.threads == 1 ? "" : "s",
                  static_cast<unsigned long long>(accepted_.load()),
                  accepted_.load() == 1 ? "" : "s",
                  static_cast<unsigned long long>(requests_.load()),
                  requests_.load() == 1 ? "" : "s",
                  static_cast<unsigned long long>(protoErrors_.load()),
                  protoErrors_.load() == 1 ? "" : "s",
                  static_cast<unsigned long long>(timeouts_.load()),
                  timeouts_.load() == 1 ? "" : "s",
                  static_cast<unsigned long long>(
                      watchdog_ ? watchdog_->stallsDetected() : 0),
                  (watchdog_ ? watchdog_->stallsDetected() : 0) == 1
                      ? ""
                      : "s");
    return std::string(head) + catalog_->statsText();
}

} // namespace sigil::server
