#include "server/protocol.hh"

namespace sigil::server {

const char *
errCodeName(ErrCode code)
{
    switch (code) {
    case ErrCode::BadFrame: return "bad-frame";
    case ErrCode::BadRequest: return "bad-request";
    case ErrCode::UnknownOp: return "unknown-op";
    case ErrCode::NotFound: return "not-found";
    case ErrCode::LoadFailed: return "load-failed";
    case ErrCode::ShuttingDown: return "shutting-down";
    case ErrCode::Internal: return "internal";
    }
    return "?";
}

} // namespace sigil::server
