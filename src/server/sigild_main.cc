/**
 * @file
 * sigild — the profile-query daemon binary.
 *
 * Loads traces named on the command line, binds the Unix-domain
 * socket (and optionally loopback TCP), prints one "listening" line,
 * and serves until SIGTERM/SIGINT or a client Shutdown request. The
 * signal handler only writes to a self-pipe; the main thread turns
 * that byte into the same graceful drain the Shutdown op performs —
 * in-flight requests finish, their responses are flushed, then the
 * process exits 0.
 *
 * Usage:
 *   sigild --socket PATH [--tcp PORT] [--load NAME=TRACE]...
 *          [--threads N] [--budget-mb N] [--segments N]
 *          [--timeout-ms N] [--stall-ms N]
 */

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <unistd.h>
#include <utility>
#include <vector>

#include "server/server.hh"
#include "support/logging.hh"

using namespace sigil;

namespace {

int g_signal_pipe[2] = {-1, -1};

void
onTermSignal(int)
{
    char b = 1;
    [[maybe_unused]] ssize_t r = ::write(g_signal_pipe[1], &b, 1);
}

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket PATH [--tcp PORT] [--load NAME=TRACE]...\n"
        "          [--threads N] [--budget-mb N] [--segments N]\n"
        "          [--timeout-ms N] [--stall-ms N]\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    server::ServerConfig cfg;
    std::vector<std::pair<std::string, std::string>> loads;

    auto intArg = [&](int &i, const char *what) -> long {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "%s needs a value\n", what);
            usage(argv[0]);
            std::exit(2);
        }
        return std::strtol(argv[++i], nullptr, 10);
    };

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
            cfg.unixPath = argv[++i];
        } else if (std::strcmp(argv[i], "--tcp") == 0) {
            cfg.tcpPort = static_cast<int>(intArg(i, "--tcp"));
        } else if (std::strcmp(argv[i], "--load") == 0 && i + 1 < argc) {
            std::string spec = argv[++i];
            std::size_t eq = spec.find('=');
            if (eq == std::string::npos || eq == 0 ||
                eq + 1 == spec.size()) {
                std::fprintf(stderr,
                             "--load wants NAME=TRACE, got '%s'\n",
                             spec.c_str());
                return 2;
            }
            loads.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
        } else if (std::strcmp(argv[i], "--threads") == 0) {
            cfg.threads =
                static_cast<unsigned>(intArg(i, "--threads"));
        } else if (std::strcmp(argv[i], "--budget-mb") == 0) {
            cfg.memoryBudgetBytes =
                static_cast<std::size_t>(intArg(i, "--budget-mb"))
                << 20;
        } else if (std::strcmp(argv[i], "--segments") == 0) {
            cfg.loadSegments =
                static_cast<unsigned>(intArg(i, "--segments"));
        } else if (std::strcmp(argv[i], "--timeout-ms") == 0) {
            cfg.recvTimeoutMs = cfg.sendTimeoutMs =
                static_cast<int>(intArg(i, "--timeout-ms"));
        } else if (std::strcmp(argv[i], "--stall-ms") == 0) {
            cfg.stallTimeoutMs =
                static_cast<unsigned>(intArg(i, "--stall-ms"));
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
            usage(argv[0]);
            return 2;
        }
    }
    if (cfg.unixPath.empty()) {
        usage(argv[0]);
        return 2;
    }

    // Signal plumbing goes in before the socket is observable: the
    // moment start() binds, a supervisor may SIGTERM us, and a
    // default-disposition SIGTERM would skip the drain.
    if (::pipe(g_signal_pipe) != 0) {
        std::fprintf(stderr, "sigild: pipe: %s\n", std::strerror(errno));
        return 1;
    }
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onTermSignal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    ::signal(SIGPIPE, SIG_IGN);

    server::ProfileQueryServer server(cfg);
    for (const auto &[name, path] : loads) {
        server::LoadStatus st = server.catalog().load(name, path);
        if (!st.ok) {
            std::fprintf(stderr, "sigild: cannot load %s from %s: %s\n",
                         name.c_str(), path.c_str(), st.error.c_str());
            return 1;
        }
        std::printf("sigild: loaded %s: %s\n", name.c_str(),
                    st.summary.c_str());
    }

    std::string err;
    if (!server.start(&err)) {
        std::fprintf(stderr, "sigild: cannot start: %s\n", err.c_str());
        return 1;
    }
    if (server.tcpPort() != 0) {
        std::printf("sigild: listening on %s and tcp 127.0.0.1:%u\n",
                    cfg.unixPath.c_str(), server.tcpPort());
    } else {
        std::printf("sigild: listening on %s\n", cfg.unixPath.c_str());
    }
    std::fflush(stdout);

    // Two wake sources: a termination signal (self-pipe) or a client
    // Shutdown request (server-side drain flag). Either way the drain
    // below completes every in-flight request before exit.
    std::thread signal_thread([&server] {
        char b;
        if (::read(g_signal_pipe[0], &b, 1) > 0)
            server.stop();
    });
    server.waitForShutdown();
    server.stop();
    // Unblock the signal thread if no signal ever arrived.
    char b = 0;
    [[maybe_unused]] ssize_t r = ::write(g_signal_pipe[1], &b, 1);
    signal_thread.join();
    std::printf("sigild: drained, bye\n");
    return 0;
}
