/**
 * @file
 * Miniature PARSEC ferret: content-based image similarity search.
 *
 * Each query image is segmented, a feature vector is extracted per
 * segment, candidate sets are probed through hashtable_search (the LSH
 * stand-in), and candidates are ranked by an EMD-style distance. The
 * pipeline mirrors ferret's stage structure (load → segment → extract →
 * index probe → rank), whose many small stages give it the low
 * candidate coverage the paper's Figure 7 shows.
 */

#include <cstdint>

#include "support/rng.hh"
#include "vg/traced.hh"
#include "workloads/tracedlib.hh"
#include "workloads/workload.hh"

namespace sigil::workloads {

namespace {

constexpr unsigned kDim = 24;
constexpr unsigned kImgW = 24;
constexpr unsigned kImgH = 24;
constexpr unsigned kSegments = 4;

/** Extract a moment-based feature vector from one image segment. */
void
featureExtract(vg::Guest &g, const vg::GuestArray<unsigned char> &image,
               std::size_t img_off, unsigned seg,
               vg::GuestArray<double> &feature, std::size_t feat_off)
{
    vg::ScopedFunction f(g, "image_extract_helper");
    unsigned y0 = (seg / 2) * (kImgH / 2);
    unsigned x0 = (seg % 2) * (kImgW / 2);
    double m0 = 0.0, m1 = 0.0, m2 = 0.0;
    for (unsigned y = y0; y < y0 + kImgH / 2; ++y) {
        for (unsigned x = x0; x < x0 + kImgW / 2; ++x) {
            double p = image.get(img_off + y * kImgW + x);
            m0 += p;
            m1 += p * static_cast<double>(x);
            m2 += p * static_cast<double>(y);
            g.flop(5);
        }
    }
    for (unsigned d = 0; d < kDim; ++d) {
        double v = (d % 3 == 0 ? m0 : d % 3 == 1 ? m1 : m2) /
                   (1.0 + static_cast<double>(d));
        feature.set(feat_off + d, v);
        g.flop(2);
    }
}

/** EMD-style distance between a query feature and a database vector. */
double
emdDistance(vg::Guest &g, const vg::GuestArray<double> &a,
            std::size_t aoff, const vg::GuestArray<double> &b,
            std::size_t boff)
{
    vg::ScopedFunction f(g, "emd");
    double acc = 0.0, flow = 0.0;
    for (unsigned d = 0; d < kDim; ++d) {
        flow += a.get(aoff + d) - b.get(boff + d);
        acc += flow < 0 ? -flow : flow;
        g.flop(3);
    }
    return acc;
}

} // namespace

void
runFerret(vg::Guest &g, Scale scale)
{
    const unsigned factor = scaleFactor(scale);
    const unsigned queries = 4 * factor;
    const unsigned db_size = 128;
    const unsigned candidates = 32;
    const unsigned topk = 8;
    const std::size_t img_pixels = std::size_t{kImgW} * kImgH;

    Lib lib(g);
    Rng rng(0xfe44e7);

    vg::GuestArray<unsigned char> images(g, img_pixels * queries,
                                         "query_images");
    images.fillAsInput([&](std::size_t) {
        return static_cast<unsigned char>(rng.nextBounded(256));
    });
    vg::GuestArray<double> database(g, std::size_t{db_size} * kDim,
                                    "feature_db");
    database.fillAsInput(
        [&](std::size_t) { return rng.nextRange(0.0, 4096.0); });

    vg::ScopedFunction main_fn(g, "main");
    lib.consume(lib.localeCtor(), 192);
    lib.dlAddr();

    vg::GuestArray<std::uint64_t> lsh_table(g, 512, "lsh_table");
    vg::GuestArray<double> norms(g, db_size, "db_norms");
    vg::GuestArray<double> norms_tmp(g, db_size, "db_norms_tmp");
    {
        vg::ScopedFunction build(g, "cass_table_load");
        lib.memset(lsh_table, 0, lsh_table.size(), std::uint64_t{0});
        for (unsigned v = 0; v < db_size; ++v) {
            std::uint64_t key = (rng.next() % 509) + 1;
            std::size_t slot = lib.hashtableSearch(lsh_table, key);
            if (slot < lsh_table.size())
                lsh_table.set(slot, key);
            g.iop(2);
        }
        // Rank the database vectors by norm for the candidate scan,
        // through the traced merge sort (glibc's qsort path).
        for (unsigned v = 0; v < db_size; ++v) {
            double acc = 0.0;
            for (unsigned d = 0; d < kDim; d += 4) {
                acc += database.get(std::size_t{v} * kDim + d);
                g.flop(1);
            }
            norms.set(v, acc);
        }
        lib.msort(norms, 0, db_size, norms_tmp, 0);
    }

    vg::GuestArray<double> feature(g, std::size_t{kSegments} * kDim,
                                   "query_feature");
    vg::GuestArray<double> ranks(g, topk, "rank_scores");
    vg::GuestArray<std::int32_t> rank_ids(g, topk, "rank_ids");

    for (unsigned q = 0; q < queries; ++q) {
        vg::ScopedFunction pipeline(g, "ferret_query");
        std::size_t img_off = std::size_t{q} * img_pixels;

        {
            vg::ScopedFunction seg(g, "image_segment");
            for (unsigned s = 0; s < kSegments; ++s)
                featureExtract(g, images, img_off, s, feature,
                               std::size_t{s} * kDim);
        }

        {
            vg::ScopedFunction probe(g, "cass_table_query");
            // LSH probe per segment feature.
            for (unsigned s = 0; s < kSegments; ++s) {
                double v = feature.get(std::size_t{s} * kDim);
                std::uint64_t key =
                    (static_cast<std::uint64_t>(v) % 509) + 1;
                g.iop(3);
                lib.hashtableSearch(lsh_table, key);
            }

            // Rank candidate database vectors by EMD distance.
            vg::ScopedFunction rank(g, "cass_result_merge");
            for (unsigned k = 0; k < topk; ++k) {
                ranks.set(k, 1e300);
                rank_ids.set(k, -1);
            }
            for (unsigned c = 0; c < candidates; ++c) {
                unsigned vec = static_cast<unsigned>(
                    rng.nextBounded(db_size));
                double best = 1e300;
                for (unsigned s = 0; s < kSegments; ++s) {
                    double d = emdDistance(
                        g, feature, std::size_t{s} * kDim, database,
                        std::size_t{vec} * kDim);
                    if (d < best)
                        best = d;
                    g.flop(1);
                }
                // Insertion into the top-k list.
                for (unsigned k = 0; k < topk; ++k) {
                    g.iop(1);
                    g.branch(best < ranks.get(k));
                    if (best < ranks.get(k)) {
                        for (unsigned m = topk - 1; m > k; --m) {
                            ranks.set(m, ranks.get(m - 1));
                            rank_ids.set(m, rank_ids.get(m - 1));
                        }
                        ranks.set(k, best);
                        rank_ids.set(k,
                                     static_cast<std::int32_t>(vec));
                        break;
                    }
                }
            }
        }
    }
}

} // namespace sigil::workloads
