/**
 * @file
 * Miniature PARSEC freqmine: frequent-itemset mining with FP-growth.
 *
 * The transaction database is scanned for item counts
 * (scan1_DB), transactions are re-sorted by frequency and inserted
 * into an FP-tree (insert_FPtree), and the tree is mined recursively
 * for frequent patterns (FP_growth — a genuinely recursive kernel,
 * exercising the context tree's recursion folding). Included as an
 * extension beyond the paper's figure set; it participates in the
 * PARSEC sweeps.
 */

#include <cstdint>

#include "support/rng.hh"
#include "vg/traced.hh"
#include "workloads/tracedlib.hh"
#include "workloads/workload.hh"

namespace sigil::workloads {

namespace {

constexpr unsigned kItems = 48;
constexpr unsigned kMaxTxnLen = 8;
constexpr std::size_t kMaxNodes = 4096;

/** An FP-tree stored in parallel guest arrays (item, count, links). */
struct FpTree
{
    FpTree(vg::Guest &g)
        : item(g, kMaxNodes, "fp_item"), count(g, kMaxNodes, "fp_count"),
          child(g, kMaxNodes, "fp_child"),
          sibling(g, kMaxNodes, "fp_sibling"),
          parent(g, kMaxNodes, "fp_parent"), nodes(g, 1, "fp_nodes")
    {}

    vg::GuestArray<std::int32_t> item;
    vg::GuestArray<std::int32_t> count;
    vg::GuestArray<std::int32_t> child;
    vg::GuestArray<std::int32_t> sibling;
    vg::GuestArray<std::int32_t> parent;
    vg::GuestVar<std::int32_t> nodes;
};

/** Insert one frequency-sorted transaction into the FP-tree. */
void
insertTransaction(vg::Guest &g, FpTree &tree,
                  const std::int32_t *items, unsigned len)
{
    vg::ScopedFunction f(g, "insert_FPtree");
    std::int32_t cur = 0; // root
    for (unsigned k = 0; k < len; ++k) {
        std::int32_t it = items[k];
        // Find a child of cur with this item.
        std::int32_t c = tree.child.get(static_cast<std::size_t>(cur));
        std::int32_t found = -1;
        while (c >= 0) {
            g.iop(2);
            g.branch(tree.item.get(static_cast<std::size_t>(c)) == it);
            if (tree.item.get(static_cast<std::size_t>(c)) == it) {
                found = c;
                break;
            }
            c = tree.sibling.get(static_cast<std::size_t>(c));
        }
        if (found >= 0) {
            tree.count.set(static_cast<std::size_t>(found),
                           tree.count.get(
                               static_cast<std::size_t>(found)) +
                               1);
            cur = found;
            g.iop(2);
            continue;
        }
        // Allocate a new node.
        std::int32_t n = tree.nodes.get();
        if (static_cast<std::size_t>(n) >= kMaxNodes)
            return; // tree full: drop the tail (bounded miniature)
        tree.nodes.set(n + 1);
        tree.item.set(static_cast<std::size_t>(n), it);
        tree.count.set(static_cast<std::size_t>(n), 1);
        tree.child.set(static_cast<std::size_t>(n), -1);
        tree.sibling.set(static_cast<std::size_t>(n),
                         tree.child.get(static_cast<std::size_t>(cur)));
        tree.parent.set(static_cast<std::size_t>(n), cur);
        tree.child.set(static_cast<std::size_t>(cur), n);
        cur = n;
        g.iop(6);
    }
}

/**
 * FP_growth: recursively mine the subtree below node, accumulating
 * pattern counts. Recursion folds onto one context, as Callgrind's
 * cycle handling does.
 */
std::uint64_t
fpGrowth(vg::Guest &g, FpTree &tree, std::int32_t node, unsigned depth,
         vg::GuestArray<std::uint32_t> &pattern_counts)
{
    vg::ScopedFunction f(g, "FP_growth");
    std::uint64_t patterns = 0;
    std::int32_t c = tree.child.get(static_cast<std::size_t>(node));
    while (c >= 0) {
        std::int32_t cnt = tree.count.get(static_cast<std::size_t>(c));
        std::int32_t it = tree.item.get(static_cast<std::size_t>(c));
        g.iop(3);
        g.branch(cnt >= 2);
        if (cnt >= 2) {
            ++patterns;
            std::size_t slot =
                (static_cast<std::size_t>(it) * 31 + depth) %
                pattern_counts.size();
            pattern_counts.set(
                slot, pattern_counts.get(slot) +
                          static_cast<std::uint32_t>(cnt));
            g.iop(3);
            if (depth < 12) {
                patterns +=
                    fpGrowth(g, tree, c, depth + 1, pattern_counts);
            }
        }
        c = tree.sibling.get(static_cast<std::size_t>(c));
    }
    return patterns;
}

} // namespace

void
runFreqmine(vg::Guest &g, Scale scale)
{
    const unsigned factor = scaleFactor(scale);
    const std::size_t txns = 512 * factor;

    Lib lib(g);
    Rng rng(0xf4e9);

    // Transaction database: fixed-width rows of item ids (0 = empty).
    vg::GuestArray<std::int32_t> db(g, txns * kMaxTxnLen, "txn_db");
    db.fillAsInput([&](std::size_t i) {
        // Zipf-ish skew: low item ids are frequent.
        std::uint64_t r = rng.nextBounded(kItems * 3);
        std::int32_t item = static_cast<std::int32_t>(
            r < kItems ? r : r < 2 * kItems ? r % (kItems / 4)
                                            : r % (kItems / 8));
        bool present = (i % kMaxTxnLen) < 2 + rng.nextBounded(
                                                  kMaxTxnLen - 2);
        return present ? item + 1 : 0;
    });

    vg::ScopedFunction main_fn(g, "main");
    lib.consume(lib.localeCtor(), 192);

    vg::GuestArray<std::uint32_t> item_counts(g, kItems + 1,
                                              "item_counts");
    vg::GuestArray<std::uint32_t> pattern_counts(g, 256,
                                                 "pattern_counts");
    FpTree tree(g);

    {
        // First database scan: global item frequencies.
        vg::ScopedFunction scan(g, "scan1_DB");
        lib.memset(item_counts, 0, item_counts.size(),
                   std::uint32_t{0});
        for (std::size_t i = 0; i < db.size(); ++i) {
            std::int32_t it = db.get(i);
            g.iop(1);
            g.branch(it != 0);
            if (it != 0) {
                item_counts.set(static_cast<std::size_t>(it),
                                item_counts.get(
                                    static_cast<std::size_t>(it)) +
                                    1);
            }
        }
    }

    {
        // Second scan: sort each transaction by global frequency and
        // insert into the FP-tree.
        vg::ScopedFunction scan(g, "scan2_DB");
        tree.nodes.set(1); // node 0 is the root
        tree.item.set(0, -1);
        tree.child.set(0, -1);
        for (std::size_t t = 0; t < txns; ++t) {
            std::int32_t items[kMaxTxnLen];
            unsigned len = 0;
            for (unsigned k = 0; k < kMaxTxnLen; ++k) {
                std::int32_t it = db.get(t * kMaxTxnLen + k);
                g.iop(1);
                if (it != 0)
                    items[len++] = it;
            }
            // Insertion-sort by descending frequency.
            for (unsigned a = 1; a < len; ++a) {
                std::int32_t v = items[a];
                std::uint32_t vf = item_counts.get(
                    static_cast<std::size_t>(v));
                unsigned b = a;
                while (b > 0) {
                    std::uint32_t pf = item_counts.get(
                        static_cast<std::size_t>(items[b - 1]));
                    g.iop(2);
                    g.branch(pf < vf);
                    if (pf >= vf)
                        break;
                    items[b] = items[b - 1];
                    --b;
                }
                items[b] = v;
            }
            insertTransaction(g, tree, items, len);
        }
    }

    {
        vg::ScopedFunction mine(g, "FP_growth_first_top");
        lib.memset(pattern_counts, 0, pattern_counts.size(),
                   std::uint32_t{0});
        std::uint64_t patterns =
            fpGrowth(g, tree, 0, 0, pattern_counts);
        g.iop(1);
        (void)patterns;
    }
}

} // namespace sigil::workloads
