/**
 * @file
 * Miniature PARSEC streamcluster: online k-median clustering of a
 * point stream.
 *
 * streamCluster consumes the stream in chunks; localSearch improves the
 * current centers by repeated pkmedian passes; pkmedian samples
 * candidate centers through the traced lrand48 → nrand48_r →
 * drand48_iterate chain and evaluates reassignment gains with many
 * small independent dist calls. Those short chains are why the paper
 * finds a high theoretical function-level parallelism here, with the
 * rand chain sitting at the leaf end of the critical path.
 */

#include <cstdint>

#include "support/rng.hh"
#include "vg/traced.hh"
#include "workloads/tracedlib.hh"
#include "workloads/workload.hh"

namespace sigil::workloads {

namespace {

constexpr unsigned kDim = 8;

/** Squared Euclidean distance between a point and a center. */
double
dist(vg::Guest &g, const vg::GuestArray<double> &points, std::size_t p,
     const vg::GuestArray<double> &centers, std::size_t c)
{
    vg::ScopedFunction f(g, "dist");
    double acc = 0.0;
    for (unsigned d = 0; d < kDim; ++d) {
        double diff = points.get(p * kDim + d) - centers.get(c * kDim + d);
        acc += diff * diff;
        g.flop(3);
    }
    return acc;
}

} // namespace

void
runStreamcluster(vg::Guest &g, Scale scale)
{
    const unsigned factor = scaleFactor(scale);
    const std::size_t chunk_points = 128 * factor;
    const unsigned chunks = 2;
    const unsigned k_centers = 6;
    const unsigned search_iters = 3;

    Lib lib(g);
    Rng rng(0x5c);

    vg::GuestArray<double> stream(
        g, std::size_t{chunks} * chunk_points * kDim, "point_stream");
    stream.fillAsInput(
        [&](std::size_t) { return rng.nextRange(0.0, 100.0); });

    vg::ScopedFunction main_fn(g, "main");

    vg::GuestArray<double> points(g, chunk_points * kDim, "chunk");
    vg::GuestArray<double> centers(g, std::size_t{k_centers} * kDim,
                                   "centers");
    vg::GuestArray<double> assign_cost(g, chunk_points, "assign_cost");
    vg::GuestArray<std::int32_t> assignment(g, chunk_points,
                                            "assignment");
    lib.consume(lib.vectorCtor(chunk_points, 8), chunk_points * 8);

    vg::ScopedFunction sc(g, "streamCluster");
    for (unsigned chunk = 0; chunk < chunks; ++chunk) {
        // Pull the next chunk off the stream.
        lib.memcpy(points, 0, stream,
                   std::size_t{chunk} * chunk_points * kDim,
                   chunk_points * kDim);

        vg::ScopedFunction ls(g, "localSearch");
        for (unsigned iter = 0; iter < search_iters; ++iter) {
            vg::ScopedFunction pk(g, "pkmedian");

            // Sample candidate centers from the chunk.
            for (unsigned c = 0; c < k_centers; ++c) {
                std::size_t pick =
                    static_cast<std::size_t>(lib.lrand48()) %
                    chunk_points;
                g.iop(1);
                for (unsigned d = 0; d < kDim; ++d) {
                    centers.set(std::size_t{c} * kDim + d,
                                points.get(pick * kDim + d));
                }
            }

            // Assign every point to its nearest candidate.
            double total = 0.0;
            for (std::size_t p = 0; p < chunk_points; ++p) {
                double best = 1e300;
                std::int32_t best_c = 0;
                for (unsigned c = 0; c < k_centers; ++c) {
                    double d = dist(g, points, p, centers, c);
                    g.branch(d < best);
                    if (d < best) {
                        best = d;
                        best_c = static_cast<std::int32_t>(c);
                    }
                    g.iop(1);
                }
                assignment.set(p, best_c);
                assign_cost.set(p, best);
                total += best;
                g.flop(1);
            }

            // pgain: would closing a random center help?
            vg::ScopedFunction pg(g, "pgain");
            std::size_t victim =
                static_cast<std::size_t>(lib.lrand48()) % k_centers;
            double gain = 0.0;
            for (std::size_t p = 0; p < chunk_points; ++p) {
                g.iop(1);
                g.branch(assignment.get(p) ==
                         static_cast<std::int32_t>(victim));
                if (assignment.get(p) !=
                    static_cast<std::int32_t>(victim))
                    continue;
                double second = 1e300;
                for (unsigned c = 0; c < k_centers; ++c) {
                    if (c == victim)
                        continue;
                    double d = dist(g, points, p, centers, c);
                    if (d < second)
                        second = d;
                    g.iop(1);
                }
                gain += second - assign_cost.get(p);
                g.flop(2);
            }
            g.flop(1);
            (void)gain;
            (void)total;
        }
    }
}

} // namespace sigil::workloads
