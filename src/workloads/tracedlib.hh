/**
 * @file
 * Traced standard-library surrogates.
 *
 * Real PARSEC binaries spend much of their time in libc/libm leaves —
 * math kernels, string/memory utilities, allocator and iostream
 * plumbing — and those are exactly the functions the paper's
 * partitioning tables rank (Table II/III: _ieee754_exp, strtof,
 * __mpn_mul, memchr, adler32, sha1_block_data_order, operator new,
 * free, ...). This library implements those functions against the
 * instrumented guest: each enters its registered name, reads its
 * spilled arguments, performs the real computation with faithful
 * operation accounting, and touches guest memory exactly where the real
 * implementation would.
 */

#ifndef SIGIL_WORKLOADS_TRACEDLIB_HH
#define SIGIL_WORKLOADS_TRACEDLIB_HH

#include <cstdint>
#include <memory>

#include "vg/guest.hh"
#include "vg/traced.hh"

namespace sigil::workloads {

/** Traced libc/libm bound to one guest. */
class Lib
{
  public:
    explicit Lib(vg::Guest &guest);

    vg::Guest &guest() { return g_; }

    /** @name Math (the _ieee754_ family) */
    /// @{
    double exp(double x);
    float expf(float x);
    double log(double x);
    float logf(float x);
    double sqrt(double x);
    double pow(double x, double y);
    double sin(double x);
    double cos(double x);
    bool isnan(double x);
    /// @}

    /** @name Bignum limbs (strtof's slow path) */
    /// @{

    /**
     * Schoolbook multiply: dst[0..n1+n2) = src1[0..n1) * src2[0..n2).
     * Registered as "__mpn_mul".
     */
    void mpnMul(vg::GuestArray<std::uint64_t> &dst,
                const vg::GuestArray<std::uint64_t> &src1, std::size_t n1,
                const vg::GuestArray<std::uint64_t> &src2, std::size_t n2);

    /** In-place right shift of n limbs by bits (< 64). */
    void mpnRshift(vg::GuestArray<std::uint64_t> &arr, std::size_t n,
                   unsigned bits);

    /** In-place left shift of n limbs by bits (< 64). */
    void mpnLshift(vg::GuestArray<std::uint64_t> &arr, std::size_t n,
                   unsigned bits);
    /// @}

    /**
     * Parse a float from traced characters starting at pos; *end gets
     * the index one past the parsed text. Registered as "strtof".
     */
    float strtof(const vg::GuestArray<char> &buf, std::size_t pos,
                 std::size_t *end);

    /** @name Memory and string utilities */
    /// @{

    /** Element-wise copy, registered as "memcpy". */
    template <typename T>
    void
    memcpy(vg::GuestArray<T> &dst, std::size_t doff,
           const vg::GuestArray<T> &src, std::size_t soff, std::size_t n)
    {
        vg::ScopedFunction f(g_, fnMemcpy_);
        for (std::size_t i = 0; i < n; ++i) {
            g_.iop();
            dst.set(doff + i, src.get(soff + i));
        }
    }

    /** Overlap-safe element-wise copy, registered as "memmove". */
    template <typename T>
    void
    memmove(vg::GuestArray<T> &dst, std::size_t doff,
            const vg::GuestArray<T> &src, std::size_t soff, std::size_t n)
    {
        vg::ScopedFunction f(g_, fnMemmove_);
        bool forward = dst.addr(doff) <= src.addr(soff);
        g_.iop(2);
        for (std::size_t k = 0; k < n; ++k) {
            std::size_t i = forward ? k : n - 1 - k;
            g_.iop();
            dst.set(doff + i, src.get(soff + i));
        }
    }

    /** Fill with a value, registered as "memset". */
    template <typename T>
    void
    memset(vg::GuestArray<T> &dst, std::size_t off, std::size_t n,
           const T &value)
    {
        vg::ScopedFunction f(g_, fnMemset_);
        for (std::size_t i = 0; i < n; ++i) {
            g_.iop();
            dst.set(off + i, value);
        }
    }

    /**
     * Bottom-up merge sort of n elements using a caller-provided
     * temporary buffer, exactly glibc's qsort fallback. Registered as
     * "msort_with_tmp".
     */
    template <typename T>
    void
    msort(vg::GuestArray<T> &arr, std::size_t off, std::size_t n,
          vg::GuestArray<T> &tmp, std::size_t tmp_off)
    {
        vg::ScopedFunction f(g_, fnMsort_);
        for (std::size_t width = 1; width < n; width *= 2) {
            g_.iop(2);
            for (std::size_t lo = 0; lo < n; lo += 2 * width) {
                std::size_t mid = std::min(lo + width, n);
                std::size_t hi = std::min(lo + 2 * width, n);
                std::size_t i = lo, j = mid, k = lo;
                while (i < mid && j < hi) {
                    T a = arr.get(off + i);
                    T b = arr.get(off + j);
                    g_.iop(3);
                    g_.branch(a <= b);
                    if (a <= b) {
                        tmp.set(tmp_off + k++, a);
                        ++i;
                    } else {
                        tmp.set(tmp_off + k++, b);
                        ++j;
                    }
                }
                while (i < mid) {
                    tmp.set(tmp_off + k++, arr.get(off + i++));
                    g_.iop(1);
                }
                while (j < hi) {
                    tmp.set(tmp_off + k++, arr.get(off + j++));
                    g_.iop(1);
                }
                for (std::size_t m = lo; m < hi; ++m)
                    arr.set(off + m, tmp.get(tmp_off + m));
            }
        }
    }

    /**
     * First index of value in buf[off, off+n), or -1.
     * Registered as "memchr".
     */
    long memchr(const vg::GuestArray<unsigned char> &buf, std::size_t off,
                std::size_t n, unsigned char value);

    /**
     * Lexicographic compare of n traced bytes.
     * Registered as "std::string::compare".
     */
    int stringCompare(const vg::GuestArray<unsigned char> &a,
                      std::size_t aoff,
                      const vg::GuestArray<unsigned char> &b,
                      std::size_t boff, std::size_t n);
    /// @}

    /** @name Checksums and compression (the dedup pipeline leaves) */
    /// @{

    /** Rolling Adler-32 over traced bytes, registered as "adler32". */
    std::uint32_t adler32(std::uint32_t adler,
                          const vg::GuestArray<unsigned char> &buf,
                          std::size_t off, std::size_t n);

    /**
     * Real SHA-1 compression of one 64-byte block into a 5-word state.
     * Registered as "sha1_block_data_order".
     */
    void sha1Block(vg::GuestArray<std::uint32_t> &state,
                   const vg::GuestArray<unsigned char> &block,
                   std::size_t off);

    /**
     * Simplified deflate block flush: RLE+bit-pack n input bytes into
     * out, returning bytes emitted. Registered as "_tr_flush_block".
     */
    std::size_t trFlushBlock(const vg::GuestArray<unsigned char> &in,
                             std::size_t off, std::size_t n,
                             vg::GuestArray<unsigned char> &out,
                             std::size_t ooff);

    /**
     * Append data to an output "file" buffer (models the write path of
     * dedup). Registered as "write_file".
     */
    void writeFile(vg::GuestArray<unsigned char> &file, std::size_t foff,
                   const vg::GuestArray<unsigned char> &data,
                   std::size_t off, std::size_t n);
    /// @}

    /**
     * Linear-probe search of an open-addressed table of keys; returns
     * the slot index holding key or the first empty slot (key 0).
     * Registered as "hashtable_search".
     */
    std::size_t hashtableSearch(const vg::GuestArray<std::uint64_t> &table,
                                std::uint64_t key);

    /** @name Allocator / runtime plumbing (Table III's usual suspects) */
    /// @{

    /** Allocate guest memory with a traced header ("operator new"). */
    vg::Addr operatorNew(std::size_t bytes);

    /** Read back the header of an allocation ("free"). */
    void free(vg::Addr addr);

    /**
     * Default-construct a vector of n elements of elem_size bytes:
     * operator new + zero-fill ("std::vector<T>::vector").
     * @return guest address of the storage.
     */
    vg::Addr vectorCtor(std::size_t n, std::size_t elem_size);

    /** Copy-construct a string from traced bytes ("std::basic_string"). */
    vg::Addr stringCtor(const vg::GuestArray<unsigned char> &src,
                        std::size_t off, std::size_t n);

    /** Assign traced bytes into a string ("std::string::assign"). */
    void stringAssign(vg::GuestArray<unsigned char> &dst, std::size_t doff,
                      const vg::GuestArray<unsigned char> &src,
                      std::size_t soff, std::size_t n);

    /**
     * Construct the classic locale ("std::locale::locale").
     * @return guest address of the facet table.
     */
    vg::Addr localeCtor();

    /** Symbol lookup walk over the link map ("dl_addr"). */
    void dlAddr();

    /**
     * Buffered stream read of n bytes from a traced "file" into dst
     * ("_IO_file_xsgetn").
     */
    void ioFileXsgetn(vg::GuestArray<unsigned char> &dst, std::size_t doff,
                      const vg::GuestArray<unsigned char> &file,
                      std::size_t foff, std::size_t n);

    /** Push one byte back into the stream buffer ("_IO_sputbackc"). */
    void ioSputbackc(vg::GuestArray<unsigned char> &file,
                     std::size_t foff);
    /// @}

    /**
     * Read a byte range in the calling context (8 bytes at a time).
     * Used by workloads to model later use of constructor-initialized
     * storage, so a constructor's output is visible as communication.
     */
    void consume(vg::Addr addr, std::size_t bytes);

    /** @name The drand48 chain (streamcluster's critical-path leaves) */
    /// @{

    /** POSIX lrand48: "lrand48" → "nrand48_r" → "drand48_iterate". */
    long lrand48();
    /// @}

  private:
    std::uint64_t drand48Iterate();
    long nrand48R();

    vg::Guest &g_;

    vg::FunctionId fnExp_, fnExpf_, fnLog_, fnLogf_, fnSqrt_, fnPow_,
        fnSin_, fnCos_, fnIsnan_, fnMsort_;
    vg::FunctionId fnMpnMul_, fnMpnRshift_, fnMpnLshift_, fnStrtof_;
    vg::FunctionId fnMemcpy_, fnMemmove_, fnMemset_, fnMemchr_,
        fnStrCompare_;
    vg::FunctionId fnAdler_, fnSha1_, fnTrFlush_, fnWriteFile_,
        fnHashSearch_;
    vg::FunctionId fnNew_, fnFree_, fnVectorCtor_, fnStringCtor_,
        fnStringAssign_, fnLocale_, fnDlAddr_, fnXsgetn_, fnSputbackc_;
    vg::FunctionId fnLrand48_, fnNrand48R_, fnDrand48It_;

    /** 48-bit LCG state in guest memory. */
    std::unique_ptr<vg::GuestArray<std::uint64_t>> seed48_;

    /** Pseudo link-map table walked by dlAddr(). */
    std::unique_ptr<vg::GuestArray<std::uint64_t>> linkMap_;

    /** Allocator arena bins touched by operatorNew()/free(). */
    std::unique_ptr<vg::GuestArray<std::uint64_t>> arenaMeta_;

    /** Reused limb scratch for strtof's bignum slow path. */
    std::unique_ptr<vg::GuestArray<std::uint64_t>> mpnScratchA_;
    std::unique_ptr<vg::GuestArray<std::uint64_t>> mpnScratchB_;
    std::unique_ptr<vg::GuestArray<std::uint64_t>> mpnScratchD_;
};

} // namespace sigil::workloads

#endif // SIGIL_WORKLOADS_TRACEDLIB_HH
