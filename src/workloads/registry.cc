#include "workload.hh"

#include "support/logging.hh"

namespace sigil::workloads {

const char *
scaleName(Scale scale)
{
    switch (scale) {
      case Scale::SimSmall: return "simsmall";
      case Scale::SimMedium: return "simmedium";
      case Scale::SimLarge: return "simlarge";
    }
    panic("scaleName: bad scale");
}

unsigned
scaleFactor(Scale scale)
{
    switch (scale) {
      case Scale::SimSmall: return 1;
      case Scale::SimMedium: return 4;
      case Scale::SimLarge: return 16;
    }
    panic("scaleFactor: bad scale");
}

const std::vector<Workload> &
allWorkloads()
{
    static const std::vector<Workload> workloads = {
        {"blackscholes", "Black-Scholes option pricing", runBlackscholes},
        {"bodytrack", "body tracking from camera silhouettes",
         runBodytrack},
        {"canneal", "simulated-annealing netlist placement", runCanneal},
        {"dedup", "deduplicating compression pipeline", runDedup},
        {"ferret", "content-based image similarity search", runFerret},
        {"fluidanimate", "SPH fluid dynamics", runFluidanimate},
        {"streamcluster", "online k-median clustering", runStreamcluster},
        {"swaptions", "HJM Monte-Carlo swaption pricing", runSwaptions},
        {"vips", "image-processing pipeline", runVips},
        {"raytrace", "Whitted-style ray tracing", runRaytrace},
        {"facesim", "face-mesh physical simulation", runFacesim},
        {"libquantum", "quantum register simulation (SPEC)",
         runLibquantum},
        {"freqmine", "FP-growth frequent-itemset mining", runFreqmine},
        {"x264", "H.264-style motion estimation and coding", runX264},
        {"blackscholes_parallel",
         "pthreads blackscholes (multi-threaded extension)",
         runBlackscholesParallel},
        {"dedup_parallel",
         "pipeline-threaded dedup (multi-threaded extension)",
         runDedupParallel},
    };
    return workloads;
}

const Workload *
findWorkload(std::string_view name)
{
    for (const Workload &w : allWorkloads()) {
        if (w.name == name)
            return &w;
    }
    return nullptr;
}

std::vector<Workload>
parsecWorkloads()
{
    std::vector<Workload> out;
    for (const Workload &w : allWorkloads()) {
        if (w.name != "libquantum" && w.name != "blackscholes_parallel" &&
            w.name != "dedup_parallel")
            out.push_back(w);
    }
    return out;
}

} // namespace sigil::workloads
