/**
 * @file
 * dedup_parallel: the pipeline-threaded dedup kernel.
 *
 * Real dedup is PARSEC's canonical pipeline benchmark: fragmentation,
 * deduplication, compression, and output run as separate thread stages
 * connected by queues. This miniature reproduces that structure on the
 * multi-threaded guest: four stage threads communicate through
 * guest-memory queues (chunk descriptors + payload buffers), so the
 * thread communication matrix shows the pipeline's characteristic
 * forward-only flows, and the event trace exhibits pipeline (not
 * fork-join) parallelism.
 */

#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/rng.hh"
#include "vg/traced.hh"
#include "workloads/tracedlib.hh"
#include "workloads/workload.hh"

namespace sigil::workloads {

namespace {

constexpr std::size_t kChunk = 512;
constexpr std::size_t kQueueDepth = 4;

using Bytes = vg::GuestArray<unsigned char>;

} // namespace

void
runDedupParallel(vg::Guest &g, Scale scale)
{
    const unsigned factor = scaleFactor(scale);
    const std::size_t stream_len = 16384 * factor;
    const std::size_t chunks = stream_len / kChunk;

    Lib lib(g);
    Rng rng(0xded2);

    // Input stream with repeats (as the serial version).
    std::vector<unsigned char> host(stream_len);
    {
        Rng seg(0x7777);
        std::vector<unsigned char> motif(kChunk);
        for (auto &b : motif)
            b = static_cast<unsigned char>(seg.nextBounded(256));
        for (std::size_t c = 0; c < chunks; ++c) {
            bool repeat = (seg.next() & 3) == 0;
            for (std::size_t i = 0; i < kChunk; ++i) {
                host[c * kChunk + i] =
                    repeat ? motif[i]
                           : static_cast<unsigned char>(
                                 seg.nextBounded(256));
            }
        }
    }
    Bytes stream(g, stream_len, "input_stream");
    for (std::size_t i = 0; i < stream_len; ++i)
        stream.raw(i) = host[i];

    // Inter-stage queues: payload slots plus one descriptor word per
    // slot (chunk id << 1 | duplicate flag).
    Bytes q1(g, kQueueDepth * kChunk, "frag_to_dedup");
    Bytes q2(g, kQueueDepth * kChunk, "dedup_to_compress");
    Bytes q3(g, kQueueDepth * 2 * kChunk, "compress_to_write");
    vg::GuestArray<std::uint64_t> q1_desc(g, kQueueDepth, "q1_desc");
    vg::GuestArray<std::uint64_t> q2_desc(g, kQueueDepth, "q2_desc");
    vg::GuestArray<std::uint64_t> q3_desc(g, kQueueDepth, "q3_desc");
    vg::GuestArray<std::uint32_t> sha_state(g, 5, "sha1_state");
    vg::GuestArray<std::uint64_t> table(g, 512, "dedup_table");
    Bytes archive(g, 2 * stream_len + 4096, "archive");

    // Stage threads. Thread 0 (main) is the fragmenter.
    g.enter("main");
    lib.consume(lib.localeCtor(), 192);
    g.syscallIn("read", stream.addr(0),
                static_cast<unsigned>(stream_len));
    lib.memset(table, 0, table.size(), std::uint64_t{0});

    vg::ThreadId t_dedup = g.spawnThread();
    vg::ThreadId t_comp = g.spawnThread();
    vg::ThreadId t_write = g.spawnThread();
    g.switchThread(t_dedup);
    g.enter("Deduplicate");
    g.iop(2);
    g.switchThread(t_comp);
    g.enter("Compress");
    g.iop(2);
    g.switchThread(t_write);
    g.enter("SendBlock");
    g.iop(2);
    g.switchThread(0);

    std::size_t archive_off = 0;
    std::uint64_t dups = 0;

    // Round-robin pipeline schedule, kQueueDepth chunks in flight.
    for (std::size_t base = 0; base < chunks; base += kQueueDepth) {
        std::size_t batch = std::min(kQueueDepth, chunks - base);

        // Stage 1 (thread 0): fragment — stage payloads into q1.
        {
            vg::ScopedFunction frag(g, "Fragment");
            for (std::size_t s = 0; s < batch; ++s) {
                lib.memcpy(q1, s * kChunk, stream,
                           (base + s) * kChunk, kChunk);
                q1_desc.set(s, (base + s) << 1);
                g.iop(2);
            }
        }

        // Stage 2 (dedup thread): hash, lookup, annotate descriptor.
        g.switchThread(t_dedup);
        for (std::size_t s = 0; s < batch; ++s) {
            std::uint64_t desc = q1_desc.get(s);
            sha_state.set(0, 0x67452301u);
            sha_state.set(1, 0xefcdab89u);
            sha_state.set(2, 0x98badcfeu);
            sha_state.set(3, 0x10325476u);
            sha_state.set(4, 0xc3d2e1f0u);
            for (std::size_t b = 0; b < kChunk / 64; ++b)
                lib.sha1Block(sha_state, q1, s * kChunk + b * 64);
            std::uint64_t digest =
                ((static_cast<std::uint64_t>(sha_state.get(0)) << 32) |
                 sha_state.get(1)) |
                1;
            std::size_t slot = lib.hashtableSearch(table, digest);
            bool dup =
                slot < table.size() && table.get(slot) == digest;
            if (!dup && slot < table.size())
                table.set(slot, digest);
            if (!dup)
                lib.memcpy(q2, s * kChunk, q1, s * kChunk, kChunk);
            q2_desc.set(s, desc | (dup ? 1u : 0u));
            dups += dup ? 1 : 0;
            g.iop(4);
            g.branch(dup);
        }

        // Stage 3 (compress thread): RLE unique chunks into q3.
        g.switchThread(t_comp);
        for (std::size_t s = 0; s < batch; ++s) {
            std::uint64_t desc = q2_desc.get(s);
            if ((desc & 1) == 0) {
                std::size_t clen = lib.trFlushBlock(
                    q2, s * kChunk, kChunk, q3, s * 2 * kChunk);
                q3_desc.set(s, (desc & ~1ull) | (clen << 32));
            } else {
                q3_desc.set(s, desc);
            }
            g.iop(3);
        }

        // Stage 4 (writer thread): append to the archive.
        g.switchThread(t_write);
        for (std::size_t s = 0; s < batch; ++s) {
            std::uint64_t desc = q3_desc.get(s);
            if (desc & 1) {
                // Duplicate: 8-byte reference record.
                for (int i = 0; i < 8; ++i)
                    archive.set(archive_off + static_cast<std::size_t>(i),
                                static_cast<unsigned char>(desc >> (8 * i)));
                archive_off += 8;
                g.iop(2);
            } else {
                std::size_t clen = desc >> 32;
                lib.writeFile(archive, archive_off, q3, s * 2 * kChunk,
                              clen);
                archive_off += clen;
            }
        }
        g.switchThread(0);
    }

    // Barrier: drain the pipeline, then stages exit.
    g.barrier();
    for (vg::ThreadId t : {t_dedup, t_comp, t_write}) {
        g.switchThread(t);
        g.leave();
    }
    g.switchThread(0);
    g.syscallOut("write", archive.addr(0),
                 static_cast<unsigned>(archive_off));
    g.iop(1);
    (void)dups;
    g.leave();
}

} // namespace sigil::workloads
