/**
 * @file
 * blackscholes_parallel: the pthreads version of blackscholes, for the
 * multi-threaded extension of the profiler (the paper analyzes serial
 * versions and leaves threads as future work — threads are explicitly
 * listed among the "software entities" whose communication matters).
 *
 * Four worker threads price disjoint slices of the portfolio under a
 * round-robin schedule; each worker reads the shared input arrays
 * (produced on the main thread) and publishes a partial sum that the
 * main thread reduces — both flows are visible as cross-thread
 * communication in the profile's thread matrix.
 */

#include <cstdint>

#include "support/rng.hh"
#include "vg/traced.hh"
#include "workloads/tracedlib.hh"
#include "workloads/workload.hh"

namespace sigil::workloads {

namespace {

constexpr unsigned kThreads = 4;

/** One pricing step (Black-Scholes core, float precision). */
float
priceOption(vg::Guest &g, Lib &lib, const vg::GuestArray<float> &spot,
            const vg::GuestArray<float> &strike,
            const vg::GuestArray<float> &vol,
            const vg::GuestArray<float> &time, std::size_t i)
{
    vg::ScopedFunction f(g, "BlkSchlsEqEuroNoDiv");
    float s = spot.get(i);
    float k = strike.get(i);
    float v = vol.get(i);
    float t = time.get(i);
    float sqrt_t = static_cast<float>(lib.sqrt(t));
    float d1 = (lib.logf(s / k) + 0.5f * v * v * t) / (v * sqrt_t);
    g.flop(8);
    float nd1 = 0.5f * (1.0f + d1 / (1.0f + (d1 < 0 ? -d1 : d1)));
    g.flop(5);
    float price = s * nd1 - k * lib.expf(-0.04f * t) * nd1;
    g.flop(5);
    return price;
}

} // namespace

void
runBlackscholesParallel(vg::Guest &g, Scale scale)
{
    const std::size_t n = 256 * scaleFactor(scale);
    const std::size_t slice = n / kThreads;
    const std::size_t stripe = 16; // options per scheduling quantum

    Lib lib(g);
    Rng rng(0xb1ac5);

    vg::GuestArray<float> spot(g, n, "spot");
    vg::GuestArray<float> strike(g, n, "strike");
    vg::GuestArray<float> vol(g, n, "vol");
    vg::GuestArray<float> time(g, n, "time");
    spot.fillAsInput([&](std::size_t) {
        return static_cast<float>(rng.nextRange(10.0, 150.0));
    });
    strike.fillAsInput([&](std::size_t) {
        return static_cast<float>(rng.nextRange(10.0, 150.0));
    });
    vol.fillAsInput([&](std::size_t) {
        return static_cast<float>(rng.nextRange(0.05, 0.6));
    });
    time.fillAsInput([&](std::size_t) {
        return static_cast<float>(rng.nextRange(0.1, 3.0));
    });

    vg::GuestArray<float> prices(g, n, "prices");
    vg::GuestArray<double> partials(g, kThreads, "partial_sums");

    // Main thread: setup.
    g.enter("main");
    g.iop(8);

    // Spawn the workers and start each one's bs_thread frame.
    vg::ThreadId workers[kThreads];
    for (unsigned t = 0; t < kThreads; ++t) {
        workers[t] = g.spawnThread();
        g.switchThread(workers[t]);
        g.enter("bs_thread");
        g.iop(2);
        vg::ScopedFunction init(g, "thread_init");
        partials.set(t, 0.0);
    }
    g.switchThread(0);

    // Round-robin scheduler: each quantum prices one stripe.
    double host_partials[kThreads] = {};
    for (std::size_t base = 0; base < slice; base += stripe) {
        for (unsigned t = 0; t < kThreads; ++t) {
            g.switchThread(workers[t]);
            std::size_t lo = t * slice + base;
            std::size_t hi = std::min(lo + stripe, (t + 1) * slice);
            double sum = 0.0;
            for (std::size_t i = lo; i < hi; ++i) {
                float p = priceOption(g, lib, spot, strike, vol, time, i);
                prices.set(i, p);
                sum += p;
                g.flop(1);
            }
            host_partials[t] += sum;
            partials.set(t, host_partials[t]);
        }
    }

    // All workers synchronize before publishing results.
    g.barrier();

    // Workers exit their thread function.
    for (unsigned t = 0; t < kThreads; ++t) {
        g.switchThread(workers[t]);
        g.leave(); // bs_thread
    }

    // Join + reduction on the main thread: reads every worker's
    // partial sum — the cross-thread edges t → 0.
    g.switchThread(0);
    {
        vg::ScopedFunction join(g, "pthread_join_reduce");
        double total = 0.0;
        for (unsigned t = 0; t < kThreads; ++t) {
            total += partials.get(t);
            g.flop(1);
        }
        lib.isnan(total);
    }
    g.leave(); // main
}

} // namespace sigil::workloads
