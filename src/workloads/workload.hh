/**
 * @file
 * The miniature PARSEC-like workload suite.
 *
 * Each workload is a faithful, reduced-scale serial implementation of
 * the algorithm at the core of the corresponding PARSEC (or SPEC)
 * benchmark, written against the instrumented guest: all data lives in
 * guest arrays, all hot functions are registered under the names the
 * paper's tables report, and input data is written under the synthetic
 * "*input*" producer. Input scales mirror PARSEC's simsmall /
 * simmedium / simlarge.
 */

#ifndef SIGIL_WORKLOADS_WORKLOAD_HH
#define SIGIL_WORKLOADS_WORKLOAD_HH

#include <string>
#include <string_view>
#include <vector>

#include "vg/guest.hh"

namespace sigil::workloads {

/** Input scale, mirroring PARSEC's input packs. */
enum class Scale { SimSmall, SimMedium, SimLarge };

/** "simsmall", "simmedium", or "simlarge". */
const char *scaleName(Scale scale);

/** Multiplier applied to a workload's base problem size. */
unsigned scaleFactor(Scale scale);

/** A registered workload. */
struct Workload
{
    std::string name;
    std::string description;
    void (*run)(vg::Guest &guest, Scale scale);
};

/** All workloads, in the order the paper's figures list them. */
const std::vector<Workload> &allWorkloads();

/** Find by name; nullptr if unknown. */
const Workload *findWorkload(std::string_view name);

/** The PARSEC subset (everything except libquantum). */
std::vector<Workload> parsecWorkloads();

/** @name Individual runners */
/// @{
void runBlackscholes(vg::Guest &guest, Scale scale);
void runBodytrack(vg::Guest &guest, Scale scale);
void runCanneal(vg::Guest &guest, Scale scale);
void runDedup(vg::Guest &guest, Scale scale);
void runFerret(vg::Guest &guest, Scale scale);
void runFluidanimate(vg::Guest &guest, Scale scale);
void runStreamcluster(vg::Guest &guest, Scale scale);
void runSwaptions(vg::Guest &guest, Scale scale);
void runVips(vg::Guest &guest, Scale scale);
void runRaytrace(vg::Guest &guest, Scale scale);
void runFacesim(vg::Guest &guest, Scale scale);
void runLibquantum(vg::Guest &guest, Scale scale);
void runFreqmine(vg::Guest &guest, Scale scale);
void runX264(vg::Guest &guest, Scale scale);
void runBlackscholesParallel(vg::Guest &guest, Scale scale);
void runDedupParallel(vg::Guest &guest, Scale scale);
/// @}

} // namespace sigil::workloads

#endif // SIGIL_WORKLOADS_WORKLOAD_HH
