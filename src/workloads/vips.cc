/**
 * @file
 * Miniature PARSEC vips: a VIPS-style image pipeline.
 *
 * The stages mirror the operators the paper drills into in Section
 * IV-B: affine_gen (bilinear resample of the input), two separable
 * convolution passes through conv_gen — reached via two different call
 * paths so they appear as conv_gen(1) and conv_gen(2) — and the
 * XYZ→Lab colourspace conversion imb_XYZ2Lab. conv_gen re-reads every
 * source pixel across a K-row sliding window, giving the long re-use
 * lifetimes of Figure 10; imb_XYZ2Lab touches each pixel a couple of
 * times back-to-back, giving Figure 11's peak at zero; and the three
 * operators contribute comparable (~10%) shares of the program's
 * unique bytes, as the paper reports.
 */

#include <cstdint>

#include "support/rng.hh"
#include "vg/traced.hh"
#include "workloads/tracedlib.hh"
#include "workloads/workload.hh"

namespace sigil::workloads {

namespace {

constexpr unsigned kKernel = 5;

using Plane = vg::GuestArray<float>;

/**
 * affine_gen: bilinear resample of one output band [y0, y1), as VIPS
 * region processing invokes it.
 */
void
affineGen(vg::Guest &g, const Plane &src, Plane &dst, unsigned w,
          unsigned h, unsigned y0, unsigned y1)
{
    vg::ScopedFunction f(g, "affine_gen");
    const float scale = 0.92f;
    for (unsigned y = y0; y < y1; ++y) {
        for (unsigned x = 0; x < w; ++x) {
            float sx = scale * static_cast<float>(x);
            float sy = scale * static_cast<float>(y);
            unsigned x0 = static_cast<unsigned>(sx);
            unsigned y0 = static_cast<unsigned>(sy);
            float fx = sx - static_cast<float>(x0);
            float fy = sy - static_cast<float>(y0);
            unsigned x1 = x0 + 1 < w ? x0 + 1 : x0;
            unsigned y1 = y0 + 1 < h ? y0 + 1 : y0;
            g.iop(6);
            float p00 = src.get(std::size_t{y0} * w + x0);
            float p01 = src.get(std::size_t{y0} * w + x1);
            float p10 = src.get(std::size_t{y1} * w + x0);
            float p11 = src.get(std::size_t{y1} * w + x1);
            float top = p00 + fx * (p01 - p00);
            float bot = p10 + fx * (p11 - p10);
            dst.set(std::size_t{y} * w + x, top + fy * (bot - top));
            g.flop(10);
        }
    }
}

/** conv_gen: dense KxK convolution of one output band [y0, y1). */
void
convGen(vg::Guest &g, const Plane &src, Plane &dst,
        const vg::GuestArray<float> &mask, unsigned w, unsigned h,
        unsigned y0, unsigned y1)
{
    vg::ScopedFunction f(g, "conv_gen");
    const unsigned r = kKernel / 2;
    for (unsigned y = y0; y < y1; ++y) {
        for (unsigned x = 0; x < w; ++x) {
            float acc = 0.0f;
            for (unsigned ky = 0; ky < kKernel; ++ky) {
                for (unsigned kx = 0; kx < kKernel; ++kx) {
                    int sy = static_cast<int>(y + ky) -
                             static_cast<int>(r);
                    int sx = static_cast<int>(x + kx) -
                             static_cast<int>(r);
                    if (sy < 0)
                        sy = 0;
                    if (sy >= static_cast<int>(h))
                        sy = static_cast<int>(h) - 1;
                    if (sx < 0)
                        sx = 0;
                    if (sx >= static_cast<int>(w))
                        sx = static_cast<int>(w) - 1;
                    g.iop(4);
                    acc += src.get(static_cast<std::size_t>(sy) * w +
                                   static_cast<std::size_t>(sx)) *
                           mask.get(ky * kKernel + kx);
                    g.flop(2);
                }
            }
            dst.set(std::size_t{y} * w + x, acc);
        }
    }
}

constexpr unsigned kBands = 4;

/** im_conv: first convolution pass, generated band by band. */
void
imConv(vg::Guest &g, const Plane &src, Plane &dst,
       const vg::GuestArray<float> &mask, unsigned w, unsigned h)
{
    vg::ScopedFunction f(g, "im_conv");
    g.iop(4);
    for (unsigned b = 0; b < kBands; ++b) {
        g.iop(2);
        convGen(g, src, dst, mask, w, h, b * h / kBands,
                (b + 1) * h / kBands);
    }
}

/** im_convsep: second pass — a distinct calling context of conv_gen. */
void
imConvsep(vg::Guest &g, const Plane &src, Plane &dst,
          const vg::GuestArray<float> &mask, unsigned w, unsigned h)
{
    vg::ScopedFunction f(g, "im_convsep");
    g.iop(4);
    for (unsigned b = 0; b < kBands; ++b) {
        g.iop(2);
        convGen(g, src, dst, mask, w, h, b * h / kBands,
                (b + 1) * h / kBands);
    }
}

/**
 * imb_XYZ2Lab: per-pixel colourspace conversion (cbrt via Newton) of
 * the pixel range [lo, hi).
 */
void
xyz2lab(vg::Guest &g, const Plane &src, Plane &dst, std::size_t lo,
        std::size_t hi)
{
    vg::ScopedFunction f(g, "imb_XYZ2Lab");
    for (std::size_t i = lo; i < hi; ++i) {
        float v = src.get(i) / 255.0f;
        if (v < 0.0f)
            v = 0.0f;
        g.flop(2);
        // cbrt by three Newton steps.
        float y = 0.5f + 0.5f * v;
        for (int it = 0; it < 3; ++it) {
            y = (2.0f * y + v / (y * y)) / 3.0f;
            g.flop(5);
        }
        float lum = 116.0f * y - 16.0f;
        // The a/b channels re-read the source pixel immediately.
        float chroma = 500.0f * (src.get(i) / 255.0f - y);
        dst.set(i, lum + 0.001f * chroma);
        g.flop(7);
    }
}

/** im_lintra: linear transform a*x + b over part of the plane. */
void
imLintra(vg::Guest &g, const Plane &src, Plane &dst, std::size_t n)
{
    vg::ScopedFunction f(g, "im_lintra");
    for (std::size_t i = 0; i < n; ++i) {
        dst.set(i, 1.06f * src.get(i) + 2.0f);
        g.flop(2);
    }
}

/** im_histgr: grey histogram of part of the plane. */
void
imHistgr(vg::Guest &g, const Plane &src,
         vg::GuestArray<std::uint32_t> &hist, std::size_t n)
{
    vg::ScopedFunction f(g, "im_histgr");
    for (std::size_t i = 0; i < n; ++i) {
        unsigned bin = static_cast<unsigned>(src.get(i)) & 0xff;
        hist.set(bin, hist.get(bin) + 1);
        g.iop(3);
    }
}

} // namespace

void
runVips(vg::Guest &g, Scale scale)
{
    const unsigned factor = scaleFactor(scale);
    const unsigned w = 48 * (factor == 1 ? 1 : factor == 4 ? 2 : 4);
    const unsigned h = w;
    const std::size_t pixels = std::size_t{w} * h;

    Lib lib(g);
    Rng rng(0x7195);

    Plane input(g, pixels, "input_image");
    input.fillAsInput(
        [&](std::size_t) { return static_cast<float>(rng.nextBounded(256)); });
    vg::GuestArray<float> mask(g, kKernel * kKernel, "conv_mask");
    mask.fillAsInput([&](std::size_t) { return 1.0f / 25.0f; });

    vg::ScopedFunction main_fn(g, "main");
    lib.consume(lib.localeCtor(), 192);
    lib.dlAddr();

    Plane resampled(g, pixels, "resampled");
    Plane blurred(g, pixels, "blurred");
    Plane sharpened(g, pixels, "sharpened");
    Plane lab(g, pixels, "lab");
    Plane adjusted(g, pixels, "adjusted");
    vg::GuestArray<std::uint32_t> hist(g, 256, "histogram");
    lib.consume(lib.vectorCtor(pixels, 4), pixels * 4);

    {
        vg::ScopedFunction aff(g, "im_affine");
        g.iop(2);
        for (unsigned b = 0; b < kBands; ++b)
            affineGen(g, input, resampled, w, h, b * h / kBands,
                      (b + 1) * h / kBands);
    }
    imConv(g, resampled, blurred, mask, w, h);
    imConvsep(g, blurred, sharpened, mask, w, h);
    {
        vg::ScopedFunction cs(g, "im_XYZ2Lab");
        g.iop(2);
        for (unsigned b = 0; b < kBands; ++b)
            xyz2lab(g, sharpened, lab,
                    std::size_t{b} * pixels / kBands,
                    std::size_t{b + 1} * pixels / kBands);
    }
    imLintra(g, lab, adjusted, pixels / 2);
    {
        vg::ScopedFunction hz(g, "im_histgr_init");
        lib.memset(hist, 0, hist.size(), std::uint32_t{0});
    }
    imHistgr(g, adjusted, hist, pixels / 3);
}

} // namespace sigil::workloads
