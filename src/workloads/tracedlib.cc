#include "tracedlib.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/logging.hh"

namespace sigil::workloads {

Lib::Lib(vg::Guest &guest) : g_(guest)
{
    vg::FunctionRegistry &f = g_.functions();
    fnExp_ = f.intern("_ieee754_exp");
    fnExpf_ = f.intern("_ieee754_expf");
    fnLog_ = f.intern("_ieee754_log");
    fnLogf_ = f.intern("_ieee754_logf");
    fnSqrt_ = f.intern("_ieee754_sqrt");
    fnPow_ = f.intern("_ieee754_pow");
    fnSin_ = f.intern("_ieee754_sin");
    fnCos_ = f.intern("_ieee754_cos");
    fnIsnan_ = f.intern("isnan");
    fnMsort_ = f.intern("msort_with_tmp");
    fnMpnMul_ = f.intern("__mpn_mul");
    fnMpnRshift_ = f.intern("__mpn_rshift");
    fnMpnLshift_ = f.intern("__mpn_lshift");
    fnStrtof_ = f.intern("strtof");
    fnMemcpy_ = f.intern("memcpy");
    fnMemmove_ = f.intern("memmove");
    fnMemset_ = f.intern("memset");
    fnMemchr_ = f.intern("memchr");
    fnStrCompare_ = f.intern("std::string::compare");
    fnAdler_ = f.intern("adler32");
    fnSha1_ = f.intern("sha1_block_data_order");
    fnTrFlush_ = f.intern("_tr_flush_block");
    fnWriteFile_ = f.intern("write_file");
    fnHashSearch_ = f.intern("hashtable_search");
    fnNew_ = f.intern("operator new");
    fnFree_ = f.intern("free");
    fnVectorCtor_ = f.intern("std::vector<T>::vector");
    fnStringCtor_ = f.intern("std::basic_string");
    fnStringAssign_ = f.intern("std::string::assign");
    fnLocale_ = f.intern("std::locale::locale");
    fnDlAddr_ = f.intern("dl_addr");
    fnXsgetn_ = f.intern("_IO_file_xsgetn");
    fnSputbackc_ = f.intern("_IO_sputbackc");
    fnLrand48_ = f.intern("lrand48");
    fnNrand48R_ = f.intern("nrand48_r");
    fnDrand48It_ = f.intern("drand48_iterate");

    seed48_ = std::make_unique<vg::GuestArray<std::uint64_t>>(
        g_, 1, "seed48");
    seed48_->fillAsInput([](std::size_t) { return 0x330e5deece66dull; });

    linkMap_ = std::make_unique<vg::GuestArray<std::uint64_t>>(
        g_, 64, "link_map");
    linkMap_->fillAsInput(
        [](std::size_t i) { return 0x400000ull + i * 0x1000; });

    arenaMeta_ = std::make_unique<vg::GuestArray<std::uint64_t>>(
        g_, 8, "malloc_arena");
    arenaMeta_->fillAsInput([](std::size_t) { return 0; });
}

double
Lib::exp(double x)
{
    vg::StackMark mark(g_);
    vg::ArgSlot<double> arg(g_, x);
    vg::ScopedFunction f(g_, fnExp_);
    double v = arg.load();

    // Range-reduce: v = k*ln2 + r with |r| <= ln2/2, then a degree-9
    // Taylor polynomial of e^r by Horner, finally scale by 2^k.
    static constexpr double kLn2 = 0.6931471805599453;
    static constexpr double kInvLn2 = 1.4426950408889634;
    double kd = std::nearbyint(v * kInvLn2);
    int k = static_cast<int>(kd);
    double r = v - kd * kLn2;
    g_.flop(4);

    static constexpr double c[] = {
        1.0 / 362880, 1.0 / 40320, 1.0 / 5040, 1.0 / 720, 1.0 / 120,
        1.0 / 24,     1.0 / 6,     1.0 / 2,    1.0,       1.0,
    };
    double p = c[0];
    for (int i = 1; i < 10; ++i)
        p = p * r + c[i];
    g_.flop(18);

    double result = std::ldexp(p, k);
    g_.flop(1);
    return result;
}

float
Lib::expf(float x)
{
    vg::StackMark mark(g_);
    vg::ArgSlot<float> arg(g_, x);
    vg::ScopedFunction f(g_, fnExpf_);
    float v = arg.load();

    static constexpr float kLn2f = 0.69314718f;
    static constexpr float kInvLn2f = 1.44269504f;
    float kd = std::nearbyintf(v * kInvLn2f);
    int k = static_cast<int>(kd);
    float r = v - kd * kLn2f;
    g_.flop(4);

    static constexpr float c[] = {1.0f / 720, 1.0f / 120, 1.0f / 24,
                                  1.0f / 6,   1.0f / 2,   1.0f,
                                  1.0f};
    float p = c[0];
    for (int i = 1; i < 7; ++i)
        p = p * r + c[i];
    g_.flop(12);

    float result = std::ldexp(p, k);
    g_.flop(1);
    return result;
}

double
Lib::log(double x)
{
    vg::StackMark mark(g_);
    vg::ArgSlot<double> arg(g_, x);
    vg::ScopedFunction f(g_, fnLog_);
    double v = arg.load();
    if (v <= 0.0) {
        g_.iop(2);
        return -std::numeric_limits<double>::infinity();
    }

    // v = m * 2^e with m in [sqrt(0.5), sqrt(2)); log v = e*ln2 +
    // 2*atanh(t) with t = (m-1)/(m+1), atanh by its odd-power series.
    static constexpr double kLn2 = 0.6931471805599453;
    int e = 0;
    double m = std::frexp(v, &e);
    if (m < 0.7071067811865476) {
        m *= 2.0;
        e -= 1;
        g_.flop(1);
    }
    g_.flop(2);

    double t = (m - 1.0) / (m + 1.0);
    double t2 = t * t;
    g_.flop(4);
    double s = 1.0 / 15;
    static constexpr double c[] = {1.0 / 13, 1.0 / 11, 1.0 / 9, 1.0 / 7,
                                   1.0 / 5,  1.0 / 3,  1.0};
    for (double ci : c)
        s = s * t2 + ci;
    g_.flop(14);
    double result = 2.0 * t * s + static_cast<double>(e) * kLn2;
    g_.flop(4);
    return result;
}

float
Lib::logf(float x)
{
    vg::StackMark mark(g_);
    vg::ArgSlot<float> arg(g_, x);
    vg::ScopedFunction f(g_, fnLogf_);
    float v = arg.load();
    if (v <= 0.0f) {
        g_.iop(2);
        return -std::numeric_limits<float>::infinity();
    }

    static constexpr float kLn2f = 0.69314718f;
    int e = 0;
    float m = std::frexp(v, &e);
    if (m < 0.70710678f) {
        m *= 2.0f;
        e -= 1;
        g_.flop(1);
    }
    g_.flop(2);

    float t = (m - 1.0f) / (m + 1.0f);
    float t2 = t * t;
    g_.flop(4);
    float s = 1.0f / 9;
    static constexpr float c[] = {1.0f / 7, 1.0f / 5, 1.0f / 3, 1.0f};
    for (float ci : c)
        s = s * t2 + ci;
    g_.flop(8);
    float result = 2.0f * t * s + static_cast<float>(e) * kLn2f;
    g_.flop(4);
    return result;
}

double
Lib::sqrt(double x)
{
    vg::StackMark mark(g_);
    vg::ArgSlot<double> arg(g_, x);
    vg::ScopedFunction f(g_, fnSqrt_);
    double v = arg.load();
    if (v <= 0.0) {
        g_.iop(2);
        return 0.0;
    }

    // Initial guess from halving the exponent, then Newton iterations.
    int e = 0;
    double m = std::frexp(v, &e);
    double y = std::ldexp(0.5 + 0.5 * m, e / 2);
    g_.flop(3);
    for (int i = 0; i < 5; ++i) {
        y = 0.5 * (y + v / y);
        g_.flop(3);
    }
    return y;
}

double
Lib::pow(double x, double y)
{
    vg::StackMark mark(g_);
    vg::ArgSlot<double> ax(g_, x);
    vg::ArgSlot<double> ay(g_, y);
    vg::ScopedFunction f(g_, fnPow_);
    double b = ax.load();
    double e = ay.load();
    double result = exp(e * log(b));
    g_.flop(1);
    return result;
}

namespace {

/** Degree-13 Taylor sine on a range-reduced argument in [-pi/2,pi/2]. */
double
sinPoly(vg::Guest &g, double r)
{
    // sin r = r * (1 - r^2/6 + r^4/120 - ...), Horner over r^2.
    double r2 = r * r;
    double p = 1.0 / 6227020800.0;
    static constexpr double c[] = {-1.0 / 39916800, 1.0 / 362880,
                                   -1.0 / 5040, 1.0 / 120, -1.0 / 6,
                                   1.0};
    for (double ci : c)
        p = p * r2 + ci;
    g.flop(14);
    return p * r;
}

} // namespace

double
Lib::sin(double x)
{
    vg::StackMark mark(g_);
    vg::ArgSlot<double> arg(g_, x);
    vg::ScopedFunction f(g_, fnSin_);
    double v = arg.load();
    // Reduce to [-pi, pi].
    static constexpr double kTwoPi = 6.283185307179586;
    double k = std::nearbyint(v / kTwoPi);
    double r = v - k * kTwoPi;
    g_.flop(3);
    if (r > 3.141592653589793) {
        r -= kTwoPi;
        g_.flop(1);
    } else if (r < -3.141592653589793) {
        r += kTwoPi;
        g_.flop(1);
    }
    // Use the half-angle fold for accuracy near ±pi.
    if (r > 1.5707963267948966) {
        r = 3.141592653589793 - r;
        g_.flop(1);
    } else if (r < -1.5707963267948966) {
        r = -3.141592653589793 - r;
        g_.flop(1);
    }
    return sinPoly(g_, r);
}

double
Lib::cos(double x)
{
    vg::StackMark mark(g_);
    vg::ArgSlot<double> arg(g_, x);
    vg::ScopedFunction f(g_, fnCos_);
    double v = arg.load();
    g_.flop(1);
    return sin(v + 1.5707963267948966);
}

bool
Lib::isnan(double x)
{
    vg::StackMark mark(g_);
    vg::ArgSlot<double> arg(g_, x);
    vg::ScopedFunction f(g_, fnIsnan_);
    double v = arg.load();
    g_.iop(1);
    return v != v;
}

void
Lib::mpnMul(vg::GuestArray<std::uint64_t> &dst,
            const vg::GuestArray<std::uint64_t> &src1, std::size_t n1,
            const vg::GuestArray<std::uint64_t> &src2, std::size_t n2)
{
    vg::ScopedFunction f(g_, fnMpnMul_);
    for (std::size_t i = 0; i < n1 + n2; ++i)
        dst.set(i, 0);
    for (std::size_t i = 0; i < n1; ++i) {
        std::uint64_t a = src1.get(i);
        std::uint64_t carry = 0;
        for (std::size_t j = 0; j < n2; ++j) {
            unsigned __int128 t =
                static_cast<unsigned __int128>(a) * src2.get(j) +
                dst.get(i + j) + carry;
            dst.set(i + j, static_cast<std::uint64_t>(t));
            carry = static_cast<std::uint64_t>(t >> 64);
            g_.iop(6);
        }
        dst.set(i + n2, dst.get(i + n2) + carry);
        g_.iop(2);
    }
}

void
Lib::mpnRshift(vg::GuestArray<std::uint64_t> &arr, std::size_t n,
               unsigned bits)
{
    vg::ScopedFunction f(g_, fnMpnRshift_);
    if (bits == 0 || bits >= 64)
        panic("mpnRshift: bad shift %u", bits);
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t lo = arr.get(i) >> bits;
        std::uint64_t hi =
            (i + 1 < n) ? (arr.get(i + 1) << (64 - bits)) : 0;
        arr.set(i, lo | hi);
        g_.iop(4);
    }
}

void
Lib::mpnLshift(vg::GuestArray<std::uint64_t> &arr, std::size_t n,
               unsigned bits)
{
    vg::ScopedFunction f(g_, fnMpnLshift_);
    if (bits == 0 || bits >= 64)
        panic("mpnLshift: bad shift %u", bits);
    for (std::size_t i = n; i-- > 0;) {
        std::uint64_t hi = arr.get(i) << bits;
        std::uint64_t lo = (i > 0) ? (arr.get(i - 1) >> (64 - bits)) : 0;
        arr.set(i, hi | lo);
        g_.iop(4);
    }
}

float
Lib::strtof(const vg::GuestArray<char> &buf, std::size_t pos,
            std::size_t *end)
{
    vg::ScopedFunction f(g_, fnStrtof_);
    std::size_t i = pos;
    auto peek = [&]() -> char {
        g_.iop(1);
        return i < buf.size() ? buf.get(i) : '\0';
    };

    while (peek() == ' ')
        ++i;
    double sign = 1.0;
    char c = peek();
    if (c == '+' || c == '-') {
        sign = (c == '-') ? -1.0 : 1.0;
        ++i;
        g_.iop(1);
    }

    double mantissa = 0.0;
    int digits = 0;
    while (true) {
        c = peek();
        if (c < '0' || c > '9')
            break;
        mantissa = mantissa * 10.0 + (c - '0');
        ++digits;
        ++i;
        g_.flop(2);
    }
    int frac_digits = 0;
    if (peek() == '.') {
        ++i;
        while (true) {
            c = peek();
            if (c < '0' || c > '9')
                break;
            mantissa = mantissa * 10.0 + (c - '0');
            ++digits;
            ++frac_digits;
            ++i;
            g_.flop(2);
        }
    }
    int exp10 = -frac_digits;
    c = peek();
    if (c == 'e' || c == 'E') {
        ++i;
        int esign = 1;
        c = peek();
        if (c == '+' || c == '-') {
            esign = (c == '-') ? -1 : 1;
            ++i;
        }
        int ev = 0;
        while (true) {
            c = peek();
            if (c < '0' || c > '9')
                break;
            ev = ev * 10 + (c - '0');
            ++i;
            g_.iop(2);
        }
        exp10 += esign * ev;
        g_.iop(1);
    }
    if (end != nullptr)
        *end = i;

    // Long mantissas take the bignum slow path, as glibc's strtof does:
    // the decimal mantissa is held in limbs and scaled by powers of ten
    // with __mpn_mul / __mpn_lshift / __mpn_rshift.
    if (digits > 9) {
        if (!mpnScratchA_) {
            mpnScratchA_ = std::make_unique<vg::GuestArray<std::uint64_t>>(
                g_, 4, "mpn_a");
            mpnScratchB_ = std::make_unique<vg::GuestArray<std::uint64_t>>(
                g_, 4, "mpn_b");
            mpnScratchD_ = std::make_unique<vg::GuestArray<std::uint64_t>>(
                g_, 8, "mpn_d");
        }
        mpnScratchA_->set(0, static_cast<std::uint64_t>(mantissa));
        mpnScratchA_->set(1, 0);
        mpnScratchB_->set(0, 0x8ac7230489e80000ull); // 10^19
        mpnScratchB_->set(1, 0);
        mpnMul(*mpnScratchD_, *mpnScratchA_, 2, *mpnScratchB_, 2);
        if (exp10 > 0)
            mpnLshift(*mpnScratchD_, 4, 3);
        else if (exp10 < 0)
            mpnRshift(*mpnScratchD_, 4, 3);
    }

    double result = sign * mantissa * std::pow(10.0, exp10);
    g_.flop(3);
    return static_cast<float>(result);
}

long
Lib::memchr(const vg::GuestArray<unsigned char> &buf, std::size_t off,
            std::size_t n, unsigned char value)
{
    vg::ScopedFunction f(g_, fnMemchr_);
    for (std::size_t i = 0; i < n; ++i) {
        unsigned char c = buf.get(off + i);
        g_.iop(1);
        g_.branch(c == value);
        if (c == value)
            return static_cast<long>(off + i);
    }
    return -1;
}

int
Lib::stringCompare(const vg::GuestArray<unsigned char> &a,
                   std::size_t aoff, const vg::GuestArray<unsigned char> &b,
                   std::size_t boff, std::size_t n)
{
    vg::ScopedFunction f(g_, fnStrCompare_);
    for (std::size_t i = 0; i < n; ++i) {
        unsigned char ca = a.get(aoff + i);
        unsigned char cb = b.get(boff + i);
        g_.iop(2);
        g_.branch(ca != cb);
        if (ca != cb)
            return ca < cb ? -1 : 1;
    }
    return 0;
}

std::uint32_t
Lib::adler32(std::uint32_t adler, const vg::GuestArray<unsigned char> &buf,
             std::size_t off, std::size_t n)
{
    vg::ScopedFunction f(g_, fnAdler_);
    static constexpr std::uint32_t kBase = 65521;
    std::uint32_t a = adler & 0xffff;
    std::uint32_t b = (adler >> 16) & 0xffff;
    g_.iop(2);
    for (std::size_t i = 0; i < n; ++i) {
        a += buf.get(off + i);
        b += a;
        g_.iop(2);
        if ((i & 0xfff) == 0xfff) {
            a %= kBase;
            b %= kBase;
            g_.iop(2);
        }
    }
    a %= kBase;
    b %= kBase;
    g_.iop(3);
    return (b << 16) | a;
}

void
Lib::sha1Block(vg::GuestArray<std::uint32_t> &state,
               const vg::GuestArray<unsigned char> &block, std::size_t off)
{
    vg::ScopedFunction f(g_, fnSha1_);
    std::uint32_t w[80];
    for (int t = 0; t < 16; ++t) {
        w[t] = (static_cast<std::uint32_t>(block.get(off + 4 * t)) << 24) |
               (static_cast<std::uint32_t>(block.get(off + 4 * t + 1))
                << 16) |
               (static_cast<std::uint32_t>(block.get(off + 4 * t + 2))
                << 8) |
               static_cast<std::uint32_t>(block.get(off + 4 * t + 3));
        g_.iop(6);
    }
    auto rotl = [](std::uint32_t v, unsigned s) {
        return (v << s) | (v >> (32 - s));
    };
    for (int t = 16; t < 80; ++t) {
        w[t] = rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
        g_.iop(5);
    }

    std::uint32_t a = state.get(0), b = state.get(1), c = state.get(2),
                  d = state.get(3), e = state.get(4);
    for (int t = 0; t < 80; ++t) {
        std::uint32_t fv, k;
        if (t < 20) {
            fv = (b & c) | ((~b) & d);
            k = 0x5a827999;
        } else if (t < 40) {
            fv = b ^ c ^ d;
            k = 0x6ed9eba1;
        } else if (t < 60) {
            fv = (b & c) | (b & d) | (c & d);
            k = 0x8f1bbcdc;
        } else {
            fv = b ^ c ^ d;
            k = 0xca62c1d6;
        }
        std::uint32_t tmp = rotl(a, 5) + fv + e + k + w[t];
        e = d;
        d = c;
        c = rotl(b, 30);
        b = a;
        a = tmp;
        g_.iop(10);
    }
    state.set(0, state.get(0) + a);
    state.set(1, state.get(1) + b);
    state.set(2, state.get(2) + c);
    state.set(3, state.get(3) + d);
    state.set(4, state.get(4) + e);
    g_.iop(5);
}

std::size_t
Lib::trFlushBlock(const vg::GuestArray<unsigned char> &in, std::size_t off,
                  std::size_t n, vg::GuestArray<unsigned char> &out,
                  std::size_t ooff)
{
    vg::ScopedFunction f(g_, fnTrFlush_);
    // Byte-run RLE with a 2-byte (count, value) code per run: a small
    // stand-in for deflate's block flush that preserves its read-mostly
    // compute profile.
    std::size_t emitted = 0;
    std::size_t i = 0;
    while (i < n) {
        unsigned char v = in.get(off + i);
        std::size_t run = 1;
        g_.iop(2);
        while (run < 255 && i + run < n) {
            unsigned char nxt = in.get(off + i + run);
            g_.iop(1);
            g_.branch(nxt == v);
            if (nxt != v)
                break;
            ++run;
        }
        out.set(ooff + emitted, static_cast<unsigned char>(run));
        out.set(ooff + emitted + 1, v);
        emitted += 2;
        i += run;
        g_.iop(3);
    }
    return emitted;
}

void
Lib::writeFile(vg::GuestArray<unsigned char> &file, std::size_t foff,
               const vg::GuestArray<unsigned char> &data, std::size_t off,
               std::size_t n)
{
    vg::ScopedFunction f(g_, fnWriteFile_);
    for (std::size_t i = 0; i < n; ++i) {
        file.set(foff + i, data.get(off + i));
        g_.iop(1);
    }
}

std::size_t
Lib::hashtableSearch(const vg::GuestArray<std::uint64_t> &table,
                     std::uint64_t key)
{
    vg::ScopedFunction f(g_, fnHashSearch_);
    std::size_t size = table.size();
    std::size_t slot = static_cast<std::size_t>(
        (key * 0x9e3779b97f4a7c15ull) % size);
    g_.iop(3);
    for (std::size_t probe = 0; probe < size; ++probe) {
        std::uint64_t v = table.get(slot);
        g_.iop(1);
        g_.branch(v == key || v == 0);
        if (v == key || v == 0)
            return slot;
        slot = (slot + 1) % size;
        g_.iop(2);
    }
    return size;
}

vg::Addr
Lib::operatorNew(std::size_t bytes)
{
    vg::ScopedFunction f(g_, fnNew_);
    // Size-class lookup in the arena bins, as glibc malloc does.
    arenaMeta_->get(0);
    arenaMeta_->get(1 + bytes % 4);
    vg::Addr base = g_.alloc(bytes + 16, "new");
    // Size + canary header, as a real allocator writes.
    g_.write(base, 8);
    g_.write(base + 8, 8);
    arenaMeta_->set(0, arenaMeta_->raw(0) + bytes);
    g_.iop(5);
    return base + 16;
}

void
Lib::free(vg::Addr addr)
{
    vg::ScopedFunction f(g_, fnFree_);
    g_.read(addr - 16, 8);
    g_.read(addr - 8, 8);
    // Return the block to its arena bin.
    arenaMeta_->get(5);
    arenaMeta_->set(5, arenaMeta_->raw(5) + 1);
    g_.iop(4);
}

vg::Addr
Lib::vectorCtor(std::size_t n, std::size_t elem_size)
{
    vg::ScopedFunction f(g_, fnVectorCtor_);
    vg::Addr storage = operatorNew(n * elem_size);
    std::size_t bytes = n * elem_size;
    for (std::size_t o = 0; o < bytes; o += 8) {
        unsigned w = static_cast<unsigned>(std::min<std::size_t>(
            8, bytes - o));
        g_.write(storage + o, w);
        g_.iop(1);
    }
    return storage;
}

vg::Addr
Lib::stringCtor(const vg::GuestArray<unsigned char> &src, std::size_t off,
                std::size_t n)
{
    vg::ScopedFunction f(g_, fnStringCtor_);
    vg::Addr storage = operatorNew(n + 1);
    for (std::size_t i = 0; i < n; ++i) {
        src.get(off + i);
        g_.write(storage + i, 1);
        g_.iop(1);
    }
    g_.write(storage + n, 1);
    return storage;
}

void
Lib::stringAssign(vg::GuestArray<unsigned char> &dst, std::size_t doff,
                  const vg::GuestArray<unsigned char> &src,
                  std::size_t soff, std::size_t n)
{
    vg::ScopedFunction f(g_, fnStringAssign_);
    for (std::size_t i = 0; i < n; ++i) {
        dst.set(doff + i, src.get(soff + i));
        g_.iop(1);
    }
}

vg::Addr
Lib::localeCtor()
{
    vg::ScopedFunction f(g_, fnLocale_);
    vg::Addr facets = operatorNew(192);
    for (std::size_t o = 0; o < 192; o += 8) {
        g_.write(facets + o, 8);
        g_.iop(2);
    }
    return facets;
}

void
Lib::dlAddr()
{
    vg::ScopedFunction f(g_, fnDlAddr_);
    for (std::size_t i = 0; i < 16; ++i) {
        linkMap_->get(i);
        g_.iop(2);
        g_.branch(i == 15);
    }
}

void
Lib::ioFileXsgetn(vg::GuestArray<unsigned char> &dst, std::size_t doff,
                  const vg::GuestArray<unsigned char> &file,
                  std::size_t foff, std::size_t n)
{
    vg::ScopedFunction f(g_, fnXsgetn_);
    for (std::size_t i = 0; i < n; ++i) {
        dst.set(doff + i, file.get(foff + i));
        g_.iop(2);
    }
}

void
Lib::ioSputbackc(vg::GuestArray<unsigned char> &file, std::size_t foff)
{
    vg::ScopedFunction f(g_, fnSputbackc_);
    unsigned char c = file.get(foff);
    file.set(foff, c);
    g_.iop(2);
}

void
Lib::consume(vg::Addr addr, std::size_t bytes)
{
    for (std::size_t o = 0; o < bytes; o += 8) {
        unsigned w =
            static_cast<unsigned>(std::min<std::size_t>(8, bytes - o));
        g_.read(addr + o, w);
        g_.iop(1);
    }
}

std::uint64_t
Lib::drand48Iterate()
{
    vg::ScopedFunction f(g_, fnDrand48It_);
    static constexpr std::uint64_t kA = 0x5deece66dull;
    static constexpr std::uint64_t kC = 0xb;
    static constexpr std::uint64_t kMask = (1ull << 48) - 1;
    std::uint64_t x = seed48_->get(0);
    x = (kA * x + kC) & kMask;
    seed48_->set(0, x);
    g_.iop(3);
    return x;
}

long
Lib::nrand48R()
{
    vg::ScopedFunction f(g_, fnNrand48R_);
    std::uint64_t x = drand48Iterate();
    g_.iop(2);
    return static_cast<long>(x >> 17);
}

long
Lib::lrand48()
{
    vg::ScopedFunction f(g_, fnLrand48_);
    g_.iop(1);
    return nrand48R();
}

} // namespace sigil::workloads
