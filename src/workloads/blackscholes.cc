/**
 * @file
 * Miniature PARSEC blackscholes: European option pricing with the
 * Black-Scholes closed form.
 *
 * Mirrors the benchmark's phase structure: parse a textual option
 * portfolio with strtof (long mantissas exercise the __mpn_* bignum
 * slow path, as glibc's strtof does), then price every option in
 * BlkSchlsEqEuroNoDiv via CNDF, which leans on the single-precision
 * _ieee754_expf/_ieee754_logf kernels — the functions the paper's
 * Table II ranks as this benchmark's best accelerator candidates.
 */

#include <string>

#include "support/rng.hh"
#include "vg/traced.hh"
#include "workloads/tracedlib.hh"
#include "workloads/workload.hh"

namespace sigil::workloads {

namespace {

/** Standard normal CDF via the expf-based Abramowitz-Stegun fit. */
float
cndf(vg::Guest &g, Lib &lib, float d)
{
    vg::StackMark mark(g);
    vg::ArgSlot<float> arg(g, d);
    vg::ScopedFunction f(g, "CNDF");
    float x = arg.load();

    bool negative = x < 0.0f;
    if (negative)
        x = -x;
    g.iop(2);

    float e = lib.expf(-0.5f * x * x);
    g.flop(3);

    float k = 1.0f / (1.0f + 0.2316419f * x);
    float poly = k * (0.319381530f +
                      k * (-0.356563782f +
                           k * (1.781477937f +
                                k * (-1.821255978f + k * 1.330274429f))));
    g.flop(12);
    float cnd = 1.0f - 0.3989422804f * e * poly;
    g.flop(3);
    if (negative)
        cnd = 1.0f - cnd;
    g.flop(1);
    return cnd;
}

/** Closed-form European option price; reads one option's row. */
float
blkSchlsEqEuroNoDiv(vg::Guest &g, Lib &lib,
                    const vg::GuestArray<float> &spot,
                    const vg::GuestArray<float> &strike,
                    const vg::GuestArray<float> &rate,
                    const vg::GuestArray<float> &vol,
                    const vg::GuestArray<float> &time,
                    const vg::GuestArray<int> &otype, std::size_t i)
{
    vg::ScopedFunction f(g, "BlkSchlsEqEuroNoDiv");
    float s = spot.get(i);
    float k = strike.get(i);
    float r = rate.get(i);
    float v = vol.get(i);
    float t = time.get(i);
    int call = otype.get(i);

    float sqrt_t = static_cast<float>(lib.sqrt(t));
    float log_sk = lib.logf(s / k);
    g.flop(1);

    float d1 = (log_sk + (r + 0.5f * v * v) * t) / (v * sqrt_t);
    float d2 = d1 - v * sqrt_t;
    g.flop(9);

    float n_d1 = cndf(g, lib, d1);
    float n_d2 = cndf(g, lib, d2);

    float future = k * lib.expf(-r * t);
    g.flop(3);

    float price;
    if (call != 0) {
        price = s * n_d1 - future * n_d2;
    } else {
        price = future * (1.0f - n_d2) - s * (1.0f - n_d1);
    }
    g.flop(4);
    g.branch(call != 0);
    return price;
}

/** Render one option as text with 10+ significant digits. */
void
appendField(std::string &out, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10f ", v);
    out += buf;
}

} // namespace

void
runBlackscholes(vg::Guest &g, Scale scale)
{
    const std::size_t n = 256 * scaleFactor(scale);
    Lib lib(g);
    Rng rng(0xb1ac5);

    // The option portfolio as the text file PARSEC ships.
    std::string text;
    for (std::size_t i = 0; i < n; ++i) {
        appendField(text, rng.nextRange(10.0, 150.0));  // spot
        appendField(text, rng.nextRange(10.0, 150.0));  // strike
        appendField(text, rng.nextRange(0.01, 0.1));    // rate
        appendField(text, rng.nextRange(0.05, 0.6));    // volatility
        appendField(text, rng.nextRange(0.1, 3.0));     // expiry
        text += (rng.next() & 1) ? "1 " : "0 ";
        text += '\n';
    }
    vg::GuestArray<char> input(g, text.size(), "options.txt");
    input.fillAsInput([&](std::size_t i) { return text[i]; });

    vg::ScopedFunction main_fn(g, "main");

    vg::Addr facets = lib.localeCtor();
    lib.dlAddr();
    lib.consume(facets, 192);

    vg::GuestArray<float> spot(g, n, "spot");
    vg::GuestArray<float> strike(g, n, "strike");
    vg::GuestArray<float> rate(g, n, "rate");
    vg::GuestArray<float> vol(g, n, "vol");
    vg::GuestArray<float> time(g, n, "time");
    vg::GuestArray<int> otype(g, n, "otype");
    vg::GuestArray<float> prices(g, n, "prices");
    std::vector<vg::Addr> storages;
    for (int v = 0; v < 6; ++v) {
        storages.push_back(lib.vectorCtor(n, 4));
        lib.consume(storages.back(), n * 4);
    }

    {
        vg::ScopedFunction parse(g, "parse_options");
        std::size_t pos = 0;
        for (std::size_t i = 0; i < n; ++i) {
            spot.set(i, lib.strtof(input, pos, &pos));
            strike.set(i, lib.strtof(input, pos, &pos));
            rate.set(i, lib.strtof(input, pos, &pos));
            vol.set(i, lib.strtof(input, pos, &pos));
            time.set(i, lib.strtof(input, pos, &pos));
            float ot = lib.strtof(input, pos, &pos);
            otype.set(i, ot > 0.5f ? 1 : 0);
            g.iop(2);
            // The real parser peeks past each row's newline and pushes
            // it back.
            if (pos < input.size()) {
                std::size_t nl = pos;
                while (nl < input.size()) {
                    g.iop(1);
                    if (input.get(nl) == '\n')
                        break;
                    ++nl;
                }
                pos = nl < input.size() ? nl + 1 : input.size();
            }
        }
    }

    // PARSEC's region of interest covers the pricing phase only.
    g.roiBegin();
    {
        vg::ScopedFunction worker(g, "bs_thread");
        // PARSEC prices the portfolio NUM_RUNS times; a reduced repeat
        // count keeps pricing (not parsing) the dominant phase.
        const int num_runs = 4;
        // The running total lives in memory, as the real benchmark's
        // accumulator does — it serializes the pricing loop's spine.
        vg::GuestVar<double> total(g, 0.0, "price_total");
        for (int run = 0; run < num_runs; ++run) {
            for (std::size_t i = 0; i < n; ++i) {
                float price = blkSchlsEqEuroNoDiv(g, lib, spot, strike,
                                                  rate, vol, time, otype,
                                                  i);
                prices.set(i, price);
                total.set(total.get() + price);
                g.flop(1);
                g.iop(1);
            }
        }
    }

    g.roiEnd();

    {
        vg::ScopedFunction check(g, "bs_verify");
        for (std::size_t i = 0; i < n; ++i) {
            float p = prices.get(i);
            lib.isnan(p);
            g.branch(p >= 0.0f);
        }
    }

    for (vg::Addr storage : storages)
        lib.free(storage);
}

} // namespace sigil::workloads
