/**
 * @file
 * Miniature PARSEC fluidanimate: smoothed-particle-hydrodynamics fluid
 * simulation on a uniform grid.
 *
 * Per frame: RebuildGrid bins particles into cells, ComputeDensities
 * accumulates kernel-weighted neighbor masses, ComputeForces — by far
 * the dominant kernel, contributing ~90% of all operations, exactly as
 * the paper observes — evaluates pressure and viscosity forces over all
 * neighbor pairs, and AdvanceParticles integrates. Every frame's forces
 * depend on the previous frame's positions, so the dependency chains
 * collapse onto ComputeForces and the critical path is essentially the
 * serial program (Figure 13's shortest bar).
 */

#include <cmath>
#include <cstdint>

#include "support/rng.hh"
#include "vg/traced.hh"
#include "workloads/tracedlib.hh"
#include "workloads/workload.hh"

namespace sigil::workloads {

namespace {

constexpr unsigned kGrid = 4;        // cells per axis
constexpr double kCell = 0.25;       // cell edge
constexpr double kH = 0.25;          // smoothing radius
constexpr double kMass = 1.0;
constexpr double kStiff = 1.5;
constexpr double kViscosity = 0.4;
constexpr double kDt = 0.005;

inline unsigned
cellOf(double x, double y, double z)
{
    auto clamp = [](int v) {
        return v < 0 ? 0
                     : (v >= static_cast<int>(kGrid)
                            ? static_cast<int>(kGrid) - 1
                            : v);
    };
    int cx = clamp(static_cast<int>(x / kCell));
    int cy = clamp(static_cast<int>(y / kCell));
    int cz = clamp(static_cast<int>(z / kCell));
    return static_cast<unsigned>((cz * static_cast<int>(kGrid) + cy) *
                                     static_cast<int>(kGrid) +
                                 cx);
}

} // namespace

void
runFluidanimate(vg::Guest &g, Scale scale)
{
    const unsigned factor = scaleFactor(scale);
    const std::size_t n = 160 * factor;
    const unsigned frames = 4;
    const std::size_t cells = kGrid * kGrid * kGrid;

    Lib lib(g);
    Rng rng(0xf1);

    vg::GuestArray<double> px(g, n, "pos_x"), py(g, n, "pos_y"),
        pz(g, n, "pos_z");
    vg::GuestArray<double> vx(g, n, "vel_x"), vy(g, n, "vel_y"),
        vz(g, n, "vel_z");
    vg::GuestArray<double> ax(g, n, "acc_x"), ay(g, n, "acc_y"),
        az(g, n, "acc_z");
    vg::GuestArray<double> density(g, n, "density");
    vg::GuestArray<std::int32_t> cell_head(g, cells, "cell_head");
    vg::GuestArray<std::int32_t> next_in_cell(g, n, "next_in_cell");

    px.fillAsInput([&](std::size_t) { return rng.nextRange(0.0, 1.0); });
    py.fillAsInput([&](std::size_t) { return rng.nextRange(0.0, 1.0); });
    pz.fillAsInput([&](std::size_t) { return rng.nextRange(0.0, 1.0); });
    vx.fillAsInput([&](std::size_t) { return 0.0; });
    vy.fillAsInput([&](std::size_t) { return 0.0; });
    vz.fillAsInput([&](std::size_t) { return 0.0; });

    vg::ScopedFunction main_fn(g, "main");
    lib.consume(lib.vectorCtor(n, 8), n * 8);

    for (unsigned frame = 0; frame < frames; ++frame) {
        {
            vg::ScopedFunction rebuild(g, "RebuildGrid");
            for (std::size_t c = 0; c < cells; ++c)
                cell_head.set(c, -1);
            for (std::size_t i = 0; i < n; ++i) {
                unsigned c = cellOf(px.get(i), py.get(i), pz.get(i));
                g.iop(6);
                next_in_cell.set(i, cell_head.get(c));
                cell_head.set(c, static_cast<std::int32_t>(i));
            }
        }

        // Visit every particle pair in the same cell (neighbor cells
        // are folded into the cell size for this miniature).
        auto for_pairs = [&](auto &&body) {
            for (std::size_t c = 0; c < cells; ++c) {
                for (std::int32_t i = cell_head.get(c); i >= 0;
                     i = next_in_cell.get(static_cast<std::size_t>(i))) {
                    for (std::int32_t j = next_in_cell.get(
                             static_cast<std::size_t>(i));
                         j >= 0;
                         j = next_in_cell.get(
                             static_cast<std::size_t>(j))) {
                        body(static_cast<std::size_t>(i),
                             static_cast<std::size_t>(j));
                    }
                }
            }
        };

        {
            vg::ScopedFunction dens(g, "ComputeDensities");
            for (std::size_t i = 0; i < n; ++i)
                density.set(i, kMass);
            for_pairs([&](std::size_t i, std::size_t j) {
                double dx = px.get(i) - px.get(j);
                double dy = py.get(i) - py.get(j);
                double dz = pz.get(i) - pz.get(j);
                double r2 = dx * dx + dy * dy + dz * dz;
                g.flop(9);
                g.branch(r2 < kH * kH);
                if (r2 < kH * kH) {
                    double w = kH * kH - r2;
                    double contrib = kMass * w * w * w;
                    density.set(i, density.get(i) + contrib);
                    density.set(j, density.get(j) + contrib);
                    g.flop(7);
                }
            });
        }

        {
            vg::ScopedFunction forces(g, "ComputeForces");
            for (std::size_t i = 0; i < n; ++i) {
                ax.set(i, 0.0);
                ay.set(i, -9.8);
                az.set(i, 0.0);
            }
            for_pairs([&](std::size_t i, std::size_t j) {
                double dx = px.get(i) - px.get(j);
                double dy = py.get(i) - py.get(j);
                double dz = pz.get(i) - pz.get(j);
                double r2 = dx * dx + dy * dy + dz * dz;
                g.flop(9);
                g.branch(r2 < kH * kH);
                if (r2 >= kH * kH || r2 <= 0.0)
                    return;
                // Pressure term (Tait EOS) and Laplacian viscosity.
                double r = std::sqrt(r2);
                double di = density.get(i);
                double dj = density.get(j);
                double pi = kStiff * (di - 1.0);
                double pj = kStiff * (dj - 1.0);
                double wgrad = (kH - r) * (kH - r) / r;
                double pterm =
                    0.5 * kMass * (pi + pj) / (di * dj) * wgrad;
                g.flop(16);
                double fvx = (vx.get(j) - vx.get(i)) * kViscosity *
                             (kH - r);
                double fvy = (vy.get(j) - vy.get(i)) * kViscosity *
                             (kH - r);
                double fvz = (vz.get(j) - vz.get(i)) * kViscosity *
                             (kH - r);
                g.flop(9);
                double fx = -dx * pterm + fvx;
                double fy = -dy * pterm + fvy;
                double fz = -dz * pterm + fvz;
                g.flop(9);
                ax.set(i, ax.get(i) + fx / di);
                ay.set(i, ay.get(i) + fy / di);
                az.set(i, az.get(i) + fz / di);
                ax.set(j, ax.get(j) - fx / dj);
                ay.set(j, ay.get(j) - fy / dj);
                az.set(j, az.get(j) - fz / dj);
                g.flop(12);
            });
        }

        {
            vg::ScopedFunction adv(g, "AdvanceParticles");
            for (std::size_t i = 0; i < n; ++i) {
                double nvx = vx.get(i) + ax.get(i) * kDt;
                double nvy = vy.get(i) + ay.get(i) * kDt;
                double nvz = vz.get(i) + az.get(i) * kDt;
                double npx = px.get(i) + nvx * kDt;
                double npy = py.get(i) + nvy * kDt;
                double npz = pz.get(i) + nvz * kDt;
                g.flop(12);
                // Reflecting walls.
                auto wall = [&](double &p, double &v) {
                    g.branch(p < 0.0 || p > 1.0);
                    if (p < 0.0) {
                        p = -p;
                        v = -v;
                    } else if (p > 1.0) {
                        p = 2.0 - p;
                        v = -v;
                    }
                    g.iop(2);
                };
                wall(npx, nvx);
                wall(npy, nvy);
                wall(npz, nvz);
                vx.set(i, nvx);
                vy.set(i, nvy);
                vz.set(i, nvz);
                px.set(i, npx);
                py.set(i, npy);
                pz.set(i, npz);
            }
        }
    }
}

} // namespace sigil::workloads
