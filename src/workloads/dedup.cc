/**
 * @file
 * Miniature PARSEC dedup: the deduplicating compression pipeline.
 *
 * The stream is fragmented into content-defined chunks with a rolling
 * adler32 fingerprint, every chunk is hashed with the real SHA-1
 * compression function (sha1_block_data_order appears in two calling
 * contexts — first-pass hashing in Deduplicate and verification in
 * ChunkVerify — matching its duplicated Table II rows), duplicate
 * chunks are found through hashtable_search, and unique chunks go
 * through the deflate-style _tr_flush_block before write_file appends
 * them to the archive.
 */

#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/rng.hh"
#include "vg/traced.hh"
#include "workloads/tracedlib.hh"
#include "workloads/workload.hh"

namespace sigil::workloads {

namespace {

using Bytes = vg::GuestArray<unsigned char>;

/** SHA-1 of chunk bytes (whole 64-byte blocks only, real compression). */
std::uint64_t
chunkDigest(vg::Guest &g, Lib &lib, vg::GuestArray<std::uint32_t> &state,
            const Bytes &data, std::size_t off, std::size_t len)
{
    state.set(0, 0x67452301u);
    state.set(1, 0xefcdab89u);
    state.set(2, 0x98badcfeu);
    state.set(3, 0x10325476u);
    state.set(4, 0xc3d2e1f0u);
    std::size_t blocks = len / 64;
    for (std::size_t b = 0; b < blocks; ++b)
        lib.sha1Block(state, data, off + b * 64);
    g.iop(4);
    std::uint64_t digest =
        (static_cast<std::uint64_t>(state.get(0)) << 32) | state.get(1);
    // Hash-table keys must be nonzero (0 marks an empty slot).
    return digest | 1;
}

} // namespace

void
runDedup(vg::Guest &g, Scale scale)
{
    const unsigned factor = scaleFactor(scale);
    const std::size_t stream_len = 32768 * factor;
    const std::size_t min_chunk = 256;
    const std::size_t max_chunk = 1024;

    Lib lib(g);
    Rng rng(0xded);

    // Input stream with long repeated spans so chunks deduplicate.
    std::vector<unsigned char> host(stream_len);
    {
        Rng seg_rng(0x5e6);
        std::size_t pos = 0;
        std::vector<unsigned char> motif(2048);
        for (auto &b : motif)
            b = static_cast<unsigned char>(seg_rng.nextBounded(256));
        while (pos < stream_len) {
            bool repeat = (seg_rng.next() & 1) != 0;
            std::size_t span =
                std::min<std::size_t>(1024, stream_len - pos);
            for (std::size_t i = 0; i < span; ++i) {
                host[pos + i] = repeat
                                    ? motif[i % motif.size()]
                                    : static_cast<unsigned char>(
                                          seg_rng.nextBounded(256));
            }
            pos += span;
        }
    }
    // The stream arrives through the read() syscall, which the paper
    // models as an opaque producer of the buffer bytes.
    Bytes stream(g, stream_len, "input_stream");
    for (std::size_t i = 0; i < stream_len; ++i)
        stream.raw(i) = host[i];
    g.syscallIn("read", stream.addr(0),
                static_cast<unsigned>(stream_len));

    vg::ScopedFunction main_fn(g, "main");
    lib.consume(lib.localeCtor(), 192);

    Bytes buffer(g, max_chunk, "chunk_buffer");
    Bytes compressed(g, 2 * max_chunk + 16, "compressed");
    // RLE can expand incompressible chunks to 2x, so size for worst
    // case.
    Bytes archive(g, 2 * stream_len + 4096, "archive");
    vg::GuestArray<std::uint32_t> sha_state(g, 5, "sha1_state");
    vg::GuestArray<std::uint64_t> table(g, 1024, "dedup_table");
    lib.memset(table, 0, table.size(), std::uint64_t{0});

    std::size_t archive_off = 0;
    std::size_t pos = 0;
    std::uint64_t unique_chunks = 0, dup_chunks = 0;

    while (pos < stream_len) {
        // Fragment: scan forward with a rolling adler32 fingerprint over
        // 64-byte windows until a content-defined boundary.
        std::size_t chunk_len;
        {
            vg::ScopedFunction frag(g, "Fragment");
            chunk_len = min_chunk;
            while (pos + chunk_len + 64 <= stream_len &&
                   chunk_len < max_chunk) {
                std::uint32_t fp = lib.adler32(
                    1, stream, pos + chunk_len, 64);
                g.iop(2);
                g.branch((fp & 0x3f) == 0x21);
                if ((fp & 0x3f) == 0x21)
                    break;
                chunk_len += 64;
            }
            chunk_len = std::min(chunk_len, stream_len - pos);
            // Refine: stage the chunk into the working buffer.
            vg::ScopedFunction refine(g, "FragmentRefine");
            lib.memcpy(buffer, 0, stream, pos, chunk_len);
        }

        std::uint64_t digest;
        bool duplicate;
        std::size_t slot;
        {
            vg::ScopedFunction dd(g, "Deduplicate");
            digest = chunkDigest(g, lib, sha_state, buffer, 0, chunk_len);
            slot = lib.hashtableSearch(table, digest);
            duplicate = slot < table.size() && table.get(slot) == digest;
            g.iop(2);
            g.branch(duplicate);
        }

        if (duplicate) {
            ++dup_chunks;
            // Verify against the stored digest (second sha1 context).
            vg::ScopedFunction verify(g, "ChunkVerify");
            std::uint64_t again =
                chunkDigest(g, lib, sha_state, buffer, 0, chunk_len);
            g.iop(1);
            g.branch(again == digest);
            // Emit an 8-byte reference record.
            for (int i = 0; i < 8; ++i)
                archive.set(archive_off + static_cast<std::size_t>(i),
                            static_cast<unsigned char>(digest >> (8 * i)));
            archive_off += 8;
        } else {
            ++unique_chunks;
            if (slot < table.size())
                table.set(slot, digest);
            std::size_t clen;
            {
                vg::ScopedFunction comp(g, "Compress");
                clen = lib.trFlushBlock(buffer, 0, chunk_len, compressed,
                                        0);
            }
            lib.writeFile(archive, archive_off, compressed, 0, clen);
            archive_off += clen;
        }
        pos += chunk_len;
        g.iop(2);
    }
    // Flush the archive to storage through the write() syscall.
    g.syscallOut("write", archive.addr(0),
                 static_cast<unsigned>(archive_off));
    g.iop(1);
    (void)unique_chunks;
    (void)dup_chunks;
}

} // namespace sigil::workloads
