/**
 * @file
 * Miniature PARSEC bodytrack: particle-filter body tracking against
 * multi-camera silhouette images.
 *
 * Per frame, every particle's pose is scored by
 * ImageMeasurements::ImageErrorInside over each camera's foreground map
 * (the paper's Table II lists it twice — it is called from two distinct
 * contexts, the inside- and edge-error passes). FlexImage::Set
 * (memcpy-backed) loads each camera image, and the likelihood uses
 * _ieee754_log; DMatrix and std::vector construction dominate the worst
 * candidates, as in Table III.
 */

#include <cstdint>

#include "support/rng.hh"
#include "vg/traced.hh"
#include "workloads/tracedlib.hh"
#include "workloads/workload.hh"

namespace sigil::workloads {

namespace {

using Image = vg::GuestArray<unsigned char>;

/** DMatrix: a small dense pose-covariance matrix, zero-initialized. */
class DMatrix
{
  public:
    DMatrix(vg::Guest &g, Lib &lib, std::size_t dim)
        : data_(g, dim * dim, "DMatrix"), dim_(dim)
    {
        vg::ScopedFunction f(g, "DMatrix::DMatrix");
        lib.consume(lib.vectorCtor(dim * dim, 8), dim * dim * 8);
        for (std::size_t i = 0; i < dim * dim; ++i) {
            data_.set(i, i % (dim + 1) == 0 ? 1.0 : 0.0);
            g.iop(1);
        }
    }

    vg::GuestArray<double> &data() { return data_; }
    std::size_t dim() const { return dim_; }

  private:
    vg::GuestArray<double> data_;
    std::size_t dim_;
};

/** FlexImage::Set — loads a camera frame into the working image. */
void
flexImageSet(vg::Guest &g, Lib &lib, Image &dst, const Image &src,
             std::size_t frame_off, std::size_t pixels)
{
    vg::ScopedFunction f(g, "FlexImage::Set");
    g.iop(4); // geometry bookkeeping
    lib.memcpy(dst, 0, src, frame_off, pixels);
}

/**
 * ImageMeasurements::ImageErrorInside — counts silhouette mismatches of
 * a pose sample inside a projected body-part rectangle.
 */
std::uint64_t
imageErrorInside(vg::Guest &g, const Image &image, unsigned width,
                 unsigned x0, unsigned y0, unsigned w, unsigned h)
{
    vg::ScopedFunction f(g, "ImageMeasurements::ImageErrorInside");
    std::uint64_t error = 0;
    for (unsigned y = y0; y < y0 + h; ++y) {
        for (unsigned x = x0; x < x0 + w; ++x) {
            unsigned char p = image.get(y * width + x);
            error += p < 128 ? 1 : 0;
            g.iop(3);
        }
        g.branch(y + 1 < y0 + h);
    }
    return error;
}

} // namespace

void
runBodytrack(vg::Guest &g, Scale scale)
{
    const unsigned factor = scaleFactor(scale);
    const unsigned cameras = 4;
    const unsigned width = 48;
    const unsigned height = 48;
    const unsigned frames = factor;
    const unsigned particles = 24;
    const std::size_t pixels = std::size_t{width} * height;

    Lib lib(g);
    Rng rng(0xb0d);

    // Camera streams: frames × cameras silhouette maps.
    Image stream(g, pixels * cameras * frames, "camera_stream");
    stream.fillAsInput([&](std::size_t) {
        return static_cast<unsigned char>(rng.nextBounded(256));
    });

    vg::ScopedFunction main_fn(g, "main");
    lib.consume(lib.localeCtor(), 192);

    Image working(g, pixels, "working_image");
    vg::GuestArray<double> weights(g, particles, "weights");
    lib.consume(lib.vectorCtor(particles, 8), particles * 8);

    DMatrix pose_cov(g, lib, 8);

    vg::GuestArray<double> likelihood(g, 1, "likelihood");
    likelihood.set(0, 0.0);

    for (unsigned frame = 0; frame < frames; ++frame) {
        for (unsigned cam = 0; cam < cameras; ++cam) {
            // Image load is its own pipeline stage, outside the
            // observation kernel, as in the threaded benchmark.
            std::size_t off =
                (std::size_t{frame} * cameras + cam) * pixels;
            flexImageSet(g, lib, working, stream, off, pixels);

            vg::ScopedFunction track(g,
                                     "TrackingModel::GetObservation");
            for (unsigned p = 0; p < particles; ++p) {
                // Inside-error pass over the torso box, then the
                // edge-error pass over thinner limb boxes — two call
                // sites, so ImageErrorInside appears in two contexts
                // exactly as in the paper's Table II.
                std::uint64_t inside, edge;
                {
                    vg::ScopedFunction fe(
                        g, "ImageMeasurements::InsideError");
                    unsigned x0 = 4 + static_cast<unsigned>(
                                          rng.nextBounded(width / 2));
                    unsigned y0 = 4 + static_cast<unsigned>(
                                          rng.nextBounded(height / 2));
                    g.iop(2);
                    inside = imageErrorInside(g, working, width, x0, y0,
                                              12, 12);
                }
                {
                    vg::ScopedFunction fe(g,
                                          "ImageMeasurements::EdgeError");
                    unsigned x0 = 2 + static_cast<unsigned>(
                                          rng.nextBounded(width / 2));
                    unsigned y0 = 2 + static_cast<unsigned>(
                                          rng.nextBounded(height / 2));
                    g.iop(2);
                    edge = imageErrorInside(g, working, width, x0, y0, 16,
                                            4);
                }

                double err =
                    static_cast<double>(inside) + 0.5 * static_cast<double>(edge);
                g.flop(2);
                double logw = -lib.log(1.0 + err);
                g.flop(1);
                weights.set(p, logw);
            }
        }

        // Normalize particle weights through the pose covariance.
        vg::ScopedFunction upd(g, "ParticleFilter::Update");
        double sum = 0.0;
        for (unsigned p = 0; p < particles; ++p) {
            sum += weights.get(p);
            g.flop(1);
        }
        double scaled =
            sum * pose_cov.data().get(0) +
            pose_cov.data().get(pose_cov.dim() + 1);
        g.flop(3);
        likelihood.set(0, likelihood.get(0) + scaled);
        g.flop(1);
    }

    lib.isnan(likelihood.get(0));
}

} // namespace sigil::workloads
