/**
 * @file
 * Miniature PARSEC x264: H.264-style motion estimation and residual
 * coding of a frame sequence.
 *
 * Per 16x16 macroblock a diamond search over the previous frame
 * minimizes the sum of absolute differences (pixel_sad — by far the
 * hottest leaf in the real encoder), the predicted block produces a
 * residual, and a 4x4 integer DCT (dct4x4) plus zig-zag quantization
 * models the transform stage. Included as an extension beyond the
 * paper's figure set; it participates in the PARSEC sweeps.
 */

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "support/rng.hh"
#include "vg/traced.hh"
#include "workloads/tracedlib.hh"
#include "workloads/workload.hh"

namespace sigil::workloads {

namespace {

constexpr unsigned kMb = 16; // macroblock edge

using Frame = vg::GuestArray<unsigned char>;

/** pixel_sad: sum of absolute differences of one 16x16 block pair. */
std::uint64_t
pixelSad(vg::Guest &g, const Frame &cur, std::size_t cur_off,
         unsigned cur_x, unsigned cur_y, const Frame &ref, int ref_x,
         int ref_y, unsigned width, unsigned height)
{
    vg::ScopedFunction f(g, "pixel_sad");
    std::uint64_t sad = 0;
    for (unsigned dy = 0; dy < kMb; ++dy) {
        for (unsigned dx = 0; dx < kMb; ++dx) {
            int rx = ref_x + static_cast<int>(dx);
            int ry = ref_y + static_cast<int>(dy);
            if (rx < 0)
                rx = 0;
            if (ry < 0)
                ry = 0;
            if (rx >= static_cast<int>(width))
                rx = static_cast<int>(width) - 1;
            if (ry >= static_cast<int>(height))
                ry = static_cast<int>(height) - 1;
            int a = cur.get(cur_off + std::size_t{cur_y + dy} * width +
                            cur_x + dx);
            int b = ref.get(static_cast<std::size_t>(ry) * width +
                            static_cast<std::size_t>(rx));
            sad += static_cast<std::uint64_t>(a > b ? a - b : b - a);
            g.iop(6);
        }
    }
    return sad;
}

/** me_search: small diamond motion search around (0,0). */
void
motionSearch(vg::Guest &g, const Frame &cur, std::size_t cur_off,
             unsigned mb_x, unsigned mb_y, const Frame &ref,
             unsigned width, unsigned height, int *best_dx, int *best_dy)
{
    vg::ScopedFunction f(g, "me_search");
    static constexpr int kDiamond[][2] = {
        {0, 0}, {-2, 0}, {2, 0}, {0, -2}, {0, 2},
        {-1, -1}, {1, 1}, {-1, 1}, {1, -1},
    };
    std::uint64_t best = ~0ull;
    *best_dx = 0;
    *best_dy = 0;
    for (const auto &d : kDiamond) {
        std::uint64_t sad = pixelSad(
            g, cur, cur_off, mb_x, mb_y, ref,
            static_cast<int>(mb_x) + d[0], static_cast<int>(mb_y) + d[1],
            width, height);
        g.iop(1);
        g.branch(sad < best);
        if (sad < best) {
            best = sad;
            *best_dx = d[0];
            *best_dy = d[1];
        }
    }
}

/** dct4x4: integer 4x4 transform of a residual sub-block (in place). */
void
dct4x4(vg::Guest &g, vg::GuestArray<std::int32_t> &block, std::size_t off)
{
    vg::ScopedFunction f(g, "dct4x4dc");
    // Rows then columns of the H.264 core transform.
    for (int pass = 0; pass < 2; ++pass) {
        for (int i = 0; i < 4; ++i) {
            std::size_t s0, s1, s2, s3;
            if (pass == 0) {
                s0 = off + static_cast<std::size_t>(i) * 4;
                s1 = s0 + 1;
                s2 = s0 + 2;
                s3 = s0 + 3;
            } else {
                s0 = off + static_cast<std::size_t>(i);
                s1 = s0 + 4;
                s2 = s0 + 8;
                s3 = s0 + 12;
            }
            std::int32_t a = block.get(s0), b = block.get(s1),
                         c = block.get(s2), d = block.get(s3);
            std::int32_t e = a + d, h = a - d;
            std::int32_t fq = b + c, gq = b - c;
            block.set(s0, e + fq);
            block.set(s1, 2 * h + gq);
            block.set(s2, e - fq);
            block.set(s3, h - 2 * gq);
            g.iop(10);
        }
    }
}

/** quant_4x4: quantize and count nonzero coefficients. */
unsigned
quant4x4(vg::Guest &g, vg::GuestArray<std::int32_t> &block,
         std::size_t off, int qp)
{
    vg::ScopedFunction f(g, "quant_4x4");
    unsigned nonzero = 0;
    for (std::size_t i = 0; i < 16; ++i) {
        std::int32_t v = block.get(off + i) / (qp + 1);
        block.set(off + i, v);
        g.iop(3);
        g.branch(v != 0);
        if (v != 0)
            ++nonzero;
    }
    return nonzero;
}

} // namespace

void
runX264(vg::Guest &g, Scale scale)
{
    const unsigned factor = scaleFactor(scale);
    const unsigned width = 48;
    const unsigned height = 48;
    const unsigned frames = 1 + factor;
    const std::size_t pixels = std::size_t{width} * height;

    Lib lib(g);
    Rng rng(0x264);

    Frame video(g, pixels * frames, "yuv_input");
    {
        // Smooth video: each frame is the previous plus small motion.
        std::vector<unsigned char> base(pixels);
        Rng vr(77);
        for (auto &p : base)
            p = static_cast<unsigned char>(vr.nextBounded(256));
        video.fillAsInput([&](std::size_t i) {
            std::size_t f = i / pixels;
            std::size_t p = i % pixels;
            std::size_t shifted = (p + f * 3) % pixels;
            return static_cast<unsigned char>(
                (base[shifted] + f * 2) & 0xff);
        });
    }

    vg::ScopedFunction main_fn(g, "main");
    lib.consume(lib.localeCtor(), 192);

    Frame recon(g, pixels, "recon_frame");
    vg::GuestArray<std::int32_t> residual(g, kMb * kMb, "residual");
    vg::GuestArray<std::int32_t> mvs(
        g, (std::size_t{width} / kMb) * (height / kMb) * 2, "mvs");
    vg::GuestVar<std::uint64_t> bits(g, 0, "bitcount");

    // Frame 0 is intra: just copy into the reconstruction buffer.
    {
        vg::ScopedFunction intra(g, "x264_intra_frame");
        lib.memcpy(recon, 0, video, 0, pixels);
    }

    for (unsigned frame = 1; frame < frames; ++frame) {
        vg::ScopedFunction enc(g, "x264_slice_write");
        std::size_t frame_off = std::size_t{frame} * pixels;
        unsigned mb_index = 0;
        for (unsigned mb_y = 0; mb_y + kMb <= height; mb_y += kMb) {
            for (unsigned mb_x = 0; mb_x + kMb <= width;
                 mb_x += kMb, ++mb_index) {
                vg::ScopedFunction mb(g, "macroblock_analyse");
                // Current macroblock view lives inside the input frame.
                // Build a shifted "current frame" accessor by offset.
                // Motion search against the reconstruction.
                int dx = 0, dy = 0;
                motionSearch(g, video, frame_off, mb_x, mb_y, recon,
                             width, height, &dx, &dy);
                mvs.set(std::size_t{mb_index} * 2, dx);
                mvs.set(std::size_t{mb_index} * 2 + 1, dy);

                // Residual = current - motion-compensated prediction.
                {
                    vg::ScopedFunction res(g, "mc_luma_residual");
                    for (unsigned py = 0; py < kMb; ++py) {
                        for (unsigned px = 0; px < kMb; ++px) {
                            int rx = static_cast<int>(mb_x + px) + dx;
                            int ry = static_cast<int>(mb_y + py) + dy;
                            if (rx < 0)
                                rx = 0;
                            if (ry < 0)
                                ry = 0;
                            if (rx >= static_cast<int>(width))
                                rx = static_cast<int>(width) - 1;
                            if (ry >= static_cast<int>(height))
                                ry = static_cast<int>(height) - 1;
                            int c = video.get(frame_off +
                                              std::size_t{mb_y + py} *
                                                  width +
                                              mb_x + px);
                            int p = recon.get(
                                static_cast<std::size_t>(ry) * width +
                                static_cast<std::size_t>(rx));
                            residual.set(std::size_t{py} * kMb + px,
                                         c - p);
                            g.iop(6);
                        }
                    }
                }

                // Transform + quantize the 16 4x4 sub-blocks.
                unsigned nonzero = 0;
                for (unsigned sub = 0; sub < 16; ++sub) {
                    std::size_t off = std::size_t{sub} * 16;
                    dct4x4(g, residual, off);
                    nonzero += quant4x4(g, residual, off, 6);
                }
                bits.set(bits.get() + nonzero * 4 + 8);
                g.iop(3);
            }
        }
        // Reconstruction update: adopt the current frame.
        lib.memcpy(recon, 0, video, frame_off, pixels);
    }
}

} // namespace sigil::workloads
