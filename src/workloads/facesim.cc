/**
 * @file
 * Miniature PARSEC facesim: quasi-static mass-spring simulation of a
 * face mesh, solved with conjugate gradient.
 *
 * Per frame: Update_Position_Based_State evaluates spring strains,
 * Add_Velocity_Independent_Forces assembles elastic forces, and a
 * One_Newton_Step_Toward_Steady_State CG solve updates positions.
 * facesim is the memory-intensive member of the suite (large vertex
 * arrays), matching its standing in the paper's Figure 6.
 */

#include <cstdint>

#include "support/rng.hh"
#include "vg/traced.hh"
#include "workloads/tracedlib.hh"
#include "workloads/workload.hh"

namespace sigil::workloads {

namespace {

using Vec = vg::GuestArray<double>;

/** Dot product of two vertex-component vectors. */
double
dot(vg::Guest &g, const Vec &a, const Vec &b, std::size_t n)
{
    vg::ScopedFunction f(g, "CG_Vector_Dot");
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        acc += a.get(i) * b.get(i);
        g.flop(2);
    }
    return acc;
}

/** y += alpha * x. */
void
axpy(vg::Guest &g, Vec &y, const Vec &x, double alpha, std::size_t n)
{
    vg::ScopedFunction f(g, "CG_Vector_Add");
    for (std::size_t i = 0; i < n; ++i) {
        y.set(i, y.get(i) + alpha * x.get(i));
        g.flop(2);
    }
}

/** Spring-laplacian matrix-vector product along the mesh ring. */
void
applyStiffness(vg::Guest &g, const Vec &x, Vec &out, std::size_t n)
{
    vg::ScopedFunction f(g, "Add_Force_Differential");
    for (std::size_t i = 0; i < n; ++i) {
        double left = x.get(i == 0 ? n - 1 : i - 1);
        double right = x.get(i + 1 == n ? 0 : i + 1);
        double self = x.get(i);
        out.set(i, 2.2 * self - 1.05 * (left + right));
        g.flop(4);
    }
}

} // namespace

void
runFacesim(vg::Guest &g, Scale scale)
{
    const unsigned factor = scaleFactor(scale);
    const std::size_t verts = 3072 * factor;
    const unsigned frames = 2;
    const unsigned cg_iters = 6;

    Lib lib(g);
    Rng rng(0xface);

    Vec rest(g, verts, "rest_positions");
    rest.fillAsInput(
        [&](std::size_t) { return rng.nextRange(-1.0, 1.0); });

    vg::ScopedFunction main_fn(g, "main");
    lib.consume(lib.localeCtor(), 192);

    Vec pos(g, verts, "positions");
    Vec strain(g, verts, "strain");
    Vec force(g, verts, "forces");
    Vec residual(g, verts, "cg_residual");
    Vec direction(g, verts, "cg_direction");
    Vec temp(g, verts, "cg_temp");
    lib.consume(lib.vectorCtor(verts, 8), verts * 8);
    lib.consume(lib.vectorCtor(verts, 8), verts * 8);

    {
        vg::ScopedFunction init(g, "Initialize_Deformable_Object");
        lib.memcpy(pos, 0, rest, 0, verts);
    }

    for (unsigned frame = 0; frame < frames; ++frame) {
        {
            vg::ScopedFunction upd(g, "Update_Position_Based_State");
            for (std::size_t i = 0; i < verts; ++i) {
                double d = pos.get(i) - rest.get(i);
                strain.set(i, d * d * 0.5 + 0.02 * d);
                g.flop(5);
            }
        }
        {
            vg::ScopedFunction asm_f(
                g, "Add_Velocity_Independent_Forces");
            for (std::size_t i = 0; i < verts; ++i) {
                double left = strain.get(i == 0 ? verts - 1 : i - 1);
                double self = strain.get(i);
                force.set(i, -3.0 * self + 1.4 * left);
                g.flop(3);
            }
        }

        // CG solve: K dx = f.
        vg::ScopedFunction solve(
            g, "One_Newton_Step_Toward_Steady_State");
        for (std::size_t i = 0; i < verts; ++i) {
            residual.set(i, force.get(i));
            direction.set(i, force.get(i));
        }
        double rho = dot(g, residual, residual, verts);
        for (unsigned it = 0; it < cg_iters; ++it) {
            applyStiffness(g, direction, temp, verts);
            double alpha = rho / (dot(g, direction, temp, verts) + 1e-12);
            g.flop(2);
            axpy(g, pos, direction, alpha, verts);
            axpy(g, residual, temp, -alpha, verts);
            double rho_new = dot(g, residual, residual, verts);
            double beta = rho_new / (rho + 1e-12);
            g.flop(2);
            // direction = residual + beta * direction.
            {
                vg::ScopedFunction up(g, "CG_Vector_Scale_Add");
                for (std::size_t i = 0; i < verts; ++i) {
                    direction.set(
                        i, residual.get(i) + beta * direction.get(i));
                    g.flop(2);
                }
            }
            rho = rho_new;
        }
        lib.isnan(rho);
    }
}

} // namespace sigil::workloads
