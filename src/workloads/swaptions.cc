/**
 * @file
 * Miniature PARSEC swaptions: Heath-Jarrow-Morton Monte-Carlo swaption
 * pricing.
 *
 * Each swaption is priced by simulating forward-rate paths
 * (HJM_SimPath_Forward_Blocking), discounting the payoff
 * (_ieee754_exp), and averaging across trials. Randomness flows through
 * the traced lrand48 chain converted to normals (RanUnif / CumNormalInv),
 * mirroring the benchmark's structure.
 */

#include <cstdint>

#include "support/rng.hh"
#include "vg/traced.hh"
#include "workloads/tracedlib.hh"
#include "workloads/workload.hh"

namespace sigil::workloads {

namespace {

/** Uniform (0,1) from the traced lrand48 chain. */
double
ranUnif(vg::Guest &g, Lib &lib)
{
    vg::ScopedFunction f(g, "RanUnif");
    long r = lib.lrand48();
    g.flop(2);
    return (static_cast<double>(r) + 1.0) / 2147483649.0;
}

/** Moro's inverse normal CDF approximation (rational part only). */
double
cumNormalInv(vg::Guest &g, double u)
{
    vg::StackMark mark(g);
    vg::ArgSlot<double> arg(g, u);
    vg::ScopedFunction f(g, "CumNormalInv");
    double x = arg.load() - 0.5;
    static constexpr double a[] = {2.50662823884, -18.61500062529,
                                   41.39119773534, -25.44106049637};
    static constexpr double b[] = {-8.47351093090, 23.08336743743,
                                   -21.06224101826, 3.13082909833};
    double r = x * x;
    double num = ((a[3] * r + a[2]) * r + a[1]) * r + a[0];
    double den = (((b[3] * r + b[2]) * r + b[1]) * r + b[0]) * r + 1.0;
    g.flop(16);
    return x * num / den;
}

} // namespace

void
runSwaptions(vg::Guest &g, Scale scale)
{
    const unsigned factor = scaleFactor(scale);
    const unsigned swaptions = 2 * factor;
    const unsigned trials = 32;
    const unsigned steps = 12;
    const unsigned tenors = 8;

    Lib lib(g);
    Rng rng(0x5a);

    // Initial forward curve and swaption strikes are program input.
    vg::GuestArray<double> fwd0(g, tenors, "forward_curve");
    fwd0.fillAsInput(
        [&](std::size_t) { return rng.nextRange(0.01, 0.06); });
    vg::GuestArray<double> strikes(g, swaptions, "strikes");
    strikes.fillAsInput(
        [&](std::size_t) { return rng.nextRange(0.01, 0.05); });

    vg::ScopedFunction main_fn(g, "main");
    lib.consume(lib.localeCtor(), 192);

    vg::GuestArray<double> path(g, std::size_t{steps} * tenors,
                                "hjm_path");
    vg::GuestArray<double> prices(g, swaptions, "prices");
    lib.consume(lib.vectorCtor(std::size_t{steps} * tenors, 8),
                std::size_t{steps} * tenors * 8);

    for (unsigned s = 0; s < swaptions; ++s) {
        vg::ScopedFunction worker(g, "HJM_Swaption_Blocking");
        double sum = 0.0;
        double strike = strikes.get(s);

        for (unsigned t = 0; t < trials; ++t) {
            {
                vg::ScopedFunction sim(g, "HJM_SimPath_Forward_Blocking");
                // Row 0 is the input curve.
                for (unsigned k = 0; k < tenors; ++k)
                    path.set(k, fwd0.get(k));
                // Evolve: drift + vol * dZ per step and tenor.
                for (unsigned st = 1; st < steps; ++st) {
                    double z = cumNormalInv(g, ranUnif(g, lib));
                    for (unsigned k = 0; k < tenors; ++k) {
                        double prev =
                            path.get((std::size_t{st} - 1) * tenors + k);
                        double drift = 0.0005 * (0.04 - prev);
                        double vol = 0.008 + 0.001 * k;
                        double next = prev + drift + vol * z * 0.1;
                        g.flop(7);
                        if (next < 0.0001) {
                            next = 0.0001;
                            g.iop(1);
                        }
                        path.set(std::size_t{st} * tenors + k, next);
                    }
                }
            }

            // Payoff: discounted swap value at expiry vs the strike.
            vg::ScopedFunction disc(g, "Discount_Factors_Blocking");
            double swap_rate = 0.0;
            for (unsigned k = 0; k < tenors; ++k) {
                swap_rate +=
                    path.get(std::size_t{steps - 1} * tenors + k);
                g.flop(1);
            }
            swap_rate /= tenors;
            double df = lib.exp(-swap_rate *
                                static_cast<double>(steps) * 0.1);
            double payoff = swap_rate - strike;
            if (payoff < 0.0)
                payoff = 0.0;
            sum += payoff * df;
            g.flop(6);
            g.branch(payoff > 0.0);
        }

        prices.set(s, sum / trials);
        g.flop(1);
        lib.isnan(prices.get(s));
    }
}

} // namespace sigil::workloads
