/**
 * @file
 * Miniature SPEC libquantum: simulation of a quantum register running
 * Grover iterations.
 *
 * The register is a dense amplitude vector. Each gate
 * (quantum_toffoli / quantum_cnot / quantum_sigma_x / quantum_hadamard)
 * sweeps the state in fixed-size blocks through the
 * quantum_state_update helper; blocks are data-independent within a
 * gate, and consecutive gates touch rotating qubit subsets, so the
 * dependency chains stay short — giving libquantum the high theoretical
 * function-level parallelism the paper reports alongside streamcluster
 * in Figure 13.
 */

#include <algorithm>
#include <cstdint>

#include "support/rng.hh"
#include "vg/traced.hh"
#include "workloads/tracedlib.hh"
#include "workloads/workload.hh"

namespace sigil::workloads {

namespace {

constexpr double kInvSqrt2 = 0.7071067811865476;
constexpr std::size_t kBlocks = 16;

using Amps = vg::GuestArray<double>;

enum class Gate { SigmaX, Cnot, Toffoli, Hadamard };

struct GateArgs
{
    Gate gate;
    unsigned qubits;
    unsigned c1 = 0;
    unsigned c2 = 0;
    unsigned target = 0;
};

/**
 * quantum_state_update: apply one gate to the basis states in
 * [lo, hi) — the per-block leaf every gate fans out to.
 */
void
stateUpdate(vg::Guest &g, Amps &re, Amps &im, const GateArgs &args,
            std::size_t lo, std::size_t hi)
{
    vg::ScopedFunction f(g, "quantum_state_update");
    std::size_t tbit = std::size_t{1} << args.target;
    std::size_t b1 = std::size_t{1} << args.c1;
    std::size_t b2 = std::size_t{1} << args.c2;
    for (std::size_t i = lo; i < hi; ++i) {
        bool act = false;
        switch (args.gate) {
          case Gate::SigmaX:
            act = (i & tbit) == 0;
            g.iop(2);
            break;
          case Gate::Cnot:
            act = (i & b1) != 0 && (i & tbit) == 0;
            g.iop(3);
            break;
          case Gate::Toffoli:
            act = (i & b1) != 0 && (i & b2) != 0 && (i & tbit) == 0;
            g.iop(4);
            break;
          case Gate::Hadamard:
            act = (i & tbit) == 0;
            g.iop(2);
            break;
        }
        g.branch(act);
        if (!act)
            continue;
        if (args.gate == Gate::Hadamard) {
            double ra = re.get(i), ia = im.get(i);
            double rb = re.get(i | tbit), ib = im.get(i | tbit);
            re.set(i, kInvSqrt2 * (ra + rb));
            im.set(i, kInvSqrt2 * (ia + ib));
            re.set(i | tbit, kInvSqrt2 * (ra - rb));
            im.set(i | tbit, kInvSqrt2 * (ia - ib));
            g.flop(8);
        } else {
            double r0 = re.get(i), i0 = im.get(i);
            re.set(i, re.get(i | tbit));
            im.set(i, im.get(i | tbit));
            re.set(i | tbit, r0);
            im.set(i | tbit, i0);
        }
    }
}

/** Run one gate as a block-sweep under its own named function. */
void
applyGate(vg::Guest &g, const char *name, Amps &re, Amps &im,
          const GateArgs &args)
{
    vg::ScopedFunction f(g, name);
    std::size_t n = std::size_t{1} << args.qubits;
    std::size_t block = n / kBlocks ? n / kBlocks : n;
    g.iop(3);
    for (std::size_t lo = 0; lo < n; lo += block)
        stateUpdate(g, re, im, args, lo, std::min(lo + block, n));
}

} // namespace

void
runLibquantum(vg::Guest &g, Scale scale)
{
    const unsigned factor = scaleFactor(scale);
    const unsigned qubits = 7 + (factor == 1 ? 0 : factor == 4 ? 1 : 2);
    const unsigned iterations = 6 * factor;
    const std::size_t n = std::size_t{1} << qubits;

    Lib lib(g);
    Rng rng(0x9b);

    Amps re(g, n, "amps_re");
    Amps im(g, n, "amps_im");
    re.fillAsInput([&](std::size_t i) { return i == 0 ? 1.0 : 0.0; });
    im.fillAsInput([&](std::size_t) { return 0.0; });

    vg::ScopedFunction main_fn(g, "main");
    g.iop(4);

    {
        vg::ScopedFunction init(g, "quantum_new_qureg");
        lib.consume(lib.vectorCtor(n, 16), n * 16);
    }

    {
        // Uniform superposition.
        vg::ScopedFunction gi(g, "quantum_walsh");
        g.iop(2);
        for (unsigned q = 0; q < qubits; ++q) {
            applyGate(g, "quantum_hadamard", re, im,
                      GateArgs{Gate::Hadamard, qubits, 0, 0, q});
        }
    }

    for (unsigned it = 0; it < iterations; ++it) {
        vg::ScopedFunction grover(g, "grover_iterate");
        g.iop(3);
        // Oracle: gates over rotating qubit subsets, mostly disjoint
        // between consecutive gates.
        unsigned a = (it * 3) % qubits;
        unsigned b = (it * 3 + 1) % qubits;
        unsigned c = (it * 3 + 2) % qubits;
        applyGate(g, "quantum_toffoli", re, im,
                  GateArgs{Gate::Toffoli, qubits, a, b, c});
        applyGate(g, "quantum_cnot", re, im,
                  GateArgs{Gate::Cnot, qubits, b, 0,
                           (b + 2) % qubits});
        applyGate(g, "quantum_sigma_x", re, im,
                  GateArgs{Gate::SigmaX, qubits, 0, 0,
                           (a + 4) % qubits});
        // Diffusion on two qubits.
        applyGate(g, "quantum_hadamard", re, im,
                  GateArgs{Gate::Hadamard, qubits, 0, 0, a});
        applyGate(g, "quantum_hadamard", re, im,
                  GateArgs{Gate::Hadamard, qubits, 0, 0,
                           (a + 1) % qubits});
    }

    {
        vg::ScopedFunction measure(g, "quantum_measure");
        g.iop(2);
        double norm = 0.0;
        std::size_t block = n / kBlocks ? n / kBlocks : n;
        for (std::size_t lo = 0; lo < n; lo += block) {
            // quantum_prob of one block of basis states.
            vg::ScopedFunction pr(g, "quantum_prob_inline");
            double part = 0.0;
            std::size_t hi = std::min(lo + block, n);
            for (std::size_t i = lo; i < hi; ++i) {
                part += re.get(i) * re.get(i) + im.get(i) * im.get(i);
                g.flop(4);
            }
            norm += part;
        }
        lib.isnan(norm);
    }
}

} // namespace sigil::workloads
