/**
 * @file
 * Miniature PARSEC canneal: simulated-annealing routing-cost
 * minimization of a netlist.
 *
 * Each annealing step picks two random elements (through the traced
 * lrand48 chain), evaluates the wirelength delta of exchanging their
 * locations ("mul" computes the weighted Manhattan terms), and commits
 * good swaps with netlist::swap_locations. Element lookup by name uses
 * memchr over the name pool plus std::string::compare, and the netlist
 * loader shifts elements with memmove — the exact utility functions
 * Table II lists for canneal.
 */

#include <cstdint>

#include "support/rng.hh"
#include "vg/traced.hh"
#include "workloads/tracedlib.hh"
#include "workloads/workload.hh"

namespace sigil::workloads {

namespace {

constexpr std::size_t kNameLen = 12;

/**
 * "mul" — the weighted wirelength term of one net, computed with a
 * software shift-and-add multiply (the compatibility path the paper's
 * canneal profile ranks near breakeven 1).
 */
std::uint64_t
mul(vg::Guest &g, std::uint64_t dist, std::uint64_t weight)
{
    vg::StackMark mark(g);
    vg::ArgSlot<std::uint64_t> a(g, dist);
    vg::ArgSlot<std::uint64_t> b(g, weight);
    vg::ScopedFunction f(g, "mul");
    std::uint64_t d = a.load();
    std::uint64_t w = b.load();
    std::uint64_t acc = 0;
    while (w != 0) {
        if (w & 1)
            acc += d;
        d <<= 1;
        w >>= 1;
        g.iop(4);
        g.branch(w != 0);
    }
    // Guard band so even weight=1 pays the full software-multiply cost.
    g.iop(12);
    return acc;
}

/** Manhattan distance between two element locations. */
std::uint64_t
routingDistance(vg::Guest &g, const vg::GuestArray<std::int32_t> &locx,
                const vg::GuestArray<std::int32_t> &locy, std::size_t a,
                std::size_t b)
{
    vg::ScopedFunction f(g, "netlist_elem::routing_cost_given_loc");
    std::int32_t dx = locx.get(a) - locx.get(b);
    std::int32_t dy = locy.get(a) - locy.get(b);
    g.iop(4);
    if (dx < 0)
        dx = -dx;
    if (dy < 0)
        dy = -dy;
    g.iop(2);
    return static_cast<std::uint64_t>(dx) +
           static_cast<std::uint64_t>(dy);
}

/** netlist::swap_locations — exchange two elements' coordinates. */
void
swapLocations(vg::Guest &g, vg::GuestArray<std::int32_t> &locx,
              vg::GuestArray<std::int32_t> &locy, std::size_t a,
              std::size_t b)
{
    vg::ScopedFunction f(g, "netlist::swap_locations");
    std::int32_t ax = locx.get(a);
    std::int32_t ay = locy.get(a);
    locx.set(a, locx.get(b));
    locy.set(a, locy.get(b));
    locx.set(b, ax);
    locy.set(b, ay);
    g.iop(6);
}

} // namespace

void
runCanneal(vg::Guest &g, Scale scale)
{
    const unsigned factor = scaleFactor(scale);
    const std::size_t elems = 1024;
    const std::size_t steps = 2048 * factor;
    const std::size_t fanout = 4;

    Lib lib(g);
    Rng rng(0xca8);

    // The netlist file: per element a fixed-width name and location.
    vg::GuestArray<unsigned char> names(g, elems * kNameLen, "name_pool");
    names.fillAsInput([&](std::size_t i) {
        std::size_t pos = i % kNameLen;
        if (pos == kNameLen - 1)
            return static_cast<unsigned char>('\0');
        return static_cast<unsigned char>('a' + (i * 131) % 26);
    });

    vg::ScopedFunction main_fn(g, "main");
    lib.consume(lib.localeCtor(), 192);

    vg::GuestArray<std::int32_t> locx(g, elems, "loc_x");
    vg::GuestArray<std::int32_t> locy(g, elems, "loc_y");
    vg::GuestArray<std::int32_t> fanin(g, elems * fanout, "fanin");
    vg::GuestArray<std::uint64_t> weights(g, elems, "net_weights");
    lib.consume(lib.vectorCtor(elems, 4), elems * 4);

    {
        // Netlist load: place elements, register names, and compact the
        // element table with memmove as the real loader does.
        vg::ScopedFunction load(g, "netlist::netlist");
        for (std::size_t i = 0; i < elems; ++i) {
            locx.set(i, static_cast<std::int32_t>(rng.nextBounded(512)));
            locy.set(i, static_cast<std::int32_t>(rng.nextBounded(512)));
            weights.set(i, 1 + rng.nextBounded(7));
            for (std::size_t k = 0; k < fanout; ++k) {
                fanin.set(i * fanout + k,
                          static_cast<std::int32_t>(
                              rng.nextBounded(elems)));
            }
            g.iop(4);
        }
        // Shift a block of locations to model vector growth.
        lib.memmove(locx, 0, locx, 0, elems / 8);

        // Name lookups exercised during load: find the terminator with
        // memchr, then compare against a query name.
        for (std::size_t q = 0; q < elems / 4; ++q) {
            std::size_t idx = rng.nextBounded(elems);
            lib.memchr(names, idx * kNameLen, kNameLen, '\0');
            std::size_t other = rng.nextBounded(elems);
            lib.stringCompare(names, idx * kNameLen, names,
                              other * kNameLen, kNameLen - 1);
        }
    }

    {
        vg::ScopedFunction anneal(g, "annealer_thread::Run");
        std::uint64_t accepted = 0;
        for (std::size_t s = 0; s < steps; ++s) {
            std::size_t a = static_cast<std::size_t>(lib.lrand48()) %
                            elems;
            std::size_t b = static_cast<std::size_t>(lib.lrand48()) %
                            elems;
            g.iop(2);
            if (a == b)
                continue;

            // Delta cost over both elements' fanin nets.
            std::uint64_t before = 0, after = 0;
            {
                vg::ScopedFunction sc(g, "netlist_elem::swap_cost");
                for (std::size_t k = 0; k < fanout; ++k) {
                    std::size_t na = static_cast<std::size_t>(
                        fanin.get(a * fanout + k));
                    std::size_t nb = static_cast<std::size_t>(
                        fanin.get(b * fanout + k));
                    std::uint64_t wa = weights.get(a);
                    std::uint64_t wb = weights.get(b);
                    before += mul(g, routingDistance(g, locx, locy, a, na),
                                  wa);
                    before += mul(g, routingDistance(g, locx, locy, b, nb),
                                  wb);
                    after += mul(g, routingDistance(g, locx, locy, b, na),
                                 wa);
                    after += mul(g, routingDistance(g, locx, locy, a, nb),
                                 wb);
                    g.iop(4);
                }
            }
            bool accept = after < before ||
                          (lib.lrand48() & 0xff) < 8;
            g.iop(2);
            g.branch(accept);
            if (accept) {
                swapLocations(g, locx, locy, a, b);
                ++accepted;
            }
        }
        g.iop(1);
        (void)accepted;
    }
}

} // namespace sigil::workloads
