/**
 * @file
 * Miniature PARSEC raytrace: Whitted-style ray tracing of a sphere
 * scene.
 *
 * Per pixel a primary ray is intersected against every sphere
 * (IntersectSphere leans on _ieee754_sqrt for the discriminant), the
 * nearest hit is shaded with a Phong term through _ieee754_pow, and one
 * shadow ray is cast. raytrace and facesim are the memory-heavier
 * benchmarks of the suite's characterization figures, so the scene and
 * framebuffer are comparatively large.
 */

#include <cmath>
#include <cstdint>

#include "support/rng.hh"
#include "vg/traced.hh"
#include "workloads/tracedlib.hh"
#include "workloads/workload.hh"

namespace sigil::workloads {

namespace {

struct Hit
{
    double t = 1e30;
    int sphere = -1;
};

/** Ray/sphere intersection; returns the nearest positive t or <0. */
double
intersectSphere(vg::Guest &g, Lib &lib,
                const vg::GuestArray<double> &spheres, std::size_t s,
                double ox, double oy, double oz, double dx, double dy,
                double dz)
{
    vg::ScopedFunction f(g, "IntersectSphere");
    double cx = spheres.get(s * 4 + 0);
    double cy = spheres.get(s * 4 + 1);
    double cz = spheres.get(s * 4 + 2);
    double r = spheres.get(s * 4 + 3);
    double lx = cx - ox, ly = cy - oy, lz = cz - oz;
    double b = lx * dx + ly * dy + lz * dz;
    double c = lx * lx + ly * ly + lz * lz - r * r;
    double disc = b * b - c;
    g.flop(17);
    g.branch(disc < 0.0);
    if (disc < 0.0)
        return -1.0;
    double sq = lib.sqrt(disc);
    double t = b - sq;
    g.flop(1);
    if (t < 1e-6) {
        t = b + sq;
        g.flop(1);
    }
    return t > 1e-6 ? t : -1.0;
}

} // namespace

void
runRaytrace(vg::Guest &g, Scale scale)
{
    const unsigned factor = scaleFactor(scale);
    const unsigned w = 32 * (factor == 1 ? 1 : factor == 4 ? 2 : 4);
    const unsigned h = w;
    const unsigned n_spheres = 12;

    Lib lib(g);
    Rng rng(0x4a7);

    vg::GuestArray<double> spheres(g, std::size_t{n_spheres} * 4,
                                   "spheres");
    spheres.fillAsInput([&](std::size_t i) {
        switch (i % 4) {
          case 0:
          case 1: return rng.nextRange(-4.0, 4.0);
          case 2: return rng.nextRange(4.0, 14.0);
          default: return rng.nextRange(0.5, 1.6);
        }
    });

    vg::ScopedFunction main_fn(g, "main");
    lib.consume(lib.localeCtor(), 192);

    vg::GuestArray<float> framebuffer(g, std::size_t{w} * h,
                                      "framebuffer");
    lib.consume(lib.vectorCtor(std::size_t{w} * h, 4),
                std::size_t{w} * h * 4);

    vg::ScopedFunction render(g, "RenderFrame");
    // Exposure metering accumulates through memory pixel by pixel, the
    // serial spine of the frame loop.
    vg::GuestVar<double> exposure(g, 0.0, "exposure");
    for (unsigned y = 0; y < h; ++y) {
        // Camera sway per scanline via the traced trig kernels.
        double sway = 0.002 * lib.sin(0.2 * static_cast<double>(y));
        double tilt = 0.002 * lib.cos(0.2 * static_cast<double>(y));
        g.flop(2);
        for (unsigned x = 0; x < w; ++x) {
            vg::ScopedFunction trace(g, "TraceRay");
            double dx = (static_cast<double>(x) / w - 0.5) * 0.8 + sway;
            double dy = (static_cast<double>(y) / h - 0.5) * 0.8 + tilt;
            double dz = 1.0;
            double inv = 1.0 / std::sqrt(dx * dx + dy * dy + dz * dz);
            dx *= inv;
            dy *= inv;
            dz *= inv;
            g.flop(12);

            Hit hit;
            for (unsigned s = 0; s < n_spheres; ++s) {
                double t = intersectSphere(g, lib, spheres, s, 0, 0, 0,
                                           dx, dy, dz);
                g.branch(t > 0.0 && t < hit.t);
                if (t > 0.0 && t < hit.t) {
                    hit.t = t;
                    hit.sphere = static_cast<int>(s);
                }
                g.iop(2);
            }

            float color = 0.05f;
            if (hit.sphere >= 0) {
                vg::ScopedFunction shade(g, "Shade");
                std::size_t s = static_cast<std::size_t>(hit.sphere);
                double px = dx * hit.t, py = dy * hit.t, pz = dz * hit.t;
                double nx = px - spheres.get(s * 4 + 0);
                double ny = py - spheres.get(s * 4 + 1);
                double nz = pz - spheres.get(s * 4 + 2);
                double nlen =
                    std::sqrt(nx * nx + ny * ny + nz * nz) + 1e-12;
                nx /= nlen;
                ny /= nlen;
                nz /= nlen;
                g.flop(15);
                // Light from (1,1,-1)/sqrt(3).
                double ndotl =
                    (nx + ny - nz) * 0.5773502691896258;
                if (ndotl < 0.0)
                    ndotl = 0.0;
                double spec = lib.pow(ndotl + 0.001, 16.0);
                color = static_cast<float>(0.1 + 0.7 * ndotl +
                                           0.2 * spec);
                g.flop(7);

                // Shadow ray toward the light.
                bool shadowed = false;
                for (unsigned o = 0; o < n_spheres; ++o) {
                    if (o == s)
                        continue;
                    double t = intersectSphere(
                        g, lib, spheres, o, px, py, pz, 0.57735,
                        0.57735, -0.57735);
                    g.branch(t > 0.0);
                    if (t > 0.0) {
                        shadowed = true;
                        break;
                    }
                }
                if (shadowed) {
                    color *= 0.3f;
                    g.flop(1);
                }
            }
            framebuffer.set(std::size_t{y} * w + x, color);
            exposure.set(exposure.get() + color);
            g.flop(3);
        }
    }
}

} // namespace sigil::workloads
