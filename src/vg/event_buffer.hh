/**
 * @file
 * Batched event transport between the Guest and its tools.
 *
 * Instead of one virtual Tool call per primitive event, the Guest can
 * append compact POD records into a fixed-capacity structure-of-arrays
 * EventBuffer and hand the whole buffer to each tool at once through
 * Tool::processBatch(). Tools that do not override processBatch() get a
 * default adapter that replays the batch through the per-event virtuals
 * in order, so every existing tool keeps working unchanged.
 *
 * Because dispatch is deferred, a tool callback can no longer read the
 * live guest state (the guest has already moved past the event). Every
 * record therefore carries the ambient state a tool may query — current
 * context, call number, call depth, and the virtual clock (folded into
 * the record rather than emitted as separate clock events). During a
 * replay the adapter exposes that state through a thread-local
 * DispatchCursor which Guest::currentContext()/currentCall()/now()/
 * callDepth() consult, making deferred dispatch observably identical to
 * immediate dispatch.
 */

#ifndef SIGIL_VG_EVENT_BUFFER_HH
#define SIGIL_VG_EVENT_BUFFER_HH

#include <cstdint>
#include <cstddef>
#include <memory>

#include "vg/types.hh"

namespace sigil::vg {

class Tool;

/** Discriminator of one buffered event record. */
enum class EventKind : std::uint8_t {
    kRead,         ///< a = addr, b = size
    kWrite,        ///< a = addr, b = size
    kOp,           ///< a = iops, b = flops
    kBranch,       ///< a = taken
    kEnter,        ///< a = function id; ctx/call lanes = entered frame
    kLeave,        ///< a = left ctx, b = left call; ctx/call = resumed
    kThreadSwitch, ///< a = incoming thread id
    kBarrier,      ///< no payload
    kRoi,          ///< a = active flag
};

/**
 * Ambient guest state of the event currently being replayed to a tool.
 * While a replay is active on a thread, the Guest's state accessors
 * answer from the cursor instead of the live (producer-side) state.
 */
struct DispatchCursor
{
    ContextId ctx = kInvalidContext;
    CallNum call = 0;
    Tick tick = 0;
    std::uint32_t depth = 0;
};

/**
 * The cursor active on the calling thread, or nullptr outside a batch
 * replay. Set by EventBuffer::replayTo().
 */
const DispatchCursor *activeDispatchCursor();

/**
 * Fixed-capacity structure-of-arrays buffer of primitive guest events.
 *
 * Lanes are parallel arrays indexed by record number: the payload lanes
 * a/b (meaning per EventKind, see above) and the ambient lanes
 * ctx/call/tick/depth (state *after* the event applied: for kLeave the
 * resumed caller frame, for kEnter the entered frame). Batch-native
 * consumers read the lanes directly; everyone else goes through
 * replayTo().
 */
class EventBuffer
{
  public:
    explicit EventBuffer(std::size_t capacity)
        : capacity_(capacity ? capacity : 1),
          kind_(new EventKind[capacity_]), a_(new std::uint64_t[capacity_]),
          b_(new std::uint64_t[capacity_]), ctx_(new ContextId[capacity_]),
          call_(new CallNum[capacity_]), tick_(new Tick[capacity_]),
          depth_(new std::uint32_t[capacity_])
    {}

    EventBuffer(const EventBuffer &) = delete;
    EventBuffer &operator=(const EventBuffer &) = delete;

    /**
     * Heap bytes one buffer of the given capacity holds across its
     * seven lanes — what a MemoryGovernor charges per buffer.
     */
    static std::size_t
    footprintBytes(std::size_t capacity)
    {
        if (capacity == 0)
            capacity = 1;
        return capacity *
               (sizeof(EventKind) + 2 * sizeof(std::uint64_t) +
                sizeof(ContextId) + sizeof(CallNum) + sizeof(Tick) +
                sizeof(std::uint32_t));
    }

    std::size_t size() const { return size_; }
    std::size_t capacity() const { return capacity_; }
    bool empty() const { return size_ == 0; }
    bool full() const { return size_ == capacity_; }
    void clear() { size_ = 0; }

    /** Append one record; the caller checks full() afterwards. */
    void
    append(EventKind kind, std::uint64_t a, std::uint64_t b,
           ContextId ctx, CallNum call, Tick tick, std::uint32_t depth)
    {
        std::size_t i = size_++;
        kind_[i] = kind;
        a_[i] = a;
        b_[i] = b;
        ctx_[i] = ctx;
        call_[i] = call;
        tick_[i] = tick;
        depth_[i] = depth;
    }

    /** @name Per-record accessors */
    /// @{
    EventKind kind(std::size_t i) const { return kind_[i]; }
    std::uint64_t a(std::size_t i) const { return a_[i]; }
    std::uint64_t b(std::size_t i) const { return b_[i]; }
    ContextId ctx(std::size_t i) const { return ctx_[i]; }
    CallNum call(std::size_t i) const { return call_[i]; }
    Tick tick(std::size_t i) const { return tick_[i]; }
    std::uint32_t depth(std::size_t i) const { return depth_[i]; }
    /// @}

    /** @name Raw lanes, for batch-native consumers */
    /// @{
    const EventKind *kinds() const { return kind_.get(); }
    const std::uint64_t *as() const { return a_.get(); }
    const std::uint64_t *bs() const { return b_.get(); }
    const ContextId *ctxs() const { return ctx_.get(); }
    const CallNum *calls() const { return call_.get(); }
    const Tick *ticks() const { return tick_.get(); }
    const std::uint32_t *depths() const { return depth_.get(); }
    /// @}

    /**
     * Replay every record through the tool's per-event virtuals, in
     * order, with the dispatch cursor of the calling thread tracking
     * each record's ambient lanes. This is the default
     * Tool::processBatch() implementation.
     */
    void replayTo(Tool &tool) const;

  private:
    std::size_t size_ = 0;
    std::size_t capacity_;
    std::unique_ptr<EventKind[]> kind_;
    std::unique_ptr<std::uint64_t[]> a_;
    std::unique_ptr<std::uint64_t[]> b_;
    std::unique_ptr<ContextId[]> ctx_;
    std::unique_ptr<CallNum[]> call_;
    std::unique_ptr<Tick[]> tick_;
    std::unique_ptr<std::uint32_t[]> depth_;
};

} // namespace sigil::vg

#endif // SIGIL_VG_EVENT_BUFFER_HH
