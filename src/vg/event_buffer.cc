#include "event_buffer.hh"

#include "vg/tool.hh"

namespace sigil::vg {

namespace {

thread_local const DispatchCursor *tActiveCursor = nullptr;

} // namespace

const DispatchCursor *
activeDispatchCursor()
{
    return tActiveCursor;
}

void
EventBuffer::replayTo(Tool &tool) const
{
    DispatchCursor cursor;
    const DispatchCursor *saved = tActiveCursor;
    tActiveCursor = &cursor;
    for (std::size_t i = 0; i < size_; ++i) {
        cursor.ctx = ctx_[i];
        cursor.call = call_[i];
        cursor.tick = tick_[i];
        cursor.depth = depth_[i];
        switch (kind_[i]) {
          case EventKind::kRead:
            tool.memRead(a_[i], static_cast<unsigned>(b_[i]));
            break;
          case EventKind::kWrite:
            tool.memWrite(a_[i], static_cast<unsigned>(b_[i]));
            break;
          case EventKind::kOp:
            tool.op(a_[i], b_[i]);
            break;
          case EventKind::kBranch:
            tool.branch(a_[i] != 0);
            break;
          case EventKind::kEnter:
            tool.fnEnter(ctx_[i], call_[i]);
            break;
          case EventKind::kLeave:
            tool.fnLeave(static_cast<ContextId>(
                             static_cast<std::int64_t>(a_[i])),
                         b_[i]);
            break;
          case EventKind::kThreadSwitch:
            tool.threadSwitch(static_cast<ThreadId>(a_[i]));
            break;
          case EventKind::kBarrier:
            tool.barrier();
            break;
          case EventKind::kRoi:
            tool.roi(a_[i] != 0);
            break;
        }
    }
    tActiveCursor = saved;
}

void
Tool::processBatch(const EventBuffer &batch)
{
    batch.replayTo(*this);
}

} // namespace sigil::vg
