#include "function_registry.hh"

#include "support/logging.hh"

namespace sigil::vg {

FunctionId
FunctionRegistry::intern(std::string_view name)
{
    auto it = byName_.find(std::string(name));
    if (it != byName_.end())
        return it->second;
    FunctionId id = static_cast<FunctionId>(names_.size());
    if (growthBarrier_ && names_.size() == names_.capacity())
        growthBarrier_();
    names_.emplace_back(name);
    published_.store(names_.size(), std::memory_order_release);
    byName_.emplace(names_.back(), id);
    return id;
}

FunctionId
FunctionRegistry::find(std::string_view name) const
{
    auto it = byName_.find(std::string(name));
    return it == byName_.end() ? kInvalidFunction : it->second;
}

const std::string &
FunctionRegistry::name(FunctionId id) const
{
    if (id < 0 || static_cast<std::size_t>(id) >=
                      published_.load(std::memory_order_acquire)) {
        panic("FunctionRegistry::name: bad id %d", id);
    }
    return names_[static_cast<std::size_t>(id)];
}

} // namespace sigil::vg
