#include "guest.hh"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>

#include "support/logging.hh"
#include "support/mem_governor.hh"
#include "support/watchdog.hh"

namespace sigil::vg {

/**
 * Double-buffered hand-off between the workload thread and the tool
 * consumer thread (asyncTools mode). The guest fills one EventBuffer
 * while the consumer drains the other; submit() exchanges a filled
 * buffer for a drained one, blocking only when the consumer is still
 * behind by a full buffer.
 *
 * The hand-off mutex is also the synchronization point for the shared
 * read-mostly registries (function names, context nodes, allocations):
 * the guest calls waitIdle() before any vector reallocation of those,
 * so the consumer never observes storage being moved. Everything a
 * buffered event refers to was created before the buffer was submitted,
 * hence before the consumer could dereference it.
 */
class AsyncToolPipeline
{
  public:
    AsyncToolPipeline(Guest &guest, std::size_t capacity,
                      sigil::Watchdog *watchdog)
        : guest_(guest), spare_(std::make_unique<EventBuffer>(capacity)),
          watchdog_(watchdog)
    {
        if (watchdog_ != nullptr) {
            dogId_ = watchdog_->registerEntity(
                "async-tool-consumer", sigil::Watchdog::StallAction::Fail,
                [this] {
                    char buf[64];
                    std::snprintf(buf, sizeof(buf),
                                  "batches drained=%llu",
                                  static_cast<unsigned long long>(
                                      batchesDrained_.load(
                                          std::memory_order_relaxed)));
                    return std::string(buf);
                });
        }
        worker_ = std::thread([this] { run(); });
    }

    ~AsyncToolPipeline()
    {
        {
            std::lock_guard<std::mutex> lock(m_);
            stop_ = true;
        }
        cv_.notify_all();
        worker_.join();
        if (watchdog_ != nullptr)
            watchdog_->unregisterEntity(dogId_);
    }

    /** Exchange a filled buffer for a drained one. */
    std::unique_ptr<EventBuffer>
    submit(std::unique_ptr<EventBuffer> filled)
    {
        std::unique_lock<std::mutex> lock(m_);
        cv_.wait(lock, [this] { return spare_ != nullptr; });
        std::unique_ptr<EventBuffer> fresh = std::move(spare_);
        pending_ = std::move(filled);
        cv_.notify_all();
        return fresh;
    }

    /** Block until every submitted buffer has been fully drained. */
    void
    waitIdle()
    {
        std::unique_lock<std::mutex> lock(m_);
        cv_.wait(lock, [this] { return pending_ == nullptr && !busy_; });
    }

    /** Non-blocking: true when no submitted buffer is in flight. */
    bool
    idle() const
    {
        std::lock_guard<std::mutex> lock(m_);
        return pending_ == nullptr && !busy_;
    }

  private:
    void
    run()
    {
        std::unique_lock<std::mutex> lock(m_);
        for (;;) {
            // Parked on an empty pipeline: not a stall.
            if (watchdog_ != nullptr)
                watchdog_->idle(dogId_);
            cv_.wait(lock,
                     [this] { return stop_ || pending_ != nullptr; });
            if (pending_ == nullptr) // stop requested, nothing queued
                return;
            if (watchdog_ != nullptr)
                watchdog_->busy(dogId_);
            std::unique_ptr<EventBuffer> batch = std::move(pending_);
            busy_ = true;
            lock.unlock();
            guest_.dispatchBatch(*batch);
            batch->clear();
            batchesDrained_.fetch_add(1, std::memory_order_relaxed);
            if (watchdog_ != nullptr)
                watchdog_->beat(dogId_);
            lock.lock();
            spare_ = std::move(batch);
            busy_ = false;
            cv_.notify_all();
            if (stop_)
                return;
        }
    }

    Guest &guest_;
    std::thread worker_;
    mutable std::mutex m_;
    std::condition_variable cv_;
    std::unique_ptr<EventBuffer> pending_;
    std::unique_ptr<EventBuffer> spare_;
    bool busy_ = false;
    bool stop_ = false;
    sigil::Watchdog *watchdog_ = nullptr;
    int dogId_ = -1;
    std::atomic<std::uint64_t> batchesDrained_{0};
};

std::string
GuestConfigError::describe() const
{
    return "GuestConfig::" + knob + ": " + message;
}

std::optional<GuestConfigError>
GuestConfig::validate() const
{
    auto reject = [](const char *knob,
                     std::string message) -> std::optional<GuestConfigError> {
        return GuestConfigError{knob, std::move(message)};
    };
    char detail[96];
    if (shardCount == 0 || shardCount > 64 ||
        (shardCount & (shardCount - 1)) != 0) {
        std::snprintf(detail, sizeof(detail),
                      "must be a power of two in [1, 64] (got %u)",
                      shardCount);
        return reject("shardCount", detail);
    }
    if (decodeThreads == 0 || decodeThreads > 64) {
        std::snprintf(detail, sizeof(detail),
                      "must be in [1, 64] (got %u)", decodeThreads);
        return reject("decodeThreads", detail);
    }
    if (eventBufferEvents == 0)
        return reject("eventBufferEvents", "must be at least 1");
    if (asyncWriter && writerQueueFrames < 2) {
        std::snprintf(detail, sizeof(detail),
                      "must be at least 2 with asyncWriter (got %zu)",
                      writerQueueFrames);
        return reject("writerQueueFrames", detail);
    }
    if (shardQueueCapacity == 0)
        return reject("shardQueueCapacity", "must be at least 1");
    return std::nullopt;
}

Guest::Guest(std::string program_name, const GuestConfig &config)
    : programName_(std::move(program_name)), config_(config),
      contexts_(functions_, config.maxContextDepth)
{
    if (std::optional<GuestConfigError> err = config.validate())
        fatal("%s", err->describe().c_str());
    governor_ =
        std::make_shared<sigil::MemoryGovernor>(config.memoryBudgetBytes);
    if (config.stallTimeoutMs > 0)
        watchdog_ = std::make_shared<sigil::Watchdog>(config.stallTimeoutMs);
    inputFn_ = functions_.intern("*input*");
    threads_.push_back(ThreadCtx{{}, kStackBase});
    batching_ = config.batchEvents || config.asyncTools;
    if (batching_) {
        fillBuf_ = std::make_unique<EventBuffer>(config.eventBufferEvents);
        // Fill buffer, plus the pipeline's second (double) buffer.
        std::size_t buffers = config.asyncTools ? 2 : 1;
        bufferBytesCharged_ =
            buffers * EventBuffer::footprintBytes(config.eventBufferEvents);
        governor_->charge(sigil::MemCategory::EventBuffers,
                          bufferBytesCharged_);
        if (config.asyncTools) {
            pipeline_ = std::make_unique<AsyncToolPipeline>(
                *this, config.eventBufferEvents, watchdog_.get());
            // The consumer dereferences registry entries while the
            // workload thread appends new ones; stall it across the
            // rare vector reallocation so storage never moves under a
            // concurrent reader.
            auto barrier = [this] { pipeline_->waitIdle(); };
            functions_.setGrowthBarrier(barrier);
            contexts_.setGrowthBarrier(barrier);
        }
    }
}

Guest::~Guest()
{
    // Unsynced buffered events are dropped, not dispatched: the tools
    // (owned by the caller) may already be destroyed by now. finish()
    // is the orderly path.
    pipeline_.reset();
    governor_->release(sigil::MemCategory::EventBuffers,
                       bufferBytesCharged_);
}

void
Guest::addTool(Tool *tool)
{
    if (tool == nullptr)
        panic("Guest::addTool: null tool");
    tools_.push_back(tool);
    tool->attach(*this);
}

void
Guest::appendEvent(EventKind kind, std::uint64_t a, std::uint64_t b)
{
    const ThreadCtx &t = thread();
    ContextId ctx = kInvalidContext;
    CallNum call = 0;
    if (!t.frames.empty()) {
        const Frame &f = t.frames.back();
        ctx = f.ctx;
        call = f.call;
    }
    fillBuf_->append(kind, a, b, ctx, call, counters_.instructions(),
                     static_cast<std::uint32_t>(t.frames.size()));
    if (fillBuf_->full())
        flushFill();
}

void
Guest::flushFill()
{
    if (fillBuf_->empty())
        return;
    if (pipeline_) {
        fillBuf_ = pipeline_->submit(std::move(fillBuf_));
    } else {
        dispatchBatch(*fillBuf_);
        fillBuf_->clear();
    }
}

void
Guest::dispatchBatch(const EventBuffer &batch)
{
    for (Tool *t : tools_)
        t->processBatch(batch);
}

void
Guest::sync()
{
    if (batching_) {
        flushFill();
        if (pipeline_)
            pipeline_->waitIdle();
    }
    // Tools may run their own internal concurrency (shard workers)
    // regardless of the transport mode; give each a chance to drain.
    for (Tool *t : tools_)
        t->sync();
}

void
Guest::enter(FunctionId fn)
{
    if (finished_)
        panic("Guest::enter after finish()");
    ThreadCtx &t = thread();
    ContextId parent =
        t.frames.empty() ? kInvalidContext : t.frames.back().ctx;
    ContextId ctx = contexts_.enterChild(parent, fn);
    CallNum call = nextCall_++;
    t.frames.push_back(Frame{ctx, call, t.stackPtr});
    ++counters_.calls;
    if (batching_) {
        appendEvent(EventKind::kEnter,
                    static_cast<std::uint64_t>(
                        static_cast<std::uint32_t>(fn)),
                    0);
        return;
    }
    dispatchEnter(ctx, call);
}

void
Guest::leave()
{
    ThreadCtx &t = thread();
    if (t.frames.empty())
        panic("Guest::leave with empty call stack");
    Frame f = t.frames.back();
    t.frames.pop_back();
    t.stackPtr = f.stackWatermark;
    if (batching_) {
        appendEvent(EventKind::kLeave,
                    static_cast<std::uint64_t>(
                        static_cast<std::uint32_t>(f.ctx)),
                    f.call);
        return;
    }
    dispatchLeave(f.ctx, f.call);
}

ContextId
Guest::currentContext() const
{
    if (const DispatchCursor *c = activeDispatchCursor()) {
        if (c->ctx == kInvalidContext)
            panic("Guest::currentContext with empty call stack");
        return c->ctx;
    }
    if (thread().frames.empty())
        panic("Guest::currentContext with empty call stack");
    return thread().frames.back().ctx;
}

CallNum
Guest::currentCall() const
{
    if (const DispatchCursor *c = activeDispatchCursor()) {
        if (c->ctx == kInvalidContext)
            panic("Guest::currentCall with empty call stack");
        return c->call;
    }
    if (thread().frames.empty())
        panic("Guest::currentCall with empty call stack");
    return thread().frames.back().call;
}

Addr
Guest::alloc(std::size_t bytes, std::string_view tag)
{
    if (bytes == 0)
        bytes = 1;
    Addr base = heapPtr_;
    // Keep allocations 64-byte aligned so line-granularity shadowing
    // never aliases two allocations onto one line.
    heapPtr_ += (bytes + 63) & ~static_cast<Addr>(63);
    if (heapPtr_ >= kStackBase)
        fatal("guest heap exhausted (%llu bytes allocated)",
              static_cast<unsigned long long>(heapBytes()));
    if (pipeline_ && allocations_.size() == allocations_.capacity())
        pipeline_->waitIdle();
    allocations_.push_back(Allocation{
        base, static_cast<std::uint64_t>(bytes),
        std::string(tag.empty() ? "anon" : tag)});
    allocCount_.store(allocations_.size(), std::memory_order_release);
    return base;
}

int
Guest::allocationOf(Addr addr) const
{
    // Allocations are bump-allocated, so the vector is base-sorted.
    // The published count (not the raw vector size) bounds the search
    // so the async consumer sees a consistent prefix.
    std::size_t lo = 0;
    std::size_t hi = allocCount_.load(std::memory_order_acquire);
    while (lo < hi) {
        std::size_t mid = (lo + hi) / 2;
        if (allocations_[mid].base <= addr)
            lo = mid + 1;
        else
            hi = mid;
    }
    if (lo == 0)
        return -1;
    const Allocation &a = allocations_[lo - 1];
    if (addr < a.base + a.size)
        return static_cast<int>(lo - 1);
    return -1;
}

Addr
Guest::stackAlloc(std::size_t bytes)
{
    ThreadCtx &t = thread();
    if (t.frames.empty())
        panic("Guest::stackAlloc outside any function");
    Addr base = t.stackPtr;
    t.stackPtr += (bytes + 7) & ~static_cast<Addr>(7);
    return base;
}

void
Guest::read(Addr addr, unsigned size)
{
    ++counters_.reads;
    counters_.readBytes += size;
    if (thread().frames.empty())
        panic("Guest::read outside any function");
    if (batching_) {
        appendEvent(EventKind::kRead, addr, size);
        return;
    }
    for (Tool *t : tools_)
        t->memRead(addr, size);
}

void
Guest::write(Addr addr, unsigned size)
{
    ++counters_.writes;
    counters_.writeBytes += size;
    if (thread().frames.empty())
        panic("Guest::write outside any function");
    if (batching_) {
        appendEvent(EventKind::kWrite, addr, size);
        return;
    }
    for (Tool *t : tools_)
        t->memWrite(addr, size);
}

void
Guest::iop(std::uint64_t n)
{
    counters_.iops += n;
    if (batching_) {
        appendEvent(EventKind::kOp, n, 0);
        return;
    }
    for (Tool *t : tools_)
        t->op(n, 0);
}

void
Guest::flop(std::uint64_t n)
{
    counters_.flops += n;
    if (batching_) {
        appendEvent(EventKind::kOp, 0, n);
        return;
    }
    for (Tool *t : tools_)
        t->op(0, n);
}

void
Guest::branch(bool taken)
{
    ++counters_.branches;
    if (batching_) {
        appendEvent(EventKind::kBranch, taken ? 1 : 0, 0);
        return;
    }
    for (Tool *t : tools_)
        t->branch(taken);
}

void
Guest::beginInput()
{
    enter(inputFn_);
}

void
Guest::endInput()
{
    if (thread().frames.empty() ||
        contexts_.function(thread().frames.back().ctx) != inputFn_) {
        panic("Guest::endInput without matching beginInput");
    }
    leave();
}

void
Guest::syscallOut(std::string_view name, Addr addr, unsigned size)
{
    enter(functions_.intern("sys_" + std::string(name)));
    // The kernel reads the user buffer in page-sized gulps.
    for (unsigned off = 0; off < size; off += 4096) {
        unsigned chunk = std::min(4096u, size - off);
        read(addr + off, chunk);
    }
    iop(2);
    leave();
}

void
Guest::syscallIn(std::string_view name, Addr addr, unsigned size)
{
    enter(functions_.intern("sys_" + std::string(name)));
    for (unsigned off = 0; off < size; off += 4096) {
        unsigned chunk = std::min(4096u, size - off);
        write(addr + off, chunk);
    }
    iop(2);
    leave();
}

ThreadId
Guest::spawnThread()
{
    if (finished_)
        panic("Guest::spawnThread after finish()");
    ThreadId tid = static_cast<ThreadId>(threads_.size());
    threads_.push_back(ThreadCtx{
        {}, kStackBase + static_cast<Addr>(tid) * kThreadStackStride});
    return tid;
}

void
Guest::switchThread(ThreadId tid)
{
    if (tid >= threads_.size())
        panic("Guest::switchThread to unknown thread %u", tid);
    if (tid == currentTid_)
        return;
    currentTid_ = tid;
    if (batching_) {
        appendEvent(EventKind::kThreadSwitch, tid, 0);
        return;
    }
    for (Tool *t : tools_)
        t->threadSwitch(tid);
}

void
Guest::roiBegin()
{
    if (roiActive_)
        panic("Guest::roiBegin: ROI already active (no nesting)");
    roiActive_ = true;
    if (batching_) {
        appendEvent(EventKind::kRoi, 1, 0);
        return;
    }
    for (Tool *t : tools_)
        t->roi(true);
}

void
Guest::roiEnd()
{
    if (!roiActive_)
        panic("Guest::roiEnd without roiBegin");
    roiActive_ = false;
    if (batching_) {
        appendEvent(EventKind::kRoi, 0, 0);
        return;
    }
    for (Tool *t : tools_)
        t->roi(false);
}

void
Guest::barrier()
{
    if (finished_)
        panic("Guest::barrier after finish()");
    if (batching_) {
        appendEvent(EventKind::kBarrier, 0, 0);
        return;
    }
    for (Tool *t : tools_)
        t->barrier();
}

void
Guest::finish()
{
    if (finished_)
        return;
    for (ThreadId tid = 0; tid < threads_.size(); ++tid) {
        if (threads_[tid].frames.empty())
            continue;
        warn("Guest::finish with %zu frames active on thread %u",
             threads_[tid].frames.size(), tid);
        switchThread(tid);
        while (!thread().frames.empty())
            leave();
    }
    finished_ = true;
    sync();
    for (Tool *t : tools_)
        t->finish();
}

bool
Guest::eventsPendingDispatch() const
{
    if (!batching_)
        return false;
    if (fillBuf_ && !fillBuf_->empty())
        return true;
    return pipeline_ && !pipeline_->idle();
}

void
Guest::saveState(ByteSink &sink)
{
    sync();
    sink.u8(1); // guest state version
    sink.str(programName_);

    std::size_t num_fns = functions_.size();
    sink.varint(num_fns);
    for (std::size_t i = 0; i < num_fns; ++i)
        sink.str(functions_.name(static_cast<FunctionId>(i)));

    std::size_t num_ctxs = contexts_.size();
    sink.varint(num_ctxs);
    for (std::size_t i = 0; i < num_ctxs; ++i) {
        ContextId ctx = static_cast<ContextId>(i);
        // kInvalidContext (-1) maps to 0, real parents to parent + 1.
        sink.varint(
            static_cast<std::uint64_t>(contexts_.parent(ctx) + 1));
        sink.varint(static_cast<std::uint64_t>(contexts_.function(ctx)));
    }

    sink.varint(threads_.size());
    for (const ThreadCtx &t : threads_) {
        sink.u64(t.stackPtr);
        sink.varint(t.frames.size());
        for (const Frame &f : t.frames) {
            sink.varint(static_cast<std::uint64_t>(f.ctx));
            sink.u64(f.call);
            sink.u64(f.stackWatermark);
        }
    }
    sink.varint(currentTid_);
    sink.u64(nextCall_);
    sink.u64(heapPtr_);

    sink.varint(allocations_.size());
    for (const Allocation &a : allocations_) {
        sink.u64(a.base);
        sink.u64(a.size);
        sink.str(a.tag);
    }

    sink.u8(roiActive_ ? 1 : 0);
    sink.u8(finished_ ? 1 : 0);

    sink.u64(counters_.reads);
    sink.u64(counters_.readBytes);
    sink.u64(counters_.writes);
    sink.u64(counters_.writeBytes);
    sink.u64(counters_.iops);
    sink.u64(counters_.flops);
    sink.u64(counters_.branches);
    sink.u64(counters_.calls);
}

bool
Guest::restoreState(ByteSource &src)
{
    if (batching_)
        return false;
    if (src.u8() != 1)
        return false;
    if (src.str() != programName_)
        return false;

    // Registries rebuild by re-interning in id order: a fresh guest
    // assigns the same dense ids, and enterChild() replays the exact
    // folding decisions the original run made (the tree prefix at each
    // step equals the original prefix).
    std::uint64_t num_fns = src.varint();
    if (num_fns > (std::uint64_t{1} << 32))
        return false;
    for (std::uint64_t i = 0; i < num_fns; ++i) {
        if (!src.ok())
            return false;
        if (functions_.intern(src.str()) != static_cast<FunctionId>(i))
            return false;
    }

    std::uint64_t num_ctxs = src.varint();
    if (num_ctxs > (std::uint64_t{1} << 32))
        return false;
    for (std::uint64_t i = 0; i < num_ctxs; ++i) {
        if (!src.ok())
            return false;
        ContextId parent =
            static_cast<ContextId>(src.varint()) - 1;
        FunctionId fn = static_cast<FunctionId>(src.varint());
        if (fn < 0 || static_cast<std::uint64_t>(fn) >= num_fns)
            return false;
        if (contexts_.enterChild(parent, fn) !=
            static_cast<ContextId>(i)) {
            return false;
        }
    }

    std::uint64_t num_threads = src.varint();
    if (num_threads == 0 || num_threads > (std::uint64_t{1} << 20))
        return false;
    threads_.clear();
    for (std::uint64_t t = 0; t < num_threads; ++t) {
        ThreadCtx tc;
        tc.stackPtr = src.u64();
        std::uint64_t num_frames = src.varint();
        if (!src.ok() || num_frames > (std::uint64_t{1} << 24))
            return false;
        tc.frames.reserve(static_cast<std::size_t>(num_frames));
        for (std::uint64_t f = 0; f < num_frames; ++f) {
            Frame fr;
            fr.ctx = static_cast<ContextId>(src.varint());
            fr.call = src.u64();
            fr.stackWatermark = src.u64();
            if (fr.ctx < 0 ||
                static_cast<std::uint64_t>(fr.ctx) >= num_ctxs) {
                return false;
            }
            tc.frames.push_back(fr);
        }
        threads_.push_back(std::move(tc));
    }
    currentTid_ = static_cast<ThreadId>(src.varint());
    if (currentTid_ >= threads_.size())
        return false;
    nextCall_ = src.u64();
    heapPtr_ = src.u64();

    std::uint64_t num_allocs = src.varint();
    if (!src.ok() || num_allocs > (std::uint64_t{1} << 32))
        return false;
    allocations_.clear();
    for (std::uint64_t i = 0; i < num_allocs; ++i) {
        Allocation a;
        a.base = src.u64();
        a.size = src.u64();
        a.tag = src.str();
        if (!src.ok())
            return false;
        allocations_.push_back(std::move(a));
    }
    allocCount_.store(allocations_.size(), std::memory_order_release);

    roiActive_ = src.u8() != 0;
    finished_ = src.u8() != 0;

    counters_.reads = src.u64();
    counters_.readBytes = src.u64();
    counters_.writes = src.u64();
    counters_.writeBytes = src.u64();
    counters_.iops = src.u64();
    counters_.flops = src.u64();
    counters_.branches = src.u64();
    counters_.calls = src.u64();
    return src.ok();
}

void
Guest::dispatchEnter(ContextId ctx, CallNum call)
{
    for (Tool *t : tools_)
        t->fnEnter(ctx, call);
}

void
Guest::dispatchLeave(ContextId ctx, CallNum call)
{
    for (Tool *t : tools_)
        t->fnLeave(ctx, call);
}

} // namespace sigil::vg
