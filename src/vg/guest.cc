#include "guest.hh"

#include <algorithm>

#include "support/logging.hh"

namespace sigil::vg {

Guest::Guest(std::string program_name, const GuestConfig &config)
    : programName_(std::move(program_name)),
      contexts_(functions_, config.maxContextDepth)
{
    inputFn_ = functions_.intern("*input*");
    threads_.push_back(ThreadCtx{{}, kStackBase});
}

void
Guest::addTool(Tool *tool)
{
    if (tool == nullptr)
        panic("Guest::addTool: null tool");
    tools_.push_back(tool);
    tool->attach(*this);
}

void
Guest::enter(FunctionId fn)
{
    if (finished_)
        panic("Guest::enter after finish()");
    ThreadCtx &t = thread();
    ContextId parent =
        t.frames.empty() ? kInvalidContext : t.frames.back().ctx;
    ContextId ctx = contexts_.enterChild(parent, fn);
    CallNum call = nextCall_++;
    t.frames.push_back(Frame{ctx, call, t.stackPtr});
    ++counters_.calls;
    dispatchEnter(ctx, call);
}

void
Guest::leave()
{
    ThreadCtx &t = thread();
    if (t.frames.empty())
        panic("Guest::leave with empty call stack");
    Frame f = t.frames.back();
    t.frames.pop_back();
    t.stackPtr = f.stackWatermark;
    dispatchLeave(f.ctx, f.call);
}

ContextId
Guest::currentContext() const
{
    if (thread().frames.empty())
        panic("Guest::currentContext with empty call stack");
    return thread().frames.back().ctx;
}

CallNum
Guest::currentCall() const
{
    if (thread().frames.empty())
        panic("Guest::currentCall with empty call stack");
    return thread().frames.back().call;
}

Addr
Guest::alloc(std::size_t bytes, std::string_view tag)
{
    if (bytes == 0)
        bytes = 1;
    Addr base = heapPtr_;
    // Keep allocations 64-byte aligned so line-granularity shadowing
    // never aliases two allocations onto one line.
    heapPtr_ += (bytes + 63) & ~static_cast<Addr>(63);
    if (heapPtr_ >= kStackBase)
        fatal("guest heap exhausted (%llu bytes allocated)",
              static_cast<unsigned long long>(heapBytes()));
    allocations_.push_back(Allocation{
        base, static_cast<std::uint64_t>(bytes),
        std::string(tag.empty() ? "anon" : tag)});
    return base;
}

int
Guest::allocationOf(Addr addr) const
{
    // Allocations are bump-allocated, so the vector is base-sorted.
    std::size_t lo = 0, hi = allocations_.size();
    while (lo < hi) {
        std::size_t mid = (lo + hi) / 2;
        if (allocations_[mid].base <= addr)
            lo = mid + 1;
        else
            hi = mid;
    }
    if (lo == 0)
        return -1;
    const Allocation &a = allocations_[lo - 1];
    if (addr < a.base + a.size)
        return static_cast<int>(lo - 1);
    return -1;
}

Addr
Guest::stackAlloc(std::size_t bytes)
{
    ThreadCtx &t = thread();
    if (t.frames.empty())
        panic("Guest::stackAlloc outside any function");
    Addr base = t.stackPtr;
    t.stackPtr += (bytes + 7) & ~static_cast<Addr>(7);
    return base;
}

void
Guest::read(Addr addr, unsigned size)
{
    ++counters_.reads;
    counters_.readBytes += size;
    if (thread().frames.empty())
        panic("Guest::read outside any function");
    for (Tool *t : tools_)
        t->memRead(addr, size);
}

void
Guest::write(Addr addr, unsigned size)
{
    ++counters_.writes;
    counters_.writeBytes += size;
    if (thread().frames.empty())
        panic("Guest::write outside any function");
    for (Tool *t : tools_)
        t->memWrite(addr, size);
}

void
Guest::iop(std::uint64_t n)
{
    counters_.iops += n;
    for (Tool *t : tools_)
        t->op(n, 0);
}

void
Guest::flop(std::uint64_t n)
{
    counters_.flops += n;
    for (Tool *t : tools_)
        t->op(0, n);
}

void
Guest::branch(bool taken)
{
    ++counters_.branches;
    for (Tool *t : tools_)
        t->branch(taken);
}

void
Guest::beginInput()
{
    enter(inputFn_);
}

void
Guest::endInput()
{
    if (thread().frames.empty() ||
        contexts_.function(thread().frames.back().ctx) != inputFn_) {
        panic("Guest::endInput without matching beginInput");
    }
    leave();
}

void
Guest::syscallOut(std::string_view name, Addr addr, unsigned size)
{
    enter(functions_.intern("sys_" + std::string(name)));
    // The kernel reads the user buffer in page-sized gulps.
    for (unsigned off = 0; off < size; off += 4096) {
        unsigned chunk = std::min(4096u, size - off);
        read(addr + off, chunk);
    }
    iop(2);
    leave();
}

void
Guest::syscallIn(std::string_view name, Addr addr, unsigned size)
{
    enter(functions_.intern("sys_" + std::string(name)));
    for (unsigned off = 0; off < size; off += 4096) {
        unsigned chunk = std::min(4096u, size - off);
        write(addr + off, chunk);
    }
    iop(2);
    leave();
}

ThreadId
Guest::spawnThread()
{
    if (finished_)
        panic("Guest::spawnThread after finish()");
    ThreadId tid = static_cast<ThreadId>(threads_.size());
    threads_.push_back(ThreadCtx{
        {}, kStackBase + static_cast<Addr>(tid) * kThreadStackStride});
    return tid;
}

void
Guest::switchThread(ThreadId tid)
{
    if (tid >= threads_.size())
        panic("Guest::switchThread to unknown thread %u", tid);
    if (tid == currentTid_)
        return;
    currentTid_ = tid;
    for (Tool *t : tools_)
        t->threadSwitch(tid);
}

void
Guest::roiBegin()
{
    if (roiActive_)
        panic("Guest::roiBegin: ROI already active (no nesting)");
    roiActive_ = true;
    for (Tool *t : tools_)
        t->roi(true);
}

void
Guest::roiEnd()
{
    if (!roiActive_)
        panic("Guest::roiEnd without roiBegin");
    roiActive_ = false;
    for (Tool *t : tools_)
        t->roi(false);
}

void
Guest::barrier()
{
    if (finished_)
        panic("Guest::barrier after finish()");
    for (Tool *t : tools_)
        t->barrier();
}

void
Guest::finish()
{
    if (finished_)
        return;
    for (ThreadId tid = 0; tid < threads_.size(); ++tid) {
        if (threads_[tid].frames.empty())
            continue;
        warn("Guest::finish with %zu frames active on thread %u",
             threads_[tid].frames.size(), tid);
        switchThread(tid);
        while (!thread().frames.empty())
            leave();
    }
    finished_ = true;
    for (Tool *t : tools_)
        t->finish();
}

void
Guest::dispatchEnter(ContextId ctx, CallNum call)
{
    for (Tool *t : tools_)
        t->fnEnter(ctx, call);
}

void
Guest::dispatchLeave(ContextId ctx, CallNum call)
{
    for (Tool *t : tools_)
        t->fnLeave(ctx, call);
}

} // namespace sigil::vg
