/**
 * @file
 * Registry of function names observed by the instrumentation layer.
 *
 * Mirrors the role of debug symbols under Valgrind: every instrumented
 * function registers a stable name once and is afterwards identified by a
 * dense FunctionId.
 */

#ifndef SIGIL_VG_FUNCTION_REGISTRY_HH
#define SIGIL_VG_FUNCTION_REGISTRY_HH

#include <atomic>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "vg/types.hh"

namespace sigil::vg {

/** Interns function names to dense ids. */
class FunctionRegistry
{
  public:
    /** Intern a name; repeated registration returns the same id. */
    FunctionId intern(std::string_view name);

    /** Look up a name without interning; kInvalidFunction if absent. */
    FunctionId find(std::string_view name) const;

    /** Name of a registered function. */
    const std::string &name(FunctionId id) const;

    std::size_t
    size() const
    {
        return published_.load(std::memory_order_acquire);
    }

    /**
     * Hook run before any reallocation of the id->name table. The async
     * pipeline installs a drain barrier here so a concurrent reader
     * (the tool consumer thread) never sees the storage move. Ids are
     * published with release/acquire ordering, so lookups of any id
     * that reached a reader are race-free.
     */
    void setGrowthBarrier(std::function<void()> barrier)
    {
        growthBarrier_ = std::move(barrier);
    }

  private:
    std::vector<std::string> names_;
    std::unordered_map<std::string, FunctionId> byName_;
    std::atomic<std::size_t> published_{0};
    std::function<void()> growthBarrier_;
};

} // namespace sigil::vg

#endif // SIGIL_VG_FUNCTION_REGISTRY_HH
