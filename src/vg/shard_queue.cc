#include "shard_queue.hh"

#include <chrono>
#include <thread>

namespace sigil::vg {

namespace {

/**
 * Progressive backoff for a full/empty ring: spin briefly (the common
 * case resolves within a few consumer batches), then sleep in small
 * steps so a stalled peer costs microseconds of latency, not a core.
 */
void
backoff(int &spins)
{
    if (spins < 64) {
        ++spins;
        std::this_thread::yield();
        return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
}

} // namespace

ShardQueue::ShardQueue(std::size_t capacity)
{
    std::size_t cap = 8;
    while (cap < capacity)
        cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
}

void
ShardQueue::push(const ShardRecord &record)
{
    std::uint64_t t = tail_.load(std::memory_order_relaxed);
    if (t - cachedHead_ > mask_) {
        cachedHead_ = head_.load(std::memory_order_acquire);
        int spins = 0;
        while (t - cachedHead_ > mask_) {
            backoff(spins);
            cachedHead_ = head_.load(std::memory_order_acquire);
        }
    }
    slots_[t & mask_] = record;
    tail_.store(t + 1, std::memory_order_release);
}

std::size_t
ShardQueue::pop(ShardRecord *out, std::size_t max)
{
    std::uint64_t h = head_.load(std::memory_order_relaxed);
    int spins = 0;
    for (;;) {
        std::uint64_t avail =
            tail_.load(std::memory_order_acquire) - h;
        if (avail != 0) {
            std::size_t n = static_cast<std::size_t>(
                avail < max ? avail : max);
            for (std::size_t i = 0; i < n; ++i)
                out[i] = slots_[(h + i) & mask_];
            head_.store(h + n, std::memory_order_release);
            return n;
        }
        if (stopped_.load(std::memory_order_acquire)) {
            // stop() happens-after the producer's final push, so one
            // re-read of tail_ after observing the flag cannot miss a
            // record.
            if (tail_.load(std::memory_order_acquire) != h)
                continue;
            return 0;
        }
        backoff(spins);
    }
}

void
ShardQueue::stop()
{
    stopped_.store(true, std::memory_order_release);
}

} // namespace sigil::vg
