/**
 * @file
 * Structured errors and recovery policy for trace and profile
 * ingestion.
 *
 * The record-once/analyze-many workflow makes a trace file the most
 * valuable artifact of a profiling run: a truncated or bit-flipped
 * capture must not take the analysis process down with it. Parsers
 * therefore report malformed input as a TraceError — cause, absolute
 * byte offset, block index, line number — instead of exiting, and a
 * replay caller picks a ReplayPolicy:
 *
 *  - Strict: stop at the first error; the error (with its exact
 *    position) is returned in the ReplayReport.
 *  - Salvage: skip the damaged region, resynchronize on the next valid
 *    block boundary, reconcile guest state (function table, call
 *    depth, ROI), and keep going. Every skip is accounted in the
 *    ReplayReport so downstream analysis knows exactly how much of
 *    the stream it is missing.
 */

#ifndef SIGIL_VG_TRACE_ERROR_HH
#define SIGIL_VG_TRACE_ERROR_HH

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace sigil::vg {

/** What went wrong while decoding a trace, profile, or checkpoint. */
enum class TraceErrorCause
{
    Io,             ///< underlying stream read failed
    BadMagic,       ///< file does not start with a known magic
    BadVersion,     ///< known magic, unsupported version
    Truncated,      ///< stream ended inside a record or block
    HeaderCrc,      ///< block header checksum mismatch (SGB2)
    PayloadCrc,     ///< block payload checksum mismatch (SGB2)
    VarintOverflow, ///< varint longer than 10 bytes / 64 bits
    BoundsExceeded, ///< record claims more bytes than its block holds
    UnknownSection, ///< unrecognized section tag
    UnknownOpcode,  ///< unrecognized event opcode
    UnknownFunction,///< event references an id with no function record
    Decompress,     ///< compressed payload does not decompress (SGB3)
    BadRecord,      ///< malformed record body (text formats: bad token)
    StateMismatch,  ///< checkpoint does not match the replay config
    Unsupported,    ///< valid input the reader cannot process
};

/** Human-readable name of a cause ("truncated", "payload-crc", ...). */
const char *traceErrorCauseName(TraceErrorCause cause);

/** One structured ingestion error with its position in the input. */
struct TraceError
{
    TraceErrorCause cause = TraceErrorCause::Io;

    /** Absolute byte offset in the input stream, if known. */
    std::uint64_t byteOffset = 0;

    /** Index of the enclosing event block (binary formats); -1 n/a. */
    std::int64_t blockIndex = -1;

    /** 1-based line number (text formats); 0 = not applicable. */
    std::uint64_t line = 0;

    /** Cause-specific detail, including the offending token if any. */
    std::string detail;

    /** Full message: cause, position, and detail. */
    std::string message() const;
};

/** How a replay reacts to malformed input. */
enum class ReplayPolicy
{
    Strict,  ///< stop at the first error
    Salvage, ///< skip to the next valid block and continue
};

/** Options of a fault-tolerant replay. */
struct ReplayOptions
{
    ReplayPolicy policy = ReplayPolicy::Strict;

    /** Individual errors kept in ReplayReport::errors (salvage). */
    std::size_t maxRecordedErrors = 32;
};

/**
 * Accounting of one replay: what was delivered, what was lost, and
 * why. In salvage mode `eventsDelivered + eventsSkipped` equals the
 * recorded event total whenever the trailer (or SGB2 block headers
 * past the damage) could be read; `truncated` flags the case where the
 * tail is simply gone and the loss cannot be bounded from the file.
 */
struct ReplayReport
{
    /** @name Delivered work */
    /// @{
    std::uint64_t eventsDelivered = 0;
    std::uint64_t blocksDelivered = 0;
    /// @}

    /** @name Quantified loss (salvage mode) */
    /// @{
    std::uint64_t eventsSkipped = 0;
    std::uint64_t blocksSkipped = 0;
    std::uint64_t bytesSkipped = 0;
    /** Duplicate/stale blocks dropped without loss of new events. */
    std::uint64_t blocksStale = 0;
    /** Forward scans that found a new valid block header. */
    std::uint64_t resyncs = 0;
    /// @}

    /** @name Guest-state reconciliation (salvage mode) */
    /// @{
    /** Leave events dropped because the call stack was already empty. */
    std::uint64_t leavesDropped = 0;
    /** ROI transitions dropped because the state already matched. */
    std::uint64_t roiDropped = 0;
    /** Placeholder functions interned for ids lost with their block. */
    std::uint64_t functionsSynthesized = 0;
    /// @}

    /** Total events the recorder claims to have written (trailer). */
    std::uint64_t totalEventsRecorded = 0;
    /** True when the end marker / trailer was reached. */
    bool sawTrailer = false;
    /** True when the stream ended before the end marker. */
    bool truncated = false;
    /**
     * True when the recorder's clean-shutdown trailer frame was seen
     * (SGB2/SGB3 only): the recording process reached finish() and
     * flushed everything, as opposed to crashing or being killed
     * mid-run. A salvageable file without this flag is a crash
     * capture — every fully-framed event is still recovered, but the
     * tail of the run is missing by construction. Always false for
     * SGB1 and text traces, which predate the trailer.
     */
    bool cleanShutdown = false;

    /** First maxRecordedErrors errors encountered (salvage mode). */
    std::vector<TraceError> errors;

    /** The stopping error (strict mode, or an unrecoverable one). */
    std::optional<TraceError> error;

    /** True when the replay finished without a stopping error. */
    bool ok() const { return !error.has_value(); }

    /** True when any corruption at all was observed. */
    bool
    sawCorruption() const
    {
        return !errors.empty() || error.has_value() || truncated ||
               blocksSkipped > 0 || bytesSkipped > 0;
    }

    /** One-line human-readable summary of the replay. */
    std::string summary() const;

    /**
     * Full multi-line rendering: the summary line plus reconciliation
     * counters, trailer/shutdown status, and every recorded error —
     * everything needed to diagnose a degraded replay without a
     * debugger.
     */
    std::string toString() const;
};

/** Streams toString(). */
std::ostream &operator<<(std::ostream &os, const ReplayReport &report);

} // namespace sigil::vg

#endif // SIGIL_VG_TRACE_ERROR_HH
