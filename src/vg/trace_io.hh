/**
 * @file
 * Raw guest-event trace recording and replay.
 *
 * TraceRecorder is a Tool that streams the primitive event sequence
 * (function enters/leaves, reads, writes, ops, branches) plus the
 * function name table to a text file. replayTrace() drives a fresh
 * Guest — with any set of analysis tools attached — through exactly the
 * same event sequence. This is the paper's "collect once" model taken
 * to its limit: one expensive instrumented run can feed any number of
 * later analyses (different Sigil modes, different cache
 * configurations) without rerunning the program.
 */

#ifndef SIGIL_VG_TRACE_IO_HH
#define SIGIL_VG_TRACE_IO_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "vg/guest.hh"
#include "vg/tool.hh"

namespace sigil::vg {

/** Streams the raw event sequence to an output stream. */
class TraceRecorder : public Tool
{
  public:
    /** The stream must outlive the recorder. */
    explicit TraceRecorder(std::ostream &os);

    void attach(const Guest &guest) override;
    void fnEnter(ContextId ctx, CallNum call) override;
    void fnLeave(ContextId ctx, CallNum call) override;
    void memRead(Addr addr, unsigned size) override;
    void memWrite(Addr addr, unsigned size) override;
    void op(std::uint64_t iops, std::uint64_t flops) override;
    void branch(bool taken) override;
    void threadSwitch(ThreadId tid) override;
    void barrier() override;
    void finish() override;

    /** Events written so far. */
    std::uint64_t eventsWritten() const { return events_; }

  private:
    /** Emit the name-table entry for fn if not yet emitted. */
    void ensureFunction(FunctionId fn);

    std::ostream &os_;
    std::vector<bool> emitted_;
    std::uint64_t events_ = 0;
    bool finished_ = false;
};

/**
 * Replay a recorded trace into a guest. The guest must be freshly
 * constructed; attach analysis tools before calling. Calls
 * guest.finish() at the trace's end.
 *
 * @return number of events replayed. fatal() on malformed input.
 */
std::uint64_t replayTrace(std::istream &is, Guest &guest);

/** Replay from a file. */
std::uint64_t replayTraceFile(const std::string &path, Guest &guest);

} // namespace sigil::vg

#endif // SIGIL_VG_TRACE_IO_HH
