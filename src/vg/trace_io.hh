/**
 * @file
 * Raw guest-event trace recording and replay.
 *
 * TraceRecorder is a Tool that streams the primitive event sequence
 * (function enters/leaves, reads, writes, ops, branches, thread
 * switches, barriers, ROI marks) plus the function name table to a text
 * file. BinaryTraceRecorder writes the same sequence in a block-framed
 * binary format — legacy "SGB1" (varint fields, zigzag-delta addresses)
 * or the hardened "SGB2" default, which adds a per-block frame header
 * with an explicit payload length and CRC32C checksums over both the
 * header and the payload, so a reader validates every block before
 * dispatching a single event from it.
 *
 * replayTrace()/replayBinaryTrace() drive a fresh Guest — with any set
 * of analysis tools attached — through exactly the same event sequence;
 * replayTraceFile() sniffs the format. The ReplayOptions overloads add
 * fault tolerance: under ReplayPolicy::Salvage a damaged region is
 * skipped, the reader resynchronizes on the next valid SGB2 block
 * header, guest state is reconciled, and the loss is quantified in the
 * returned ReplayReport instead of killing the process. This is the
 * paper's "collect once" model taken to its limit: one expensive
 * instrumented run can feed any number of later analyses, so the
 * recorded trace is the artifact that must survive.
 */

#ifndef SIGIL_VG_TRACE_IO_HH
#define SIGIL_VG_TRACE_IO_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "support/serial.hh"
#include "vg/guest.hh"
#include "vg/tool.hh"
#include "vg/trace_error.hh"

namespace sigil::vg {

/** Streams the raw event sequence to an output stream as text. */
class TraceRecorder : public Tool
{
  public:
    /** The stream must outlive the recorder. */
    explicit TraceRecorder(std::ostream &os);

    void attach(const Guest &guest) override;
    void fnEnter(ContextId ctx, CallNum call) override;
    void fnLeave(ContextId ctx, CallNum call) override;
    void memRead(Addr addr, unsigned size) override;
    void memWrite(Addr addr, unsigned size) override;
    void op(std::uint64_t iops, std::uint64_t flops) override;
    void branch(bool taken) override;
    void threadSwitch(ThreadId tid) override;
    void barrier() override;
    void roi(bool active) override;
    void finish() override;

    /** Native batch consumer (avoids per-event virtual dispatch). */
    void processBatch(const EventBuffer &batch) override;

    /** Events written so far. */
    std::uint64_t eventsWritten() const { return events_; }

  private:
    /** Emit the name-table entry for fn if not yet emitted. */
    void ensureFunction(FunctionId fn);

    /** Formatting buffer: one stream write per ~64 KiB, not per event. */
    void put(char tag);
    void put(char tag, std::uint64_t v0);
    void put(char tag, std::uint64_t v0, std::uint64_t v1);
    void maybeFlush();

    std::ostream &os_;
    std::string buf_;
    std::vector<bool> emitted_;
    std::uint64_t events_ = 0;
    bool finished_ = false;
};

/**
 * One event frame as described by the seek-index trailer (SGB2/SGB3):
 * where it starts and which slice of the event sequence it carries.
 * Gives segment-parallel replay its O(1) cut points (FORMATS.md §3.5).
 */
struct SeekIndexEntry
{
    std::uint64_t offset = 0; ///< absolute offset of the frame sync
    std::uint64_t firstEventSeq = 0;
    std::uint64_t eventCount = 0;
};

/**
 * Read the seek-index trailer from a trace image. Returns one entry
 * per event frame, in stream order, or an empty vector when the trace
 * has no (intact) index — older recorders, SGB1, damaged tails. A
 * missing index is never an error: callers fall back to a sequential
 * frame-chain scan (scanSgb2Blocks).
 */
std::vector<SeekIndexEntry> readSeekIndex(std::string_view trace);

/** On-disk flavour of the binary trace. */
enum class TraceFormat
{
    SGB1, ///< legacy unframed sections (no checksums, no lengths)
    SGB2, ///< CRC32C-framed blocks with explicit lengths (default)
    SGB3, ///< SGB2 framing + per-frame LZ block compression
};

/**
 * Streams the raw event sequence in a binary trace format.
 *
 * Both formats share the file preamble and the per-event encoding;
 * they differ in the block framing (see docs/FORMATS.md §3.1/§3.2):
 *
 *   SGB1:  "SGB1" magic, varint version, varint len + program name,
 *          then unframed sections: 0x01 function record, 0x02 event
 *          block (varint count + events), 0x00 end. The address delta
 *          chain persists across blocks.
 *
 *   SGB2:  "SGB2" magic, varint version, varint len + program name,
 *          then self-describing frames, each: 4 sync bytes, a tag
 *          byte, varint block sequence number, varint first event
 *          sequence, varint event count, varint payload length, the
 *          payload CRC32C, and a CRC32C over the frame header itself.
 *          The address delta chain resets at every block boundary so
 *          any block can be decoded (or skipped) independently.
 *
 *   SGB3:  SGB2 framing with distinct magic/sync bytes, a flags byte
 *          (bit 0: payload stored LZ-compressed, see support/lz.hh)
 *          and an uncompressed-length varint in each frame header.
 *          The CRCs cover the stored (possibly compressed) bytes, so
 *          frame validation never decompresses. Frames that do not
 *          shrink are stored raw. See docs/FORMATS.md §3.3.
 *
 * Event encoding inside a block (one opcode byte each): reads/writes
 * carry a zigzag varint delta from the previous access address plus a
 * varint size; ops carry two varints; enters a varint function id;
 * thread switches a varint thread id; branches, barriers, and ROI
 * marks fold their flag into the opcode.
 */
class BinaryTraceRecorder : public Tool
{
  public:
    /** Default events per block before the block is framed and written. */
    static constexpr std::size_t kBlockEvents = 4096;

    /**
     * The stream must outlive the recorder (open it in binary mode).
     *
     * @param block_events Events per block; smaller blocks bound the
     *        loss radius of a corrupted block (and the checkpoint
     *        interval granularity) at a small framing-overhead cost.
     */
    explicit BinaryTraceRecorder(std::ostream &os,
                                 TraceFormat format = TraceFormat::SGB2,
                                 std::size_t block_events = kBlockEvents);

    ~BinaryTraceRecorder() override;

    /**
     * Attaching to a guest whose GuestConfig::asyncWriter is set moves
     * frame serialization — CRC32C and, for SGB3, LZ compression —
     * onto a background writer thread fed by a bounded queue of
     * finished blocks (GuestConfig::writerQueueFrames deep; a full
     * queue blocks the guest thread as backpressure). The bytes that
     * reach the stream are bit-identical to synchronous recording.
     * finish() drains and joins the writer.
     */
    void attach(const Guest &guest) override;
    void fnEnter(ContextId ctx, CallNum call) override;
    void fnLeave(ContextId ctx, CallNum call) override;
    void memRead(Addr addr, unsigned size) override;
    void memWrite(Addr addr, unsigned size) override;
    void op(std::uint64_t iops, std::uint64_t flops) override;
    void branch(bool taken) override;
    void threadSwitch(ThreadId tid) override;
    void barrier() override;
    void roi(bool active) override;
    void finish() override;

    /** Native batch consumer: encodes straight from the lanes. */
    void processBatch(const EventBuffer &batch) override;

    /** Events written so far. */
    std::uint64_t eventsWritten() const { return events_; }

    TraceFormat format() const { return format_; }

    /** True when a background writer thread is active. */
    bool asyncActive() const { return writer_ != nullptr; }

    /**
     * Deepest the async writer's frame queue ever got (0 in
     * synchronous mode): how far the guest thread ran ahead of the
     * writer before backpressure or the writer caught up.
     */
    std::uint64_t writerQueuePeak() const;

  private:
    struct AsyncWriter;
    friend struct AsyncWriter;

    void ensureFunction(FunctionId fn);
    void access(std::uint8_t opcode, Addr addr, unsigned size);
    void event(std::uint8_t opcode);
    void enterEvent(std::uint64_t fn_id);
    void flushBlock();
    void writeFrame(std::uint8_t tag, std::string_view payload,
                    std::uint64_t first_event, std::uint64_t event_count);
    /** Emit the seek-index trailer frame + footer (SGB2/SGB3 only). */
    void writeSeekIndex();
    /** Route one finished frame: enqueue (async) or write (sync). */
    void emitFrame(std::uint8_t tag, std::string &payload,
                   std::uint64_t first_event, std::uint64_t event_count);

    std::ostream &os_;
    TraceFormat format_;
    std::size_t maxBlockEvents_;
    std::string block_;      ///< encoded events of the open block
    std::string pendingFns_; ///< fn records to emit before the block
    std::string comp_;       ///< compression scratch buffer (SGB3)
    std::size_t blockEvents_ = 0;
    std::uint64_t blockSeq_ = 0; ///< frames written (SGB2)
    std::uint64_t prevAddr_ = 0;
    std::vector<bool> emitted_;
    std::uint64_t events_ = 0;
    bool finished_ = false;
    /** Bytes on the stream so far; owned by the frame-writing thread. */
    std::uint64_t bytesWritten_ = 0;
    std::vector<SeekIndexEntry> seekIndex_;
    std::unique_ptr<AsyncWriter> writer_;
};

/**
 * Durable file sink for trace recording: crash-safe on the outside,
 * prompt on the inside.
 *
 * Writes go to `<path>.tmp` through an unbuffered file descriptor, so
 * every frame the recorder emits reaches the kernel immediately — a
 * SIGKILL loses at most the frame being written, which salvage replay
 * skips by construction. An optional fsync policy bounds what a power
 * failure can lose: after every `fsync_interval_bytes` written the
 * file is fsync'd (0 = only at finalize).
 *
 * finalize() makes the capture atomic: fsync, close, rename onto the
 * final path, and fsync the directory, so `path` either does not exist
 * or names a complete capture ending in the clean-shutdown trailer. A
 * crash before finalize() leaves only `<path>.tmp` — a salvageable
 * crash capture that never masquerades as a finished one.
 */
class DurableTraceWriter
{
  public:
    explicit DurableTraceWriter(const std::string &path,
                                std::size_t fsync_interval_bytes = 0);

    /** Without finalize(): closes the fd, leaves `<path>.tmp` behind. */
    ~DurableTraceWriter();

    DurableTraceWriter(const DurableTraceWriter &) = delete;
    DurableTraceWriter &operator=(const DurableTraceWriter &) = delete;

    /** False when the tmp file could not be created. */
    bool ok() const { return ok_; }

    /** Why ok() is false (or finalize() failed). */
    const std::string &errorDetail() const { return error_; }

    /** The stream to hand to a recorder. Valid while this lives. */
    std::ostream &stream() { return *os_; }

    /** Where bytes land until finalize(). */
    const std::string &tempPath() const { return tmpPath_; }

    /** fsync + close + rename onto the final path. Idempotent. */
    bool finalize();

    /** fsyncs issued so far (including the finalize one). */
    std::uint64_t syncCount() const;

  private:
    class FdBuf;
    std::unique_ptr<FdBuf> buf_;
    std::unique_ptr<std::ostream> os_;
    std::string path_;
    std::string tmpPath_;
    std::string error_;
    bool ok_ = false;
    bool finalized_ = false;
};

/**
 * Replay a recorded text trace into a guest. The guest must be freshly
 * constructed; attach analysis tools before calling. Calls
 * guest.finish() at the trace's end.
 *
 * @return number of events replayed. fatal() on malformed input.
 */
std::uint64_t replayTrace(std::istream &is, Guest &guest);

/**
 * Fault-tolerant text replay. Strict stops (and reports) at the first
 * malformed line with its line number, byte offset, and offending
 * token; Salvage skips malformed lines and keeps replaying.
 */
ReplayReport replayTrace(std::istream &is, Guest &guest,
                         const ReplayOptions &options);

/**
 * Replay a binary trace (SGB1 or SGB2, sniffed from the magic) into a
 * guest. fatal() on malformed input.
 */
std::uint64_t replayBinaryTrace(std::istream &is, Guest &guest);

/**
 * Fault-tolerant binary replay. Under Salvage, SGB2 corruption is
 * skipped block-by-block (resynchronizing on the frame sync bytes) and
 * quantified in the report; SGB1 has no per-block framing to recover
 * with, so damage ends the replay at the last decodable event with the
 * loss flagged as truncation.
 */
ReplayReport replayBinaryTrace(std::istream &is, Guest &guest,
                               const ReplayOptions &options);

/**
 * Zero-copy trace input: maps a trace file read-only into the address
 * space so replay decodes frame payloads in place, with a graceful
 * read()-stream fallback for pipes, FIFOs, and anything else mmap
 * cannot handle (the fallback slurps into an owned buffer, preserving
 * behaviour at the cost of the copy). The view stays valid for the
 * lifetime of this object.
 */
class MappedTraceFile
{
  public:
    explicit MappedTraceFile(const std::string &path);
    ~MappedTraceFile();

    MappedTraceFile(const MappedTraceFile &) = delete;
    MappedTraceFile &operator=(const MappedTraceFile &) = delete;

    /** False when the file could not be opened or read at all. */
    bool ok() const { return ok_; }

    /** True when the bytes are a zero-copy memory mapping. */
    bool mapped() const { return map_ != nullptr; }

    /** The file's bytes (empty for an empty file). */
    std::string_view view() const { return view_; }

    /** Why ok() is false. */
    const std::string &errorDetail() const { return error_; }

  private:
    void *map_ = nullptr;
    std::size_t mapLen_ = 0;
    std::string owned_;
    std::string_view view_;
    std::string error_;
    bool ok_ = false;
};

/** Replay from a file, sniffing text vs. binary format. */
std::uint64_t replayTraceFile(const std::string &path, Guest &guest);

/** Fault-tolerant variant of replayTraceFile(). */
ReplayReport replayTraceFile(const std::string &path, Guest &guest,
                             const ReplayOptions &options);

/**
 * Incremental SGB2 replay: processes the trace one frame at a time so
 * a driver can interleave work between blocks — the checkpoint layer
 * uses this to snapshot replay state at block boundaries and to resume
 * a replay mid-stream. Also replays SGB1 (one step per section), but
 * without salvage or mid-stream resume.
 *
 * When the owning guest's GuestConfig::decodeThreads is greater than
 * one (and the trace is SGB2/SGB3), frame payloads are CRC-verified
 * and pre-decoded by a pool of worker threads running ahead of the
 * step() consumer; delivery order, salvage accounting, and every
 * report counter stay bit-identical to the serial decoder (see
 * DESIGN.md §4.6).
 */
class BinaryReplaySession
{
  public:
    /** Slurps the stream; the guest must outlive the session. */
    BinaryReplaySession(std::istream &is, Guest &guest,
                        const ReplayOptions &options = ReplayOptions{});

    /**
     * Zero-copy variant: replays directly out of `data` (for example a
     * MappedTraceFile view), which must stay valid and unchanged for
     * the session's lifetime.
     */
    BinaryReplaySession(std::string_view data, Guest &guest,
                        const ReplayOptions &options = ReplayOptions{});

    ~BinaryReplaySession();

    BinaryReplaySession(const BinaryReplaySession &) = delete;
    BinaryReplaySession &operator=(const BinaryReplaySession &) = delete;

    /**
     * Process the next frame (salvaging past damage first if
     * configured). Returns false once the trace is exhausted, the end
     * marker was seen, or a strict-mode error stopped the replay.
     */
    bool step();

    /** True when step() has nothing left to do. */
    bool done() const;

    /** Running accounting (final after finish()). */
    const ReplayReport &report() const;

    /**
     * Finish the replay: calls guest.finish() (unless a strict error
     * stopped the session) and returns the final report.
     */
    ReplayReport finish();

    /** Event blocks fully processed so far (delivered or skipped). */
    std::uint64_t blocksProcessed() const;

    /** Absolute byte offset of the next unread frame. */
    std::uint64_t nextOffset() const;

    /**
     * Serialize the reader-side replay state (position, function-id
     * map, accounting) so a checkpoint can resume mid-stream. Only
     * meaningful at a step() boundary of an SGB2 trace.
     */
    void saveReaderState(ByteSink &sink) const;

    /**
     * Restore reader state saved by saveReaderState() over the same
     * trace. The guest must already be restored to the matching
     * snapshot. Returns false (leaving the session unusable) if the
     * state is corrupt or inconsistent with the trace.
     */
    bool restoreReaderState(ByteSource &src);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** One SGB2/SGB3 frame located in a trace buffer (fault-injection aid). */
struct Sgb2BlockInfo
{
    std::uint64_t offset = 0; ///< absolute offset of the sync bytes
    std::uint64_t length = 0; ///< frame header + stored payload bytes
    std::uint8_t tag = 0;
    std::uint64_t firstEventSeq = 0;
    std::uint64_t eventCount = 0;
    bool compressed = false;  ///< SGB3 frame stored LZ-compressed
    std::uint64_t rawLen = 0; ///< uncompressed payload bytes (SGB3)
};

/**
 * Locate every valid SGB2/SGB3 frame in a trace image (the flavour is
 * sniffed from the file magic; a magic-less buffer is scanned as
 * SGB2). Used by the fault-injection harness to aim corruption at
 * specific blocks and by tests to reason about frame layout; returns
 * an empty vector for input without framed blocks.
 */
std::vector<Sgb2BlockInfo> scanSgb2Blocks(std::string_view trace);

/**
 * Test hook: invoked by every decode worker at the start of each frame
 * job with the job's block sequence number. Lets the stall-recovery
 * tests wedge a worker deterministically; never set outside tests.
 * Pass nullptr to clear. Not thread-safe against running sessions —
 * set it before constructing one and clear it after destruction.
 */
void setDecodeWorkerDelayForTesting(void (*hook)(std::uint64_t block_seq));

/**
 * Convert a text trace to the binary format by replaying it through a
 * BinaryTraceRecorder. The program name is the converted trace's header
 * (the text header's name is informational only).
 *
 * @return number of events converted.
 */
std::uint64_t convertTextTraceToBinary(std::istream &text,
                                       std::ostream &bin,
                                       const std::string &program,
                                       TraceFormat format
                                       = TraceFormat::SGB2);

} // namespace sigil::vg

#endif // SIGIL_VG_TRACE_IO_HH
