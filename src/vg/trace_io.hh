/**
 * @file
 * Raw guest-event trace recording and replay.
 *
 * TraceRecorder is a Tool that streams the primitive event sequence
 * (function enters/leaves, reads, writes, ops, branches, thread
 * switches, barriers, ROI marks) plus the function name table to a text
 * file. BinaryTraceRecorder writes the same sequence in a block-framed
 * binary format (magic "SGB1") with varint fields and zigzag-delta
 * encoded addresses — a fraction of the text size and several times
 * faster to replay. replayTrace()/replayBinaryTrace() drive a fresh
 * Guest — with any set of analysis tools attached — through exactly the
 * same event sequence; replayTraceFile() sniffs the format. This is the
 * paper's "collect once" model taken to its limit: one expensive
 * instrumented run can feed any number of later analyses (different
 * Sigil modes, different cache configurations) without rerunning the
 * program.
 */

#ifndef SIGIL_VG_TRACE_IO_HH
#define SIGIL_VG_TRACE_IO_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "vg/guest.hh"
#include "vg/tool.hh"

namespace sigil::vg {

/** Streams the raw event sequence to an output stream as text. */
class TraceRecorder : public Tool
{
  public:
    /** The stream must outlive the recorder. */
    explicit TraceRecorder(std::ostream &os);

    void attach(const Guest &guest) override;
    void fnEnter(ContextId ctx, CallNum call) override;
    void fnLeave(ContextId ctx, CallNum call) override;
    void memRead(Addr addr, unsigned size) override;
    void memWrite(Addr addr, unsigned size) override;
    void op(std::uint64_t iops, std::uint64_t flops) override;
    void branch(bool taken) override;
    void threadSwitch(ThreadId tid) override;
    void barrier() override;
    void roi(bool active) override;
    void finish() override;

    /** Native batch consumer (avoids per-event virtual dispatch). */
    void processBatch(const EventBuffer &batch) override;

    /** Events written so far. */
    std::uint64_t eventsWritten() const { return events_; }

  private:
    /** Emit the name-table entry for fn if not yet emitted. */
    void ensureFunction(FunctionId fn);

    /** Formatting buffer: one stream write per ~64 KiB, not per event. */
    void put(char tag);
    void put(char tag, std::uint64_t v0);
    void put(char tag, std::uint64_t v0, std::uint64_t v1);
    void maybeFlush();

    std::ostream &os_;
    std::string buf_;
    std::vector<bool> emitted_;
    std::uint64_t events_ = 0;
    bool finished_ = false;
};

/**
 * Streams the raw event sequence in the binary trace format:
 *
 *   "SGB1"                       magic
 *   varint version (=1)
 *   varint len, program name
 *   sections until the end marker:
 *     0x01  function record: varint id, varint len, name bytes
 *           (always precedes the first block referencing the id)
 *     0x02  event block: varint event count, encoded events
 *     0x00  end marker
 *
 * Event encoding inside a block (one opcode byte each): reads/writes
 * carry a zigzag varint delta from the previous access address (the
 * delta chain persists across blocks) plus a varint size; ops carry two
 * varints; enters a varint function id; thread switches a varint thread
 * id; branches, barriers, and ROI marks fold their flag into the
 * opcode.
 */
class BinaryTraceRecorder : public Tool
{
  public:
    /** Events per block before the block is framed and written. */
    static constexpr std::size_t kBlockEvents = 4096;

    /** The stream must outlive the recorder (open it in binary mode). */
    explicit BinaryTraceRecorder(std::ostream &os);

    void attach(const Guest &guest) override;
    void fnEnter(ContextId ctx, CallNum call) override;
    void fnLeave(ContextId ctx, CallNum call) override;
    void memRead(Addr addr, unsigned size) override;
    void memWrite(Addr addr, unsigned size) override;
    void op(std::uint64_t iops, std::uint64_t flops) override;
    void branch(bool taken) override;
    void threadSwitch(ThreadId tid) override;
    void barrier() override;
    void roi(bool active) override;
    void finish() override;

    /** Native batch consumer: encodes straight from the lanes. */
    void processBatch(const EventBuffer &batch) override;

    /** Events written so far. */
    std::uint64_t eventsWritten() const { return events_; }

  private:
    void ensureFunction(FunctionId fn);
    void access(std::uint8_t opcode, Addr addr, unsigned size);
    void event(std::uint8_t opcode);
    void flushBlock();

    std::ostream &os_;
    std::string block_;      ///< encoded events of the open block
    std::string pendingFns_; ///< fn records to emit before the block
    std::size_t blockEvents_ = 0;
    std::uint64_t prevAddr_ = 0;
    std::vector<bool> emitted_;
    std::uint64_t events_ = 0;
    bool finished_ = false;
};

/**
 * Replay a recorded text trace into a guest. The guest must be freshly
 * constructed; attach analysis tools before calling. Calls
 * guest.finish() at the trace's end.
 *
 * @return number of events replayed. fatal() on malformed input.
 */
std::uint64_t replayTrace(std::istream &is, Guest &guest);

/** Replay a binary ("SGB1") trace into a guest. */
std::uint64_t replayBinaryTrace(std::istream &is, Guest &guest);

/** Replay from a file, sniffing text vs. binary format. */
std::uint64_t replayTraceFile(const std::string &path, Guest &guest);

/**
 * Convert a text trace to the binary format by replaying it through a
 * BinaryTraceRecorder. The program name is the converted trace's header
 * (the text header's name is informational only).
 *
 * @return number of events converted.
 */
std::uint64_t convertTextTraceToBinary(std::istream &text,
                                       std::ostream &bin,
                                       const std::string &program);

} // namespace sigil::vg

#endif // SIGIL_VG_TRACE_IO_HH
