#include "fault_injection.hh"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "support/rng.hh"
#include "vg/trace_io.hh"

namespace sigil::vg {

namespace {

std::string
describe(const char *fmt, std::uint64_t a, std::uint64_t b,
         std::uint64_t c)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), fmt, static_cast<unsigned long long>(a),
                  static_cast<unsigned long long>(b),
                  static_cast<unsigned long long>(c));
    return buf;
}

std::string
applyBitFlips(Rng &rng, std::string &trace)
{
    std::uint64_t bits = 1 + rng.nextBounded(8);
    std::uint64_t lo = trace.size(), hi = 0;
    for (std::uint64_t i = 0; i < bits; ++i) {
        std::uint64_t off = rng.nextBounded(trace.size());
        trace[static_cast<std::size_t>(off)] ^=
            static_cast<char>(1u << rng.nextBounded(8));
        lo = std::min(lo, off);
        hi = std::max(hi, off + 1);
    }
    return describe("bit-flips: %llu bits in [%llu, %llu)", bits, lo, hi);
}

std::string
applyTruncate(Rng &rng, std::string &trace)
{
    // Keep at least one byte so "empty file" stays a separate case.
    std::uint64_t cut = 1 + rng.nextBounded(trace.size() - 1);
    std::uint64_t lost = trace.size() - cut;
    trace.resize(static_cast<std::size_t>(cut));
    return describe("truncate: at %llu (%llu bytes lost)", cut, lost, 0);
}

std::string
applyGarbageBurst(Rng &rng, std::string &trace)
{
    std::uint64_t len =
        1 + rng.nextBounded(std::min<std::uint64_t>(trace.size(), 512));
    std::uint64_t off = rng.nextBounded(trace.size() - len + 1);
    for (std::uint64_t i = 0; i < len; ++i)
        trace[static_cast<std::size_t>(off + i)] =
            static_cast<char>(rng.next());
    return describe("garbage-burst: %llu bytes at %llu", len, off, 0);
}

std::string
applyDuplicateBlock(Rng &rng, std::string &trace)
{
    std::vector<Sgb2BlockInfo> blocks = scanSgb2Blocks(trace);
    if (blocks.empty())
        return applyGarbageBurst(rng, trace);
    const Sgb2BlockInfo &b =
        blocks[static_cast<std::size_t>(rng.nextBounded(blocks.size()))];
    std::string copy = trace.substr(static_cast<std::size_t>(b.offset),
                                    static_cast<std::size_t>(b.length));
    trace.insert(static_cast<std::size_t>(b.offset + b.length), copy);
    return describe("duplicate-block: frame at %llu (%llu bytes)",
                    b.offset, b.length, 0);
}

std::string
applyReorderBlocks(Rng &rng, std::string &trace)
{
    // Swap two adjacent *event* frames: swapping a function-table
    // frame past the events that need it would test name loss, which
    // DuplicateBlock-style staleness does not intend to cover here.
    std::vector<Sgb2BlockInfo> blocks = scanSgb2Blocks(trace);
    std::vector<std::size_t> events;
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        if (blocks[i].tag == 0x02)
            events.push_back(i);
    }
    // Adjacent pairs need adjacent frames too (no function frame in
    // between), or the swap would not be a pure reorder.
    std::vector<std::size_t> pairs;
    for (std::size_t k = 0; k + 1 < events.size(); ++k) {
        const Sgb2BlockInfo &a = blocks[events[k]];
        const Sgb2BlockInfo &b = blocks[events[k] + 1];
        if (events[k] + 1 == events[k + 1] &&
            a.offset + a.length == b.offset)
            pairs.push_back(events[k]);
    }
    if (pairs.empty())
        return applyGarbageBurst(rng, trace);
    const Sgb2BlockInfo &a =
        blocks[pairs[static_cast<std::size_t>(
            rng.nextBounded(pairs.size()))]];
    const Sgb2BlockInfo &b = blocks[&a - blocks.data() + 1];
    std::string first = trace.substr(static_cast<std::size_t>(a.offset),
                                     static_cast<std::size_t>(a.length));
    std::string second = trace.substr(static_cast<std::size_t>(b.offset),
                                      static_cast<std::size_t>(b.length));
    trace.replace(static_cast<std::size_t>(a.offset),
                  static_cast<std::size_t>(a.length + b.length),
                  second + first);
    return describe("reorder-blocks: frames at %llu and %llu", a.offset,
                    b.offset, 0);
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::BitFlips:
        return "bit-flips";
    case FaultKind::Truncate:
        return "truncate";
    case FaultKind::GarbageBurst:
        return "garbage-burst";
    case FaultKind::DuplicateBlock:
        return "duplicate-block";
    case FaultKind::ReorderBlocks:
        return "reorder-blocks";
    }
    return "unknown";
}

FaultPlan
FaultPlan::fromSeed(std::uint64_t seed)
{
    Rng rng(seed);
    FaultPlan plan;
    plan.seed = seed;
    plan.kind = static_cast<FaultKind>(rng.nextBounded(5));
    return plan;
}

std::string
FaultPlan::apply(std::string &trace) const
{
    if (trace.size() < 2)
        return "no-op: trace too small";
    Rng rng(seed);
    rng.next(); // burn the kind-selection draw of fromSeed()
    switch (kind) {
    case FaultKind::BitFlips:
        return applyBitFlips(rng, trace);
    case FaultKind::Truncate:
        return applyTruncate(rng, trace);
    case FaultKind::GarbageBurst:
        return applyGarbageBurst(rng, trace);
    case FaultKind::DuplicateBlock:
        return applyDuplicateBlock(rng, trace);
    case FaultKind::ReorderBlocks:
        return applyReorderBlocks(rng, trace);
    }
    return "no-op: unknown kind";
}

} // namespace sigil::vg
