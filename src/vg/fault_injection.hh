/**
 * @file
 * Deterministic trace-corruption harness.
 *
 * The salvage and checkpoint machinery is only trustworthy if it is
 * exercised against realistic damage, and "realistic damage" must be
 * reproducible or a failing seed cannot be debugged. A FaultPlan is a
 * pure function of its seed (support/rng SplitMix64): it derives a
 * fault kind and all of its parameters — which byte, which block, how
 * many bits — from the seed alone, then mutates an in-memory trace
 * image in place. Tests sweep seeds and assert the ingestion contract:
 * never crash, always account for the loss in the ReplayReport.
 *
 * Block-targeted kinds use scanSgb2Blocks() to aim at real frame
 * boundaries; byte-level kinds work on any input (including SGB1 and
 * text traces).
 */

#ifndef SIGIL_VG_FAULT_INJECTION_HH
#define SIGIL_VG_FAULT_INJECTION_HH

#include <cstdint>
#include <string>

namespace sigil::vg {

/** The damage a FaultPlan inflicts. */
enum class FaultKind
{
    BitFlips,       ///< flip 1..8 random bits anywhere in the image
    Truncate,       ///< cut the image at a random offset
    GarbageBurst,   ///< overwrite a random run with random bytes
    DuplicateBlock, ///< repeat one SGB2 frame (stale-block path)
    ReorderBlocks,  ///< swap two adjacent SGB2 event frames
};

/** Human-readable kind name ("bit-flips", "truncate", ...). */
const char *faultKindName(FaultKind kind);

/** One deterministic corruption, fully derived from a seed. */
struct FaultPlan
{
    FaultKind kind = FaultKind::BitFlips;
    std::uint64_t seed = 0;

    /**
     * Derive a plan from a seed: the kind is chosen uniformly and the
     * same seed then parameterizes apply(), so seed N always produces
     * the identical corruption on the identical input.
     */
    static FaultPlan fromSeed(std::uint64_t seed);

    /**
     * Corrupt a trace image in place. Block-targeted kinds fall back
     * to byte-level damage when the image has no (or too few) valid
     * SGB2 frames, so apply() always changes something on non-trivial
     * input. Returns a description of what was done (for test
     * diagnostics), e.g. "bit-flips: 3 bits in [1042, 1812)".
     */
    std::string apply(std::string &trace) const;
};

} // namespace sigil::vg

#endif // SIGIL_VG_FAULT_INJECTION_HH
