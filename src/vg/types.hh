/**
 * @file
 * Fundamental identifier types for the instrumentation substrate.
 */

#ifndef SIGIL_VG_TYPES_HH
#define SIGIL_VG_TYPES_HH

#include <cstdint>

namespace sigil::vg {

/** A guest (synthetic) address. */
using Addr = std::uint64_t;

/** Index of a registered function. */
using FunctionId = std::int32_t;

/** Index of a calling context (a node of the context tree). */
using ContextId = std::int32_t;

/** Global, monotonically increasing call sequence number. */
using CallNum = std::uint64_t;

/** Guest thread identifier; thread 0 is the initial thread. */
using ThreadId = std::uint32_t;

/** Virtual time measured in retired guest operations. */
using Tick = std::uint64_t;

constexpr FunctionId kInvalidFunction = -1;
constexpr ContextId kInvalidContext = -1;

/** Base of the guest heap region. */
constexpr Addr kHeapBase = 0x0000000000010000ull;

/** Base of the guest scratch-stack region (argument spill slots). */
constexpr Addr kStackBase = 0x0000700000000000ull;

/** Per-thread scratch-stack stride: thread t's stack starts at
 *  kStackBase + t * kThreadStackStride. */
constexpr Addr kThreadStackStride = 0x0000000100000000ull;

} // namespace sigil::vg

#endif // SIGIL_VG_TYPES_HH
