/**
 * @file
 * The guest-program facade of the instrumentation substrate.
 *
 * Guest stands in for the combination of (a) the program under analysis
 * and (b) Valgrind's core: it owns a synthetic guest address space, the
 * function registry and calling-context tree, a virtual clock measured in
 * retired operations, and a chain of attached tools to which it
 * dispatches every primitive event.
 *
 * Workloads are written against this facade: they allocate guest arrays,
 * route every load/store through read()/write(), account arithmetic with
 * iop()/flop(), and bracket functions with enter()/leave() (usually via
 * ScopedFunction). With no tools attached the dispatch is skipped, which
 * serves as the "native" baseline for the slowdown experiments.
 */

#ifndef SIGIL_VG_GUEST_HH
#define SIGIL_VG_GUEST_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/serial.hh"
#include "vg/context_tree.hh"
#include "vg/event_buffer.hh"
#include "vg/function_registry.hh"
#include "vg/tool.hh"
#include "vg/types.hh"

namespace sigil {
class MemoryGovernor;
class Watchdog;
} // namespace sigil

namespace sigil::vg {

/** Aggregate counters of everything the guest retired. */
struct GuestCounters
{
    std::uint64_t reads = 0;
    std::uint64_t readBytes = 0;
    std::uint64_t writes = 0;
    std::uint64_t writeBytes = 0;
    std::uint64_t iops = 0;
    std::uint64_t flops = 0;
    std::uint64_t branches = 0;
    std::uint64_t calls = 0;

    /** Retired "instructions": ops + memory accesses + branches. */
    std::uint64_t
    instructions() const
    {
        return iops + flops + reads + writes + branches;
    }
};

/** One rejected GuestConfig knob (see GuestConfig::validate()). */
struct GuestConfigError
{
    /** Name of the offending knob, e.g. "shardCount". */
    std::string knob;
    /** What is wrong with it. */
    std::string message;

    /** "GuestConfig::<knob>: <message>" */
    std::string describe() const;
};

/** Construction-time options of a guest. */
struct GuestConfig
{
    /**
     * Context-separation depth (Callgrind's --separate-callers):
     * calls deeper than this fold into their capped ancestor chain.
     * 0 = unlimited.
     */
    unsigned maxContextDepth = 0;

    /**
     * Batched event transport: buffer events into a structure-of-arrays
     * EventBuffer and dispatch them to tools one full buffer at a time
     * (Tool::processBatch) instead of one virtual call per event.
     * Observably identical to per-event dispatch, except that tool
     * state lags the guest until the buffer flushes — call sync()
     * before querying a tool mid-run.
     */
    bool batchEvents = false;

    /**
     * Asynchronous analysis pipeline (implies batchEvents): a consumer
     * thread drains filled buffers through the tools while the workload
     * thread fills the other buffer (double buffering). sync() is the
     * barrier that makes tool state current; finish() syncs
     * implicitly, so end-of-run results are bit-identical to
     * synchronous dispatch. Tools must not be destroyed before
     * finish()/sync() has drained the pipeline.
     */
    bool asyncTools = false;

    /** Capacity of each event buffer, in records. */
    std::size_t eventBufferEvents = 4096;

    /**
     * Address-sharded parallel analysis: number of shard workers a
     * sharding-aware tool (core::SigilProfiler) may spin up, each
     * owning a disjoint slice of the shadowed address space. 1 (the
     * default) keeps the fully serial analysis path; must be a power
     * of two, at most 64. Purely advisory to the tools — the guest
     * itself only validates and carries the value.
     */
    unsigned shardCount = 1;

    /**
     * Capacity, in records, of each shard's bounded SPSC work queue
     * (rounded up to a power of two by the queue). Small capacities
     * exercise backpressure; the default absorbs routing bursts.
     */
    std::size_t shardQueueCapacity = std::size_t{1} << 15;

    /**
     * Parallel trace ingestion: number of decode worker threads a
     * BinaryReplaySession over an SGB2/SGB3 trace spins up to
     * CRC-verify, decompress, and pre-decode frame payloads ahead of
     * in-order delivery. 1 (the default) keeps the fully serial decode
     * path; at most 64. Delivery to tools is bit-identical across all
     * values — the workers only front-run pure per-frame work (see
     * DESIGN.md §4.6). Purely advisory to the replay layer.
     */
    unsigned decodeThreads = 1;

    /**
     * Background trace writer: a BinaryTraceRecorder attached to this
     * guest moves frame serialization — CRC32C and, for SGB3, LZ
     * compression — onto a dedicated writer thread fed by a bounded
     * frame queue. The guest thread only appends to the current block
     * and enqueues finished blocks; when the queue is full it blocks
     * (backpressure) rather than buffering unboundedly. The bytes
     * written are bit-identical to synchronous recording. Purely
     * advisory to recording tools.
     */
    bool asyncWriter = false;

    /** Capacity of the async writer's frame queue (min 2). */
    std::size_t writerQueueFrames = 16;

    /**
     * Process-wide memory budget, in bytes, enforced by the guest's
     * MemoryGovernor (support/mem_governor.hh). Accounted against it:
     * shadow chunks (hot + cold + stamp tables), shard work queues,
     * decode-pipeline windows, and event buffers. When an allocation
     * would exceed the budget the shadow evicts least-recently-used
     * chunks first and then escalates to the profiler's
     * never-descending degradation ladder instead of OOM-ing. 0 (the
     * default) disables enforcement; the governor still tracks usage.
     */
    std::size_t memoryBudgetBytes = 0;

    /**
     * Stall deadline, in milliseconds, for the watchdog
     * (support/watchdog.hh) over every worker thread this guest's
     * subsystems spawn: shard workers, decode workers, the async
     * analysis consumer, and the background trace writer. A worker
     * busy without progress for longer than this fails the run with a
     * structured diagnostic report (decode workers instead degrade:
     * the pipeline restarts from the consumer's position). 0 (the
     * default) disables the watchdog.
     */
    unsigned stallTimeoutMs = 0;

    /**
     * Validate knob ranges and reject conflicting combinations.
     * Returns the first problem found, or nullopt when the
     * configuration is usable. Guest's constructor calls this and
     * fails fatally on an error; call it directly to surface
     * configuration problems as data instead of a death.
     */
    std::optional<GuestConfigError> validate() const;
};

class AsyncToolPipeline;

/** The instrumented guest program. */
class Guest
{
  public:
    explicit Guest(std::string program_name)
        : Guest(std::move(program_name), GuestConfig{})
    {}

    Guest(std::string program_name, const GuestConfig &config);

    ~Guest();

    Guest(const Guest &) = delete;
    Guest &operator=(const Guest &) = delete;

    /** Attach a tool; the guest does not take ownership. */
    void addTool(Tool *tool);

    const std::string &programName() const { return programName_; }

    /** The configuration this guest was constructed with. */
    const GuestConfig &config() const { return config_; }

    /**
     * The guest's memory-budget governor. Always present: with
     * memoryBudgetBytes == 0 it only tracks usage. Tools and replay
     * sessions attached to this guest charge their footprints here.
     */
    sigil::MemoryGovernor *governor() const { return governor_.get(); }

    /**
     * The guest's stall watchdog, or nullptr when stallTimeoutMs is 0.
     * Worker threads of attached subsystems register here.
     */
    sigil::Watchdog *watchdog() const { return watchdog_.get(); }

    /** @name Shared ownership of the governor and watchdog
     *
     * Tools routinely outlive the guest they were attached to (tests
     * tear the guest down first), so any subsystem that must reach the
     * governor or watchdog from its own destructor — ShardEngine
     * releasing its queue charge, the async trace writer unregistering
     * its heartbeat — keeps one of these shared handles instead of the
     * raw pointer.
     */
    /// @{
    std::shared_ptr<sigil::MemoryGovernor> governorShared() const
    {
        return governor_;
    }

    std::shared_ptr<sigil::Watchdog> watchdogShared() const
    {
        return watchdog_;
    }
    /// @}

    FunctionRegistry &functions() { return functions_; }
    const FunctionRegistry &functions() const { return functions_; }
    const ContextTree &contexts() const { return contexts_; }

    /** Intern a function name (convenience). */
    FunctionId fn(std::string_view name) { return functions_.intern(name); }

    /** @name Control flow */
    /// @{

    /** Enter a function; every enter must pair with a leave. */
    void enter(FunctionId fn);

    /** Convenience: intern and enter. */
    void enter(std::string_view name) { enter(functions_.intern(name)); }

    /** Leave the current function. */
    void leave();

    /** Context of the innermost active frame. */
    ContextId currentContext() const;

    /** Call number of the innermost active frame. */
    CallNum currentCall() const;

    /** Current call depth (of the current thread). */
    std::size_t
    callDepth() const
    {
        if (const DispatchCursor *c = activeDispatchCursor())
            return c->depth;
        return thread().frames.size();
    }

    /// @}

    /** @name Threads
     *
     * The guest models serial execution of a multi-threaded program:
     * one thread runs at a time and switchThread() is the scheduling
     * point (how a DBI framework like Valgrind serializes threads).
     * Each thread has its own call stack and scratch stack; the heap
     * and all data are shared, so cross-thread producer/consumer
     * relationships are visible to the tools.
     */
    /// @{

    /** Create a new thread (initially with an empty call stack). */
    ThreadId spawnThread();

    /** Switch execution to a thread; notifies tools. */
    void switchThread(ThreadId tid);

    /** The currently executing thread. */
    ThreadId currentThread() const { return currentTid_; }

    std::size_t numThreads() const { return threads_.size(); }

    /**
     * Report a barrier across all threads: every thread's subsequent
     * work is ordered after every thread's preceding work. Workloads
     * call this once per barrier instance (the guest serializes
     * threads, so the call marks the synchronization point).
     */
    void barrier();

    /// @}

    /** @name Guest memory */
    /// @{

    /** One heap allocation, with the workload's tag for reporting. */
    struct Allocation
    {
        Addr base;
        std::uint64_t size;
        std::string tag;
    };

    /** Allocate guest heap memory; returns its guest base address. */
    Addr alloc(std::size_t bytes, std::string_view tag = "");

    /** All heap allocations, in ascending base order. */
    const std::vector<Allocation> &allocations() const
    {
        return allocations_;
    }

    /**
     * Index of the allocation covering addr, or -1 (scratch stack,
     * allocator headers, code).
     */
    int allocationOf(Addr addr) const;

    /**
     * Allocate scratch space in the current frame; reclaimed when the
     * frame is left. Used for argument spill slots so that by-value
     * argument passing is visible as memory communication.
     */
    Addr stackAlloc(std::size_t bytes);

    /** Current thread's scratch-stack pointer (see StackMark). */
    Addr stackPointer() const { return thread().stackPtr; }

    /** Restore the current thread's scratch-stack pointer. */
    void
    setStackPointer(Addr sp)
    {
        thread().stackPtr = sp;
    }

    /** Emit a read of size bytes at addr. */
    void read(Addr addr, unsigned size);

    /** Emit a write of size bytes at addr. */
    void write(Addr addr, unsigned size);

    /** Total guest heap bytes allocated so far. */
    std::uint64_t heapBytes() const { return heapPtr_ - kHeapBase; }

    /// @}

    /** @name Computation */
    /// @{

    /** Retire integer operations. */
    void iop(std::uint64_t n = 1);

    /** Retire floating-point operations. */
    void flop(std::uint64_t n = 1);

    /** Retire a conditional branch. */
    void branch(bool taken);

    /// @}

    /**
     * Bracket writes that represent program input (file contents,
     * command-line data). Writes between beginInput and endInput are
     * attributed to the synthetic "*input*" producer, so first reads of
     * input data classify as communication from the outside world.
     */
    void beginInput();
    void endInput();

    /** @name System calls
     *
     * System calls are not visible to a DBI framework beyond their
     * entry: the paper captures a syscall's name and the bytes crossing
     * the user/kernel boundary, but not the kernel's internal work.
     * These helpers model exactly that: a call to the function
     * "sys_<name>" whose only visible effects are the buffer bytes the
     * kernel reads (an output syscall) or writes (an input syscall).
     */
    /// @{

    /**
     * An output syscall (write, send, ...): the kernel consumes
     * size bytes at addr. Appears as function "sys_<name>" reading the
     * buffer.
     */
    void syscallOut(std::string_view name, Addr addr, unsigned size);

    /**
     * An input syscall (read, recv, ...): the kernel produces size
     * bytes at addr. Appears as function "sys_<name>" writing the
     * buffer, so first reads of the data classify as communication
     * from the kernel.
     */
    void syscallIn(std::string_view name, Addr addr, unsigned size);

    /// @}

    /** The synthetic input function id. */
    FunctionId inputFunction() const { return inputFn_; }

    /**
     * Mark the region of interest (PARSEC's __parsec_roi_begin/end):
     * tools configured for ROI-only collection restrict themselves to
     * the bracketed region. Purely advisory; nesting is not allowed.
     */
    void roiBegin();
    void roiEnd();

    /** True between roiBegin() and roiEnd(). */
    bool inRoi() const { return roiActive_; }

    /** Finish the program: pops nothing, notifies tools. Idempotent. */
    void finish();

    /**
     * Flush buffered events to the tools and, in async mode, wait for
     * the consumer thread to drain them; then sync() every tool so
     * internal tool concurrency (shard workers) drains too. After
     * sync() every tool has observed every event emitted so far;
     * required before querying tool state mid-run in batched/async or
     * sharded mode. finish() syncs implicitly.
     */
    void sync();

    /** Virtual time in retired operations. */
    Tick
    now() const
    {
        if (const DispatchCursor *c = activeDispatchCursor())
            return c->tick;
        return counters_.instructions();
    }

    const GuestCounters &counters() const { return counters_; }

    /**
     * True while buffered events have not yet reached every tool
     * (batched/async mode). Tool state queried while this is true is
     * stale; call sync() first. Always false in per-event mode.
     */
    bool eventsPendingDispatch() const;

    /** @name Checkpointing
     *
     * The checkpoint layer (core/checkpoint.hh) snapshots a replay at
     * block boundaries. saveState() serializes everything the guest
     * owns — function names, context tree, per-thread call stacks,
     * allocations, counters, ROI flag, virtual clock — in a form
     * restoreState() can rebuild deterministically: names and contexts
     * are re-interned in id order, so a restored guest assigns the
     * same ids a fresh replay would.
     */
    /// @{

    /** Serialize the full guest state. sync()s first in batched mode. */
    void saveState(ByteSink &sink);

    /**
     * Restore state saved by saveState() into a freshly constructed
     * guest with the same program name and no events delivered yet
     * (tools may be attached; their state is restored separately).
     * Returns false — leaving the guest unusable — on corrupt input,
     * an id mismatch, or a batching guest (checkpoint replay uses
     * per-event dispatch).
     */
    bool restoreState(ByteSource &src);

    /// @}

  private:
    struct Frame
    {
        ContextId ctx;
        CallNum call;
        Addr stackWatermark;
    };

    struct ThreadCtx
    {
        std::vector<Frame> frames;
        Addr stackPtr;
    };

    ThreadCtx &thread() { return threads_[currentTid_]; }
    const ThreadCtx &thread() const { return threads_[currentTid_]; }

    void dispatchEnter(ContextId ctx, CallNum call);
    void dispatchLeave(ContextId ctx, CallNum call);

    /** @name Batched transport */
    /// @{

    friend class AsyncToolPipeline;

    /** Append one record with the current ambient state. */
    void appendEvent(EventKind kind, std::uint64_t a, std::uint64_t b);

    /** Hand the filled buffer to the tools (or the consumer thread). */
    void flushFill();

    /** Run one buffer through every attached tool, in attach order. */
    void dispatchBatch(const EventBuffer &batch);

    /// @}

    std::string programName_;
    GuestConfig config_;
    FunctionRegistry functions_;
    ContextTree contexts_;
    std::vector<Tool *> tools_;

    std::vector<ThreadCtx> threads_;
    ThreadId currentTid_ = 0;
    CallNum nextCall_ = 1;

    Addr heapPtr_ = kHeapBase;
    std::vector<Allocation> allocations_;
    /** Allocation count published for cross-thread allocationOf(). */
    std::atomic<std::size_t> allocCount_{0};

    FunctionId inputFn_;
    bool roiActive_ = false;
    bool finished_ = false;

    /** Declared before pipeline_ (and destroyed after it): the
     *  pipeline's consumer thread heartbeats into the watchdog and the
     *  governor until it is joined. Shared so subsystems that outlive
     *  the guest (see governorShared()) keep them alive. */
    std::shared_ptr<sigil::MemoryGovernor> governor_;
    std::shared_ptr<sigil::Watchdog> watchdog_;
    /** Event-buffer bytes charged to the governor (released in dtor). */
    std::size_t bufferBytesCharged_ = 0;

    bool batching_ = false;
    std::unique_ptr<EventBuffer> fillBuf_;
    std::unique_ptr<AsyncToolPipeline> pipeline_;

    GuestCounters counters_;
};

/**
 * RAII scratch-stack mark: restores the stack pointer on scope exit so
 * argument spill slots pushed for one call are reused by the next call
 * at the same depth — exactly how a real outgoing-arguments area
 * behaves. Declare the mark before the ArgSlots and the callee's
 * ScopedFunction.
 */
class StackMark
{
  public:
    explicit StackMark(Guest &guest)
        : guest_(guest), saved_(guest.stackPointer())
    {}

    ~StackMark() { guest_.setStackPointer(saved_); }

    StackMark(const StackMark &) = delete;
    StackMark &operator=(const StackMark &) = delete;

  private:
    Guest &guest_;
    Addr saved_;
};

/** RAII function scope: enters on construction, leaves on destruction. */
class ScopedFunction
{
  public:
    ScopedFunction(Guest &guest, FunctionId fn) : guest_(guest)
    {
        guest_.enter(fn);
    }

    ScopedFunction(Guest &guest, std::string_view name) : guest_(guest)
    {
        guest_.enter(name);
    }

    ~ScopedFunction() { guest_.leave(); }

    ScopedFunction(const ScopedFunction &) = delete;
    ScopedFunction &operator=(const ScopedFunction &) = delete;

  private:
    Guest &guest_;
};

} // namespace sigil::vg

#endif // SIGIL_VG_GUEST_HH
