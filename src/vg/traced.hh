/**
 * @file
 * Traced guest data containers.
 *
 * GuestArray and GuestVar hold real host data while routing every access
 * through the Guest so that attached tools observe the load/store stream,
 * exactly as compiler- or JIT-inserted instrumentation would.
 */

#ifndef SIGIL_VG_TRACED_HH
#define SIGIL_VG_TRACED_HH

#include <cstring>
#include <string_view>
#include <vector>

#include "support/logging.hh"
#include "vg/guest.hh"

namespace sigil::vg {

/**
 * An array of T living in the guest address space.
 *
 * get()/set() emit traced accesses; raw() bypasses tracing (used for
 * host-side setup and verification only).
 */
template <typename T>
class GuestArray
{
  public:
    GuestArray(Guest &guest, std::size_t n, std::string_view tag = "")
        : guest_(&guest), data_(n),
          base_(guest.alloc(n * sizeof(T), tag))
    {}

    std::size_t size() const { return data_.size(); }

    /** Guest address of element i. */
    Addr
    addr(std::size_t i) const
    {
        return base_ + static_cast<Addr>(i) * sizeof(T);
    }

    /** Traced load of element i. */
    T
    get(std::size_t i) const
    {
        boundsCheck(i);
        guest_->read(addr(i), sizeof(T));
        return data_[i];
    }

    /** Traced store to element i. */
    void
    set(std::size_t i, const T &v)
    {
        boundsCheck(i);
        guest_->write(addr(i), sizeof(T));
        data_[i] = v;
    }

    /** Untraced host access (setup / verification only). */
    T &
    raw(std::size_t i)
    {
        boundsCheck(i);
        return data_[i];
    }

    const T &
    raw(std::size_t i) const
    {
        boundsCheck(i);
        return data_[i];
    }

    /**
     * Initialize the whole array as program input: each element is
     * written under the synthetic "*input*" producer.
     */
    template <typename Fn>
    void
    fillAsInput(Fn &&gen)
    {
        guest_->beginInput();
        for (std::size_t i = 0; i < data_.size(); ++i)
            set(i, gen(i));
        guest_->endInput();
    }

  private:
    void
    boundsCheck(std::size_t i) const
    {
        if (i >= data_.size())
            panic("GuestArray: index %zu out of range (size %zu)", i,
                  data_.size());
    }

    Guest *guest_;
    std::vector<T> data_;
    Addr base_;
};

/** A single traced guest variable. */
template <typename T>
class GuestVar
{
  public:
    explicit GuestVar(Guest &guest, T init = T{},
                      std::string_view tag = "")
        : guest_(&guest), value_(init),
          addr_(guest.alloc(sizeof(T), tag))
    {}

    Addr addr() const { return addr_; }

    /** Traced load. */
    T
    get() const
    {
        guest_->read(addr_, sizeof(T));
        return value_;
    }

    /** Traced store. */
    void
    set(const T &v)
    {
        guest_->write(addr_, sizeof(T));
        value_ = v;
    }

    /** Untraced host access. */
    T &raw() { return value_; }
    const T &raw() const { return value_; }

  private:
    Guest *guest_;
    T value_;
    Addr addr_;
};

/**
 * A by-value argument spilled to the guest stack: the caller constructs
 * it (traced write in the caller's frame is emitted by spill()), the
 * callee loads it with load(). This makes scalar argument passing show
 * up as (small) input communication, as it does for real binaries where
 * arguments cross a register/stack boundary.
 */
template <typename T>
class ArgSlot
{
  public:
    ArgSlot(Guest &guest, const T &v) : guest_(&guest), value_(v)
    {
        addr_ = guest_->stackAlloc(sizeof(T));
        guest_->write(addr_, sizeof(T));
    }

    /** Traced read by the callee. */
    T
    load() const
    {
        guest_->read(addr_, sizeof(T));
        return value_;
    }

  private:
    Guest *guest_;
    T value_;
    Addr addr_;
};

} // namespace sigil::vg

#endif // SIGIL_VG_TRACED_HH
