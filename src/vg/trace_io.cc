#include "trace_io.hh"

#include <charconv>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <unordered_map>

#include "support/logging.hh"

namespace sigil::vg {

namespace {

/** Flush the text formatting buffer once it crosses this size. */
constexpr std::size_t kTextFlushBytes = 64 * 1024;

constexpr char kBinaryMagic[4] = {'S', 'G', 'B', '1'};

/** @name Binary section tags */
/// @{
constexpr std::uint8_t kSecEnd = 0x00;
constexpr std::uint8_t kSecFunction = 0x01;
constexpr std::uint8_t kSecBlock = 0x02;
/// @}

/** @name Binary event opcodes */
/// @{
constexpr std::uint8_t kOpRead = 1;
constexpr std::uint8_t kOpWrite = 2;
constexpr std::uint8_t kOpOp = 3;
constexpr std::uint8_t kOpBranchTaken = 4;
constexpr std::uint8_t kOpBranchNotTaken = 5;
constexpr std::uint8_t kOpEnter = 6;
constexpr std::uint8_t kOpLeave = 7;
constexpr std::uint8_t kOpThreadSwitch = 8;
constexpr std::uint8_t kOpBarrier = 9;
constexpr std::uint8_t kOpRoiBegin = 10;
constexpr std::uint8_t kOpRoiEnd = 11;
/// @}

void
putVarint(std::string &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<char>(v | 0x80));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v));
}

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

void
putUint(std::string &out, std::uint64_t v)
{
    char tmp[20];
    auto [ptr, ec] = std::to_chars(tmp, tmp + sizeof(tmp), v);
    (void)ec;
    out.append(tmp, ptr);
}

/**
 * Checked byte-level reader over an istream for the binary format.
 * Reads the stream in large chunks and serves bytes from an internal
 * buffer: varint decoding touches every byte, and a virtual
 * istream::get() per byte would dominate the replay cost.
 */
class ByteReader
{
  public:
    explicit ByteReader(std::istream &is) : is_(is)
    {
        buf_.resize(kChunkBytes);
    }

    std::uint8_t
    u8()
    {
        if (pos_ == len_)
            refill();
        return static_cast<std::uint8_t>(buf_[pos_++]);
    }

    std::uint64_t
    varint()
    {
        // Fast path: a full varint's worth of buffered bytes.
        if (len_ - pos_ >= 10) {
            const unsigned char *p =
                reinterpret_cast<const unsigned char *>(buf_.data()) + pos_;
            std::uint64_t v = p[0] & 0x7f;
            if (!(p[0] & 0x80)) {
                ++pos_;
                return v;
            }
            unsigned i = 1;
            unsigned shift = 7;
            do {
                v |= static_cast<std::uint64_t>(p[i] & 0x7f) << shift;
                shift += 7;
            } while ((p[i++] & 0x80) && shift < 70);
            if (shift >= 70 && (p[i - 1] & 0x80))
                fatal("binary trace: varint overflow");
            pos_ += i;
            return v;
        }
        std::uint64_t v = 0;
        unsigned shift = 0;
        for (;;) {
            std::uint8_t byte = u8();
            if (shift >= 64)
                fatal("binary trace: varint overflow");
            v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
            if (!(byte & 0x80))
                return v;
            shift += 7;
        }
    }

    std::string
    bytes(std::uint64_t n)
    {
        if (n > (1u << 20))
            fatal("binary trace: unreasonable string length");
        std::string s;
        s.reserve(n);
        while (s.size() < n) {
            if (pos_ == len_)
                refill();
            std::size_t take = std::min<std::size_t>(len_ - pos_,
                                                     n - s.size());
            s.append(buf_.data() + pos_, take);
            pos_ += take;
        }
        return s;
    }

  private:
    static constexpr std::size_t kChunkBytes = 256 * 1024;

    void
    refill()
    {
        is_.read(buf_.data(), static_cast<std::streamsize>(buf_.size()));
        len_ = static_cast<std::size_t>(is_.gcount());
        pos_ = 0;
        if (len_ == 0)
            fatal("binary trace: truncated input");
    }

    std::istream &is_;
    std::string buf_;
    std::size_t pos_ = 0;
    std::size_t len_ = 0;
};

} // namespace

// ---------------------------------------------------------------------
// Text recorder
// ---------------------------------------------------------------------

TraceRecorder::TraceRecorder(std::ostream &os) : os_(os)
{
    buf_.reserve(kTextFlushBytes + 256);
}

void
TraceRecorder::attach(const Guest &guest)
{
    Tool::attach(guest);
    buf_ += "sigil-trace\t1\n";
    buf_ += "program\t";
    buf_ += guest.programName();
    buf_ += '\n';
}

void
TraceRecorder::maybeFlush()
{
    if (buf_.size() >= kTextFlushBytes) {
        os_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
        buf_.clear();
    }
}

void
TraceRecorder::put(char tag)
{
    buf_ += tag;
    buf_ += '\n';
    ++events_;
    maybeFlush();
}

void
TraceRecorder::put(char tag, std::uint64_t v0)
{
    buf_ += tag;
    buf_ += '\t';
    putUint(buf_, v0);
    buf_ += '\n';
    ++events_;
    maybeFlush();
}

void
TraceRecorder::put(char tag, std::uint64_t v0, std::uint64_t v1)
{
    buf_ += tag;
    buf_ += '\t';
    putUint(buf_, v0);
    buf_ += '\t';
    putUint(buf_, v1);
    buf_ += '\n';
    ++events_;
    maybeFlush();
}

void
TraceRecorder::ensureFunction(FunctionId fn)
{
    std::size_t idx = static_cast<std::size_t>(fn);
    if (idx >= emitted_.size())
        emitted_.resize(idx + 1, false);
    if (emitted_[idx])
        return;
    emitted_[idx] = true;
    buf_ += "F\t";
    putUint(buf_, static_cast<std::uint64_t>(static_cast<std::uint32_t>(fn)));
    buf_ += '\t';
    buf_ += guest_->functions().name(fn);
    buf_ += '\n';
}

void
TraceRecorder::fnEnter(ContextId ctx, CallNum call)
{
    (void)call;
    FunctionId fn = guest_->contexts().function(ctx);
    ensureFunction(fn);
    put('E', static_cast<std::uint64_t>(static_cast<std::uint32_t>(fn)));
}

void
TraceRecorder::fnLeave(ContextId ctx, CallNum call)
{
    (void)ctx;
    (void)call;
    put('L');
}

void
TraceRecorder::memRead(Addr addr, unsigned size)
{
    put('R', addr, size);
}

void
TraceRecorder::memWrite(Addr addr, unsigned size)
{
    put('W', addr, size);
}

void
TraceRecorder::op(std::uint64_t iops, std::uint64_t flops)
{
    put('O', iops, flops);
}

void
TraceRecorder::branch(bool taken)
{
    put('B', taken ? 1 : 0);
}

void
TraceRecorder::threadSwitch(ThreadId tid)
{
    put('T', tid);
}

void
TraceRecorder::barrier()
{
    put('Z');
}

void
TraceRecorder::roi(bool active)
{
    put('I', active ? 1 : 0);
}

void
TraceRecorder::processBatch(const EventBuffer &batch)
{
    for (std::size_t i = 0, n = batch.size(); i < n; ++i) {
        std::uint64_t a = batch.a(i);
        std::uint64_t b = batch.b(i);
        switch (batch.kind(i)) {
          case EventKind::kRead:
            put('R', a, b);
            break;
          case EventKind::kWrite:
            put('W', a, b);
            break;
          case EventKind::kOp:
            put('O', a, b);
            break;
          case EventKind::kBranch:
            put('B', a ? 1 : 0);
            break;
          case EventKind::kEnter: {
            FunctionId fn = static_cast<FunctionId>(a);
            ensureFunction(fn);
            put('E', a);
            break;
          }
          case EventKind::kLeave:
            put('L');
            break;
          case EventKind::kThreadSwitch:
            put('T', a);
            break;
          case EventKind::kBarrier:
            put('Z');
            break;
          case EventKind::kRoi:
            put('I', a ? 1 : 0);
            break;
        }
    }
}

void
TraceRecorder::finish()
{
    if (finished_)
        return;
    finished_ = true;
    buf_ += "end\n";
    os_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
    buf_.clear();
    os_.flush();
}

// ---------------------------------------------------------------------
// Binary recorder
// ---------------------------------------------------------------------

BinaryTraceRecorder::BinaryTraceRecorder(std::ostream &os) : os_(os) {}

void
BinaryTraceRecorder::attach(const Guest &guest)
{
    Tool::attach(guest);
    std::string header(kBinaryMagic, sizeof(kBinaryMagic));
    putVarint(header, 1); // version
    const std::string &name = guest.programName();
    putVarint(header, name.size());
    header += name;
    os_.write(header.data(), static_cast<std::streamsize>(header.size()));
}

void
BinaryTraceRecorder::ensureFunction(FunctionId fn)
{
    std::size_t idx = static_cast<std::size_t>(fn);
    if (idx >= emitted_.size())
        emitted_.resize(idx + 1, false);
    if (emitted_[idx])
        return;
    emitted_[idx] = true;
    pendingFns_.push_back(static_cast<char>(kSecFunction));
    putVarint(pendingFns_,
              static_cast<std::uint64_t>(static_cast<std::uint32_t>(fn)));
    const std::string &name = guest_->functions().name(fn);
    putVarint(pendingFns_, name.size());
    pendingFns_ += name;
}

void
BinaryTraceRecorder::flushBlock()
{
    if (!pendingFns_.empty()) {
        os_.write(pendingFns_.data(),
                  static_cast<std::streamsize>(pendingFns_.size()));
        pendingFns_.clear();
    }
    if (blockEvents_ == 0)
        return;
    std::string frame;
    frame.push_back(static_cast<char>(kSecBlock));
    putVarint(frame, blockEvents_);
    os_.write(frame.data(), static_cast<std::streamsize>(frame.size()));
    os_.write(block_.data(), static_cast<std::streamsize>(block_.size()));
    block_.clear();
    blockEvents_ = 0;
}

void
BinaryTraceRecorder::event(std::uint8_t opcode)
{
    block_.push_back(static_cast<char>(opcode));
    ++events_;
    if (++blockEvents_ >= kBlockEvents)
        flushBlock();
}

void
BinaryTraceRecorder::access(std::uint8_t opcode, Addr addr, unsigned size)
{
    block_.push_back(static_cast<char>(opcode));
    putVarint(block_, zigzag(static_cast<std::int64_t>(addr - prevAddr_)));
    putVarint(block_, size);
    prevAddr_ = addr;
    ++events_;
    if (++blockEvents_ >= kBlockEvents)
        flushBlock();
}

void
BinaryTraceRecorder::fnEnter(ContextId ctx, CallNum call)
{
    (void)call;
    FunctionId fn = guest_->contexts().function(ctx);
    ensureFunction(fn);
    block_.push_back(static_cast<char>(kOpEnter));
    putVarint(block_,
              static_cast<std::uint64_t>(static_cast<std::uint32_t>(fn)));
    ++events_;
    if (++blockEvents_ >= kBlockEvents)
        flushBlock();
}

void
BinaryTraceRecorder::fnLeave(ContextId ctx, CallNum call)
{
    (void)ctx;
    (void)call;
    event(kOpLeave);
}

void
BinaryTraceRecorder::memRead(Addr addr, unsigned size)
{
    access(kOpRead, addr, size);
}

void
BinaryTraceRecorder::memWrite(Addr addr, unsigned size)
{
    access(kOpWrite, addr, size);
}

void
BinaryTraceRecorder::op(std::uint64_t iops, std::uint64_t flops)
{
    block_.push_back(static_cast<char>(kOpOp));
    putVarint(block_, iops);
    putVarint(block_, flops);
    ++events_;
    if (++blockEvents_ >= kBlockEvents)
        flushBlock();
}

void
BinaryTraceRecorder::branch(bool taken)
{
    event(taken ? kOpBranchTaken : kOpBranchNotTaken);
}

void
BinaryTraceRecorder::threadSwitch(ThreadId tid)
{
    block_.push_back(static_cast<char>(kOpThreadSwitch));
    putVarint(block_, tid);
    ++events_;
    if (++blockEvents_ >= kBlockEvents)
        flushBlock();
}

void
BinaryTraceRecorder::barrier()
{
    event(kOpBarrier);
}

void
BinaryTraceRecorder::roi(bool active)
{
    event(active ? kOpRoiBegin : kOpRoiEnd);
}

void
BinaryTraceRecorder::processBatch(const EventBuffer &batch)
{
    for (std::size_t i = 0, n = batch.size(); i < n; ++i) {
        std::uint64_t a = batch.a(i);
        std::uint64_t b = batch.b(i);
        switch (batch.kind(i)) {
          case EventKind::kRead:
            access(kOpRead, a, static_cast<unsigned>(b));
            break;
          case EventKind::kWrite:
            access(kOpWrite, a, static_cast<unsigned>(b));
            break;
          case EventKind::kOp:
            op(a, b);
            break;
          case EventKind::kBranch:
            event(a ? kOpBranchTaken : kOpBranchNotTaken);
            break;
          case EventKind::kEnter: {
            FunctionId fn = static_cast<FunctionId>(a);
            ensureFunction(fn);
            block_.push_back(static_cast<char>(kOpEnter));
            putVarint(block_, a);
            ++events_;
            if (++blockEvents_ >= kBlockEvents)
                flushBlock();
            break;
          }
          case EventKind::kLeave:
            event(kOpLeave);
            break;
          case EventKind::kThreadSwitch:
            threadSwitch(static_cast<ThreadId>(a));
            break;
          case EventKind::kBarrier:
            event(kOpBarrier);
            break;
          case EventKind::kRoi:
            event(a ? kOpRoiBegin : kOpRoiEnd);
            break;
        }
    }
}

void
BinaryTraceRecorder::finish()
{
    if (finished_)
        return;
    finished_ = true;
    flushBlock();
    char end = static_cast<char>(kSecEnd);
    os_.write(&end, 1);
    os_.flush();
}

// ---------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------

std::uint64_t
replayTrace(std::istream &is, Guest &guest)
{
    std::string line;
    bool saw_header = false;
    bool saw_end = false;
    std::uint64_t events = 0;
    std::unordered_map<long, FunctionId> fn_map;

    auto bad = [&](const char *what) {
        fatal("trace replay: %s in line '%s'", what, line.c_str());
    };

    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        if (!saw_header) {
            if (line.rfind("sigil-trace\t1", 0) != 0)
                fatal("not a sigil trace (bad header)");
            saw_header = true;
            continue;
        }
        char tag = line[0];
        const char *rest = line.c_str() + (line.size() > 1 ? 2 : 1);
        switch (tag) {
          case 'p': // program line — informational
            break;
          case 'F': {
            char *end = nullptr;
            long id = std::strtol(rest, &end, 10);
            if (end == rest || *end != '\t')
                bad("bad function record");
            fn_map[id] = guest.functions().intern(end + 1);
            break;
          }
          case 'E': {
            char *end = nullptr;
            long id = std::strtol(rest, &end, 10);
            auto it = fn_map.find(id);
            if (end == rest || it == fn_map.end())
                bad("unknown function id");
            guest.enter(it->second);
            ++events;
            break;
          }
          case 'L':
            guest.leave();
            ++events;
            break;
          case 'R':
          case 'W': {
            char *end = nullptr;
            unsigned long long addr = std::strtoull(rest, &end, 10);
            if (end == rest || *end != '\t')
                bad("bad access record");
            unsigned long size = std::strtoul(end + 1, nullptr, 10);
            if (tag == 'R')
                guest.read(static_cast<Addr>(addr),
                           static_cast<unsigned>(size));
            else
                guest.write(static_cast<Addr>(addr),
                            static_cast<unsigned>(size));
            ++events;
            break;
          }
          case 'O': {
            char *end = nullptr;
            unsigned long long iops = std::strtoull(rest, &end, 10);
            if (end == rest || *end != '\t')
                bad("bad op record");
            unsigned long long flops = std::strtoull(end + 1, nullptr, 10);
            if (iops)
                guest.iop(iops);
            if (flops)
                guest.flop(flops);
            ++events;
            break;
          }
          case 'B':
            guest.branch(rest[0] == '1');
            ++events;
            break;
          case 'T': {
            char *end = nullptr;
            unsigned long tid = std::strtoul(rest, &end, 10);
            if (end == rest)
                bad("bad thread-switch record");
            while (guest.numThreads() <= tid)
                guest.spawnThread();
            guest.switchThread(static_cast<ThreadId>(tid));
            ++events;
            break;
          }
          case 'Z':
            guest.barrier();
            ++events;
            break;
          case 'I':
            if (rest[0] == '1')
                guest.roiBegin();
            else
                guest.roiEnd();
            ++events;
            break;
          case 'e': // "end"
            saw_end = true;
            break;
          default:
            bad("unknown record tag");
        }
        if (saw_end)
            break;
    }
    if (!saw_header)
        fatal("not a sigil trace (empty input)");
    if (!saw_end)
        fatal("trace replay: truncated input (missing 'end')");
    guest.finish();
    return events;
}

std::uint64_t
replayBinaryTrace(std::istream &is, Guest &guest)
{
    char magic[4];
    is.read(magic, sizeof(magic));
    if (is.gcount() != sizeof(magic) ||
        std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
        fatal("not a binary sigil trace (bad magic)");
    }
    ByteReader r(is);
    std::uint64_t version = r.varint();
    if (version != 1)
        fatal("binary trace: unsupported version %llu",
              static_cast<unsigned long long>(version));
    r.bytes(r.varint()); // program name — informational

    std::uint64_t events = 0;
    std::uint64_t prev_addr = 0;
    std::unordered_map<std::uint64_t, FunctionId> fn_map;

    for (;;) {
        std::uint8_t sec = r.u8();
        if (sec == kSecEnd)
            break;
        if (sec == kSecFunction) {
            std::uint64_t id = r.varint();
            fn_map[id] = guest.functions().intern(r.bytes(r.varint()));
            continue;
        }
        if (sec != kSecBlock)
            fatal("binary trace: unknown section tag %u", sec);
        std::uint64_t count = r.varint();
        for (std::uint64_t i = 0; i < count; ++i) {
            std::uint8_t opcode = r.u8();
            switch (opcode) {
              case kOpRead:
              case kOpWrite: {
                prev_addr += static_cast<std::uint64_t>(
                    unzigzag(r.varint()));
                unsigned size = static_cast<unsigned>(r.varint());
                if (opcode == kOpRead)
                    guest.read(prev_addr, size);
                else
                    guest.write(prev_addr, size);
                break;
              }
              case kOpOp: {
                std::uint64_t iops = r.varint();
                std::uint64_t flops = r.varint();
                if (iops)
                    guest.iop(iops);
                if (flops)
                    guest.flop(flops);
                break;
              }
              case kOpBranchTaken:
                guest.branch(true);
                break;
              case kOpBranchNotTaken:
                guest.branch(false);
                break;
              case kOpEnter: {
                auto it = fn_map.find(r.varint());
                if (it == fn_map.end())
                    fatal("binary trace: unknown function id");
                guest.enter(it->second);
                break;
              }
              case kOpLeave:
                guest.leave();
                break;
              case kOpThreadSwitch: {
                std::uint64_t tid = r.varint();
                while (guest.numThreads() <= tid)
                    guest.spawnThread();
                guest.switchThread(static_cast<ThreadId>(tid));
                break;
              }
              case kOpBarrier:
                guest.barrier();
                break;
              case kOpRoiBegin:
                guest.roiBegin();
                break;
              case kOpRoiEnd:
                guest.roiEnd();
                break;
              default:
                fatal("binary trace: unknown opcode %u", opcode);
            }
            ++events;
        }
    }
    guest.finish();
    return events;
}

std::uint64_t
replayTraceFile(const std::string &path, Guest &guest)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot open '%s' for reading", path.c_str());
    char magic[4] = {0, 0, 0, 0};
    is.read(magic, sizeof(magic));
    is.clear();
    is.seekg(0);
    if (std::memcmp(magic, kBinaryMagic, sizeof(magic)) == 0)
        return replayBinaryTrace(is, guest);
    return replayTrace(is, guest);
}

std::uint64_t
convertTextTraceToBinary(std::istream &text, std::ostream &bin,
                         const std::string &program)
{
    Guest guest(program);
    BinaryTraceRecorder recorder(bin);
    guest.addTool(&recorder);
    return replayTrace(text, guest);
}

} // namespace sigil::vg
