#include "trace_io.hh"

#include <charconv>
#include <cstring>
#include <fstream>
#include <istream>
#include <optional>
#include <ostream>
#include <unordered_map>

#include "support/crc32c.hh"
#include "support/logging.hh"

namespace sigil::vg {

namespace {

/** Flush the text formatting buffer once it crosses this size. */
constexpr std::size_t kTextFlushBytes = 64 * 1024;

constexpr char kSgb1Magic[4] = {'S', 'G', 'B', '1'};
constexpr char kSgb2Magic[4] = {'S', 'G', 'B', '2'};

/** @name SGB1 section tags */
/// @{
constexpr std::uint8_t kSecEnd = 0x00;
constexpr std::uint8_t kSecFunction = 0x01;
constexpr std::uint8_t kSecBlock = 0x02;
/// @}

/** @name SGB2 frame tags */
/// @{
constexpr std::uint8_t kTagEnd = 0x00;
constexpr std::uint8_t kTagFunctions = 0x01;
constexpr std::uint8_t kTagEvents = 0x02;
/// @}

/**
 * SGB2 frame sync bytes. Resynchronization scans for this pattern and
 * then validates the header CRC, so the bytes only need to be unlikely,
 * not impossible, inside payload data; the non-ASCII guards keep them
 * from colliding with text or with the file magic.
 */
constexpr unsigned char kFrameSync[4] = {0xa7, 'S', 'B', 0xb2};

/** Smallest possible frame: sync + tag + 4 one-byte varints + 2 CRCs. */
constexpr std::size_t kMinFrameBytes = 4 + 1 + 4 + 8;

/** Sanity caps rejecting absurd values decoded from corrupt input. */
constexpr std::uint64_t kMaxPayloadLen = std::uint64_t{1} << 26;
constexpr std::uint64_t kMaxNameLen = std::uint64_t{1} << 20;
constexpr std::uint64_t kMaxAccessSize = std::uint64_t{1} << 30;
constexpr std::uint64_t kMaxThreads = std::uint64_t{1} << 16;

/** @name Binary event opcodes (shared by SGB1 and SGB2) */
/// @{
constexpr std::uint8_t kOpRead = 1;
constexpr std::uint8_t kOpWrite = 2;
constexpr std::uint8_t kOpOp = 3;
constexpr std::uint8_t kOpBranchTaken = 4;
constexpr std::uint8_t kOpBranchNotTaken = 5;
constexpr std::uint8_t kOpEnter = 6;
constexpr std::uint8_t kOpLeave = 7;
constexpr std::uint8_t kOpThreadSwitch = 8;
constexpr std::uint8_t kOpBarrier = 9;
constexpr std::uint8_t kOpRoiBegin = 10;
constexpr std::uint8_t kOpRoiEnd = 11;
/// @}

void
putVarint(std::string &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<char>(v | 0x80));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v));
}

void
putU32le(std::string &out, std::uint32_t v)
{
    out.push_back(static_cast<char>(v));
    out.push_back(static_cast<char>(v >> 8));
    out.push_back(static_cast<char>(v >> 16));
    out.push_back(static_cast<char>(v >> 24));
}

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

void
putUint(std::string &out, std::uint64_t v)
{
    char tmp[20];
    auto [ptr, ec] = std::to_chars(tmp, tmp + sizeof(tmp), v);
    (void)ec;
    out.append(tmp, ptr);
}

/** Internal error transport; never escapes the public replay API. */
struct TraceAbort
{
    TraceError err;
};

[[noreturn]] void
raiseError(TraceErrorCause cause, std::uint64_t offset,
           std::int64_t block = -1, std::string detail = {})
{
    TraceError e;
    e.cause = cause;
    e.byteOffset = offset;
    e.blockIndex = block;
    e.detail = std::move(detail);
    throw TraceAbort{std::move(e)};
}

/** Read the remainder of a stream into one buffer. */
std::string
slurp(std::istream &is)
{
    std::string out;
    char buf[256 * 1024];
    for (;;) {
        is.read(buf, sizeof(buf));
        std::size_t got = static_cast<std::size_t>(is.gcount());
        if (got == 0)
            break;
        out.append(buf, got);
    }
    return out;
}

/**
 * Bounds-checked decoder over one byte range. Every read is validated
 * against the range end before touching memory, so no sequence of
 * input bytes can make the decoder read outside the buffer: an overrun
 * raises a TraceError (BoundsExceeded inside a length-framed block,
 * Truncated when the range is the rest of the stream) with the exact
 * offset instead of relying on stream EOF behaviour.
 */
class Cursor
{
  public:
    Cursor(const char *data, std::size_t len, std::uint64_t base_offset,
           std::int64_t block, TraceErrorCause bounds_cause)
        : data_(data), len_(len), base_(base_offset), block_(block),
          boundsCause_(bounds_cause)
    {}

    bool atEnd() const { return pos_ == len_; }
    std::size_t remaining() const { return len_ - pos_; }

    /** Absolute stream offset of the next byte. */
    std::uint64_t offset() const { return base_ + pos_; }

    std::uint8_t
    u8()
    {
        if (pos_ >= len_)
            raiseError(boundsCause_, offset(), block_);
        return static_cast<std::uint8_t>(data_[pos_++]);
    }

    std::uint64_t
    varint()
    {
        const unsigned char *p =
            reinterpret_cast<const unsigned char *>(data_) + pos_;
        std::size_t avail = len_ - pos_;
        // Fast path: first byte present and terminal.
        if (avail != 0 && !(p[0] & 0x80)) {
            ++pos_;
            return p[0];
        }
        std::uint64_t v = 0;
        unsigned shift = 0;
        std::size_t i = 0;
        for (;;) {
            if (i >= avail)
                raiseError(boundsCause_, base_ + pos_ + i, block_);
            if (shift >= 70)
                raiseError(TraceErrorCause::VarintOverflow,
                           base_ + pos_ + i, block_);
            std::uint8_t byte = p[i++];
            v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
            if (!(byte & 0x80)) {
                pos_ += i;
                return v;
            }
            shift += 7;
        }
    }

    std::string
    bytes(std::uint64_t n)
    {
        if (n > kMaxNameLen)
            raiseError(TraceErrorCause::BadRecord, offset(), block_,
                       "unreasonable string length");
        if (n > remaining())
            raiseError(boundsCause_, offset(), block_);
        std::string s(data_ + pos_, static_cast<std::size_t>(n));
        pos_ += static_cast<std::size_t>(n);
        return s;
    }

  private:
    const char *data_;
    std::size_t len_;
    std::size_t pos_ = 0;
    std::uint64_t base_;
    std::int64_t block_;
    TraceErrorCause boundsCause_;
};

/**
 * Shared event-delivery state of a binary replay: the guest, the
 * function-id map, and the salvage-mode guest-state reconciliation
 * (synthesized functions for lost name records, dropped underflowing
 * leaves, ROI transitions reconciled against the guest's actual state).
 */
struct ReplayCtx
{
    Guest &guest;
    ReplayPolicy policy;
    ReplayReport &report;
    std::unordered_map<std::uint64_t, FunctionId> fnMap;
    std::uint64_t synthCounter = 0;

    bool salvage() const { return policy == ReplayPolicy::Salvage; }

    void
    recordError(const TraceError &e, std::size_t max_errors)
    {
        if (report.errors.size() < max_errors)
            report.errors.push_back(e);
    }

    FunctionId
    resolveFunction(std::uint64_t id, std::uint64_t offset,
                    std::int64_t block)
    {
        auto it = fnMap.find(id);
        if (it != fnMap.end())
            return it->second;
        if (!salvage())
            raiseError(TraceErrorCause::UnknownFunction, offset, block,
                       "unknown function id " + std::to_string(id));
        // The function record was lost with its block: intern a
        // stable placeholder so call-tree structure survives even if
        // the name is gone.
        FunctionId fn = guest.functions().intern(
            "<lost-fn-" + std::to_string(++synthCounter) + ">");
        fnMap.emplace(id, fn);
        ++report.functionsSynthesized;
        return fn;
    }

    /** Decode and deliver one event; prev_addr is the delta base. */
    void
    deliverOne(Cursor &c, std::uint64_t &prev_addr, std::int64_t block)
    {
        std::uint64_t at = c.offset();
        std::uint8_t opcode = c.u8();
        switch (opcode) {
          case kOpRead:
          case kOpWrite: {
            prev_addr += static_cast<std::uint64_t>(unzigzag(c.varint()));
            std::uint64_t size = c.varint();
            if (size > kMaxAccessSize)
                raiseError(TraceErrorCause::BadRecord, at, block,
                           "unreasonable access size " +
                               std::to_string(size));
            if (guest.callDepth() == 0) {
                // An access outside any function would panic the
                // guest; only decodable from a damaged stream.
                if (!salvage())
                    raiseError(TraceErrorCause::BadRecord, at, block,
                               "access outside any function");
                break;
            }
            if (opcode == kOpRead)
                guest.read(prev_addr, static_cast<unsigned>(size));
            else
                guest.write(prev_addr, static_cast<unsigned>(size));
            break;
          }
          case kOpOp: {
            std::uint64_t iops = c.varint();
            std::uint64_t flops = c.varint();
            if (guest.callDepth() == 0) {
                // Tools attribute ops to the current context, which
                // does not exist when the enclosing enter was lost.
                if (!salvage())
                    raiseError(TraceErrorCause::BadRecord, at, block,
                               "op outside any function");
                break;
            }
            if (iops)
                guest.iop(iops);
            if (flops)
                guest.flop(flops);
            break;
          }
          case kOpBranchTaken:
          case kOpBranchNotTaken:
            if (guest.callDepth() == 0) {
                if (!salvage())
                    raiseError(TraceErrorCause::BadRecord, at, block,
                               "branch outside any function");
                break;
            }
            guest.branch(opcode == kOpBranchTaken);
            break;
          case kOpEnter:
            guest.enter(resolveFunction(c.varint(), at, block));
            break;
          case kOpLeave:
            if (guest.callDepth() == 0) {
                // Call-depth reconciliation: the matching enter was
                // lost with a skipped block.
                if (!salvage())
                    raiseError(TraceErrorCause::BadRecord, at, block,
                               "leave with empty call stack");
                ++report.leavesDropped;
                break;
            }
            guest.leave();
            break;
          case kOpThreadSwitch: {
            std::uint64_t tid = c.varint();
            if (tid >= kMaxThreads)
                raiseError(TraceErrorCause::BadRecord, at, block,
                           "unreasonable thread id " +
                               std::to_string(tid));
            while (guest.numThreads() <= tid)
                guest.spawnThread();
            guest.switchThread(static_cast<ThreadId>(tid));
            break;
          }
          case kOpBarrier:
            guest.barrier();
            break;
          case kOpRoiBegin:
          case kOpRoiEnd: {
            bool begin = opcode == kOpRoiBegin;
            if (guest.inRoi() == begin) {
                // ROI reconciliation: the paired transition was lost.
                if (!salvage())
                    raiseError(TraceErrorCause::BadRecord, at, block,
                               begin ? "nested roi begin"
                                     : "roi end outside roi");
                ++report.roiDropped;
                break;
            }
            if (begin)
                guest.roiBegin();
            else
                guest.roiEnd();
            break;
          }
          default:
            raiseError(TraceErrorCause::UnknownOpcode, at, block,
                       "opcode " + std::to_string(opcode));
        }
        ++report.eventsDelivered;
    }
};

/** @name SGB2 frame header parsing */
/// @{

struct FrameHeader
{
    std::uint8_t tag = 0;
    std::uint64_t blockSeq = 0;
    std::uint64_t firstEventSeq = 0;
    std::uint64_t eventCount = 0;
    std::uint64_t payloadLen = 0;
    std::uint32_t payloadCrc = 0;
    std::size_t headerLen = 0; ///< sync through headerCrc, inclusive
};

/**
 * Try to parse and validate an SGB2 frame header at data[off]. Fails
 * (nullopt) on missing sync bytes, malformed or overlong varints,
 * implausible field values, or a header-CRC mismatch — all without
 * reading past the buffer, so it is safe to probe arbitrary offsets
 * during resynchronization.
 */
std::optional<FrameHeader>
parseFrameAt(std::string_view data, std::size_t off)
{
    if (off + kMinFrameBytes > data.size())
        return std::nullopt;
    const unsigned char *p =
        reinterpret_cast<const unsigned char *>(data.data()) + off;
    std::size_t avail = data.size() - off;
    if (std::memcmp(p, kFrameSync, 4) != 0)
        return std::nullopt;

    std::size_t pos = 4;
    FrameHeader h;
    h.tag = p[pos++];

    auto varint = [&](std::uint64_t &out) -> bool {
        std::uint64_t v = 0;
        unsigned shift = 0;
        for (;;) {
            if (pos >= avail || shift >= 70)
                return false;
            std::uint8_t byte = p[pos++];
            v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
            if (!(byte & 0x80)) {
                out = v;
                return true;
            }
            shift += 7;
        }
    };
    if (!varint(h.blockSeq) || !varint(h.firstEventSeq) ||
        !varint(h.eventCount) || !varint(h.payloadLen)) {
        return std::nullopt;
    }
    if (pos + 8 > avail)
        return std::nullopt;
    if (h.payloadLen > kMaxPayloadLen || h.eventCount > h.payloadLen)
        return std::nullopt;
    h.payloadCrc = static_cast<std::uint32_t>(p[pos]) |
                   static_cast<std::uint32_t>(p[pos + 1]) << 8 |
                   static_cast<std::uint32_t>(p[pos + 2]) << 16 |
                   static_cast<std::uint32_t>(p[pos + 3]) << 24;
    std::uint32_t header_crc =
        static_cast<std::uint32_t>(p[pos + 4]) |
        static_cast<std::uint32_t>(p[pos + 5]) << 8 |
        static_cast<std::uint32_t>(p[pos + 6]) << 16 |
        static_cast<std::uint32_t>(p[pos + 7]) << 24;
    if (crc32c(p, pos + 4) != header_crc)
        return std::nullopt;
    h.headerLen = pos + 8;
    return h;
}

/** Next offset >= from holding a valid frame header; npos if none. */
std::size_t
findNextFrame(std::string_view data, std::size_t from)
{
    while (from + kMinFrameBytes <= data.size()) {
        const void *hit =
            std::memchr(data.data() + from, kFrameSync[0],
                        data.size() - from - (kMinFrameBytes - 1));
        if (hit == nullptr)
            return std::string_view::npos;
        from = static_cast<std::size_t>(static_cast<const char *>(hit) -
                                        data.data());
        if (parseFrameAt(data, from))
            return from;
        ++from;
    }
    return std::string_view::npos;
}

/// @}

} // namespace

// ---------------------------------------------------------------------
// Text recorder
// ---------------------------------------------------------------------

TraceRecorder::TraceRecorder(std::ostream &os) : os_(os)
{
    buf_.reserve(kTextFlushBytes + 256);
}

void
TraceRecorder::attach(const Guest &guest)
{
    Tool::attach(guest);
    buf_ += "sigil-trace\t1\n";
    buf_ += "program\t";
    buf_ += guest.programName();
    buf_ += '\n';
}

void
TraceRecorder::maybeFlush()
{
    if (buf_.size() >= kTextFlushBytes) {
        os_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
        buf_.clear();
    }
}

void
TraceRecorder::put(char tag)
{
    buf_ += tag;
    buf_ += '\n';
    ++events_;
    maybeFlush();
}

void
TraceRecorder::put(char tag, std::uint64_t v0)
{
    buf_ += tag;
    buf_ += '\t';
    putUint(buf_, v0);
    buf_ += '\n';
    ++events_;
    maybeFlush();
}

void
TraceRecorder::put(char tag, std::uint64_t v0, std::uint64_t v1)
{
    buf_ += tag;
    buf_ += '\t';
    putUint(buf_, v0);
    buf_ += '\t';
    putUint(buf_, v1);
    buf_ += '\n';
    ++events_;
    maybeFlush();
}

void
TraceRecorder::ensureFunction(FunctionId fn)
{
    std::size_t idx = static_cast<std::size_t>(fn);
    if (idx >= emitted_.size())
        emitted_.resize(idx + 1, false);
    if (emitted_[idx])
        return;
    emitted_[idx] = true;
    buf_ += "F\t";
    putUint(buf_, static_cast<std::uint64_t>(static_cast<std::uint32_t>(fn)));
    buf_ += '\t';
    buf_ += guest_->functions().name(fn);
    buf_ += '\n';
}

void
TraceRecorder::fnEnter(ContextId ctx, CallNum call)
{
    (void)call;
    FunctionId fn = guest_->contexts().function(ctx);
    ensureFunction(fn);
    put('E', static_cast<std::uint64_t>(static_cast<std::uint32_t>(fn)));
}

void
TraceRecorder::fnLeave(ContextId ctx, CallNum call)
{
    (void)ctx;
    (void)call;
    put('L');
}

void
TraceRecorder::memRead(Addr addr, unsigned size)
{
    put('R', addr, size);
}

void
TraceRecorder::memWrite(Addr addr, unsigned size)
{
    put('W', addr, size);
}

void
TraceRecorder::op(std::uint64_t iops, std::uint64_t flops)
{
    put('O', iops, flops);
}

void
TraceRecorder::branch(bool taken)
{
    put('B', taken ? 1 : 0);
}

void
TraceRecorder::threadSwitch(ThreadId tid)
{
    put('T', tid);
}

void
TraceRecorder::barrier()
{
    put('Z');
}

void
TraceRecorder::roi(bool active)
{
    put('I', active ? 1 : 0);
}

void
TraceRecorder::processBatch(const EventBuffer &batch)
{
    for (std::size_t i = 0, n = batch.size(); i < n; ++i) {
        std::uint64_t a = batch.a(i);
        std::uint64_t b = batch.b(i);
        switch (batch.kind(i)) {
          case EventKind::kRead:
            put('R', a, b);
            break;
          case EventKind::kWrite:
            put('W', a, b);
            break;
          case EventKind::kOp:
            put('O', a, b);
            break;
          case EventKind::kBranch:
            put('B', a ? 1 : 0);
            break;
          case EventKind::kEnter: {
            FunctionId fn = static_cast<FunctionId>(a);
            ensureFunction(fn);
            put('E', a);
            break;
          }
          case EventKind::kLeave:
            put('L');
            break;
          case EventKind::kThreadSwitch:
            put('T', a);
            break;
          case EventKind::kBarrier:
            put('Z');
            break;
          case EventKind::kRoi:
            put('I', a ? 1 : 0);
            break;
        }
    }
}

void
TraceRecorder::finish()
{
    if (finished_)
        return;
    finished_ = true;
    buf_ += "end\n";
    os_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
    buf_.clear();
    os_.flush();
}

// ---------------------------------------------------------------------
// Binary recorder
// ---------------------------------------------------------------------

BinaryTraceRecorder::BinaryTraceRecorder(std::ostream &os,
                                         TraceFormat format,
                                         std::size_t block_events)
    : os_(os), format_(format), maxBlockEvents_(block_events)
{
    if (maxBlockEvents_ == 0)
        fatal("binary trace: block size must be at least 1 event");
}

void
BinaryTraceRecorder::attach(const Guest &guest)
{
    Tool::attach(guest);
    std::string header(format_ == TraceFormat::SGB2 ? kSgb2Magic
                                                    : kSgb1Magic,
                       4);
    putVarint(header, 1); // version
    const std::string &name = guest.programName();
    putVarint(header, name.size());
    header += name;
    os_.write(header.data(), static_cast<std::streamsize>(header.size()));
}

void
BinaryTraceRecorder::ensureFunction(FunctionId fn)
{
    std::size_t idx = static_cast<std::size_t>(fn);
    if (idx >= emitted_.size())
        emitted_.resize(idx + 1, false);
    if (emitted_[idx])
        return;
    emitted_[idx] = true;
    // SGB1 tags each record as its own section; SGB2 accumulates bare
    // records into one function-block payload framed by flushBlock().
    if (format_ == TraceFormat::SGB1)
        pendingFns_.push_back(static_cast<char>(kSecFunction));
    putVarint(pendingFns_,
              static_cast<std::uint64_t>(static_cast<std::uint32_t>(fn)));
    const std::string &name = guest_->functions().name(fn);
    putVarint(pendingFns_, name.size());
    pendingFns_ += name;
}

void
BinaryTraceRecorder::writeFrame(std::uint8_t tag, std::string_view payload,
                                std::uint64_t first_event,
                                std::uint64_t event_count)
{
    std::string hdr;
    hdr.append(reinterpret_cast<const char *>(kFrameSync), 4);
    hdr.push_back(static_cast<char>(tag));
    putVarint(hdr, blockSeq_++);
    putVarint(hdr, first_event);
    putVarint(hdr, event_count);
    putVarint(hdr, payload.size());
    putU32le(hdr, crc32c(payload.data(), payload.size()));
    putU32le(hdr, crc32c(hdr.data(), hdr.size()));
    os_.write(hdr.data(), static_cast<std::streamsize>(hdr.size()));
    os_.write(payload.data(), static_cast<std::streamsize>(payload.size()));
}

void
BinaryTraceRecorder::flushBlock()
{
    std::uint64_t first_event = events_ - blockEvents_;
    if (!pendingFns_.empty()) {
        if (format_ == TraceFormat::SGB1) {
            os_.write(pendingFns_.data(),
                      static_cast<std::streamsize>(pendingFns_.size()));
        } else {
            writeFrame(kTagFunctions, pendingFns_, first_event, 0);
        }
        pendingFns_.clear();
    }
    if (blockEvents_ == 0)
        return;
    if (format_ == TraceFormat::SGB1) {
        std::string frame;
        frame.push_back(static_cast<char>(kSecBlock));
        putVarint(frame, blockEvents_);
        os_.write(frame.data(), static_cast<std::streamsize>(frame.size()));
        os_.write(block_.data(), static_cast<std::streamsize>(block_.size()));
    } else {
        writeFrame(kTagEvents, block_, first_event, blockEvents_);
        // Each SGB2 block must decode independently (salvage can drop
        // any predecessor), so the address delta chain restarts here.
        prevAddr_ = 0;
    }
    block_.clear();
    blockEvents_ = 0;
}

void
BinaryTraceRecorder::event(std::uint8_t opcode)
{
    block_.push_back(static_cast<char>(opcode));
    ++events_;
    if (++blockEvents_ >= maxBlockEvents_)
        flushBlock();
}

void
BinaryTraceRecorder::access(std::uint8_t opcode, Addr addr, unsigned size)
{
    block_.push_back(static_cast<char>(opcode));
    putVarint(block_, zigzag(static_cast<std::int64_t>(addr - prevAddr_)));
    putVarint(block_, size);
    prevAddr_ = addr;
    ++events_;
    if (++blockEvents_ >= maxBlockEvents_)
        flushBlock();
}

void
BinaryTraceRecorder::enterEvent(std::uint64_t fn_id)
{
    block_.push_back(static_cast<char>(kOpEnter));
    putVarint(block_, fn_id);
    ++events_;
    if (++blockEvents_ >= maxBlockEvents_)
        flushBlock();
}

void
BinaryTraceRecorder::fnEnter(ContextId ctx, CallNum call)
{
    (void)call;
    FunctionId fn = guest_->contexts().function(ctx);
    ensureFunction(fn);
    enterEvent(static_cast<std::uint64_t>(static_cast<std::uint32_t>(fn)));
}

void
BinaryTraceRecorder::fnLeave(ContextId ctx, CallNum call)
{
    (void)ctx;
    (void)call;
    event(kOpLeave);
}

void
BinaryTraceRecorder::memRead(Addr addr, unsigned size)
{
    access(kOpRead, addr, size);
}

void
BinaryTraceRecorder::memWrite(Addr addr, unsigned size)
{
    access(kOpWrite, addr, size);
}

void
BinaryTraceRecorder::op(std::uint64_t iops, std::uint64_t flops)
{
    block_.push_back(static_cast<char>(kOpOp));
    putVarint(block_, iops);
    putVarint(block_, flops);
    ++events_;
    if (++blockEvents_ >= maxBlockEvents_)
        flushBlock();
}

void
BinaryTraceRecorder::branch(bool taken)
{
    event(taken ? kOpBranchTaken : kOpBranchNotTaken);
}

void
BinaryTraceRecorder::threadSwitch(ThreadId tid)
{
    block_.push_back(static_cast<char>(kOpThreadSwitch));
    putVarint(block_, tid);
    ++events_;
    if (++blockEvents_ >= maxBlockEvents_)
        flushBlock();
}

void
BinaryTraceRecorder::barrier()
{
    event(kOpBarrier);
}

void
BinaryTraceRecorder::roi(bool active)
{
    event(active ? kOpRoiBegin : kOpRoiEnd);
}

void
BinaryTraceRecorder::processBatch(const EventBuffer &batch)
{
    for (std::size_t i = 0, n = batch.size(); i < n; ++i) {
        std::uint64_t a = batch.a(i);
        std::uint64_t b = batch.b(i);
        switch (batch.kind(i)) {
          case EventKind::kRead:
            access(kOpRead, a, static_cast<unsigned>(b));
            break;
          case EventKind::kWrite:
            access(kOpWrite, a, static_cast<unsigned>(b));
            break;
          case EventKind::kOp:
            op(a, b);
            break;
          case EventKind::kBranch:
            event(a ? kOpBranchTaken : kOpBranchNotTaken);
            break;
          case EventKind::kEnter:
            ensureFunction(static_cast<FunctionId>(a));
            enterEvent(a);
            break;
          case EventKind::kLeave:
            event(kOpLeave);
            break;
          case EventKind::kThreadSwitch:
            threadSwitch(static_cast<ThreadId>(a));
            break;
          case EventKind::kBarrier:
            event(kOpBarrier);
            break;
          case EventKind::kRoi:
            event(a ? kOpRoiBegin : kOpRoiEnd);
            break;
        }
    }
}

void
BinaryTraceRecorder::finish()
{
    if (finished_)
        return;
    finished_ = true;
    flushBlock();
    if (format_ == TraceFormat::SGB1) {
        char end = static_cast<char>(kSecEnd);
        os_.write(&end, 1);
    } else {
        // The end frame doubles as the trailer: firstEventSeq is the
        // total event count, giving salvage replays the ground truth
        // for their skipped-vs-delivered accounting.
        writeFrame(kTagEnd, {}, events_, 0);
    }
    os_.flush();
}

// ---------------------------------------------------------------------
// Binary replay session
// ---------------------------------------------------------------------

struct BinaryReplaySession::Impl
{
    Guest &guest;
    ReplayOptions opts;
    ReplayReport report;
    ReplayCtx ctx;
    std::string data;
    std::size_t pos = 0;       ///< offset of the next frame
    std::uint64_t streamPos = 0; ///< next expected event sequence
    std::uint64_t eventBlocks = 0;
    bool sgb1 = false;
    bool done = false;
    bool finished = false;

    Impl(std::istream &is, Guest &g, const ReplayOptions &o)
        : guest(g), opts(o), ctx{g, o.policy, report, {}, 0}
    {
        data = slurp(is);
        start();
    }

    bool salvage() const { return opts.policy == ReplayPolicy::Salvage; }

    /** Record e; in strict mode it also stops the session. */
    void
    fail(TraceError e)
    {
        if (salvage()) {
            ctx.recordError(e, opts.maxRecordedErrors);
        } else {
            report.error = std::move(e);
            done = true;
        }
    }

    void
    start()
    {
        if (data.size() >= 4 &&
            std::memcmp(data.data(), kSgb1Magic, 4) == 0) {
            sgb1 = true;
            pos = 4;
            return;
        }
        if (data.size() >= 4 &&
            std::memcmp(data.data(), kSgb2Magic, 4) == 0) {
            // Preamble: version + program name (informational).
            Cursor c(data.data() + 4, data.size() - 4, 4, -1,
                     TraceErrorCause::Truncated);
            try {
                std::uint64_t version = c.varint();
                if (version != 1)
                    raiseError(TraceErrorCause::BadVersion, 4, -1,
                               "unsupported version " +
                                   std::to_string(version));
                c.bytes(c.varint());
                pos = 4 + static_cast<std::size_t>(c.offset() - 4);
            } catch (TraceAbort &a) {
                fail(std::move(a.err));
                if (salvage())
                    resyncFrom(4);
            }
            return;
        }
        TraceError e;
        e.cause = TraceErrorCause::BadMagic;
        e.byteOffset = 0;
        e.detail = "not a binary sigil trace";
        fail(std::move(e));
        // Salvage can still mine a damaged preamble for valid SGB2
        // frames: every frame is self-describing.
        if (salvage())
            resyncFrom(0);
    }

    /**
     * Scan forward for the next valid frame header, accounting the
     * gap. Ends the session (as truncation) when none remains.
     */
    void
    resyncFrom(std::size_t from)
    {
        std::size_t np = findNextFrame(data, from);
        if (np == std::string_view::npos) {
            report.bytesSkipped += data.size() - pos;
            report.truncated = true;
            done = true;
            pos = data.size();
            return;
        }
        report.bytesSkipped += np - pos;
        ++report.resyncs;
        pos = np;
    }

    /** Drop an event frame, accounting its events as skipped. */
    void
    skipEventFrame(const FrameHeader &h)
    {
        if (h.tag != kTagEvents)
            return;
        ++eventBlocks;
        if (h.firstEventSeq < streamPos) {
            ++report.blocksStale;
            return;
        }
        report.eventsSkipped +=
            h.firstEventSeq + h.eventCount - streamPos;
        streamPos = h.firstEventSeq + h.eventCount;
        ++report.blocksSkipped;
    }

    bool
    step()
    {
        if (done)
            return false;
        if (sgb1) {
            stepSgb1();
            return !done;
        }
        if (pos >= data.size()) {
            if (!report.sawTrailer) {
                TraceError e;
                e.cause = TraceErrorCause::Truncated;
                e.byteOffset = pos;
                e.detail = "missing end frame";
                report.truncated = true;
                fail(std::move(e));
            }
            done = true;
            return false;
        }

        std::optional<FrameHeader> h = parseFrameAt(data, pos);
        if (!h) {
            TraceError e;
            e.byteOffset = pos;
            if (data.size() - pos < kMinFrameBytes) {
                e.cause = TraceErrorCause::Truncated;
                e.detail = "stream ends inside a frame";
            } else if (std::memcmp(data.data() + pos, kFrameSync, 4) ==
                       0) {
                e.cause = TraceErrorCause::HeaderCrc;
                e.detail = "frame header failed validation";
            } else {
                e.cause = TraceErrorCause::BadRecord;
                e.detail = "expected frame sync bytes";
            }
            bool was_salvage = salvage();
            fail(std::move(e));
            if (was_salvage)
                resyncFrom(pos + 1);
            return !done;
        }

        std::size_t frame_end =
            pos + h->headerLen + static_cast<std::size_t>(h->payloadLen);
        std::int64_t bidx = static_cast<std::int64_t>(h->blockSeq);
        if (frame_end > data.size()) {
            TraceError e;
            e.cause = TraceErrorCause::Truncated;
            e.byteOffset = pos;
            e.blockIndex = bidx;
            e.detail = "stream ends inside a block payload";
            bool was_salvage = salvage();
            fail(std::move(e));
            if (was_salvage) {
                skipEventFrame(*h);
                resyncFrom(pos + 1);
            }
            return !done;
        }

        const char *payload = data.data() + pos + h->headerLen;
        if (crc32c(payload, static_cast<std::size_t>(h->payloadLen)) !=
            h->payloadCrc) {
            TraceError e;
            e.cause = TraceErrorCause::PayloadCrc;
            e.byteOffset = pos;
            e.blockIndex = bidx;
            e.detail = "block payload failed validation";
            bool was_salvage = salvage();
            fail(std::move(e));
            if (was_salvage) {
                skipEventFrame(*h);
                report.bytesSkipped += frame_end - pos;
                pos = frame_end;
            }
            return !done;
        }

        std::uint64_t payload_off = pos + h->headerLen;
        switch (h->tag) {
          case kTagEnd:
            report.sawTrailer = true;
            report.totalEventsRecorded = h->firstEventSeq;
            if (h->firstEventSeq > streamPos) {
                // Blocks lost immediately before the trailer.
                report.eventsSkipped += h->firstEventSeq - streamPos;
                streamPos = h->firstEventSeq;
            }
            pos = frame_end;
            done = true;
            break;

          case kTagFunctions: {
            Cursor c(payload, static_cast<std::size_t>(h->payloadLen),
                     payload_off, bidx, TraceErrorCause::BoundsExceeded);
            try {
                while (!c.atEnd()) {
                    std::uint64_t id = c.varint();
                    ctx.fnMap[id] =
                        guest.functions().intern(c.bytes(c.varint()));
                }
            } catch (TraceAbort &a) {
                fail(std::move(a.err));
            }
            pos = frame_end;
            break;
          }

          case kTagEvents: {
            if (h->firstEventSeq < streamPos) {
                // Duplicate or reordered stale block: its events were
                // already delivered (or accounted as a gap); replaying
                // it would double-deliver.
                ++report.blocksStale;
                ++eventBlocks;
                pos = frame_end;
                break;
            }
            if (h->firstEventSeq > streamPos) {
                // Gap: whole blocks were lost before this one.
                report.eventsSkipped += h->firstEventSeq - streamPos;
                streamPos = h->firstEventSeq;
            }
            Cursor c(payload, static_cast<std::size_t>(h->payloadLen),
                     payload_off, bidx, TraceErrorCause::BoundsExceeded);
            std::uint64_t prev_addr = 0;
            std::uint64_t delivered = 0;
            bool clean = true;
            try {
                for (; delivered < h->eventCount; ++delivered)
                    ctx.deliverOne(c, prev_addr, bidx);
                if (!c.atEnd())
                    raiseError(TraceErrorCause::BadRecord, c.offset(),
                               bidx, "trailing bytes in event block");
            } catch (TraceAbort &a) {
                clean = false;
                fail(std::move(a.err));
                if (salvage()) {
                    report.eventsSkipped += h->eventCount - delivered;
                    ++report.blocksSkipped;
                }
            }
            streamPos = h->firstEventSeq + h->eventCount;
            if (clean)
                ++report.blocksDelivered;
            ++eventBlocks;
            pos = frame_end;
            break;
          }

          default: {
            TraceError e;
            e.cause = TraceErrorCause::UnknownSection;
            e.byteOffset = pos;
            e.blockIndex = bidx;
            e.detail = "frame tag " + std::to_string(h->tag);
            bool was_salvage = salvage();
            fail(std::move(e));
            if (was_salvage) {
                // Valid frame of an unknown (future?) type: its length
                // is trustworthy, so skip it precisely.
                ++report.blocksSkipped;
                report.bytesSkipped += frame_end - pos;
                pos = frame_end;
            }
            break;
          }
        }
        return !done;
    }

    /**
     * SGB1 has no frame boundaries to step or salvage by: process the
     * entire stream in one step. Damage ends the replay at the last
     * decodable event — reported, never fatal.
     */
    void
    stepSgb1()
    {
        done = true;
        Cursor c(data.data() + pos, data.size() - pos, pos, -1,
                 TraceErrorCause::Truncated);
        try {
            std::uint64_t version = c.varint();
            if (version != 1)
                raiseError(TraceErrorCause::BadVersion, pos, -1,
                           "unsupported version " +
                               std::to_string(version));
            c.bytes(c.varint()); // program name — informational
            std::uint64_t prev_addr = 0;
            for (;;) {
                std::uint64_t at = c.offset();
                std::uint8_t sec = c.u8();
                if (sec == kSecEnd) {
                    report.sawTrailer = true;
                    report.totalEventsRecorded = report.eventsDelivered;
                    break;
                }
                if (sec == kSecFunction) {
                    std::uint64_t id = c.varint();
                    ctx.fnMap[id] =
                        guest.functions().intern(c.bytes(c.varint()));
                    continue;
                }
                if (sec != kSecBlock)
                    raiseError(TraceErrorCause::UnknownSection, at, -1,
                               "section tag " + std::to_string(sec));
                std::uint64_t count = c.varint();
                if (count > c.remaining())
                    raiseError(TraceErrorCause::Truncated, at, -1,
                               "block claims more events than bytes "
                               "remain");
                for (std::uint64_t i = 0; i < count; ++i)
                    ctx.deliverOne(c, prev_addr, -1);
                ++report.blocksDelivered;
                ++eventBlocks;
            }
        } catch (TraceAbort &a) {
            report.truncated = a.err.cause == TraceErrorCause::Truncated;
            fail(std::move(a.err));
        }
        pos = data.size();
    }

    ReplayReport
    finishReplay()
    {
        if (!finished) {
            finished = true;
            if (!report.error.has_value())
                guest.finish();
        }
        return report;
    }
};

BinaryReplaySession::BinaryReplaySession(std::istream &is, Guest &guest,
                                         const ReplayOptions &options)
    : impl_(std::make_unique<Impl>(is, guest, options))
{}

BinaryReplaySession::~BinaryReplaySession() = default;

bool
BinaryReplaySession::step()
{
    return impl_->step();
}

bool
BinaryReplaySession::done() const
{
    return impl_->done;
}

const ReplayReport &
BinaryReplaySession::report() const
{
    return impl_->report;
}

ReplayReport
BinaryReplaySession::finish()
{
    return impl_->finishReplay();
}

std::uint64_t
BinaryReplaySession::blocksProcessed() const
{
    return impl_->eventBlocks;
}

std::uint64_t
BinaryReplaySession::nextOffset() const
{
    return impl_->pos;
}

void
BinaryReplaySession::saveReaderState(ByteSink &sink) const
{
    const Impl &s = *impl_;
    sink.raw("SGRS", 4);
    sink.u8(1); // version
    sink.u64(s.pos);
    sink.u64(s.streamPos);
    sink.u64(s.eventBlocks);
    sink.u64(s.ctx.synthCounter);
    const ReplayReport &r = s.report;
    sink.u64(r.eventsDelivered);
    sink.u64(r.eventsSkipped);
    sink.u64(r.blocksDelivered);
    sink.u64(r.blocksSkipped);
    sink.u64(r.blocksStale);
    sink.u64(r.bytesSkipped);
    sink.u64(r.resyncs);
    sink.u64(r.leavesDropped);
    sink.u64(r.roiDropped);
    sink.u64(r.functionsSynthesized);
    sink.varint(s.ctx.fnMap.size());
    for (const auto &[id, fn] : s.ctx.fnMap) {
        sink.varint(id);
        sink.str(s.guest.functions().name(fn));
    }
}

bool
BinaryReplaySession::restoreReaderState(ByteSource &src)
{
    Impl &s = *impl_;
    char magic[4];
    src.raw(magic, 4);
    if (!src.ok() || std::memcmp(magic, "SGRS", 4) != 0)
        return false;
    if (src.u8() != 1)
        return false;
    std::uint64_t pos = src.u64();
    s.streamPos = src.u64();
    s.eventBlocks = src.u64();
    s.ctx.synthCounter = src.u64();
    ReplayReport &r = s.report;
    r.eventsDelivered = src.u64();
    r.eventsSkipped = src.u64();
    r.blocksDelivered = src.u64();
    r.blocksSkipped = src.u64();
    r.blocksStale = src.u64();
    r.bytesSkipped = src.u64();
    r.resyncs = src.u64();
    r.leavesDropped = src.u64();
    r.roiDropped = src.u64();
    r.functionsSynthesized = src.u64();
    std::uint64_t n = src.varint();
    s.ctx.fnMap.clear();
    for (std::uint64_t i = 0; i < n && src.ok(); ++i) {
        std::uint64_t id = src.varint();
        s.ctx.fnMap[id] = s.guest.functions().intern(src.str());
    }
    if (!src.ok() || s.sgb1 || pos > s.data.size()) {
        s.done = true;
        return false;
    }
    s.pos = static_cast<std::size_t>(pos);
    s.done = false;
    // A session that already errored cannot be resumed over the error.
    return !r.error.has_value();
}

// ---------------------------------------------------------------------
// Replay entry points
// ---------------------------------------------------------------------

namespace {

/**
 * Structured text replay shared by the strict legacy wrapper and the
 * fault-tolerant overload. Tracks the 1-based line number and the
 * absolute byte offset of every line so each rejection names its
 * position and the offending token.
 */
ReplayReport
replayTextTrace(std::istream &is, Guest &guest,
                const ReplayOptions &opts)
{
    ReplayReport report;
    ReplayCtx ctx{guest, opts.policy, report, {}, 0};
    std::string line;
    bool saw_header = false;
    std::uint64_t line_no = 0;
    std::uint64_t offset = 0;

    // Returns true when the line was consumed (or skipped in salvage);
    // false when a strict error should stop the loop.
    auto reject = [&](TraceErrorCause cause, std::string detail,
                      bool counts_event) {
        TraceError e;
        e.cause = cause;
        e.byteOffset = offset;
        e.line = line_no;
        e.detail = std::move(detail);
        if (opts.policy == ReplayPolicy::Salvage) {
            ctx.recordError(e, opts.maxRecordedErrors);
            if (counts_event)
                ++report.eventsSkipped;
            report.bytesSkipped += line.size() + 1;
            return true;
        }
        report.error = std::move(e);
        return false;
    };

    while (std::getline(is, line)) {
        ++line_no;
        std::uint64_t this_offset = offset;
        offset += line.size() + 1;
        (void)this_offset;
        if (line.empty() || line[0] == '#')
            continue;
        if (!saw_header) {
            if (line.rfind("sigil-trace\t1", 0) != 0) {
                offset -= line.size() + 1;
                if (!reject(TraceErrorCause::BadMagic,
                            "not a sigil trace header: '" + line + "'",
                            false)) {
                    return report;
                }
                offset += line.size() + 1;
                // Without a header this is not a trace at all — even
                // salvage gives up rather than replay random text.
                report.truncated = true;
                return report;
            }
            saw_header = true;
            continue;
        }
        offset -= line.size() + 1; // report positions at line start
        char tag = line[0];
        const char *rest = line.c_str() + (line.size() > 1 ? 2 : 1);
        bool ok = true;
        switch (tag) {
          case 'p': // program line — informational
            break;
          case 'F': {
            char *end = nullptr;
            long id = std::strtol(rest, &end, 10);
            if (end == rest || *end != '\t') {
                ok = reject(TraceErrorCause::BadRecord,
                            "bad function record: token '" +
                                std::string(rest) + "'",
                            false);
                break;
            }
            ctx.fnMap[static_cast<std::uint64_t>(id)] =
                guest.functions().intern(end + 1);
            break;
          }
          case 'E': {
            char *end = nullptr;
            long id = std::strtol(rest, &end, 10);
            if (end == rest) {
                ok = reject(TraceErrorCause::BadRecord,
                            "bad enter record: token '" +
                                std::string(rest) + "'",
                            true);
                break;
            }
            auto it = ctx.fnMap.find(static_cast<std::uint64_t>(id));
            if (it == ctx.fnMap.end()) {
                if (opts.policy != ReplayPolicy::Salvage) {
                    ok = reject(TraceErrorCause::UnknownFunction,
                                "unknown function id " +
                                    std::to_string(id),
                                true);
                    break;
                }
                guest.enter(ctx.resolveFunction(
                    static_cast<std::uint64_t>(id), offset, -1));
            } else {
                guest.enter(it->second);
            }
            ++report.eventsDelivered;
            break;
          }
          case 'L':
            if (guest.callDepth() == 0) {
                if (opts.policy == ReplayPolicy::Salvage) {
                    ++report.leavesDropped;
                    ++report.eventsDelivered;
                    break;
                }
                ok = reject(TraceErrorCause::BadRecord,
                            "leave with empty call stack", true);
                break;
            }
            guest.leave();
            ++report.eventsDelivered;
            break;
          case 'R':
          case 'W': {
            char *end = nullptr;
            unsigned long long addr = std::strtoull(rest, &end, 10);
            if (end == rest || *end != '\t') {
                ok = reject(TraceErrorCause::BadRecord,
                            "bad access record: token '" +
                                std::string(rest) + "'",
                            true);
                break;
            }
            unsigned long size = std::strtoul(end + 1, nullptr, 10);
            if (size > kMaxAccessSize) {
                ok = reject(TraceErrorCause::BadRecord,
                            "unreasonable access size " +
                                std::to_string(size),
                            true);
                break;
            }
            if (guest.callDepth() == 0) {
                ok = reject(TraceErrorCause::BadRecord,
                            "access outside any function", true);
                break;
            }
            if (tag == 'R')
                guest.read(static_cast<Addr>(addr),
                           static_cast<unsigned>(size));
            else
                guest.write(static_cast<Addr>(addr),
                            static_cast<unsigned>(size));
            ++report.eventsDelivered;
            break;
          }
          case 'O': {
            char *end = nullptr;
            unsigned long long iops = std::strtoull(rest, &end, 10);
            if (end == rest || *end != '\t') {
                ok = reject(TraceErrorCause::BadRecord,
                            "bad op record: token '" +
                                std::string(rest) + "'",
                            true);
                break;
            }
            unsigned long long flops = std::strtoull(end + 1, nullptr, 10);
            if (guest.callDepth() == 0) {
                ok = reject(TraceErrorCause::BadRecord,
                            "op outside any function", true);
                break;
            }
            if (iops)
                guest.iop(iops);
            if (flops)
                guest.flop(flops);
            ++report.eventsDelivered;
            break;
          }
          case 'B':
            if (guest.callDepth() == 0) {
                ok = reject(TraceErrorCause::BadRecord,
                            "branch outside any function", true);
                break;
            }
            guest.branch(rest[0] == '1');
            ++report.eventsDelivered;
            break;
          case 'T': {
            char *end = nullptr;
            unsigned long tid = std::strtoul(rest, &end, 10);
            if (end == rest || tid >= kMaxThreads) {
                ok = reject(TraceErrorCause::BadRecord,
                            "bad thread-switch record: token '" +
                                std::string(rest) + "'",
                            true);
                break;
            }
            while (guest.numThreads() <= tid)
                guest.spawnThread();
            guest.switchThread(static_cast<ThreadId>(tid));
            ++report.eventsDelivered;
            break;
          }
          case 'Z':
            guest.barrier();
            ++report.eventsDelivered;
            break;
          case 'I': {
            bool begin = rest[0] == '1';
            if (guest.inRoi() == begin) {
                if (opts.policy == ReplayPolicy::Salvage) {
                    ++report.roiDropped;
                    ++report.eventsDelivered;
                    break;
                }
                ok = reject(TraceErrorCause::BadRecord,
                            begin ? "nested roi begin"
                                  : "roi end outside roi",
                            true);
                break;
            }
            if (begin)
                guest.roiBegin();
            else
                guest.roiEnd();
            ++report.eventsDelivered;
            break;
          }
          case 'e':
            if (line == "end") {
                report.sawTrailer = true;
                break;
            }
            ok = reject(TraceErrorCause::BadRecord,
                        "unknown record tag 'e' in line '" + line + "'",
                        true);
            break;
          default:
            ok = reject(TraceErrorCause::BadRecord,
                        "unknown record tag '" + std::string(1, tag) +
                            "'",
                        true);
            break;
        }
        offset += line.size() + 1;
        if (!ok)
            return report;
        if (report.sawTrailer)
            break;
    }
    if (!saw_header) {
        TraceError e;
        e.cause = TraceErrorCause::BadMagic;
        e.byteOffset = 0;
        e.line = line_no;
        e.detail = "empty input";
        report.error = std::move(e);
        return report;
    }
    if (!report.sawTrailer) {
        report.truncated = true;
        if (opts.policy != ReplayPolicy::Salvage) {
            TraceError e;
            e.cause = TraceErrorCause::Truncated;
            e.byteOffset = offset;
            e.line = line_no;
            e.detail = "missing 'end' marker";
            report.error = std::move(e);
            return report;
        }
    }
    guest.finish();
    return report;
}

} // namespace

std::uint64_t
replayTrace(std::istream &is, Guest &guest)
{
    ReplayReport report = replayTextTrace(is, guest, ReplayOptions{});
    if (report.error.has_value())
        fatal("trace replay: %s", report.error->message().c_str());
    return report.eventsDelivered;
}

ReplayReport
replayTrace(std::istream &is, Guest &guest, const ReplayOptions &options)
{
    return replayTextTrace(is, guest, options);
}

ReplayReport
replayBinaryTrace(std::istream &is, Guest &guest,
                  const ReplayOptions &options)
{
    BinaryReplaySession session(is, guest, options);
    while (session.step()) {
    }
    return session.finish();
}

std::uint64_t
replayBinaryTrace(std::istream &is, Guest &guest)
{
    ReplayReport report = replayBinaryTrace(is, guest, ReplayOptions{});
    if (report.error.has_value())
        fatal("binary trace: %s", report.error->message().c_str());
    return report.eventsDelivered;
}

std::uint64_t
replayTraceFile(const std::string &path, Guest &guest)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot open '%s' for reading", path.c_str());
    char magic[4] = {0, 0, 0, 0};
    is.read(magic, sizeof(magic));
    is.clear();
    is.seekg(0);
    if (std::memcmp(magic, kSgb1Magic, sizeof(magic)) == 0 ||
        std::memcmp(magic, kSgb2Magic, sizeof(magic)) == 0) {
        return replayBinaryTrace(is, guest);
    }
    return replayTrace(is, guest);
}

ReplayReport
replayTraceFile(const std::string &path, Guest &guest,
                const ReplayOptions &options)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        ReplayReport report;
        TraceError e;
        e.cause = TraceErrorCause::Io;
        e.detail = "cannot open '" + path + "' for reading";
        report.error = std::move(e);
        return report;
    }
    char magic[4] = {0, 0, 0, 0};
    is.read(magic, sizeof(magic));
    is.clear();
    is.seekg(0);
    if (std::memcmp(magic, kSgb1Magic, sizeof(magic)) == 0 ||
        std::memcmp(magic, kSgb2Magic, sizeof(magic)) == 0) {
        return replayBinaryTrace(is, guest, options);
    }
    return replayTrace(is, guest, options);
}

std::vector<Sgb2BlockInfo>
scanSgb2Blocks(std::string_view trace)
{
    std::vector<Sgb2BlockInfo> blocks;
    std::size_t pos = 0;
    for (;;) {
        pos = findNextFrame(trace, pos);
        if (pos == std::string_view::npos)
            break;
        std::optional<FrameHeader> h = parseFrameAt(trace, pos);
        Sgb2BlockInfo info;
        info.offset = pos;
        info.length = h->headerLen + h->payloadLen;
        info.tag = h->tag;
        info.firstEventSeq = h->firstEventSeq;
        info.eventCount = h->eventCount;
        blocks.push_back(info);
        pos += static_cast<std::size_t>(info.length);
        if (pos >= trace.size())
            break;
    }
    return blocks;
}

std::uint64_t
convertTextTraceToBinary(std::istream &text, std::ostream &bin,
                         const std::string &program)
{
    Guest guest(program);
    BinaryTraceRecorder recorder(bin);
    guest.addTool(&recorder);
    return replayTrace(text, guest);
}

} // namespace sigil::vg
