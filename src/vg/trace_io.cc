#include "trace_io.hh"

#include <atomic>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <istream>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define SIGIL_HAVE_MMAP 1
#endif

#include "support/crc32c.hh"
#include "support/logging.hh"
#include "support/lz.hh"
#include "support/mem_governor.hh"
#include "support/watchdog.hh"

namespace sigil::vg {

namespace {

/** Flush the text formatting buffer once it crosses this size. */
constexpr std::size_t kTextFlushBytes = 64 * 1024;

constexpr char kSgb1Magic[4] = {'S', 'G', 'B', '1'};
constexpr char kSgb2Magic[4] = {'S', 'G', 'B', '2'};
constexpr char kSgb3Magic[4] = {'S', 'G', 'B', '3'};

/** @name SGB1 section tags */
/// @{
constexpr std::uint8_t kSecEnd = 0x00;
constexpr std::uint8_t kSecFunction = 0x01;
constexpr std::uint8_t kSecBlock = 0x02;
/// @}

/** @name SGB2 frame tags */
/// @{
constexpr std::uint8_t kTagEnd = 0x00;
constexpr std::uint8_t kTagFunctions = 0x01;
constexpr std::uint8_t kTagEvents = 0x02;
/**
 * Clean-shutdown trailer: written by finish() immediately before the
 * end frame, payload = varint total event count. Its presence proves
 * the recorder reached finish() and flushed everything; a salvaged
 * file without it is a crash capture (docs/FORMATS.md §3.4). Readers
 * predating this tag skip it as an unknown-but-valid frame.
 */
constexpr std::uint8_t kTagShutdown = 0x03;
/**
 * Seek-index trailer: written by finish() after the end frame, payload
 * = varint entry count followed by one (offset delta, first event seq
 * delta, event count) varint triple per event frame. A 12-byte footer
 * ([u64le index frame offset]["SGIX"]) after the frame lets a reader
 * find it in O(1) from the file tail (docs/FORMATS.md §3.5). It sits
 * past the end frame, so replay — which stops at the end frame — never
 * visits it; salvage readers skip it as a valid frame of known length.
 */
constexpr std::uint8_t kTagSeekIndex = 0x04;
/// @}

/** Seek-index footer magic (last 4 bytes of an indexed trace). */
constexpr char kSeekFooterMagic[4] = {'S', 'G', 'I', 'X'};
constexpr std::size_t kSeekFooterBytes = 12;

/** Test-only decode-worker delay hook (setDecodeWorkerDelayForTesting). */
void (*gDecodeWorkerDelayHook)(std::uint64_t block_seq) = nullptr;

/**
 * SGB2 frame sync bytes. Resynchronization scans for this pattern and
 * then validates the header CRC, so the bytes only need to be unlikely,
 * not impossible, inside payload data; the non-ASCII guards keep them
 * from colliding with text or with the file magic.
 */
constexpr unsigned char kFrameSync[4] = {0xa7, 'S', 'B', 0xb2};

/**
 * SGB3 frame sync bytes: distinct from SGB2 so resynchronization in
 * one flavour can never lock onto a frame of the other.
 */
constexpr unsigned char kFrameSync3[4] = {0xa7, 'S', 'B', 0xb3};

/** Smallest possible frame: sync + tag + 4 one-byte varints + 2 CRCs. */
constexpr std::size_t kMinFrameBytes = 4 + 1 + 4 + 8;

/** SGB3 adds a flags byte and the uncompressed-length varint. */
constexpr std::size_t kMinFrameBytes3 = 4 + 1 + 4 + 1 + 1 + 8;

/** SGB3 header flags: payload stored LZ-compressed (support/lz.hh). */
constexpr std::uint8_t kFrameFlagCompressed = 0x01;

/** Payloads below this are never worth a compression attempt (SGB3). */
constexpr std::size_t kMinCompressBytes = 32;

inline const unsigned char *
frameSync(bool sgb3)
{
    return sgb3 ? kFrameSync3 : kFrameSync;
}

inline std::size_t
minFrameBytes(bool sgb3)
{
    return sgb3 ? kMinFrameBytes3 : kMinFrameBytes;
}

/** Sanity caps rejecting absurd values decoded from corrupt input. */
constexpr std::uint64_t kMaxPayloadLen = std::uint64_t{1} << 26;
constexpr std::uint64_t kMaxNameLen = std::uint64_t{1} << 20;
constexpr std::uint64_t kMaxAccessSize = std::uint64_t{1} << 30;
constexpr std::uint64_t kMaxThreads = std::uint64_t{1} << 16;

/** @name Binary event opcodes (shared by SGB1 and SGB2) */
/// @{
constexpr std::uint8_t kOpRead = 1;
constexpr std::uint8_t kOpWrite = 2;
constexpr std::uint8_t kOpOp = 3;
constexpr std::uint8_t kOpBranchTaken = 4;
constexpr std::uint8_t kOpBranchNotTaken = 5;
constexpr std::uint8_t kOpEnter = 6;
constexpr std::uint8_t kOpLeave = 7;
constexpr std::uint8_t kOpThreadSwitch = 8;
constexpr std::uint8_t kOpBarrier = 9;
constexpr std::uint8_t kOpRoiBegin = 10;
constexpr std::uint8_t kOpRoiEnd = 11;
/// @}

void
putVarint(std::string &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<char>(v | 0x80));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v));
}

void
putU32le(std::string &out, std::uint32_t v)
{
    out.push_back(static_cast<char>(v));
    out.push_back(static_cast<char>(v >> 8));
    out.push_back(static_cast<char>(v >> 16));
    out.push_back(static_cast<char>(v >> 24));
}

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

void
putUint(std::string &out, std::uint64_t v)
{
    char tmp[20];
    auto [ptr, ec] = std::to_chars(tmp, tmp + sizeof(tmp), v);
    (void)ec;
    out.append(tmp, ptr);
}

/** Internal error transport; never escapes the public replay API. */
struct TraceAbort
{
    TraceError err;
};

[[noreturn]] void
raiseError(TraceErrorCause cause, std::uint64_t offset,
           std::int64_t block = -1, std::string detail = {})
{
    TraceError e;
    e.cause = cause;
    e.byteOffset = offset;
    e.blockIndex = block;
    e.detail = std::move(detail);
    throw TraceAbort{std::move(e)};
}

/** Read the remainder of a stream into one buffer. */
std::string
slurp(std::istream &is)
{
    std::string out;
    char buf[256 * 1024];
    for (;;) {
        is.read(buf, sizeof(buf));
        std::size_t got = static_cast<std::size_t>(is.gcount());
        if (got == 0)
            break;
        out.append(buf, got);
    }
    return out;
}

/**
 * Bounds-checked decoder over one byte range. Every read is validated
 * against the range end before touching memory, so no sequence of
 * input bytes can make the decoder read outside the buffer: an overrun
 * raises a TraceError (BoundsExceeded inside a length-framed block,
 * Truncated when the range is the rest of the stream) with the exact
 * offset instead of relying on stream EOF behaviour.
 */
class Cursor
{
  public:
    Cursor(const char *data, std::size_t len, std::uint64_t base_offset,
           std::int64_t block, TraceErrorCause bounds_cause)
        : data_(data), len_(len), base_(base_offset), block_(block),
          boundsCause_(bounds_cause)
    {}

    bool atEnd() const { return pos_ == len_; }
    std::size_t remaining() const { return len_ - pos_; }

    /** Absolute stream offset of the next byte. */
    std::uint64_t offset() const { return base_ + pos_; }

    std::uint8_t
    u8()
    {
        if (pos_ >= len_)
            raiseError(boundsCause_, offset(), block_);
        return static_cast<std::uint8_t>(data_[pos_++]);
    }

    std::uint64_t
    varint()
    {
        const unsigned char *p =
            reinterpret_cast<const unsigned char *>(data_) + pos_;
        std::size_t avail = len_ - pos_;
        // Fast path: first byte present and terminal.
        if (avail != 0 && !(p[0] & 0x80)) {
            ++pos_;
            return p[0];
        }
        std::uint64_t v = 0;
        unsigned shift = 0;
        std::size_t i = 0;
        for (;;) {
            if (i >= avail)
                raiseError(boundsCause_, base_ + pos_ + i, block_);
            if (shift >= 70)
                raiseError(TraceErrorCause::VarintOverflow,
                           base_ + pos_ + i, block_);
            std::uint8_t byte = p[i++];
            v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
            if (!(byte & 0x80)) {
                pos_ += i;
                return v;
            }
            shift += 7;
        }
    }

    std::string
    bytes(std::uint64_t n)
    {
        if (n > kMaxNameLen)
            raiseError(TraceErrorCause::BadRecord, offset(), block_,
                       "unreasonable string length");
        if (n > remaining())
            raiseError(boundsCause_, offset(), block_);
        std::string s(data_ + pos_, static_cast<std::size_t>(n));
        pos_ += static_cast<std::size_t>(n);
        return s;
    }

  private:
    const char *data_;
    std::size_t len_;
    std::size_t pos_ = 0;
    std::uint64_t base_;
    std::int64_t block_;
    TraceErrorCause boundsCause_;
};

/**
 * One syntactically decoded event awaiting semantic delivery. The
 * decode stage resolves the address-delta chain, so `a` holds the
 * absolute address for accesses (fn id / tid / iops for the others)
 * and `b` the size (flops for ops); `at` is the absolute offset of the
 * event's opcode byte, preserved so semantic errors raised at delivery
 * name the same position the fused serial decoder would.
 */
struct PreEvent
{
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint64_t at = 0;
    std::uint8_t opcode = 0;
};

/**
 * Syntactic half of event decoding: opcode, operand varints, and the
 * value sanity caps — everything that depends only on the payload
 * bytes, so it can run on a decode worker thread. Semantic checks
 * (call depth, ROI state, function-id resolution) stay with
 * ReplayCtx::deliverEvent on the delivery thread. The split preserves
 * the fused decoder's error positions exactly: operand errors are
 * raised here mid-event, value-cap errors at the event's `at`.
 */
void
decodeEvent(Cursor &c, std::uint64_t &prev_addr, std::int64_t block,
            PreEvent &ev)
{
    ev.at = c.offset();
    ev.opcode = c.u8();
    switch (ev.opcode) {
      case kOpRead:
      case kOpWrite: {
        prev_addr += static_cast<std::uint64_t>(unzigzag(c.varint()));
        std::uint64_t size = c.varint();
        if (size > kMaxAccessSize)
            raiseError(TraceErrorCause::BadRecord, ev.at, block,
                       "unreasonable access size " + std::to_string(size));
        ev.a = prev_addr;
        ev.b = size;
        break;
      }
      case kOpOp:
        ev.a = c.varint();
        ev.b = c.varint();
        break;
      case kOpBranchTaken:
      case kOpBranchNotTaken:
        break;
      case kOpEnter:
        ev.a = c.varint();
        break;
      case kOpLeave:
        break;
      case kOpThreadSwitch: {
        std::uint64_t tid = c.varint();
        if (tid >= kMaxThreads)
            raiseError(TraceErrorCause::BadRecord, ev.at, block,
                       "unreasonable thread id " + std::to_string(tid));
        ev.a = tid;
        break;
      }
      case kOpBarrier:
      case kOpRoiBegin:
      case kOpRoiEnd:
        break;
      default:
        raiseError(TraceErrorCause::UnknownOpcode, ev.at, block,
                   "opcode " + std::to_string(ev.opcode));
    }
}

/**
 * Shared event-delivery state of a binary replay: the guest, the
 * function-id map, and the salvage-mode guest-state reconciliation
 * (synthesized functions for lost name records, dropped underflowing
 * leaves, ROI transitions reconciled against the guest's actual state).
 */
struct ReplayCtx
{
    Guest &guest;
    ReplayPolicy policy;
    ReplayReport &report;
    std::unordered_map<std::uint64_t, FunctionId> fnMap;
    std::uint64_t synthCounter = 0;

    bool salvage() const { return policy == ReplayPolicy::Salvage; }

    void
    recordError(const TraceError &e, std::size_t max_errors)
    {
        if (report.errors.size() < max_errors)
            report.errors.push_back(e);
    }

    FunctionId
    resolveFunction(std::uint64_t id, std::uint64_t offset,
                    std::int64_t block)
    {
        auto it = fnMap.find(id);
        if (it != fnMap.end())
            return it->second;
        if (!salvage())
            raiseError(TraceErrorCause::UnknownFunction, offset, block,
                       "unknown function id " + std::to_string(id));
        // The function record was lost with its block: intern a
        // stable placeholder so call-tree structure survives even if
        // the name is gone.
        FunctionId fn = guest.functions().intern(
            "<lost-fn-" + std::to_string(++synthCounter) + ">");
        fnMap.emplace(id, fn);
        ++report.functionsSynthesized;
        return fn;
    }

    /**
     * Semantic half of event delivery: guest-state checks and the
     * actual tool dispatch. Always runs on the delivery thread, in
     * stream order, regardless of how many threads decoded the frame —
     * which is what keeps parallel replay bit-identical to serial.
     */
    void
    deliverEvent(const PreEvent &ev, std::int64_t block)
    {
        switch (ev.opcode) {
          case kOpRead:
          case kOpWrite:
            if (guest.callDepth() == 0) {
                // An access outside any function would panic the
                // guest; only decodable from a damaged stream.
                if (!salvage())
                    raiseError(TraceErrorCause::BadRecord, ev.at, block,
                               "access outside any function");
                break;
            }
            if (ev.opcode == kOpRead)
                guest.read(ev.a, static_cast<unsigned>(ev.b));
            else
                guest.write(ev.a, static_cast<unsigned>(ev.b));
            break;
          case kOpOp:
            if (guest.callDepth() == 0) {
                // Tools attribute ops to the current context, which
                // does not exist when the enclosing enter was lost.
                if (!salvage())
                    raiseError(TraceErrorCause::BadRecord, ev.at, block,
                               "op outside any function");
                break;
            }
            if (ev.a)
                guest.iop(ev.a);
            if (ev.b)
                guest.flop(ev.b);
            break;
          case kOpBranchTaken:
          case kOpBranchNotTaken:
            if (guest.callDepth() == 0) {
                if (!salvage())
                    raiseError(TraceErrorCause::BadRecord, ev.at, block,
                               "branch outside any function");
                break;
            }
            guest.branch(ev.opcode == kOpBranchTaken);
            break;
          case kOpEnter:
            guest.enter(resolveFunction(ev.a, ev.at, block));
            break;
          case kOpLeave:
            if (guest.callDepth() == 0) {
                // Call-depth reconciliation: the matching enter was
                // lost with a skipped block.
                if (!salvage())
                    raiseError(TraceErrorCause::BadRecord, ev.at, block,
                               "leave with empty call stack");
                ++report.leavesDropped;
                break;
            }
            guest.leave();
            break;
          case kOpThreadSwitch:
            while (guest.numThreads() <= ev.a)
                guest.spawnThread();
            guest.switchThread(static_cast<ThreadId>(ev.a));
            break;
          case kOpBarrier:
            guest.barrier();
            break;
          case kOpRoiBegin:
          case kOpRoiEnd: {
            bool begin = ev.opcode == kOpRoiBegin;
            if (guest.inRoi() == begin) {
                // ROI reconciliation: the paired transition was lost.
                if (!salvage())
                    raiseError(TraceErrorCause::BadRecord, ev.at, block,
                               begin ? "nested roi begin"
                                     : "roi end outside roi");
                ++report.roiDropped;
                break;
            }
            if (begin)
                guest.roiBegin();
            else
                guest.roiEnd();
            break;
          }
          default:
            // Unreachable: decodeEvent rejects unknown opcodes.
            raiseError(TraceErrorCause::UnknownOpcode, ev.at, block,
                       "opcode " + std::to_string(ev.opcode));
        }
        ++report.eventsDelivered;
    }
};

/** @name SGB2/SGB3 frame header parsing */
/// @{

struct FrameHeader
{
    std::uint8_t tag = 0;
    std::uint64_t blockSeq = 0;
    std::uint64_t firstEventSeq = 0;
    std::uint64_t eventCount = 0;
    std::uint64_t payloadLen = 0; ///< stored (possibly compressed) bytes
    std::uint32_t payloadCrc = 0;
    std::size_t headerLen = 0; ///< sync through headerCrc, inclusive
    /** SGB3 only: payload is LZ-compressed (frame flags bit 0). */
    bool compressed = false;
    /** Uncompressed payload length; equals payloadLen for SGB2. */
    std::uint64_t rawLen = 0;
};

/**
 * Try to parse and validate a frame header at data[off], in SGB2 or
 * (when `sgb3`) SGB3 layout. Fails (nullopt) on missing sync bytes,
 * malformed or overlong varints, implausible field values, unknown
 * SGB3 frame flags, or a header-CRC mismatch — all without reading
 * past the buffer, so it is safe to probe arbitrary offsets during
 * resynchronization.
 */
std::optional<FrameHeader>
parseFrameAt(std::string_view data, std::size_t off, bool sgb3)
{
    if (off + minFrameBytes(sgb3) > data.size())
        return std::nullopt;
    const unsigned char *p =
        reinterpret_cast<const unsigned char *>(data.data()) + off;
    std::size_t avail = data.size() - off;
    if (std::memcmp(p, frameSync(sgb3), 4) != 0)
        return std::nullopt;

    std::size_t pos = 4;
    FrameHeader h;
    h.tag = p[pos++];

    auto varint = [&](std::uint64_t &out) -> bool {
        std::uint64_t v = 0;
        unsigned shift = 0;
        for (;;) {
            if (pos >= avail || shift >= 70)
                return false;
            std::uint8_t byte = p[pos++];
            v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
            if (!(byte & 0x80)) {
                out = v;
                return true;
            }
            shift += 7;
        }
    };
    if (!varint(h.blockSeq) || !varint(h.firstEventSeq) ||
        !varint(h.eventCount) || !varint(h.payloadLen)) {
        return std::nullopt;
    }
    if (sgb3) {
        if (pos >= avail)
            return std::nullopt;
        std::uint8_t flags = p[pos++];
        if (flags & ~kFrameFlagCompressed)
            return std::nullopt;
        h.compressed = flags & kFrameFlagCompressed;
        if (!varint(h.rawLen))
            return std::nullopt;
        // An uncompressed frame must store exactly its raw bytes; a
        // compressed one must actually be smaller, or the writer would
        // have stored it raw.
        if (h.compressed ? h.payloadLen >= h.rawLen
                         : h.payloadLen != h.rawLen) {
            return std::nullopt;
        }
    } else {
        h.rawLen = h.payloadLen;
    }
    if (pos + 8 > avail)
        return std::nullopt;
    if (h.payloadLen > kMaxPayloadLen || h.rawLen > kMaxPayloadLen ||
        h.eventCount > h.rawLen) {
        return std::nullopt;
    }
    h.payloadCrc = static_cast<std::uint32_t>(p[pos]) |
                   static_cast<std::uint32_t>(p[pos + 1]) << 8 |
                   static_cast<std::uint32_t>(p[pos + 2]) << 16 |
                   static_cast<std::uint32_t>(p[pos + 3]) << 24;
    std::uint32_t header_crc =
        static_cast<std::uint32_t>(p[pos + 4]) |
        static_cast<std::uint32_t>(p[pos + 5]) << 8 |
        static_cast<std::uint32_t>(p[pos + 6]) << 16 |
        static_cast<std::uint32_t>(p[pos + 7]) << 24;
    if (crc32c(p, pos + 4) != header_crc)
        return std::nullopt;
    h.headerLen = pos + 8;
    return h;
}

/** Next offset >= from holding a valid frame header; npos if none. */
std::size_t
findNextFrame(std::string_view data, std::size_t from, bool sgb3)
{
    const std::size_t min_frame = minFrameBytes(sgb3);
    while (from + min_frame <= data.size()) {
        const void *hit =
            std::memchr(data.data() + from, frameSync(sgb3)[0],
                        data.size() - from - (min_frame - 1));
        if (hit == nullptr)
            return std::string_view::npos;
        from = static_cast<std::size_t>(static_cast<const char *>(hit) -
                                        data.data());
        if (parseFrameAt(data, from, sgb3))
            return from;
        ++from;
    }
    return std::string_view::npos;
}

/// @}

/** @name Frame-parallel decode pipeline */
/// @{

/**
 * Everything about one frame that can be computed from the raw bytes
 * alone, independent of replay state: the payload-CRC verdict, the
 * decompressed image (SGB3), the syntactically decoded events or
 * function records, and the first syntactic error if the payload is
 * malformed. Events before `error` are exactly those the serial
 * decoder would have delivered before raising it.
 */
struct DecodeResult
{
    bool crcOk = false;
    std::vector<PreEvent> events;
    std::vector<std::pair<std::uint64_t, std::string>> fns;
    std::optional<TraceError> error;
};

/**
 * Pure per-frame decode: verify the payload CRC, decompress if the
 * frame says so, and syntactically decode the payload. `payload_off`
 * is the absolute file offset of the stored payload; errors inside a
 * compressed payload are positioned relative to it in the uncompressed
 * image, so they are stable across thread counts.
 */
void
decodeFramePayload(std::string_view payload, std::uint64_t payload_off,
                   const FrameHeader &h, std::int64_t block,
                   DecodeResult &out)
{
    out.crcOk =
        crc32c(payload.data(), payload.size()) == h.payloadCrc;
    if (!out.crcOk)
        return;

    std::string raw;
    if (h.compressed) {
        raw.resize(static_cast<std::size_t>(h.rawLen));
        if (!lzDecompress(payload.data(), payload.size(), raw.data(),
                          raw.size())) {
            TraceError e;
            e.cause = TraceErrorCause::Decompress;
            e.byteOffset = payload_off;
            e.blockIndex = block;
            e.detail = "compressed payload does not decompress to " +
                       std::to_string(h.rawLen) + " bytes";
            out.error = std::move(e);
            return;
        }
        payload = raw;
    }

    Cursor c(payload.data(), payload.size(), payload_off, block,
             TraceErrorCause::BoundsExceeded);
    try {
        if (h.tag == kTagFunctions) {
            while (!c.atEnd()) {
                std::uint64_t id = c.varint();
                out.fns.emplace_back(id, c.bytes(c.varint()));
            }
        } else if (h.tag == kTagEvents) {
            // Cap the reservation: eventCount is header-controlled and
            // CRC-valid headers can still be adversarial.
            out.events.reserve(static_cast<std::size_t>(
                std::min<std::uint64_t>(h.eventCount, 65536)));
            std::uint64_t prev_addr = 0;
            for (std::uint64_t i = 0; i < h.eventCount; ++i) {
                PreEvent ev;
                decodeEvent(c, prev_addr, block, ev);
                out.events.push_back(ev);
            }
            if (!c.atEnd())
                raiseError(TraceErrorCause::BadRecord, c.offset(),
                           block, "trailing bytes in event block");
        }
    } catch (TraceAbort &abort) {
        out.error = std::move(abort.err);
    }
}

/**
 * Frame-parallel decode pipeline: a lazy scanner walks the frame chain
 * ahead of the consumer and hands each syntactically located frame to
 * a worker pool, which runs decodeFramePayload concurrently. The
 * consumer asks for "the decode of the frame at offset X" and gets a
 * cached result (or computes it inline on a miss). Only pure per-frame
 * work moves off the consumer thread; every decision that touches
 * replay state — staleness, resync, accounting, delivery — stays with
 * the consumer in stream order, which is what makes the replay
 * bit-identical to serial for every thread count.
 *
 * The scanner follows exactly the chain the consumer will walk: after
 * a parsed frame it advances to that frame's end; on damage it stops
 * (strict) or probes forward with findNextFrame (salvage). If the
 * consumer ever lands somewhere the scanner did not predict, acquire()
 * discards stale work and restarts the scan from the requested offset,
 * so a miss costs only an inline decode, never correctness.
 */
class DecodePipeline
{
  public:
    DecodePipeline(std::string_view data, bool sgb3, bool salvage,
                   unsigned workers, std::size_t start_pos,
                   unsigned stall_timeout_ms, Watchdog *watchdog,
                   MemoryGovernor *governor)
        : data_(data), sgb3_(sgb3), salvage_(salvage),
          window_(static_cast<std::size_t>(workers) * 4),
          stallTimeoutMs_(stall_timeout_ms), dog_(watchdog),
          gov_(governor), scanPos_(start_pos)
    {
        threads_.reserve(workers);
        for (unsigned i = 0; i < workers; ++i)
            threads_.emplace_back([this, i] { worker(i); });
    }

    ~DecodePipeline()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
        }
        cvWork_.notify_all();
        cvDone_.notify_all();
        for (auto &t : threads_)
            t.join();
        for (auto &job : inflight_)
            retire(*job);
    }

    /**
     * True after a worker held the consumer's frame past the stall
     * deadline: the consumer decodes inline (bit-identical, slower)
     * until tryRecover() restarts the pipeline. Consumer-thread state.
     */
    bool degraded() const { return degraded_; }

    /**
     * Restart a degraded pipeline from the consumer's position — the
     * reset(pos) recovery path. Safe only once no worker still holds a
     * job (a wedged worker writes into its Job when it finally wakes);
     * returns false and stays degraded until then.
     */
    bool
    tryRecover(std::size_t pos)
    {
        std::unique_lock<std::mutex> lock(mu_);
        for (const auto &job : inflight_) {
            if (job->taken && !job->done)
                return false;
        }
        while (!inflight_.empty()) {
            retire(*inflight_.front());
            inflight_.pop_front();
        }
        ready_.clear();
        scanPos_ = pos;
        scanDone_ = false;
        degraded_ = false;
        topUp(lock);
        cvWork_.notify_all();
        return true;
    }

    /**
     * Result of decoding the frame whose header parses at `pos`, or
     * nullptr if the pipeline has no job there (caller decodes
     * inline). The pointer stays valid until release().
     */
    const DecodeResult *
    acquire(std::size_t pos)
    {
        std::unique_lock<std::mutex> lock(mu_);
        // Drop jobs for frames the consumer skipped past (resync).
        while (!inflight_.empty() && inflight_.front()->offset < pos)
            discardFront(lock);
        if (inflight_.empty() || inflight_.front()->offset != pos) {
            // Scanner misprediction: restart the scan here so the
            // window refills behind this frame.
            while (!inflight_.empty())
                discardFront(lock);
            ready_.clear();
            scanPos_ = pos;
            scanDone_ = false;
            topUp(lock);
            if (inflight_.empty() || inflight_.front()->offset != pos)
                return nullptr;
        }
        Job *j = inflight_.front().get();
        if (!j->taken) {
            // Steal: decode the head frame on the consumer thread
            // rather than wait for a worker to reach it.
            j->taken = true;
            for (auto it = ready_.begin(); it != ready_.end(); ++it) {
                if (*it == j) {
                    ready_.erase(it);
                    break;
                }
            }
            lock.unlock();
            runJob(*j);
            lock.lock();
            finishJob(*j);
            cvDone_.notify_all();
        } else if (stallTimeoutMs_ > 0) {
            // Bounded wait: a worker wedged on this frame past the
            // deadline must not wedge the replay too. Degrade to
            // inline decoding (still bit-identical) and let the next
            // step() attempt tryRecover().
            bool completed = cvDone_.wait_for(
                lock, std::chrono::milliseconds(stallTimeoutMs_),
                [&] { return j->done || stop_; });
            if (!completed) {
                degraded_ = true;
                return nullptr;
            }
            if (!j->done)
                return nullptr;
        } else {
            cvDone_.wait(lock, [&] { return j->done || stop_; });
            if (!j->done)
                return nullptr;
        }
        topUp(lock);
        cvWork_.notify_all();
        return &j->result;
    }

    /** Release the job returned by the last acquire(). */
    void
    release()
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!inflight_.empty()) {
            retire(*inflight_.front());
            inflight_.pop_front();
        }
    }

    /** Restart scanning from `pos` (checkpoint restore). */
    void
    reset(std::size_t pos)
    {
        std::unique_lock<std::mutex> lock(mu_);
        while (!inflight_.empty())
            discardFront(lock);
        ready_.clear();
        scanPos_ = pos;
        scanDone_ = false;
    }

  private:
    struct Job
    {
        std::size_t offset = 0;
        FrameHeader h;
        DecodeResult result;
        bool taken = false;
        bool done = false;
        /** Governor bytes held by result (0 = not charged). */
        std::size_t chargedBytes = 0;
    };

    void
    runJob(Job &j)
    {
        if (gDecodeWorkerDelayHook != nullptr)
            gDecodeWorkerDelayHook(j.h.blockSeq);
        std::size_t payload_off = j.offset + j.h.headerLen;
        decodeFramePayload(
            data_.substr(payload_off,
                         static_cast<std::size_t>(j.h.payloadLen)),
            payload_off, j.h,
            static_cast<std::int64_t>(j.h.blockSeq), j.result);
    }

    /**
     * Advance the scan until the prefetch window is full or the chain
     * ends. Called with mu_ held; pure frame-chain walking, no replay
     * state involved.
     */
    void
    topUp(std::unique_lock<std::mutex> &)
    {
        while (!scanDone_ && inflight_.size() < window_) {
            auto h = parseFrameAt(data_, scanPos_, sgb3_);
            if (!h) {
                if (!salvage_) {
                    scanDone_ = true;
                    break;
                }
                std::size_t next =
                    findNextFrame(data_, scanPos_ + 1, sgb3_);
                if (next == std::string_view::npos) {
                    scanDone_ = true;
                    break;
                }
                scanPos_ = next;
                continue;
            }
            std::size_t frame_end =
                scanPos_ + h->headerLen +
                static_cast<std::size_t>(h->payloadLen);
            if (frame_end > data_.size()) {
                // Truncated frame: the consumer handles it inline; in
                // salvage it will resync, which restarts the scan.
                scanDone_ = true;
                break;
            }
            auto job = std::make_unique<Job>();
            job->offset = scanPos_;
            job->h = *h;
            inflight_.push_back(std::move(job));
            ready_.push_back(inflight_.back().get());
            scanPos_ = frame_end;
            if (h->tag == kTagEnd)
                scanDone_ = true;
        }
    }

    /** Called with mu_ held; blocks until the front job is reusable. */
    void
    discardFront(std::unique_lock<std::mutex> &lock)
    {
        Job *j = inflight_.front().get();
        for (auto it = ready_.begin(); it != ready_.end(); ++it) {
            if (*it == j) {
                ready_.erase(it);
                break;
            }
        }
        if (j->taken)
            cvDone_.wait(lock, [&] { return j->done || stop_; });
        retire(*j);
        inflight_.pop_front();
    }

    /**
     * Completion bookkeeping, with mu_ held: charge the decoded
     * frame's footprint to the governor (released by retire()) and
     * publish the result.
     */
    void
    finishJob(Job &j)
    {
        if (gov_ != nullptr) {
            j.chargedBytes =
                j.result.events.capacity() * sizeof(PreEvent);
            for (const auto &[id, name] : j.result.fns)
                j.chargedBytes += sizeof(id) + name.size();
            gov_->charge(MemCategory::DecodeWindows, j.chargedBytes);
        }
        framesDecoded_.fetch_add(1, std::memory_order_relaxed);
        j.done = true;
    }

    /** Return a job's governor charge before it is destroyed. */
    void
    retire(Job &j)
    {
        if (gov_ != nullptr && j.chargedBytes != 0) {
            gov_->release(MemCategory::DecodeWindows, j.chargedBytes);
            j.chargedBytes = 0;
        }
    }

    void
    worker(unsigned index)
    {
        int dog_id = -1;
        if (dog_ != nullptr) {
            dog_id = dog_->registerEntity(
                "decode-worker-" + std::to_string(index),
                Watchdog::StallAction::Degrade, [this] {
                    char buf[64];
                    std::snprintf(buf, sizeof(buf),
                                  "frames decoded=%llu",
                                  static_cast<unsigned long long>(
                                      framesDecoded_.load(
                                          std::memory_order_relaxed)));
                    return std::string(buf);
                });
        }
        std::unique_lock<std::mutex> lock(mu_);
        for (;;) {
            if (dog_ != nullptr)
                dog_->idle(dog_id);
            cvWork_.wait(lock,
                         [&] { return stop_ || !ready_.empty(); });
            if (stop_)
                break;
            if (dog_ != nullptr)
                dog_->busy(dog_id);
            Job *j = ready_.front();
            ready_.pop_front();
            j->taken = true;
            lock.unlock();
            runJob(*j);
            lock.lock();
            finishJob(*j);
            if (dog_ != nullptr)
                dog_->beat(dog_id);
            cvDone_.notify_all();
        }
        lock.unlock();
        if (dog_ != nullptr)
            dog_->unregisterEntity(dog_id);
    }

    std::string_view data_;
    const bool sgb3_;
    const bool salvage_;
    const std::size_t window_;
    const unsigned stallTimeoutMs_;
    Watchdog *dog_;
    MemoryGovernor *gov_;

    std::mutex mu_;
    std::condition_variable cvWork_;
    std::condition_variable cvDone_;
    /** Scanned frames in chain order; the front is the consumer's next. */
    std::deque<std::unique_ptr<Job>> inflight_;
    /** Subset of inflight_ not yet taken by any thread, chain order. */
    std::deque<Job *> ready_;
    std::size_t scanPos_;
    bool scanDone_ = false;
    bool stop_ = false;
    /** Consumer-thread-only (guarded writes under mu_). */
    bool degraded_ = false;
    std::atomic<std::uint64_t> framesDecoded_{0};
    std::vector<std::thread> threads_;
};

/// @}

} // namespace

// ---------------------------------------------------------------------
// Text recorder
// ---------------------------------------------------------------------

TraceRecorder::TraceRecorder(std::ostream &os) : os_(os)
{
    buf_.reserve(kTextFlushBytes + 256);
}

void
TraceRecorder::attach(const Guest &guest)
{
    Tool::attach(guest);
    buf_ += "sigil-trace\t1\n";
    buf_ += "program\t";
    buf_ += guest.programName();
    buf_ += '\n';
}

void
TraceRecorder::maybeFlush()
{
    if (buf_.size() >= kTextFlushBytes) {
        os_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
        buf_.clear();
    }
}

void
TraceRecorder::put(char tag)
{
    buf_ += tag;
    buf_ += '\n';
    ++events_;
    maybeFlush();
}

void
TraceRecorder::put(char tag, std::uint64_t v0)
{
    buf_ += tag;
    buf_ += '\t';
    putUint(buf_, v0);
    buf_ += '\n';
    ++events_;
    maybeFlush();
}

void
TraceRecorder::put(char tag, std::uint64_t v0, std::uint64_t v1)
{
    buf_ += tag;
    buf_ += '\t';
    putUint(buf_, v0);
    buf_ += '\t';
    putUint(buf_, v1);
    buf_ += '\n';
    ++events_;
    maybeFlush();
}

void
TraceRecorder::ensureFunction(FunctionId fn)
{
    std::size_t idx = static_cast<std::size_t>(fn);
    if (idx >= emitted_.size())
        emitted_.resize(idx + 1, false);
    if (emitted_[idx])
        return;
    emitted_[idx] = true;
    buf_ += "F\t";
    putUint(buf_, static_cast<std::uint64_t>(static_cast<std::uint32_t>(fn)));
    buf_ += '\t';
    buf_ += guest_->functions().name(fn);
    buf_ += '\n';
}

void
TraceRecorder::fnEnter(ContextId ctx, CallNum call)
{
    (void)call;
    FunctionId fn = guest_->contexts().function(ctx);
    ensureFunction(fn);
    put('E', static_cast<std::uint64_t>(static_cast<std::uint32_t>(fn)));
}

void
TraceRecorder::fnLeave(ContextId ctx, CallNum call)
{
    (void)ctx;
    (void)call;
    put('L');
}

void
TraceRecorder::memRead(Addr addr, unsigned size)
{
    put('R', addr, size);
}

void
TraceRecorder::memWrite(Addr addr, unsigned size)
{
    put('W', addr, size);
}

void
TraceRecorder::op(std::uint64_t iops, std::uint64_t flops)
{
    put('O', iops, flops);
}

void
TraceRecorder::branch(bool taken)
{
    put('B', taken ? 1 : 0);
}

void
TraceRecorder::threadSwitch(ThreadId tid)
{
    put('T', tid);
}

void
TraceRecorder::barrier()
{
    put('Z');
}

void
TraceRecorder::roi(bool active)
{
    put('I', active ? 1 : 0);
}

void
TraceRecorder::processBatch(const EventBuffer &batch)
{
    for (std::size_t i = 0, n = batch.size(); i < n; ++i) {
        std::uint64_t a = batch.a(i);
        std::uint64_t b = batch.b(i);
        switch (batch.kind(i)) {
          case EventKind::kRead:
            put('R', a, b);
            break;
          case EventKind::kWrite:
            put('W', a, b);
            break;
          case EventKind::kOp:
            put('O', a, b);
            break;
          case EventKind::kBranch:
            put('B', a ? 1 : 0);
            break;
          case EventKind::kEnter: {
            FunctionId fn = static_cast<FunctionId>(a);
            ensureFunction(fn);
            put('E', a);
            break;
          }
          case EventKind::kLeave:
            put('L');
            break;
          case EventKind::kThreadSwitch:
            put('T', a);
            break;
          case EventKind::kBarrier:
            put('Z');
            break;
          case EventKind::kRoi:
            put('I', a ? 1 : 0);
            break;
        }
    }
}

void
TraceRecorder::finish()
{
    if (finished_)
        return;
    finished_ = true;
    buf_ += "end\n";
    os_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
    buf_.clear();
    os_.flush();
}

// ---------------------------------------------------------------------
// Binary recorder
// ---------------------------------------------------------------------

/**
 * Background writer (GuestConfig::asyncWriter): a bounded frame queue
 * between the guest thread and one writer thread. The guest thread
 * only moves a finished block's bytes into the queue; the writer
 * thread does everything writeFrame() does — compression, both CRCs,
 * the stream writes — so in async mode it is the sole user of comp_,
 * blockSeq_, and os_ after the header. push() blocks while the queue
 * is at capacity, so a slow disk exerts backpressure on the guest
 * instead of ballooning the heap. Frames drain strictly FIFO: the
 * bytes on disk are identical to synchronous recording.
 */
struct BinaryTraceRecorder::AsyncWriter
{
    struct Job
    {
        std::uint8_t tag = 0;
        std::string payload;
        std::uint64_t firstEvent = 0;
        std::uint64_t eventCount = 0;
    };

    AsyncWriter(BinaryTraceRecorder &rec, std::size_t capacity,
                std::shared_ptr<Watchdog> watchdog)
        : rec_(rec), capacity_(capacity < 2 ? 2 : capacity),
          dog_(std::move(watchdog))
    {
        if (dog_ != nullptr) {
            dogId_ = dog_->registerEntity(
                "trace-writer", Watchdog::StallAction::Fail, [this] {
                    char buf[80];
                    std::snprintf(
                        buf, sizeof(buf),
                        "queue depth=%zu, frames written=%llu",
                        depthApprox_.load(std::memory_order_relaxed),
                        static_cast<unsigned long long>(
                            framesWritten_.load(
                                std::memory_order_relaxed)));
                    return std::string(buf);
                });
        }
        thread_ = std::thread([this] { run(); });
    }

    ~AsyncWriter() { shutdown(); }

    /** Enqueue one finished frame; blocks while the queue is full. */
    void
    push(std::uint8_t tag, std::string &&payload,
         std::uint64_t first_event, std::uint64_t event_count)
    {
        std::unique_lock<std::mutex> lock(mu_);
        cvSpace_.wait(lock,
                      [this] { return queue_.size() < capacity_; });
        queue_.push_back(
            Job{tag, std::move(payload), first_event, event_count});
        std::size_t depth = queue_.size();
        depthApprox_.store(depth, std::memory_order_relaxed);
        if (depth > depthPeak_.load(std::memory_order_relaxed))
            depthPeak_.store(depth, std::memory_order_relaxed);
        cvWork_.notify_one();
    }

    /** Drain every queued frame, then join the thread. Idempotent. */
    void
    shutdown()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
        }
        cvWork_.notify_all();
        if (thread_.joinable())
            thread_.join();
        if (dog_ != nullptr) {
            dog_->unregisterEntity(dogId_);
            dog_ = nullptr;
        }
    }

    std::uint64_t
    depthPeak() const
    {
        return depthPeak_.load(std::memory_order_relaxed);
    }

  private:
    void
    run()
    {
        std::unique_lock<std::mutex> lock(mu_);
        for (;;) {
            if (dog_ != nullptr)
                dog_->idle(dogId_);
            cvWork_.wait(lock,
                         [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty()) // stop requested and fully drained
                return;
            if (dog_ != nullptr)
                dog_->busy(dogId_);
            Job job = std::move(queue_.front());
            queue_.pop_front();
            depthApprox_.store(queue_.size(),
                               std::memory_order_relaxed);
            cvSpace_.notify_one();
            lock.unlock();
            rec_.writeFrame(job.tag, job.payload, job.firstEvent,
                            job.eventCount);
            framesWritten_.fetch_add(1, std::memory_order_relaxed);
            if (dog_ != nullptr)
                dog_->beat(dogId_);
            lock.lock();
        }
    }

    BinaryTraceRecorder &rec_;
    const std::size_t capacity_;
    /** Shared: unregistration in shutdown() may run after the guest. */
    std::shared_ptr<Watchdog> dog_;
    int dogId_ = -1;
    std::mutex mu_;
    std::condition_variable cvWork_;
    std::condition_variable cvSpace_;
    std::deque<Job> queue_;
    std::atomic<std::size_t> depthApprox_{0};
    std::atomic<std::uint64_t> depthPeak_{0};
    std::atomic<std::uint64_t> framesWritten_{0};
    bool stop_ = false;
    std::thread thread_;
};

BinaryTraceRecorder::BinaryTraceRecorder(std::ostream &os,
                                         TraceFormat format,
                                         std::size_t block_events)
    : os_(os), format_(format), maxBlockEvents_(block_events)
{
    if (maxBlockEvents_ == 0)
        fatal("binary trace: block size must be at least 1 event");
}

BinaryTraceRecorder::~BinaryTraceRecorder()
{
    // finish() is the orderly path; without it, still drain whatever
    // was queued so the destructor never abandons a running thread.
    if (writer_)
        writer_->shutdown();
}

std::uint64_t
BinaryTraceRecorder::writerQueuePeak() const
{
    return writer_ ? writer_->depthPeak() : 0;
}

void
BinaryTraceRecorder::attach(const Guest &guest)
{
    Tool::attach(guest);
    const char *magic = format_ == TraceFormat::SGB1   ? kSgb1Magic
                        : format_ == TraceFormat::SGB2 ? kSgb2Magic
                                                       : kSgb3Magic;
    std::string header(magic, 4);
    putVarint(header, 1); // version
    const std::string &name = guest.programName();
    putVarint(header, name.size());
    header += name;
    os_.write(header.data(), static_cast<std::streamsize>(header.size()));
    bytesWritten_ = header.size();
    // SGB1 has no frame boundary a writer thread could hand off at,
    // so the async knob only engages for the framed formats.
    if (guest.config().asyncWriter && format_ != TraceFormat::SGB1) {
        writer_ = std::make_unique<AsyncWriter>(
            *this, guest.config().writerQueueFrames,
            guest.watchdogShared());
    }
}

void
BinaryTraceRecorder::ensureFunction(FunctionId fn)
{
    std::size_t idx = static_cast<std::size_t>(fn);
    if (idx >= emitted_.size())
        emitted_.resize(idx + 1, false);
    if (emitted_[idx])
        return;
    emitted_[idx] = true;
    // SGB1 tags each record as its own section; SGB2 accumulates bare
    // records into one function-block payload framed by flushBlock().
    if (format_ == TraceFormat::SGB1)
        pendingFns_.push_back(static_cast<char>(kSecFunction));
    putVarint(pendingFns_,
              static_cast<std::uint64_t>(static_cast<std::uint32_t>(fn)));
    const std::string &name = guest_->functions().name(fn);
    putVarint(pendingFns_, name.size());
    pendingFns_ += name;
}

void
BinaryTraceRecorder::writeFrame(std::uint8_t tag, std::string_view payload,
                                std::uint64_t first_event,
                                std::uint64_t event_count)
{
    const bool sgb3 = format_ == TraceFormat::SGB3;
    const std::uint64_t raw_len = payload.size();
    bool compressed = false;
    if (sgb3 && payload.size() >= kMinCompressBytes) {
        // Cap at size-1: a frame is stored compressed only when that
        // actually saves bytes, so replay can reject any compressed
        // frame whose payload is not smaller than its raw length.
        comp_.resize(payload.size() - 1);
        std::size_t n = lzCompress(payload.data(), payload.size(),
                                   comp_.data(), comp_.size());
        if (n != 0) {
            compressed = true;
            payload = std::string_view(comp_.data(), n);
        }
    }
    std::string hdr;
    hdr.append(reinterpret_cast<const char *>(frameSync(sgb3)), 4);
    hdr.push_back(static_cast<char>(tag));
    putVarint(hdr, blockSeq_++);
    putVarint(hdr, first_event);
    putVarint(hdr, event_count);
    putVarint(hdr, payload.size());
    if (sgb3) {
        hdr.push_back(
            static_cast<char>(compressed ? kFrameFlagCompressed : 0));
        putVarint(hdr, raw_len);
    }
    putU32le(hdr, crc32c(payload.data(), payload.size()));
    putU32le(hdr, crc32c(hdr.data(), hdr.size()));
    // Seek-index bookkeeping happens here, on whichever thread owns
    // frame serialization (the writer thread in async mode), so the
    // offsets always describe the bytes actually on the stream.
    if (tag == kTagEvents)
        seekIndex_.push_back({bytesWritten_, first_event, event_count});
    // Publish the frame with a single stream write. Split header and
    // payload writes open a window — one write(2) retired, the other
    // not — where a crash leaves a valid frame header whose payload
    // never reached the fd; salvage then (correctly) drops the frame,
    // but any reader that trusts a validated header over-counts. One
    // write narrows the torn-frame window to what the kernel itself
    // can tear.
    hdr.append(payload.data(), payload.size());
    os_.write(hdr.data(), static_cast<std::streamsize>(hdr.size()));
    bytesWritten_ += hdr.size();
}

void
BinaryTraceRecorder::writeSeekIndex()
{
    std::string payload;
    putVarint(payload, seekIndex_.size());
    std::uint64_t prev_off = 0;
    std::uint64_t prev_seq = 0;
    for (const SeekIndexEntry &e : seekIndex_) {
        putVarint(payload, e.offset - prev_off);
        putVarint(payload, e.firstEventSeq - prev_seq);
        putVarint(payload, e.eventCount);
        prev_off = e.offset;
        prev_seq = e.firstEventSeq;
    }
    std::uint64_t index_off = bytesWritten_;
    writeFrame(kTagSeekIndex, payload, events_, 0);
    std::string footer;
    for (int i = 0; i < 8; ++i)
        footer.push_back(static_cast<char>(index_off >> (8 * i)));
    footer.append(kSeekFooterMagic, 4);
    os_.write(footer.data(), static_cast<std::streamsize>(footer.size()));
}

void
BinaryTraceRecorder::emitFrame(std::uint8_t tag, std::string &payload,
                               std::uint64_t first_event,
                               std::uint64_t event_count)
{
    if (writer_) {
        writer_->push(tag, std::move(payload), first_event, event_count);
        payload = std::string(); // moved-from: leave it reusable
    } else {
        writeFrame(tag, payload, first_event, event_count);
    }
}

void
BinaryTraceRecorder::flushBlock()
{
    std::uint64_t first_event = events_ - blockEvents_;
    if (!pendingFns_.empty()) {
        if (format_ == TraceFormat::SGB1) {
            os_.write(pendingFns_.data(),
                      static_cast<std::streamsize>(pendingFns_.size()));
        } else {
            emitFrame(kTagFunctions, pendingFns_, first_event, 0);
        }
        pendingFns_.clear();
    }
    if (blockEvents_ == 0)
        return;
    if (format_ == TraceFormat::SGB1) {
        std::string frame;
        frame.push_back(static_cast<char>(kSecBlock));
        putVarint(frame, blockEvents_);
        os_.write(frame.data(), static_cast<std::streamsize>(frame.size()));
        os_.write(block_.data(), static_cast<std::streamsize>(block_.size()));
    } else {
        emitFrame(kTagEvents, block_, first_event, blockEvents_);
        // Each SGB2 block must decode independently (salvage can drop
        // any predecessor), so the address delta chain restarts here.
        prevAddr_ = 0;
    }
    block_.clear();
    blockEvents_ = 0;
}

void
BinaryTraceRecorder::event(std::uint8_t opcode)
{
    block_.push_back(static_cast<char>(opcode));
    ++events_;
    if (++blockEvents_ >= maxBlockEvents_)
        flushBlock();
}

void
BinaryTraceRecorder::access(std::uint8_t opcode, Addr addr, unsigned size)
{
    block_.push_back(static_cast<char>(opcode));
    putVarint(block_, zigzag(static_cast<std::int64_t>(addr - prevAddr_)));
    putVarint(block_, size);
    prevAddr_ = addr;
    ++events_;
    if (++blockEvents_ >= maxBlockEvents_)
        flushBlock();
}

void
BinaryTraceRecorder::enterEvent(std::uint64_t fn_id)
{
    block_.push_back(static_cast<char>(kOpEnter));
    putVarint(block_, fn_id);
    ++events_;
    if (++blockEvents_ >= maxBlockEvents_)
        flushBlock();
}

void
BinaryTraceRecorder::fnEnter(ContextId ctx, CallNum call)
{
    (void)call;
    FunctionId fn = guest_->contexts().function(ctx);
    ensureFunction(fn);
    enterEvent(static_cast<std::uint64_t>(static_cast<std::uint32_t>(fn)));
}

void
BinaryTraceRecorder::fnLeave(ContextId ctx, CallNum call)
{
    (void)ctx;
    (void)call;
    event(kOpLeave);
}

void
BinaryTraceRecorder::memRead(Addr addr, unsigned size)
{
    access(kOpRead, addr, size);
}

void
BinaryTraceRecorder::memWrite(Addr addr, unsigned size)
{
    access(kOpWrite, addr, size);
}

void
BinaryTraceRecorder::op(std::uint64_t iops, std::uint64_t flops)
{
    block_.push_back(static_cast<char>(kOpOp));
    putVarint(block_, iops);
    putVarint(block_, flops);
    ++events_;
    if (++blockEvents_ >= maxBlockEvents_)
        flushBlock();
}

void
BinaryTraceRecorder::branch(bool taken)
{
    event(taken ? kOpBranchTaken : kOpBranchNotTaken);
}

void
BinaryTraceRecorder::threadSwitch(ThreadId tid)
{
    block_.push_back(static_cast<char>(kOpThreadSwitch));
    putVarint(block_, tid);
    ++events_;
    if (++blockEvents_ >= maxBlockEvents_)
        flushBlock();
}

void
BinaryTraceRecorder::barrier()
{
    event(kOpBarrier);
}

void
BinaryTraceRecorder::roi(bool active)
{
    event(active ? kOpRoiBegin : kOpRoiEnd);
}

void
BinaryTraceRecorder::processBatch(const EventBuffer &batch)
{
    for (std::size_t i = 0, n = batch.size(); i < n; ++i) {
        std::uint64_t a = batch.a(i);
        std::uint64_t b = batch.b(i);
        switch (batch.kind(i)) {
          case EventKind::kRead:
            access(kOpRead, a, static_cast<unsigned>(b));
            break;
          case EventKind::kWrite:
            access(kOpWrite, a, static_cast<unsigned>(b));
            break;
          case EventKind::kOp:
            op(a, b);
            break;
          case EventKind::kBranch:
            event(a ? kOpBranchTaken : kOpBranchNotTaken);
            break;
          case EventKind::kEnter:
            ensureFunction(static_cast<FunctionId>(a));
            enterEvent(a);
            break;
          case EventKind::kLeave:
            event(kOpLeave);
            break;
          case EventKind::kThreadSwitch:
            threadSwitch(static_cast<ThreadId>(a));
            break;
          case EventKind::kBarrier:
            event(kOpBarrier);
            break;
          case EventKind::kRoi:
            event(a ? kOpRoiBegin : kOpRoiEnd);
            break;
        }
    }
}

void
BinaryTraceRecorder::finish()
{
    if (finished_)
        return;
    finished_ = true;
    flushBlock();
    if (format_ == TraceFormat::SGB1) {
        char end = static_cast<char>(kSecEnd);
        os_.write(&end, 1);
    } else {
        // Clean-shutdown trailer: its presence tells replay the
        // recorder reached finish() and flushed everything, so a
        // salvageable file without it is a crash capture. A killed
        // process never gets here, which is exactly the signal.
        std::string shutdown;
        putVarint(shutdown, events_);
        emitFrame(kTagShutdown, shutdown, events_, 0);
        // The end frame doubles as the trailer: firstEventSeq is the
        // total event count, giving salvage replays the ground truth
        // for their skipped-vs-delivered accounting.
        std::string empty;
        emitFrame(kTagEnd, empty, events_, 0);
    }
    if (writer_)
        writer_->shutdown();
    // The seek index covers every event frame, so it can only be
    // assembled once the writer thread (which owns the offsets in
    // async mode) has drained and joined.
    if (format_ != TraceFormat::SGB1)
        writeSeekIndex();
    os_.flush();
}

// ---------------------------------------------------------------------
// Binary replay session
// ---------------------------------------------------------------------

struct BinaryReplaySession::Impl
{
    Guest &guest;
    ReplayOptions opts;
    ReplayReport report;
    ReplayCtx ctx;
    std::string owned;     ///< backing store when built from a stream
    std::string_view data; ///< the trace bytes (owned or caller-held)
    std::size_t pos = 0;       ///< offset of the next frame
    std::uint64_t streamPos = 0; ///< next expected event sequence
    std::uint64_t eventBlocks = 0;
    bool sgb1 = false;
    bool sgb3 = false;
    bool done = false;
    bool finished = false;
    std::unique_ptr<DecodePipeline> pipeline;

    Impl(std::istream &is, Guest &g, const ReplayOptions &o)
        : guest(g), opts(o), ctx{g, o.policy, report, {}, 0}
    {
        owned = slurp(is);
        data = owned;
        start();
        startPipeline();
    }

    Impl(std::string_view view, Guest &g, const ReplayOptions &o)
        : guest(g), opts(o), ctx{g, o.policy, report, {}, 0}
    {
        data = view;
        start();
        startPipeline();
    }

    /**
     * Frame-parallel decode is worth a thread pool only for the framed
     * formats; SGB1 is one indivisible stream. decodeThreads == 1 keeps
     * the fully serial path (no pipeline at all).
     */
    void
    startPipeline()
    {
        unsigned workers = guest.config().decodeThreads;
        if (workers < 2 || sgb1 || done)
            return;
        pipeline = std::make_unique<DecodePipeline>(
            data, sgb3, salvage(), workers, pos,
            guest.config().stallTimeoutMs, guest.watchdog(),
            guest.governor());
    }

    bool salvage() const { return opts.policy == ReplayPolicy::Salvage; }

    /** Record e; in strict mode it also stops the session. */
    void
    fail(TraceError e)
    {
        if (salvage()) {
            ctx.recordError(e, opts.maxRecordedErrors);
        } else {
            report.error = std::move(e);
            done = true;
        }
    }

    void
    start()
    {
        if (data.size() >= 4 &&
            std::memcmp(data.data(), kSgb1Magic, 4) == 0) {
            sgb1 = true;
            pos = 4;
            return;
        }
        if (data.size() >= 4 &&
            (std::memcmp(data.data(), kSgb2Magic, 4) == 0 ||
             std::memcmp(data.data(), kSgb3Magic, 4) == 0)) {
            sgb3 = data[3] == '3';
            // Preamble: version + program name (informational).
            Cursor c(data.data() + 4, data.size() - 4, 4, -1,
                     TraceErrorCause::Truncated);
            try {
                std::uint64_t version = c.varint();
                if (version != 1)
                    raiseError(TraceErrorCause::BadVersion, 4, -1,
                               "unsupported version " +
                                   std::to_string(version));
                c.bytes(c.varint());
                pos = 4 + static_cast<std::size_t>(c.offset() - 4);
            } catch (TraceAbort &a) {
                fail(std::move(a.err));
                if (salvage())
                    resyncFrom(4);
            }
            return;
        }
        TraceError e;
        e.cause = TraceErrorCause::BadMagic;
        e.byteOffset = 0;
        e.detail = "not a binary sigil trace";
        fail(std::move(e));
        // Salvage can still mine a damaged preamble for valid frames:
        // every frame is self-describing. With the magic gone, let the
        // first valid frame of either flavour pick the framing.
        if (salvage()) {
            std::size_t p2 = findNextFrame(data, 0, false);
            std::size_t p3 = findNextFrame(data, 0, true);
            sgb3 = p3 < p2; // npos compares greater than any hit
            resyncFrom(0);
        }
    }

    /**
     * Scan forward for the next valid frame header, accounting the
     * gap. Ends the session (as truncation) when none remains.
     */
    void
    resyncFrom(std::size_t from)
    {
        std::size_t np = findNextFrame(data, from, sgb3);
        if (np == std::string_view::npos) {
            report.bytesSkipped += data.size() - pos;
            report.truncated = true;
            done = true;
            pos = data.size();
            return;
        }
        report.bytesSkipped += np - pos;
        ++report.resyncs;
        pos = np;
    }

    /** Drop an event frame, accounting its events as skipped. */
    void
    skipEventFrame(const FrameHeader &h)
    {
        if (h.tag != kTagEvents)
            return;
        ++eventBlocks;
        if (h.firstEventSeq < streamPos) {
            ++report.blocksStale;
            return;
        }
        report.eventsSkipped +=
            h.firstEventSeq + h.eventCount - streamPos;
        streamPos = h.firstEventSeq + h.eventCount;
        ++report.blocksSkipped;
    }

    bool
    step()
    {
        if (done)
            return false;
        if (sgb1) {
            stepSgb1();
            return !done;
        }
        if (pos >= data.size()) {
            if (!report.sawTrailer) {
                TraceError e;
                e.cause = TraceErrorCause::Truncated;
                e.byteOffset = pos;
                e.detail = "missing end frame";
                report.truncated = true;
                fail(std::move(e));
            }
            done = true;
            return false;
        }

        std::optional<FrameHeader> h = parseFrameAt(data, pos, sgb3);
        if (!h) {
            TraceError e;
            e.byteOffset = pos;
            if (data.size() - pos < minFrameBytes(sgb3)) {
                e.cause = TraceErrorCause::Truncated;
                e.detail = "stream ends inside a frame";
            } else if (std::memcmp(data.data() + pos, frameSync(sgb3),
                                   4) == 0) {
                e.cause = TraceErrorCause::HeaderCrc;
                e.detail = "frame header failed validation";
            } else {
                e.cause = TraceErrorCause::BadRecord;
                e.detail = "expected frame sync bytes";
            }
            bool was_salvage = salvage();
            fail(std::move(e));
            if (was_salvage)
                resyncFrom(pos + 1);
            return !done;
        }

        std::size_t frame_end =
            pos + h->headerLen + static_cast<std::size_t>(h->payloadLen);
        std::int64_t bidx = static_cast<std::int64_t>(h->blockSeq);
        if (frame_end > data.size()) {
            TraceError e;
            e.cause = TraceErrorCause::Truncated;
            e.byteOffset = pos;
            e.blockIndex = bidx;
            e.detail = "stream ends inside a block payload";
            bool was_salvage = salvage();
            fail(std::move(e));
            if (was_salvage) {
                skipEventFrame(*h);
                resyncFrom(pos + 1);
            }
            return !done;
        }

        std::uint64_t payload_off = pos + h->headerLen;

        // Pure per-frame work (payload CRC, decompression, syntactic
        // decode) comes from the worker pool when one is running; a
        // miss — or no pipeline at all — decodes inline. Either way
        // the result is a pure function of the frame bytes, and every
        // stateful decision below stays on this thread in stream order.
        DecodeResult local;
        const DecodeResult *dec = nullptr;
        if (pipeline) {
            // A degraded pipeline (worker wedged past the stall
            // deadline) is restarted from the consumer's position as
            // soon as no worker still holds a job; until then every
            // frame decodes inline, trading speed for progress.
            if (pipeline->degraded())
                pipeline->tryRecover(pos);
            if (!pipeline->degraded())
                dec = pipeline->acquire(pos);
        }
        if (dec == nullptr) {
            decodeFramePayload(
                data.substr(static_cast<std::size_t>(payload_off),
                            static_cast<std::size_t>(h->payloadLen)),
                payload_off, *h, bidx, local);
            dec = &local;
        }
        // Releases the pipeline's cached result on every exit path of
        // this frame, including the early CRC-failure return.
        struct ReleaseGuard
        {
            DecodePipeline *p;
            const DecodeResult *inlineResult;
            const DecodeResult *dec;
            ~ReleaseGuard()
            {
                if (p != nullptr && dec != inlineResult)
                    p->release();
            }
        } releaseGuard{pipeline.get(), &local, dec};

        if (!dec->crcOk) {
            TraceError e;
            e.cause = TraceErrorCause::PayloadCrc;
            e.byteOffset = pos;
            e.blockIndex = bidx;
            e.detail = "block payload failed validation";
            bool was_salvage = salvage();
            fail(std::move(e));
            if (was_salvage) {
                skipEventFrame(*h);
                report.bytesSkipped += frame_end - pos;
                pos = frame_end;
            }
            return !done;
        }

        switch (h->tag) {
          case kTagEnd:
            report.sawTrailer = true;
            report.totalEventsRecorded = h->firstEventSeq;
            if (h->firstEventSeq > streamPos) {
                // Blocks lost immediately before the trailer.
                report.eventsSkipped += h->firstEventSeq - streamPos;
                streamPos = h->firstEventSeq;
            }
            pos = frame_end;
            done = true;
            break;

          case kTagFunctions: {
            // Records decoded before a syntactic error are exactly the
            // ones the serial decoder interned before raising it.
            for (const auto &[id, name] : dec->fns)
                ctx.fnMap[id] = guest.functions().intern(name);
            if (dec->error.has_value())
                fail(*dec->error);
            pos = frame_end;
            break;
          }

          case kTagEvents: {
            if (h->firstEventSeq < streamPos) {
                // Duplicate or reordered stale block: its events were
                // already delivered (or accounted as a gap); replaying
                // it would double-deliver.
                ++report.blocksStale;
                ++eventBlocks;
                pos = frame_end;
                break;
            }
            if (h->firstEventSeq > streamPos) {
                // Gap: whole blocks were lost before this one.
                report.eventsSkipped += h->firstEventSeq - streamPos;
                streamPos = h->firstEventSeq;
            }
            std::uint64_t delivered = 0;
            bool clean = true;
            try {
                // Events before a syntactic error are exactly those
                // the serial decoder would have delivered before it; a
                // semantic (strict-mode) error interrupts the loop
                // earlier, just as the fused decoder would.
                for (const PreEvent &ev : dec->events) {
                    ctx.deliverEvent(ev, bidx);
                    ++delivered;
                }
                if (dec->error.has_value())
                    throw TraceAbort{*dec->error};
            } catch (TraceAbort &a) {
                clean = false;
                fail(std::move(a.err));
                if (salvage()) {
                    report.eventsSkipped += h->eventCount - delivered;
                    ++report.blocksSkipped;
                }
            }
            streamPos = h->firstEventSeq + h->eventCount;
            if (clean)
                ++report.blocksDelivered;
            ++eventBlocks;
            pos = frame_end;
            break;
          }

          case kTagShutdown:
            // The recorder reached finish() and flushed everything
            // before this frame: the capture is complete, not a crash
            // remnant. The end frame right after carries the trailer
            // accounting.
            report.cleanShutdown = true;
            pos = frame_end;
            break;

          case kTagSeekIndex:
            // Metadata for segment planning, not part of the event
            // stream; only reachable when damage took out the end
            // frame. Its length is trustworthy: skip it silently.
            pos = frame_end;
            break;

          default: {
            TraceError e;
            e.cause = TraceErrorCause::UnknownSection;
            e.byteOffset = pos;
            e.blockIndex = bidx;
            e.detail = "frame tag " + std::to_string(h->tag);
            bool was_salvage = salvage();
            fail(std::move(e));
            if (was_salvage) {
                // Valid frame of an unknown (future?) type: its length
                // is trustworthy, so skip it precisely.
                ++report.blocksSkipped;
                report.bytesSkipped += frame_end - pos;
                pos = frame_end;
            }
            break;
          }
        }
        return !done;
    }

    /**
     * SGB1 has no frame boundaries to step or salvage by: process the
     * entire stream in one step. Damage ends the replay at the last
     * decodable event — reported, never fatal.
     */
    void
    stepSgb1()
    {
        done = true;
        Cursor c(data.data() + pos, data.size() - pos, pos, -1,
                 TraceErrorCause::Truncated);
        try {
            std::uint64_t version = c.varint();
            if (version != 1)
                raiseError(TraceErrorCause::BadVersion, pos, -1,
                           "unsupported version " +
                               std::to_string(version));
            c.bytes(c.varint()); // program name — informational
            std::uint64_t prev_addr = 0;
            for (;;) {
                std::uint64_t at = c.offset();
                std::uint8_t sec = c.u8();
                if (sec == kSecEnd) {
                    report.sawTrailer = true;
                    report.totalEventsRecorded = report.eventsDelivered;
                    break;
                }
                if (sec == kSecFunction) {
                    std::uint64_t id = c.varint();
                    ctx.fnMap[id] =
                        guest.functions().intern(c.bytes(c.varint()));
                    continue;
                }
                if (sec != kSecBlock)
                    raiseError(TraceErrorCause::UnknownSection, at, -1,
                               "section tag " + std::to_string(sec));
                std::uint64_t count = c.varint();
                if (count > c.remaining())
                    raiseError(TraceErrorCause::Truncated, at, -1,
                               "block claims more events than bytes "
                               "remain");
                for (std::uint64_t i = 0; i < count; ++i) {
                    PreEvent ev;
                    decodeEvent(c, prev_addr, -1, ev);
                    ctx.deliverEvent(ev, -1);
                }
                ++report.blocksDelivered;
                ++eventBlocks;
            }
        } catch (TraceAbort &a) {
            report.truncated = a.err.cause == TraceErrorCause::Truncated;
            fail(std::move(a.err));
        }
        pos = data.size();
    }

    ReplayReport
    finishReplay()
    {
        if (!finished) {
            finished = true;
            if (!report.error.has_value())
                guest.finish();
        }
        return report;
    }
};

BinaryReplaySession::BinaryReplaySession(std::istream &is, Guest &guest,
                                         const ReplayOptions &options)
    : impl_(std::make_unique<Impl>(is, guest, options))
{}

BinaryReplaySession::BinaryReplaySession(std::string_view data,
                                         Guest &guest,
                                         const ReplayOptions &options)
    : impl_(std::make_unique<Impl>(data, guest, options))
{}

BinaryReplaySession::~BinaryReplaySession() = default;

bool
BinaryReplaySession::step()
{
    return impl_->step();
}

bool
BinaryReplaySession::done() const
{
    return impl_->done;
}

const ReplayReport &
BinaryReplaySession::report() const
{
    return impl_->report;
}

ReplayReport
BinaryReplaySession::finish()
{
    return impl_->finishReplay();
}

std::uint64_t
BinaryReplaySession::blocksProcessed() const
{
    return impl_->eventBlocks;
}

std::uint64_t
BinaryReplaySession::nextOffset() const
{
    return impl_->pos;
}

void
BinaryReplaySession::saveReaderState(ByteSink &sink) const
{
    const Impl &s = *impl_;
    sink.raw("SGRS", 4);
    sink.u8(2); // version 2: adds the cleanShutdown flag
    sink.u64(s.pos);
    sink.u64(s.streamPos);
    sink.u64(s.eventBlocks);
    sink.u64(s.ctx.synthCounter);
    const ReplayReport &r = s.report;
    sink.u64(r.eventsDelivered);
    sink.u64(r.eventsSkipped);
    sink.u64(r.blocksDelivered);
    sink.u64(r.blocksSkipped);
    sink.u64(r.blocksStale);
    sink.u64(r.bytesSkipped);
    sink.u64(r.resyncs);
    sink.u64(r.leavesDropped);
    sink.u64(r.roiDropped);
    sink.u64(r.functionsSynthesized);
    sink.u8(r.cleanShutdown ? 1 : 0);
    sink.varint(s.ctx.fnMap.size());
    for (const auto &[id, fn] : s.ctx.fnMap) {
        sink.varint(id);
        sink.str(s.guest.functions().name(fn));
    }
}

bool
BinaryReplaySession::restoreReaderState(ByteSource &src)
{
    Impl &s = *impl_;
    char magic[4];
    src.raw(magic, 4);
    if (!src.ok() || std::memcmp(magic, "SGRS", 4) != 0)
        return false;
    if (src.u8() != 2)
        return false;
    std::uint64_t pos = src.u64();
    s.streamPos = src.u64();
    s.eventBlocks = src.u64();
    s.ctx.synthCounter = src.u64();
    ReplayReport &r = s.report;
    r.eventsDelivered = src.u64();
    r.eventsSkipped = src.u64();
    r.blocksDelivered = src.u64();
    r.blocksSkipped = src.u64();
    r.blocksStale = src.u64();
    r.bytesSkipped = src.u64();
    r.resyncs = src.u64();
    r.leavesDropped = src.u64();
    r.roiDropped = src.u64();
    r.functionsSynthesized = src.u64();
    r.cleanShutdown = src.u8() != 0;
    std::uint64_t n = src.varint();
    s.ctx.fnMap.clear();
    for (std::uint64_t i = 0; i < n && src.ok(); ++i) {
        std::uint64_t id = src.varint();
        s.ctx.fnMap[id] = s.guest.functions().intern(src.str());
    }
    if (!src.ok() || s.sgb1 || pos > s.data.size()) {
        s.done = true;
        return false;
    }
    s.pos = static_cast<std::size_t>(pos);
    s.done = false;
    // The prefetch window was scanned for the old position; restart it
    // where the restored replay will actually resume.
    if (s.pipeline)
        s.pipeline->reset(s.pos);
    // A session that already errored cannot be resumed over the error.
    return !r.error.has_value();
}

// ---------------------------------------------------------------------
// Mapped trace input
// ---------------------------------------------------------------------

MappedTraceFile::MappedTraceFile(const std::string &path)
{
#ifdef SIGIL_HAVE_MMAP
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
        struct stat st;
        bool regular = ::fstat(fd, &st) == 0 && S_ISREG(st.st_mode);
        if (regular && st.st_size == 0) {
            // mmap rejects zero-length mappings; an empty file is
            // simply an empty view.
            ::close(fd);
            ok_ = true;
            return;
        }
        if (regular) {
            void *m =
                ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                       PROT_READ, MAP_PRIVATE, fd, 0);
            ::close(fd);
            if (m != MAP_FAILED) {
                map_ = m;
                mapLen_ = static_cast<std::size_t>(st.st_size);
                view_ = std::string_view(static_cast<const char *>(m),
                                         mapLen_);
                ok_ = true;
                return;
            }
            // mmap refused a regular file (e.g. an exotic filesystem):
            // fall through to the stream read.
        } else {
            // Pipes, FIFOs, devices: not mappable. Drain this very
            // descriptor — closing and reopening a pipe would drop
            // whatever the writer already buffered into it.
            char buf[256 * 1024];
            for (;;) {
                ssize_t got = ::read(fd, buf, sizeof(buf));
                if (got > 0) {
                    owned_.append(buf, static_cast<std::size_t>(got));
                    continue;
                }
                if (got == 0) {
                    ::close(fd);
                    view_ = owned_;
                    ok_ = true;
                    return;
                }
                if (errno == EINTR)
                    continue;
                ::close(fd);
                error_ = "read error on '" + path + "'";
                return;
            }
        }
    }
#endif
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        error_ = "cannot open '" + path + "' for reading";
        return;
    }
    owned_ = slurp(is);
    view_ = owned_;
    ok_ = true;
}

MappedTraceFile::~MappedTraceFile()
{
#ifdef SIGIL_HAVE_MMAP
    if (map_ != nullptr)
        ::munmap(map_, mapLen_);
#endif
}

// ---------------------------------------------------------------------
// Durable trace writer
// ---------------------------------------------------------------------

#ifdef SIGIL_HAVE_MMAP

/**
 * Unbuffered streambuf over a POSIX fd: every put reaches write(2)
 * immediately (no userspace buffer a SIGKILL could strand), with an
 * optional byte-interval fsync policy on top.
 */
class DurableTraceWriter::FdBuf : public std::streambuf
{
  public:
    FdBuf(int fd, std::size_t fsync_interval) noexcept
        : fd_(fd), interval_(fsync_interval)
    {
    }

    ~FdBuf() override
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    /** Hand the fd to finalize(); the buf stops owning it. */
    int
    releaseFd() noexcept
    {
        int fd = fd_;
        fd_ = -1;
        return fd;
    }

    std::uint64_t syncs() const noexcept { return syncs_; }

  protected:
    int_type
    overflow(int_type ch) override
    {
        if (traits_type::eq_int_type(ch, traits_type::eof()))
            return traits_type::not_eof(ch);
        char c = traits_type::to_char_type(ch);
        return xsputn(&c, 1) == 1 ? ch : traits_type::eof();
    }

    std::streamsize
    xsputn(const char *s, std::streamsize n) override
    {
        std::streamsize done = 0;
        while (done < n) {
            ssize_t got = ::write(fd_, s + done,
                                  static_cast<std::size_t>(n - done));
            if (got < 0) {
                if (errno == EINTR)
                    continue;
                return done;
            }
            done += got;
        }
        if (interval_ != 0) {
            sinceSync_ += static_cast<std::size_t>(n);
            if (sinceSync_ >= interval_)
                doSync();
        }
        return done;
    }

    int
    sync() override
    {
        // std::ostream::flush() lands here: make it a real fsync so a
        // recorder's finish() leaves the capture on stable storage.
        return doSync();
    }

  private:
    int
    doSync()
    {
        sinceSync_ = 0;
        if (fd_ < 0)
            return 0;
        ++syncs_;
        return ::fsync(fd_) == 0 ? 0 : -1;
    }

    int fd_;
    std::size_t interval_;
    std::size_t sinceSync_ = 0;
    std::uint64_t syncs_ = 0;
};

DurableTraceWriter::DurableTraceWriter(const std::string &path,
                                       std::size_t fsync_interval_bytes)
    : path_(path), tmpPath_(path + ".tmp")
{
    int fd = ::open(tmpPath_.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                    0644);
    if (fd < 0) {
        error_ = "cannot create '" + tmpPath_ + "': ";
        error_ += std::strerror(errno);
        return;
    }
    buf_ = std::make_unique<FdBuf>(fd, fsync_interval_bytes);
    os_ = std::make_unique<std::ostream>(buf_.get());
    ok_ = true;
}

DurableTraceWriter::~DurableTraceWriter() = default;

std::uint64_t
DurableTraceWriter::syncCount() const
{
    return buf_ ? buf_->syncs() : 0;
}

bool
DurableTraceWriter::finalize()
{
    if (finalized_)
        return ok_;
    if (!ok_)
        return false;
    finalized_ = true;
    os_->flush();
    int fd = buf_->releaseFd();
    bool good = ::fsync(fd) == 0;
    good = ::close(fd) == 0 && good;
    if (good && ::rename(tmpPath_.c_str(), path_.c_str()) != 0) {
        error_ = "rename to '" + path_ + "' failed: ";
        error_ += std::strerror(errno);
        good = false;
    }
    if (good) {
        // The rename itself must survive a power failure: sync the
        // directory entry, not just the file contents.
        std::string dir = path_;
        std::size_t slash = dir.find_last_of('/');
        dir = slash == std::string::npos ? "." : dir.substr(0, slash);
        int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
        if (dfd >= 0) {
            ::fsync(dfd);
            ::close(dfd);
        }
    } else if (error_.empty()) {
        error_ = "fsync/close of '" + tmpPath_ + "' failed";
    }
    ok_ = good;
    return good;
}

#else // !SIGIL_HAVE_MMAP

/** Portable fallback: plain ofstream, no fsync guarantees. */
class DurableTraceWriter::FdBuf : public std::filebuf
{
  public:
    std::uint64_t syncs() const noexcept { return 0; }
};

DurableTraceWriter::DurableTraceWriter(const std::string &path,
                                       std::size_t)
    : path_(path), tmpPath_(path + ".tmp")
{
    auto buf = std::make_unique<FdBuf>();
    if (buf->open(tmpPath_,
                  std::ios::binary | std::ios::out | std::ios::trunc) ==
        nullptr) {
        error_ = "cannot create '" + tmpPath_ + "'";
        return;
    }
    buf_ = std::move(buf);
    os_ = std::make_unique<std::ostream>(buf_.get());
    ok_ = true;
}

DurableTraceWriter::~DurableTraceWriter() = default;

std::uint64_t
DurableTraceWriter::syncCount() const
{
    return 0;
}

bool
DurableTraceWriter::finalize()
{
    if (finalized_)
        return ok_;
    if (!ok_)
        return false;
    finalized_ = true;
    os_->flush();
    buf_->close();
    if (std::rename(tmpPath_.c_str(), path_.c_str()) != 0) {
        error_ = "rename to '" + path_ + "' failed";
        ok_ = false;
    }
    return ok_;
}

#endif // SIGIL_HAVE_MMAP

void
setDecodeWorkerDelayForTesting(void (*hook)(std::uint64_t block_seq))
{
    gDecodeWorkerDelayHook = hook;
}

// ---------------------------------------------------------------------
// Replay entry points
// ---------------------------------------------------------------------

namespace {

/**
 * Structured text replay shared by the strict legacy wrapper and the
 * fault-tolerant overload. Tracks the 1-based line number and the
 * absolute byte offset of every line so each rejection names its
 * position and the offending token.
 */
ReplayReport
replayTextTrace(std::istream &is, Guest &guest,
                const ReplayOptions &opts)
{
    ReplayReport report;
    ReplayCtx ctx{guest, opts.policy, report, {}, 0};
    std::string line;
    bool saw_header = false;
    std::uint64_t line_no = 0;
    std::uint64_t offset = 0;

    // Returns true when the line was consumed (or skipped in salvage);
    // false when a strict error should stop the loop.
    auto reject = [&](TraceErrorCause cause, std::string detail,
                      bool counts_event) {
        TraceError e;
        e.cause = cause;
        e.byteOffset = offset;
        e.line = line_no;
        e.detail = std::move(detail);
        if (opts.policy == ReplayPolicy::Salvage) {
            ctx.recordError(e, opts.maxRecordedErrors);
            if (counts_event)
                ++report.eventsSkipped;
            report.bytesSkipped += line.size() + 1;
            return true;
        }
        report.error = std::move(e);
        return false;
    };

    while (std::getline(is, line)) {
        ++line_no;
        std::uint64_t this_offset = offset;
        offset += line.size() + 1;
        (void)this_offset;
        if (line.empty() || line[0] == '#')
            continue;
        if (!saw_header) {
            if (line.rfind("sigil-trace\t1", 0) != 0) {
                offset -= line.size() + 1;
                if (!reject(TraceErrorCause::BadMagic,
                            "not a sigil trace header: '" + line + "'",
                            false)) {
                    return report;
                }
                offset += line.size() + 1;
                // Without a header this is not a trace at all — even
                // salvage gives up rather than replay random text.
                report.truncated = true;
                return report;
            }
            saw_header = true;
            continue;
        }
        offset -= line.size() + 1; // report positions at line start
        char tag = line[0];
        const char *rest = line.c_str() + (line.size() > 1 ? 2 : 1);
        bool ok = true;
        switch (tag) {
          case 'p': // program line — informational
            break;
          case 'F': {
            char *end = nullptr;
            long id = std::strtol(rest, &end, 10);
            if (end == rest || *end != '\t') {
                ok = reject(TraceErrorCause::BadRecord,
                            "bad function record: token '" +
                                std::string(rest) + "'",
                            false);
                break;
            }
            ctx.fnMap[static_cast<std::uint64_t>(id)] =
                guest.functions().intern(end + 1);
            break;
          }
          case 'E': {
            char *end = nullptr;
            long id = std::strtol(rest, &end, 10);
            if (end == rest) {
                ok = reject(TraceErrorCause::BadRecord,
                            "bad enter record: token '" +
                                std::string(rest) + "'",
                            true);
                break;
            }
            auto it = ctx.fnMap.find(static_cast<std::uint64_t>(id));
            if (it == ctx.fnMap.end()) {
                if (opts.policy != ReplayPolicy::Salvage) {
                    ok = reject(TraceErrorCause::UnknownFunction,
                                "unknown function id " +
                                    std::to_string(id),
                                true);
                    break;
                }
                guest.enter(ctx.resolveFunction(
                    static_cast<std::uint64_t>(id), offset, -1));
            } else {
                guest.enter(it->second);
            }
            ++report.eventsDelivered;
            break;
          }
          case 'L':
            if (guest.callDepth() == 0) {
                if (opts.policy == ReplayPolicy::Salvage) {
                    ++report.leavesDropped;
                    ++report.eventsDelivered;
                    break;
                }
                ok = reject(TraceErrorCause::BadRecord,
                            "leave with empty call stack", true);
                break;
            }
            guest.leave();
            ++report.eventsDelivered;
            break;
          case 'R':
          case 'W': {
            char *end = nullptr;
            unsigned long long addr = std::strtoull(rest, &end, 10);
            if (end == rest || *end != '\t') {
                ok = reject(TraceErrorCause::BadRecord,
                            "bad access record: token '" +
                                std::string(rest) + "'",
                            true);
                break;
            }
            unsigned long size = std::strtoul(end + 1, nullptr, 10);
            if (size > kMaxAccessSize) {
                ok = reject(TraceErrorCause::BadRecord,
                            "unreasonable access size " +
                                std::to_string(size),
                            true);
                break;
            }
            if (guest.callDepth() == 0) {
                ok = reject(TraceErrorCause::BadRecord,
                            "access outside any function", true);
                break;
            }
            if (tag == 'R')
                guest.read(static_cast<Addr>(addr),
                           static_cast<unsigned>(size));
            else
                guest.write(static_cast<Addr>(addr),
                            static_cast<unsigned>(size));
            ++report.eventsDelivered;
            break;
          }
          case 'O': {
            char *end = nullptr;
            unsigned long long iops = std::strtoull(rest, &end, 10);
            if (end == rest || *end != '\t') {
                ok = reject(TraceErrorCause::BadRecord,
                            "bad op record: token '" +
                                std::string(rest) + "'",
                            true);
                break;
            }
            unsigned long long flops = std::strtoull(end + 1, nullptr, 10);
            if (guest.callDepth() == 0) {
                ok = reject(TraceErrorCause::BadRecord,
                            "op outside any function", true);
                break;
            }
            if (iops)
                guest.iop(iops);
            if (flops)
                guest.flop(flops);
            ++report.eventsDelivered;
            break;
          }
          case 'B':
            if (guest.callDepth() == 0) {
                ok = reject(TraceErrorCause::BadRecord,
                            "branch outside any function", true);
                break;
            }
            guest.branch(rest[0] == '1');
            ++report.eventsDelivered;
            break;
          case 'T': {
            char *end = nullptr;
            unsigned long tid = std::strtoul(rest, &end, 10);
            if (end == rest || tid >= kMaxThreads) {
                ok = reject(TraceErrorCause::BadRecord,
                            "bad thread-switch record: token '" +
                                std::string(rest) + "'",
                            true);
                break;
            }
            while (guest.numThreads() <= tid)
                guest.spawnThread();
            guest.switchThread(static_cast<ThreadId>(tid));
            ++report.eventsDelivered;
            break;
          }
          case 'Z':
            guest.barrier();
            ++report.eventsDelivered;
            break;
          case 'I': {
            bool begin = rest[0] == '1';
            if (guest.inRoi() == begin) {
                if (opts.policy == ReplayPolicy::Salvage) {
                    ++report.roiDropped;
                    ++report.eventsDelivered;
                    break;
                }
                ok = reject(TraceErrorCause::BadRecord,
                            begin ? "nested roi begin"
                                  : "roi end outside roi",
                            true);
                break;
            }
            if (begin)
                guest.roiBegin();
            else
                guest.roiEnd();
            ++report.eventsDelivered;
            break;
          }
          case 'e':
            if (line == "end") {
                report.sawTrailer = true;
                break;
            }
            ok = reject(TraceErrorCause::BadRecord,
                        "unknown record tag 'e' in line '" + line + "'",
                        true);
            break;
          default:
            ok = reject(TraceErrorCause::BadRecord,
                        "unknown record tag '" + std::string(1, tag) +
                            "'",
                        true);
            break;
        }
        offset += line.size() + 1;
        if (!ok)
            return report;
        if (report.sawTrailer)
            break;
    }
    if (!saw_header) {
        TraceError e;
        e.cause = TraceErrorCause::BadMagic;
        e.byteOffset = 0;
        e.line = line_no;
        e.detail = "empty input";
        report.error = std::move(e);
        return report;
    }
    if (!report.sawTrailer) {
        report.truncated = true;
        if (opts.policy != ReplayPolicy::Salvage) {
            TraceError e;
            e.cause = TraceErrorCause::Truncated;
            e.byteOffset = offset;
            e.line = line_no;
            e.detail = "missing 'end' marker";
            report.error = std::move(e);
            return report;
        }
    }
    guest.finish();
    return report;
}

} // namespace

std::uint64_t
replayTrace(std::istream &is, Guest &guest)
{
    ReplayReport report = replayTextTrace(is, guest, ReplayOptions{});
    if (report.error.has_value())
        fatal("trace replay: %s", report.error->message().c_str());
    return report.eventsDelivered;
}

ReplayReport
replayTrace(std::istream &is, Guest &guest, const ReplayOptions &options)
{
    return replayTextTrace(is, guest, options);
}

ReplayReport
replayBinaryTrace(std::istream &is, Guest &guest,
                  const ReplayOptions &options)
{
    BinaryReplaySession session(is, guest, options);
    while (session.step()) {
    }
    return session.finish();
}

std::uint64_t
replayBinaryTrace(std::istream &is, Guest &guest)
{
    ReplayReport report = replayBinaryTrace(is, guest, ReplayOptions{});
    if (report.error.has_value())
        fatal("binary trace: %s", report.error->message().c_str());
    return report.eventsDelivered;
}

namespace {

bool
hasBinaryMagic(std::string_view data)
{
    return data.size() >= 4 &&
           (std::memcmp(data.data(), kSgb1Magic, 4) == 0 ||
            std::memcmp(data.data(), kSgb2Magic, 4) == 0 ||
            std::memcmp(data.data(), kSgb3Magic, 4) == 0);
}

/** Zero-copy istream over an existing buffer (text replay on a view). */
struct ViewBuf : std::streambuf
{
    explicit ViewBuf(std::string_view v)
    {
        char *p = const_cast<char *>(v.data());
        setg(p, p, p + v.size());
    }
};

ReplayReport
replayFromView(std::string_view data, Guest &guest,
               const ReplayOptions &options)
{
    if (hasBinaryMagic(data)) {
        BinaryReplaySession session(data, guest, options);
        while (session.step()) {
        }
        return session.finish();
    }
    ViewBuf buf(data);
    std::istream is(&buf);
    return replayTrace(is, guest, options);
}

} // namespace

std::uint64_t
replayTraceFile(const std::string &path, Guest &guest)
{
    MappedTraceFile file(path);
    if (!file.ok())
        fatal("%s", file.errorDetail().c_str());
    bool binary = hasBinaryMagic(file.view());
    ReplayReport report =
        replayFromView(file.view(), guest, ReplayOptions{});
    if (report.error.has_value())
        fatal(binary ? "binary trace: %s" : "trace replay: %s",
              report.error->message().c_str());
    return report.eventsDelivered;
}

ReplayReport
replayTraceFile(const std::string &path, Guest &guest,
                const ReplayOptions &options)
{
    MappedTraceFile file(path);
    if (!file.ok()) {
        ReplayReport report;
        TraceError e;
        e.cause = TraceErrorCause::Io;
        e.detail = file.errorDetail();
        report.error = std::move(e);
        return report;
    }
    return replayFromView(file.view(), guest, options);
}

std::vector<Sgb2BlockInfo>
scanSgb2Blocks(std::string_view trace)
{
    std::vector<Sgb2BlockInfo> blocks;
    bool sgb3 = trace.size() >= 4 &&
                std::memcmp(trace.data(), kSgb3Magic, 4) == 0;
    if (!sgb3 && !(trace.size() >= 4 &&
                   std::memcmp(trace.data(), kSgb2Magic, 4) == 0)) {
        // Headerless fragment: let the first valid frame of either
        // flavour pick the framing, as salvage replay does.
        std::size_t p2 = findNextFrame(trace, 0, false);
        std::size_t p3 = findNextFrame(trace, 0, true);
        sgb3 = p3 < p2;
    }
    std::size_t pos = 0;
    for (;;) {
        pos = findNextFrame(trace, pos, sgb3);
        if (pos == std::string_view::npos)
            break;
        std::optional<FrameHeader> h = parseFrameAt(trace, pos, sgb3);
        std::uint64_t frame_len = h->headerLen + h->payloadLen;
        if (pos + frame_len > trace.size()) {
            // Torn frame: the header is intact but the stored payload
            // runs past the end of the buffer — a crash cut the file
            // mid-frame. It is not fully framed (salvage replay skips
            // it as "stream ends inside a block payload"), so it must
            // not be reported as a valid block. Probe its interior for
            // sync bytes, exactly like salvage resynchronization.
            ++pos;
            continue;
        }
        Sgb2BlockInfo info;
        info.offset = pos;
        info.length = frame_len;
        info.tag = h->tag;
        info.firstEventSeq = h->firstEventSeq;
        info.eventCount = h->eventCount;
        info.compressed = h->compressed;
        info.rawLen = h->rawLen;
        blocks.push_back(info);
        pos += static_cast<std::size_t>(info.length);
        if (pos >= trace.size())
            break;
    }
    return blocks;
}

std::vector<SeekIndexEntry>
readSeekIndex(std::string_view trace)
{
    std::vector<SeekIndexEntry> entries;
    if (trace.size() < kSeekFooterBytes)
        return entries;
    const char *tail = trace.data() + trace.size() - kSeekFooterBytes;
    if (std::memcmp(tail + 8, kSeekFooterMagic, 4) != 0)
        return entries;
    std::uint64_t index_off = 0;
    for (int i = 0; i < 8; ++i) {
        index_off |= static_cast<std::uint64_t>(
                         static_cast<unsigned char>(tail[i]))
                     << (8 * i);
    }
    bool sgb3 = trace.size() >= 4 &&
                std::memcmp(trace.data(), kSgb3Magic, 4) == 0;
    if (!sgb3 && !(trace.size() >= 4 &&
                   std::memcmp(trace.data(), kSgb2Magic, 4) == 0)) {
        return entries;
    }
    if (index_off >= trace.size())
        return entries;
    std::optional<FrameHeader> h =
        parseFrameAt(trace, static_cast<std::size_t>(index_off), sgb3);
    if (!h || h->tag != kTagSeekIndex)
        return entries;
    std::size_t payload_off =
        static_cast<std::size_t>(index_off) + h->headerLen;
    if (payload_off + h->payloadLen + kSeekFooterBytes != trace.size())
        return entries;
    std::string_view payload =
        trace.substr(payload_off, static_cast<std::size_t>(h->payloadLen));
    if (crc32c(payload.data(), payload.size()) != h->payloadCrc)
        return entries;
    std::string raw;
    if (h->compressed) {
        raw.resize(static_cast<std::size_t>(h->rawLen));
        if (!lzDecompress(payload.data(), payload.size(), raw.data(),
                          raw.size())) {
            return entries;
        }
        payload = raw;
    }
    const unsigned char *p =
        reinterpret_cast<const unsigned char *>(payload.data());
    std::size_t pos = 0;
    std::size_t avail = payload.size();
    auto varint = [&](std::uint64_t &out) -> bool {
        std::uint64_t v = 0;
        unsigned shift = 0;
        for (;;) {
            if (pos >= avail || shift >= 70)
                return false;
            std::uint8_t byte = p[pos++];
            v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
            if (!(byte & 0x80)) {
                out = v;
                return true;
            }
            shift += 7;
        }
    };
    std::uint64_t count = 0;
    if (!varint(count) || count > trace.size())
        return entries;
    entries.reserve(static_cast<std::size_t>(count));
    std::uint64_t prev_off = 0;
    std::uint64_t prev_seq = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t d_off = 0, d_seq = 0, n = 0;
        if (!varint(d_off) || !varint(d_seq) || !varint(n))
            return {};
        SeekIndexEntry e;
        e.offset = prev_off + d_off;
        e.firstEventSeq = prev_seq + d_seq;
        e.eventCount = n;
        if (e.offset >= trace.size())
            return {};
        prev_off = e.offset;
        prev_seq = e.firstEventSeq;
        entries.push_back(e);
    }
    if (pos != avail)
        return {};
    return entries;
}

std::uint64_t
convertTextTraceToBinary(std::istream &text, std::ostream &bin,
                         const std::string &program, TraceFormat format)
{
    Guest guest(program);
    BinaryTraceRecorder recorder(bin, format);
    guest.addTool(&recorder);
    return replayTrace(text, guest);
}

} // namespace sigil::vg
