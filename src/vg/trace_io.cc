#include "trace_io.hh"

#include <fstream>
#include <istream>
#include <ostream>
#include <unordered_map>

#include "support/logging.hh"

namespace sigil::vg {

TraceRecorder::TraceRecorder(std::ostream &os) : os_(os) {}

void
TraceRecorder::attach(const Guest &guest)
{
    Tool::attach(guest);
    os_ << "sigil-trace\t1\n";
    os_ << "program\t" << guest.programName() << '\n';
}

void
TraceRecorder::ensureFunction(FunctionId fn)
{
    std::size_t idx = static_cast<std::size_t>(fn);
    if (idx >= emitted_.size())
        emitted_.resize(idx + 1, false);
    if (emitted_[idx])
        return;
    emitted_[idx] = true;
    os_ << "F\t" << fn << '\t' << guest_->functions().name(fn) << '\n';
}

void
TraceRecorder::fnEnter(ContextId ctx, CallNum call)
{
    (void)call;
    FunctionId fn = guest_->contexts().function(ctx);
    ensureFunction(fn);
    os_ << "E\t" << fn << '\n';
    ++events_;
}

void
TraceRecorder::fnLeave(ContextId ctx, CallNum call)
{
    (void)ctx;
    (void)call;
    os_ << "L\n";
    ++events_;
}

void
TraceRecorder::memRead(Addr addr, unsigned size)
{
    os_ << "R\t" << addr << '\t' << size << '\n';
    ++events_;
}

void
TraceRecorder::memWrite(Addr addr, unsigned size)
{
    os_ << "W\t" << addr << '\t' << size << '\n';
    ++events_;
}

void
TraceRecorder::op(std::uint64_t iops, std::uint64_t flops)
{
    os_ << "O\t" << iops << '\t' << flops << '\n';
    ++events_;
}

void
TraceRecorder::branch(bool taken)
{
    os_ << "B\t" << (taken ? 1 : 0) << '\n';
    ++events_;
}

void
TraceRecorder::threadSwitch(ThreadId tid)
{
    os_ << "T\t" << tid << '\n';
    ++events_;
}

void
TraceRecorder::barrier()
{
    os_ << "Z\n";
    ++events_;
}

void
TraceRecorder::finish()
{
    if (finished_)
        return;
    finished_ = true;
    os_ << "end\n";
    os_.flush();
}

std::uint64_t
replayTrace(std::istream &is, Guest &guest)
{
    std::string line;
    bool saw_header = false;
    bool saw_end = false;
    std::uint64_t events = 0;
    std::unordered_map<long, FunctionId> fn_map;

    auto bad = [&](const char *what) {
        fatal("trace replay: %s in line '%s'", what, line.c_str());
    };

    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        if (!saw_header) {
            if (line.rfind("sigil-trace\t1", 0) != 0)
                fatal("not a sigil trace (bad header)");
            saw_header = true;
            continue;
        }
        char tag = line[0];
        const char *rest = line.c_str() + (line.size() > 1 ? 2 : 1);
        switch (tag) {
          case 'p': // program line — informational
            break;
          case 'F': {
            char *end = nullptr;
            long id = std::strtol(rest, &end, 10);
            if (end == rest || *end != '\t')
                bad("bad function record");
            fn_map[id] = guest.functions().intern(end + 1);
            break;
          }
          case 'E': {
            char *end = nullptr;
            long id = std::strtol(rest, &end, 10);
            auto it = fn_map.find(id);
            if (end == rest || it == fn_map.end())
                bad("unknown function id");
            guest.enter(it->second);
            ++events;
            break;
          }
          case 'L':
            guest.leave();
            ++events;
            break;
          case 'R':
          case 'W': {
            char *end = nullptr;
            unsigned long long addr = std::strtoull(rest, &end, 10);
            if (end == rest || *end != '\t')
                bad("bad access record");
            unsigned long size = std::strtoul(end + 1, nullptr, 10);
            if (tag == 'R')
                guest.read(static_cast<Addr>(addr),
                           static_cast<unsigned>(size));
            else
                guest.write(static_cast<Addr>(addr),
                            static_cast<unsigned>(size));
            ++events;
            break;
          }
          case 'O': {
            char *end = nullptr;
            unsigned long long iops = std::strtoull(rest, &end, 10);
            if (end == rest || *end != '\t')
                bad("bad op record");
            unsigned long long flops = std::strtoull(end + 1, nullptr, 10);
            if (iops)
                guest.iop(iops);
            if (flops)
                guest.flop(flops);
            ++events;
            break;
          }
          case 'B':
            guest.branch(rest[0] == '1');
            ++events;
            break;
          case 'T': {
            char *end = nullptr;
            unsigned long tid = std::strtoul(rest, &end, 10);
            if (end == rest)
                bad("bad thread-switch record");
            while (guest.numThreads() <= tid)
                guest.spawnThread();
            guest.switchThread(static_cast<ThreadId>(tid));
            ++events;
            break;
          }
          case 'Z':
            guest.barrier();
            ++events;
            break;
          case 'e': // "end"
            saw_end = true;
            break;
          default:
            bad("unknown record tag");
        }
        if (saw_end)
            break;
    }
    if (!saw_header)
        fatal("not a sigil trace (empty input)");
    if (!saw_end)
        fatal("trace replay: truncated input (missing 'end')");
    guest.finish();
    return events;
}

std::uint64_t
replayTraceFile(const std::string &path, Guest &guest)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open '%s' for reading", path.c_str());
    return replayTrace(is, guest);
}

} // namespace sigil::vg
