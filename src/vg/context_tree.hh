/**
 * @file
 * Calling-context tree.
 *
 * A context is a function qualified by the chain of functions it was
 * called through, matching Callgrind's context-sensitive cost
 * attribution ("we keep separate accounting of costs for functions
 * called through different contexts"). Recursive calls are folded onto
 * the nearest ancestor context of the same function so the tree stays
 * finite for recursive programs.
 */

#ifndef SIGIL_VG_CONTEXT_TREE_HH
#define SIGIL_VG_CONTEXT_TREE_HH

#include <atomic>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "vg/function_registry.hh"
#include "vg/types.hh"

namespace sigil::vg {

/** Interns (parent context, function) pairs into dense ContextIds. */
class ContextTree
{
  public:
    /**
     * @param functions Name registry the tree annotates.
     * @param max_depth Context-separation depth, like Callgrind's
     *        --separate-callers: calls deeper than this are folded into
     *        their depth-limited ancestor chain by interning the child
     *        under a collapsed (parent, fn) edge at the cap. 0 means
     *        unlimited.
     */
    explicit ContextTree(const FunctionRegistry &functions,
                         unsigned max_depth = 0);

    /**
     * Context for entering function fn from context parent.
     * Pass kInvalidContext as parent for a root context. If fn already
     * appears among parent's ancestors, that ancestor context is reused
     * (recursion folding). With a depth cap, parents at the cap stand
     * in for all deeper call paths.
     */
    ContextId enterChild(ContextId parent, FunctionId fn);

    /** Function of a context. */
    FunctionId function(ContextId ctx) const;

    /** Parent context, or kInvalidContext for roots. */
    ContextId parent(ContextId ctx) const;

    /** Depth of a context (roots have depth 0). */
    int depth(ContextId ctx) const;

    /** True if anc == ctx or anc is an ancestor of ctx. */
    bool isAncestorOrSelf(ContextId anc, ContextId ctx) const;

    /**
     * Display name: the function name, suffixed with "(k)" when the
     * function appears in more than one context (k is the 1-based index
     * of this context among the function's contexts, in creation order).
     */
    std::string displayName(ContextId ctx) const;

    /** Full path, e.g. "main/localSearch/pkmedian". */
    std::string pathName(ContextId ctx) const;

    std::size_t
    size() const
    {
        return published_.load(std::memory_order_acquire);
    }

    /**
     * Hook run before any reallocation of the node table; see
     * FunctionRegistry::setGrowthBarrier.
     */
    void setGrowthBarrier(std::function<void()> barrier)
    {
        growthBarrier_ = std::move(barrier);
    }

    /** All contexts whose function is fn, in creation order. */
    const std::vector<ContextId> &contextsOf(FunctionId fn) const;

  private:
    struct Node
    {
        FunctionId fn;
        ContextId parent;
        int depth;
    };

    const Node &node(ContextId ctx) const;

    const FunctionRegistry &functions_;
    unsigned maxDepth_;
    std::vector<Node> nodes_;
    std::atomic<std::size_t> published_{0};
    std::function<void()> growthBarrier_;
    std::unordered_map<std::uint64_t, ContextId> byEdge_;
    std::vector<std::vector<ContextId>> byFunction_;
    static const std::vector<ContextId> kEmpty;
};

} // namespace sigil::vg

#endif // SIGIL_VG_CONTEXT_TREE_HH
