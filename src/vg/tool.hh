/**
 * @file
 * Instrumentation-tool interface.
 *
 * Plays the role of Valgrind's tool API: the Guest dispatches a stream of
 * primitive events (function enter/leave, memory reads/writes, retired
 * operations, branches) to every attached tool. Tools query the Guest for
 * ambient state (current context, call number, virtual time).
 */

#ifndef SIGIL_VG_TOOL_HH
#define SIGIL_VG_TOOL_HH

#include <cstdint>

#include "vg/types.hh"

namespace sigil::vg {

class EventBuffer;
class Guest;

/** Base class for instrumentation tools. */
class Tool
{
  public:
    virtual ~Tool() = default;

    /** Called once when the tool is attached to a guest. */
    virtual void attach(const Guest &guest) { guest_ = &guest; }

    /**
     * A batch of buffered events (batched-transport mode). The default
     * implementation replays the batch through the per-event virtuals
     * below, with the guest's ambient-state accessors answering from
     * the batch's dispatch cursor, so tools that never heard of
     * batching behave identically. Hot tools override this and consume
     * the buffer's lanes directly.
     */
    virtual void processBatch(const EventBuffer &batch);

    /** A function was entered, creating context ctx with call number. */
    virtual void fnEnter(ContextId ctx, CallNum call)
    {
        (void)ctx;
        (void)call;
    }

    /** The current function returned. */
    virtual void fnLeave(ContextId ctx, CallNum call)
    {
        (void)ctx;
        (void)call;
    }

    /** The guest read size bytes at addr. */
    virtual void memRead(Addr addr, unsigned size)
    {
        (void)addr;
        (void)size;
    }

    /** The guest wrote size bytes at addr. */
    virtual void memWrite(Addr addr, unsigned size)
    {
        (void)addr;
        (void)size;
    }

    /** The guest retired integer and floating-point operations. */
    virtual void op(std::uint64_t iops, std::uint64_t flops)
    {
        (void)iops;
        (void)flops;
    }

    /** The guest executed a conditional branch. */
    virtual void branch(bool taken) { (void)taken; }

    /** Execution switched to another guest thread. */
    virtual void threadSwitch(ThreadId tid) { (void)tid; }

    /**
     * All guest threads synchronized at a barrier (the guest reports
     * it once, at the point every thread has arrived).
     */
    virtual void barrier() {}

    /**
     * The guest entered (true) or left (false) its region of interest
     * (PARSEC's __parsec_roi_begin/end convention). Tools may restrict
     * collection to the ROI.
     */
    virtual void roi(bool active) { (void)active; }

    /**
     * Drain any asynchronous analysis state the tool owns (e.g. shard
     * worker queues) so that queries observe every event delivered so
     * far. Called by Guest::sync() and Guest::finish(); tools without
     * internal concurrency ignore it.
     */
    virtual void sync() {}

    /** The guest program finished; flush any pending state. */
    virtual void finish() {}

  protected:
    const Guest *guest_ = nullptr;
};

} // namespace sigil::vg

#endif // SIGIL_VG_TOOL_HH
