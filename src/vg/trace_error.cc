#include "trace_error.hh"

#include <cstdio>
#include <ostream>

namespace sigil::vg {

const char *
traceErrorCauseName(TraceErrorCause cause)
{
    switch (cause) {
      case TraceErrorCause::Io:
        return "io";
      case TraceErrorCause::BadMagic:
        return "bad magic";
      case TraceErrorCause::BadVersion:
        return "bad version";
      case TraceErrorCause::Truncated:
        return "truncated";
      case TraceErrorCause::HeaderCrc:
        return "header-crc";
      case TraceErrorCause::PayloadCrc:
        return "payload-crc";
      case TraceErrorCause::VarintOverflow:
        return "varint overflow";
      case TraceErrorCause::BoundsExceeded:
        return "bounds exceeded";
      case TraceErrorCause::UnknownSection:
        return "unknown section";
      case TraceErrorCause::UnknownOpcode:
        return "unknown opcode";
      case TraceErrorCause::UnknownFunction:
        return "unknown function";
      case TraceErrorCause::Decompress:
        return "decompress";
      case TraceErrorCause::BadRecord:
        return "bad record";
      case TraceErrorCause::StateMismatch:
        return "state mismatch";
      case TraceErrorCause::Unsupported:
        return "unsupported";
    }
    return "unknown";
}

std::string
TraceError::message() const
{
    std::string msg = traceErrorCauseName(cause);
    char pos[96];
    if (line > 0) {
        std::snprintf(pos, sizeof(pos),
                      " at line %llu (offset %llu)",
                      static_cast<unsigned long long>(line),
                      static_cast<unsigned long long>(byteOffset));
    } else if (blockIndex >= 0) {
        std::snprintf(pos, sizeof(pos), " at offset %llu (block %lld)",
                      static_cast<unsigned long long>(byteOffset),
                      static_cast<long long>(blockIndex));
    } else {
        std::snprintf(pos, sizeof(pos), " at offset %llu",
                      static_cast<unsigned long long>(byteOffset));
    }
    msg += pos;
    if (!detail.empty()) {
        msg += ": ";
        msg += detail;
    }
    return msg;
}

std::string
ReplayReport::summary() const
{
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "%llu events in %llu blocks delivered; "
        "%llu events / %llu blocks / %llu bytes skipped "
        "(%llu stale, %llu resyncs)%s%s",
        static_cast<unsigned long long>(eventsDelivered),
        static_cast<unsigned long long>(blocksDelivered),
        static_cast<unsigned long long>(eventsSkipped),
        static_cast<unsigned long long>(blocksSkipped),
        static_cast<unsigned long long>(bytesSkipped),
        static_cast<unsigned long long>(blocksStale),
        static_cast<unsigned long long>(resyncs),
        truncated ? "; truncated" : "",
        error.has_value() ? "; stopped on error" : "");
    return buf;
}

std::string
ReplayReport::toString() const
{
    std::string out = "replay report: ";
    out += summary();
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "\n  reconciliation: %llu leaves dropped, %llu roi dropped, "
        "%llu functions synthesized",
        static_cast<unsigned long long>(leavesDropped),
        static_cast<unsigned long long>(roiDropped),
        static_cast<unsigned long long>(functionsSynthesized));
    out += buf;
    std::snprintf(
        buf, sizeof(buf),
        "\n  recorder: %llu events recorded, trailer %s, shutdown %s",
        static_cast<unsigned long long>(totalEventsRecorded),
        sawTrailer ? "seen" : "missing",
        cleanShutdown ? "clean" : "not clean (crash or pre-trailer format)");
    out += buf;
    if (!errors.empty()) {
        std::snprintf(buf, sizeof(buf), "\n  %zu error%s recorded:",
                      errors.size(), errors.size() == 1 ? "" : "s");
        out += buf;
        for (const TraceError &e : errors) {
            out += "\n    - ";
            out += e.message();
        }
    }
    if (error.has_value()) {
        out += "\n  stopped on: ";
        out += error->message();
    }
    return out;
}

std::ostream &
operator<<(std::ostream &os, const ReplayReport &report)
{
    return os << report.toString();
}

} // namespace sigil::vg
