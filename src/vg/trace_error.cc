#include "trace_error.hh"

#include <cstdio>

namespace sigil::vg {

const char *
traceErrorCauseName(TraceErrorCause cause)
{
    switch (cause) {
      case TraceErrorCause::Io:
        return "io";
      case TraceErrorCause::BadMagic:
        return "bad magic";
      case TraceErrorCause::BadVersion:
        return "bad version";
      case TraceErrorCause::Truncated:
        return "truncated";
      case TraceErrorCause::HeaderCrc:
        return "header-crc";
      case TraceErrorCause::PayloadCrc:
        return "payload-crc";
      case TraceErrorCause::VarintOverflow:
        return "varint overflow";
      case TraceErrorCause::BoundsExceeded:
        return "bounds exceeded";
      case TraceErrorCause::UnknownSection:
        return "unknown section";
      case TraceErrorCause::UnknownOpcode:
        return "unknown opcode";
      case TraceErrorCause::UnknownFunction:
        return "unknown function";
      case TraceErrorCause::Decompress:
        return "decompress";
      case TraceErrorCause::BadRecord:
        return "bad record";
      case TraceErrorCause::StateMismatch:
        return "state mismatch";
      case TraceErrorCause::Unsupported:
        return "unsupported";
    }
    return "unknown";
}

std::string
TraceError::message() const
{
    std::string msg = traceErrorCauseName(cause);
    char pos[96];
    if (line > 0) {
        std::snprintf(pos, sizeof(pos),
                      " at line %llu (offset %llu)",
                      static_cast<unsigned long long>(line),
                      static_cast<unsigned long long>(byteOffset));
    } else if (blockIndex >= 0) {
        std::snprintf(pos, sizeof(pos), " at offset %llu (block %lld)",
                      static_cast<unsigned long long>(byteOffset),
                      static_cast<long long>(blockIndex));
    } else {
        std::snprintf(pos, sizeof(pos), " at offset %llu",
                      static_cast<unsigned long long>(byteOffset));
    }
    msg += pos;
    if (!detail.empty()) {
        msg += ": ";
        msg += detail;
    }
    return msg;
}

std::string
ReplayReport::summary() const
{
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "%llu events in %llu blocks delivered; "
        "%llu events / %llu blocks / %llu bytes skipped "
        "(%llu stale, %llu resyncs)%s%s",
        static_cast<unsigned long long>(eventsDelivered),
        static_cast<unsigned long long>(blocksDelivered),
        static_cast<unsigned long long>(eventsSkipped),
        static_cast<unsigned long long>(blocksSkipped),
        static_cast<unsigned long long>(bytesSkipped),
        static_cast<unsigned long long>(blocksStale),
        static_cast<unsigned long long>(resyncs),
        truncated ? "; truncated" : "",
        error.has_value() ? "; stopped on error" : "");
    return buf;
}

} // namespace sigil::vg
