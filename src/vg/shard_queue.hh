/**
 * @file
 * Bounded single-producer / single-consumer shard work queue.
 *
 * The address-sharded analysis engine (core::ShardEngine) routes every
 * memory access, split at shadow-chunk boundaries, to the worker that
 * owns the covering chunk. Each worker is fed through one of these
 * queues: a power-of-two ring of ShardRecord slots with a wait-free
 * fast path (one release store per side) and bounded memory — when the
 * ring is full the producer backs off (yield, then short sleeps)
 * instead of growing, so a slow shard exerts backpressure on the
 * sequencer rather than ballooning the heap.
 *
 * The queue is deliberately lock-free on both sides: producer and
 * consumer each own one cursor and only read the other's with acquire
 * ordering, which keeps the hand-off TSan-clean without a mutex.
 */

#ifndef SIGIL_VG_SHARD_QUEUE_HH
#define SIGIL_VG_SHARD_QUEUE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "vg/types.hh"

namespace sigil::vg {

/**
 * One unit of shard work: a memory-access piece clamped to a single
 * shadow chunk, or an eviction command for a specific chunk. The
 * sequencer stamps each record with the ambient calling context and a
 * global epoch so the worker classifies the access exactly as the
 * serial engine would at that point of the event stream.
 */
struct ShardRecord
{
    enum Kind : std::uint8_t { kRead = 0, kWrite = 1, kEvict = 2 };

    /** Guest address of the piece (kEvict: the chunk index). */
    Addr addr = 0;
    /** Virtual time of the access. */
    Tick tick = 0;
    /** Open event-trace segment receiving the access (0 = none). */
    std::uint64_t segSeq = 0;
    /** Position of this piece in the global access stream. */
    std::uint64_t epoch = 0;
    CallNum call = 0;
    ContextId ctx = kInvalidContext;
    ThreadId tid = 0;
    /** Byte size of the piece (already clamped to its chunk). */
    std::uint32_t size = 0;
    /** Allocation receiving unique-read attribution (-1 = none). */
    std::int32_t allocIdx = -1;
    Kind kind = kRead;
    /** ROI collection flag at the time of the access. */
    bool collecting = true;
};

/** Bounded SPSC ring of ShardRecords with blocking backpressure. */
class ShardQueue
{
  public:
    /** Capacity is rounded up to a power of two (minimum 8). */
    explicit ShardQueue(std::size_t capacity);

    ShardQueue(const ShardQueue &) = delete;
    ShardQueue &operator=(const ShardQueue &) = delete;

    std::size_t capacity() const { return mask_ + 1; }

    /**
     * Enqueue one record (producer side). Blocks — yield then
     * micro-sleep — while the ring is full.
     */
    void push(const ShardRecord &record);

    /**
     * Dequeue up to max records into out (consumer side). Blocks while
     * the ring is empty; returns 0 only after stop() when every pushed
     * record has been consumed.
     */
    std::size_t pop(ShardRecord *out, std::size_t max);

    /** Producer is done; wakes the consumer to drain and exit. */
    void stop();

  private:
    std::vector<ShardRecord> slots_;
    std::size_t mask_;

    /** Producer cursor (next slot to write). */
    alignas(64) std::atomic<std::uint64_t> tail_{0};
    /** Producer-local snapshot of head_, refreshed only when full. */
    std::uint64_t cachedHead_ = 0;

    /** Consumer cursor (next slot to read). */
    alignas(64) std::atomic<std::uint64_t> head_{0};

    std::atomic<bool> stopped_{false};
};

} // namespace sigil::vg

#endif // SIGIL_VG_SHARD_QUEUE_HH
