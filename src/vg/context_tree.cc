#include "context_tree.hh"

#include "support/logging.hh"

namespace sigil::vg {

const std::vector<ContextId> ContextTree::kEmpty;

ContextTree::ContextTree(const FunctionRegistry &functions,
                         unsigned max_depth)
    : functions_(functions), maxDepth_(max_depth)
{}

const ContextTree::Node &
ContextTree::node(ContextId ctx) const
{
    if (ctx < 0 || static_cast<std::size_t>(ctx) >=
                       published_.load(std::memory_order_acquire)) {
        panic("ContextTree: bad context id %d", ctx);
    }
    return nodes_[static_cast<std::size_t>(ctx)];
}

ContextId
ContextTree::enterChild(ContextId parent, FunctionId fn)
{
    // Fold recursion: reuse the nearest ancestor with the same function.
    for (ContextId a = parent; a != kInvalidContext; a = node(a).parent) {
        if (node(a).fn == fn)
            return a;
    }

    // Depth cap (--separate-callers): calls below the cap hang off the
    // capped ancestor, merging all deeper call paths of fn under it.
    if (maxDepth_ != 0 && parent != kInvalidContext &&
        node(parent).depth >= static_cast<int>(maxDepth_)) {
        ContextId a = parent;
        while (node(a).depth >= static_cast<int>(maxDepth_))
            a = node(a).parent;
        // Re-intern beneath the in-cap ancestor; recursion folding has
        // already excluded fn from the chain, so this terminates.
        parent = a;
    }

    std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(parent))
         << 32) |
        static_cast<std::uint32_t>(fn);
    auto it = byEdge_.find(key);
    if (it != byEdge_.end())
        return it->second;

    ContextId id = static_cast<ContextId>(nodes_.size());
    int d = parent == kInvalidContext ? 0 : node(parent).depth + 1;
    if (growthBarrier_ && nodes_.size() == nodes_.capacity())
        growthBarrier_();
    nodes_.push_back(Node{fn, parent, d});
    published_.store(nodes_.size(), std::memory_order_release);
    byEdge_.emplace(key, id);
    if (static_cast<std::size_t>(fn) >= byFunction_.size())
        byFunction_.resize(static_cast<std::size_t>(fn) + 1);
    byFunction_[static_cast<std::size_t>(fn)].push_back(id);
    return id;
}

FunctionId
ContextTree::function(ContextId ctx) const
{
    return node(ctx).fn;
}

ContextId
ContextTree::parent(ContextId ctx) const
{
    return node(ctx).parent;
}

int
ContextTree::depth(ContextId ctx) const
{
    return node(ctx).depth;
}

bool
ContextTree::isAncestorOrSelf(ContextId anc, ContextId ctx) const
{
    for (ContextId a = ctx; a != kInvalidContext; a = node(a).parent) {
        if (a == anc)
            return true;
    }
    return false;
}

std::string
ContextTree::displayName(ContextId ctx) const
{
    const Node &n = node(ctx);
    const std::string &fname = functions_.name(n.fn);
    const auto &siblings = contextsOf(n.fn);
    if (siblings.size() <= 1)
        return fname;
    for (std::size_t i = 0; i < siblings.size(); ++i) {
        if (siblings[i] == ctx)
            return fname + "(" + std::to_string(i + 1) + ")";
    }
    panic("ContextTree::displayName: context %d missing from its "
          "function's list", ctx);
}

std::string
ContextTree::pathName(ContextId ctx) const
{
    std::vector<ContextId> chain;
    for (ContextId a = ctx; a != kInvalidContext; a = node(a).parent)
        chain.push_back(a);
    std::string out;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        if (!out.empty())
            out += "/";
        out += functions_.name(node(*it).fn);
    }
    return out;
}

const std::vector<ContextId> &
ContextTree::contextsOf(FunctionId fn) const
{
    if (fn < 0 || static_cast<std::size_t>(fn) >= byFunction_.size())
        return kEmpty;
    return byFunction_[static_cast<std::size_t>(fn)];
}

} // namespace sigil::vg
