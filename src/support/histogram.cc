#include "histogram.hh"

#include "logging.hh"

namespace sigil {

LinearHistogram::LinearHistogram(std::uint64_t bin_width,
                                 std::size_t max_bins)
    : binWidth_(bin_width), maxBins_(max_bins)
{
    if (bin_width == 0)
        fatal("LinearHistogram: bin width must be > 0");
    if (max_bins == 0)
        fatal("LinearHistogram: max bins must be > 0");
}

void
LinearHistogram::add(std::uint64_t value, std::uint64_t count)
{
    std::size_t bin = static_cast<std::size_t>(value / binWidth_);
    if (bin >= maxBins_) {
        overflow_ += count;
    } else {
        if (bin >= bins_.size())
            bins_.resize(bin + 1, 0);
        bins_[bin] += count;
    }
    total_ += count;
    sumValues_ += value * count;
    if (value > maxValue_)
        maxValue_ = value;
}

void
LinearHistogram::merge(const LinearHistogram &other)
{
    if (other.binWidth_ != binWidth_)
        panic("LinearHistogram::merge: mismatched bin widths");
    if (other.bins_.size() > bins_.size())
        bins_.resize(other.bins_.size(), 0);
    for (std::size_t i = 0; i < other.bins_.size(); ++i)
        bins_[i] += other.bins_[i];
    overflow_ += other.overflow_;
    total_ += other.total_;
    sumValues_ += other.sumValues_;
    if (other.maxValue_ > maxValue_)
        maxValue_ = other.maxValue_;
}

std::uint64_t
LinearHistogram::binCount(std::size_t i) const
{
    return i < bins_.size() ? bins_[i] : 0;
}

void
LinearHistogram::restore(std::vector<std::uint64_t> bins,
                         std::uint64_t overflow, std::uint64_t sum_values,
                         std::uint64_t max_value)
{
    if (bins.size() > maxBins_)
        fatal("LinearHistogram::restore: too many bins");
    bins_ = std::move(bins);
    overflow_ = overflow;
    sumValues_ = sum_values;
    maxValue_ = max_value;
    total_ = overflow_;
    for (std::uint64_t c : bins_)
        total_ += c;
}

double
LinearHistogram::mean() const
{
    return total_ == 0 ? 0.0
                       : static_cast<double>(sumValues_) /
                             static_cast<double>(total_);
}

BoundsHistogram::BoundsHistogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0)
{
    for (std::size_t i = 1; i < bounds_.size(); ++i) {
        if (bounds_[i] <= bounds_[i - 1])
            fatal("BoundsHistogram: bounds must be strictly ascending");
    }
}

void
BoundsHistogram::add(std::uint64_t value, std::uint64_t count)
{
    std::size_t bin = bounds_.size();
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
        if (value <= bounds_[i]) {
            bin = i;
            break;
        }
    }
    counts_[bin] += count;
    total_ += count;
}

void
BoundsHistogram::merge(const BoundsHistogram &other)
{
    if (other.bounds_ != bounds_)
        panic("BoundsHistogram::merge: mismatched bounds");
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
}

void
BoundsHistogram::restore(const std::vector<std::uint64_t> &counts)
{
    if (counts.size() != counts_.size())
        fatal("BoundsHistogram::restore: expected %zu counts, got %zu",
              counts_.size(), counts.size());
    counts_ = counts;
    total_ = 0;
    for (std::uint64_t c : counts_)
        total_ += c;
}

double
BoundsHistogram::binFraction(std::size_t i) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(counts_.at(i)) / static_cast<double>(total_);
}

std::string
BoundsHistogram::binLabel(std::size_t i) const
{
    if (i >= counts_.size())
        panic("BoundsHistogram::binLabel: bin out of range");
    if (i == bounds_.size())
        return ">" + std::to_string(bounds_.back());
    std::uint64_t lo = i == 0 ? 0 : bounds_[i - 1] + 1;
    std::uint64_t hi = bounds_[i];
    if (lo == hi)
        return std::to_string(lo);
    return std::to_string(lo) + "-" + std::to_string(hi);
}

} // namespace sigil
