/**
 * @file
 * CRC32C (Castagnoli) checksums for trace framing and checkpoints.
 *
 * The binary trace format (SGB2) protects every block payload and
 * every block header with a CRC32C so a reader can validate a block
 * before dispatching a single event from it, and checkpoint files are
 * whole-body checksummed so a torn write is detected instead of
 * resumed from. Software slicing-by-8 implementation (~1 byte/cycle);
 * the polynomial matches SSE4.2/ARMv8 hardware CRC so the trace format
 * stays compatible with a future hardware fast path.
 */

#ifndef SIGIL_SUPPORT_CRC32C_HH
#define SIGIL_SUPPORT_CRC32C_HH

#include <cstddef>
#include <cstdint>

namespace sigil {

/**
 * Incrementally extend a CRC32C. Start from 0, feed consecutive
 * ranges, and the result equals crc32c() over the concatenation.
 */
std::uint32_t crc32cExtend(std::uint32_t crc, const void *data,
                           std::size_t len);

/** CRC32C of one contiguous buffer. */
inline std::uint32_t
crc32c(const void *data, std::size_t len)
{
    return crc32cExtend(0, data, len);
}

} // namespace sigil

#endif // SIGIL_SUPPORT_CRC32C_HH
