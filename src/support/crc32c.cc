#include "crc32c.hh"

#include <array>
#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#include <cpuid.h>
#define SIGIL_CRC32C_X86 1
#endif

namespace sigil {

namespace {

/**
 * Slicing-by-8 tables for the Castagnoli polynomial (reflected
 * 0x82f63b78), generated at static-init time. Table[0] is the classic
 * byte-at-a-time table; table[k] advances a byte through k additional
 * zero bytes, letting the hot loop fold 8 input bytes per iteration.
 */
struct Crc32cTables
{
    std::uint32_t t[8][256];

    Crc32cTables()
    {
        for (unsigned i = 0; i < 256; ++i) {
            std::uint32_t crc = i;
            for (int b = 0; b < 8; ++b)
                crc = (crc >> 1) ^ ((crc & 1) ? 0x82f63b78u : 0);
            t[0][i] = crc;
        }
        for (unsigned k = 1; k < 8; ++k) {
            for (unsigned i = 0; i < 256; ++i)
                t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xff];
        }
    }
};

const Crc32cTables kTables;

#if SIGIL_CRC32C_X86

/** SSE4.2 path: the CRC32 instruction implements exactly the
 *  Castagnoli polynomial, 8 bytes per ~3-cycle op. Compiled with a
 *  function-level target so the TU needs no global -msse4.2; only
 *  called after the cpuid check below. */
__attribute__((target("sse4.2"))) std::uint32_t
crc32cHw(std::uint32_t crc, const unsigned char *p, std::size_t len)
{
    std::uint64_t c = crc;
    while (len >= 8) {
        std::uint64_t word;
        std::memcpy(&word, p, 8);
        c = __builtin_ia32_crc32di(c, word);
        p += 8;
        len -= 8;
    }
    std::uint32_t c32 = static_cast<std::uint32_t>(c);
    while (len-- > 0)
        c32 = __builtin_ia32_crc32qi(c32, *p++);
    return c32;
}

bool
crc32cHwAvailable()
{
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx))
        return false;
    return (ecx & (1u << 20)) != 0; // SSE4.2
}

#endif // SIGIL_CRC32C_X86

} // namespace

std::uint32_t
crc32cExtend(std::uint32_t crc, const void *data, std::size_t len)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    crc = ~crc;
#if SIGIL_CRC32C_X86
    static const bool hw = crc32cHwAvailable();
    if (hw)
        return ~crc32cHw(crc, p, len);
#endif
    const auto &t = kTables.t;
    while (len >= 8) {
        std::uint32_t lo = crc ^ (static_cast<std::uint32_t>(p[0]) |
                                  static_cast<std::uint32_t>(p[1]) << 8 |
                                  static_cast<std::uint32_t>(p[2]) << 16 |
                                  static_cast<std::uint32_t>(p[3]) << 24);
        crc = t[7][lo & 0xff] ^ t[6][(lo >> 8) & 0xff] ^
              t[5][(lo >> 16) & 0xff] ^ t[4][lo >> 24] ^ t[3][p[4]] ^
              t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
        p += 8;
        len -= 8;
    }
    while (len-- > 0)
        crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xff];
    return ~crc;
}

} // namespace sigil
