/**
 * @file
 * Minimal fixed-width text-table printer used by the benchmark harnesses
 * to render the paper's tables and figure series as aligned rows.
 */

#ifndef SIGIL_SUPPORT_TABLE_HH
#define SIGIL_SUPPORT_TABLE_HH

#include <cstdio>
#include <string>
#include <vector>

namespace sigil {

/** A column-aligned text table. */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells) { header_ = std::move(cells); }

    /** Append one row; short rows are padded with empty cells. */
    void addRow(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    /** Render the table to a string. */
    std::string render() const;

    /** Render and print to stdout. */
    void print() const { std::fputs(render().c_str(), stdout); }

    std::size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** printf-style helper returning std::string. */
std::string strformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace sigil

#endif // SIGIL_SUPPORT_TABLE_HH
