/**
 * @file
 * Byte-oriented LZ block codec for SGB3 trace frames.
 *
 * Self-contained LZ77 with an LZ4-style token stream: no entropy
 * stage, no external dependencies, decompression is a straight
 * memcpy/backref loop. Designed for trace payloads — long runs of
 * near-identical varint-encoded event records — where it reaches
 * multi-x ratios at GB/s-class speed. The compressed stream is only
 * ever embedded in CRC32C-protected SGB3 frames, but the decoder is
 * still fully bounds-checked and never reads or writes out of range
 * on arbitrary input (corrupt-but-CRC-valid bytes must fail cleanly,
 * not overrun).
 *
 * Stream grammar (repeats until the source is exhausted):
 *
 *   token      := 1 byte; high nibble = literal length, low nibble =
 *                 match length - kMinMatch
 *   [litext]   := if literal nibble == 15, extension bytes, each
 *                 adding 255, terminated by a byte < 255
 *   literals   := literal-length raw bytes
 *   [offset]   := 2 bytes little-endian, 1..65535; present unless the
 *                 token ends the stream after its literals
 *   [matchext] := if match nibble == 15, extension bytes as above
 *
 * A match copies match-length bytes from `out_pos - offset`; overlap
 * (offset < length) is legal and copies byte-by-byte, so RLE degrades
 * gracefully. The final sequence carries literals only: its match
 * nibble must be 0 and the offset field is absent.
 */

#ifndef SIGIL_SUPPORT_LZ_HH
#define SIGIL_SUPPORT_LZ_HH

#include <cstddef>

namespace sigil {

/** Smallest back-reference the token encoding can express. */
constexpr std::size_t kLzMinMatch = 4;

/**
 * Worst-case compressed size for @p n source bytes (all-literal
 * stream: one token plus length extensions per 15-byte run).
 */
constexpr std::size_t
lzCompressBound(std::size_t n)
{
    return n + n / 255 + 16;
}

/**
 * Compress @p n bytes from @p src into @p dst (capacity @p cap).
 * Returns the compressed size, or 0 when the input does not fit in
 * @p cap — callers use `cap = n - 1` to mean "store only if it
 * actually shrinks". n = 0 returns 0.
 */
std::size_t lzCompress(const char *src, std::size_t n, char *dst,
                       std::size_t cap);

/**
 * Decompress exactly @p rawLen bytes into @p dst from the @p n
 * compressed bytes at @p src. Returns false on any malformed input:
 * truncated stream, offset beyond the bytes produced so far, output
 * overrun, or a stream that ends early / with trailing bytes. On
 * failure the contents of @p dst are unspecified.
 */
bool lzDecompress(const char *src, std::size_t n, char *dst,
                  std::size_t rawLen);

} // namespace sigil

#endif // SIGIL_SUPPORT_LZ_HH
