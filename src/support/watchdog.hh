/**
 * @file
 * Stall watchdog for the parallel subsystems.
 *
 * Every long-lived worker thread — shard workers, decode workers, the
 * async analysis consumer, the background trace writer — registers
 * itself as an entity and then reports liveness with three cheap
 * atomic operations: busy() when it picks up work, beat() as it makes
 * progress, idle() when it blocks waiting for more. A monitor thread
 * samples the heartbeats and flags any entity that has been busy
 * without advancing its beat counter for longer than the configured
 * deadline: a worker wedged inside its work, as opposed to one parked
 * on an empty queue (idle entities are never flagged — blocking for
 * input is not a stall).
 *
 * On a stall the monitor assembles a structured StallReport — the
 * stalled entity, the deadline, and a diagnostic line from every
 * registered entity (queue depths, last sequence numbers) — and then
 * either invokes the stall handler (StallAction::Fail — the default
 * handler calls fatal(), failing the run with the report instead of
 * hanging) or logs the report and keeps running (StallAction::Degrade
 * — used by the decode pipeline, which can recover by restarting
 * itself from the consumer's position). A flagged entity re-arms as
 * soon as its beat counter moves again, so transient stalls are
 * reported once, not once per monitor tick.
 *
 * The monitor runs at a fraction of the deadline, so detection
 * latency is between one and roughly 1.25 deadlines. Heartbeats are
 * relaxed atomics on pre-registered slots: the watchdog adds no
 * synchronization to worker fast paths.
 */

#ifndef SIGIL_SUPPORT_WATCHDOG_HH
#define SIGIL_SUPPORT_WATCHDOG_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace sigil {

/** Structured description of one detected stall. */
struct StallReport
{
    /** Name of the entity that stopped making progress. */
    std::string entity;
    /** Deadline that was exceeded. */
    unsigned timeoutMs = 0;
    /** Heartbeat count at which the entity wedged. */
    std::uint64_t lastBeat = 0;
    /** One diagnostic line per registered entity that provides one. */
    std::vector<std::pair<std::string, std::string>> diagnostics;

    /** Render the report as a multi-line message. */
    std::string message() const;
};

class Watchdog
{
  public:
    enum class StallAction {
        Fail,    ///< invoke the stall handler (default: fatal())
        Degrade, ///< warn and keep monitoring; the entity self-recovers
    };

    /** Optional per-entity diagnostic snapshot, sampled on a stall.
     *  Called from the monitor thread: must only read atomics. */
    using DiagFn = std::function<std::string()>;
    using StallHandler = std::function<void(const StallReport &)>;

    /** Entities stalled for longer than timeout_ms are reported. */
    explicit Watchdog(unsigned timeout_ms);
    ~Watchdog();

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    unsigned timeoutMs() const { return timeoutMs_; }

    /**
     * Register a worker. Returns a handle for beat()/busy()/idle().
     * Thread-safe; entities are monitored until unregisterEntity().
     */
    int registerEntity(std::string name, StallAction action,
                       DiagFn diag = nullptr);

    /** Stop monitoring an entity (its thread is exiting). */
    void unregisterEntity(int id);

    /** Progress heartbeat: call whenever the worker advances. */
    void beat(int id)
    {
        slots_[id]->beats.fetch_add(1, std::memory_order_relaxed);
    }

    /** Worker picked up work; stalls are detected only while busy. */
    void busy(int id)
    {
        Entity &e = *slots_[id];
        e.beats.fetch_add(1, std::memory_order_relaxed);
        e.busyFlag.store(true, std::memory_order_relaxed);
    }

    /** Worker is blocking for input; never flagged while idle. */
    void idle(int id)
    {
        Entity &e = *slots_[id];
        e.busyFlag.store(false, std::memory_order_relaxed);
        e.beats.fetch_add(1, std::memory_order_relaxed);
    }

    /**
     * Replace the Fail-action handler. The default calls fatal() with
     * the report message. Runs on the monitor thread.
     */
    void setStallHandler(StallHandler handler);

    /** Number of stalls detected so far (both actions). */
    std::uint64_t stallsDetected() const
    {
        return stalls_.load(std::memory_order_relaxed);
    }

    /** Message of the most recent StallReport ("" if none). */
    std::string lastReportMessage() const;

  private:
    struct Entity
    {
        std::string name;
        StallAction action = StallAction::Fail;
        DiagFn diag;
        std::atomic<std::uint64_t> beats{0};
        std::atomic<bool> busyFlag{false};
        std::atomic<bool> live{true};

        // Monitor-thread-private scan state.
        std::uint64_t seenBeats = 0;
        std::chrono::steady_clock::time_point lastChange{};
        bool flagged = false;
    };

    /** Entity handles index a fixed slot array so heartbeats never
     *  touch a container the registration path might be growing. */
    static constexpr int kMaxEntities = 512;

    void monitor();
    void fire(Entity &e, std::unique_lock<std::mutex> &lock);

    const unsigned timeoutMs_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::unique_ptr<Entity> slots_[kMaxEntities];
    /** Slots below this are registered; release-published so the
     *  monitor sees a fully-constructed Entity. */
    std::atomic<int> count_{0};
    StallHandler handler_;
    std::string lastMessage_;
    std::atomic<std::uint64_t> stalls_{0};
    bool stop_ = false;
    std::thread thread_;
};

} // namespace sigil

#endif // SIGIL_SUPPORT_WATCHDOG_HH
