#include "support/watchdog.hh"

#include <algorithm>
#include <cstdio>

#include "support/logging.hh"

namespace sigil {

std::string
StallReport::message() const
{
    char head[192];
    std::snprintf(head, sizeof(head),
                  "watchdog: '%s' made no progress for %u ms "
                  "(last heartbeat %llu)",
                  entity.c_str(), timeoutMs,
                  static_cast<unsigned long long>(lastBeat));
    std::string out = head;
    for (const auto &[name, diag] : diagnostics) {
        out += "\n  ";
        out += name;
        out += ": ";
        out += diag;
    }
    return out;
}

Watchdog::Watchdog(unsigned timeout_ms) : timeoutMs_(timeout_ms)
{
    SIGIL_ASSERT(timeout_ms > 0, "watchdog deadline must be non-zero");
    thread_ = std::thread([this] { monitor(); });
}

Watchdog::~Watchdog()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
}

int
Watchdog::registerEntity(std::string name, StallAction action, DiagFn diag)
{
    std::lock_guard<std::mutex> lock(mu_);
    int id = count_.load(std::memory_order_relaxed);
    if (id >= kMaxEntities)
        fatal("Watchdog: entity limit (%d) exceeded", kMaxEntities);
    auto entity = std::make_unique<Entity>();
    entity->name = std::move(name);
    entity->action = action;
    entity->diag = std::move(diag);
    slots_[id] = std::move(entity);
    count_.store(id + 1, std::memory_order_release);
    return id;
}

void
Watchdog::unregisterEntity(int id)
{
    std::lock_guard<std::mutex> lock(mu_);
    SIGIL_ASSERT(id >= 0 && id < count_.load(std::memory_order_relaxed),
                 "unknown watchdog entity id");
    slots_[id]->live.store(false, std::memory_order_relaxed);
    slots_[id]->busyFlag.store(false, std::memory_order_relaxed);
}

void
Watchdog::setStallHandler(StallHandler handler)
{
    std::lock_guard<std::mutex> lock(mu_);
    handler_ = std::move(handler);
}

std::string
Watchdog::lastReportMessage() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return lastMessage_;
}

void
Watchdog::fire(Entity &e, std::unique_lock<std::mutex> &lock)
{
    StallReport report;
    report.entity = e.name;
    report.timeoutMs = timeoutMs_;
    report.lastBeat = e.seenBeats;
    int n = count_.load(std::memory_order_acquire);
    for (int i = 0; i < n; ++i) {
        Entity &other = *slots_[i];
        if (!other.live.load(std::memory_order_relaxed) || !other.diag)
            continue;
        report.diagnostics.emplace_back(other.name, other.diag());
    }
    stalls_.fetch_add(1, std::memory_order_relaxed);
    lastMessage_ = report.message();
    StallHandler handler = handler_;

    // Run the consequence without the lock: a Fail handler may never
    // return (the default calls fatal()), and must not wedge
    // registration or heartbeat queries if it blocks.
    lock.unlock();
    if (e.action == StallAction::Degrade) {
        warn("%s", report.message().c_str());
    } else if (handler) {
        handler(report);
    } else {
        fatal("%s", report.message().c_str());
    }
    lock.lock();
}

void
Watchdog::monitor()
{
    using clock = std::chrono::steady_clock;
    const auto deadline = std::chrono::milliseconds(timeoutMs_);
    const auto tick = std::chrono::milliseconds(
        std::max<unsigned>(1, std::min<unsigned>(timeoutMs_ / 4, 250)));

    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
        cv_.wait_for(lock, tick, [this] { return stop_; });
        if (stop_)
            break;
        const auto now = clock::now();
        int n = count_.load(std::memory_order_acquire);
        for (int i = 0; i < n; ++i) {
            Entity &e = *slots_[i];
            if (!e.live.load(std::memory_order_relaxed))
                continue;
            std::uint64_t beats = e.beats.load(std::memory_order_relaxed);
            bool busy = e.busyFlag.load(std::memory_order_relaxed);
            if (beats != e.seenBeats || !busy ||
                e.lastChange == clock::time_point{}) {
                e.seenBeats = beats;
                e.lastChange = now;
                e.flagged = false;
                continue;
            }
            if (!e.flagged && now - e.lastChange > deadline) {
                e.flagged = true;
                fire(e, lock);
                // fire() dropped the lock: re-read the slot count on
                // the next pass rather than trusting n.
                break;
            }
        }
    }
}

} // namespace sigil
