#include "table.hh"

#include <cstdarg>

namespace sigil {

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths;
    auto widen = [&](const std::vector<std::string> &row) {
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    widen(header_);
    for (const auto &row : rows_)
        widen(row);

    auto emit = [&](std::string &out, const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            std::string cell = i < row.size() ? row[i] : "";
            cell.resize(widths[i], ' ');
            out += cell;
            if (i + 1 < widths.size())
                out += "  ";
        }
        while (!out.empty() && out.back() == ' ')
            out.pop_back();
        out += '\n';
    };

    std::string out;
    if (!header_.empty()) {
        emit(out, header_);
        std::string rule;
        for (std::size_t i = 0; i < widths.size(); ++i) {
            rule += std::string(widths[i], '-');
            if (i + 1 < widths.size())
                rule += "  ";
        }
        out += rule + '\n';
    }
    for (const auto &row : rows_)
        emit(out, row);
    return out;
}

std::string
strformat(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (n < 0) {
        va_end(ap2);
        return "<format error>";
    }
    std::string out(static_cast<std::size_t>(n), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

} // namespace sigil
