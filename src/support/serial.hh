/**
 * @file
 * Minimal binary serialization helpers for checkpoint files.
 *
 * ByteSink appends fixed-width little-endian integers, varints, and
 * length-prefixed strings to a growable byte buffer; ByteSource reads
 * them back with hard bounds checking. A ByteSource never reads past
 * its buffer regardless of the input bytes: any overrun or varint
 * overflow latches a sticky failure flag and all subsequent reads
 * return zero values, so a decoder can run to completion on garbage
 * and check ok() once instead of guarding every field. This is the
 * failure model checkpoint restore needs — a torn or corrupted file
 * must be *detected*, never crash the process.
 */

#ifndef SIGIL_SUPPORT_SERIAL_HH
#define SIGIL_SUPPORT_SERIAL_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace sigil {

/** Append-only byte buffer with primitive encoders. */
class ByteSink
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(static_cast<char>(v));
    }

    void
    u32(std::uint32_t v)
    {
        char b[4];
        b[0] = static_cast<char>(v);
        b[1] = static_cast<char>(v >> 8);
        b[2] = static_cast<char>(v >> 16);
        b[3] = static_cast<char>(v >> 24);
        buf_.append(b, 4);
    }

    void
    u64(std::uint64_t v)
    {
        u32(static_cast<std::uint32_t>(v));
        u32(static_cast<std::uint32_t>(v >> 32));
    }

    void
    i64(std::int64_t v)
    {
        u64(static_cast<std::uint64_t>(v));
    }

    void
    varint(std::uint64_t v)
    {
        while (v >= 0x80) {
            buf_.push_back(static_cast<char>(v | 0x80));
            v >>= 7;
        }
        buf_.push_back(static_cast<char>(v));
    }

    /** Length-prefixed string. */
    void
    str(std::string_view s)
    {
        varint(s.size());
        buf_.append(s.data(), s.size());
    }

    /** Raw bytes, no length prefix. */
    void
    raw(const void *data, std::size_t len)
    {
        buf_.append(static_cast<const char *>(data), len);
    }

    const std::string &bytes() const { return buf_; }
    std::string take() { return std::move(buf_); }
    std::size_t size() const { return buf_.size(); }

  private:
    std::string buf_;
};

/** Bounds-checked reader over a byte buffer (sticky failure flag). */
class ByteSource
{
  public:
    ByteSource(const char *data, std::size_t len) : data_(data), len_(len)
    {}

    explicit ByteSource(std::string_view bytes)
        : ByteSource(bytes.data(), bytes.size())
    {}

    std::uint8_t
    u8()
    {
        if (pos_ >= len_) {
            ok_ = false;
            return 0;
        }
        return static_cast<std::uint8_t>(data_[pos_++]);
    }

    std::uint32_t
    u32()
    {
        if (len_ - pos_ < 4 || !ok_) {
            ok_ = false;
            pos_ = len_;
            return 0;
        }
        const unsigned char *p =
            reinterpret_cast<const unsigned char *>(data_) + pos_;
        pos_ += 4;
        return static_cast<std::uint32_t>(p[0]) |
               static_cast<std::uint32_t>(p[1]) << 8 |
               static_cast<std::uint32_t>(p[2]) << 16 |
               static_cast<std::uint32_t>(p[3]) << 24;
    }

    std::uint64_t
    u64()
    {
        std::uint64_t lo = u32();
        std::uint64_t hi = u32();
        return lo | (hi << 32);
    }

    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

    std::uint64_t
    varint()
    {
        std::uint64_t v = 0;
        unsigned shift = 0;
        for (;;) {
            if (pos_ >= len_ || shift >= 70) {
                ok_ = false;
                pos_ = len_;
                return 0;
            }
            std::uint8_t byte = static_cast<std::uint8_t>(data_[pos_++]);
            v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
            if (!(byte & 0x80))
                return v;
            shift += 7;
        }
    }

    std::string
    str()
    {
        std::uint64_t n = varint();
        if (!ok_ || n > len_ - pos_) {
            ok_ = false;
            pos_ = len_;
            return {};
        }
        std::string s(data_ + pos_, static_cast<std::size_t>(n));
        pos_ += static_cast<std::size_t>(n);
        return s;
    }

    /** Copy len raw bytes out; zero-fills (and fails) on overrun. */
    void
    raw(void *out, std::size_t n)
    {
        if (!ok_ || n > len_ - pos_) {
            ok_ = false;
            pos_ = len_;
            std::memset(out, 0, n);
            return;
        }
        std::memcpy(out, data_ + pos_, n);
        pos_ += n;
    }

    /** True until any read overran the buffer. */
    bool ok() const { return ok_; }

    /** True when every byte has been consumed without failure. */
    bool atEnd() const { return ok_ && pos_ == len_; }

    std::size_t pos() const { return pos_; }

  private:
    const char *data_;
    std::size_t len_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

} // namespace sigil

#endif // SIGIL_SUPPORT_SERIAL_HH
