#include "support/mem_governor.hh"

#include <cstdio>

#include "support/logging.hh"

namespace sigil {

const char *
memCategoryName(MemCategory cat)
{
    switch (cat) {
    case MemCategory::Shadow:
        return "shadow";
    case MemCategory::ShardQueues:
        return "shard-queues";
    case MemCategory::DecodeWindows:
        return "decode-windows";
    case MemCategory::EventBuffers:
        return "event-buffers";
    case MemCategory::ProfileCatalog:
        return "profile-catalog";
    case MemCategory::kCount:
        break;
    }
    return "?";
}

void
MemoryGovernor::maxInto(std::atomic<std::size_t> &peak, std::size_t seen)
{
    std::size_t cur = peak.load(std::memory_order_relaxed);
    while (cur < seen &&
           !peak.compare_exchange_weak(cur, seen, std::memory_order_relaxed)) {
    }
}

void
MemoryGovernor::charge(MemCategory cat, std::size_t bytes)
{
    if (bytes == 0)
        return;
    Lane &lane = lanes_[index(cat)];
    std::size_t lane_live =
        lane.live.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    maxInto(lane.peak, lane_live);
    std::size_t total =
        totalLive_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    maxInto(totalPeak_, total);
}

void
MemoryGovernor::release(MemCategory cat, std::size_t bytes)
{
    if (bytes == 0)
        return;
    Lane &lane = lanes_[index(cat)];
    std::size_t prev = lane.live.fetch_sub(bytes, std::memory_order_relaxed);
    SIGIL_ASSERT(prev >= bytes, "governor lane released below zero");
    prev = totalLive_.fetch_sub(bytes, std::memory_order_relaxed);
    SIGIL_ASSERT(prev >= bytes, "governor total released below zero");
}

std::string
MemoryGovernor::describe() const
{
    char head[128];
    std::snprintf(head, sizeof(head),
                  "live %zu B (peak %zu B, budget %zu B):", liveBytes(),
                  peakBytes(), budget_);
    std::string out = head;
    for (unsigned i = 0; i < static_cast<unsigned>(MemCategory::kCount);
         ++i) {
        MemCategory cat = static_cast<MemCategory>(i);
        char lane[96];
        std::snprintf(lane, sizeof(lane), "%s %s %zu B", i == 0 ? "" : ",",
                      memCategoryName(cat), liveBytes(cat));
        out += lane;
    }
    return out;
}

} // namespace sigil
