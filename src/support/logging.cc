#include "logging.hh"

#include <cstdarg>
#include <vector>

namespace sigil {

namespace {

void
defaultSink(LogLevel level, const std::string &msg)
{
    const char *tag = "";
    switch (level) {
      case LogLevel::Panic: tag = "panic: "; break;
      case LogLevel::Fatal: tag = "fatal: "; break;
      case LogLevel::Warn: tag = "warn: "; break;
      case LogLevel::Inform: tag = "info: "; break;
    }
    std::fprintf(stderr, "%s%s\n", tag, msg.c_str());
}

LogSink currentSink = defaultSink;

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    if (n < 0) {
        va_end(ap2);
        return "<format error>";
    }
    std::vector<char> buf(static_cast<std::size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<std::size_t>(n));
}

} // namespace

LogSink
setLogSink(LogSink sink)
{
    LogSink prev = currentSink;
    currentSink = sink ? sink : defaultSink;
    return prev;
}

void
logMessage(LogLevel level, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    currentSink(level, vformat(fmt, ap));
    va_end(ap);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    currentSink(LogLevel::Panic, vformat(fmt, ap));
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    currentSink(LogLevel::Fatal, vformat(fmt, ap));
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    currentSink(LogLevel::Warn, vformat(fmt, ap));
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    currentSink(LogLevel::Inform, vformat(fmt, ap));
    va_end(ap);
}

} // namespace sigil
