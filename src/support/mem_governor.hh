/**
 * @file
 * Process-wide memory-budget governor.
 *
 * Every subsystem that holds a non-trivial amount of heap — shadow
 * chunks (hot units, lazy cold arrays, stamp tables), shard work
 * queues, decode-pipeline frame windows, event buffers — charges its
 * allocations against one MemoryGovernor instance owned by the Guest.
 * The governor itself never frees anything: it is a ledger plus a
 * predicate. Subsystems that *can* shed memory (the shadow's chunk
 * LRU) consult overBudget() before growing and evict until the new
 * allocation fits; subsystems with fixed footprints (queues, buffers)
 * only account, so the eviction pressure lands where it is cheapest
 * to shed. When nothing evictable remains and the budget is still
 * exceeded, the shadow's pressure handler drives the profiler's
 * never-descending degradation ladder instead of OOM-ing.
 *
 * A budget of 0 (the default) disables enforcement: the ledger still
 * tracks live/peak bytes per category — useful for reconciliation
 * against ShadowStats — but overBudget() always answers false, so
 * ungoverned runs stay bit-identical to pre-governor behaviour.
 *
 * Thread safety: charge/release/overBudget are lock-free atomics and
 * may be called from any thread (shard workers, decode workers, the
 * async writer). Peaks are maintained with CAS-max loops, so the
 * reported peak is exact even under concurrent charging.
 */

#ifndef SIGIL_SUPPORT_MEM_GOVERNOR_HH
#define SIGIL_SUPPORT_MEM_GOVERNOR_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace sigil {

/** Accounting categories, one per governed subsystem. */
enum class MemCategory : unsigned {
    Shadow = 0,       ///< shadow chunks: hot units + cold arrays + stamps
    ShardQueues = 1,  ///< bounded SPSC rings feeding shard workers
    DecodeWindows = 2, ///< in-flight decoded frames in the decode pipeline
    EventBuffers = 3, ///< guest-side SoA event batches
    ProfileCatalog = 4, ///< daemon-resident profiles (sigild catalog)
    kCount = 5,
};

/** Human-readable category name ("shadow", "shard-queues", ...). */
const char *memCategoryName(MemCategory cat);

class MemoryGovernor
{
  public:
    /** budget_bytes == 0 means track-only: never reports over budget. */
    explicit MemoryGovernor(std::size_t budget_bytes = 0)
        : budget_(budget_bytes)
    {
    }

    MemoryGovernor(const MemoryGovernor &) = delete;
    MemoryGovernor &operator=(const MemoryGovernor &) = delete;

    std::size_t budget() const { return budget_; }

    /** Record `bytes` newly allocated under `cat`. */
    void charge(MemCategory cat, std::size_t bytes);

    /** Record `bytes` freed under `cat`. Must pair with charge(). */
    void release(MemCategory cat, std::size_t bytes);

    /**
     * Would an additional allocation of `headroom` bytes exceed the
     * budget? Always false when the budget is 0 (track-only mode).
     */
    bool overBudget(std::size_t headroom = 0) const
    {
        return budget_ != 0 && liveBytes() + headroom > budget_;
    }

    /** Live bytes currently charged under one category. */
    std::size_t liveBytes(MemCategory cat) const
    {
        return lanes_[index(cat)].live.load(std::memory_order_relaxed);
    }

    /** Peak bytes ever charged under one category. */
    std::size_t peakBytes(MemCategory cat) const
    {
        return lanes_[index(cat)].peak.load(std::memory_order_relaxed);
    }

    /** Live bytes summed over all categories. */
    std::size_t liveBytes() const
    {
        return totalLive_.load(std::memory_order_relaxed);
    }

    /** Peak of the all-category total (not the sum of lane peaks). */
    std::size_t peakBytes() const
    {
        return totalPeak_.load(std::memory_order_relaxed);
    }

    /**
     * One-line ledger snapshot for diagnostics:
     * "live 1234 B (peak 5678 B, budget 9999 B): shadow 1000 B, ...".
     */
    std::string describe() const;

  private:
    struct Lane
    {
        std::atomic<std::size_t> live{0};
        std::atomic<std::size_t> peak{0};
    };

    static unsigned index(MemCategory cat)
    {
        return static_cast<unsigned>(cat);
    }

    static void maxInto(std::atomic<std::size_t> &peak, std::size_t seen);

    const std::size_t budget_;
    Lane lanes_[static_cast<unsigned>(MemCategory::kCount)];
    std::atomic<std::size_t> totalLive_{0};
    std::atomic<std::size_t> totalPeak_{0};
};

} // namespace sigil

#endif // SIGIL_SUPPORT_MEM_GOVERNOR_HH
