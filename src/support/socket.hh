/**
 * @file
 * Minimal stream-socket layer for the profile-query daemon: RAII
 * sockets with per-direction timeouts, Unix-domain and loopback TCP
 * listeners with a self-pipe wakeup (so an accept loop can be unblocked
 * deterministically during shutdown), and the length-prefixed CRC32C
 * frame codec shared by server and client.
 *
 * Wire frame layout (all integers little-endian):
 *
 *     u32  len       count of the bytes that follow (op + payload + crc)
 *     u8   op        operation / response code
 *     ...  payload   len - 5 bytes, opaque to this layer
 *     u32  crc       CRC32C over op byte + payload
 *
 * The reader enforces a caller-supplied frame-size cap before
 * allocating, so a hostile length prefix cannot balloon memory, and it
 * verifies the CRC before handing the payload up, so a corrupted or
 * fuzzed frame surfaces as FrameStatus::BadCrc instead of as garbage
 * reaching a request decoder. Timeouts are plain SO_RCVTIMEO /
 * SO_SNDTIMEO: a slow or stalled peer turns into IoStatus::Timeout on
 * the worker thread that owns the connection, never a wedged server.
 */

#ifndef SIGIL_SUPPORT_SOCKET_HH
#define SIGIL_SUPPORT_SOCKET_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace sigil::net {

/** Outcome of a blocking full read or write. */
enum class IoStatus {
    Ok,      ///< every requested byte transferred
    Eof,     ///< peer closed the stream mid-transfer (reads only)
    Timeout, ///< SO_RCVTIMEO / SO_SNDTIMEO deadline expired
    Error,   ///< any other socket error (errno-level)
};

/** Human-readable name of an IoStatus ("ok", "eof", ...). */
const char *ioStatusName(IoStatus status);

/** Move-only RAII wrapper of a connected stream-socket fd. */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { closeNow(); }

    Socket(Socket &&other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Socket &
    operator=(Socket &&other) noexcept
    {
        if (this != &other) {
            closeNow();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }
    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /**
     * Set receive/send deadlines in milliseconds (0 = block forever).
     * Applies to every subsequent readFully/writeFully.
     */
    bool setTimeouts(int recv_ms, int send_ms);

    /** Read exactly n bytes (EINTR-safe). */
    IoStatus readFully(void *buf, std::size_t n);

    /** Write exactly n bytes (EINTR-safe, SIGPIPE-proof). */
    IoStatus writeFully(const void *buf, std::size_t n);

    /** Close immediately; valid() turns false. Idempotent. */
    void closeNow();

  private:
    int fd_ = -1;
};

/** Connect to a Unix-domain listener; invalid Socket on failure. */
Socket connectUnix(const std::string &path);

/** Connect to a TCP listener; invalid Socket on failure. */
Socket connectTcp(const std::string &host, std::uint16_t port);

/**
 * Listening socket plus a self-pipe so wake() can unblock a pending
 * accept() from another thread — the mechanism behind the daemon's
 * graceful SIGTERM drain.
 */
class Listener
{
  public:
    Listener() = default;
    ~Listener();

    Listener(Listener &&other) noexcept;
    Listener &operator=(Listener &&other) noexcept;
    Listener(const Listener &) = delete;
    Listener &operator=(const Listener &) = delete;

    /**
     * Bind + listen on a Unix-domain path. An existing socket file at
     * the path is unlinked first (stale from a killed daemon). On
     * failure returns an invalid Listener and fills *err.
     */
    static Listener listenUnix(const std::string &path, std::string *err);

    /**
     * Bind + listen on loopback TCP. port 0 picks an ephemeral port;
     * boundPort() reports the actual one.
     */
    static Listener listenTcp(std::uint16_t port, std::string *err);

    bool valid() const { return fd_ >= 0; }

    /** Actual bound TCP port (0 for Unix listeners). */
    std::uint16_t boundPort() const { return port_; }

    /**
     * Block until a client connects, wake() is called, or an error
     * occurs. Returns an invalid Socket for the latter two; after a
     * wake() the listener stays usable (shutdown decides separately).
     */
    Socket accept();

    /** Unblock a pending (or the next) accept(). Thread-safe. */
    void wake();

    /** Close the listening fd and unlink a Unix socket path. */
    void closeNow();

  private:
    int fd_ = -1;
    int wakeRead_ = -1;
    int wakeWrite_ = -1;
    std::uint16_t port_ = 0;
    std::string unixPath_;
};

/** Outcome of reading one wire frame. */
enum class FrameStatus {
    Ok,        ///< frame decoded, CRC verified
    Eof,       ///< clean EOF at a frame boundary
    Timeout,   ///< read deadline expired
    TooBig,    ///< length prefix exceeds the caller's cap
    Malformed, ///< length prefix below the 5-byte minimum
    BadCrc,    ///< CRC32C mismatch over op + payload
    Error,     ///< transport error (EOF mid-frame, errno-level)
};

/** Human-readable name of a FrameStatus ("ok", "bad-crc", ...). */
const char *frameStatusName(FrameStatus status);

/** Encode and send one frame: len | op | payload | crc. */
IoStatus sendFrame(Socket &sock, std::uint8_t op,
                   std::string_view payload);

/**
 * Receive one frame. max_len caps the length prefix (op + payload +
 * crc) before any allocation; an oversized or malformed prefix leaves
 * the stream desynchronized, so callers should close the connection on
 * anything but Ok.
 */
FrameStatus recvFrame(Socket &sock, std::uint8_t *op,
                      std::string *payload, std::uint32_t max_len);

} // namespace sigil::net

#endif // SIGIL_SUPPORT_SOCKET_HH
