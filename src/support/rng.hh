/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All workloads draw randomness from this generator so that every profile
 * and every figure is exactly reproducible across runs and platforms. The
 * generator is SplitMix64, which is tiny, fast, and has no observable
 * bias for our purposes.
 */

#ifndef SIGIL_SUPPORT_RNG_HH
#define SIGIL_SUPPORT_RNG_HH

#include <cstdint>

namespace sigil {

/** Deterministic 64-bit PRNG (SplitMix64). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state_(seed)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    nextRange(double lo, double hi)
    {
        return lo + (hi - lo) * nextDouble();
    }

  private:
    std::uint64_t state_;
};

} // namespace sigil

#endif // SIGIL_SUPPORT_RNG_HH
