/**
 * @file
 * Error and status reporting in the gem5 style.
 *
 * panic() is for internal invariant violations (tool bugs) and aborts;
 * fatal() is for user errors (bad configuration, bad input) and exits
 * cleanly with an error code; warn()/inform() report conditions without
 * stopping.
 */

#ifndef SIGIL_SUPPORT_LOGGING_HH
#define SIGIL_SUPPORT_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace sigil {

/** Severity of a log message. */
enum class LogLevel { Panic, Fatal, Warn, Inform };

/**
 * Sink invoked for every log message. Tests may override it to capture
 * messages; the default prints to stderr.
 */
using LogSink = void (*)(LogLevel level, const std::string &msg);

/** Install a log sink; returns the previous sink. */
LogSink setLogSink(LogSink sink);

/** Emit a formatted message to the current sink. */
void logMessage(LogLevel level, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/**
 * Report an internal invariant violation and abort.
 * Use only for conditions that indicate a bug in the tool itself.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report a user-caused error (bad configuration or input) and exit(1).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Warn about possibly-incorrect behaviour without stopping. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** panic() unless the condition holds. */
#define SIGIL_ASSERT(cond, msg)                                           \
    do {                                                                  \
        if (!(cond))                                                      \
            ::sigil::panic("assertion failed: %s (%s:%d): %s", #cond,     \
                           __FILE__, __LINE__, msg);                      \
    } while (0)

} // namespace sigil

#endif // SIGIL_SUPPORT_LOGGING_HH
