#include "support/lz.hh"

#include <cstdint>
#include <cstring>

namespace sigil {

namespace {

// Hash of the next 4 source bytes, used to index the match table.
// Fibonacci multiplicative hash over a little-endian load.
constexpr unsigned kHashBits = 13;

inline std::uint32_t
load32(const char *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, sizeof v);
    return v;
}

inline std::uint32_t
hash4(const char *p)
{
    return (load32(p) * 2654435761u) >> (32 - kHashBits);
}

// Emit a 4-bit length nibble's extension bytes (255-continuation).
inline bool
putExt(char *dst, std::size_t cap, std::size_t &o, std::size_t v)
{
    while (v >= 255) {
        if (o >= cap)
            return false;
        dst[o++] = static_cast<char>(0xff);
        v -= 255;
    }
    if (o >= cap)
        return false;
    dst[o++] = static_cast<char>(v);
    return true;
}

// One sequence: literals [lit_start, lit_end) then, unless this is
// the terminal sequence, a match of match_len at match_off.
bool
putSequence(char *dst, std::size_t cap, std::size_t &o, const char *lit,
            std::size_t lit_len, std::size_t match_off,
            std::size_t match_len)
{
    const std::size_t lit_nib = lit_len < 15 ? lit_len : 15;
    const std::size_t mat_extra = match_len ? match_len - kLzMinMatch : 0;
    const std::size_t mat_nib = match_len ? (mat_extra < 15 ? mat_extra : 15)
                                          : 0;
    if (o >= cap)
        return false;
    dst[o++] = static_cast<char>((lit_nib << 4) | mat_nib);
    if (lit_nib == 15 && !putExt(dst, cap, o, lit_len - 15))
        return false;
    if (lit_len) {
        if (cap - o < lit_len)
            return false;
        std::memcpy(dst + o, lit, lit_len);
        o += lit_len;
    }
    if (!match_len)
        return true; // terminal sequence: no offset field
    if (cap - o < 2)
        return false;
    dst[o++] = static_cast<char>(match_off & 0xff);
    dst[o++] = static_cast<char>((match_off >> 8) & 0xff);
    if (mat_nib == 15 && !putExt(dst, cap, o, mat_extra - 15))
        return false;
    return true;
}

} // namespace

std::size_t
lzCompress(const char *src, std::size_t n, char *dst, std::size_t cap)
{
    if (n == 0)
        return 0;
    std::size_t out = 0;
    std::size_t lit_start = 0; // first unemitted literal byte
    // Greedy single-probe matcher. Table holds source positions; a
    // stale or colliding entry is rejected by the byte compare below.
    std::uint32_t table[1u << kHashBits];
    std::memset(table, 0xff, sizeof table);

    if (n >= kLzMinMatch + 1) {
        const std::size_t last_probe = n - kLzMinMatch; // need 4 bytes
        std::size_t i = 0;
        // Skip-accelerated scan: every miss in an incompressible run
        // widens the stride so pathological inputs stay near memcpy
        // speed.
        std::size_t miss_streak = 0;
        while (i < last_probe) {
            const std::uint32_t h = hash4(src + i);
            const std::uint32_t cand = table[h];
            table[h] = static_cast<std::uint32_t>(i);
            const bool usable = cand != 0xffffffffu &&
                                static_cast<std::size_t>(cand) < i &&
                                i - cand <= 0xffff &&
                                load32(src + cand) == load32(src + i);
            if (!usable) {
                ++miss_streak;
                i += 1 + (miss_streak >> 6);
                continue;
            }
            miss_streak = 0;
            // Extend the match forward.
            std::size_t len = kLzMinMatch;
            while (i + len < n && src[cand + len] == src[i + len])
                ++len;
            // ...and backward into pending literals.
            std::size_t back = 0;
            while (back < i - lit_start && cand > back &&
                   src[cand - back - 1] == src[i - back - 1])
                ++back;
            const std::size_t mpos = i - back;
            if (!putSequence(dst, cap, out, src + lit_start,
                             mpos - lit_start, i - cand, len + back))
                return 0;
            i += len;
            lit_start = i;
            // Seed the table inside the match so adjacent repeats of
            // the same motif are still found.
            if (i < last_probe)
                table[hash4(src + i - 2)] =
                    static_cast<std::uint32_t>(i - 2);
        }
    }
    if (!putSequence(dst, cap, out, src + lit_start, n - lit_start, 0, 0))
        return 0;
    return out;
}

bool
lzDecompress(const char *src, std::size_t n, char *dst, std::size_t rawLen)
{
    std::size_t i = 0, o = 0;
    // Decode extension bytes for a nibble value of 15.
    const auto ext = [&](std::size_t &len) -> bool {
        for (;;) {
            if (i >= n)
                return false;
            const unsigned char b = static_cast<unsigned char>(src[i++]);
            len += b;
            if (b < 255)
                return true;
        }
    };
    while (i < n) {
        const unsigned char token = static_cast<unsigned char>(src[i++]);
        std::size_t lit = token >> 4;
        if (lit == 15 && !ext(lit))
            return false;
        if (lit > n - i || lit > rawLen - o)
            return false;
        std::memcpy(dst + o, src + i, lit);
        i += lit;
        o += lit;
        if (i == n) {
            // Terminal sequence: literals only, match nibble must be 0.
            if ((token & 0x0f) != 0)
                return false;
            break;
        }
        if (n - i < 2)
            return false;
        const std::size_t off =
            static_cast<unsigned char>(src[i]) |
            (static_cast<std::size_t>(static_cast<unsigned char>(src[i + 1]))
             << 8);
        i += 2;
        std::size_t mlen = (token & 0x0f);
        if (mlen == 15 && !ext(mlen))
            return false;
        mlen += kLzMinMatch;
        if (off == 0 || off > o || mlen > rawLen - o)
            return false;
        const char *from = dst + (o - off);
        char *to = dst + o;
        o += mlen;
        if (off >= mlen) {
            std::memcpy(to, from, mlen);
        } else {
            for (std::size_t k = 0; k < mlen; ++k)
                to[k] = from[k];
        }
    }
    return o == rawLen;
}

} // namespace sigil
